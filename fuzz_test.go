package mdrs_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mdrs"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// Fuzz targets harden the public entry points against malformed input.
// Under plain `go test` they run their seed corpus as regular tests;
// `go test -fuzz=FuzzDecodePlan .` explores further.

// FuzzDecodePlan asserts DecodePlan never panics and that every
// accepted plan is structurally valid and re-encodable.
func FuzzDecodePlan(f *testing.F) {
	f.Add([]byte(`{"relation":{"name":"R","tuples":10},"tuples":10}`))
	f.Add([]byte(`{"outer":{"relation":{"name":"A","tuples":5},"tuples":5},` +
		`"inner":{"relation":{"name":"B","tuples":3},"tuples":3},"tuples":5}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"tuples":-1}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := mdrs.DecodePlan(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("DecodePlan accepted an invalid plan: %v", err)
		}
		if _, err := p.Encode(); err != nil {
			t.Fatalf("accepted plan failed to re-encode: %v", err)
		}
		// A valid plan must be schedulable end to end.
		if _, err := mdrs.ScheduleQuery(p, mdrs.Options{Sites: 3, Epsilon: 0.5, F: 0.7}); err != nil {
			t.Fatalf("accepted plan failed to schedule: %v", err)
		}
	})
}

// FuzzEnumerateBushyStream asserts the streaming bushy enumeration is a
// faithful subset view of the materialized one under any pruning
// predicate the fuzzer invents: every plan the streaming path yields
// must appear in the materialized enumeration at exactly its reported
// ordinal, ordinals must be strictly increasing, and with pruning
// disabled the two paths must agree plan for plan.
func FuzzEnumerateBushyStream(f *testing.F) {
	f.Add(uint8(3), int64(1), uint8(0))
	f.Add(uint8(4), int64(7), uint8(3))
	f.Add(uint8(5), int64(42), uint8(9))
	f.Add(uint8(1), int64(0), uint8(255))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, pruneRaw uint8) {
		n := int(nRaw%5) + 1 // 1..5 relations: materialization stays cheap
		rels, err := mdrs.RandomRelations(rand.New(rand.NewSource(seed)), n, 10, 1_000)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mdrs.EnumerateBushyPlans(rels)
		if err != nil {
			t.Fatal(err)
		}
		encoded := make([][]byte, len(want))
		for i, p := range want {
			if encoded[i], err = p.Encode(); err != nil {
				t.Fatal(err)
			}
		}
		// A deterministic pseudo-random pruning predicate derived from
		// the fuzzed byte: prune proper subtrees whose tuple count hashes
		// into the cut.
		cut := uint64(pruneRaw % 11)
		prune := func(p *mdrs.PlanNode) bool {
			return cut > 0 && uint64(p.Tuples)*2654435761%11 < cut
		}
		var yielded int64
		last := int64(-1)
		err = mdrs.EnumerateBushyPlansFunc(rels, prune, func(p *mdrs.PlanNode, ord int64) error {
			if ord <= last || ord >= int64(len(want)) {
				t.Fatalf("ordinal %d out of order (last %d, total %d)", ord, last, len(want))
			}
			last = ord
			yielded++
			got, err := p.Encode()
			if err != nil {
				return err
			}
			if !bytes.Equal(got, encoded[ord]) {
				t.Fatalf("streamed plan at ordinal %d differs from materialized", ord)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if cut == 0 && yielded != int64(len(want)) {
			t.Fatalf("unpruned stream yielded %d of %d plans", yielded, len(want))
		}
		if mdrs.CountBushyPlans(n) != int64(len(want)) {
			t.Fatalf("CountBushyPlans(%d) = %d, materialized %d", n, mdrs.CountBushyPlans(n), len(want))
		}
	})
}

// FuzzOperatorSchedule asserts the core list scheduler never panics,
// never violates Definition 5.1, and always respects the (2d+1)·LB
// envelope for whatever clone geometry the fuzzer invents.
func FuzzOperatorSchedule(f *testing.F) {
	f.Add(uint8(2), uint8(2), int64(1), 0.5)
	f.Add(uint8(1), uint8(3), int64(7), 0.0)
	f.Add(uint8(12), uint8(1), int64(42), 1.0)
	f.Fuzz(func(t *testing.T, pRaw, dRaw uint8, seed int64, eps float64) {
		p := int(pRaw%16) + 1
		d := int(dRaw%4) + 1
		if eps < 0 || eps > 1 || math.IsNaN(eps) {
			return
		}
		ov := resource.MustOverlap(eps)
		// Deterministic op synthesis from the seed.
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11) / float64(1<<53) * 10
		}
		m := int(uint64(seed)%7) + 1
		ops := make([]*sched.Op, m)
		for i := range ops {
			n := int(uint64(seed+int64(i))%uint64(p)) + 1
			clones := make([]mdrs.Vector, n)
			for k := range clones {
				w := make(mdrs.Vector, d)
				for j := range w {
					w[j] = next()
				}
				clones[k] = w
			}
			ops[i] = &sched.Op{ID: i, Clones: clones}
		}
		res, err := sched.OperatorSchedule(p, d, ov, ops)
		if err != nil {
			t.Fatalf("valid instance rejected: %v", err)
		}
		for _, op := range ops {
			seen := map[int]bool{}
			for _, site := range res.Sites[op.ID] {
				if site < 0 || site >= p || seen[site] {
					t.Fatalf("placement violates Definition 5.1: %v", res.Sites[op.ID])
				}
				seen[site] = true
			}
		}
		lb := sched.LowerBound(p, ov, ops)
		if res.Response < lb-1e-9 || res.Response > sched.PerformanceRatioBound(d)*lb+1e-9 {
			t.Fatalf("response %g outside [LB, (2d+1)LB] = [%g, %g]",
				res.Response, lb, sched.PerformanceRatioBound(d)*lb)
		}
	})
}
