// Command mdrs-loadgen drives the scheduling service with an open-loop
// workload and writes the resulting load curve as JSON (the
// BENCH_serve.json format tracked at the repository root).
//
// The generator offers load at fixed request rates — Poisson or
// uniform arrivals — against either an in-process SchedulingService
// (the default; measures the serve layer with no network in the way)
// or a running mdrs-serve over HTTP (-target). The plan population is
// a fixed set of templates with mixed join counts, drawn Zipfian so a
// configurable fraction of traffic repeats hot plans (the cache-hit
// skew), and a configurable fraction of requests carry deadlines.
//
// Each offered-load point reports exact p50/p99/p999 delivered
// latency, shed rate, goodput, and the cache-hit and coalesce rates.
// For the in-process target a separate closed-loop saturation probe
// measures the serve layer's own overhead as a fraction of pure
// schedule time (see DESIGN.md §12 for the methodology).
//
// Usage:
//
//	mdrs-loadgen -rps 50,200,800 -duration 5s -out BENCH_serve.json
//	mdrs-loadgen -target http://localhost:8080 -rps 100,400 -cache 256
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mdrs"
)

// options is the full mdrs-loadgen flag surface.
type options struct {
	out      string
	target   string
	rps      string
	duration time.Duration
	arrivals string
	seed     int64

	// Workload population.
	templates    int
	joins        int
	joinsSpread  int
	zipfS        float64
	deadlineFrac float64
	deadline     time.Duration

	// In-process service shape (ignored with -target).
	sites        int
	eps, f       float64
	maxInFlight  int
	maxQueue     int
	maxBatch     int
	batchWindow  time.Duration
	cacheSize    int
	schedWorkers int

	// Saturation overhead probe (in-process only; 0 disables).
	overheadReqs int
}

func parseFlags() options {
	var o options
	flag.StringVar(&o.out, "out", "BENCH_serve.json", "write the load-curve report as JSON to this file")
	flag.StringVar(&o.target, "target", "", "base URL of a running mdrs-serve (empty = in-process service)")
	flag.StringVar(&o.rps, "rps", "50,200,800", "comma-separated offered-load points in requests/sec")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "wall time per offered-load point")
	flag.StringVar(&o.arrivals, "arrivals", "poisson", "arrival process: poisson or uniform")
	flag.Int64Var(&o.seed, "seed", 1, "workload and arrival seed")
	flag.IntVar(&o.templates, "templates", 32, "distinct plan templates in the population")
	flag.IntVar(&o.joins, "joins", 4, "minimum joins per template")
	flag.IntVar(&o.joinsSpread, "joins-spread", 3, "template join counts walk [joins, joins+spread]")
	flag.Float64Var(&o.zipfS, "zipf", 1.2, "Zipf skew over templates (s > 1; <= 1 = uniform draws)")
	flag.Float64Var(&o.deadlineFrac, "deadline-frac", 0.1, "fraction of requests carrying a deadline")
	flag.DurationVar(&o.deadline, "deadline", 250*time.Millisecond, "deadline attached to that fraction")
	flag.IntVar(&o.sites, "sites", 32, "number of system sites P")
	flag.Float64Var(&o.eps, "eps", 0.5, "resource overlap parameter ε in [0,1]")
	flag.Float64Var(&o.f, "f", 0.7, "coarse-granularity parameter f")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "admission limit on concurrent requests (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "bounded wait queue beyond the admission limit (0 = 4x limit, -1 = none)")
	flag.IntVar(&o.maxBatch, "max-batch", 8, "maximum queries per batched workload")
	flag.DurationVar(&o.batchWindow, "batch-window", 2*time.Millisecond, "how long a group waits for companion queries")
	flag.IntVar(&o.cacheSize, "cache", 256, "plan-fingerprint schedule cache size (0 = disabled)")
	flag.IntVar(&o.schedWorkers, "sched-workers", 0, "per-request scheduler worker pool width (0 = GOMAXPROCS)")
	flag.IntVar(&o.overheadReqs, "overhead-requests", 200, "requests per worker in the saturation overhead probe (0 = skip)")
	flag.Parse()
	return o
}

// reportConfig records every knob that shapes the numbers, so two
// BENCH_serve.json files are comparable only when their configs match.
type reportConfig struct {
	Target        string  `json:"target"` // "inproc" or the -target URL
	Arrivals      string  `json:"arrivals"`
	Seed          int64   `json:"seed"`
	Templates     int     `json:"templates"`
	Joins         int     `json:"joins"`
	JoinsSpread   int     `json:"joins_spread"`
	ZipfS         float64 `json:"zipf_s"`
	DeadlineFrac  float64 `json:"deadline_frac"`
	DeadlineMs    float64 `json:"deadline_ms"`
	Sites         int     `json:"sites"`
	Epsilon       float64 `json:"epsilon"`
	F             float64 `json:"f"`
	MaxInFlight   int     `json:"max_inflight"`
	MaxBatch      int     `json:"max_batch"`
	BatchWindowMs float64 `json:"batch_window_ms"`
	CacheSize     int     `json:"cache_size"`
	SchedWorkers  int     `json:"sched_workers"`
}

// report is the BENCH_serve.json document: configuration, one
// PointResult per offered-load point, and (in-process runs) the
// closed-loop saturation overhead probe.
type report struct {
	Config   reportConfig    `json:"config"`
	Points   []PointResult   `json:"points"`
	Overhead *OverheadResult `json:"overhead,omitempty"`
}

func main() {
	if err := run(parseFlags(), os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the full load sweep and writes the report; split from
// main so tests can drive the binary end to end without a process.
func run(o options, errW io.Writer) error {
	rates, err := parseRates(o.rps)
	if err != nil {
		return err
	}
	var poisson bool
	switch o.arrivals {
	case "poisson":
		poisson = true
	case "uniform":
	default:
		return fmt.Errorf("unknown -arrivals %q (want poisson or uniform)", o.arrivals)
	}
	if o.duration <= 0 {
		return fmt.Errorf("-duration must be positive, have %v", o.duration)
	}

	r := rand.New(rand.NewSource(o.seed))
	w, err := newWorkload(r, o.templates, o.joins, o.joinsSpread, o.zipfS, o.deadlineFrac, o.deadline)
	if err != nil {
		return err
	}

	var (
		tgt target
		met *mdrs.Metrics
	)
	targetName := o.target
	if o.target == "" {
		targetName = "inproc"
		met = mdrs.NewMetrics()
		svc, err := newService(o, met, o.maxBatch, o.batchWindow, o.cacheSize)
		if err != nil {
			return err
		}
		defer svc.Close()
		tgt = &inprocTarget{svc: svc, w: w}
	} else {
		tgt = &httpTarget{
			base:   strings.TrimRight(o.target, "/"),
			client: &http.Client{}, // per-request deadlines come from ctx
			w:      w,
		}
	}

	rep := report{
		Config: reportConfig{
			Target:        targetName,
			Arrivals:      o.arrivals,
			Seed:          o.seed,
			Templates:     o.templates,
			Joins:         o.joins,
			JoinsSpread:   o.joinsSpread,
			ZipfS:         o.zipfS,
			DeadlineFrac:  o.deadlineFrac,
			DeadlineMs:    float64(o.deadline) / float64(time.Millisecond),
			Sites:         o.sites,
			Epsilon:       o.eps,
			F:             o.f,
			MaxInFlight:   o.maxInFlight,
			MaxBatch:      o.maxBatch,
			BatchWindowMs: float64(o.batchWindow) / float64(time.Millisecond),
			CacheSize:     o.cacheSize,
			SchedWorkers:  o.schedWorkers,
		},
	}

	ctx := context.Background()
	for _, rps := range rates {
		pt := runPoint(ctx, tgt, w, met, rps, o.duration, poisson, r)
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(errW,
			"mdrs-loadgen: %7.1f rps offered: goodput %7.1f/s, shed %5.1f%%, p50 %.2fms, p99 %.2fms, p999 %.2fms, cache %4.1f%%\n",
			pt.OfferedRPS, pt.GoodputRPS, 100*pt.ShedRate,
			pt.Latency.P50, pt.Latency.P99, pt.Latency.P999, 100*pt.CacheHitRate)
	}

	// The overhead probe only makes sense against the in-process
	// service: it needs a dedicated instance with batching and caching
	// off, and the serve-layer histograms to decompose wall time.
	if o.target == "" && o.overheadReqs > 0 {
		conc := o.maxInFlight
		if conc <= 0 {
			conc = runtime.GOMAXPROCS(0)
		}
		oh, err := measureOverhead(func(m *mdrs.Metrics) (*mdrs.SchedulingService, error) {
			return newService(o, m, 1, 0, 0) // MaxBatch 1, no window, no cache
		}, w.trees, conc, o.overheadReqs)
		if err != nil {
			return err
		}
		rep.Overhead = &oh
		fmt.Fprintf(errW,
			"mdrs-loadgen: saturation probe: %d workers, request %.0fµs vs schedule %.0fµs → serve overhead %.2f%%\n",
			oh.Concurrency, oh.RequestUsMean, oh.ScheduleUs, 100*oh.OverheadFrac)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(errW, "mdrs-loadgen: wrote %d points to %s\n", len(rep.Points), o.out)
	return nil
}

// newService builds an in-process scheduling service with the run's
// scheduler shape; batch/window/cache are parameters so the overhead
// probe can strip them while keeping the same scheduler.
func newService(o options, met *mdrs.Metrics, maxBatch int, window time.Duration, cacheSize int) (*mdrs.SchedulingService, error) {
	ov, err := mdrs.NewOverlap(o.eps)
	if err != nil {
		return nil, err
	}
	ts := mdrs.TreeScheduler{
		Model:   mdrs.DefaultCostModel(),
		Overlap: ov,
		P:       o.sites,
		F:       o.f,
		Rec:     met,
		Workers: o.schedWorkers,
	}
	if cacheSize > 0 {
		ts.Cache = mdrs.NewCostCache(ts.Model)
	}
	return mdrs.NewSchedulingService(mdrs.ServeConfig{
		Scheduler:   ts,
		MaxInFlight: o.maxInFlight,
		MaxQueue:    o.maxQueue,
		MaxBatch:    maxBatch,
		BatchWindow: window,
		CacheSize:   cacheSize,
		Rec:         met,
	})
}

// parseRates parses the -rps comma list into positive rates.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -rps entry %q (want positive numbers)", part)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rps is empty")
	}
	return rates, nil
}
