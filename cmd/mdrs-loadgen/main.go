// Command mdrs-loadgen drives the scheduling service with an open-loop
// workload and writes the resulting load curve as JSON (the
// BENCH_serve.json format tracked at the repository root).
//
// The generator offers load at fixed request rates — Poisson or
// uniform arrivals — against either an in-process SchedulingService
// (the default; measures the serve layer with no network in the way)
// or a running mdrs-serve over HTTP (-target). The plan population is
// a fixed set of templates with mixed join counts, drawn Zipfian so a
// configurable fraction of traffic repeats hot plans (the cache-hit
// skew), and a configurable fraction of requests carry deadlines.
//
// Each offered-load point reports exact p50/p99/p999 delivered
// latency, shed rate, goodput, and the cache-hit and coalesce rates.
// For the in-process target a separate closed-loop saturation probe
// measures the serve layer's own overhead as a fraction of pure
// schedule time (see DESIGN.md §12 for the methodology).
//
// Usage:
//
//	mdrs-loadgen -rps 50,200,800 -duration 5s -out BENCH_serve.json
//	mdrs-loadgen -target http://localhost:8080 -rps 100,400 -cache 256
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mdrs"
)

// options is the full mdrs-loadgen flag surface.
type options struct {
	out      string
	target   string
	rps      string
	duration time.Duration
	arrivals string
	seed     int64

	// Workload population.
	templates    int
	joins        int
	joinsSpread  int
	zipfS        float64
	deadlineFrac float64
	deadline     time.Duration

	// Load shape: steady, ramp, or step, with the bucket count shaped
	// runs report transient behavior at.
	shape        string
	shapeBuckets int

	// In-process service shape (ignored with -target).
	sites        int
	eps, f       float64
	maxInFlight  int
	maxQueue     int
	maxBatch     int
	batchWindow  time.Duration
	cacheSize    int
	schedWorkers int
	maxDegree    int
	controller   bool

	// compareController runs the whole sweep twice against fresh
	// in-process services — controller off, then on — and writes the
	// paired curves (the BENCH_adaptive.json format).
	compareController bool

	// Saturation overhead probe (in-process only; 0 disables).
	overheadReqs int
}

func parseFlags() options {
	var o options
	flag.StringVar(&o.out, "out", "BENCH_serve.json", "write the load-curve report as JSON to this file")
	flag.StringVar(&o.target, "target", "", "base URL of a running mdrs-serve (empty = in-process service)")
	flag.StringVar(&o.rps, "rps", "50,200,800", "comma-separated offered-load points in requests/sec")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "wall time per offered-load point")
	flag.StringVar(&o.arrivals, "arrivals", "poisson", "arrival process: poisson or uniform")
	flag.Int64Var(&o.seed, "seed", 1, "workload and arrival seed")
	flag.IntVar(&o.templates, "templates", 32, "distinct plan templates in the population")
	flag.IntVar(&o.joins, "joins", 4, "minimum joins per template")
	flag.IntVar(&o.joinsSpread, "joins-spread", 3, "template join counts walk [joins, joins+spread]")
	flag.Float64Var(&o.zipfS, "zipf", 1.2, "Zipf skew over templates (s > 1; <= 1 = uniform draws)")
	flag.Float64Var(&o.deadlineFrac, "deadline-frac", 0.1, "fraction of requests carrying a deadline")
	flag.DurationVar(&o.deadline, "deadline", 250*time.Millisecond, "deadline attached to that fraction")
	flag.IntVar(&o.sites, "sites", 32, "number of system sites P")
	flag.Float64Var(&o.eps, "eps", 0.5, "resource overlap parameter ε in [0,1]")
	flag.Float64Var(&o.f, "f", 0.7, "coarse-granularity parameter f")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "admission limit on concurrent requests (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "bounded wait queue beyond the admission limit (0 = 4x limit, -1 = none)")
	flag.IntVar(&o.maxBatch, "max-batch", 8, "maximum queries per batched workload")
	flag.DurationVar(&o.batchWindow, "batch-window", 2*time.Millisecond, "how long a group waits for companion queries")
	flag.IntVar(&o.cacheSize, "cache", 256, "plan-fingerprint schedule cache size (0 = disabled)")
	flag.IntVar(&o.schedWorkers, "sched-workers", 0, "per-request scheduler worker pool width (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxDegree, "max-degree", 0, "per-query parallelism cap on floating operators (0 = uncapped)")
	flag.BoolVar(&o.controller, "controller", false, "enable the adaptive parallelism controller on the in-process service")
	flag.StringVar(&o.shape, "shape", "steady", "load shape per point: steady, ramp (20%->100% of the rate), or step (25% then 100% at the midpoint)")
	flag.IntVar(&o.shapeBuckets, "shape-buckets", 5, "time buckets a ramp/step run reports transient results at")
	flag.BoolVar(&o.compareController, "compare-controller", false, "run the sweep twice (controller off, then on) against fresh in-process services and write paired curves")
	flag.IntVar(&o.overheadReqs, "overhead-requests", 200, "requests per worker in the saturation overhead probe (0 = skip)")
	flag.Parse()
	return o
}

// reportConfig records every knob that shapes the numbers, so two
// BENCH_serve.json files are comparable only when their configs match.
type reportConfig struct {
	Target        string  `json:"target"` // "inproc" or the -target URL
	Arrivals      string  `json:"arrivals"`
	Seed          int64   `json:"seed"`
	Templates     int     `json:"templates"`
	Joins         int     `json:"joins"`
	JoinsSpread   int     `json:"joins_spread"`
	ZipfS         float64 `json:"zipf_s"`
	DeadlineFrac  float64 `json:"deadline_frac"`
	DeadlineMs    float64 `json:"deadline_ms"`
	Sites         int     `json:"sites"`
	Epsilon       float64 `json:"epsilon"`
	F             float64 `json:"f"`
	MaxInFlight   int     `json:"max_inflight"`
	MaxBatch      int     `json:"max_batch"`
	BatchWindowMs float64 `json:"batch_window_ms"`
	CacheSize     int     `json:"cache_size"`
	SchedWorkers  int     `json:"sched_workers"`
	MaxDegree     int     `json:"max_degree,omitempty"`
	Controller    bool    `json:"controller,omitempty"`
	Shape         string  `json:"shape,omitempty"`
}

// report is the BENCH_serve.json document: configuration, one
// PointResult per offered-load point, and (in-process runs) the
// closed-loop saturation overhead probe.
type report struct {
	Config   reportConfig    `json:"config"`
	Points   []PointResult   `json:"points"`
	Overhead *OverheadResult `json:"overhead,omitempty"`
}

func main() {
	if err := run(parseFlags(), os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the full load sweep and writes the report; split from
// main so tests can drive the binary end to end without a process.
func run(o options, errW io.Writer) error {
	rates, err := parseRates(o.rps)
	if err != nil {
		return err
	}
	var poisson bool
	switch o.arrivals {
	case "poisson":
		poisson = true
	case "uniform":
	default:
		return fmt.Errorf("unknown -arrivals %q (want poisson or uniform)", o.arrivals)
	}
	if o.duration <= 0 {
		return fmt.Errorf("-duration must be positive, have %v", o.duration)
	}
	switch o.shape {
	case "":
		o.shape = shapeSteady // zero value (tests building options directly)
	case shapeSteady, shapeRamp, shapeStep:
	default:
		return fmt.Errorf("unknown -shape %q (want steady, ramp, or step)", o.shape)
	}
	if o.compareController {
		if o.target != "" {
			return fmt.Errorf("-compare-controller needs the in-process target (it builds both services itself)")
		}
		return runCompare(o, rates, poisson, errW)
	}

	r := rand.New(rand.NewSource(o.seed))
	w, err := newWorkload(r, o.templates, o.joins, o.joinsSpread, o.zipfS, o.deadlineFrac, o.deadline)
	if err != nil {
		return err
	}

	var (
		tgt target
		met *mdrs.Metrics
	)
	targetName := o.target
	if o.target == "" {
		targetName = "inproc"
		met = mdrs.NewMetrics()
		svc, err := newService(o, met, o.maxBatch, o.batchWindow, o.cacheSize, o.controller)
		if err != nil {
			return err
		}
		defer svc.Close()
		tgt = &inprocTarget{svc: svc, w: w}
	} else {
		tgt = &httpTarget{
			base:   strings.TrimRight(o.target, "/"),
			client: &http.Client{}, // per-request deadlines come from ctx
			w:      w,
		}
	}

	rep := report{
		Config: reportConfig{
			Target:        targetName,
			Arrivals:      o.arrivals,
			Seed:          o.seed,
			Templates:     o.templates,
			Joins:         o.joins,
			JoinsSpread:   o.joinsSpread,
			ZipfS:         o.zipfS,
			DeadlineFrac:  o.deadlineFrac,
			DeadlineMs:    float64(o.deadline) / float64(time.Millisecond),
			Sites:         o.sites,
			Epsilon:       o.eps,
			F:             o.f,
			MaxInFlight:   o.maxInFlight,
			MaxBatch:      o.maxBatch,
			BatchWindowMs: float64(o.batchWindow) / float64(time.Millisecond),
			CacheSize:     o.cacheSize,
			SchedWorkers:  o.schedWorkers,
			MaxDegree:     o.maxDegree,
			Controller:    o.controller,
			Shape:         o.shape,
		},
	}

	ctx := context.Background()
	for _, rps := range rates {
		if o.shape == shapeSteady {
			pt := runPoint(ctx, tgt, w, met, rps, o.duration, poisson, r)
			rep.Points = append(rep.Points, pt)
			logPoint(errW, pt)
			continue
		}
		// A shaped run reports one transient bucket per time slice; each
		// -rps entry is the shape's peak.
		for _, pt := range runShaped(ctx, tgt, w, o.shape, rps, o.duration, o.shapeBuckets, poisson, r) {
			rep.Points = append(rep.Points, pt)
			logPoint(errW, pt)
		}
	}

	// The overhead probe only makes sense against the in-process
	// service: it needs a dedicated instance with batching and caching
	// off, and the serve-layer histograms to decompose wall time.
	if o.target == "" && o.overheadReqs > 0 {
		conc := o.maxInFlight
		if conc <= 0 {
			conc = runtime.GOMAXPROCS(0)
		}
		oh, err := measureOverhead(func(m *mdrs.Metrics) (*mdrs.SchedulingService, error) {
			return newService(o, m, 1, 0, 0, false) // MaxBatch 1, no window, no cache, no controller
		}, w.trees, conc, o.overheadReqs)
		if err != nil {
			return err
		}
		rep.Overhead = &oh
		fmt.Fprintf(errW,
			"mdrs-loadgen: saturation probe: %d workers, request %.0fµs vs schedule %.0fµs → serve overhead %.2f%%\n",
			oh.Concurrency, oh.RequestUsMean, oh.ScheduleUs, 100*oh.OverheadFrac)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(errW, "mdrs-loadgen: wrote %d points to %s\n", len(rep.Points), o.out)
	return nil
}

// newService builds an in-process scheduling service with the run's
// scheduler shape; batch/window/cache/controller are parameters so the
// overhead probe can strip them — and the comparison mode can flip the
// controller — while keeping the same scheduler.
func newService(o options, met *mdrs.Metrics, maxBatch int, window time.Duration, cacheSize int, controller bool) (*mdrs.SchedulingService, error) {
	ov, err := mdrs.NewOverlap(o.eps)
	if err != nil {
		return nil, err
	}
	ts := mdrs.TreeScheduler{
		Model:     mdrs.DefaultCostModel(),
		Overlap:   ov,
		P:         o.sites,
		F:         o.f,
		MaxDegree: o.maxDegree,
		Rec:       met,
		Workers:   o.schedWorkers,
	}
	if cacheSize > 0 {
		ts.Cache = mdrs.NewCostCache(ts.Model)
	}
	return mdrs.NewSchedulingService(mdrs.ServeConfig{
		Scheduler:   ts,
		MaxInFlight: o.maxInFlight,
		MaxQueue:    o.maxQueue,
		MaxBatch:    maxBatch,
		BatchWindow: window,
		CacheSize:   cacheSize,
		Controller:  mdrs.ServeControllerConfig{Enable: controller, Source: met},
		Rec:         met,
	})
}

// logPoint prints one point's one-line summary to stderr.
func logPoint(errW io.Writer, pt PointResult) {
	fmt.Fprintf(errW,
		"mdrs-loadgen: %7.1f rps offered: goodput %7.1f/s, shed %5.1f%%, p50 %.2fms, p99 %.2fms, p999 %.2fms, cache %4.1f%%\n",
		pt.OfferedRPS, pt.GoodputRPS, 100*pt.ShedRate,
		pt.Latency.P50, pt.Latency.P99, pt.Latency.P999, 100*pt.CacheHitRate)
}

// curve is one arm of the controller comparison: the steady
// offered-load sweep plus one ramp run at the highest rate.
type curve struct {
	Controller bool          `json:"controller"`
	Points     []PointResult `json:"points"`
	Ramp       []PointResult `json:"ramp"`
}

// compareReport is the BENCH_adaptive.json document: the shared
// configuration and the controller-off and controller-on curves.
type compareReport struct {
	Config reportConfig `json:"config"`
	Off    curve        `json:"off"`
	On     curve        `json:"on"`
}

// runCompare runs the same sweep twice — against a fresh in-process
// service with the controller off, then on — and writes the paired
// curves. Each arm reseeds the workload and arrival RNG from -seed, so
// both services face an identical request sequence and the only
// difference between the curves is the controller.
func runCompare(o options, rates []float64, poisson bool, errW io.Writer) error {
	rep := compareReport{
		Config: reportConfig{
			Target:        "inproc",
			Arrivals:      o.arrivals,
			Seed:          o.seed,
			Templates:     o.templates,
			Joins:         o.joins,
			JoinsSpread:   o.joinsSpread,
			ZipfS:         o.zipfS,
			DeadlineFrac:  o.deadlineFrac,
			DeadlineMs:    float64(o.deadline) / float64(time.Millisecond),
			Sites:         o.sites,
			Epsilon:       o.eps,
			F:             o.f,
			MaxInFlight:   o.maxInFlight,
			MaxBatch:      o.maxBatch,
			BatchWindowMs: float64(o.batchWindow) / float64(time.Millisecond),
			CacheSize:     o.cacheSize,
			SchedWorkers:  o.schedWorkers,
			MaxDegree:     o.maxDegree,
		},
	}
	for _, controller := range []bool{false, true} {
		fmt.Fprintf(errW, "mdrs-loadgen: --- controller %v ---\n", onOff(controller))
		c, err := runCurve(o, rates, poisson, controller, errW)
		if err != nil {
			return err
		}
		if controller {
			rep.On = c
		} else {
			rep.Off = c
		}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(errW, "mdrs-loadgen: wrote controller on/off curves (%d steady points + %d ramp buckets each) to %s\n",
		len(rep.Off.Points), len(rep.Off.Ramp), o.out)
	return nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// runCurve runs one comparison arm: the steady sweep, then a ramp to
// the highest offered rate to exercise the controller's transient
// response.
func runCurve(o options, rates []float64, poisson bool, controller bool, errW io.Writer) (curve, error) {
	r := rand.New(rand.NewSource(o.seed))
	w, err := newWorkload(r, o.templates, o.joins, o.joinsSpread, o.zipfS, o.deadlineFrac, o.deadline)
	if err != nil {
		return curve{}, err
	}
	met := mdrs.NewMetrics()
	svc, err := newService(o, met, o.maxBatch, o.batchWindow, o.cacheSize, controller)
	if err != nil {
		return curve{}, err
	}
	defer svc.Close()
	tgt := &inprocTarget{svc: svc, w: w}

	c := curve{Controller: controller}
	ctx := context.Background()
	for _, rps := range rates {
		pt := runPoint(ctx, tgt, w, met, rps, o.duration, poisson, r)
		c.Points = append(c.Points, pt)
		logPoint(errW, pt)
	}
	peak := rates[len(rates)-1]
	for _, rate := range rates {
		if rate > peak {
			peak = rate
		}
	}
	c.Ramp = runShaped(ctx, tgt, w, shapeRamp, peak, o.duration, o.shapeBuckets, poisson, r)
	for _, pt := range c.Ramp {
		logPoint(errW, pt)
	}
	return c, nil
}

// parseRates parses the -rps comma list into positive rates.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -rps entry %q (want positive numbers)", part)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rps is empty")
	}
	return rates, nil
}
