package main

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseRates(t *testing.T) {
	got, err := parseRates("50, 200,800")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 200, 800}
	if len(got) != len(want) {
		t.Fatalf("parseRates: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseRates[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "0", "-5", "abc", "10,,x"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestWorkloadZipfSkewAndDeterminism(t *testing.T) {
	w, err := newWorkload(rand.New(rand.NewSource(3)), 8, 2, 2, 1.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.zipf == nil {
		t.Fatal("zipf s=1.5 did not engage the Zipf generator")
	}
	r := rand.New(rand.NewSource(4))
	counts := make([]int, 8)
	for i := 0; i < 4000; i++ {
		counts[w.draw(r).template]++
	}
	if counts[0] <= counts[7] {
		t.Fatalf("Zipf draws not skewed to rank 0: %v", counts)
	}

	// s <= 1 degrades to uniform draws over the population.
	u, err := newWorkload(rand.New(rand.NewSource(3)), 8, 2, 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.zipf != nil {
		t.Fatal("zipf s=0 still built a Zipf generator")
	}

	// Same seed, same population: the template trees are byte-stable.
	w2, err := newWorkload(rand.New(rand.NewSource(3)), 8, 2, 2, 1.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.bodies {
		if string(w.bodies[i]) != string(w2.bodies[i]) {
			t.Fatalf("template %d differs across same-seed workloads", i)
		}
	}
}

func TestWorkloadDeadlineMix(t *testing.T) {
	w, err := newWorkload(rand.New(rand.NewSource(5)), 2, 2, 0, 0, 0.5, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	with := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if w.draw(r).deadline > 0 {
			with++
		}
	}
	if with < draws/3 || with > 2*draws/3 {
		t.Fatalf("deadline-frac 0.5 gave %d/%d deadlines", with, draws)
	}
}

func TestExactQuantile(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	st := latencyStats(lats)
	if st.P50 != 50 || st.P99 != 99 || st.Max != 100 {
		t.Fatalf("stats: %+v", st)
	}
	if st.P999 != 100 { // nearest rank of 0.999 over 100 samples
		t.Fatalf("p999: %v", st.P999)
	}
	if st.Mean != 50.5 {
		t.Fatalf("mean: %v", st.Mean)
	}
	if zero := latencyStats(nil); zero != (LatencyStats{}) {
		t.Fatalf("empty stats: %+v", zero)
	}
}

// TestHTTPTargetClassifiesOutcomes drives the HTTP target against a
// stub server and checks the status-to-outcome mapping mdrs-serve uses.
func TestHTTPTargetClassifiesOutcomes(t *testing.T) {
	w, err := newWorkload(rand.New(rand.NewSource(7)), 1, 2, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var status int
	var cached string
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/schedule" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		if cached != "" {
			rw.Header().Set("X-Mdrs-Cached", cached)
		}
		rw.WriteHeader(status)
	}))
	defer srv.Close()
	tgt := &httpTarget{base: srv.URL, client: srv.Client(), w: w}

	cases := []struct {
		status  int
		cached  string
		outcome int
		hit     bool
	}{
		{http.StatusOK, "true", outDelivered, true},
		{http.StatusOK, "false", outDelivered, false},
		{http.StatusServiceUnavailable, "", outShed, false},
		{http.StatusGatewayTimeout, "", outCancelled, false},
		{http.StatusInternalServerError, "", outFailed, false},
	}
	for _, c := range cases {
		status, cached = c.status, c.cached
		s := tgt.do(context.Background(), reqSpec{})
		if s.outcome != c.outcome || s.cached != c.hit {
			t.Errorf("status %d: outcome %d cached %v, want %d %v",
				c.status, s.outcome, s.cached, c.outcome, c.hit)
		}
	}

	// A transport-level failure is outFailed, not a crash.
	srv.Close()
	if s := tgt.do(context.Background(), reqSpec{}); s.outcome != outFailed {
		t.Errorf("closed server: outcome %d, want outFailed", s.outcome)
	}
}

// TestRunWritesReport is the end-to-end check: a short in-process sweep
// over three offered-load points lands in a parseable BENCH_serve.json
// with the full latency/shed/goodput surface and the overhead probe.
func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	o := options{
		out:          out,
		rps:          "80,160,240",
		duration:     120 * time.Millisecond,
		arrivals:     "poisson",
		seed:         1,
		templates:    4,
		joins:        2,
		joinsSpread:  1,
		zipfS:        1.3,
		deadlineFrac: 0.2,
		deadline:     200 * time.Millisecond,
		sites:        8,
		eps:          0.5,
		f:            0.7,
		maxInFlight:  4,
		maxBatch:     4,
		batchWindow:  time.Millisecond,
		cacheSize:    16,
		overheadReqs: 4,
	}
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points: %d, want 3", len(rep.Points))
	}
	for i, pt := range rep.Points {
		if pt.Sent <= 0 {
			t.Fatalf("point %d sent nothing: %+v", i, pt)
		}
		if got := pt.Delivered + pt.Shed + pt.Cancelled + pt.Failed; got != pt.Sent {
			t.Fatalf("point %d outcome classes sum to %d, sent %d", i, got, pt.Sent)
		}
		if pt.Delivered > 0 && (pt.Latency.P50 <= 0 || pt.Latency.P99 < pt.Latency.P50 ||
			pt.Latency.P999 < pt.Latency.P99) {
			t.Fatalf("point %d latency not ordered: %+v", i, pt.Latency)
		}
		if pt.GoodputRPS < 0 || pt.ShedRate < 0 || pt.ShedRate > 1 {
			t.Fatalf("point %d rates: %+v", i, pt)
		}
	}
	if rep.Config.Target != "inproc" || rep.Config.CacheSize != 16 {
		t.Fatalf("config echo: %+v", rep.Config)
	}
	if rep.Overhead == nil || rep.Overhead.Requests != 4*4 {
		t.Fatalf("overhead probe: %+v", rep.Overhead)
	}
	if rep.Overhead.ScheduleUs <= 0 || rep.Overhead.RequestUsMean <= 0 {
		t.Fatalf("overhead timings: %+v", rep.Overhead)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	base := options{out: filepath.Join(t.TempDir(), "x.json"), rps: "10",
		duration: time.Millisecond, arrivals: "poisson", templates: 1, joins: 2,
		sites: 8, eps: 0.5, f: 0.7}
	bad := base
	bad.arrivals = "bursty"
	if err := run(bad, io.Discard); err == nil {
		t.Error("-arrivals bursty accepted")
	}
	bad = base
	bad.rps = "0"
	if err := run(bad, io.Discard); err == nil {
		t.Error("-rps 0 accepted")
	}
	bad = base
	bad.duration = 0
	if err := run(bad, io.Discard); err == nil {
		t.Error("-duration 0 accepted")
	}
	bad = base
	bad.templates = 0
	if err := run(bad, io.Discard); err == nil {
		t.Error("-templates 0 accepted")
	}
}
