// The load-generation core: workload synthesis, the open-loop arrival
// process, outcome aggregation, and the saturation overhead probe.
//
// The generator is strictly open-loop: request arrival times are drawn
// from the offered-load process (Poisson or uniform at a fixed RPS) and
// never depend on when earlier requests complete. A closed-loop driver
// (N workers, each waiting for its response before sending again) would
// let a slow server throttle its own load and hide latency collapse —
// the coordinated-omission trap. Here a late response just means more
// requests are in flight when the next arrival fires, exactly like real
// traffic; if the dispatcher itself falls behind schedule it fires
// immediately rather than silently stretching the arrival gaps.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mdrs"
)

// Request outcome classes. Every request lands in exactly one.
const (
	outDelivered = iota // schedule returned
	outShed             // admission control rejected (503 / ErrOverloaded)
	outCancelled        // the request's own deadline expired first
	outFailed           // anything else (transport error, 5xx, scheduling error)
	outClasses
)

// reqSpec is one arrival drawn from the workload: which plan template
// to send and whether it carries a deadline. Draws happen in the
// dispatcher goroutine from a single seeded source, so the request
// sequence is deterministic per (seed, rps, duration).
type reqSpec struct {
	template int
	deadline time.Duration // 0 = no deadline
}

// sample is one completed request's measurement. retryAfter is the
// server's backoff hint on a shed response (0 = none): the generator
// records it — reported per point as RetryAfterMeanSec — but never
// obeys it, because the arrival process is open-loop by contract; a
// generator that backed off when told to would let the server throttle
// its own offered load and hide the very overload the curve measures.
type sample struct {
	latency    time.Duration
	outcome    int
	cached     bool
	deadline   bool
	retryAfter time.Duration
}

// workload is the plan population requests are drawn from: templates
// distinct task trees (with their JSON encodings for the HTTP target),
// a Zipf rank distribution over them, and the deadline mix.
type workload struct {
	trees        []*mdrs.TaskTree
	bodies       [][]byte
	zipf         *rand.Zipf // nil = uniform over templates
	deadlineFrac float64
	deadline     time.Duration
}

// newWorkload synthesizes the template population. Template i's join
// count walks the [joins, joins+spread] range so sizes are mixed, and
// the Zipf skew s (> 1 engages the stdlib generator; <= 1 degrades to
// uniform) concentrates draws on the low-ranked templates — the
// configurable cache-hit skew.
func newWorkload(r *rand.Rand, templates, joins, spread int, zipfS, deadlineFrac float64, deadline time.Duration) (*workload, error) {
	if templates < 1 {
		return nil, fmt.Errorf("loadgen: need at least one template, have %d", templates)
	}
	if joins < 1 {
		return nil, fmt.Errorf("loadgen: need at least one join, have %d", joins)
	}
	if spread < 0 {
		spread = 0
	}
	w := &workload{
		trees:        make([]*mdrs.TaskTree, templates),
		bodies:       make([][]byte, templates),
		deadlineFrac: deadlineFrac,
		deadline:     deadline,
	}
	for i := range w.trees {
		nj := joins + i%(spread+1)
		p, err := mdrs.RandomPlan(r, mdrs.DefaultGenConfig(nj))
		if err != nil {
			return nil, err
		}
		if w.bodies[i], err = p.Encode(); err != nil {
			return nil, err
		}
		if _, w.trees[i], err = mdrs.PrepareQuery(p); err != nil {
			return nil, err
		}
	}
	if zipfS > 1 && templates > 1 {
		w.zipf = rand.NewZipf(r, zipfS, 1, uint64(templates-1))
	}
	return w, nil
}

// draw picks the next arrival's template and deadline from the
// workload's distributions.
func (w *workload) draw(r *rand.Rand) reqSpec {
	var spec reqSpec
	if w.zipf != nil {
		spec.template = int(w.zipf.Uint64())
	} else {
		spec.template = r.Intn(len(w.trees))
	}
	if w.deadlineFrac > 0 && r.Float64() < w.deadlineFrac {
		spec.deadline = w.deadline
	}
	return spec
}

// target abstracts the system under load: the in-process service or a
// remote mdrs-serve over HTTP.
type target interface {
	do(ctx context.Context, spec reqSpec) sample
}

// inprocTarget drives a serve.Service directly — no HTTP in the way,
// so the measured latency is the serve layer plus scheduling and
// nothing else.
type inprocTarget struct {
	svc *mdrs.SchedulingService
	w   *workload
}

func (t *inprocTarget) do(ctx context.Context, spec reqSpec) sample {
	if spec.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.deadline)
		defer cancel()
	}
	start := time.Now()
	res, err := t.svc.Schedule(ctx, t.w.trees[spec.template])
	s := sample{latency: time.Since(start), deadline: spec.deadline > 0}
	switch {
	case err == nil:
		s.outcome = outDelivered
		s.cached = res.Cached
	case errors.Is(err, mdrs.ErrOverloaded):
		s.outcome = outShed
		s.retryAfter = t.svc.RetryAfter()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.outcome = outCancelled
	default:
		s.outcome = outFailed
	}
	return s
}

// httpTarget POSTs encoded plans to a running mdrs-serve.
type httpTarget struct {
	base   string
	client *http.Client
	w      *workload
}

func (t *httpTarget) do(ctx context.Context, spec reqSpec) sample {
	if spec.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.deadline)
		defer cancel()
	}
	start := time.Now()
	s := sample{deadline: spec.deadline > 0}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		t.base+"/schedule", bytes.NewReader(t.w.bodies[spec.template]))
	if err != nil {
		s.latency = time.Since(start)
		s.outcome = outFailed
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		s.latency = time.Since(start)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.outcome = outCancelled
		} else {
			s.outcome = outFailed
		}
		return s
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	s.latency = time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
		s.outcome = outDelivered
		s.cached = resp.Header.Get("X-Mdrs-Cached") == "true"
	case http.StatusServiceUnavailable:
		s.outcome = outShed
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			s.retryAfter = time.Duration(secs) * time.Second
		}
	case http.StatusGatewayTimeout:
		s.outcome = outCancelled
	default:
		s.outcome = outFailed
	}
	return s
}

// aggregator collects samples from the per-request goroutines.
type aggregator struct {
	mu        sync.Mutex
	latencies []time.Duration // delivered requests only
	counts    [outClasses]int
	cached    int
	retrySum  time.Duration // sum of shed responses' Retry-After hints
	retryN    int
}

func (a *aggregator) record(s sample) {
	a.mu.Lock()
	a.counts[s.outcome]++
	if s.outcome == outDelivered {
		a.latencies = append(a.latencies, s.latency)
		if s.cached {
			a.cached++
		}
	}
	if s.retryAfter > 0 {
		a.retrySum += s.retryAfter
		a.retryN++
	}
	a.mu.Unlock()
}

// LatencyStats summarizes the delivered-request latency distribution in
// milliseconds. Quantiles are exact (computed over the full sorted
// sample set, not bucket estimates); p999 is only meaningful once a
// point has observed well over a thousand deliveries.
type LatencyStats struct {
	Mean float64 `json:"mean_ms"`
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

// latencyStats sorts (destructively) and summarizes.
func latencyStats(lats []time.Duration) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencyStats{
		Mean: ms(sum / time.Duration(len(lats))),
		P50:  ms(exactQuantile(lats, 0.50)),
		P99:  ms(exactQuantile(lats, 0.99)),
		P999: ms(exactQuantile(lats, 0.999)),
		Max:  ms(lats[len(lats)-1]),
	}
}

// exactQuantile returns the q-quantile of a sorted sample set by the
// nearest-rank method.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// PointResult is one offered-load point of the curve.
type PointResult struct {
	OfferedRPS  float64      `json:"offered_rps"`
	DurationSec float64      `json:"duration_sec"`
	Sent        int          `json:"sent"`
	Delivered   int          `json:"delivered"`
	Shed        int          `json:"shed"`
	Cancelled   int          `json:"cancelled"`
	Failed      int          `json:"failed"`
	AchievedRPS float64      `json:"achieved_rps"` // sent / elapsed: how close the dispatcher held the offered rate
	GoodputRPS  float64      `json:"goodput_rps"`  // delivered / elapsed
	ShedRate    float64      `json:"shed_rate"`    // shed / sent
	Latency     LatencyStats `json:"latency"`
	// CacheHitRate is delivered-from-cache / delivered (LRU hits plus
	// singleflight coalescences, as observed per request).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CoalesceRate is the serve.cache_coalesced delta per valid request
	// (in-process target only; 0 over HTTP, where only the per-request
	// cached bit is visible).
	CoalesceRate float64 `json:"coalesce_rate"`
	// RetryAfterMeanSec is the mean backoff hint carried by this point's
	// shed responses, in seconds. Recorded, never obeyed: the arrival
	// process is open-loop by contract.
	RetryAfterMeanSec float64 `json:"retry_after_mean_sec,omitempty"`
	// ServeOverheadFrac is (request_seconds − schedule_seconds) /
	// schedule_seconds from the service's own histograms over this point
	// (in-process target only). It includes queueing and window time, so
	// past saturation it grows without bound — the controlled overhead
	// number is the separate saturation probe's.
	ServeOverheadFrac float64 `json:"serve_overhead_frac,omitempty"`
}

// metricsDelta reads the counters/sums the per-point serve-side rates
// are derived from.
type metricsDelta struct {
	requests, coalesced    int64
	requestSec, partialSec float64
}

func snapshotDelta(met *mdrs.Metrics) metricsDelta {
	if met == nil {
		return metricsDelta{}
	}
	snap := met.Snapshot()
	return metricsDelta{
		requests:   snap.Counters["serve.requests"],
		coalesced:  snap.Counters["serve.cache_coalesced"],
		requestSec: snap.Histograms["serve.request_seconds"].Sum,
		partialSec: snap.Histograms["serve.schedule_seconds"].Sum,
	}
}

// runPoint drives one offered-load point: an open-loop arrival process
// at rps for duration, firing each request on its own goroutine the
// moment its arrival time comes due.
func runPoint(ctx context.Context, tgt target, w *workload, met *mdrs.Metrics,
	rps float64, duration time.Duration, poisson bool, r *rand.Rand) PointResult {
	before := snapshotDelta(met)
	var (
		agg   aggregator
		wg    sync.WaitGroup
		sent  int
		start = time.Now()
		next  = start
		end   = start.Add(duration)
	)
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		if next.After(now) {
			time.Sleep(next.Sub(now))
			if !time.Now().Before(end) {
				break
			}
		}
		// Draw in the dispatcher so the request sequence depends only on
		// the seed, never on completion timing.
		spec := w.draw(r)
		sent++
		wg.Add(1)
		go func(spec reqSpec) {
			defer wg.Done()
			agg.record(tgt.do(ctx, spec))
		}(spec)
		var gap time.Duration
		if poisson {
			gap = time.Duration(r.ExpFloat64() / rps * float64(time.Second))
		} else {
			gap = time.Duration(float64(time.Second) / rps)
		}
		// Open loop: if we are already past the next arrival time the
		// request fires immediately — lateness is never folded into the
		// offered process.
		next = next.Add(gap)
	}
	elapsed := time.Since(start)
	wg.Wait()
	after := snapshotDelta(met)

	res := PointResult{
		OfferedRPS:  rps,
		DurationSec: duration.Seconds(),
		Sent:        sent,
		Delivered:   agg.counts[outDelivered],
		Shed:        agg.counts[outShed],
		Cancelled:   agg.counts[outCancelled],
		Failed:      agg.counts[outFailed],
		Latency:     latencyStats(agg.latencies),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.AchievedRPS = float64(sent) / secs
		res.GoodputRPS = float64(res.Delivered) / secs
	}
	if sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(sent)
	}
	if res.Delivered > 0 {
		res.CacheHitRate = float64(agg.cached) / float64(res.Delivered)
	}
	if agg.retryN > 0 {
		res.RetryAfterMeanSec = (agg.retrySum / time.Duration(agg.retryN)).Seconds()
	}
	if dr := after.requests - before.requests; dr > 0 {
		res.CoalesceRate = float64(after.coalesced-before.coalesced) / float64(dr)
	}
	if ds := after.partialSec - before.partialSec; ds > 0 {
		res.ServeOverheadFrac = ((after.requestSec - before.requestSec) - ds) / ds
	}
	return res
}

// Load shapes: how the offered rate evolves over one shaped run.
// steady is the classic fixed-rate point; ramp climbs linearly from a
// fraction of the peak to the peak (does the controller track a rising
// tide?); step holds a low rate then jumps to the peak at the midpoint
// (how fast does the controller react to a cliff?).
const (
	shapeSteady = "steady"
	shapeRamp   = "ramp"
	shapeStep   = "step"
)

// shapeRate returns the instantaneous offered rate at elapsed fraction
// frac of a shaped run with the given peak.
func shapeRate(shape string, peak, frac float64) float64 {
	switch shape {
	case shapeRamp:
		// Linear climb from 20% to 100% of peak.
		return peak * (0.2 + 0.8*frac)
	case shapeStep:
		// Quarter rate until the midpoint, then the full peak.
		if frac < 0.5 {
			return peak / 4
		}
		return peak
	default:
		return peak
	}
}

// runShaped drives one open-loop run whose offered rate follows the
// shape over the full duration, attributing every request to the time
// bucket its arrival lands in. Unlike running the buckets as separate
// points, the dispatcher never drains between buckets — backlog built
// during an early bucket carries into the next, which is exactly the
// transient a ramp or step exists to measure. One PointResult is
// returned per bucket; its OfferedRPS is the shape's rate at the
// bucket's midpoint and the serve-side delta rates (coalesce, overhead)
// are left zero, since the service's cumulative histograms cannot be
// attributed to sub-run buckets.
func runShaped(ctx context.Context, tgt target, w *workload, shape string, peak float64,
	duration time.Duration, buckets int, poisson bool, r *rand.Rand) []PointResult {
	if buckets < 1 {
		buckets = 1
	}
	var (
		aggs      = make([]aggregator, buckets)
		sents     = make([]int, buckets)
		wg        sync.WaitGroup
		start     = time.Now()
		next      = start
		end       = start.Add(duration)
		bucketDur = duration / time.Duration(buckets)
	)
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		if next.After(now) {
			time.Sleep(next.Sub(now))
			if now = time.Now(); !now.Before(end) {
				break
			}
		}
		elapsed := now.Sub(start)
		bucket := int(elapsed / bucketDur)
		if bucket >= buckets {
			bucket = buckets - 1
		}
		spec := w.draw(r)
		sents[bucket]++
		wg.Add(1)
		go func(spec reqSpec, agg *aggregator) {
			defer wg.Done()
			agg.record(tgt.do(ctx, spec))
		}(spec, &aggs[bucket])
		rate := shapeRate(shape, peak, float64(elapsed)/float64(duration))
		var gap time.Duration
		if poisson {
			gap = time.Duration(r.ExpFloat64() / rate * float64(time.Second))
		} else {
			gap = time.Duration(float64(time.Second) / rate)
		}
		next = next.Add(gap)
	}
	wg.Wait()

	out := make([]PointResult, buckets)
	for i := range out {
		mid := (float64(i) + 0.5) / float64(buckets)
		agg, secs := &aggs[i], bucketDur.Seconds()
		pt := PointResult{
			OfferedRPS:  shapeRate(shape, peak, mid),
			DurationSec: secs,
			Sent:        sents[i],
			Delivered:   agg.counts[outDelivered],
			Shed:        agg.counts[outShed],
			Cancelled:   agg.counts[outCancelled],
			Failed:      agg.counts[outFailed],
			Latency:     latencyStats(agg.latencies),
		}
		if secs > 0 {
			pt.AchievedRPS = float64(pt.Sent) / secs
			pt.GoodputRPS = float64(pt.Delivered) / secs
		}
		if pt.Sent > 0 {
			pt.ShedRate = float64(pt.Shed) / float64(pt.Sent)
		}
		if pt.Delivered > 0 {
			pt.CacheHitRate = float64(agg.cached) / float64(pt.Delivered)
		}
		if agg.retryN > 0 {
			pt.RetryAfterMeanSec = (agg.retrySum / time.Duration(agg.retryN)).Seconds()
		}
		out[i] = pt
	}
	return out
}

// OverheadResult is the saturation overhead probe: the service driven
// at exactly MaxInFlight concurrency with batching and caching off, so
// every request is one ScheduleBatch call and the gap between request
// wall time and pure schedule time is the serve layer's own overhead
// (admission handoff, request pooling, delivery) — the "< 5% of
// schedule time at saturation" target.
type OverheadResult struct {
	Concurrency   int     `json:"concurrency"`
	Requests      int     `json:"requests"`
	RequestUsMean float64 `json:"request_us_mean"`
	ScheduleUs    float64 `json:"schedule_us_mean"`
	OverheadFrac  float64 `json:"overhead_frac"`
}

// measureOverhead saturates a dedicated service (same scheduler shape
// as the load run) with a closed loop of exactly MaxInFlight workers.
// Closed-loop is deliberate here — the probe wants zero queueing so
// wall time decomposes into schedule time plus serve mechanics; the
// open-loop curves above are where throughput and latency come from.
func measureOverhead(newSvc func(met *mdrs.Metrics) (*mdrs.SchedulingService, error),
	trees []*mdrs.TaskTree, concurrency, perWorker int) (OverheadResult, error) {
	met := mdrs.NewMetrics()
	svc, err := newSvc(met)
	if err != nil {
		return OverheadResult{}, err
	}
	defer svc.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, concurrency)
	ctx := context.Background()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := svc.Schedule(ctx, trees[(g+i)%len(trees)]); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return OverheadResult{}, err
	}

	snap := met.Snapshot()
	req := snap.Histograms["serve.request_seconds"]
	sched := snap.Histograms["serve.schedule_seconds"]
	res := OverheadResult{
		Concurrency: concurrency,
		Requests:    int(req.Count),
	}
	if req.Count > 0 {
		res.RequestUsMean = req.Sum / float64(req.Count) * 1e6
	}
	if sched.Count > 0 {
		res.ScheduleUs = sched.Sum / float64(sched.Count) * 1e6
	}
	if sched.Sum > 0 {
		res.OverheadFrac = (req.Sum - sched.Sum) / sched.Sum
	}
	return res, nil
}
