package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// An oversized /schedule body is answered with 413, and the cap is
// flag-tunable: the same plan passes a generous limit and trips a tiny
// one. maxBody <= 0 falls back to the built-in default.
func TestScheduleEndpointRejectsOversizedBody(t *testing.T) {
	plan := encodePlan(t, 7, 5)

	small := testOptions()
	small.maxBody = 64 // any real plan is larger
	h, met := newTestHandler(t, small)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
	// The request never reached the service: not a serve.request, not an
	// invalid plan — the transport layer stopped it.
	cs := met.Snapshot().Counters
	if cs["serve.requests"] != 0 || cs["serve.invalid"] != 0 {
		t.Fatalf("oversized body leaked into service counters: %v", cs)
	}

	generous := testOptions()
	generous.maxBody = int64(len(plan)) + 1
	h, _ = newTestHandler(t, generous)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
	if rec.Code != http.StatusOK {
		t.Fatalf("body within cap: status %d, want 200", rec.Code)
	}

	fallback := testOptions() // maxBody 0 → defaultMaxBody
	h, _ = newTestHandler(t, fallback)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
	if rec.Code != http.StatusOK {
		t.Fatalf("default cap: status %d, want 200", rec.Code)
	}
}

// Malformed plans are counted as serve.invalid without inflating
// serve.requests, so HTTP-layer garbage never skews the goodput
// denominator /metricz consumers compute.
func TestInvalidPlanCountsSeparately(t *testing.T) {
	h, met := newTestHandler(t, testOptions())

	// A decodable-but-invalid plan is rejected at the HTTP layer before
	// the service ever sees it: 400, and no serve.* counter moves.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader([]byte(`{}`))))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty plan: status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(encodePlan(t, 5, 4))))
	if rec.Code != http.StatusOK {
		t.Fatalf("valid plan: status %d", rec.Code)
	}

	cs := met.Snapshot().Counters
	if cs["serve.requests"] != 1 || cs["serve.delivered"] != 1 {
		t.Fatalf("valid request miscounted: %v", cs)
	}
}
