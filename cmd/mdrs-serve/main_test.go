package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdrs"
)

func encodePlan(t *testing.T, seed int64, joins int) []byte {
	t.Helper()
	p := mdrs.MustRandomPlan(rand.New(rand.NewSource(seed)), mdrs.DefaultGenConfig(joins))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestHandler(t *testing.T, o options) (http.Handler, *mdrs.Metrics) {
	t.Helper()
	met := mdrs.NewMetrics()
	svc, err := newService(o, met)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return newHandler(svc, met, o.maxBody), met
}

func testOptions() options {
	return options{sites: 12, eps: 0.5, f: 0.7, maxBatch: 8, batchWindow: time.Millisecond}
}

func TestScheduleEndpointReturnsSchedule(t *testing.T) {
	h, _ := newTestHandler(t, testOptions())
	plan := encodePlan(t, 7, 5)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type %q", got)
	}
	for _, hdr := range []string{"X-Mdrs-Batch-Size", "X-Mdrs-Batch-Index", "X-Mdrs-Solo"} {
		if rec.Header().Get(hdr) == "" {
			t.Fatalf("missing header %s", hdr)
		}
	}
	var decoded struct {
		Response float64 `json:"response_seconds"`
		Sites    int     `json:"sites"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid schedule JSON: %v", err)
	}
	if decoded.Sites != 12 || decoded.Response <= 0 {
		t.Fatalf("decoded: %+v", decoded)
	}

	// An uncontended request forms a group of one, so the served body is
	// byte-identical to a direct end-to-end TreeSchedule of the plan.
	p, err := mdrs.DecodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mdrs.ScheduleQuery(p, mdrs.Options{Sites: 12, Epsilon: 0.5, F: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mdrs.EncodeScheduleJSON(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("served schedule differs from direct ScheduleQuery")
	}
}

func TestScheduleEndpointServesConcurrentClients(t *testing.T) {
	h, met := newTestHandler(t, options{
		sites: 12, eps: 0.5, f: 0.7,
		maxInFlight: 4, maxBatch: 4, batchWindow: 3 * time.Millisecond,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	const clients = 12
	errs := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan := encodePlan(t, int64(i%3+1), 4)
			resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(plan))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = resp.Status
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("client %d: %s", i, e)
		}
	}
	if n := met.Snapshot().Counters["serve.requests"]; n != clients {
		t.Fatalf("serve.requests = %d, want %d", n, clients)
	}
}

func TestScheduleEndpointRejectsBadInput(t *testing.T) {
	h, _ := newTestHandler(t, testOptions())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed plan: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/schedule", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", rec.Code)
	}
}

func TestScheduleEndpointShedsWith503(t *testing.T) {
	o := testOptions()
	o.maxInFlight = 1
	o.maxQueue = -1
	o.batchWindow = 200 * time.Millisecond
	h, _ := newTestHandler(t, o)

	plan := encodePlan(t, 9, 4)
	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
		done <- rec.Code
	}()
	time.Sleep(30 * time.Millisecond) // first request holds the only slot
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
}

func TestHealthzReportsCounts(t *testing.T) {
	h, _ := newTestHandler(t, testOptions())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var decoded struct {
		Status   string `json:"status"`
		InFlight int    `json:"inflight"`
		Queued   int    `json:"queued"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid healthz JSON: %v", err)
	}
	if decoded.Status != "ok" || decoded.InFlight != 0 || decoded.Queued != 0 {
		t.Fatalf("decoded: %+v", decoded)
	}
}

func TestMetriczExposesServiceCounters(t *testing.T) {
	h, _ := newTestHandler(t, testOptions())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule",
		bytes.NewReader(encodePlan(t, 3, 4))))
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metricz: status %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid metricz JSON: %v", err)
	}
	if snap.Counters["serve.requests"] != 1 || snap.Counters["serve.batches"] != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
}

func TestNewServiceRejectsBadConfig(t *testing.T) {
	if _, err := newService(options{sites: 8, eps: 2.0, f: 0.7}, nil); err == nil {
		t.Error("ε = 2 accepted")
	}
	if _, err := newService(options{sites: 0, eps: 0.5, f: 0.7}, nil); err == nil {
		t.Error("P = 0 accepted")
	}
}

// With -cache, a repeated plan is answered from the schedule cache:
// X-Mdrs-Cached flips to true, the body stays byte-identical, and
// /metricz exposes the serve.cache_* counters.
func TestScheduleEndpointCacheHeaderAndCounters(t *testing.T) {
	o := testOptions()
	o.cacheSize = 8
	h, _ := newTestHandler(t, o)
	plan := encodePlan(t, 11, 6)

	var bodies [2]string
	for round := 0; round < 2; round++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, rec.Code, rec.Body)
		}
		want := "false"
		if round == 1 {
			want = "true"
		}
		if got := rec.Header().Get("X-Mdrs-Cached"); got != want {
			t.Fatalf("round %d: X-Mdrs-Cached = %q, want %q", round, got, want)
		}
		bodies[round] = rec.Body.String()
	}
	if bodies[0] != bodies[1] {
		t.Fatal("cached schedule body differs from the computed one")
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricz", nil))
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid metricz JSON: %v", err)
	}
	if snap.Counters["serve.cache_misses"] != 1 || snap.Counters["serve.cache_hits"] != 1 {
		t.Fatalf("cache counters: %+v", snap.Counters)
	}
}

// Without -cache the header reports false and nothing is retained.
func TestScheduleEndpointCacheDisabledByDefault(t *testing.T) {
	h, _ := newTestHandler(t, testOptions())
	plan := encodePlan(t, 11, 6)
	for round := 0; round < 2; round++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/schedule", bytes.NewReader(plan)))
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d: status %d", round, rec.Code)
		}
		if got := rec.Header().Get("X-Mdrs-Cached"); got != "false" {
			t.Fatalf("round %d: X-Mdrs-Cached = %q, want false (cache off)", round, got)
		}
	}
}

// Regression: /healthz used to report "ok" while the service was
// draining after Close, so a load balancer kept routing traffic into
// guaranteed 503s. A draining service must answer 503 with status
// "draining" the moment Close begins.
func TestHealthzReports503WhileDraining(t *testing.T) {
	met := mdrs.NewMetrics()
	svc, err := newService(testOptions(), met)
	if err != nil {
		t.Fatal(err)
	}
	h := newHandler(svc, met, 0)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("live service healthz: status %d", rec.Code)
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", rec.Code)
	}
	var decoded struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid healthz JSON: %v", err)
	}
	if decoded.Status != "draining" {
		t.Fatalf("status %q, want draining", decoded.Status)
	}
}

// The 503 Retry-After is derived from the service's live queue depth
// and batching window, not hardcoded: an idle service's estimate is
// sub-second (rounded up to the 1s floor) and the rendering never emits
// zero, which clients would read as "retry immediately".
func TestRetryAfterSecondsRoundsUpNeverZero(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
		{30 * time.Second, "30"},
		{0, "1"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// A shed request's Retry-After reflects the service's own estimate.
func TestScheduleErrorDerivesRetryAfterFromService(t *testing.T) {
	met := mdrs.NewMetrics()
	svc, err := newService(testOptions(), met)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	rec := httptest.NewRecorder()
	writeScheduleError(rec, svc, mdrs.ErrOverloaded)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got, want := rec.Header().Get("Retry-After"), retryAfterSeconds(svc.RetryAfter()); got != want {
		t.Fatalf("Retry-After %q, want service-derived %q", got, want)
	}
}
