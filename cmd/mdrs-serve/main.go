// Command mdrs-serve runs the concurrent multi-query scheduling service
// over HTTP: POST a JSON-encoded bushy hash-join plan (e.g. produced by
// mdrs-plangen) to /schedule and receive its TreeSchedule as JSON.
// Requests arriving within the batching window are scheduled together
// as one ScheduleBatch workload with inter-query resource sharing;
// admission control sheds load beyond the in-flight limit and wait
// queue with 503.
//
// Usage:
//
//	mdrs-serve -addr :8080 -sites 32 -eps 0.5 -f 0.7
//	mdrs-plangen -joins 8 | curl -s -X POST --data-binary @- localhost:8080/schedule
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metricz
//
// Endpoints:
//
//	POST /schedule  plan JSON in, schedule JSON out. Response headers
//	                X-Mdrs-Batch-Size, X-Mdrs-Batch-Index, X-Mdrs-Solo,
//	                and X-Mdrs-Cached describe the grouping. Errors: 400
//	                for a bad plan, 503 (with Retry-After) when shed or
//	                shutting down, 504 past the request deadline.
//	GET  /healthz   liveness plus in-flight and queued counts.
//	GET  /metricz   service and scheduler metrics snapshot.
//
// -debug-addr additionally serves net/http/pprof and expvar.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"mdrs"
)

// options carries the full mdrs-serve flag surface.
type options struct {
	addr        string
	sites       int
	eps, f      float64
	maxInFlight int
	maxQueue    int
	maxBatch    int
	batchWindow time.Duration
	soloMargin  time.Duration
	cacheSize   int
	workers     int
	maxBody     int64
	maxDegree   int
	controller  bool
	ctlInterval time.Duration
}

// defaultMaxBody caps the /schedule request body when -max-body is
// unset: 4 MiB holds a plan of tens of thousands of joins while keeping
// a single oversized (or malicious) POST from ballooning the heap.
const defaultMaxBody = 4 << 20

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&o.sites, "sites", 32, "number of system sites P")
	flag.Float64Var(&o.eps, "eps", 0.5, "resource overlap parameter ε in [0,1]")
	flag.Float64Var(&o.f, "f", 0.7, "coarse-granularity parameter f")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "admission limit on concurrent requests (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "bounded wait queue beyond the admission limit (0 = 4x limit, -1 = none)")
	flag.IntVar(&o.maxBatch, "max-batch", 8, "maximum queries per batched workload")
	flag.DurationVar(&o.batchWindow, "batch-window", 2*time.Millisecond, "how long a group waits for companion queries")
	flag.DurationVar(&o.soloMargin, "solo-margin", 0, "deadlines nearer than this skip batching (0 = 4x window)")
	flag.IntVar(&o.cacheSize, "cache", 0, "plan-fingerprint schedule cache size in schedules (0 = disabled)")
	flag.IntVar(&o.workers, "sched-workers", 0, "per-request scheduler worker pool width; 0 = GOMAXPROCS, 1 = serial (bounds scheduler goroutines at max-inflight x workers)")
	flag.Int64Var(&o.maxBody, "max-body", defaultMaxBody, "maximum /schedule request body bytes (oversized POSTs get 413)")
	flag.IntVar(&o.maxDegree, "max-degree", 0, "per-query parallelism cap on floating operators (0 = uncapped)")
	flag.BoolVar(&o.controller, "controller", false, "enable the adaptive parallelism controller (retunes batch window, max-degree, sched-workers under load)")
	flag.DurationVar(&o.ctlInterval, "ctl-interval", 0, "adaptive controller tick period (0 = 100ms default)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")
	flag.Parse()

	stopDebug := func(context.Context) error { return nil }
	if *debugAddr != "" {
		addr, stop, err := mdrs.StartDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-serve: %v\n", err)
			os.Exit(1)
		}
		stopDebug = stop
		fmt.Fprintf(os.Stderr, "mdrs-serve: debug server on http://%s/debug/pprof/\n", addr)
	}

	met := mdrs.NewMetrics()
	mdrs.PublishExpvar("mdrs_serve", met)
	svc, err := newService(o, met)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-serve: %v\n", err)
		os.Exit(1)
	}

	// Connection-level timeouts close the slowloris hole: a client that
	// trickles header bytes (ReadHeaderTimeout), dribbles its body
	// (ReadTimeout), or parks idle keep-alive connections (IdleTimeout)
	// cannot pin server goroutines and file descriptors indefinitely.
	// WriteTimeout stays generous — a schedule of a large plan under a
	// saturated service can legitimately take a while to come back.
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           newHandler(svc, met, o.maxBody),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mdrs-serve: listening on %s (P=%d, ε=%.2f, f=%.2f)\n",
		o.addr, o.sites, o.eps, o.f)

	select {
	case <-ctx.Done():
		// Begin the service drain first — Close flips Closing()
		// immediately, so /healthz reports draining (503) while the HTTP
		// listener is still up and a load balancer stops routing here
		// before connections disappear. Then stop accepting connections,
		// let in-flight requests finish, wait for the drain, and take the
		// debug listener down with us — it must not outlive the service
		// it observes.
		closed := make(chan struct{})
		go func() { svc.Close(); close(closed) }()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-serve: shutdown: %v\n", err)
		}
		<-closed
		if err := stopDebug(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-serve: debug shutdown: %v\n", err)
		}
	case err := <-errCh:
		svc.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		stopDebug(sctx) //nolint:errcheck // already failing
		fmt.Fprintf(os.Stderr, "mdrs-serve: %v\n", err)
		os.Exit(1)
	}
}

// newService builds the scheduling service from the flag surface.
func newService(o options, rec mdrs.Recorder) (*mdrs.SchedulingService, error) {
	ov, err := mdrs.NewOverlap(o.eps)
	if err != nil {
		return nil, err
	}
	// The service recorder doubles as the scheduler's: sched.* counters
	// (parallel prepare/pick engagement, phase timings) land in /metricz
	// next to the serve.* ones, so scheduler concurrency is observable
	// without a separate trace run.
	ts := mdrs.TreeScheduler{
		Model:     mdrs.DefaultCostModel(),
		Overlap:   ov,
		P:         o.sites,
		F:         o.f,
		MaxDegree: o.maxDegree,
		Rec:       rec,
		Workers:   o.workers,
	}
	if o.cacheSize > 0 {
		// Caching mode also attaches the cost-model memo: repeated specs
		// across requests are costed once. Both caches are bit-identical
		// to the uncached paths, so -cache only changes latency.
		ts.Cache = mdrs.NewCostCache(ts.Model)
	}
	return mdrs.NewSchedulingService(mdrs.ServeConfig{
		Scheduler:   ts,
		MaxInFlight: o.maxInFlight,
		MaxQueue:    o.maxQueue,
		MaxBatch:    o.maxBatch,
		BatchWindow: o.batchWindow,
		SoloMargin:  o.soloMargin,
		CacheSize:   o.cacheSize,
		Controller: mdrs.ServeControllerConfig{
			Enable:   o.controller,
			Interval: o.ctlInterval,
		},
		Rec: rec,
	})
}

// bodyPool recycles request-body read buffers across /schedule
// requests: the handler's per-request garbage is one decode's worth of
// plan nodes, not a fresh multi-KiB byte slice per POST.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// newHandler routes the service's HTTP surface; split from main so the
// tests can drive it through httptest without a listener. maxBody caps
// the /schedule request body (<= 0 falls back to the default): a single
// oversized POST is answered with 413, never buffered whole.
func newHandler(svc *mdrs.SchedulingService, met *mdrs.Metrics, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST a plan JSON body", http.StatusMethodNotAllowed)
			return
		}
		body := bodyPool.Get().(*bytes.Buffer)
		body.Reset()
		defer bodyPool.Put(body)
		if _, err := body.ReadFrom(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxBody),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, err := mdrs.DecodePlan(body.Bytes())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_, tt, err := mdrs.PrepareQuery(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := svc.Schedule(r.Context(), tt)
		if err != nil {
			writeScheduleError(w, svc, err)
			return
		}
		data, err := mdrs.EncodeScheduleJSON(res.Schedule)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-Mdrs-Batch-Size", strconv.Itoa(len(res.Group)))
		h.Set("X-Mdrs-Batch-Index", strconv.Itoa(res.Index))
		h.Set("X-Mdrs-Solo", strconv.FormatBool(res.Solo))
		h.Set("X-Mdrs-Cached", strconv.FormatBool(res.Cached))
		w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A draining service still answers health checks but must stop
		// reporting ready: Close drains admitted work while every new
		// request gets ErrClosed, so a load balancer that keeps routing
		// here only feeds traffic into guaranteed 503s. Report 503 with
		// status "draining" the moment Close begins.
		if svc.Closing() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\"status\":\"draining\",\"inflight\":%d,\"queued\":%d}\n",
				svc.InFlight(), svc.Queued())
			return
		}
		fmt.Fprintf(w, "{\"status\":\"ok\",\"inflight\":%d,\"queued\":%d}\n",
			svc.InFlight(), svc.Queued())
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := met.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// writeScheduleError maps service errors onto HTTP statuses: shed and
// shutdown are retryable 503s, a blown deadline is 504, a cancelled
// client gets 499-style treatment via 400 (it is gone anyway), and
// anything else is a 500. The Retry-After of a 503 is derived from the
// service's live queue depth and (controller-tuned) batching window —
// a hardcoded constant either hammers a deeply-backed-up service or
// keeps clients away from one that drained milliseconds later.
func writeScheduleError(w http.ResponseWriter, svc *mdrs.SchedulingService, err error) {
	switch {
	case errors.Is(err, mdrs.ErrOverloaded), errors.Is(err, mdrs.ErrServiceClosed):
		w.Header().Set("Retry-After", retryAfterSeconds(svc.RetryAfter()))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, rounded up so sub-second estimates never become "0" (which
// clients read as "retry immediately" — the opposite of backoff).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
