package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -opt-bench report must be valid JSON with all three arms
// measured, the live pruned-vs-unpruned identity check passing, and the
// pruned arm actually pruning.
func TestRunOptBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench_optimizer.json")
	if err := runOptBench(path, true, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report optBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if !report.IdentityVerified {
		t.Fatal("pruned/unpruned identity not verified")
	}
	if len(report.Arms) != 3 {
		t.Fatalf("%d arms, want 3", len(report.Arms))
	}
	byName := make(map[string]optBenchArm, len(report.Arms))
	for _, a := range report.Arms {
		if a.Candidates <= 0 || a.Scheduled <= 0 {
			t.Fatalf("arm %q not measured: %+v", a.Arm, a)
		}
		if a.WallSeconds <= 0 {
			t.Fatalf("arm %q has no wall time: %+v", a.Arm, a)
		}
		if a.MeanBestResponse <= 0 {
			t.Fatalf("arm %q has no mean response: %+v", a.Arm, a)
		}
		if a.Scheduled+a.Pruned != a.Candidates {
			t.Fatalf("arm %q ledger does not add up: %+v", a.Arm, a)
		}
		byName[a.Arm] = a
	}
	first, unpruned, pruned := byName["first-plan"], byName["best-of-k-unpruned"], byName["best-of-k-pruned"]
	if first.Arm == "" || unpruned.Arm == "" || pruned.Arm == "" {
		t.Fatalf("missing arm in %+v", report.Arms)
	}
	if unpruned.Pruned != 0 {
		t.Fatalf("unpruned arm pruned %d candidates", unpruned.Pruned)
	}
	if pruned.Pruned == 0 {
		t.Fatal("pruned arm never pruned")
	}
	if pruned.Scheduled >= unpruned.Scheduled {
		t.Fatalf("pruned arm scheduled %d, not fewer than unpruned %d",
			pruned.Scheduled, unpruned.Scheduled)
	}
	if pruned.MeanBestResponse != unpruned.MeanBestResponse {
		t.Fatalf("pruned mean response %g != unpruned %g",
			pruned.MeanBestResponse, unpruned.MeanBestResponse)
	}
	if unpruned.MeanBestResponse > first.MeanBestResponse {
		t.Fatalf("best-of-K mean %g worse than first-plan %g",
			unpruned.MeanBestResponse, first.MeanBestResponse)
	}
	if report.Note == "" {
		t.Fatal("report note empty")
	}
}
