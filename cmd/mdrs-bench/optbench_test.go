package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -opt-bench report must be valid JSON with all four arms measured
// at every join count of the sweep, both live identity checks passing,
// the pruning arms actually pruning, and the streaming arm scheduling
// fewer candidates than the pruned pool at sampled join counts. The
// written report must then pass its own -opt-check replay.
func TestRunOptBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench_optimizer.json")
	if err := runOptBench(path, true, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report optBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if !report.IdentityVerified {
		t.Fatal("pruned/streaming identity not verified")
	}
	if !report.StreamingFewer {
		t.Fatal("streaming did not schedule fewer candidates than the pruned pool")
	}
	if len(report.Sweeps) != len(report.Config.Joins) {
		t.Fatalf("%d sweeps, want %d", len(report.Sweeps), len(report.Config.Joins))
	}
	for _, sweep := range report.Sweeps {
		if len(sweep.Arms) != 4 {
			t.Fatalf("joins=%d: %d arms, want 4", sweep.Joins, len(sweep.Arms))
		}
		byName := make(map[string]optBenchArm, len(sweep.Arms))
		for _, a := range sweep.Arms {
			if a.Enumerated <= 0 || a.Scheduled <= 0 {
				t.Fatalf("joins=%d arm %q not measured: %+v", sweep.Joins, a.Arm, a)
			}
			if a.WallSeconds <= 0 {
				t.Fatalf("joins=%d arm %q has no wall time: %+v", sweep.Joins, a.Arm, a)
			}
			if a.MeanBestResponse <= 0 {
				t.Fatalf("joins=%d arm %q has no mean response: %+v", sweep.Joins, a.Arm, a)
			}
			if a.Scheduled+a.Pruned+a.WarmHits != a.Enumerated {
				t.Fatalf("joins=%d arm %q ledger does not add up: %+v", sweep.Joins, a.Arm, a)
			}
			if a.PeakResident <= 0 {
				t.Fatalf("joins=%d arm %q has no peak residency: %+v", sweep.Joins, a.Arm, a)
			}
			byName[a.Arm] = a
		}
		first := byName["first-plan"]
		unpruned := byName["best-of-k-unpruned"]
		pruned := byName["best-of-k-pruned"]
		streaming := byName["streaming"]
		if first.Arm == "" || unpruned.Arm == "" || pruned.Arm == "" || streaming.Arm == "" {
			t.Fatalf("joins=%d: missing arm in %+v", sweep.Joins, sweep.Arms)
		}
		if unpruned.Pruned != 0 {
			t.Fatalf("joins=%d: unpruned arm pruned %d candidates", sweep.Joins, unpruned.Pruned)
		}
		if pruned.Pruned == 0 {
			t.Fatalf("joins=%d: pruned arm never pruned", sweep.Joins)
		}
		if pruned.Scheduled >= unpruned.Scheduled {
			t.Fatalf("joins=%d: pruned arm scheduled %d, not fewer than unpruned %d",
				sweep.Joins, pruned.Scheduled, unpruned.Scheduled)
		}
		if sweep.Joins >= 5 && streaming.Scheduled >= pruned.Scheduled {
			t.Fatalf("joins=%d: streaming scheduled %d, not fewer than pruned %d",
				sweep.Joins, streaming.Scheduled, pruned.Scheduled)
		}
		if pruned.MeanBestResponse != unpruned.MeanBestResponse {
			t.Fatalf("joins=%d: pruned mean response %g != unpruned %g",
				sweep.Joins, pruned.MeanBestResponse, unpruned.MeanBestResponse)
		}
		if streaming.MeanBestResponse != unpruned.MeanBestResponse {
			t.Fatalf("joins=%d: streaming mean response %g != unpruned %g",
				sweep.Joins, streaming.MeanBestResponse, unpruned.MeanBestResponse)
		}
		if unpruned.MeanBestResponse > first.MeanBestResponse {
			t.Fatalf("joins=%d: best-of-K mean %g worse than first-plan %g",
				sweep.Joins, unpruned.MeanBestResponse, first.MeanBestResponse)
		}
	}
	if len(report.Check.Scheduled) != len(report.Check.Joins) {
		t.Fatalf("check ledger has %d entries, want %d", len(report.Check.Scheduled), len(report.Check.Joins))
	}
	if report.Note == "" {
		t.Fatal("report note empty")
	}
	// The freshly-written report must pass its own check replay.
	if err := runOptCheck(path); err != nil {
		t.Fatalf("opt-check of fresh report failed: %v", err)
	}
}

// runOptCheck must reject reports whose committed verdict is false or
// that predate the check corpus.
func TestRunOptCheckRejectsBadReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, report optBenchReport) string {
		t.Helper()
		data, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if err := runOptCheck(write("unverified.json", optBenchReport{})); err == nil {
		t.Fatal("accepted a report with a false identity verdict")
	}
	legacy := optBenchReport{IdentityVerified: true}
	if err := runOptCheck(write("legacy.json", legacy)); err == nil {
		t.Fatal("accepted a report with no check corpus")
	}
	if err := runOptCheck(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("accepted a missing report file")
	}
}
