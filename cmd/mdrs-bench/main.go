// Command mdrs-bench regenerates the paper's evaluation: every figure of
// Section 6 plus the ablations documented in DESIGN.md, printed as
// aligned text series.
//
// Usage:
//
//	mdrs-bench [-fig 5a|5b|6a|6b|malleable|order|shelf|contention|memory|
//	            shape|plansearch|pipeline|batch|decluster|all] [-table2]
//	           [-queries N] [-seed S] [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mdrs/internal/experiments"
)

// figures maps figure names to their generators, in canonical order.
var figures = map[string]func(experiments.Config) (*experiments.Figure, error){
	"5a":         experiments.Fig5a,
	"5b":         experiments.Fig5b,
	"6a":         experiments.Fig6a,
	"6b":         experiments.Fig6b,
	"malleable":  experiments.Malleable,
	"order":      experiments.OrderAblation,
	"shelf":      experiments.ShelfAblation,
	"contention": experiments.ContentionAblation,
	"memory":     experiments.MemoryAblation,
	"shape":      experiments.ShapeAblation,
	"plansearch": experiments.PlanSearchAblation,
	"pipeline":   experiments.PipelineAblation,
	"batch":      experiments.BatchAblation,
	"decluster":  experiments.DeclusterAblation,
}

var figureOrder = []string{"5a", "5b", "6a", "6b", "malleable", "order",
	"shelf", "contention", "memory", "shape", "plansearch", "pipeline",
	"batch", "decluster"}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (see usage) or all")
	table2 := flag.Bool("table2", false, "print Table 2 (experiment parameter settings)")
	queries := flag.Int("queries", 0, "override queries per data point (default: paper's 20)")
	seed := flag.Int64("seed", 0, "override workload seed")
	quick := flag.Bool("quick", false, "use the scaled-down Quick configuration")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	if *table2 {
		fmt.Print(experiments.Table2(cfg))
		fmt.Println()
	}

	if err := emit(os.Stdout, cfg, *fig, *asCSV); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-bench: %v\n", err)
		os.Exit(1)
	}
}

// emit regenerates one figure (or all of them) into w, as aligned text
// or CSV.
func emit(w io.Writer, cfg experiments.Config, name string, asCSV bool) error {
	names := []string{name}
	if name == "all" {
		names = figureOrder
	}
	for _, n := range names {
		fn, ok := figures[n]
		if !ok {
			return fmt.Errorf("unknown figure %q", n)
		}
		f, err := fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		write := experiments.WriteText
		if asCSV {
			write = experiments.WriteCSV
		}
		if err := write(w, f); err != nil {
			return err
		}
	}
	return nil
}
