// Command mdrs-bench regenerates the paper's evaluation: every figure of
// Section 6 plus the ablations documented in DESIGN.md, printed as
// aligned text series.
//
// Usage:
//
//	mdrs-bench [-fig 5a|5b|6a|6b|malleable|order|shelf|contention|memory|
//	            shape|plansearch|pipeline|batch|decluster|all] [-table2]
//	           [-queries N] [-seed S] [-quick] [-workers N]
//	           [-benchjson FILE]
//
// -workers bounds the goroutine pool that fans out each figure's
// per-query trials (0 = GOMAXPROCS); the output is byte-identical for
// every worker count. -opt-bench measures the plan-search arms
// (two-phase strawman, unpruned pool, bound-pruned pool, streaming
// bound-interleaved) across a join-count sweep and writes
// BENCH_optimizer.json-format JSON to its argument, then exits;
// -opt-check replays the committed file's check corpus and fails on an
// identity or ledger regression. -cpuprofile and -memprofile write
// runtime/pprof profiles of any mode. -benchjson additionally records per-figure
// regeneration wall times to FILE as JSON (the BENCH_sched.json format
// tracked at the repository root), so successive PRs can compare the
// harness's performance trajectory mechanically. -metrics attaches an
// observability recorder to the run and writes its counters and timing
// histograms to FILE as JSON; -debug-addr serves net/http/pprof and
// expvar (including the live metrics under the "mdrs" var) while the
// figures regenerate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mdrs/internal/experiments"
	"mdrs/internal/obs"
)

// figures maps figure names to their generators, in canonical order.
var figures = map[string]func(experiments.Config) (*experiments.Figure, error){
	"5a":         experiments.Fig5a,
	"5b":         experiments.Fig5b,
	"6a":         experiments.Fig6a,
	"6b":         experiments.Fig6b,
	"malleable":  experiments.Malleable,
	"order":      experiments.OrderAblation,
	"shelf":      experiments.ShelfAblation,
	"contention": experiments.ContentionAblation,
	"memory":     experiments.MemoryAblation,
	"shape":      experiments.ShapeAblation,
	"plansearch": experiments.PlanSearchAblation,
	"pipeline":   experiments.PipelineAblation,
	"batch":      experiments.BatchAblation,
	"decluster":  experiments.DeclusterAblation,
}

var figureOrder = []string{"5a", "5b", "6a", "6b", "malleable", "order",
	"shelf", "contention", "memory", "shape", "plansearch", "pipeline",
	"batch", "decluster"}

// benchReport is the machine-readable timing record written by
// -benchjson: configuration knobs that affect the numbers plus one wall
// time per regenerated figure.
type benchReport struct {
	Queries      int            `json:"queries"`
	Seed         int64          `json:"seed"`
	Workers      int            `json:"workers"`
	Quick        bool           `json:"quick"`
	Figures      []figureTiming `json:"figures"`
	TotalSeconds float64        `json:"total_seconds"`
}

type figureTiming struct {
	Figure  string  `json:"figure"`
	Seconds float64 `json:"seconds"`
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (see usage) or all")
	table2 := flag.Bool("table2", false, "print Table 2 (experiment parameter settings)")
	queries := flag.Int("queries", 0, "override queries per data point (default: paper's 20)")
	seed := flag.Int64("seed", 0, "override workload seed")
	quick := flag.Bool("quick", false, "use the scaled-down Quick configuration")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned text")
	workers := flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "write per-figure timings as JSON to this file")
	metricsJSON := flag.String("metrics", "", "write run counters and timing histograms as JSON to this file")
	cacheBench := flag.String("cache-bench", "", "measure the schedule cache and placement loop, write JSON to this file, and exit")
	parBench := flag.String("par-bench", "", "measure scheduler Workers=1 vs Workers=N and the invariance verdict, write JSON to this file, and exit")
	optBench := flag.String("opt-bench", "", "measure the plan-search arms across a join sweep, write JSON to this file, and exit")
	optCheck := flag.String("opt-check", "", "replay this committed BENCH_optimizer.json's check corpus and fail on identity or ledger regression, then exit")
	engineBench := flag.String("engine-bench", "", "measure the flat engine vs the reference executor, write JSON to this file, and exit")
	schedWorkers := flag.Int("sched-workers", 0, "workers arm for -par-bench (0 = GOMAXPROCS, raised to at least 2)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-bench: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *cacheBench != "" {
		cacheBenchMain(*cacheBench, *quick, *seed)
		return
	}
	if *parBench != "" {
		parBenchMain(*parBench, *quick, *seed, *schedWorkers)
		return
	}
	if *optBench != "" {
		if err := runOptBench(*optBench, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-bench: opt-bench: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		return
	}
	if *engineBench != "" {
		if err := runEngineBench(*engineBench, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-bench: engine-bench: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		return
	}
	if *optCheck != "" {
		if err := runOptCheck(*optCheck); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-bench: opt-check: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	var met *obs.Metrics
	if *metricsJSON != "" || *debugAddr != "" {
		met = obs.NewMetrics()
		cfg.Rec = met
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-bench: %v\n", err)
			os.Exit(1)
		}
		obs.PublishExpvar("mdrs", met)
		fmt.Fprintf(os.Stderr, "mdrs-bench: debug server on http://%s/debug/pprof/\n", addr)
	}

	if *table2 {
		fmt.Print(experiments.Table2(cfg))
		fmt.Println()
	}

	// Write the report and metrics sinks even when a figure fails:
	// exiting first would discard the timings of the figures that did
	// finish and every counter the recorder collected, leaving partial
	// runs with nothing to diagnose from.
	report, err := emit(os.Stdout, cfg, *fig, *asCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-bench: %v\n", err)
	}
	failed := err != nil
	if *benchJSON != "" {
		report.Quick = *quick
		if werr := writeReport(*benchJSON, report); werr != nil {
			fmt.Fprintf(os.Stderr, "mdrs-bench: %v\n", werr)
			failed = true
		}
	}
	if *metricsJSON != "" {
		if werr := writeMetrics(*metricsJSON, met); werr != nil {
			fmt.Fprintf(os.Stderr, "mdrs-bench: %v\n", werr)
			failed = true
		}
	}
	if failed {
		stopProfiles()
		os.Exit(1)
	}
}

// startProfiles starts the optional CPU profile and arms the optional
// exit-time heap profile. The returned stop is idempotent, so callers
// can both defer it and invoke it explicitly before os.Exit (which
// skips defers).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mdrs-bench: memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mdrs-bench: memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// writeMetrics renders the run's observability snapshot to path.
func writeMetrics(path string, m *obs.Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emit regenerates one figure (or all of them) into w, as aligned text
// or CSV, timing each regeneration for the bench report. On error the
// report is still returned, holding the figures completed so far.
func emit(w io.Writer, cfg experiments.Config, name string, asCSV bool) (*benchReport, error) {
	names := []string{name}
	if name == "all" {
		names = figureOrder
	}
	report := &benchReport{Queries: cfg.Queries, Seed: cfg.Seed, Workers: cfg.Workers}
	for _, n := range names {
		fn, ok := figures[n]
		if !ok {
			return report, fmt.Errorf("unknown figure %q", n)
		}
		start := time.Now()
		f, err := fn(cfg)
		if err != nil {
			return report, fmt.Errorf("%s: %w", n, err)
		}
		secs := time.Since(start).Seconds()
		report.Figures = append(report.Figures, figureTiming{Figure: n, Seconds: secs})
		report.TotalSeconds += secs
		write := experiments.WriteText
		if asCSV {
			write = experiments.WriteCSV
		}
		if err := write(w, f); err != nil {
			return report, err
		}
	}
	return report, nil
}

// writeReport marshals the timing report to path.
func writeReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
