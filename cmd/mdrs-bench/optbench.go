// The -opt-bench mode: measure the plan-search arms against each other
// across a join-count sweep and write the numbers as JSON (the
// BENCH_optimizer.json format tracked at the repository root). Four
// arms run over identical re-seeded workloads at every join count:
//
//   - first-plan: the classical two-phase strawman — schedule only the
//     first sampled plan (a Candidates=1 search);
//   - best-of-k-unpruned: materialize the candidate pool and schedule
//     every candidate;
//   - best-of-k-pruned: the PR-8 pool search — bound every candidate,
//     sort, and schedule only candidates whose OPTBOUND beats the
//     running incumbent;
//   - streaming: the bound-interleaved search — candidates are bounded
//     as they are enumerated, held in a bounded best-first frontier,
//     and pruned against an incumbent that tightens after every single
//     TreeSchedule instead of every speculative chunk.
//
// The report records, per join count and arm, wall-clock time and the
// enumerated/pruned/scheduled ledger plus peak candidate residency,
// and two live identity verdicts: the pruned and streaming arms must
// each pick the same winner as the unpruned arm — same candidate
// index, byte-identical schedule — on every query, or the run fails.
// At sampled join counts (5 and up) the streaming arm must also fully
// schedule strictly fewer candidates than the pruned pool, or the run
// fails: that inequality is the point of interleaving.
//
// The report embeds a small deterministic check corpus (the Check
// section) whose streaming ledger the -opt-check mode replays against
// the committed file.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mdrs"
)

type optBenchReport struct {
	Config     optBenchConfig  `json:"config"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Sweeps     []optBenchSweep `json:"sweeps"`
	// IdentityVerified is true when both the pruned and the streaming
	// arm matched the unpruned arm's winner on every query of every
	// sweep: same candidate index and byte-identical schedule.
	IdentityVerified bool `json:"identity_verified"`
	// StreamingFewer is true when the streaming arm fully scheduled
	// strictly fewer candidates than the pruned pool at every sampled
	// join count (joins >= 5).
	StreamingFewer bool          `json:"streaming_fewer"`
	Check          optBenchCheck `json:"check"`
	Note           string        `json:"note"`
}

type optBenchConfig struct {
	// Joins is the join-count sweep; every count runs all four arms.
	Joins      []int   `json:"joins"`
	Candidates int     `json:"candidates"`
	Sites      int     `json:"sites"`
	Queries    int     `json:"queries"`
	Eps        float64 `json:"eps"`
	F          float64 `json:"f"`
	Seed       int64   `json:"seed"`
}

type optBenchSweep struct {
	Joins int           `json:"joins"`
	Arms  []optBenchArm `json:"arms"`
}

type optBenchArm struct {
	Arm string `json:"arm"`
	// Enumerated/Pruned/Scheduled/WarmHits are totals across all
	// queries of the sweep; Pruned + Scheduled + WarmHits == Enumerated.
	Enumerated int64 `json:"enumerated"`
	Pruned     int64 `json:"pruned"`
	Scheduled  int64 `json:"scheduled"`
	WarmHits   int64 `json:"warm_hits"`
	// PeakResident is the largest number of candidates simultaneously
	// retained by any single query's search (pool size for the pool
	// arms, frontier + priced for streaming).
	PeakResident     int     `json:"peak_resident"`
	MeanBestResponse float64 `json:"mean_best_response"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// optBenchCheck pins the deterministic quick corpus that -opt-check
// replays: per join count, the streaming arm's total scheduled
// candidates. The ledger is workers-invariant and seed-determined, so
// any regression beyond the tolerance is a real behavior change.
type optBenchCheck struct {
	Joins     []int           `json:"joins"`
	Queries   int             `json:"queries"`
	Seed      int64           `json:"seed"`
	Scheduled map[string]int64 `json:"scheduled"`
}

// optBenchQuerySeed decorrelates the workloads across the sweep while
// keeping every arm of one (joins, query) cell on the identical
// catalog and candidate stream.
func optBenchQuerySeed(seed int64, joins, q int) int64 {
	return seed + int64(1000*joins+q)
}

type optArmKind int

const (
	armFirstPlan optArmKind = iota
	armUnpruned
	armPruned
	armStreaming
)

func (k optArmKind) name() string {
	switch k {
	case armFirstPlan:
		return "first-plan"
	case armUnpruned:
		return "best-of-k-unpruned"
	case armPruned:
		return "best-of-k-pruned"
	default:
		return "streaming"
	}
}

// optBenchSearch builds one arm's search. Each arm gets its own fresh
// cost-model memo so the arms' wall clocks are comparable.
func optBenchSearch(cfg optBenchConfig, kind optArmKind) (mdrs.PlanSearch, error) {
	candidates := cfg.Candidates
	if kind == armFirstPlan {
		candidates = 1
	}
	s, err := mdrs.NewPlanSearch(mdrs.Options{
		Sites:   cfg.Sites,
		Epsilon: cfg.Eps,
		F:       cfg.F,
	}, candidates)
	if err != nil {
		return mdrs.PlanSearch{}, err
	}
	switch kind {
	case armFirstPlan:
		// The strawman never enumerates: one sampled plan, scheduled.
		s.ExhaustiveJoins = -1
	case armUnpruned:
		s.NoPrune = true
	case armStreaming:
		s.Streaming = true
	}
	return s, nil
}

// optBenchArmRun runs one arm over every query workload of one join
// count and returns its totals plus the per-query winners for the
// identity checks.
func optBenchArmRun(cfg optBenchConfig, joins, queries int, kind optArmKind) (optBenchArm, []mdrs.PlanCandidate, error) {
	s, err := optBenchSearch(cfg, kind)
	if err != nil {
		return optBenchArm{}, nil, err
	}
	arm := optBenchArm{Arm: kind.name()}
	winners := make([]mdrs.PlanCandidate, 0, queries)
	start := time.Now()
	for q := 0; q < queries; q++ {
		// Re-seeding per query (not per arm) hands every arm the
		// identical relation catalog and candidate stream.
		r := rand.New(rand.NewSource(optBenchQuerySeed(cfg.Seed, joins, q)))
		rels, err := mdrs.RandomRelations(r, joins+1, 1_000, 100_000)
		if err != nil {
			return optBenchArm{}, nil, err
		}
		res, err := s.Best(r, rels)
		if err != nil {
			return optBenchArm{}, nil, err
		}
		arm.Enumerated += res.Enumerated
		arm.Pruned += int64(res.Pruned)
		arm.Scheduled += int64(res.Scheduled)
		arm.WarmHits += int64(res.WarmHits)
		arm.PeakResident = max(arm.PeakResident, res.PeakResident)
		arm.MeanBestResponse += res.Best.Schedule.Response
		winners = append(winners, res.Best)
	}
	arm.WallSeconds = time.Since(start).Seconds()
	if queries > 0 {
		arm.MeanBestResponse /= float64(queries)
	}
	return arm, winners, nil
}

// optBenchIdentity reports whether got picked the unpruned arm's
// winner on every query: same candidate index, byte-identical
// schedule.
func optBenchIdentity(want, got []mdrs.PlanCandidate) (bool, error) {
	if len(want) != len(got) {
		return false, nil
	}
	for q := range want {
		w, err := mdrs.EncodeScheduleJSON(want[q].Schedule)
		if err != nil {
			return false, err
		}
		g, err := mdrs.EncodeScheduleJSON(got[q].Schedule)
		if err != nil {
			return false, err
		}
		if got[q].Index != want[q].Index || !bytes.Equal(g, w) {
			return false, nil
		}
	}
	return true, nil
}

// optBenchSweepRun runs all four arms at one join count.
func optBenchSweepRun(cfg optBenchConfig, joins, queries int) (optBenchSweep, bool, error) {
	sweep := optBenchSweep{Joins: joins}
	first, _, err := optBenchArmRun(cfg, joins, queries, armFirstPlan)
	if err != nil {
		return sweep, false, err
	}
	unpruned, oracle, err := optBenchArmRun(cfg, joins, queries, armUnpruned)
	if err != nil {
		return sweep, false, err
	}
	pruned, prunedWinners, err := optBenchArmRun(cfg, joins, queries, armPruned)
	if err != nil {
		return sweep, false, err
	}
	streaming, streamWinners, err := optBenchArmRun(cfg, joins, queries, armStreaming)
	if err != nil {
		return sweep, false, err
	}
	sweep.Arms = []optBenchArm{first, unpruned, pruned, streaming}

	prunedOK, err := optBenchIdentity(oracle, prunedWinners)
	if err != nil {
		return sweep, false, err
	}
	streamOK, err := optBenchIdentity(oracle, streamWinners)
	if err != nil {
		return sweep, false, err
	}
	return sweep, prunedOK && streamOK, nil
}

// optBenchCheckRun runs the deterministic quick corpus (unpruned
// oracle + streaming arm only) and returns the streaming ledger per
// join count together with its identity verdict.
func optBenchCheckRun(cfg optBenchConfig, check optBenchCheck) (map[string]int64, bool, error) {
	sub := cfg
	sub.Seed = check.Seed
	ledger := make(map[string]int64, len(check.Joins))
	identity := true
	for _, joins := range check.Joins {
		_, oracle, err := optBenchArmRun(sub, joins, check.Queries, armUnpruned)
		if err != nil {
			return nil, false, err
		}
		streaming, winners, err := optBenchArmRun(sub, joins, check.Queries, armStreaming)
		if err != nil {
			return nil, false, err
		}
		ok, err := optBenchIdentity(oracle, winners)
		if err != nil {
			return nil, false, err
		}
		identity = identity && ok
		ledger[fmt.Sprintf("joins=%d", joins)] = streaming.Scheduled
	}
	return ledger, identity, nil
}

// runOptBench measures all arms across the sweep and writes the report
// to path.
func runOptBench(path string, quick bool, seed int64) error {
	cfg := optBenchConfig{
		Joins: []int{3, 5, 8, 9}, Candidates: 8, Sites: 64, Queries: 24,
		Eps: 0.5, F: 0.7, Seed: 7,
	}
	if quick {
		cfg.Joins = []int{3, 5, 9}
		cfg.Queries = 8
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	report := optBenchReport{
		Config: cfg, GoMaxProcs: runtime.GOMAXPROCS(0),
		IdentityVerified: true, StreamingFewer: true,
	}

	for _, joins := range cfg.Joins {
		sweep, identical, err := optBenchSweepRun(cfg, joins, cfg.Queries)
		if err != nil {
			return err
		}
		report.Sweeps = append(report.Sweeps, sweep)
		report.IdentityVerified = report.IdentityVerified && identical
		if joins >= 5 {
			pruned, streaming := sweep.Arms[2], sweep.Arms[3]
			if streaming.Scheduled >= pruned.Scheduled {
				report.StreamingFewer = false
			}
		}
	}

	report.Check = optBenchCheck{Joins: []int{3, 5}, Queries: 6, Seed: cfg.Seed}
	ledger, checkIdentity, err := optBenchCheckRun(cfg, report.Check)
	if err != nil {
		return err
	}
	report.Check.Scheduled = ledger
	report.IdentityVerified = report.IdentityVerified && checkIdentity

	report.Note = fmt.Sprintf("four arms share re-seeded workloads (%d queries per join count, joins %v); "+
		"winners of the pruned and streaming arms matched the unpruned oracle byte-for-byte on every "+
		"query: %v; streaming scheduled strictly fewer candidates than the pruned pool at every "+
		"sampled join count: %v",
		cfg.Queries, cfg.Joins, report.IdentityVerified, report.StreamingFewer)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !report.IdentityVerified {
		return fmt.Errorf("a pruning arm's winner diverged from the unpruned oracle (see %s)", path)
	}
	if !report.StreamingFewer {
		return fmt.Errorf("streaming scheduled no fewer candidates than the pruned pool (see %s)", path)
	}
	return nil
}

// runOptCheck replays the committed report's check corpus and fails if
// the committed run's identity verdict was false, the live replay's
// identity verdict is false, or the live streaming ledger regressed
// more than 10%% over the committed one at any join count.
func runOptCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed optBenchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if !committed.IdentityVerified {
		return fmt.Errorf("%s: committed identity verdict is false", path)
	}
	if len(committed.Check.Joins) == 0 || committed.Check.Queries <= 0 {
		return fmt.Errorf("%s: no check corpus recorded (regenerate with -opt-bench)", path)
	}
	live, identity, err := optBenchCheckRun(committed.Config, committed.Check)
	if err != nil {
		return err
	}
	if !identity {
		return fmt.Errorf("live streaming winner diverged from the unpruned oracle on the check corpus")
	}
	for key, want := range committed.Check.Scheduled {
		got, ok := live[key]
		if !ok {
			return fmt.Errorf("check corpus missing ledger for %s", key)
		}
		if float64(got) > 1.1*float64(want) {
			return fmt.Errorf("streaming ledger regressed at %s: scheduled %d live vs %d committed (>10%%)",
				key, got, want)
		}
		fmt.Printf("mdrs-bench: opt-check %s: scheduled %d live vs %d committed ok\n", key, got, want)
	}
	fmt.Println("mdrs-bench: opt-check: identity verified, ledger within tolerance")
	return nil
}

