// The -opt-bench mode: measure the bound-pruned plan search against its
// two ablation arms and write the numbers as JSON (the
// BENCH_optimizer.json format tracked at the repository root). Three
// arms run over identical re-seeded workloads:
//
//   - first-plan: the classical two-phase strawman — schedule only the
//     first sampled plan (a Candidates=1 search);
//   - best-of-k-unpruned: schedule every one of the K candidates and
//     keep the best;
//   - best-of-k-pruned: the integrated search — compute the cheap
//     OPTBOUND lower bound for every candidate and run the full
//     TreeSchedule only on candidates whose bound beats the running
//     incumbent.
//
// The report records, per arm, wall-clock time and the
// candidates/pruned/scheduled ledger, plus a live identity verdict: the
// pruned arm must pick the same winner as the unpruned arm — same
// candidate index, byte-identical schedule — on every query, or the
// run fails.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mdrs"
)

type optBenchReport struct {
	Config     optBenchConfig `json:"config"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Arms       []optBenchArm  `json:"arms"`
	// IdentityVerified is true when the pruned arm's winner matched the
	// unpruned arm's on every query: same candidate index and
	// byte-identical schedule.
	IdentityVerified bool   `json:"identity_verified"`
	Note             string `json:"note"`
}

type optBenchConfig struct {
	Joins      int     `json:"joins"`
	Candidates int     `json:"candidates"`
	Sites      int     `json:"sites"`
	Queries    int     `json:"queries"`
	Eps        float64 `json:"eps"`
	F          float64 `json:"f"`
	Seed       int64   `json:"seed"`
}

type optBenchArm struct {
	Arm string `json:"arm"`
	// Candidates/Pruned/Scheduled are totals across all queries.
	Candidates       int     `json:"candidates"`
	Pruned           int     `json:"pruned"`
	Scheduled        int     `json:"scheduled"`
	MeanBestResponse float64 `json:"mean_best_response"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// optBenchSearch builds one arm's search. Each arm gets its own fresh
// cost-model memo so the arms' wall clocks are comparable.
func optBenchSearch(cfg optBenchConfig, candidates int, noPrune bool) (mdrs.PlanSearch, error) {
	s, err := mdrs.NewPlanSearch(mdrs.Options{
		Sites:   cfg.Sites,
		Epsilon: cfg.Eps,
		F:       cfg.F,
	}, candidates)
	if err != nil {
		return mdrs.PlanSearch{}, err
	}
	s.NoPrune = noPrune
	return s, nil
}

// optBenchArmRun runs one arm over every query workload and returns its
// totals plus the per-query winners for the identity check.
func optBenchArmRun(cfg optBenchConfig, name string, candidates int, noPrune bool) (optBenchArm, []mdrs.PlanCandidate, error) {
	s, err := optBenchSearch(cfg, candidates, noPrune)
	if err != nil {
		return optBenchArm{}, nil, err
	}
	arm := optBenchArm{Arm: name}
	winners := make([]mdrs.PlanCandidate, 0, cfg.Queries)
	start := time.Now()
	for q := 0; q < cfg.Queries; q++ {
		// Re-seeding per query (not per arm) hands every arm the
		// identical relation catalog and candidate stream.
		r := rand.New(rand.NewSource(cfg.Seed + int64(q)))
		rels, err := mdrs.RandomRelations(r, cfg.Joins+1, 1_000, 100_000)
		if err != nil {
			return optBenchArm{}, nil, err
		}
		res, err := s.Best(r, rels)
		if err != nil {
			return optBenchArm{}, nil, err
		}
		arm.Candidates += len(res.Candidates)
		arm.Pruned += res.Pruned
		arm.Scheduled += res.Scheduled
		arm.MeanBestResponse += res.Best.Schedule.Response
		winners = append(winners, res.Best)
	}
	arm.WallSeconds = time.Since(start).Seconds()
	if cfg.Queries > 0 {
		arm.MeanBestResponse /= float64(cfg.Queries)
	}
	return arm, winners, nil
}

// runOptBench measures all three arms and writes the report to path.
func runOptBench(path string, quick bool, seed int64) error {
	cfg := optBenchConfig{
		Joins: 15, Candidates: 8, Sites: 64, Queries: 24,
		Eps: 0.5, F: 0.7, Seed: 7,
	}
	if quick {
		cfg.Joins = 10
		cfg.Queries = 8
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	report := optBenchReport{Config: cfg, GoMaxProcs: runtime.GOMAXPROCS(0)}

	first, _, err := optBenchArmRun(cfg, "first-plan", 1, false)
	if err != nil {
		return err
	}
	unpruned, fullWinners, err := optBenchArmRun(cfg, "best-of-k-unpruned", cfg.Candidates, true)
	if err != nil {
		return err
	}
	pruned, fastWinners, err := optBenchArmRun(cfg, "best-of-k-pruned", cfg.Candidates, false)
	if err != nil {
		return err
	}
	report.Arms = []optBenchArm{first, unpruned, pruned}

	report.IdentityVerified = true
	for q := range fullWinners {
		want, err := mdrs.EncodeScheduleJSON(fullWinners[q].Schedule)
		if err != nil {
			return err
		}
		got, err := mdrs.EncodeScheduleJSON(fastWinners[q].Schedule)
		if err != nil {
			return err
		}
		if fastWinners[q].Index != fullWinners[q].Index || !bytes.Equal(got, want) {
			report.IdentityVerified = false
		}
	}

	report.Note = fmt.Sprintf("arms share re-seeded workloads (%d queries of %d joins); "+
		"the pruned arm fully scheduled %d of %d candidates (%.0f%% pruned) and its winner "+
		"matched the unpruned arm byte-for-byte on every query: %v",
		cfg.Queries, cfg.Joins, pruned.Scheduled, pruned.Candidates,
		100*float64(pruned.Pruned)/float64(max(1, pruned.Candidates)),
		report.IdentityVerified)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !report.IdentityVerified {
		return fmt.Errorf("pruned search winner diverged from unpruned (see %s)", path)
	}
	return nil
}

func optBenchMain(path string, quick bool, seed int64) {
	if err := runOptBench(path, quick, seed); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-bench: opt-bench: %v\n", err)
		os.Exit(1)
	}
}
