// The -cache-bench mode: measure the schedule cache and the
// allocation-lean placement loop on a repeated-plan serve workload, and
// write the numbers as JSON (the BENCH_cache.json format tracked at the
// repository root). Three sections:
//
//   - serve: live cold/warm/uncached per-request latencies through a
//     serve.Service, demonstrating the warm-vs-cold speedup of the
//     plan-fingerprint schedule cache.
//
//   - tree_schedule: testing.Benchmark of TreeScheduler.Schedule with
//     and without the cost-model memo, in ns/op and allocs/op.
//
//   - placement: testing.Benchmark of the OperatorSchedule placement
//     loop, next to the seed baseline measured before the
//     allocation-lean rewrite, so the allocs/op reduction stays on
//     record across regenerations.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"mdrs"
)

// placementSeedBaseline pins the BenchmarkOperatorSchedulePlacement
// numbers measured at the seed commit (before the slice-backed ban
// sets, the reusable scratch, and the incremental site-index reuse), so
// regenerated reports keep the before/after comparison. Measured on the
// same Intel Xeon 2.10GHz container the repository's other BENCH_*.json
// files come from.
var placementSeedBaseline = []placementCase{
	{P: 16, M: 64, NsPerOp: 74238, AllocsPerOp: 334, BytesPerOp: 45536},
	{P: 100, M: 200, NsPerOp: 695380, AllocsPerOp: 1305, BytesPerOp: 205339},
	{P: 100, M: 400, NsPerOp: 1362013, AllocsPerOp: 2027, BytesPerOp: 461110},
	{P: 256, M: 512, NsPerOp: 2506791, AllocsPerOp: 3291, BytesPerOp: 558002},
	{P: 512, M: 1024, NsPerOp: 8222045, AllocsPerOp: 6543, BytesPerOp: 1149804},
}

type cacheBenchReport struct {
	Config       cacheBenchConfig `json:"config"`
	Serve        serveBench       `json:"serve"`
	TreeSchedule treeBench        `json:"tree_schedule"`
	Placement    placementBench   `json:"placement"`
}

type cacheBenchConfig struct {
	Sites   int     `json:"sites"`
	Eps     float64 `json:"eps"`
	F       float64 `json:"f"`
	Plans   int     `json:"plans"`
	Joins   int     `json:"joins"`
	Repeats int     `json:"repeats"`
	Seed    int64   `json:"seed"`
}

type serveBench struct {
	ColdUsPerReq     float64 `json:"cold_us_per_req"`
	WarmUsPerReq     float64 `json:"warm_us_per_req"`
	UncachedUsPerReq float64 `json:"uncached_us_per_req"`
	WarmVsCold       float64 `json:"warm_speedup_vs_cold"`
	WarmVsUncached   float64 `json:"warm_speedup_vs_uncached"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
}

type treeBench struct {
	UncachedNsPerOp     int64 `json:"uncached_ns_per_op"`
	UncachedAllocsPerOp int64 `json:"uncached_allocs_per_op"`
	CachedNsPerOp       int64 `json:"cached_ns_per_op"`
	CachedAllocsPerOp   int64 `json:"cached_allocs_per_op"`
}

type placementCase struct {
	P           int   `json:"p"`
	M           int   `json:"m"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type placementBench struct {
	SeedBaseline []placementCase `json:"seed_baseline"`
	Current      []placementCase `json:"current"`
}

// runCacheBench measures everything and writes the report to path.
func runCacheBench(path string, quick bool, seed int64) error {
	cfg := cacheBenchConfig{
		Sites: 32, Eps: 0.5, F: 0.7,
		Plans: 8, Joins: 10, Repeats: 50, Seed: 7,
	}
	if quick {
		cfg.Plans, cfg.Joins, cfg.Repeats = 4, 6, 10
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	report := cacheBenchReport{Config: cfg}

	if err := benchServe(&report); err != nil {
		return err
	}
	if err := benchTreeSchedule(&report); err != nil {
		return err
	}
	benchPlacement(&report, quick)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchTrees builds the repeated-plan workload: Plans distinct trees.
func benchTrees(cfg cacheBenchConfig) ([]*mdrs.TaskTree, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	trees := make([]*mdrs.TaskTree, cfg.Plans)
	for i := range trees {
		p := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(cfg.Joins))
		_, tt, err := mdrs.PrepareQuery(p)
		if err != nil {
			return nil, err
		}
		trees[i] = tt
	}
	return trees, nil
}

func benchScheduler(cfg cacheBenchConfig) (mdrs.TreeScheduler, error) {
	ov, err := mdrs.NewOverlap(cfg.Eps)
	if err != nil {
		return mdrs.TreeScheduler{}, err
	}
	return mdrs.TreeScheduler{
		Model:   mdrs.DefaultCostModel(),
		Overlap: ov,
		P:       cfg.Sites,
		F:       cfg.F,
	}, nil
}

// benchServe measures the live serve workload: every plan once cold,
// then Repeats warm rounds over the same plans, against both a cached
// and an uncached service.
func benchServe(report *cacheBenchReport) error {
	cfg := report.Config
	trees, err := benchTrees(cfg)
	if err != nil {
		return err
	}
	ts, err := benchScheduler(cfg)
	if err != nil {
		return err
	}
	ts.Cache = mdrs.NewCostCache(ts.Model)
	met := mdrs.NewMetrics()
	cached, err := mdrs.NewSchedulingService(mdrs.ServeConfig{
		Scheduler: ts, CacheSize: cfg.Plans, Rec: met,
	})
	if err != nil {
		return err
	}
	defer cached.Close()
	uncachedTS, err := benchScheduler(cfg)
	if err != nil {
		return err
	}
	uncached, err := mdrs.NewSchedulingService(mdrs.ServeConfig{Scheduler: uncachedTS})
	if err != nil {
		return err
	}
	defer uncached.Close()

	ctx := context.Background()
	run := func(svc *mdrs.SchedulingService, rounds int) (time.Duration, error) {
		start := time.Now()
		for round := 0; round < rounds; round++ {
			for _, tt := range trees {
				if _, err := svc.Schedule(ctx, tt); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}

	coldTotal, err := run(cached, 1)
	if err != nil {
		return err
	}
	warmTotal, err := run(cached, cfg.Repeats)
	if err != nil {
		return err
	}
	uncachedTotal, err := run(uncached, cfg.Repeats)
	if err != nil {
		return err
	}

	nCold := float64(len(trees))
	nWarm := float64(len(trees) * cfg.Repeats)
	s := &report.Serve
	s.ColdUsPerReq = float64(coldTotal.Microseconds()) / nCold
	s.WarmUsPerReq = float64(warmTotal.Microseconds()) / nWarm
	s.UncachedUsPerReq = float64(uncachedTotal.Microseconds()) / nWarm
	if s.WarmUsPerReq > 0 {
		s.WarmVsCold = s.ColdUsPerReq / s.WarmUsPerReq
		s.WarmVsUncached = s.UncachedUsPerReq / s.WarmUsPerReq
	}
	snap := met.Snapshot()
	s.CacheHits = snap.Counters["serve.cache_hits"] + snap.Counters["serve.cache_coalesced"]
	s.CacheMisses = snap.Counters["serve.cache_misses"]
	return nil
}

// benchTreeSchedule compares TreeScheduler.Schedule with and without
// the cost-model memo over the workload's plans.
func benchTreeSchedule(report *cacheBenchReport) error {
	trees, err := benchTrees(report.Config)
	if err != nil {
		return err
	}
	ts, err := benchScheduler(report.Config)
	if err != nil {
		return err
	}
	measure := func(ts mdrs.TreeScheduler) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ts.Schedule(trees[i%len(trees)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	cold := measure(ts)
	ts.Cache = mdrs.NewCostCache(ts.Model)
	warm := measure(ts)
	report.TreeSchedule = treeBench{
		UncachedNsPerOp:     cold.NsPerOp(),
		UncachedAllocsPerOp: cold.AllocsPerOp(),
		CachedNsPerOp:       warm.NsPerOp(),
		CachedAllocsPerOp:   warm.AllocsPerOp(),
	}
	return nil
}

// benchPlacement re-measures the OperatorSchedule placement benchmark
// cases next to the pinned seed baseline.
func benchPlacement(report *cacheBenchReport, quick bool) {
	cases := placementSeedBaseline
	if quick {
		cases = cases[:2]
	}
	report.Placement.SeedBaseline = cases
	ov, _ := mdrs.NewOverlap(0.5)
	for _, c := range cases {
		// The seed baseline's P=16 case was measured at max degree 4,
		// the larger cases at 8 — keep the workloads comparable.
		maxDeg := 8
		if c.P == 16 {
			maxDeg = 4
		}
		ops := placementOps(int64(c.P*1000+c.M), c.M, maxDeg)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mdrs.OperatorSchedule(c.P, 3, ov, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Placement.Current = append(report.Placement.Current, placementCase{
			P: c.P, M: c.M,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
}

// placementOps mirrors the internal placement benchmark's workload: m
// floating operators with 1..maxDeg clones of random 3-dimensional work.
func placementOps(seed int64, m, maxDeg int) []*mdrs.SchedOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]*mdrs.SchedOp, m)
	for i := range ops {
		n := 1 + r.Intn(maxDeg)
		clones := make([]mdrs.Vector, n)
		for j := range clones {
			clones[j] = mdrs.Vector{r.Float64(), r.Float64(), r.Float64()}
		}
		ops[i] = &mdrs.SchedOp{ID: i, Clones: clones}
	}
	return ops
}

// cacheBenchMain is the -cache-bench entry point, split from main for
// the tests.
func cacheBenchMain(path string, quick bool, seed int64) {
	if err := runCacheBench(path, quick, seed); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-bench: cache-bench: %v\n", err)
		os.Exit(1)
	}
}
