//go:build race

package main

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation distorts wall-clock comparisons.
const raceEnabled = true
