package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -par-bench report must be valid JSON with every case measured,
// the live workers-invariance check passing, and the workers arm a real
// pool (>= 2) even on a single-core host.
func TestRunParBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench_parallel.json")
	if err := runParBench(path, true, 0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report parBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if !report.WorkersInvarianceVerified {
		t.Fatal("workers invariance not verified")
	}
	if report.WorkersCompared < 2 {
		t.Fatalf("workers arm = %d, want >= 2", report.WorkersCompared)
	}
	if len(report.TreeSchedule) == 0 {
		t.Fatal("no tree_schedule cases measured")
	}
	for _, c := range report.TreeSchedule {
		if c.ColdW1NsPerOp <= 0 || c.ColdWNNsPerOp <= 0 ||
			c.WarmW1NsPerOp <= 0 || c.WarmWNNsPerOp <= 0 {
			t.Fatalf("case P=%d not fully measured: %+v", c.P, c)
		}
		if c.ColdSpeedup <= 0 || c.WarmSpeedup <= 0 {
			t.Fatalf("case P=%d missing speedup ratios: %+v", c.P, c)
		}
	}
	if report.Note == "" {
		t.Fatal("report note empty")
	}
}
