package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -engine-bench report must be valid JSON with both arms measured
// for every case of the matrix (joins × scale × Parallel × skew), the
// live Report byte-identity verdict true everywhere, and the joins=8
// acceptance summary filled in. Thresholds themselves (≥3× speedup,
// ≥5× allocs) are asserted against the committed full run, not the
// quick one — quick still checks they hold, since the quick matrix has
// comfortably cleared them since the PR landed.
func TestRunEngineBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench_engine.json")
	if err := runEngineBench(path, true, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report engineBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	// Quick mode: 3 join counts × 1 scale × 2 skews × 2 Parallel modes.
	if len(report.Cases) != 12 {
		t.Fatalf("%d cases, want 12", len(report.Cases))
	}
	if !report.AllIdentical {
		t.Fatal("flat and reference reports diverged")
	}
	for _, c := range report.Cases {
		if !c.Identical {
			t.Fatalf("case joins=%d parallel=%v skew=%g not identical", c.Joins, c.Parallel, c.Skew)
		}
		if c.RefWarmNs <= 0 || c.FlatWarmNs <= 0 || c.RefTPS <= 0 || c.FlatTPS <= 0 {
			t.Fatalf("case joins=%d not measured: %+v", c.Joins, c)
		}
		if c.FlatAllocs <= 0 || c.RefAllocs <= c.FlatAllocs {
			t.Fatalf("case joins=%d allocs not reduced: ref %.0f, flat %.0f",
				c.Joins, c.RefAllocs, c.FlatAllocs)
		}
	}
	if report.Joins8MinAllocRatio < 5 {
		t.Fatalf("joins=8 min alloc ratio %.1fx below the 5x acceptance bar", report.Joins8MinAllocRatio)
	}
	if !report.AllocsOK {
		t.Fatal("allocs_ok flag not set")
	}
	// Wall-clock thresholds only hold without the race detector: its
	// instrumentation slows both arms onto the same memory-access cost
	// floor, compressing the speedup to ~1.5× while the allocation
	// ratio (a pure count) is unaffected.
	if raceEnabled {
		t.Logf("race detector on: joins=8 min speedup %.2fx recorded, 3x bar not asserted",
			report.Joins8MinSpeedup)
		return
	}
	if report.Joins8MinSpeedup < 3 {
		t.Fatalf("joins=8 min speedup %.2fx below the 3x acceptance bar", report.Joins8MinSpeedup)
	}
	if !report.SpeedupOK {
		t.Fatal("speedup_ok flag not set")
	}
}
