// The -par-bench mode: measure the scheduler's deterministic
// intra-schedule parallelism (the Workers knob) and write the numbers
// as JSON (the BENCH_parallel.json format tracked at the repository
// root). For each system size it benchmarks TreeScheduler.Schedule at
// Workers=1 against Workers=N (N from -sched-workers, default
// GOMAXPROCS raised to at least 2 so the pool machinery is always
// exercised), cold (no cost cache) and warm (with the cost-model memo),
// and verifies the tentpole invariant live: the schedule bytes must be
// identical for Workers ∈ {1, 2, 4, 8} on every case, or the report
// says so and the run fails.
//
// On a single-core host the workers arms cannot show wall-clock gains —
// the pool just adds synchronization — so the report, like
// BENCH_sched.json before it, records the invariance verdict plus a
// note naming the core count instead of pretending at a speedup.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"mdrs"
)

type parBenchReport struct {
	Config          parBenchConfig `json:"config"`
	GoMaxProcs      int            `json:"gomaxprocs"`
	WorkersCompared int            `json:"workers_compared"`
	TreeSchedule    []parBenchCase `json:"tree_schedule"`
	// WorkersInvarianceVerified is true when every case produced
	// byte-identical schedules for Workers ∈ {1, 2, 4, 8}.
	WorkersInvarianceVerified bool   `json:"workers_invariance_verified"`
	Note                      string `json:"note"`
}

type parBenchConfig struct {
	Eps   float64 `json:"eps"`
	F     float64 `json:"f"`
	Joins int     `json:"joins"`
	Seed  int64   `json:"seed"`
}

type parBenchCase struct {
	P             int     `json:"p"`
	ColdW1NsPerOp int64   `json:"cold_w1_ns_per_op"`
	ColdWNNsPerOp int64   `json:"cold_wn_ns_per_op"`
	WarmW1NsPerOp int64   `json:"warm_w1_ns_per_op"`
	WarmWNNsPerOp int64   `json:"warm_wn_ns_per_op"`
	ColdSpeedup   float64 `json:"cold_speedup"`
	WarmSpeedup   float64 `json:"warm_speedup"`
}

// runParBench measures everything and writes the report to path.
func runParBench(path string, quick bool, seed int64, workers int) error {
	cfg := parBenchConfig{Eps: 0.5, F: 0.7, Joins: 14, Seed: 7}
	if quick {
		cfg.Joins = 8
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	sizes := []int{100, 256, 512}
	if quick {
		sizes = []int{100, 256}
	}
	wn := workers
	if wn <= 0 {
		wn = runtime.GOMAXPROCS(0)
	}
	if wn < 2 {
		// Always measure a real pool: on a single-core host GOMAXPROCS
		// is 1 and the comparison would degenerate to serial-vs-serial.
		wn = 2
	}
	report := parBenchReport{
		Config:          cfg,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		WorkersCompared: wn,
	}

	tt, err := parBenchTree(cfg)
	if err != nil {
		return err
	}
	report.WorkersInvarianceVerified = true
	for _, p := range sizes {
		ts, err := parBenchScheduler(cfg, p)
		if err != nil {
			return err
		}
		ok, err := parBenchInvariant(ts, tt)
		if err != nil {
			return err
		}
		if !ok {
			report.WorkersInvarianceVerified = false
		}

		c := parBenchCase{P: p}
		c.ColdW1NsPerOp, err = parBenchMeasure(ts, tt, 1)
		if err != nil {
			return err
		}
		c.ColdWNNsPerOp, err = parBenchMeasure(ts, tt, wn)
		if err != nil {
			return err
		}
		ts.Cache = mdrs.NewCostCache(ts.Model)
		c.WarmW1NsPerOp, err = parBenchMeasure(ts, tt, 1)
		if err != nil {
			return err
		}
		c.WarmWNNsPerOp, err = parBenchMeasure(ts, tt, wn)
		if err != nil {
			return err
		}
		if c.ColdWNNsPerOp > 0 {
			c.ColdSpeedup = float64(c.ColdW1NsPerOp) / float64(c.ColdWNNsPerOp)
		}
		if c.WarmWNNsPerOp > 0 {
			c.WarmSpeedup = float64(c.WarmW1NsPerOp) / float64(c.WarmWNNsPerOp)
		}
		report.TreeSchedule = append(report.TreeSchedule, c)
	}

	if report.GoMaxProcs == 1 {
		report.Note = "this measurement host has 1 core, so workers > 1 cannot show " +
			"wall-clock gains here (the pool only adds synchronization); the " +
			"workers_invariance_verified verdict confirms the parallel prepare pass and " +
			"the sharded argmin produce byte-identical schedules for every pool width"
	} else {
		report.Note = fmt.Sprintf("speedups compare Workers=1 against Workers=%d on a "+
			"%d-core host; schedules are byte-identical for every pool width", wn, report.GoMaxProcs)
	}
	if !report.WorkersInvarianceVerified {
		if werr := writeParBench(path, &report); werr != nil {
			return werr
		}
		return fmt.Errorf("workers invariance violated: schedules differ across pool widths")
	}
	return writeParBench(path, &report)
}

func writeParBench(path string, r *parBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parBenchTree builds the benchmark plan: one seeded bushy join tree,
// reused by every case so only P and Workers vary.
func parBenchTree(cfg parBenchConfig) (*mdrs.TaskTree, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	p := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(cfg.Joins))
	_, tt, err := mdrs.PrepareQuery(p)
	return tt, err
}

func parBenchScheduler(cfg parBenchConfig, p int) (mdrs.TreeScheduler, error) {
	ov, err := mdrs.NewOverlap(cfg.Eps)
	if err != nil {
		return mdrs.TreeScheduler{}, err
	}
	return mdrs.TreeScheduler{
		Model:   mdrs.DefaultCostModel(),
		Overlap: ov,
		P:       p,
		F:       cfg.F,
	}, nil
}

// parBenchInvariant checks the tentpole invariant live on this exact
// host and build: byte-identical schedules for every pool width.
func parBenchInvariant(ts mdrs.TreeScheduler, tt *mdrs.TaskTree) (bool, error) {
	var ref []byte
	for _, w := range []int{1, 2, 4, 8} {
		ts.Workers = w
		s, err := ts.Schedule(tt)
		if err != nil {
			return false, err
		}
		data, err := mdrs.EncodeScheduleJSON(s)
		if err != nil {
			return false, err
		}
		if ref == nil {
			ref = data
		} else if !bytes.Equal(ref, data) {
			return false, nil
		}
	}
	return true, nil
}

// parBenchMeasure times TreeSchedule at one pool width.
func parBenchMeasure(ts mdrs.TreeScheduler, tt *mdrs.TaskTree, workers int) (int64, error) {
	ts.Workers = workers
	var err error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, serr := ts.Schedule(tt); serr != nil {
				err = serr
				b.FailNow()
			}
		}
	})
	return res.NsPerOp(), err
}

// parBenchMain is the -par-bench entry point, split from main for the
// tests.
func parBenchMain(path string, quick bool, seed int64, workers int) {
	if err := runParBench(path, quick, seed, workers); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-bench: par-bench: %v\n", err)
		os.Exit(1)
	}
}
