package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The -cache-bench report must be valid JSON with every section filled
// and internally consistent: singleflight accounting covers all warm
// requests, and the warm path is faster than recomputing.
func TestRunCacheBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs live benchmarks")
	}
	path := filepath.Join(t.TempDir(), "bench_cache.json")
	if err := runCacheBench(path, true, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report cacheBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	if report.Serve.CacheMisses != int64(report.Config.Plans) {
		t.Fatalf("misses = %d, want %d (one per distinct plan)",
			report.Serve.CacheMisses, report.Config.Plans)
	}
	wantHits := int64(report.Config.Plans * report.Config.Repeats)
	if report.Serve.CacheHits != wantHits {
		t.Fatalf("hits = %d, want %d", report.Serve.CacheHits, wantHits)
	}
	if report.Serve.WarmVsUncached <= 1 {
		t.Fatalf("warm speedup vs uncached = %g, want > 1", report.Serve.WarmVsUncached)
	}
	if len(report.Placement.Current) != len(report.Placement.SeedBaseline) {
		t.Fatal("placement sections out of sync")
	}
	for i, c := range report.Placement.Current {
		if c.AllocsPerOp <= 0 || c.NsPerOp <= 0 {
			t.Fatalf("placement case %d not measured: %+v", i, c)
		}
	}
	if report.TreeSchedule.CachedAllocsPerOp >= report.TreeSchedule.UncachedAllocsPerOp {
		t.Fatalf("cost cache did not reduce TreeSchedule allocs: cached %d, uncached %d",
			report.TreeSchedule.CachedAllocsPerOp, report.TreeSchedule.UncachedAllocsPerOp)
	}
}
