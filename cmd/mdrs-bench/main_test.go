package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdrs/internal/experiments"
	"mdrs/internal/obs"
)

func testConfig() experiments.Config {
	c := experiments.Quick()
	c.Queries = 4 // batch ablation groups queries in fours
	c.Sites = []int{10, 40}
	return c
}

func TestEmitSingleFigure(t *testing.T) {
	var sb strings.Builder
	report, err := emit(&sb, testConfig(), "6b", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 6b") {
		t.Fatalf("output missing figure header:\n%s", sb.String()[:100])
	}
	if len(report.Figures) != 1 || report.Figures[0].Figure != "6b" {
		t.Fatalf("report figures = %+v, want one entry for 6b", report.Figures)
	}
	if report.Figures[0].Seconds < 0 || report.TotalSeconds < report.Figures[0].Seconds {
		t.Fatalf("implausible timings: %+v total %g", report.Figures, report.TotalSeconds)
	}
}

func TestEmitUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if _, err := emit(&sb, testConfig(), "9z", false); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// A failing emit still returns the report accumulated so far, so main
// can write the -benchjson and -metrics sinks before exiting non-zero.
func TestEmitReturnsReportOnError(t *testing.T) {
	var sb strings.Builder
	cfg := testConfig()
	report, err := emit(&sb, cfg, "9z", false)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	if report == nil {
		t.Fatal("failed emit discarded the bench report")
	}
	if report.Queries != cfg.Queries || report.Seed != cfg.Seed {
		t.Fatalf("partial report lost its config: %+v", report)
	}
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := writeReport(path, report); err != nil {
		t.Fatalf("partial report not writable: %v", err)
	}
}

func TestEmitAllCoversEveryRegisteredFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	var sb strings.Builder
	report, err := emit(&sb, testConfig(), "all", false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range figureOrder {
		if !strings.Contains(out, "Figure "+name) {
			t.Fatalf("all-run missing figure %s", name)
		}
	}
	if len(figures) != len(figureOrder) {
		t.Fatalf("registry has %d figures, order lists %d", len(figures), len(figureOrder))
	}
	if len(report.Figures) != len(figureOrder) {
		t.Fatalf("report covers %d figures, want %d", len(report.Figures), len(figureOrder))
	}
}

func TestEmitCSV(t *testing.T) {
	var sb strings.Builder
	if _, err := emit(&sb, testConfig(), "6b", true); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(sb.String(), "\n", 2)[0]
	if !strings.Contains(first, "sites,") {
		t.Fatalf("CSV header missing: %q", first)
	}
}

func TestEmitRejectsInvalidConfig(t *testing.T) {
	var sb strings.Builder
	if _, err := emit(&sb, experiments.Config{}, "5a", false); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// The -benchjson report must round-trip as machine-readable JSON with
// the fields future PRs diff against.
func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	cfg := testConfig()
	report, err := emit(&sb, cfg, "order", false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_sched.json")
	if err := writeReport(path, report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got benchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Queries != cfg.Queries || got.Seed != cfg.Seed {
		t.Fatalf("report config = %+v, want queries %d seed %d", got, cfg.Queries, cfg.Seed)
	}
	if len(got.Figures) != 1 || got.Figures[0].Figure != "order" {
		t.Fatalf("report figures = %+v", got.Figures)
	}
}

// The -metrics snapshot must be machine-readable JSON whose counters
// reflect the regenerated figures.
func TestWriteMetrics(t *testing.T) {
	met := obs.NewMetrics()
	cfg := testConfig()
	cfg.Rec = met
	var sb strings.Builder
	if _, err := emit(&sb, cfg, "5a", false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := writeMetrics(path, met); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Counters["experiments.fig.5a"] != 1 || snap.Counters["experiments.schedules"] == 0 {
		t.Fatalf("counters missing: %v", snap.Counters)
	}
	if snap.Histograms["experiments.figure_seconds"].Count != 1 {
		t.Fatalf("figure timer missing: %v", snap.Histograms)
	}
}
