package main

import (
	"strings"
	"testing"

	"mdrs/internal/experiments"
)

func testConfig() experiments.Config {
	c := experiments.Quick()
	c.Queries = 4 // batch ablation groups queries in fours
	c.Sites = []int{10, 40}
	return c
}

func TestEmitSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := emit(&sb, testConfig(), "6b", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 6b") {
		t.Fatalf("output missing figure header:\n%s", sb.String()[:100])
	}
}

func TestEmitUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := emit(&sb, testConfig(), "9z", false); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestEmitAllCoversEveryRegisteredFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	var sb strings.Builder
	if err := emit(&sb, testConfig(), "all", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range figureOrder {
		if !strings.Contains(out, "Figure "+name) {
			t.Fatalf("all-run missing figure %s", name)
		}
	}
	if len(figures) != len(figureOrder) {
		t.Fatalf("registry has %d figures, order lists %d", len(figures), len(figureOrder))
	}
}

func TestEmitCSV(t *testing.T) {
	var sb strings.Builder
	if err := emit(&sb, testConfig(), "6b", true); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(sb.String(), "\n", 2)[0]
	if !strings.Contains(first, "sites,") {
		t.Fatalf("CSV header missing: %q", first)
	}
}

func TestEmitRejectsInvalidConfig(t *testing.T) {
	var sb strings.Builder
	if err := emit(&sb, experiments.Config{}, "5a", false); err == nil {
		t.Fatal("invalid config accepted")
	}
}
