// -engine-bench: measure the vectorized execution engine against the
// preserved reference executor and write BENCH_engine.json.
//
// For every case (joins × tuple scale × Parallel × skew) both arms run
// the identical dataset and schedule: the reference arm through the
// pre-vectorization data path (map hash tables, append-per-tuple
// partitioning, per-tuple key map lookups, full-copy concats, one
// goroutine per clone) and the flat arm through radix partitioning,
// dense flat tables, and the pooled tuple arena. The report records
// cold and warm ns/op, allocs/op, tuples/sec, the per-case speedup and
// allocation ratio, and a live Report byte-identity verdict — the
// acceptance gate is the joins=8 rows: ≥3× tuples/sec, ≥5× fewer
// allocs/op, identity true everywhere.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"mdrs/internal/costmodel"
	"mdrs/internal/engine"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// engineBenchSizes is the leaf-size pattern for chain plans, scaled per
// case. Alternating large/small sizes flip the carrier side join by
// join so both probe arms (presence and match) and both dense layouts
// (direct and CSR) execute.
var engineBenchSizes = []int{5000, 2000, 7000, 1200, 6400, 2800, 9000, 3300, 7500}

const engineBenchSites = 8

// engineBenchCase is one measured configuration, both arms.
type engineBenchCase struct {
	Joins    int     `json:"joins"`
	Scale    int     `json:"scale"`
	Tuples   int     `json:"tuples"` // total base-relation tuples
	Parallel bool    `json:"parallel"`
	Skew     float64 `json:"skew"`

	RefColdNs  int64   `json:"ref_cold_ns"`
	FlatColdNs int64   `json:"flat_cold_ns"`
	RefWarmNs  int64   `json:"ref_warm_ns_op"`
	FlatWarmNs int64   `json:"flat_warm_ns_op"`
	RefAllocs  float64 `json:"ref_allocs_op"`
	FlatAllocs float64 `json:"flat_allocs_op"`
	RefTPS     float64 `json:"ref_tuples_per_sec"`
	FlatTPS    float64 `json:"flat_tuples_per_sec"`

	Speedup    float64 `json:"speedup"`     // flat TPS / ref TPS
	AllocRatio float64 `json:"alloc_ratio"` // ref allocs / flat allocs
	Identical  bool    `json:"report_identical"`
}

// engineBenchReport is the BENCH_engine.json schema.
type engineBenchReport struct {
	Quick      bool              `json:"quick"`
	Seed       int64             `json:"seed"`
	Sites      int               `json:"sites"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Cases      []engineBenchCase `json:"cases"`

	// The acceptance summary over the joins=8 cases: the worst-case
	// speedup and allocation ratio, and whether every case (all joins,
	// both Parallel modes, both skews) produced byte-identical reports.
	Joins8MinSpeedup    float64 `json:"joins8_min_speedup"`
	Joins8MinAllocRatio float64 `json:"joins8_min_alloc_ratio"`
	SpeedupOK           bool    `json:"speedup_ok"`    // ≥ 3×
	AllocsOK            bool    `json:"allocs_ok"`     // ≥ 5×
	AllIdentical        bool    `json:"all_identical"` // every case
	TotalSeconds        float64 `json:"total_seconds"`
}

// engineBenchPlan builds the chain plan for one case.
func engineBenchPlan(joins, scale int) (*query.PlanNode, int) {
	sizes := engineBenchSizes[:joins+1]
	total := 0
	p := func() *query.PlanNode {
		mk := func(i int) *query.PlanNode {
			n := sizes[i] * scale
			total += n
			return &query.PlanNode{
				Relation: &query.Relation{Name: fmt.Sprintf("L%d", i), Tuples: n},
				Tuples:   n,
			}
		}
		p := mk(0)
		for i := 1; i <= joins; i++ {
			inner := mk(i)
			tu := p.Tuples
			if inner.Tuples > tu {
				tu = inner.Tuples
			}
			p = &query.PlanNode{Outer: p, Inner: inner, Tuples: tu}
		}
		return p
	}()
	return p, total
}

// measureEngineArm times one arm over the prepared dataset/schedule:
// cold wall time (first run), warm ns/op and allocs/op over a batched
// loop, and the tuple throughput derived from one metered run.
func measureEngineArm(eng engine.Engine, ds *engine.Dataset, s *sched.Schedule,
	quick bool) (rep *engine.Report, coldNs, warmNs int64, allocs, tps float64, err error) {

	coldStart := time.Now()
	rep, err = eng.Run(ds, s)
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	coldNs = time.Since(coldStart).Nanoseconds()

	// One metered run counts the tuples every operator touches, the
	// denominator of tuples/sec.
	met := obs.NewMetrics()
	metered := eng
	metered.Rec = met
	if _, err = metered.Run(ds, s); err != nil {
		return nil, 0, 0, 0, 0, err
	}
	snap := met.Snapshot()
	tuplesPerRun := int64(0)
	for _, name := range []string{"engine.tuples_scanned", "engine.tuples_built",
		"engine.tuples_probed", "engine.tuples_joined", "engine.tuples_stored"} {
		tuplesPerRun += snap.Counters[name]
	}

	// Warm loop: batches until the measurement window fills, so fast
	// arms still accumulate a stable sample.
	window := 300 * time.Millisecond
	maxReps := 200
	if quick {
		window = 60 * time.Millisecond
		maxReps = 30
	}
	var ms0, ms1 runtime.MemStats
	reps := 0
	runtime.ReadMemStats(&ms0)
	warmStart := time.Now()
	for {
		if _, err = eng.Run(ds, s); err != nil {
			return nil, 0, 0, 0, 0, err
		}
		reps++
		if (reps >= 3 && time.Since(warmStart) >= window) || reps >= maxReps {
			break
		}
	}
	elapsed := time.Since(warmStart)
	runtime.ReadMemStats(&ms1)

	warmNs = elapsed.Nanoseconds() / int64(reps)
	allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)
	tps = float64(tuplesPerRun) * float64(reps) / elapsed.Seconds()
	return rep, coldNs, warmNs, allocs, tps, nil
}

// runEngineBench executes the full case matrix and writes the report.
func runEngineBench(path string, quick bool, seed int64) error {
	if seed == 0 {
		seed = 1996
	}
	joinCounts := []int{3, 5, 8}
	scales := []int{1, 4}
	if quick {
		scales = []int{1}
	}

	rpt := engineBenchReport{
		Quick:      quick,
		Seed:       seed,
		Sites:      engineBenchSites,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	rpt.Joins8MinSpeedup = -1
	rpt.Joins8MinAllocRatio = -1
	rpt.AllIdentical = true

	for _, joins := range joinCounts {
		for _, scale := range scales {
			p, total := engineBenchPlan(joins, scale)
			tt, err := plan.NewTaskTree(plan.MustExpand(p))
			if err != nil {
				return err
			}
			s, err := sched.TreeScheduler{
				Model:   costmodel.Default(),
				Overlap: resource.MustOverlap(0.5),
				P:       engineBenchSites,
				F:       0.7,
			}.Schedule(tt)
			if err != nil {
				return err
			}
			for _, skew := range []float64{0, 1.2} {
				ds, err := engine.GenerateOpts(p, engine.GenOptions{Seed: seed, SkewS: skew})
				if err != nil {
					return err
				}
				for _, parallel := range []bool{false, true} {
					base := engine.Engine{
						Model:    costmodel.Default(),
						Overlap:  resource.MustOverlap(0.5),
						Parallel: parallel,
					}
					ref := base
					ref.Reference = true

					repRef, refCold, refWarm, refAllocs, refTPS, err := measureEngineArm(ref, ds, s, quick)
					if err != nil {
						return fmt.Errorf("reference arm joins=%d: %w", joins, err)
					}
					repFlat, flatCold, flatWarm, flatAllocs, flatTPS, err := measureEngineArm(base, ds, s, quick)
					if err != nil {
						return fmt.Errorf("flat arm joins=%d: %w", joins, err)
					}

					identical := reflect.DeepEqual(repRef, repFlat)
					if identical {
						bRef, err1 := json.Marshal(repRef)
						bFlat, err2 := json.Marshal(repFlat)
						identical = err1 == nil && err2 == nil && string(bRef) == string(bFlat)
					}

					c := engineBenchCase{
						Joins: joins, Scale: scale, Tuples: total,
						Parallel: parallel, Skew: skew,
						RefColdNs: refCold, FlatColdNs: flatCold,
						RefWarmNs: refWarm, FlatWarmNs: flatWarm,
						RefAllocs: refAllocs, FlatAllocs: flatAllocs,
						RefTPS: refTPS, FlatTPS: flatTPS,
						Identical: identical,
					}
					if refTPS > 0 {
						c.Speedup = flatTPS / refTPS
					}
					if flatAllocs > 0 {
						c.AllocRatio = refAllocs / flatAllocs
					}
					rpt.Cases = append(rpt.Cases, c)
					rpt.AllIdentical = rpt.AllIdentical && identical
					if joins == 8 {
						if rpt.Joins8MinSpeedup < 0 || c.Speedup < rpt.Joins8MinSpeedup {
							rpt.Joins8MinSpeedup = c.Speedup
						}
						if rpt.Joins8MinAllocRatio < 0 || c.AllocRatio < rpt.Joins8MinAllocRatio {
							rpt.Joins8MinAllocRatio = c.AllocRatio
						}
					}
					fmt.Fprintf(os.Stderr,
						"engine-bench joins=%d scale=%d par=%-5v skew=%g: %7.2fx tps, %6.1fx allocs, identical=%v\n",
						joins, scale, parallel, skew, c.Speedup, c.AllocRatio, identical)
				}
			}
		}
	}

	rpt.SpeedupOK = rpt.Joins8MinSpeedup >= 3
	rpt.AllocsOK = rpt.Joins8MinAllocRatio >= 5
	rpt.TotalSeconds = time.Since(start).Seconds()

	data, err := json.MarshalIndent(&rpt, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"engine-bench: joins=8 min speedup %.2fx (ok=%v), min alloc ratio %.1fx (ok=%v), all identical=%v -> %s\n",
		rpt.Joins8MinSpeedup, rpt.SpeedupOK, rpt.Joins8MinAllocRatio, rpt.AllocsOK, rpt.AllIdentical, path)
	if !rpt.AllIdentical {
		return fmt.Errorf("flat and reference engines produced diverging reports")
	}
	return nil
}
