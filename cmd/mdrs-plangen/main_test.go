package main

import (
	"testing"

	"mdrs"
)

func TestGenerateValidPlans(t *testing.T) {
	for _, shape := range []string{"bushy", "left", "right", "balanced"} {
		data, err := generate(6, 3, 1000, 50000, shape)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		p, err := mdrs.DecodePlan(data)
		if err != nil {
			t.Fatalf("%s: emitted invalid JSON: %v", shape, err)
		}
		if p.Joins() != 6 {
			t.Fatalf("%s: joins = %d", shape, p.Joins())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := generate(5, 9, 1000, 10000, "bushy")
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(5, 9, 1000, 10000, "bushy")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same seed produced different plans")
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := generate(5, 1, 1000, 10000, "spiral"); err == nil {
		t.Error("unknown shape accepted")
	}
	if _, err := generate(-1, 1, 1000, 10000, "bushy"); err == nil {
		t.Error("negative joins accepted")
	}
	if _, err := generate(5, 1, 10, 5, "bushy"); err == nil {
		t.Error("inverted cardinality range accepted")
	}
}
