// Command mdrs-plangen emits random bushy hash-join execution plans as
// JSON, using the paper's workload settings (relations of 10³–10⁵
// tuples, simple key joins).
//
// Usage:
//
//	mdrs-plangen [-joins N] [-seed S] [-min T] [-max T] [-shape bushy|left|right|balanced]
//	             [-debug-addr ADDR]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mdrs"
)

func main() {
	joins := flag.Int("joins", 10, "number of joins")
	seed := flag.Int64("seed", 1, "random seed")
	minT := flag.Int("min", 1_000, "minimum relation cardinality (tuples)")
	maxT := flag.Int("max", 100_000, "maximum relation cardinality (tuples)")
	shape := flag.String("shape", "bushy", "plan shape: bushy, left, right, balanced")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := mdrs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-plangen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mdrs-plangen: debug server on http://%s/debug/pprof/\n", addr)
	}

	data, err := generate(*joins, *seed, *minT, *maxT, *shape)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-plangen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}

// generate builds one plan and returns its JSON encoding.
func generate(joins int, seed int64, minT, maxT int, shape string) ([]byte, error) {
	var sh mdrs.Shape
	switch shape {
	case "bushy":
		sh = mdrs.RandomBushy
	case "left":
		sh = mdrs.LeftDeep
	case "right":
		sh = mdrs.RightDeep
	case "balanced":
		sh = mdrs.Balanced
	default:
		return nil, fmt.Errorf("unknown shape %q", shape)
	}
	cfg := mdrs.GenConfig{Joins: joins, MinTuples: minT, MaxTuples: maxT}
	p, err := mdrs.RandomShapedPlan(rand.New(rand.NewSource(seed)), cfg, sh)
	if err != nil {
		return nil, err
	}
	return p.Encode()
}
