// Command mdrs-sched schedules a JSON-encoded bushy hash-join plan
// (e.g. produced by mdrs-plangen) on a simulated shared-nothing system
// and prints the resulting parallel schedule: phases, per-operator
// degrees and site assignments, response time, and comparisons against
// the SYNCHRONOUS baseline and the OPTBOUND lower bound.
//
// Usage:
//
//	mdrs-plangen -joins 8 | mdrs-sched -sites 32 -eps 0.5 -f 0.7
//	mdrs-sched -plan plan.json -sites 32 [-v] [-json] [-chart]
//	mdrs-sched -plan plan.json -trace trace.jsonl     # decision trace as JSONL
//	mdrs-sched -plan plan.json -trace-text            # decision trace, pretty
//	mdrs-sched -sites 32 q1.json q2.json q3.json      # multi-query batch
//	mdrs-sched -plan plan.json -optimize              # bound-pruned plan search
//
// -optimize discards the input plan's join order and re-optimizes its
// relation catalog with the bound-pruned scheduler-in-the-loop search
// (see -opt-candidates, -opt-seed, -opt-no-prune, -opt-exhaustive-joins);
// -json, -v, and -chart then describe the winning candidate's schedule.
// -opt-stream switches to the streaming bound-interleaved variant:
// candidates are bounded and pruned as they are enumerated, with
// O(frontier) peak memory and the provably identical winner, reaching
// systematic enumeration up to 9 joins.
//
// Batch mode honors the same output flags as single-query mode: -json
// emits the combined batch schedule, -v lists its placements, -trace
// and -trace-text record the batch scheduling decisions.
//
// -debug-addr serves net/http/pprof and expvar for profiling long runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"mdrs"
)

// options carries the full mdrs-sched flag surface.
type options struct {
	planPath  string
	sites     int
	eps, f    float64
	verbose   bool
	asJSON    bool
	chart     bool
	tracePath string // decision trace JSONL destination ("" = off)
	traceText bool   // pretty-print the decision trace after the summary
	workers   int    // scheduler pool width (0 = GOMAXPROCS)

	// The -optimize mode: re-optimize the input plan's relations with
	// the bound-pruned scheduler-in-the-loop search instead of
	// scheduling the plan as given.
	optimize      bool
	optCandidates int   // sample size K for large joins
	optSeed       int64 // candidate-sampling seed
	optNoPrune    bool  // schedule every candidate (ablation arm)
	optExJoins    int   // systematic-enumeration threshold (0 = default)
	optStream     bool  // streaming bound-interleaved search
}

func main() {
	var o options
	flag.StringVar(&o.planPath, "plan", "-", "plan JSON file, or - for stdin")
	flag.IntVar(&o.sites, "sites", 32, "number of system sites P")
	flag.Float64Var(&o.eps, "eps", 0.5, "resource overlap parameter ε in [0,1]")
	flag.Float64Var(&o.f, "f", 0.7, "coarse-granularity parameter f")
	flag.BoolVar(&o.verbose, "v", false, "print every operator placement")
	flag.BoolVar(&o.asJSON, "json", false, "emit the TreeSchedule as JSON and exit")
	flag.BoolVar(&o.chart, "chart", false, "render per-site load bars and utilization")
	flag.StringVar(&o.tracePath, "trace", "", "write the scheduler's decision trace to this file as JSON lines")
	flag.BoolVar(&o.traceText, "trace-text", false, "pretty-print the scheduler's decision trace")
	flag.IntVar(&o.workers, "sched-workers", 0, "scheduler worker pool width; 0 = GOMAXPROCS, 1 = fully serial (output is identical for every value)")
	flag.BoolVar(&o.optimize, "optimize", false, "re-optimize the plan's relations with the bound-pruned plan search instead of scheduling the plan as given")
	flag.IntVar(&o.optCandidates, "opt-candidates", 8, "plan-search sample size K for join counts above the enumeration threshold")
	flag.Int64Var(&o.optSeed, "opt-seed", 1, "plan-search candidate-sampling seed")
	flag.BoolVar(&o.optNoPrune, "opt-no-prune", false, "disable bound pruning: fully schedule every candidate (identical winner, more work)")
	flag.IntVar(&o.optExJoins, "opt-exhaustive-joins", 0, "largest join count enumerated systematically instead of sampled (0 = search default)")
	flag.BoolVar(&o.optStream, "opt-stream", false, "use the streaming bound-interleaved search: prune during enumeration with O(frontier) memory (identical winner)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := mdrs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-sched: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mdrs-sched: debug server on http://%s/debug/pprof/\n", addr)
	}

	if flag.NArg() > 0 {
		if o.optimize {
			fmt.Fprintln(os.Stderr, "mdrs-sched: -optimize takes a single plan (no positional arguments)")
			os.Exit(1)
		}
		// Batch mode: every positional argument is a plan file; all
		// queries are scheduled together with inter-query sharing.
		if err := runBatch(os.Stdout, flag.Args(), o); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-sched: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if o.optimize {
		if err := runOptimize(os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "mdrs-sched: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "mdrs-sched: %v\n", err)
		os.Exit(1)
	}
}

// recorders assembles the recorder stack the flags ask for: a JSONL
// tracer, an in-memory capture for -trace-text, or nothing (the free
// default). The returned close function flushes and closes the trace
// file; callers must run it on every path, including failed ones, so
// the trace is never left truncated in the writer's buffer.
func (o options) recorders() (mdrs.Recorder, *mdrs.TraceCapture, func() error, error) {
	var recs []mdrs.Recorder
	var tracer *mdrs.Tracer
	var tf *os.File
	if o.tracePath != "" {
		var err error
		tf, err = os.Create(o.tracePath)
		if err != nil {
			return nil, nil, nil, err
		}
		tracer = mdrs.NewTracer(tf)
		recs = append(recs, tracer)
	}
	var capture *mdrs.TraceCapture
	if o.traceText {
		capture = mdrs.NewTraceCapture()
		recs = append(recs, capture)
	}
	closeSinks := func() error {
		if tf == nil {
			return nil
		}
		err := tracer.Flush()
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", o.tracePath, err)
		}
		return nil
	}
	return mdrs.MultiRecorder(recs...), capture, closeSinks, nil
}

// runBatch schedules several plans as one workload and compares the
// batch makespan against back-to-back execution. The recorder flags
// observe the batch call only: the per-query baselines reuse
// (phase, operator, clone) keys across queries and would collide in a
// replayed trace.
func runBatch(w io.Writer, paths []string, o options) (err error) {
	ov, err := mdrs.NewOverlap(o.eps)
	if err != nil {
		return err
	}
	ts := mdrs.TreeScheduler{Model: mdrs.DefaultCostModel(), Overlap: ov, P: o.sites, F: o.f, Workers: o.workers}

	rec, capture, closeSinks, err := o.recorders()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeSinks(); err == nil {
			err = cerr
		}
	}()

	var trees []*mdrs.TaskTree
	serial := 0.0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		p, err := mdrs.DecodePlan(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		_, tt, err := mdrs.PrepareQuery(p)
		if err != nil {
			return err
		}
		s, err := ts.Schedule(tt)
		if err != nil {
			return err
		}
		if !o.asJSON {
			fmt.Fprintf(w, "%-30s %2d joins  alone: %9.3f s\n", path, p.Joins(), s.Response)
		}
		serial += s.Response
		trees = append(trees, tt)
	}
	bts := ts
	bts.Rec = rec
	batch, err := bts.ScheduleBatch(trees)
	if err != nil {
		return err
	}
	if o.asJSON {
		data, err := mdrs.EncodeScheduleJSON(batch)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return nil
	}
	fmt.Fprintf(w, "\nback-to-back: %9.3f s\n", serial)
	fmt.Fprintf(w, "batched:      %9.3f s  (%.2fx faster via inter-query sharing)\n",
		batch.Response, serial/batch.Response)
	if o.chart {
		fmt.Fprintln(w)
		if err := mdrs.WriteScheduleText(w, batch); err != nil {
			return err
		}
	}
	if o.verbose {
		writePlacements(w, batch)
	}
	if capture != nil {
		fmt.Fprintf(w, "\ndecision trace (%d events):\n", len(capture.Events()))
		if err := mdrs.WriteTraceText(w, capture.Events()); err != nil {
			return err
		}
	}
	return nil
}

// writePlacements lists every operator placement, phase by phase.
func writePlacements(w io.Writer, s *mdrs.Schedule) {
	for _, ph := range s.Phases {
		fmt.Fprintf(w, "\nphase %d (%d tasks): response %.3f s\n",
			ph.Index, len(ph.Tasks), ph.Response)
		for _, pl := range ph.Placements {
			tag := "float "
			if pl.Rooted {
				tag = "rooted"
			}
			fmt.Fprintf(w, "  %-14s %s N=%-3d T^par=%8.3f s  sites=%v\n",
				pl.Op.Name, tag, pl.Degree, pl.TPar, pl.Sites)
		}
	}
}

// readPlan loads the -plan input (a file or stdin).
func readPlan(o options) (*mdrs.PlanNode, error) {
	var data []byte
	var err error
	if o.planPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(o.planPath)
	}
	if err != nil {
		return nil, err
	}
	return mdrs.DecodePlan(data)
}

// runOptimize treats the input plan as a relation catalog and runs the
// bound-pruned scheduler-in-the-loop search over it: candidate join
// plans are enumerated (small joins) or sampled (large joins), each gets
// a cheap OPTBOUND lower bound, and only candidates whose bound beats
// the running incumbent are fully scheduled. The winner is provably the
// same plan the unpruned search would pick.
func runOptimize(w io.Writer, o options) error {
	p, err := readPlan(o)
	if err != nil {
		return err
	}
	search, err := mdrs.NewPlanSearch(mdrs.Options{
		Sites: o.sites, Epsilon: o.eps, F: o.f, SchedWorkers: o.workers,
	}, o.optCandidates)
	if err != nil {
		return err
	}
	search.NoPrune = o.optNoPrune
	search.ExhaustiveJoins = o.optExJoins
	search.Streaming = o.optStream
	if err := search.Validate(); err != nil {
		return err
	}
	res, err := search.Best(rand.New(rand.NewSource(o.optSeed)), p.Leaves())
	if err != nil {
		return err
	}

	if o.asJSON {
		data, err := mdrs.EncodeScheduleJSON(res.Best.Schedule)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return nil
	}

	mode := "sampled"
	if res.Systematic {
		mode = "enumerated systematically"
	}
	if res.Streaming {
		mode += ", streamed"
	}
	fmt.Fprintf(w, "catalog: %d relations (from the %d-join input plan)\n",
		len(p.Leaves()), p.Joins())
	fmt.Fprintf(w, "system: P=%d 3-dimensional sites (CPU, disk, net), ε=%.2f, f=%.2f\n",
		o.sites, o.eps, o.f)
	fmt.Fprintf(w, "\ncandidates: %d (%s); bound-pruned %d, fully scheduled %d\n",
		res.Enumerated, mode, res.Pruned, res.Scheduled)
	fmt.Fprintf(w, "first plan (two-phase) response: %10.3f s\n",
		res.Candidates[0].Schedule.Response)
	fmt.Fprintf(w, "best plan (candidate %d) response: %9.3f s  (%.2fx better, bound %.3f s)\n",
		res.Best.Index, res.Best.Schedule.Response, res.Improvement(), res.Best.Bound)
	fmt.Fprintf(w, "best schedule: %d phases\n", len(res.Best.Schedule.Phases))

	if o.chart {
		fmt.Fprintln(w)
		if err := mdrs.WriteScheduleText(w, res.Best.Schedule); err != nil {
			return err
		}
	}
	if o.verbose {
		writePlacements(w, res.Best.Schedule)
	}
	return nil
}

func run(w io.Writer, o options) (err error) {
	p, err := readPlan(o)
	if err != nil {
		return err
	}

	rec, capture, closeSinks, err := o.recorders()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeSinks(); err == nil {
			err = cerr
		}
	}()

	opts := mdrs.Options{Sites: o.sites, Epsilon: o.eps, F: o.f, Rec: rec, SchedWorkers: o.workers}
	tree, err := mdrs.ScheduleQuery(p, opts)
	if err != nil {
		return err
	}
	if o.asJSON {
		data, err := mdrs.EncodeScheduleJSON(tree)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return nil
	}
	sync, err := mdrs.ScheduleQuerySynchronous(p, opts)
	if err != nil {
		return err
	}
	bound, err := mdrs.OptBound(p, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "plan: %d joins, result %d tuples\n", p.Joins(), p.Tuples)
	fmt.Fprintf(w, "system: P=%d 3-dimensional sites (CPU, disk, net), ε=%.2f, f=%.2f\n",
		o.sites, o.eps, o.f)
	fmt.Fprintf(w, "\nTreeSchedule response: %10.3f s  (%d phases)\n",
		tree.Response, len(tree.Phases))
	fmt.Fprintf(w, "Synchronous  response: %10.3f s  (%.2fx slower)\n",
		sync.Response, sync.Response/tree.Response)
	fmt.Fprintf(w, "OPTBOUND lower bound:  %10.3f s  (TreeSchedule within %.2fx)\n",
		bound, tree.Response/bound)

	if o.chart {
		fmt.Fprintln(w)
		if err := mdrs.WriteScheduleText(w, tree); err != nil {
			return err
		}
	}

	if o.verbose {
		writePlacements(w, tree)
	}

	if capture != nil {
		fmt.Fprintf(w, "\ndecision trace (%d events):\n", len(capture.Events()))
		if err := mdrs.WriteTraceText(w, capture.Events()); err != nil {
			return err
		}
	}
	return nil
}
