package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdrs"
)

func writePlan(t *testing.T, joins int) string {
	t.Helper()
	p := mdrs.MustRandomPlan(rand.New(rand.NewSource(4)), mdrs.DefaultGenConfig(joins))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryOutput(t *testing.T) {
	path := writePlan(t, 5)
	var sb strings.Builder
	if err := run(&sb, options{planPath: path, sites: 8, eps: 0.5, f: 0.7}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"plan: 5 joins", "TreeSchedule response:",
		"Synchronous  response:", "OPTBOUND lower bound:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerboseListsPlacements(t *testing.T) {
	path := writePlan(t, 4)
	var sb strings.Builder
	if err := run(&sb, options{planPath: path, sites: 6, eps: 0.5, f: 0.7, verbose: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "phase 0") || !strings.Contains(out, "scan(") {
		t.Fatalf("verbose output missing placements:\n%s", out)
	}
	if !strings.Contains(out, "rooted") {
		t.Fatalf("verbose output missing rooted probes:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writePlan(t, 3)
	var sb strings.Builder
	if err := run(&sb, options{planPath: path, sites: 4, eps: 0.5, f: 0.7, asJSON: true}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Response float64 `json:"response_seconds"`
		Sites    int     `json:"sites"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Sites != 4 || decoded.Response <= 0 {
		t.Fatalf("decoded: %+v", decoded)
	}
}

func TestRunChartOutput(t *testing.T) {
	path := writePlan(t, 3)
	var sb strings.Builder
	if err := run(&sb, options{planPath: path, sites: 4, eps: 0.5, f: 0.7, chart: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "utilization:") || !strings.Contains(sb.String(), "site") {
		t.Fatalf("chart output missing bars:\n%s", sb.String())
	}
}

func batchOptions(sites int) options {
	return options{sites: sites, eps: 0.5, f: 0.7}
}

func TestRunBatch(t *testing.T) {
	p1 := writePlan(t, 4)
	p2 := writePlan(t, 6)
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1, p2}, batchOptions(12)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"back-to-back:", "batched:", "4 joins", "6 joins"} {
		if !strings.Contains(out, want) {
			t.Fatalf("batch output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	var sb strings.Builder
	if err := runBatch(&sb, []string{"/nonexistent.json"}, batchOptions(8)); err == nil {
		t.Error("missing batch file accepted")
	}
	p := writePlan(t, 3)
	bad := batchOptions(8)
	bad.eps = -1
	if err := runBatch(&sb, []string{p}, bad); err == nil {
		t.Error("invalid ε accepted")
	}
}

func TestRunBatchJSONOutput(t *testing.T) {
	p1 := writePlan(t, 4)
	p2 := writePlan(t, 5)
	o := batchOptions(10)
	o.asJSON = true
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1, p2}, o); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Response float64 `json:"response_seconds"`
		Sites    int     `json:"sites"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("-json batch output is not pure JSON: %v\n%s", err, sb.String())
	}
	if decoded.Sites != 10 || decoded.Response <= 0 {
		t.Fatalf("decoded: %+v", decoded)
	}
}

func TestRunBatchVerboseListsPlacements(t *testing.T) {
	p1 := writePlan(t, 4)
	o := batchOptions(8)
	o.verbose = true
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1, p1}, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "phase 0") || !strings.Contains(out, "scan(") {
		t.Fatalf("verbose batch output missing placements:\n%s", out)
	}
}

func TestRunBatchTraceWritesReplayableJSONL(t *testing.T) {
	p1 := writePlan(t, 4)
	p2 := writePlan(t, 6)
	o := batchOptions(12)
	o.tracePath = filepath.Join(t.TempDir(), "batch-trace.jsonl")
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1, p2}, o); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(o.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := mdrs.ReadTrace(tf)
	if err != nil {
		t.Fatalf("batch trace is not valid JSONL: %v", err)
	}
	if len(mdrs.TraceAssignments(events)) == 0 {
		t.Fatal("batch trace has no place events")
	}
}

func TestRunBatchTraceText(t *testing.T) {
	p1 := writePlan(t, 5)
	o := batchOptions(8)
	o.traceText = true
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1}, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"decision trace (", "phase", "place"} {
		if !strings.Contains(out, want) {
			t.Fatalf("batch trace text missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchTraceFlushedOnError(t *testing.T) {
	// A failing run must still leave a complete, parseable trace file:
	// the sinks are flushed and closed on every path, not only success.
	p1 := writePlan(t, 4)
	o := batchOptions(10)
	o.tracePath = filepath.Join(t.TempDir(), "partial.jsonl")
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1, "/nonexistent.json"}, o); err == nil {
		t.Fatal("missing batch file accepted")
	}
	tf, err := os.Open(o.tracePath)
	if err != nil {
		t.Fatalf("trace file missing after failed run: %v", err)
	}
	defer tf.Close()
	if _, err := mdrs.ReadTrace(tf); err != nil {
		t.Fatalf("failed run left a truncated trace: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, options{planPath: filepath.Join(t.TempDir(), "missing.json"),
		sites: 8, eps: 0.5, f: 0.7}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, options{planPath: bad, sites: 8, eps: 0.5, f: 0.7}); err == nil {
		t.Error("malformed plan accepted")
	}
	good := writePlan(t, 3)
	if err := run(&sb, options{planPath: good, sites: 0, eps: 0.5, f: 0.7}); err == nil {
		t.Error("P = 0 accepted")
	}
	if err := run(&sb, options{planPath: good, sites: 4, eps: 2.0, f: 0.7}); err == nil {
		t.Error("ε = 2 accepted")
	}
}

func TestRunTraceWritesReplayableJSONL(t *testing.T) {
	path := writePlan(t, 5)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var sb strings.Builder
	o := options{planPath: path, sites: 8, eps: 0.5, f: 0.7,
		asJSON: true, tracePath: tracePath}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := mdrs.ReadTrace(tf)
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}
	assigned := mdrs.TraceAssignments(events)
	if len(assigned) == 0 {
		t.Fatal("trace has no place events")
	}

	// The -json output and the trace describe the same schedule: the
	// trace's placement count must equal the schedule's clone count.
	var decoded struct {
		Phases []struct {
			Placements []struct {
				Sites []int `json:"sites"`
			} `json:"placements"`
		} `json:"phases"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	clones := 0
	for _, ph := range decoded.Phases {
		for _, pl := range ph.Placements {
			clones += len(pl.Sites)
		}
	}
	if clones == 0 || len(assigned) != clones {
		t.Fatalf("trace has %d placements, schedule has %d clones", len(assigned), clones)
	}
}

func TestRunTraceTextRendersDecisions(t *testing.T) {
	path := writePlan(t, 4)
	var sb strings.Builder
	if err := run(&sb, options{planPath: path, sites: 6, eps: 0.5, f: 0.7,
		traceText: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"decision trace (", "phase", "place"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace text missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceBadPath(t *testing.T) {
	path := writePlan(t, 3)
	var sb strings.Builder
	o := options{planPath: path, sites: 4, eps: 0.5, f: 0.7,
		tracePath: filepath.Join(t.TempDir(), "no-such-dir", "t.jsonl")}
	if err := run(&sb, o); err == nil {
		t.Fatal("unwritable trace path accepted")
	}
}

func TestRunOptimizeSummaryOutput(t *testing.T) {
	path := writePlan(t, 3)
	var sb strings.Builder
	o := options{planPath: path, sites: 8, eps: 0.5, f: 0.7,
		optimize: true, optCandidates: 8, optSeed: 1}
	if err := runOptimize(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"catalog: 4 relations", "enumerated systematically",
		"bound-pruned", "first plan (two-phase) response:", "best plan (candidate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// The pruned and unpruned -optimize runs must print the identical
// winning candidate and emit byte-identical -json schedules.
func TestRunOptimizeNoPruneIdentity(t *testing.T) {
	path := writePlan(t, 4)
	jsonOut := func(noPrune bool) string {
		t.Helper()
		var sb strings.Builder
		o := options{planPath: path, sites: 12, eps: 0.5, f: 0.7, asJSON: true,
			optimize: true, optCandidates: 8, optSeed: 2, optNoPrune: noPrune}
		if err := runOptimize(&sb, o); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	pruned, unpruned := jsonOut(false), jsonOut(true)
	if pruned != unpruned {
		t.Fatal("pruned -json schedule differs from unpruned")
	}
	var s map[string]any
	if err := json.Unmarshal([]byte(pruned), &s); err != nil {
		t.Fatalf("-json output not valid JSON: %v", err)
	}
}

func TestRunOptimizeSampledPath(t *testing.T) {
	path := writePlan(t, 7)
	var sb strings.Builder
	o := options{planPath: path, sites: 8, eps: 0.5, f: 0.7,
		optimize: true, optCandidates: 6, optSeed: 3}
	if err := runOptimize(&sb, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "candidates: 6 (sampled)") {
		t.Fatalf("sampled path not taken:\n%s", sb.String())
	}
}

func TestRunOptimizeErrors(t *testing.T) {
	path := writePlan(t, 3)
	o := options{planPath: path, sites: 0, eps: 0.5, f: 0.7,
		optimize: true, optCandidates: 8, optSeed: 1}
	var sb strings.Builder
	if err := runOptimize(&sb, o); err == nil {
		t.Error("non-positive site count accepted")
	}
	o = options{planPath: path, sites: 8, eps: 0.5, f: 0.7,
		optimize: true, optCandidates: -1, optSeed: 1}
	if err := runOptimize(&sb, o); err == nil {
		t.Error("negative candidate count accepted")
	}
}
