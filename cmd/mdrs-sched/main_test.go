package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdrs"
)

func writePlan(t *testing.T, joins int) string {
	t.Helper()
	p := mdrs.MustRandomPlan(rand.New(rand.NewSource(4)), mdrs.DefaultGenConfig(joins))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryOutput(t *testing.T) {
	path := writePlan(t, 5)
	var sb strings.Builder
	if err := run(&sb, path, 8, 0.5, 0.7, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"plan: 5 joins", "TreeSchedule response:",
		"Synchronous  response:", "OPTBOUND lower bound:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerboseListsPlacements(t *testing.T) {
	path := writePlan(t, 4)
	var sb strings.Builder
	if err := run(&sb, path, 6, 0.5, 0.7, true, false, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "phase 0") || !strings.Contains(out, "scan(") {
		t.Fatalf("verbose output missing placements:\n%s", out)
	}
	if !strings.Contains(out, "rooted") {
		t.Fatalf("verbose output missing rooted probes:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writePlan(t, 3)
	var sb strings.Builder
	if err := run(&sb, path, 4, 0.5, 0.7, false, true, false); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Response float64 `json:"response_seconds"`
		Sites    int     `json:"sites"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Sites != 4 || decoded.Response <= 0 {
		t.Fatalf("decoded: %+v", decoded)
	}
}

func TestRunChartOutput(t *testing.T) {
	path := writePlan(t, 3)
	var sb strings.Builder
	if err := run(&sb, path, 4, 0.5, 0.7, false, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "utilization:") || !strings.Contains(sb.String(), "site") {
		t.Fatalf("chart output missing bars:\n%s", sb.String())
	}
}

func TestRunBatch(t *testing.T) {
	p1 := writePlan(t, 4)
	p2 := writePlan(t, 6)
	var sb strings.Builder
	if err := runBatch(&sb, []string{p1, p2}, 12, 0.5, 0.7); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"back-to-back:", "batched:", "4 joins", "6 joins"} {
		if !strings.Contains(out, want) {
			t.Fatalf("batch output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	var sb strings.Builder
	if err := runBatch(&sb, []string{"/nonexistent.json"}, 8, 0.5, 0.7); err == nil {
		t.Error("missing batch file accepted")
	}
	p := writePlan(t, 3)
	if err := runBatch(&sb, []string{p}, 8, -1, 0.7); err == nil {
		t.Error("invalid ε accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, filepath.Join(t.TempDir(), "missing.json"),
		8, 0.5, 0.7, false, false, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, bad, 8, 0.5, 0.7, false, false, false); err == nil {
		t.Error("malformed plan accepted")
	}
	good := writePlan(t, 3)
	if err := run(&sb, good, 0, 0.5, 0.7, false, false, false); err == nil {
		t.Error("P = 0 accepted")
	}
	if err := run(&sb, good, 4, 2.0, 0.7, false, false, false); err == nil {
		t.Error("ε = 2 accepted")
	}
}
