package mdrs

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"mdrs/internal/baseline"
	"mdrs/internal/contention"
	"mdrs/internal/costmodel"
	"mdrs/internal/engine"
	"mdrs/internal/experiments"
	"mdrs/internal/malleable"
	"mdrs/internal/memsched"
	"mdrs/internal/obs"
	"mdrs/internal/opt"
	"mdrs/internal/optimizer"
	"mdrs/internal/pipesim"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/serve"
	"mdrs/internal/sim"
	"mdrs/internal/vector"
)

// Re-exported types: the full public API surface of the library. Each
// alias is documented at its definition site.
type (
	// Vector is a d-dimensional work vector (internal/vector).
	Vector = vector.Vector
	// Params holds the Table 2 cost parameters (internal/costmodel).
	Params = costmodel.Params
	// CostModel derives work vectors and degrees of parallelism.
	CostModel = costmodel.Model
	// OpKind identifies a physical operator (scan/build/probe/store).
	OpKind = costmodel.OpKind
	// OpSpec describes one operator instance for costing.
	OpSpec = costmodel.OpSpec
	// OpCost is a costed operator: processing vector plus interconnect bytes.
	OpCost = costmodel.OpCost
	// CostCache memoizes a cost model's derivations by operator spec.
	CostCache = costmodel.Cache
	// PlanFingerprint digests (scheduler config, task tree); equal
	// fingerprints imply byte-identical schedules.
	PlanFingerprint = sched.Fingerprint
	// Overlap is the resource-overlap model ε of assumption EA2.
	Overlap = resource.Overlap
	// System is a set of P identical d-dimensional sites.
	System = resource.System
	// Site is one multi-resource site with its assigned clones.
	Site = resource.Site
	// Relation is a base relation of the catalog.
	Relation = query.Relation
	// PlanNode is a node of a bushy hash-join execution plan.
	PlanNode = query.PlanNode
	// GenConfig configures random plan generation.
	GenConfig = query.GenConfig
	// Operator is a node of the macro-expanded operator tree.
	Operator = plan.Operator
	// OperatorTree is the macro-expanded form of an execution plan.
	OperatorTree = plan.OperatorTree
	// Task is a query task (maximal pipelined subgraph).
	Task = plan.Task
	// TaskTree is the query task tree with its synchronized phases.
	TaskTree = plan.TaskTree
	// SchedOp is an operator instance presented to OperatorSchedule.
	SchedOp = sched.Op
	// SchedResult is the outcome of one OperatorSchedule packing.
	SchedResult = sched.Result
	// TreeScheduler runs the paper's TreeSchedule algorithm.
	TreeScheduler = sched.TreeScheduler
	// Schedule is a complete phased parallel schedule.
	Schedule = sched.Schedule
	// PhaseSchedule is the schedule of one synchronized phase.
	PhaseSchedule = sched.PhaseSchedule
	// OpPlacement records one operator's degree, sites, and clones.
	OpPlacement = sched.OpPlacement
	// MalleableScheduler is the Section 7 malleable-operator scheduler.
	MalleableScheduler = malleable.Scheduler
	// MalleableOperator is one malleable floating operator.
	MalleableOperator = malleable.Operator
	// Parallelization is a degree-of-parallelism vector.
	Parallelization = malleable.Parallelization
	// SynchronousScheduler is the one-dimensional baseline.
	SynchronousScheduler = baseline.Synchronous
	// SynchronousResult is the baseline's placement and response.
	SynchronousResult = baseline.Result
	// Dataset holds generated synthetic relations for one plan.
	Dataset = engine.Dataset
	// Engine executes scheduled plans over a Dataset.
	Engine = engine.Engine
	// EngineReport summarizes one engine execution.
	EngineReport = engine.Report
	// Tuple is one row flowing through the engine.
	Tuple = engine.Tuple
	// SiteComparison pairs analytic and fluid-simulated response times.
	SiteComparison = sim.SiteComparison
	// ExperimentConfig scales the Section 6 experiment harness.
	ExperimentConfig = experiments.Config
	// Figure is a regenerated evaluation figure.
	Figure = experiments.Figure
	// Series is one curve of a Figure.
	Series = experiments.Series
	// MemoryScheduler is the memory-aware TreeSchedule extension
	// (non-preemptable resources, the paper's first open problem).
	MemoryScheduler = memsched.Scheduler
	// MemoryResult is the memory-aware schedule with spill accounting.
	MemoryResult = memsched.Result
	// ContentionPenalty holds per-resource time-sharing penalties γ_i
	// (the paper's second open problem: imperfect preemptability).
	ContentionPenalty = contention.Penalty
	// PipeSimConfig tunes the explicit pipeline dataflow simulator.
	PipeSimConfig = pipesim.Config
	// PipeSimResult compares analytic vs pipeline-simulated response.
	PipeSimResult = pipesim.Result
	// PlanSearch is the bound-pruned scheduler-in-the-loop plan
	// selector: candidates whose OPTBOUND lower bound cannot beat the
	// running incumbent are never fully scheduled, and the outcome is
	// provably identical to scheduling every candidate.
	PlanSearch = optimizer.Search
	// PlanSearchResult holds the winning plan, every candidate, and the
	// pruned/scheduled ledger.
	PlanSearchResult = optimizer.Result
	// PlanCandidate is one candidate of a PlanSearchResult: its plan,
	// lower bound, and (unless pruned) full schedule.
	PlanCandidate = optimizer.Candidate
	// Shape selects an execution-plan tree shape for generation.
	Shape = query.Shape
	// PhasePolicy selects how tasks pack into synchronized phases.
	PhasePolicy = plan.PhasePolicy
	// ScheduleStatsSummary summarizes a schedule's resource economics.
	ScheduleStatsSummary = sched.Stats
	// Recorder receives counters, timing samples, and decision-trace
	// events from the schedulers and the engine. A nil Recorder is the
	// fully-disabled (and essentially free) default.
	Recorder = obs.Recorder
	// TraceEvent is one structured decision-trace record.
	TraceEvent = obs.Event
	// Tracer is a Recorder streaming events as JSON lines.
	Tracer = obs.Tracer
	// Metrics is a Recorder aggregating counters and histograms.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a Metrics recorder.
	MetricsSnapshot = obs.Snapshot
	// TraceCapture is a Recorder buffering events in memory.
	TraceCapture = obs.Capture
	// PlaceKey identifies one clone placement in a replayed trace.
	PlaceKey = obs.PlaceKey
	// SchedulingService is the concurrent multi-query scheduling service:
	// admission control, window batching, and deadline-aware degradation
	// over ScheduleBatch.
	SchedulingService = serve.Service
	// ServeConfig configures a SchedulingService.
	ServeConfig = serve.Config
	// ServeControllerConfig configures the adaptive inter/intra-query
	// parallelism controller of a SchedulingService (ServeConfig.Controller).
	ServeControllerConfig = serve.ControllerConfig
	// ServeTuning is a point-in-time copy of a SchedulingService's live
	// knob values (SchedulingService.Tuning).
	ServeTuning = serve.Tuning
	// ServeResult is one request's outcome from a SchedulingService.
	ServeResult = serve.Result
	// ServeOptimizerConfig enables SchedulingService.Optimize, the
	// serve-layer streaming plan search warm-started from the schedule
	// cache (ServeConfig.Optimizer).
	ServeOptimizerConfig = serve.OptimizerConfig
)

// Typed scheduling-service errors, for errors.Is dispatch.
var (
	// ErrOverloaded reports a request shed by admission control.
	ErrOverloaded = serve.ErrOverloaded
	// ErrServiceClosed reports a request submitted to a closed service.
	ErrServiceClosed = serve.ErrClosed
	// ErrPlanSearchNilRand reports a PlanSearch run with a nil random
	// source.
	ErrPlanSearchNilRand = optimizer.ErrNilRand
	// ErrPlanSearchTooFewRelations reports a PlanSearch over fewer than
	// two relations.
	ErrPlanSearchTooFewRelations = optimizer.ErrTooFewRelations
	// ErrPlanSearchEnumerate reports that a PlanSearch failed while
	// enumerating or sampling candidate plans (wraps the cause).
	ErrPlanSearchEnumerate = optimizer.ErrEnumerate
	// ErrServeNoOptimizer reports an Optimize call on a
	// SchedulingService configured without ServeConfig.Optimizer.
	ErrServeNoOptimizer = serve.ErrNoOptimizer
)

// Plan shapes.
const (
	RandomBushy = query.RandomBushy
	LeftDeep    = query.LeftDeep
	RightDeep   = query.RightDeep
	Balanced    = query.Balanced
)

// Phase policies.
const (
	MinShelf      = plan.MinShelf
	EarliestShelf = plan.EarliestShelf
)

// Resource dimensions of the experimental 3-dimensional sites.
const (
	CPU  = resource.CPU
	Disk = resource.Disk
	Net  = resource.Net
	// Dims is the site dimensionality used throughout the experiments.
	Dims = resource.Dims
)

// Operator kinds.
const (
	Scan  = costmodel.Scan
	Build = costmodel.Build
	Probe = costmodel.Probe
	Store = costmodel.Store
)

// DefaultParams returns the paper's Table 2 parameter settings.
func DefaultParams() Params { return costmodel.DefaultParams() }

// DefaultCostModel returns a cost model over DefaultParams.
func DefaultCostModel() CostModel { return costmodel.Default() }

// NewCostModel validates params and returns a cost model.
func NewCostModel(p Params) (CostModel, error) { return costmodel.New(p) }

// NewCostCache wraps a cost model in a memoizing cache, pluggable into
// TreeScheduler.Cache. Every cached answer is bit-identical to the
// uncached model's; safe for concurrent use.
func NewCostCache(m CostModel) *CostCache { return costmodel.NewCache(m) }

// NewOverlap validates ε ∈ [0,1] and returns the overlap model.
func NewOverlap(eps float64) (Overlap, error) { return resource.NewOverlap(eps) }

// DefaultGenConfig returns the paper's workload settings (relations of
// 10³–10⁵ tuples) for the given number of joins.
func DefaultGenConfig(joins int) GenConfig { return query.DefaultGenConfig(joins) }

// RandomPlan draws a random bushy hash-join plan.
func RandomPlan(r *rand.Rand, cfg GenConfig) (*PlanNode, error) { return query.Random(r, cfg) }

// MustRandomPlan is RandomPlan that panics on a bad configuration.
func MustRandomPlan(r *rand.Rand, cfg GenConfig) *PlanNode { return query.MustRandom(r, cfg) }

// DecodePlan parses and validates a JSON-encoded plan.
func DecodePlan(data []byte) (*PlanNode, error) { return query.Decode(data) }

// Expand macro-expands an execution plan into its operator tree.
func Expand(p *PlanNode) (*OperatorTree, error) { return plan.Expand(p) }

// ExpandMaterialized is Expand with a Store operator at the root: the
// result is written to disk instead of streamed to the client.
func ExpandMaterialized(p *PlanNode) (*OperatorTree, error) { return plan.ExpandMaterialized(p) }

// NewTaskTree groups an operator tree into query tasks and phases.
func NewTaskTree(ot *OperatorTree) (*TaskTree, error) { return plan.NewTaskTree(ot) }

// PrepareQuery expands a plan and builds its task tree in one step.
func PrepareQuery(p *PlanNode) (*OperatorTree, *TaskTree, error) {
	ot, err := plan.Expand(p)
	if err != nil {
		return nil, nil, err
	}
	tt, err := plan.NewTaskTree(ot)
	if err != nil {
		return nil, nil, err
	}
	return ot, tt, nil
}

// Options configures the end-to-end convenience schedulers.
type Options struct {
	// Params defaults to the paper's Table 2 when zero.
	Params Params
	// Sites is the number of system sites P.
	Sites int
	// Epsilon is the resource overlap ε ∈ [0,1].
	Epsilon float64
	// F is the coarse-granularity parameter (TreeSchedule only).
	F float64
	// MaxDegree, when positive, caps every floating operator's degree of
	// partitioned parallelism at min{N_max, N_opt, P, MaxDegree}
	// (TreeSchedule only). Zero means uncapped. Unlike SchedWorkers the
	// cap changes the schedule itself, so it participates in
	// PlanFingerprint — schedules cached under different caps never
	// alias. The serve layer's adaptive controller tunes this knob live.
	MaxDegree int
	// Rec, when non-nil, receives the scheduler's decision trace and
	// counters. It is strictly observational: the schedule is identical
	// with or without it.
	Rec Recorder
	// SchedWorkers bounds the scheduler's intra-call parallelism (the
	// concurrent cost-preparation pass and, for large systems, the
	// sharded placement argmin). Zero or negative means
	// runtime.GOMAXPROCS(0); 1 forces the fully serial path. The
	// schedule is byte-identical for every value — the knob only trades
	// wall-clock time against goroutines.
	SchedWorkers int
}

func (o Options) normalize() (CostModel, Overlap, error) {
	p := o.Params
	if p == (Params{}) {
		p = DefaultParams()
	}
	m, err := costmodel.New(p)
	if err != nil {
		return CostModel{}, Overlap{}, err
	}
	ov, err := resource.NewOverlap(o.Epsilon)
	if err != nil {
		return CostModel{}, Overlap{}, err
	}
	if o.Sites <= 0 {
		return CostModel{}, Overlap{}, fmt.Errorf("mdrs: non-positive site count %d", o.Sites)
	}
	return m, ov, nil
}

// ScheduleQuery runs TreeSchedule on a plan end to end.
func ScheduleQuery(p *PlanNode, o Options) (*Schedule, error) {
	return ScheduleQueryCtx(context.Background(), p, o)
}

// ScheduleQueryCtx is ScheduleQuery with a cancellation context: the
// scheduler returns ctx.Err() promptly once ctx is cancelled or past
// its deadline. The context never influences a scheduling decision.
func ScheduleQueryCtx(ctx context.Context, p *PlanNode, o Options) (*Schedule, error) {
	m, ov, err := o.normalize()
	if err != nil {
		return nil, err
	}
	_, tt, err := PrepareQuery(p)
	if err != nil {
		return nil, err
	}
	ts := sched.TreeScheduler{
		Model: m, Overlap: ov, P: o.Sites, F: o.F,
		MaxDegree: o.MaxDegree, Rec: o.Rec, Workers: o.SchedWorkers,
	}
	return ts.ScheduleCtx(ctx, tt)
}

// NewSchedulingService starts a concurrent scheduling service over the
// given configuration. Callers must Close it to release the service.
func NewSchedulingService(cfg ServeConfig) (*SchedulingService, error) { return serve.New(cfg) }

// ScheduleQuerySynchronous runs the one-dimensional baseline on a plan
// end to end.
func ScheduleQuerySynchronous(p *PlanNode, o Options) (*SynchronousResult, error) {
	m, ov, err := o.normalize()
	if err != nil {
		return nil, err
	}
	_, tt, err := PrepareQuery(p)
	if err != nil {
		return nil, err
	}
	return baseline.Synchronous{Model: m, Overlap: ov, P: o.Sites}.Schedule(tt)
}

// OptBound computes the Section 6.2 lower bound on the optimal CG_f
// response time of a plan.
func OptBound(p *PlanNode, o Options) (float64, error) {
	m, ov, err := o.normalize()
	if err != nil {
		return 0, err
	}
	_, tt, err := PrepareQuery(p)
	if err != nil {
		return 0, err
	}
	return opt.Bound(tt, m, ov, o.Sites, o.F)
}

// NewPlanSearch builds a bound-pruned PlanSearch from Options, sharing
// one cost-model memo across every candidate's bound and schedule.
// candidates is the sample size K for large joins; small joins (up to
// the search's ExhaustiveJoins threshold, default 3) enumerate every
// bushy plan systematically instead. The zero-value knobs of the
// returned Search (ExhaustiveJoins, NoPrune) keep their documented
// defaults and can be overridden before calling Best.
func NewPlanSearch(o Options, candidates int) (PlanSearch, error) {
	m, ov, err := o.normalize()
	if err != nil {
		return PlanSearch{}, err
	}
	s := PlanSearch{
		Model:      m,
		Overlap:    ov,
		P:          o.Sites,
		F:          o.F,
		Candidates: candidates,
		MaxDegree:  o.MaxDegree,
		Cache:      NewCostCache(m),
		Rec:        o.Rec,
		Workers:    o.SchedWorkers,
	}
	if err := s.Validate(); err != nil {
		return PlanSearch{}, err
	}
	return s, nil
}

// RandomRelations draws a catalog of n base relations with cardinalities
// in [minTuples, maxTuples], the workload generator behind PlanSearch
// experiments.
func RandomRelations(r *rand.Rand, n, minTuples, maxTuples int) ([]*Relation, error) {
	return optimizer.RandomRelations(r, n, minTuples, maxTuples)
}

// EnumerateBushyPlans returns every distinct bushy join plan over the
// relations (at most query.MaxEnumerateRelations of them), in the
// deterministic order PlanSearch uses for systematic enumeration.
func EnumerateBushyPlans(rels []*Relation) ([]*PlanNode, error) {
	return query.EnumerateBushy(rels)
}

// EnumerateBushyPlansFunc streams every distinct bushy join plan over
// the relations (at most query.MaxStreamRelations of them) to yield in
// the same deterministic order as EnumerateBushyPlans, without ever
// materializing the full plan set. Each plan arrives with its ordinal
// in the unpruned enumeration. A non-nil prune callback may discard
// subtrees: any plan containing a pruned subtree is skipped, but
// surviving plans keep their unpruned ordinals. Peak memory is
// O(frontier), so join counts beyond the materialized ceiling (9 and
// 10 relations) are reachable here.
func EnumerateBushyPlansFunc(rels []*Relation, prune func(*PlanNode) bool, yield func(*PlanNode, int64) error) error {
	return query.EnumerateBushyFunc(rels, prune, yield)
}

// CountBushyPlans returns T(n), the number of distinct bushy join
// plans over n relations (0 outside the supported range 1..10).
func CountBushyPlans(n int) int64 { return query.CountBushy(n) }

// FirstBushyPlan returns the first plan of the bushy enumeration order
// (a left-deep chain) without enumerating — the streaming search's
// strawman incumbent.
func FirstBushyPlan(rels []*Relation) (*PlanNode, error) { return query.FirstBushy(rels) }

// OperatorSchedule exposes the paper's Figure 3 list-scheduling rule for
// a set of independent operators with predetermined clone vectors.
func OperatorSchedule(p, d int, ov Overlap, ops []*SchedOp) (*SchedResult, error) {
	return sched.OperatorSchedule(p, d, ov, ops)
}

// ScheduleLowerBound returns LB(N) = max{l(S)/P, h(N)} for the given
// operators; OperatorSchedule is provably within 2d+1 of it.
func ScheduleLowerBound(p int, ov Overlap, ops []*SchedOp) float64 {
	return sched.LowerBound(p, ov, ops)
}

// GenerateData creates synthetic FK-disciplined relations for a plan so
// that every join's result size matches the optimizer's max rule.
func GenerateData(p *PlanNode, seed int64) (*Dataset, error) { return engine.Generate(p, seed) }

// SimulateSchedule replays a schedule through the fluid time-sharing
// simulator and reports analytic vs simulated response.
func SimulateSchedule(ov Overlap, s *Schedule) (SiteComparison, error) {
	return sim.SimulateSchedule(ov, s)
}

// RandomShapedPlan draws a plan of the given shape (left-deep,
// right-deep, balanced, or random bushy).
func RandomShapedPlan(r *rand.Rand, cfg GenConfig, shape Shape) (*PlanNode, error) {
	return query.RandomShaped(r, cfg, shape)
}

// DiskPenalty returns a contention penalty charging γ on the disk
// dimension only.
func DiskPenalty(gamma float64) ContentionPenalty {
	return contention.DiskOnly(resource.Dims, gamma)
}

// EvalScheduleWithPenalty prices an existing schedule under imperfect
// time-sharing: each resource's per-site load inflates by γ_i per extra
// sharer. A nil penalty reproduces the schedule's own response.
func EvalScheduleWithPenalty(ov Overlap, g ContentionPenalty, s *Schedule) (float64, error) {
	return contention.EvalSchedule(ov, g, s)
}

// SimulatePipelines replays a schedule through the explicit pipeline
// dataflow simulator, where consumers cannot outrun their producers.
func SimulatePipelines(ov Overlap, s *Schedule, cfg PipeSimConfig) (*PipeSimResult, error) {
	return pipesim.Simulate(ov, s, cfg)
}

// VerifySchedule checks every structural invariant of a schedule
// (Definition 5.1 placement constraints, build→probe homes, Equation 3
// consistency) and returns the first violation.
func VerifySchedule(s *Schedule, ov Overlap) error { return sched.Verify(s, ov) }

// EncodeScheduleJSON renders a schedule as stable, indented JSON.
func EncodeScheduleJSON(s *Schedule) ([]byte, error) { return sched.EncodeJSON(s) }

// WriteScheduleText renders per-phase site-load bars and utilization.
func WriteScheduleText(w io.Writer, s *Schedule) error { return sched.WriteText(w, s) }

// ScheduleStats summarizes a schedule's resource economics.
func ScheduleStats(s *Schedule) sched.Stats { return s.Stats() }

// NewTracer returns a Recorder that streams decision-trace events to w
// as JSON lines. Call Flush (and check Err) when done.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewMetrics returns a Recorder aggregating counters and bounded
// histograms; safe for concurrent use.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewTraceCapture returns a Recorder buffering events in memory.
func NewTraceCapture() *TraceCapture { return obs.NewCapture() }

// MultiRecorder tees every record to each non-nil recorder.
func MultiRecorder(rs ...Recorder) Recorder { return obs.Multi(rs...) }

// ReadTrace decodes a JSONL decision trace written by a Tracer.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadTrace(r) }

// WriteTraceText pretty-prints a decision trace for human reading.
func WriteTraceText(w io.Writer, events []TraceEvent) error { return obs.WriteTraceText(w, events) }

// TraceAssignments replays a decision trace into the clone→site
// assignment it recorded.
func TraceAssignments(events []TraceEvent) map[PlaceKey]int { return obs.TraceAssignments(events) }

// ServeDebug starts an HTTP server on addr exposing net/http/pprof
// under /debug/pprof/ and expvar under /debug/vars, returning the bound
// address (useful with ":0").
func ServeDebug(addr string) (string, error) { return obs.ServeDebug(addr) }

// StartDebug is ServeDebug with a graceful-shutdown handle: the
// returned stop function drains the debug server, so long-running
// commands can take the diagnostics listener down on SIGTERM.
func StartDebug(addr string) (string, func(context.Context) error, error) {
	return obs.StartDebug(addr)
}

// PublishExpvar exposes a Metrics recorder's live snapshot as the named
// expvar, visible at /debug/vars on the ServeDebug server.
func PublishExpvar(name string, m *Metrics) { obs.PublishExpvar(name, m) }

// DefaultExperiments returns the paper-scale experiment configuration
// (20 queries per point, 10–140 sites).
func DefaultExperiments() ExperimentConfig { return experiments.Default() }

// QuickExperiments returns a scaled-down experiment configuration.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }
