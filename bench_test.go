// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md's experiment index) plus the ablations. Figure
// benchmarks run a scaled-down sweep per iteration and report the
// headline quantity of the figure as a custom metric, so
// `go test -bench=. -benchmem` reproduces the paper's qualitative
// results alongside the scheduler's own cost.
package mdrs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mdrs"
	"mdrs/internal/baseline"
	"mdrs/internal/costmodel"
	"mdrs/internal/experiments"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/sim"
)

// benchConfig is a per-iteration-affordable experiment scale.
func benchConfig() experiments.Config {
	c := experiments.Quick()
	c.Queries = 2
	c.Sites = []int{10, 80}
	return c
}

// lastPoint returns the final y-value of the named series.
func lastPoint(b *testing.B, fig *experiments.Figure, name string) float64 {
	b.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s.Y[len(s.Y)-1]
		}
	}
	b.Fatalf("series %q missing from figure %s", name, fig.ID)
	return 0
}

// BenchmarkTable2Defaults regenerates Table 2 (parameter settings) and
// validates the defaults each iteration.
func BenchmarkTable2Defaults(b *testing.B) {
	c := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := experiments.Table2(c); len(out) == 0 {
			b.Fatal("empty Table 2")
		}
		if err := costmodel.DefaultParams().Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5a regenerates Figure 5(a): effect of the granularity
// parameter f. Reports the speedup of f=0.9 over f=0.3 at the largest
// system, the figure's headline.
func BenchmarkFig5a(b *testing.B) {
	c := benchConfig()
	var speedup float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5a(c)
		if err != nil {
			b.Fatal(err)
		}
		speedup = lastPoint(b, fig, "TreeSchedule f=0.3") / lastPoint(b, fig, "TreeSchedule f=0.9")
	}
	b.ReportMetric(speedup, "f0.9-vs-f0.3-speedup")
}

// BenchmarkFig5b regenerates Figure 5(b): effect of the overlap ε.
// Reports TreeSchedule's improvement factor over Synchronous at ε=0.1
// (where sharing pays most).
func BenchmarkFig5b(b *testing.B) {
	c := benchConfig()
	var improvement float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5b(c)
		if err != nil {
			b.Fatal(err)
		}
		improvement = lastPoint(b, fig, "Synchronous ε=0.1") / lastPoint(b, fig, "TreeSchedule ε=0.1")
	}
	b.ReportMetric(improvement, "improvement-eps0.1")
}

// BenchmarkFig6a regenerates Figure 6(a): effect of query size. Reports
// the improvement factor at 50 joins on 20 sites.
func BenchmarkFig6a(b *testing.B) {
	c := benchConfig()
	var improvement float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6a(c)
		if err != nil {
			b.Fatal(err)
		}
		improvement = lastPoint(b, fig, "Synchronous P=20") / lastPoint(b, fig, "TreeSchedule P=20")
	}
	b.ReportMetric(improvement, "improvement-50joins")
}

// BenchmarkFig6b regenerates Figure 6(b): TreeSchedule vs the OPTBOUND
// lower bound. Reports the 40-join optimality ratio at the largest
// system (the worst case of the sweep; the theorem allows 2d+1 = 7).
func BenchmarkFig6b(b *testing.B) {
	c := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6b(c)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lastPoint(b, fig, "ratio 40J")
	}
	b.ReportMetric(ratio, "optimality-ratio")
}

// BenchmarkMalleable regenerates ablation A1 (Section 7 vs CG_f).
func BenchmarkMalleable(b *testing.B) {
	c := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Malleable(c)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lastPoint(b, fig, "Malleable GF") / lastPoint(b, fig, "LB of chosen N")
	}
	b.ReportMetric(ratio, "gf-vs-lb-ratio")
}

// BenchmarkListOrderAblation regenerates ablation A5 (sorted vs raw
// order list scheduling).
func BenchmarkListOrderAblation(b *testing.B) {
	c := benchConfig()
	var gain float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.OrderAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		gain = lastPoint(b, fig, "arrival order") / lastPoint(b, fig, "sorted (paper)")
	}
	b.ReportMetric(gain, "sorted-order-gain")
}

// BenchmarkShelfAblation regenerates ablation A7 (MinShelf vs
// EarliestShelf phase packing).
func BenchmarkShelfAblation(b *testing.B) {
	c := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ShelfAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lastPoint(b, fig, "EarliestShelf") / lastPoint(b, fig, "MinShelf (paper)")
	}
	b.ReportMetric(ratio, "earliest-vs-minshelf")
}

// BenchmarkContentionAblation regenerates ablation A8 (disk
// time-sharing penalty), reporting the γ=0.3 cost factor.
func BenchmarkContentionAblation(b *testing.B) {
	c := benchConfig()
	var factor float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ContentionAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		factor = lastPoint(b, fig, "TreeSchedule @ γ_disk=0.3") /
			lastPoint(b, fig, "TreeSchedule @ γ_disk=0.0")
	}
	b.ReportMetric(factor, "gamma0.3-cost")
}

// BenchmarkMemoryAblation regenerates ablation A9 (memory-aware
// scheduling), reporting the 1 MB-vs-infinite response factor.
func BenchmarkMemoryAblation(b *testing.B) {
	c := benchConfig()
	var factor float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.MemoryAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			if s.Name == "response" {
				factor = s.Y[0] / s.Y[len(s.Y)-1]
			}
		}
	}
	b.ReportMetric(factor, "tight-memory-cost")
}

// BenchmarkShapeAblation regenerates ablation A10 (plan shapes),
// reporting right-deep/bushy under TreeSchedule.
func BenchmarkShapeAblation(b *testing.B) {
	c := benchConfig()
	var factor float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ShapeAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			if s.Name == "TreeSchedule" {
				factor = s.Y[2] / s.Y[0] // right-deep over bushy
			}
		}
	}
	b.ReportMetric(factor, "rightdeep-vs-bushy")
}

// BenchmarkPlanSearchAblation regenerates ablation A11
// (scheduler-in-the-loop best-of-K plan search).
func BenchmarkPlanSearchAblation(b *testing.B) {
	c := benchConfig()
	var improvement float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.PlanSearchAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		improvement = lastPoint(b, fig, "first plan (two-phase)") / lastPoint(b, fig, "best of 8")
	}
	b.ReportMetric(improvement, "bestofk-improvement")
}

// BenchmarkPipelineAblation regenerates ablation A12 (pipeline
// abstraction error), reporting the dataflow/analytic ratio.
func BenchmarkPipelineAblation(b *testing.B) {
	c := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.PipelineAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lastPoint(b, fig, "ratio")
	}
	b.ReportMetric(ratio, "pipesim-vs-analytic")
}

// BenchmarkBatchAblation regenerates ablation A13 (multi-query
// batches), reporting serial/batched makespan at the largest system.
func BenchmarkBatchAblation(b *testing.B) {
	c := benchConfig()
	c.Queries = 4
	var speedup float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.BatchAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		speedup = lastPoint(b, fig, "back-to-back") / lastPoint(b, fig, "batched (4 queries)")
	}
	b.ReportMetric(speedup, "batch-speedup")
}

// BenchmarkDeclusterAblation regenerates ablation A14 (rooted vs
// floating scans), reporting the data-placement cost factor.
func BenchmarkDeclusterAblation(b *testing.B) {
	c := benchConfig()
	var factor float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.DeclusterAblation(c)
		if err != nil {
			b.Fatal(err)
		}
		factor = lastPoint(b, fig, "declustered scans") / lastPoint(b, fig, "floating scans")
	}
	b.ReportMetric(factor, "placement-cost")
}

// BenchmarkOperatorScheduleScaling measures the core list scheduler's
// cost across operator counts and system sizes (Proposition 5.1 says
// O(MP(M + log P))).
func BenchmarkOperatorScheduleScaling(b *testing.B) {
	ov := resource.MustOverlap(0.5)
	for _, mp := range []struct{ m, p int }{
		{10, 16}, {50, 16}, {200, 16}, {50, 64}, {50, 140},
	} {
		b.Run(benchName("M", mp.m, "P", mp.p), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			ops := make([]*sched.Op, mp.m)
			for i := range ops {
				n := 1 + r.Intn(4)
				clones := make([]mdrs.Vector, n)
				for k := range clones {
					clones[k] = mdrs.Vector{r.Float64(), r.Float64(), r.Float64()}
				}
				ops[i] = &sched.Op{ID: i, Clones: clones}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.OperatorSchedule(mp.p, 3, ov, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeScheduleComplexity measures end-to-end scheduling cost
// across query sizes (Proposition 5.2: O(JP(J + log P))).
func BenchmarkTreeScheduleComplexity(b *testing.B) {
	for _, joins := range []int{10, 20, 40, 80} {
		b.Run(benchName("J", joins, "P", 80), func(b *testing.B) {
			p := query.MustRandom(rand.New(rand.NewSource(1)), query.DefaultGenConfig(joins))
			tt := plan.MustNewTaskTree(plan.MustExpand(p))
			ts := sched.TreeScheduler{
				Model:   costmodel.Default(),
				Overlap: resource.MustOverlap(0.5),
				P:       80,
				F:       0.7,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ts.Schedule(tt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSynchronousComplexity measures the baseline's scheduling cost
// for comparison with TreeSchedule's.
func BenchmarkSynchronousComplexity(b *testing.B) {
	p := query.MustRandom(rand.New(rand.NewSource(1)), query.DefaultGenConfig(40))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	bl := baseline.Synchronous{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       80,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Schedule(tt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidSim measures ablation A3: the fluid validation of the
// analytic sharing model over a real schedule, reporting the
// simulated/analytic response ratio (1.0 = the analytic model is
// attained exactly).
func BenchmarkFluidSim(b *testing.B) {
	p := query.MustRandom(rand.New(rand.NewSource(1)), query.DefaultGenConfig(20))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	ov := resource.MustOverlap(0.5)
	s, err := sched.TreeScheduler{
		Model: costmodel.Default(), Overlap: ov, P: 32, F: 0.7,
	}.Schedule(tt)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := sim.SimulateSchedule(ov, s)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cmp.Simulated / cmp.Analytic
	}
	b.ReportMetric(ratio, "sim-vs-analytic")
}

// BenchmarkEngine measures ablation A4: executing a scheduled 6-join
// plan over real data, reporting the measured/predicted response ratio.
func BenchmarkEngine(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	p := query.MustRandom(r, query.GenConfig{Joins: 6, MinTuples: 5000, MaxTuples: 30000})
	ds, err := mdrs.GenerateData(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := mdrs.ScheduleQuery(p, mdrs.Options{Sites: 12, Epsilon: 0.5, F: 0.7})
	if err != nil {
		b.Fatal(err)
	}
	eng := mdrs.Engine{Model: mdrs.DefaultCostModel(), Overlap: resource.MustOverlap(0.5), Parallel: true}
	var ratio float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Run(ds, s)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rep.Measured / rep.Predicted
	}
	b.ReportMetric(ratio, "measured-vs-predicted")
}

func benchName(k1 string, v1 int, k2 string, v2 int) string {
	return fmt.Sprintf("%s=%d/%s=%d", k1, v1, k2, v2)
}
