# Development targets for the mdrs reproduction. `make check` is the
# gate future PRs must keep green: build, vet, and the full test suite
# under the race detector (which also exercises the experiments worker
# pool for data races).

GO ?= go

.PHONY: check build vet test race obs-race serve-race cache-race par-race loadgen-race adaptive-race opt-race engine-race bench bench-placement bench-cache bench-parallel bench-serve bench-adaptive bench-opt bench-opt-check bench-engine figures trace-demo

check: build vet race obs-race serve-race cache-race par-race loadgen-race adaptive-race opt-race engine-race bench-opt-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The observability layer and the engine's error paths, re-run with a
# fresh (-count=1) race pass: these tests attach shared recorders to the
# parallel clone runner and the experiments worker pool.
obs-race:
	$(GO) test -race -count=1 ./internal/obs ./internal/engine ./internal/experiments

# The scheduling service's concurrency gate: admission control, window
# batching, cancellation, and the HTTP layer, fresh under the race
# detector (the acceptance tests drive 32+ concurrent requests).
serve-race:
	$(GO) test -race -count=1 ./internal/serve ./cmd/mdrs-serve

# The caching layer's correctness gate: the cost-model memo, the plan
# fingerprint, and the serve-layer schedule cache (LRU + singleflight),
# fresh under the race detector — the hammer tests race many goroutines
# over shared caches and assert byte-identical schedules.
cache-race:
	$(GO) test -race -count=1 -run 'Cache|Fingerprint' ./internal/costmodel ./internal/sched ./internal/serve ./cmd/mdrs-serve

# The deterministic-parallelism gate: the Workers knob must produce
# byte-identical schedules and traces for every pool width, survive
# mid-placement cancellation, and keep the bounded pools race-free —
# fresh under the race detector.
par-race:
	$(GO) test -race -count=1 -run 'Par|Workers|Sharded|Hammer' ./internal/sched ./internal/sim ./internal/par

# The load-harness gate: the open-loop generator, the pooled request
# path, the sharded cache hammers, and the Close-race fallback, fresh
# under the race detector.
loadgen-race:
	$(GO) test -race -count=1 ./cmd/mdrs-loadgen
	$(GO) test -race -count=1 -run 'Hammer|Counter|Shard|Follower|Oversized' ./internal/serve ./cmd/mdrs-serve

# The adaptive-controller gate: the controller-off invariance tests
# (knobs never move, schedules byte-identical to a controller-free
# build), the MaxDegree fingerprint/cache-staleness tests, and the knob
# hammer racing live retunes against concurrent Schedule/Close — fresh
# under the race detector.
adaptive-race:
	$(GO) test -race -count=1 -run 'Controller|MaxDegree|Knob|Tuning|RetryAfter|SoloMargin|Closing|Degree' ./internal/serve ./internal/sched ./internal/costmodel ./cmd/mdrs-serve

# The plan-search gate: the bound-pruned optimizer's identity corpus
# (pruned == unpruned, byte-identical winning schedules, pool-width
# invisibility), the OPTBOUND soundness sweep, and the concurrent-search
# hammer racing shared caches against mid-search cancellation — fresh
# under the race detector.
opt-race:
	$(GO) test -race -count=1 ./internal/optimizer ./internal/query ./internal/opt

# The vectorized-engine gate: the flat data path (radix partitioning,
# dense flat tables, the pooled tuple arena, bounded clone fan-out),
# fresh under the race detector — the golden-Report identity corpus
# (flat vs reference executor, byte-for-byte), the degree-512 goroutine
# hammer, and the skew-drift test.
engine-race:
	$(GO) test -race -count=1 -run 'Identity|Flat|Arena|Radix|Table|Bounded|Degree512|Skewed|LeafTuples|WarmRuns' ./internal/engine

# Placement micro-benchmark tracked in BENCH_sched.json.
bench-placement:
	$(GO) test ./internal/sched -run '^$$' -bench BenchmarkOperatorSchedulePlacement -benchmem

# Regenerate BENCH_cache.json: the schedule cache's warm/cold serve
# latencies and the placement loop's allocs/op next to the pinned seed
# baseline.
bench-cache:
	$(GO) run ./cmd/mdrs-bench -cache-bench BENCH_cache.json

# Regenerate BENCH_parallel.json: TreeSchedule at Workers=1 vs
# Workers=N (cold and warm) plus the live workers-invariance verdict.
bench-parallel:
	$(GO) run ./cmd/mdrs-bench -par-bench BENCH_parallel.json

# Regenerate BENCH_serve.json: the serving layer's open-loop load curve
# (goodput, shed rate, p50/p99/p999 latency, cache rates at three
# offered-load points) plus the closed-loop saturation probe of
# serve-layer overhead vs pure schedule time.
bench-serve:
	$(GO) run ./cmd/mdrs-loadgen -rps 50,200,800 -duration 5s -out BENCH_serve.json

# Regenerate BENCH_adaptive.json: the same open-loop sweep run twice
# against fresh in-process services — adaptive controller off, then on —
# at three steady offered-load points plus a ramp to the peak rate, so
# the on/off goodput and shed curves (and the controller's transient
# response to the ramp) are directly comparable.
# Cache off + a wide template population so every request pays real
# scheduling work — with a warm schedule cache the controller has
# nothing to trade and the curves tie.
bench-adaptive:
	$(GO) run ./cmd/mdrs-loadgen -compare-controller -cache 0 -templates 512 -joins 6 -sites 128 -rps 50,200,800 -duration 5s -out BENCH_adaptive.json

# Regenerate BENCH_optimizer.json: the four plan-search arms (two-phase
# strawman, unpruned pool, bound-pruned pool, streaming
# bound-interleaved) across a join-count sweep — per-arm wall clock, the
# enumerated/pruned/scheduled ledger with peak candidate residency, the
# dual identity verdicts, and the streaming-schedules-fewer verdict.
bench-opt:
	$(GO) run ./cmd/mdrs-bench -opt-bench BENCH_optimizer.json

# Replay the committed BENCH_optimizer.json's deterministic check
# corpus: fails if the committed identity verdict is false, the live
# streaming winner diverges from the unpruned oracle, or the live
# scheduled-count ledger regresses more than 10% over the committed one.
bench-opt-check:
	$(GO) run ./cmd/mdrs-bench -opt-check BENCH_optimizer.json

# Regenerate BENCH_engine.json: the flat engine vs the preserved
# reference executor (cold/warm ns/op, allocs/op, tuples/sec) over
# joins∈{3,5,8} × tuple scales × Parallel on/off × skew∈{0,1.2}, with
# the live old-vs-new Report byte-identity verdict and the joins=8
# acceptance summary (≥3× tuples/sec, ≥5× fewer allocs/op).
bench-engine:
	$(GO) run ./cmd/mdrs-bench -engine-bench BENCH_engine.json

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate every Section 6 figure with per-figure timings.
figures:
	$(GO) run ./cmd/mdrs-bench -csv -benchjson BENCH_figures.json

# Schedule one seeded 6-join plan and pretty-print its decision trace.
trace-demo:
	$(GO) run ./cmd/mdrs-plangen -joins 6 -seed 1 | $(GO) run ./cmd/mdrs-sched -sites 16 -trace-text
