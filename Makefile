# Development targets for the mdrs reproduction. `make check` is the
# gate future PRs must keep green: build, vet, and the full test suite
# under the race detector (which also exercises the experiments worker
# pool for data races).

GO ?= go

.PHONY: check build vet test race bench bench-placement figures

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Placement micro-benchmark tracked in BENCH_sched.json.
bench-placement:
	$(GO) test ./internal/sched -run '^$$' -bench BenchmarkOperatorSchedulePlacement -benchmem

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate every Section 6 figure with per-figure timings.
figures:
	$(GO) run ./cmd/mdrs-bench -csv -benchjson BENCH_figures.json
