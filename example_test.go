package mdrs_test

import (
	"fmt"
	"math/rand"

	"mdrs"
)

// ExampleScheduleQuery schedules a small hand-built plan end to end.
func ExampleScheduleQuery() {
	lineitem := &mdrs.PlanNode{
		Relation: &mdrs.Relation{Name: "lineitem", Tuples: 60000}, Tuples: 60000,
	}
	orders := &mdrs.PlanNode{
		Relation: &mdrs.Relation{Name: "orders", Tuples: 15000}, Tuples: 15000,
	}
	join := &mdrs.PlanNode{Outer: lineitem, Inner: orders, Tuples: 60000}

	s, err := mdrs.ScheduleQuery(join, mdrs.Options{Sites: 16, Epsilon: 0.5, F: 0.7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("phases: %d\n", len(s.Phases))
	fmt.Printf("response: %.2f s\n", s.Response)
	// Output:
	// phases: 2
	// response: 4.48 s
}

// ExampleOperatorSchedule packs complementary resource demands onto one
// site: a CPU-bound and a disk-bound operator overlap perfectly under
// full resource overlap (ε = 1).
func ExampleOperatorSchedule() {
	ov, _ := mdrs.NewOverlap(1)
	ops := []*mdrs.SchedOp{
		{ID: 0, Clones: []mdrs.Vector{{10, 0, 0}}}, // CPU-bound
		{ID: 1, Clones: []mdrs.Vector{{0, 10, 0}}}, // disk-bound
	}
	res, _ := mdrs.OperatorSchedule(1, 3, ov, ops)
	fmt.Printf("both on one site in %.0f s\n", res.Response)
	// Output:
	// both on one site in 10 s
}

// ExampleMalleableScheduler lets the Section 7 scheduler pick degrees
// of parallelism for two scans of very different sizes.
func ExampleMalleableScheduler() {
	m := mdrs.DefaultCostModel()
	ov, _ := mdrs.NewOverlap(0.5)
	s := mdrs.MalleableScheduler{Model: m, Overlap: ov, P: 8}
	ops := []mdrs.MalleableOperator{
		{ID: 0, Cost: m.Cost(mdrs.OpSpec{Kind: mdrs.Scan, InTuples: 80000, NetOut: true})},
		{ID: 1, Cost: m.Cost(mdrs.OpSpec{Kind: mdrs.Scan, InTuples: 2000, NetOut: true})},
	}
	res, _ := s.Schedule(ops)
	fmt.Printf("degrees: %v\n", res.Parallelization)
	// Output:
	// degrees: [8 1]
}

// ExampleOptBound compares a schedule against the paper's lower bound.
func ExampleOptBound() {
	r := rand.New(rand.NewSource(7))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(10))
	o := mdrs.Options{Sites: 20, Epsilon: 0.5, F: 0.7}
	s, _ := mdrs.ScheduleQuery(plan, o)
	lb, _ := mdrs.OptBound(plan, o)
	fmt.Printf("within %.2fx of the optimal lower bound\n", s.Response/lb)
	// Output:
	// within 1.04x of the optimal lower bound
}

// ExampleVerifySchedule validates a schedule's structural invariants.
func ExampleVerifySchedule() {
	r := rand.New(rand.NewSource(1))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(5))
	s, _ := mdrs.ScheduleQuery(plan, mdrs.Options{Sites: 8, Epsilon: 0.5, F: 0.7})
	ov, _ := mdrs.NewOverlap(0.5)
	fmt.Println(mdrs.VerifySchedule(s, ov))
	// Output:
	// <nil>
}

// ExampleGenerateData executes a scheduled join over synthetic data.
func ExampleGenerateData() {
	a := &mdrs.PlanNode{Relation: &mdrs.Relation{Name: "A", Tuples: 3000}, Tuples: 3000}
	b := &mdrs.PlanNode{Relation: &mdrs.Relation{Name: "B", Tuples: 1000}, Tuples: 1000}
	plan := &mdrs.PlanNode{Outer: a, Inner: b, Tuples: 3000}

	ds, _ := mdrs.GenerateData(plan, 42)
	s, _ := mdrs.ScheduleQuery(plan, mdrs.Options{Sites: 4, Epsilon: 0.5, F: 0.7})
	ov, _ := mdrs.NewOverlap(0.5)
	rep, _ := mdrs.Engine{Model: mdrs.DefaultCostModel(), Overlap: ov}.Run(ds, s)
	fmt.Printf("result: %d tuples\n", rep.ResultTuples)
	// Output:
	// result: 3000 tuples
}
