package mdrs_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mdrs"
)

// TestEndToEndPipeline drives the whole system through the public API:
// generate a plan, schedule it three ways, bound it, execute it on real
// data, and replay it through the fluid simulator.
func TestEndToEndPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	plan := mdrs.MustRandomPlan(r, mdrs.GenConfig{Joins: 8, MinTuples: 2000, MaxTuples: 20000})
	o := mdrs.Options{Sites: 16, Epsilon: 0.5, F: 0.7}

	tree, err := mdrs.ScheduleQuery(plan, o)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := mdrs.ScheduleQuerySynchronous(plan, o)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := mdrs.OptBound(plan, o)
	if err != nil {
		t.Fatal(err)
	}

	if tree.Response < bound-1e-9 {
		t.Fatalf("TreeSchedule %g below OPTBOUND %g", tree.Response, bound)
	}
	if sync.Response < bound-1e-9 {
		t.Fatalf("Synchronous %g below OPTBOUND %g", sync.Response, bound)
	}
	if tree.Response >= sync.Response {
		t.Fatalf("TreeSchedule %g not better than Synchronous %g", tree.Response, sync.Response)
	}
	ovCheck, err := mdrs.NewOverlap(o.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	if err := mdrs.VerifySchedule(tree, ovCheck); err != nil {
		t.Fatalf("TreeSchedule failed verification: %v", err)
	}

	// Execute the schedule on synthetic data.
	ds, err := mdrs.GenerateData(plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := mdrs.NewOverlap(o.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mdrs.Engine{Model: mdrs.DefaultCostModel(), Overlap: ov, Parallel: true}.Run(ds, tree)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != plan.Tuples {
		t.Fatalf("engine result %d != optimizer cardinality %d", rep.ResultTuples, plan.Tuples)
	}

	// Replay through the fluid simulator.
	cmp, err := mdrs.SimulateSchedule(ov, tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.Analytic-tree.Response) > 1e-6 {
		t.Fatalf("simulator analytic %g != schedule response %g", cmp.Analytic, tree.Response)
	}
	if cmp.Simulated < cmp.Analytic-1e-9 {
		t.Fatalf("simulated %g below analytic %g", cmp.Simulated, cmp.Analytic)
	}
}

func TestOptionsValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(3))
	cases := []mdrs.Options{
		{Sites: 0, Epsilon: 0.5, F: 0.7},
		{Sites: 4, Epsilon: -1, F: 0.7},
		{Sites: 4, Epsilon: 0.5, F: -1},
	}
	for i, o := range cases {
		if _, err := mdrs.ScheduleQuery(plan, o); err == nil {
			t.Errorf("case %d: ScheduleQuery accepted", i)
		}
	}
	// Synchronous ignores F, so only the first two are invalid for it.
	for i, o := range cases[:2] {
		if _, err := mdrs.ScheduleQuerySynchronous(plan, o); err == nil {
			t.Errorf("case %d: ScheduleQuerySynchronous accepted", i)
		}
	}
}

func TestCustomParamsFlowThrough(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(4))
	fast := mdrs.DefaultParams()
	fast.MIPS = 100 // 100x faster CPUs shrink response
	slowOpts := mdrs.Options{Sites: 8, Epsilon: 0.5, F: 0.7}
	fastOpts := mdrs.Options{Params: fast, Sites: 8, Epsilon: 0.5, F: 0.7}
	slow, err := mdrs.ScheduleQuery(plan, slowOpts)
	if err != nil {
		t.Fatal(err)
	}
	quick, err := mdrs.ScheduleQuery(plan, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if quick.Response >= slow.Response {
		t.Fatalf("faster CPU did not reduce response: %g vs %g",
			quick.Response, slow.Response)
	}
}

func TestOperatorScheduleFacade(t *testing.T) {
	ov, err := mdrs.NewOverlap(1)
	if err != nil {
		t.Fatal(err)
	}
	ops := []*mdrs.SchedOp{
		{ID: 0, Clones: []mdrs.Vector{{10, 0}}},
		{ID: 1, Clones: []mdrs.Vector{{0, 10}}},
	}
	res, err := mdrs.OperatorSchedule(1, 2, ov, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Complementary vectors overlap perfectly on one site under ε = 1.
	if math.Abs(res.Response-10) > 1e-9 {
		t.Fatalf("response = %g, want 10", res.Response)
	}
	lb := mdrs.ScheduleLowerBound(1, ov, ops)
	if res.Response < lb-1e-9 {
		t.Fatalf("response %g below LB %g", res.Response, lb)
	}
}

func TestMalleableFacade(t *testing.T) {
	m := mdrs.DefaultCostModel()
	ov, _ := mdrs.NewOverlap(0.5)
	ms := mdrs.MalleableScheduler{Model: m, Overlap: ov, P: 8}
	ops := []mdrs.MalleableOperator{
		{ID: 0, Cost: m.Cost(mdrs.OpSpec{Kind: mdrs.Scan, InTuples: 50000, NetOut: true})},
		{ID: 1, Cost: m.Cost(mdrs.OpSpec{Kind: mdrs.Scan, InTuples: 20000, NetOut: true})},
	}
	res, err := ms.Schedule(ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Response < res.LB-1e-9 || res.Schedule.Response > 7*res.LB+1e-9 {
		t.Fatalf("response %g outside [LB, 7·LB] = [%g, %g]",
			res.Schedule.Response, res.LB, 7*res.LB)
	}
}

func TestTreeScheduleBeatsSynchronousAcrossSweeps(t *testing.T) {
	// A compact end-to-end sanity sweep over the public API mirroring
	// the paper's headline result at f = 0.7.
	r := rand.New(rand.NewSource(3))
	for _, sites := range []int{10, 40, 120} {
		for _, eps := range []float64{0.1, 0.5} {
			var sumT, sumS float64
			for trial := 0; trial < 3; trial++ {
				plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(15))
				o := mdrs.Options{Sites: sites, Epsilon: eps, F: 0.7}
				st, err := mdrs.ScheduleQuery(plan, o)
				if err != nil {
					t.Fatal(err)
				}
				ss, err := mdrs.ScheduleQuerySynchronous(plan, o)
				if err != nil {
					t.Fatal(err)
				}
				sumT += st.Response
				sumS += ss.Response
			}
			if sumT >= sumS {
				t.Fatalf("P=%d ε=%g: TreeSchedule total %g not better than Synchronous %g",
					sites, eps, sumT, sumS)
			}
		}
	}
}

// TestSchedulingServiceFacade drives the concurrent scheduling service
// through the public API: submit a plan's task tree, check the result
// matches a direct end-to-end schedule, and check the typed errors and
// the ctx-aware entry point are re-exported.
func TestSchedulingServiceFacade(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(6))
	o := mdrs.Options{Sites: 12, Epsilon: 0.5, F: 0.7}

	ov, err := mdrs.NewOverlap(o.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := mdrs.NewSchedulingService(mdrs.ServeConfig{
		Scheduler: mdrs.TreeScheduler{
			Model:   mdrs.DefaultCostModel(),
			Overlap: ov,
			P:       o.Sites,
			F:       o.F,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	_, tt, err := mdrs.PrepareQuery(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Schedule(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := mdrs.ScheduleQuery(plan, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Response != direct.Response {
		t.Fatalf("served response %g != direct %g", res.Schedule.Response, direct.Response)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mdrs.ScheduleQueryCtx(ctx, plan, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScheduleQueryCtx: got %v, want context.Canceled", err)
	}
	if mdrs.ErrOverloaded == nil || mdrs.ErrServiceClosed == nil {
		t.Fatal("typed service errors not exported")
	}
	svc.Close()
	if _, err := svc.Schedule(context.Background(), tt); !errors.Is(err, mdrs.ErrServiceClosed) {
		t.Fatalf("closed service: got %v, want ErrServiceClosed", err)
	}
}

func TestPlanSearchFacade(t *testing.T) {
	o := mdrs.Options{Sites: 16, Epsilon: 0.5, F: 0.7}
	s, err := mdrs.NewPlanSearch(o, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	rels, err := mdrs.RandomRelations(r, 4, 1_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Systematic {
		t.Fatal("3 joins should enumerate systematically")
	}
	if res.Pruned+res.Scheduled != len(res.Candidates) {
		t.Fatalf("ledger %d+%d != %d candidates", res.Pruned, res.Scheduled, len(res.Candidates))
	}
	var c mdrs.PlanCandidate = res.Best
	if c.Schedule == nil || c.Schedule.Response <= 0 {
		t.Fatal("winner has no schedule")
	}
	if res.Improvement() < 1 {
		t.Fatalf("improvement %g < 1", res.Improvement())
	}

	plans, err := mdrs.EnumerateBushyPlans(rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(res.Candidates) {
		t.Fatalf("EnumerateBushyPlans %d != candidate pool %d", len(plans), len(res.Candidates))
	}

	if _, err := s.Best(nil, rels); !errors.Is(err, mdrs.ErrPlanSearchNilRand) {
		t.Fatalf("nil rand: got %v, want ErrPlanSearchNilRand", err)
	}
	if _, err := s.Best(r, rels[:1]); !errors.Is(err, mdrs.ErrPlanSearchTooFewRelations) {
		t.Fatalf("1 relation: got %v, want ErrPlanSearchTooFewRelations", err)
	}
	if _, err := mdrs.NewPlanSearch(mdrs.Options{Sites: 0, Epsilon: 0.5, F: 0.7}, 8); err == nil {
		t.Fatal("non-positive site count accepted")
	}
}
