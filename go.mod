module mdrs

go 1.22
