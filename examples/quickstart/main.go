// Quickstart: build a three-join bushy plan by hand, schedule it with
// the paper's TreeSchedule algorithm on a 16-site shared-nothing system,
// and inspect the resulting phases and placements.
package main

import (
	"fmt"
	"log"

	"mdrs"
)

// rel declares a base relation leaf.
func rel(name string, tuples int) *mdrs.PlanNode {
	return &mdrs.PlanNode{
		Relation: &mdrs.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

// hashJoin composes a join node; the inner (build) side's hash table is
// memory-resident, the outer side streams through the probe. Simple key
// joins produce max(|outer|, |inner|) tuples.
func hashJoin(outer, inner *mdrs.PlanNode) *mdrs.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &mdrs.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func main() {
	// orders ⋈ (customers ⋈ nation), then ⋈ lineitem — a small bushy
	// shape with two independent build pipelines.
	plan := hashJoin(
		hashJoin(rel("lineitem", 60_000), rel("orders", 15_000)),
		hashJoin(rel("customer", 10_000), rel("nation", 2_500)),
	)
	if err := plan.Validate(); err != nil {
		log.Fatal(err)
	}

	opts := mdrs.Options{
		Sites:   16,  // P: shared-nothing sites, each with CPU + disk + NIC
		Epsilon: 0.5, // resource overlap ε (EA2)
		F:       0.7, // coarse-granularity parameter (Definition 4.1)
	}

	schedule, err := mdrs.ScheduleQuery(plan, opts)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := mdrs.OptBound(plan, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan: %d joins, result cardinality %d tuples\n", plan.Joins(), plan.Tuples)
	fmt.Printf("response time: %.3f s on %d sites (lower bound %.3f s, within %.2fx)\n\n",
		schedule.Response, opts.Sites, bound, schedule.Response/bound)

	for _, ph := range schedule.Phases {
		fmt.Printf("phase %d — %d concurrent tasks, %.3f s\n",
			ph.Index, len(ph.Tasks), ph.Response)
		for _, pl := range ph.Placements {
			kind := "floating"
			if pl.Rooted {
				kind = "rooted  " // probes run where their hash table lives
			}
			fmt.Printf("  %-18s %s degree %-3d T^par %7.3f s\n",
				pl.Op.Name, kind, pl.Degree, pl.TPar)
		}
	}
}
