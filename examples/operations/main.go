// Operations stress-tests a schedule against the two idealizations the
// paper's conclusions flag as open problems: unlimited memory
// (assumption A1) and free time-sharing (assumption A2). It schedules
// one workload three ways —
//
//  1. the base TreeSchedule under the paper's assumptions,
//  2. the memory-aware scheduler as per-site memory shrinks (hash
//     tables spill when they do not fit), and
//  3. the base schedule re-priced under a disk time-sharing penalty
//     (interleaved streams cost seeks),
//
// — quantifying how far each idealization is from an operationally
// honest estimate.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mdrs"
)

func main() {
	r := rand.New(rand.NewSource(11))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(15))
	_, tt, err := mdrs.PrepareQuery(plan)
	if err != nil {
		log.Fatal(err)
	}
	ov, err := mdrs.NewOverlap(0.5)
	if err != nil {
		log.Fatal(err)
	}
	const sites, f = 24, 0.7

	base, err := mdrs.TreeScheduler{
		Model: mdrs.DefaultCostModel(), Overlap: ov, P: sites, F: f,
	}.Schedule(tt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("15-join plan on %d sites; base TreeSchedule: %.2f s\n\n", sites, base.Response)

	fmt.Println("memory (A1): per-site capacity vs response and spill volume")
	for _, mb := range []float64{1, 4, 16, 64, math.Inf(1)} {
		ms := mdrs.MemoryScheduler{
			Model: mdrs.DefaultCostModel(), Overlap: ov, P: sites, F: f,
			MemoryBytes: mb * (1 << 20),
		}
		if math.IsInf(mb, 1) {
			ms.MemoryBytes = math.Inf(1)
		}
		res, err := ms.Schedule(tt)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%6.0f MB", mb)
		if math.IsInf(mb, 1) {
			label = "  ∞ (A1)"
		}
		fmt.Printf("  %s: %8.2f s   spilled %6.1f MB\n",
			label, res.Response, res.TotalSpilledBytes/(1<<20))
	}

	// This workload is CPU-bound under Table 2 (the schedule keeps CPUs
	// ~95% busy while disks idle around 30%), so moderate disk-sharing
	// penalties are absorbed by the slack — Equation 2's max structure
	// hides them until the inflated disk load overtakes the CPU load.
	st := mdrs.ScheduleStats(base)
	fmt.Printf("\ntime-sharing (A2): disk penalty γ vs re-priced response\n")
	fmt.Printf("  (utilization cpu %.0f%%, disk %.0f%%, net %.0f%% — disk slack absorbs small γ)\n",
		100*st.Utilization[mdrs.CPU], 100*st.Utilization[mdrs.Disk], 100*st.Utilization[mdrs.Net])
	for _, gamma := range []float64{0, 0.5, 1, 2, 5, 10} {
		priced, err := mdrs.EvalScheduleWithPenalty(ov, mdrs.DiskPenalty(gamma), base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  γ_disk = %5.2f: %8.2f s  (+%.1f%%)\n",
			gamma, priced, 100*(priced/base.Response-1))
	}

	fmt.Println("\npipelining (A3/A5): explicit dataflow simulation")
	sim, err := mdrs.SimulatePipelines(ov, base, mdrs.PipeSimConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  analytic %.2f s, dataflow-simulated %.2f s (%.1f%% abstraction error)\n",
		sim.Analytic, sim.Simulated, 100*(sim.Ratio()-1))
}
