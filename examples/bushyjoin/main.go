// Bushyjoin reproduces the paper's headline comparison on a large
// workload: 40-join random bushy plans scheduled by the
// multi-dimensional TreeSchedule versus the one-dimensional SYNCHRONOUS
// baseline, across system sizes, with the OPTBOUND lower bound as the
// yardstick (Figures 5 and 6 of the paper in miniature).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mdrs"
)

func main() {
	const (
		joins   = 40
		queries = 10
		eps     = 0.5
		f       = 0.7
	)
	r := rand.New(rand.NewSource(1996))
	plans := make([]*mdrs.PlanNode, queries)
	for i := range plans {
		plans[i] = mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(joins))
	}

	fmt.Printf("%d random %d-join bushy plans, ε=%.1f, f=%.1f\n\n", queries, joins, eps, f)
	fmt.Printf("%6s  %14s  %14s  %14s  %9s  %9s\n",
		"sites", "TreeSchedule", "Synchronous", "OPTBOUND", "speedup", "vs bound")

	for _, sites := range []int{10, 20, 40, 80, 140} {
		opts := mdrs.Options{Sites: sites, Epsilon: eps, F: f}
		var sumTree, sumSync, sumBound float64
		for _, p := range plans {
			tree, err := mdrs.ScheduleQuery(p, opts)
			if err != nil {
				log.Fatal(err)
			}
			sync, err := mdrs.ScheduleQuerySynchronous(p, opts)
			if err != nil {
				log.Fatal(err)
			}
			bound, err := mdrs.OptBound(p, opts)
			if err != nil {
				log.Fatal(err)
			}
			sumTree += tree.Response
			sumSync += sync.Response
			sumBound += bound
		}
		q := float64(queries)
		fmt.Printf("%6d  %12.2f s  %12.2f s  %12.2f s  %8.2fx  %8.2fx\n",
			sites, sumTree/q, sumSync/q, sumBound/q,
			sumSync/sumTree, sumTree/sumBound)
	}

	fmt.Println("\nspeedup = Synchronous/TreeSchedule; vs bound = TreeSchedule/OPTBOUND")
	fmt.Println("(the worst-case guarantee per phase is 2d+1 = 7; observed ratios sit near 1)")
}
