// Multimedia applies the paper's multi-dimensional framework to the
// "other" workload its conclusions suggest: request scheduling in a
// multimedia storage server. Each admitted request (video transcode,
// thumbnail batch, raw stream, analytics pass) loads a server's CPU,
// disk, and network interface differently; admitting a batch onto a
// server farm is exactly the vector-packing problem OperatorSchedule
// solves, and Equation 3 prices the batch's completion time.
package main

import (
	"fmt"
	"log"

	"mdrs"
)

// request is one admitted media job with per-resource demands in
// seconds of busy time on (CPU, disk, network).
type request struct {
	name string
	work mdrs.Vector
}

func main() {
	// A mixed admission batch: transcodes are CPU-bound, cold-archive
	// reads are disk-bound, live restreams are network-bound, analytics
	// touch everything.
	reqs := []request{
		{"transcode-4k", mdrs.Vector{90, 12, 18}},
		{"transcode-4k", mdrs.Vector{85, 10, 16}},
		{"transcode-1080", mdrs.Vector{40, 8, 12}},
		{"archive-read", mdrs.Vector{6, 70, 25}},
		{"archive-read", mdrs.Vector{5, 65, 22}},
		{"restream", mdrs.Vector{10, 4, 80}},
		{"restream", mdrs.Vector{12, 5, 75}},
		{"thumbnails", mdrs.Vector{25, 30, 5}},
		{"analytics", mdrs.Vector{45, 40, 30}},
		{"analytics", mdrs.Vector{50, 35, 28}},
	}

	const servers = 4
	ov, err := mdrs.NewOverlap(0.8) // modern servers overlap I/O and compute well
	if err != nil {
		log.Fatal(err)
	}

	ops := make([]*mdrs.SchedOp, len(reqs))
	for i, r := range reqs {
		ops[i] = &mdrs.SchedOp{ID: i, Clones: []mdrs.Vector{r.work}}
	}

	res, err := mdrs.OperatorSchedule(servers, mdrs.Dims, ov, ops)
	if err != nil {
		log.Fatal(err)
	}
	lb := mdrs.ScheduleLowerBound(servers, ov, ops)

	fmt.Printf("admitting %d requests onto %d media servers (ε = 0.8)\n\n",
		len(reqs), servers)
	perServer := map[int][]string{}
	for i, r := range reqs {
		s := res.Sites[i][0]
		perServer[s] = append(perServer[s], r.name)
	}
	for s := 0; s < servers; s++ {
		site := res.System.Site(s)
		load := site.Load()
		fmt.Printf("server %d  (cpu %5.1f  disk %5.1f  net %5.1f s): %v\n",
			s, load[mdrs.CPU], load[mdrs.Disk], load[mdrs.Net], perServer[s])
	}

	fmt.Printf("\nbatch completes in %.1f s  (lower bound %.1f s, within %.2fx; worst case 2d+1 = 7x)\n",
		res.Response, lb, res.Response/lb)

	// The one-dimensional strawman: balance total seconds of work only.
	// Pack greedily by scalar load and price the result with the true
	// multi-dimensional model.
	scalarSites := make([]float64, servers)
	siteOf := make([]int, len(reqs))
	for i, r := range reqs {
		best := 0
		for s := 1; s < servers; s++ {
			if scalarSites[s] < scalarSites[best] {
				best = s
			}
		}
		scalarSites[best] += r.work.Sum()
		siteOf[i] = best
	}
	worst := 0.0
	for s := 0; s < servers; s++ {
		var clones []mdrs.Vector
		for i, r := range reqs {
			if siteOf[i] == s {
				clones = append(clones, r.work)
			}
		}
		maxSeq, load := 0.0, mdrs.Vector{0, 0, 0}
		for _, w := range clones {
			if t := ov.TSeq(w); t > maxSeq {
				maxSeq = t
			}
			load.AddInPlace(w)
		}
		t := maxSeq
		if l := load.Length(); l > t {
			t = l
		}
		if t > worst {
			worst = t
		}
	}
	fmt.Printf("one-dimensional (scalar work) packing completes in %.1f s — %.0f%% slower\n",
		worst, 100*(worst/res.Response-1))
}
