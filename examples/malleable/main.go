// Malleable demonstrates the Section 7 extension: scheduling a batch of
// independent operators where the scheduler itself chooses each degree
// of partitioned parallelism. It prints the greedy GF candidate family,
// the lower bound of each candidate, the selected parallelization, and
// a head-to-head against the coarse-grain (CG_f) rule.
package main

import (
	"fmt"
	"log"

	"mdrs"
)

func main() {
	model := mdrs.DefaultCostModel()
	ov, err := mdrs.NewOverlap(0.5)
	if err != nil {
		log.Fatal(err)
	}
	s := mdrs.MalleableScheduler{Model: model, Overlap: ov, P: 12}

	// A batch of independent scans and probes with very different sizes:
	// exactly the situation where one-size-fits-all parallelization
	// wastes startup cost on small operators and starves big ones.
	specs := []mdrs.OpSpec{
		{Kind: mdrs.Scan, InTuples: 100_000, NetOut: true},
		{Kind: mdrs.Scan, InTuples: 40_000, NetOut: true},
		{Kind: mdrs.Scan, InTuples: 5_000, NetOut: true},
		{Kind: mdrs.Probe, InTuples: 80_000, ResultTuples: 80_000, NetIn: true, NetOut: true},
		{Kind: mdrs.Build, InTuples: 30_000, NetIn: true},
		{Kind: mdrs.Scan, InTuples: 1_000, NetOut: true},
	}
	ops := make([]mdrs.MalleableOperator, len(specs))
	for i, spec := range specs {
		ops[i] = mdrs.MalleableOperator{ID: i, Cost: model.Cost(spec)}
	}

	fmt.Println("operators (W_p = processing area, D = interconnect bytes):")
	for i, op := range ops {
		fmt.Printf("  op%-2d %-6v W_p=%7.2f s  D=%8.0f B\n",
			i, specs[i].Kind, op.Cost.ProcessingArea(), op.Cost.D)
	}

	family, err := s.Candidates(ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGF family: %d candidate parallelizations (bound: 1 + M(P-1) = %d)\n",
		len(family), 1+len(ops)*(s.P-1))
	step := len(family) / 5
	if step == 0 {
		step = 1
	}
	for k := 0; k < len(family); k += step {
		fmt.Printf("  N^%-3d = %v   LB = %.3f s\n", k+1, family[k], s.LB(ops, family[k]))
	}

	res, err := s.Schedule(ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected N = %v\n", res.Parallelization)
	fmt.Printf("lower bound LB(N)      = %8.3f s\n", res.LB)
	fmt.Printf("malleable response     = %8.3f s  (guaranteed <= (2d+1)·OPT)\n",
		res.Schedule.Response)

	cg := s.CoarseGrainParallelization(ops, 0.7)
	cgRes, err := s.ScheduleFixed(ops, cg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG_f (f=0.7) N = %v\n", cg)
	fmt.Printf("coarse-grain response  = %8.3f s\n", cgRes.Schedule.Response)
}
