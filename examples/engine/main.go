// Engine executes a scheduled bushy plan for real: it generates
// FK-disciplined synthetic relations, runs partitioned scans, hash
// builds, and pipelined probes on goroutine-per-clone workers, meters
// every clone's CPU/disk/network usage with the Table 2 cost constants,
// and compares the measured response time against the scheduler's
// analytic prediction and the fluid time-sharing simulation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mdrs"
)

func main() {
	r := rand.New(rand.NewSource(7))
	plan := mdrs.MustRandomPlan(r, mdrs.GenConfig{
		Joins: 8, MinTuples: 10_000, MaxTuples: 80_000,
	})
	opts := mdrs.Options{Sites: 24, Epsilon: 0.5, F: 0.7}

	schedule, err := mdrs.ScheduleQuery(plan, opts)
	if err != nil {
		log.Fatal(err)
	}

	ds, err := mdrs.GenerateData(plan, 42)
	if err != nil {
		log.Fatal(err)
	}

	ov, err := mdrs.NewOverlap(opts.Epsilon)
	if err != nil {
		log.Fatal(err)
	}
	eng := mdrs.Engine{Model: mdrs.DefaultCostModel(), Overlap: ov, Parallel: true}
	report, err := eng.Run(ds, schedule)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executed %d-join plan over %d base relations on %d sites\n",
		plan.Joins(), ds.NumLeaves(), opts.Sites)
	fmt.Printf("result cardinality: %d tuples (optimizer predicted %d)\n\n",
		report.ResultTuples, plan.Tuples)

	fmt.Println("join result cardinalities (joinID -> tuples):")
	for j := 0; j < plan.Joins(); j++ {
		fmt.Printf("  J%-3d %8d\n", j, report.JoinResults[j])
	}

	fmt.Printf("\nscheduler-predicted response: %8.3f s\n", report.Predicted)
	fmt.Printf("engine-measured response:     %8.3f s  (%.1f%% deviation)\n",
		report.Measured, 100*(report.Measured-report.Predicted)/report.Predicted)

	cmp, err := mdrs.SimulateSchedule(ov, schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fluid-simulated response:     %8.3f s  (%.3fx the analytic model)\n",
		cmp.Simulated, cmp.Ratio())

	fmt.Println("\nper-phase measured response:")
	for i, t := range report.PhaseMeasured {
		fmt.Printf("  phase %d: %8.3f s\n", i, t)
	}
}
