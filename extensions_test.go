package mdrs_test

import (
	"math"
	"math/rand"
	"testing"

	"mdrs"
)

// Integration tests for the extension subsystems through the public
// facade: memory-aware scheduling, contention pricing, pipeline
// simulation, plan shapes, and the best-of-K plan search.

func TestFacadeMemoryScheduler(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(10))
	_, tt, err := mdrs.PrepareQuery(plan)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := mdrs.NewOverlap(0.5)
	if err != nil {
		t.Fatal(err)
	}
	tight := mdrs.MemoryScheduler{
		Model: mdrs.DefaultCostModel(), Overlap: ov, P: 12, F: 0.7,
		MemoryBytes: 1 << 20,
	}
	res, err := tight.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpilledBytes == 0 {
		t.Fatal("1 MB sites did not spill")
	}
	ample := tight
	ample.MemoryBytes = math.Inf(1)
	resAmple, err := ample.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if resAmple.Response >= res.Response {
		t.Fatalf("ample memory %g not faster than tight %g",
			resAmple.Response, res.Response)
	}
}

func TestFacadeContentionPricing(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(8))
	o := mdrs.Options{Sites: 10, Epsilon: 0.5, F: 0.7}
	s, err := mdrs.ScheduleQuery(plan, o)
	if err != nil {
		t.Fatal(err)
	}
	ov, _ := mdrs.NewOverlap(0.5)
	base, err := mdrs.EvalScheduleWithPenalty(ov, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-s.Response) > 1e-9 {
		t.Fatalf("nil penalty evaluation %g != response %g", base, s.Response)
	}
	heavy, err := mdrs.EvalScheduleWithPenalty(ov, mdrs.DiskPenalty(10), s)
	if err != nil {
		t.Fatal(err)
	}
	if heavy <= base {
		t.Fatalf("γ=10 evaluation %g did not exceed base %g", heavy, base)
	}
}

func TestFacadePipelineSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(6))
	o := mdrs.Options{Sites: 8, Epsilon: 0.5, F: 0.7}
	s, err := mdrs.ScheduleQuery(plan, o)
	if err != nil {
		t.Fatal(err)
	}
	ov, _ := mdrs.NewOverlap(0.5)
	res, err := mdrs.SimulatePipelines(ov, s, mdrs.PipeSimConfig{Steps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated < res.Analytic-1e-9 {
		t.Fatalf("pipeline sim %g below analytic %g", res.Simulated, res.Analytic)
	}
	if res.Ratio() > 1.8 {
		t.Fatalf("pipeline abstraction error ratio %g implausible", res.Ratio())
	}
}

func TestFacadeShapedPlans(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, shape := range []mdrs.Shape{mdrs.RandomBushy, mdrs.LeftDeep, mdrs.RightDeep, mdrs.Balanced} {
		p, err := mdrs.RandomShapedPlan(r, mdrs.DefaultGenConfig(7), shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if p.Joins() != 7 {
			t.Fatalf("%v: joins = %d", shape, p.Joins())
		}
		if _, err := mdrs.ScheduleQuery(p, mdrs.Options{Sites: 8, Epsilon: 0.5, F: 0.7}); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
	}
}

func TestFacadePhasePolicy(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(12))
	_, tt, err := mdrs.PrepareQuery(plan)
	if err != nil {
		t.Fatal(err)
	}
	ov, _ := mdrs.NewOverlap(0.5)
	ts := mdrs.TreeScheduler{Model: mdrs.DefaultCostModel(), Overlap: ov, P: 10, F: 0.7}
	minShelf, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	ts.Policy = mdrs.EarliestShelf
	earliest, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if len(minShelf.Phases) != len(earliest.Phases) {
		t.Fatalf("phase counts differ: %d vs %d",
			len(minShelf.Phases), len(earliest.Phases))
	}
	if earliest.Response <= 0 {
		t.Fatal("earliest-shelf schedule empty")
	}
}

func TestFacadePlanSearch(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	ov, _ := mdrs.NewOverlap(0.5)
	search := mdrs.PlanSearch{
		Model: mdrs.DefaultCostModel(), Overlap: ov, P: 12, F: 0.7, Candidates: 6,
	}
	rels := make([]*mdrs.Relation, 9)
	for i := range rels {
		rels[i] = &mdrs.Relation{Name: string(rune('A' + i)), Tuples: 1000 * (i + 1)}
	}
	res, err := search.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement() < 1 {
		t.Fatalf("improvement %g < 1", res.Improvement())
	}
	if res.Best.Plan.Joins() != 8 {
		t.Fatalf("best plan has %d joins", res.Best.Plan.Joins())
	}
}

func TestFacadeBatchScheduling(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ov, _ := mdrs.NewOverlap(0.5)
	ts := mdrs.TreeScheduler{Model: mdrs.DefaultCostModel(), Overlap: ov, P: 20, F: 0.7}
	var trees []*mdrs.TaskTree
	serial := 0.0
	for q := 0; q < 3; q++ {
		plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(8))
		_, tt, err := mdrs.PrepareQuery(plan)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ts.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		serial += s.Response
		trees = append(trees, tt)
	}
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Response >= serial {
		t.Fatalf("batch %g not better than serial %g", batch.Response, serial)
	}
}

func TestFacadeDeclustering(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ov, _ := mdrs.NewOverlap(0.5)
	ts := mdrs.TreeScheduler{Model: mdrs.DefaultCostModel(), Overlap: ov, P: 10, F: 0.7}
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(6))
	_, tt, err := mdrs.PrepareQuery(plan)
	if err != nil {
		t.Fatal(err)
	}
	homes, err := ts.RandomDeclustering(r, tt)
	if err != nil {
		t.Fatal(err)
	}
	if len(homes) != 7 { // one home per scan (J+1 relations)
		t.Fatalf("declustered %d scans, want 7", len(homes))
	}
	ts.Homes = homes
	if _, err := ts.Schedule(tt); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeScheduleStatsAndRendering(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	plan := mdrs.MustRandomPlan(r, mdrs.DefaultGenConfig(5))
	s, err := mdrs.ScheduleQuery(plan, mdrs.Options{Sites: 6, Epsilon: 0.5, F: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	st := mdrs.ScheduleStats(s)
	if st.Clones == 0 || st.Utilization[mdrs.CPU] <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	data, err := mdrs.EncodeScheduleJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON")
	}
}
