// Package pipesim is a discrete-time simulator of pipelined parallel
// execution. Where internal/sim validates Equation 2 for one site's
// concurrent clones, pipesim validates the paper's *pipeline*
// abstraction itself: Section 5.2 models the operators of a task
// (producer → consumer chains connected by repartitioning exchanges) as
// if they simply ran concurrently, with uniform resource usage over
// each operator's lifetime (assumption A3). This simulator executes the
// dataflow explicitly —
//
//   - every operator clone advances through its input at a rate limited
//     by its site's preemptable resources (equal-stretch processor
//     sharing, as in internal/sim), and
//   - a consumer's progress can never exceed its pipeline producer's
//     progress (tuples must be produced before they are consumed),
//
// — and reports the resulting makespan per phase. Comparing it against
// the analytic Equation 3 response quantifies the model error of
// treating pipelines as unconstrained concurrency: zero when every
// producer keeps ahead of its consumers, small otherwise.
package pipesim

import (
	"fmt"
	"math"

	"mdrs/internal/plan"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Config tunes the simulation granularity.
type Config struct {
	// Steps is the number of time steps used to resolve each phase
	// (higher = more accurate). Defaults to 2000 when zero.
	Steps int
}

func (c Config) steps() int {
	if c.Steps <= 0 {
		return 2000
	}
	return c.Steps
}

// Result compares the analytic phased response with the simulated one.
type Result struct {
	// PhaseAnalytic and PhaseSimulated hold per-phase response times.
	PhaseAnalytic  []float64
	PhaseSimulated []float64
	// Analytic and Simulated are the end-to-end sums.
	Analytic  float64
	Simulated float64
}

// Ratio returns Simulated/Analytic (1 when both are zero).
func (r *Result) Ratio() float64 {
	if r.Analytic == 0 {
		if r.Simulated == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return r.Simulated / r.Analytic
}

// cloneState is one operator clone in the current phase.
type cloneState struct {
	opIdx    int
	site     int
	rate     vector.Vector // resource consumption rates when unslowed
	tseq     float64       // standalone duration
	progress float64       // in [0, 1]
}

// opState is one operator in the current phase.
type opState struct {
	op       *plan.Operator
	producer int // index into the phase's op list; -1 for none
	clones   []*cloneState
}

// Simulate replays a schedule under explicit pipeline dataflow.
func Simulate(ov resource.Overlap, s *sched.Schedule, cfg Config) (*Result, error) {
	res := &Result{}
	for _, ph := range s.Phases {
		analytic := ph.Response
		simulated, err := simulatePhase(ov, s.P, ph, cfg.steps())
		if err != nil {
			return nil, fmt.Errorf("pipesim: phase %d: %w", ph.Index, err)
		}
		res.PhaseAnalytic = append(res.PhaseAnalytic, analytic)
		res.PhaseSimulated = append(res.PhaseSimulated, simulated)
		res.Analytic += analytic
		res.Simulated += simulated
	}
	return res, nil
}

func simulatePhase(ov resource.Overlap, p int, ph *sched.PhaseSchedule, steps int) (float64, error) {
	// Build op and clone states; wire pipeline producers.
	opIndex := make(map[*plan.Operator]int, len(ph.Placements))
	ops := make([]*opState, 0, len(ph.Placements))
	for _, pl := range ph.Placements {
		opIndex[pl.Op] = len(ops)
		ops = append(ops, &opState{op: pl.Op, producer: -1})
	}
	longest := 0.0
	for i, pl := range ph.Placements {
		st := ops[i]
		for k, w := range pl.Clones {
			t := ov.TSeq(w)
			c := &cloneState{opIdx: i, site: pl.Sites[k], tseq: t}
			if t > 0 {
				c.rate = w.Scale(1 / t)
			} else {
				c.rate = vector.New(w.Dim())
				c.progress = 1
			}
			if t > longest {
				longest = t
			}
			st.clones = append(st.clones, c)
		}
	}
	for i, pl := range ph.Placements {
		// The pipeline producer of this op, if it is scheduled in the
		// same phase (it always is: tasks are wholly within one phase).
		for _, cand := range pl.Op.Task.Ops {
			if cand.Consumer == pl.Op && cand.ConsumerEdge == plan.Pipeline {
				j, ok := opIndex[cand]
				if !ok {
					return 0, fmt.Errorf("producer %q of %q missing from phase",
						cand.Name, pl.Op.Name)
				}
				ops[i].producer = j
			}
		}
	}
	if longest == 0 {
		return 0, nil
	}

	// Time step: resolve the phase at `steps` slices of the analytic
	// response (a safe upper-bound scale for the step size; simulation
	// continues past it if pipelining stretches the phase).
	dt := ph.Response / float64(steps)
	if dt <= 0 {
		dt = longest / float64(steps)
	}

	opProgress := func(i int) float64 {
		st := ops[i]
		min := 1.0
		for _, c := range st.clones {
			if c.progress < min {
				min = c.progress
			}
		}
		return min
	}

	now := 0.0
	maxTime := ph.Response * 100 // divergence guard
	for {
		done := true
		for i := range ops {
			if opProgress(i) < 1-1e-9 {
				done = false
				break
			}
		}
		if done {
			return now, nil
		}
		if now > maxTime {
			return 0, fmt.Errorf("simulation diverged beyond 100x the analytic response")
		}

		// Active clones: unfinished and not starved by their producer.
		demand := make([]vector.Vector, p)
		var active []*cloneState
		for i, st := range ops {
			limit := 1.0
			if st.producer >= 0 {
				limit = opProgress(st.producer)
			}
			for _, c := range st.clones {
				if c.progress >= 1-1e-12 || c.progress >= limit-1e-12 && limit < 1-1e-12 {
					continue
				}
				if c.progress >= 1 {
					continue
				}
				active = append(active, c)
				if demand[c.site] == nil {
					demand[c.site] = vector.New(c.rate.Dim())
				}
				demand[c.site].AddInPlace(c.rate)
			}
			_ = i
		}
		if len(active) == 0 {
			// Everyone is starved: producers finished exactly at their
			// consumers' clamp... advance time minimally to re-evaluate.
			now += dt
			continue
		}

		// Per-site equal-stretch slowdown.
		lambda := make([]float64, p)
		for j := range lambda {
			lambda[j] = 1
			if demand[j] != nil {
				if m := demand[j].Length(); m > 1 {
					lambda[j] = 1 / m
				}
			}
		}
		for _, c := range active {
			dp := lambda[c.site] * dt / c.tseq
			limit := 1.0
			if prod := ops[c.opIdx].producer; prod >= 0 {
				limit = opProgress(prod)
			}
			c.progress += dp
			if c.progress > limit {
				c.progress = limit
			}
			if c.progress > 1 {
				c.progress = 1
			}
		}
		now += dt
	}
}
