package pipesim

import (
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func leaf(name string, tuples int) *query.PlanNode {
	return &query.PlanNode{
		Relation: &query.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

func join(outer, inner *query.PlanNode) *query.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &query.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func schedule(t *testing.T, p *query.PlanNode, sites int, eps float64) *sched.Schedule {
	t.Helper()
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(eps),
		P:       sites,
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleScanMatchesAnalytic(t *testing.T) {
	// One operator, no pipeline constraints: the simulation must agree
	// with the analytic response to step resolution.
	ov := resource.MustOverlap(0.5)
	s := schedule(t, leaf("R", 50000), 4, 0.5)
	res, err := Simulate(ov, s, Config{Steps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Ratio()-1) > 0.01 {
		t.Fatalf("single scan ratio %g, want ~1 (analytic %g, simulated %g)",
			res.Ratio(), res.Analytic, res.Simulated)
	}
}

func TestAnalyticMatchesScheduleResponse(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	s := schedule(t, join(leaf("A", 20000), leaf("B", 8000)), 6, 0.5)
	res, err := Simulate(ov, s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Analytic-s.Response) > 1e-9 {
		t.Fatalf("analytic %g != schedule response %g", res.Analytic, s.Response)
	}
	if len(res.PhaseAnalytic) != len(s.Phases) || len(res.PhaseSimulated) != len(s.Phases) {
		t.Fatal("phase count mismatch")
	}
}

func TestPipelinedScheduleWithinModestBand(t *testing.T) {
	// The pipeline constraint can stretch phases (a consumer cannot
	// outrun its producer), but on balanced schedules the error of the
	// paper's concurrency abstraction stays small.
	r := rand.New(rand.NewSource(3))
	ov := resource.MustOverlap(0.5)
	for trial := 0; trial < 4; trial++ {
		p := query.MustRandom(r, query.DefaultGenConfig(8))
		s := schedule(t, p, 12, 0.5)
		res, err := Simulate(ov, s, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Simulated < res.Analytic*0.99 {
			t.Fatalf("trial %d: simulated %g below analytic %g — pipelining cannot speed things up",
				trial, res.Simulated, res.Analytic)
		}
		if res.Ratio() > 1.6 {
			t.Fatalf("trial %d: ratio %g — pipeline abstraction error implausibly large",
				trial, res.Ratio())
		}
	}
}

func TestSlowProducerStallsConsumer(t *testing.T) {
	// Craft a schedule by hand: a big scan feeding a small build on
	// disjoint sites. The build alone is fast, but it cannot finish
	// before the scan does.
	ov := resource.MustOverlap(0.5)
	p := join(leaf("A", 1000), leaf("B", 80000))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       8,
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ov, s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 0 holds {scan(B) build(J0)}; the simulated phase must be at
	// least the scan's parallel time (its producer pace bounds the
	// build).
	var scanTPar float64
	for _, pl := range s.Phases[0].Placements {
		if pl.Op.Kind == costmodel.Scan {
			scanTPar = pl.TPar
		}
	}
	if res.PhaseSimulated[0] < scanTPar*0.99 {
		t.Fatalf("phase 0 simulated %g below producer T^par %g",
			res.PhaseSimulated[0], scanTPar)
	}
}

func TestRatioEdgeCases(t *testing.T) {
	r := &Result{}
	if r.Ratio() != 1 {
		t.Fatalf("empty ratio = %g", r.Ratio())
	}
	r.Simulated = 1
	if !math.IsInf(r.Ratio(), 1) {
		t.Fatalf("ratio with zero analytic = %g", r.Ratio())
	}
}

func TestStepsDefault(t *testing.T) {
	if (Config{}).steps() != 2000 || (Config{Steps: 10}).steps() != 10 {
		t.Fatal("step defaulting wrong")
	}
}

func TestFinerStepsConverge(t *testing.T) {
	ov := resource.MustOverlap(0.3)
	s := schedule(t, join(leaf("A", 30000), leaf("B", 10000)), 6, 0.3)
	coarse, err := Simulate(ov, s, Config{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Simulate(ov, s, Config{Steps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Finer resolution must not move the result by more than the coarse
	// step size would suggest.
	if math.Abs(coarse.Simulated-fine.Simulated) > coarse.Analytic*0.05 {
		t.Fatalf("no convergence: coarse %g, fine %g", coarse.Simulated, fine.Simulated)
	}
}

func BenchmarkPipeSim(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := query.MustRandom(r, query.DefaultGenConfig(10))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	ov := resource.MustOverlap(0.5)
	s, err := sched.TreeScheduler{
		Model: costmodel.Default(), Overlap: ov, P: 16, F: 0.7,
	}.Schedule(tt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(ov, s, Config{Steps: 500}); err != nil {
			b.Fatal(err)
		}
	}
}
