package memsched

import (
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

func tracedScheduler(memBytes float64, rec obs.Recorder) Scheduler {
	return Scheduler{
		Model:       costmodel.Default(),
		Overlap:     resource.MustOverlap(0.5),
		P:           6,
		F:           0.7,
		MemoryBytes: memBytes,
		Rec:         rec,
	}
}

func memTree(t *testing.T, seed int64, joins int) *plan.TaskTree {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := query.MustRandom(r, query.DefaultGenConfig(joins))
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

// TestTraceCoversPlacementsAndSpills pins the memsched trace contract:
// every clone placement appears as a place event, and under a tight
// memory capacity the spill decisions appear as mem_split events whose
// spilled bytes sum to the schedule's own accounting.
func TestTraceCoversPlacementsAndSpills(t *testing.T) {
	tt := memTree(t, 3, 6)
	cap := obs.NewCapture()
	met := obs.NewMetrics()
	res, err := tracedScheduler(64<<10, obs.Multi(cap, met)).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpilledBytes == 0 {
		t.Fatal("workload did not spill; tighten the capacity for this test")
	}

	places := obs.TraceAssignments(cap.Events())
	want := 0
	spilled := 0.0
	for _, ph := range res.Phases {
		for _, pl := range ph.Placements {
			for k, site := range pl.Sites {
				want++
				if got := places[obs.PlaceKey{Phase: ph.Index, Op: pl.Op.ID, Clone: k}]; got != site {
					t.Fatalf("phase %d op %d clone %d: trace site %d != schedule site %d",
						ph.Index, pl.Op.ID, k, got, site)
				}
			}
		}
	}
	if len(places) != want {
		t.Fatalf("trace has %d placements, schedule has %d", len(places), want)
	}
	for _, e := range cap.Events() {
		if e.Type == obs.EvMemSplit {
			spilled += e.Spilled
			if e.Sigma <= 0 || e.Sigma > 1 {
				t.Fatalf("spill fraction out of range: %+v", e)
			}
			if e.Bytes <= e.Free {
				t.Fatalf("mem_split for a fitting table: %+v", e)
			}
		}
	}
	if math.Abs(spilled-res.TotalSpilledBytes) > 1e-6*res.TotalSpilledBytes {
		t.Fatalf("traced spills %g != scheduled spills %g", spilled, res.TotalSpilledBytes)
	}
	snap := met.Snapshot()
	if snap.Counters["memsched.spills"] == 0 {
		t.Fatal("spill counter not incremented")
	}
	if snap.Histograms["memsched.peak_bytes"].Count != int64(len(res.Phases)) {
		t.Fatalf("peak memory samples: %+v", snap.Histograms["memsched.peak_bytes"])
	}
}

// TestRecorderDoesNotChangeMemSchedule pins that tracing never steers a
// memory-aware placement or spill decision.
func TestRecorderDoesNotChangeMemSchedule(t *testing.T) {
	for _, memBytes := range []float64{0, 64 << 10, 1 << 20} {
		plain, err := tracedScheduler(memBytes, nil).Schedule(memTree(t, 5, 5))
		if err != nil {
			t.Fatal(err)
		}
		traced, err := tracedScheduler(memBytes, obs.NewCapture()).Schedule(memTree(t, 5, 5))
		if err != nil {
			t.Fatal(err)
		}
		if plain.Response != traced.Response ||
			plain.TotalSpilledBytes != traced.TotalSpilledBytes {
			t.Fatalf("capacity %g: traced run diverged: response %g vs %g, spill %g vs %g",
				memBytes, plain.Response, traced.Response,
				plain.TotalSpilledBytes, traced.TotalSpilledBytes)
		}
	}
}
