package memsched

import (
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func testScheduler(p int, memBytes float64) Scheduler {
	return Scheduler{
		Model:       costmodel.Default(),
		Overlap:     resource.MustOverlap(0.5),
		P:           p,
		F:           0.7,
		MemoryBytes: memBytes,
	}
}

func taskTree(t *testing.T, joins int, seed int64) *plan.TaskTree {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := query.MustRandom(r, query.DefaultGenConfig(joins))
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

func TestValidate(t *testing.T) {
	if err := testScheduler(8, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scheduler{
		{Model: costmodel.Default(), P: 0, F: 0.7},
		{Model: costmodel.Default(), P: 4, F: -1},
		{Model: costmodel.Default(), P: 4, F: 0.7, TableOverhead: -1},
		{P: 4, F: 0.7},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInfiniteMemoryMatchesTreeSchedule(t *testing.T) {
	// With capacity = +Inf the memory-aware scheduler must reproduce the
	// base TreeSchedule exactly — assumption A1 recovered.
	for seed := int64(0); seed < 5; seed++ {
		tt := taskTree(t, 12, seed)
		base, err := sched.TreeScheduler{
			Model:   costmodel.Default(),
			Overlap: resource.MustOverlap(0.5),
			P:       16, F: 0.7,
		}.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := testScheduler(16, math.Inf(1)).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(base.Response-mem.Response) > 1e-9 {
			t.Fatalf("seed %d: base %g != infinite-memory %g",
				seed, base.Response, mem.Response)
		}
		if mem.TotalSpilledBytes != 0 {
			t.Fatalf("seed %d: spilled %g bytes with infinite memory",
				seed, mem.TotalSpilledBytes)
		}
	}
}

func TestZeroCapacityMeansInfinite(t *testing.T) {
	tt := taskTree(t, 6, 1)
	a, err := testScheduler(8, 0).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testScheduler(8, math.Inf(1)).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Response != b.Response {
		t.Fatalf("zero capacity %g != infinite %g", a.Response, b.Response)
	}
}

func TestTightMemoryCausesSpills(t *testing.T) {
	tt := taskTree(t, 10, 3)
	// 1 MB per site is far below typical table shares (relations up to
	// 100k tuples × 128 B ≈ 12.8 MB, split across ≤ 8 sites).
	res, err := testScheduler(8, 1<<20).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpilledBytes == 0 {
		t.Fatal("no spills under 1 MB/site")
	}
	ample, err := testScheduler(8, math.Inf(1)).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response <= ample.Response {
		t.Fatalf("spilling did not cost anything: tight %g, ample %g",
			res.Response, ample.Response)
	}
}

func TestResponseMonotoneInMemory(t *testing.T) {
	// More memory never hurts: response is non-increasing (within list
	// scheduling noise) as capacity grows.
	tt := taskTree(t, 10, 5)
	caps := []float64{1 << 20, 8 << 20, 64 << 20, math.Inf(1)}
	prev := math.Inf(1)
	for _, c := range caps {
		res, err := testScheduler(8, c).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Response > prev*1.05 {
			t.Fatalf("capacity %g worsened response: %g -> %g", c, prev, res.Response)
		}
		prev = res.Response
	}
}

func TestSpillsShrinkWithMemory(t *testing.T) {
	tt := taskTree(t, 10, 5)
	tight, err := testScheduler(8, 1<<20).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := testScheduler(8, 32<<20).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if roomy.TotalSpilledBytes >= tight.TotalSpilledBytes {
		t.Fatalf("32 MB spills %g >= 1 MB spills %g",
			roomy.TotalSpilledBytes, tight.TotalSpilledBytes)
	}
}

func TestPeakMemoryWithinCapacity(t *testing.T) {
	tt := taskTree(t, 12, 7)
	cap := 16.0 * (1 << 20)
	res, err := testScheduler(8, cap).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range res.Phases {
		if ph.PeakMemory > cap+1e-6 {
			t.Fatalf("phase %d peak memory %g exceeds capacity %g",
				ph.Index, ph.PeakMemory, cap)
		}
	}
}

func TestProbesStillRootedAtBuilds(t *testing.T) {
	tt := taskTree(t, 8, 9)
	res, err := testScheduler(6, 4<<20).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[*plan.Operator]*Placement{}
	for _, ph := range res.Phases {
		for _, pl := range ph.Placements {
			byOp[pl.Op] = pl
		}
	}
	for op, pl := range byOp {
		if op.BuildOp == nil {
			continue
		}
		build := byOp[op.BuildOp]
		if build == nil {
			t.Fatalf("build of %s unplaced", op.Name)
		}
		for k := range pl.Sites {
			if pl.Sites[k] != build.Sites[k] {
				t.Fatalf("%s clone %d at %d, build clone at %d",
					op.Name, k, pl.Sites[k], build.Sites[k])
			}
		}
	}
}

func TestResponseIsSumOfPhases(t *testing.T) {
	tt := taskTree(t, 10, 11)
	res, err := testScheduler(8, 8<<20).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, ph := range res.Phases {
		sum += ph.Response
	}
	if math.Abs(sum-res.Response) > 1e-9 {
		t.Fatalf("response %g != phase sum %g", res.Response, sum)
	}
}

func TestSpillVectorAccounting(t *testing.T) {
	s := testScheduler(4, 1)
	p := s.Model.Params
	bytes := float64(100 * p.PageTuples * p.TupleBytes) // exactly 100 pages
	w := s.spillVector(bytes)
	wantDisk := 2 * 100 * p.DiskPageTime
	if math.Abs(w[resource.Disk]-wantDisk) > 1e-9 {
		t.Fatalf("spill disk = %g, want %g", w[resource.Disk], wantDisk)
	}
	wantCPU := 100 * (p.WritePageInstr + p.ReadPageInstr) / 1e6
	if math.Abs(w[resource.CPU]-wantCPU) > 1e-9 {
		t.Fatalf("spill CPU = %g, want %g", w[resource.CPU], wantCPU)
	}
	if w[resource.Net] != 0 {
		t.Fatalf("spill net = %g, want 0", w[resource.Net])
	}
}

func TestDeterministic(t *testing.T) {
	tt := taskTree(t, 10, 13)
	s := testScheduler(8, 4<<20)
	a, err := s.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Response != b.Response || a.TotalSpilledBytes != b.TotalSpilledBytes {
		t.Fatal("non-deterministic memory-aware schedule")
	}
}

func BenchmarkMemoryAwareSchedule(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := query.MustRandom(r, query.DefaultGenConfig(20))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	s := testScheduler(32, 16<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(tt); err != nil {
			b.Fatal(err)
		}
	}
}
