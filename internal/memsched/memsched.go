// Package memsched extends the paper's framework with the first open
// problem its conclusions pose: scheduling under a NON-preemptable
// resource — memory. The base model (assumption A1) grants every build
// unlimited memory for its hash table; here each site has a fixed
// memory capacity, hash tables occupy real space for their whole
// lifetime (from the build's phase through the probe's phase, under the
// MinShelf split exactly two phases), and placements that do not fit
// pay a hybrid-hash-style spill penalty instead of silently violating
// the capacity:
//
//   - a build clone whose table share does not fit at its site spills a
//     fraction σ of its input to disk and re-reads it, adding
//     σ·(write + read) page I/O and the corresponding CPU work to both
//     the build's and the matching probe's clone vectors;
//   - placement prefers memory-feasible sites: the list-scheduling rule
//     is unchanged except that sites lacking free memory for the clone
//     are considered only when no feasible site exists, and then the
//     site with the largest free memory (smallest spill) among the
//     least-loaded is used.
//
// With capacity = +Inf the scheduler reproduces TreeSchedule exactly, a
// property the tests pin down; as capacity shrinks the response time
// degrades smoothly through spill I/O rather than failing.
package memsched

import (
	"fmt"
	"math"
	"sort"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Scheduler is a memory-aware TreeSchedule.
type Scheduler struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// P is the number of system sites.
	P int
	// F is the coarse-granularity parameter.
	F float64
	// MemoryBytes is the per-site memory capacity available for hash
	// tables. Use math.Inf(1) (or <= 0, treated as infinite) to recover
	// the paper's assumption A1.
	MemoryBytes float64
	// TableOverhead scales a hash table's footprint relative to its raw
	// input bytes (buckets, pointers). Defaults to 1.2 when zero.
	TableOverhead float64
	// Rec, when non-nil, receives the decision trace — placements plus
	// the memory splits (spill decisions) unique to this scheduler —
	// and aggregate counters. Nil disables recording.
	Rec obs.Recorder
}

// Validate reports the first nonsensical configuration field.
func (s Scheduler) Validate() error {
	if err := s.Model.Params.Validate(); err != nil {
		return err
	}
	if s.P <= 0 {
		return fmt.Errorf("memsched: non-positive site count %d", s.P)
	}
	if s.F < 0 {
		return fmt.Errorf("memsched: negative granularity parameter %g", s.F)
	}
	if s.TableOverhead < 0 {
		return fmt.Errorf("memsched: negative table overhead %g", s.TableOverhead)
	}
	return nil
}

func (s Scheduler) capacity() float64 {
	if s.MemoryBytes <= 0 {
		return math.Inf(1)
	}
	return s.MemoryBytes
}

func (s Scheduler) overhead() float64 {
	if s.TableOverhead == 0 {
		return 1.2
	}
	return s.TableOverhead
}

// Placement extends the base OpPlacement with memory accounting.
type Placement struct {
	sched.OpPlacement
	// TableBytes is the per-clone hash-table footprint (builds only).
	TableBytes float64
	// SpilledBytes is the total bytes spilled across clones (builds
	// only; zero when everything fit).
	SpilledBytes float64
}

// PhaseResult is one phase of the memory-aware schedule.
type PhaseResult struct {
	Index      int
	Placements []*Placement
	Response   float64
	// PeakMemory is the largest per-site memory residency observed
	// during the phase (bytes).
	PeakMemory float64
}

// Result is the complete memory-aware schedule.
type Result struct {
	Phases   []*PhaseResult
	Response float64
	// TotalSpilledBytes sums spills over all builds.
	TotalSpilledBytes float64
	P                 int
}

// reservation tracks one live hash table's footprint at a site.
type reservation struct {
	site  int
	bytes float64
	// until is the phase index after which the reservation is released
	// (the probe's phase).
	until int
}

// Schedule runs the memory-aware TreeSchedule over a task tree.
func (s Scheduler) Schedule(tt *plan.TaskTree) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := tt.Validate(); err != nil {
		return nil, err
	}

	cap := s.capacity()
	out := &Result{P: s.P}
	homes := make(map[*plan.Operator][]int)
	// spillWork[probe] accumulates extra per-clone disk/CPU work the
	// probe inherits from its build's spill, keyed by clone index.
	spillWork := make(map[*plan.Operator][]vector.Vector)
	var live []reservation

	phases := tt.Phases()
	for phaseIdx, tasks := range phases {
		// Free reservations whose lifetime ended before this phase.
		kept := live[:0]
		for _, r := range live {
			if r.until >= phaseIdx {
				kept = append(kept, r)
			}
		}
		live = kept

		// Free memory per site at phase start.
		freeMem := make([]float64, s.P)
		for j := range freeMem {
			freeMem[j] = cap
		}
		for _, r := range live {
			freeMem[r.site] -= r.bytes
		}

		ph, newLive, err := s.schedulePhase(phaseIdx, tasks, homes, freeMem, spillWork)
		if err != nil {
			return nil, err
		}
		live = append(live, newLive...)
		out.Phases = append(out.Phases, ph)
		out.Response += ph.Response
		for _, pl := range ph.Placements {
			out.TotalSpilledBytes += pl.SpilledBytes
		}
	}
	return out, nil
}

// schedulePhase places one phase's operators with memory-aware list
// scheduling and returns the phase result plus the new reservations.
func (s Scheduler) schedulePhase(phaseIdx int, tasks []*plan.Task,
	homes map[*plan.Operator][]int, freeMem []float64,
	spillWork map[*plan.Operator][]vector.Vector) (*PhaseResult, []reservation, error) {

	type item struct {
		op       *plan.Operator
		clone    int
		w        vector.Vector
		rootedAt int // -1 when floating
		table    float64
	}

	// Prepare all clones of the phase.
	var items []item
	placements := make(map[*plan.Operator]*Placement)
	var order []*plan.Operator
	for _, tk := range tasks {
		for _, op := range tk.Ops {
			cost := s.Model.Cost(op.Spec)
			var home []int
			if op.BuildOp != nil {
				h, ok := homes[op.BuildOp]
				if !ok {
					return nil, nil, fmt.Errorf("memsched: phase %d: probe %q before its build",
						phaseIdx, op.Name)
				}
				home = h
			}
			var n int
			if home != nil {
				n = len(home)
			} else {
				n = s.Model.Degree(cost, s.F, s.P, s.Overlap)
				if op.Kind == costmodel.Build && op.Consumer != nil {
					probeCost := s.Model.Cost(op.Consumer.Spec)
					if pn := s.Model.Degree(probeCost, s.F, s.P, s.Overlap); pn < n {
						n = pn
					}
				}
			}
			clones := s.Model.Clones(cost, n)
			// Fold in spill work inherited from this probe's build.
			if extra := spillWork[op]; extra != nil {
				for k := range clones {
					if k < len(extra) {
						clones[k].AddInPlace(extra[k])
					}
				}
			}
			var table float64
			if op.Kind == costmodel.Build {
				table = s.Model.Params.Bytes(op.Spec.InTuples) * s.overhead() / float64(n)
			}
			pl := &Placement{
				OpPlacement: sched.OpPlacement{
					Op: op, Degree: n, Clones: clones,
					Rooted: home != nil,
					Sites:  make([]int, n),
				},
				TableBytes: table,
			}
			placements[op] = pl
			order = append(order, op)
			for k, w := range clones {
				it := item{op: op, clone: k, w: w, rootedAt: -1, table: table}
				if home != nil {
					it.rootedAt = home[k]
				}
				items = append(items, it)
			}
		}
	}

	if s.Rec != nil {
		s.Rec.Event(obs.Event{
			Type: obs.EvPhaseOpen, Phase: phaseIdx,
			Ops: len(order), Clones: len(items),
		})
	}

	sys := resource.NewSystem(s.P, resource.Dims, s.Overlap)
	used := make(map[*plan.Operator]map[int]bool)
	for op := range placements {
		used[op] = map[int]bool{}
	}
	var newLive []reservation

	place := func(it item, site int) {
		pl := placements[it.op]
		if s.Rec != nil {
			st := sys.Site(site)
			s.Rec.Event(obs.Event{
				Type: obs.EvPlace, Phase: phaseIdx, Op: it.op.ID,
				Name: it.op.Name, Clone: it.clone, Site: site,
				Rooted: it.rootedAt >= 0,
				L:      st.LoadLength(), Sum: st.LoadSum(),
			})
		}
		// A build clone that does not fit spills the surplus fraction of
		// its input: charge write+read of the spilled pages (disk) and
		// the page I/O CPU to this clone, and the re-read to the probe's
		// matching clone.
		w := it.w
		if it.op.Kind == costmodel.Build && it.table > 0 {
			free := freeMem[site]
			if free < it.table {
				deficit := it.table - math.Max(free, 0)
				sigma := deficit / it.table
				spilledBytes := sigma * s.Model.Params.Bytes(it.op.Spec.InTuples) / float64(pl.Degree)
				pl.SpilledBytes += spilledBytes
				if s.Rec != nil {
					s.Rec.Count("memsched.spills", 1)
					s.Rec.Observe("memsched.spilled_bytes", spilledBytes)
					s.Rec.Event(obs.Event{
						Type: obs.EvMemSplit, Phase: phaseIdx, Op: it.op.ID,
						Name: it.op.Name, Clone: it.clone, Site: site,
						Bytes: it.table, Free: math.Max(free, 0),
						Spilled: spilledBytes, Sigma: sigma,
					})
				}
				spillVec := s.spillVector(spilledBytes)
				w = w.Add(spillVec)
				pl.Clones[it.clone] = w
				if probe := it.op.Consumer; probe != nil {
					extra := spillWork[probe]
					if extra == nil {
						extra = make([]vector.Vector, pl.Degree)
						for i := range extra {
							extra[i] = vector.New(resource.Dims)
						}
						spillWork[probe] = extra
					}
					extra[it.clone].AddInPlace(spillVec)
				}
				freeMem[site] = 0
				newLive = append(newLive, reservation{site: site, bytes: math.Max(free, 0), until: phaseIdx + 1})
			} else {
				freeMem[site] -= it.table
				newLive = append(newLive, reservation{site: site, bytes: it.table, until: phaseIdx + 1})
			}
		}
		sys.Site(site).Assign(w)
		used[it.op][site] = true
		pl.Sites[it.clone] = site
	}

	// Rooted clones first (Figure 3 step 1).
	var floating []item
	for _, it := range items {
		if it.rootedAt >= 0 {
			place(it, it.rootedAt)
		} else {
			floating = append(floating, it)
		}
	}

	// Floating clones in non-increasing l(w̄); the memory-aware twist:
	// among allowable sites prefer memory-feasible ones, then least
	// loaded, then more free memory.
	sort.SliceStable(floating, func(i, j int) bool {
		a, b := floating[i], floating[j]
		la, lb := a.w.Length(), b.w.Length()
		if la != lb {
			return la > lb
		}
		if a.op.ID != b.op.ID {
			return a.op.ID < b.op.ID
		}
		return a.clone < b.clone
	})
	for _, it := range floating {
		bans := used[it.op]
		best := -1
		bestFeasible := false
		bestLoad, bestSum, bestFree := 0.0, 0.0, 0.0
		for j := 0; j < s.P; j++ {
			if bans[j] {
				continue
			}
			feasible := it.table == 0 || freeMem[j] >= it.table
			load := sys.Site(j).LoadLength()
			sum := sys.Site(j).LoadSum()
			free := freeMem[j]
			// Exact lexicographic (feasible, l, sum, free desc, site)
			// comparison, mirroring internal/sched's placement key: no
			// epsilon window, so near-ties cannot chain and equal keys
			// break on the smaller site index (the ascending scan keeps
			// the earlier site).
			better := false
			switch {
			case best < 0:
				better = true
			case feasible != bestFeasible:
				better = feasible
			case load != bestLoad:
				better = load < bestLoad
			case sum != bestSum:
				better = sum < bestSum
			case free != bestFree:
				better = free > bestFree
			}
			if better {
				best, bestFeasible, bestLoad, bestSum, bestFree = j, feasible, load, sum, free
			}
		}
		if best < 0 {
			return nil, nil, fmt.Errorf("memsched: no allowable site for %q clone %d",
				it.op.Name, it.clone)
		}
		place(it, best)
	}

	ph := &PhaseResult{Index: phaseIdx, Response: sys.MaxTSite()}
	for _, op := range order {
		pl := placements[op]
		homes[op] = pl.Sites
		ph.Placements = append(ph.Placements, pl)
	}
	// Peak residency: capacity minus the minimum free memory.
	cap := s.capacity()
	if !math.IsInf(cap, 1) {
		for j := 0; j < s.P; j++ {
			if used := cap - freeMem[j]; used > ph.PeakMemory {
				ph.PeakMemory = used
			}
		}
	}
	if s.Rec != nil {
		s.Rec.Observe("memsched.peak_bytes", ph.PeakMemory)
		s.Rec.Event(obs.Event{
			Type: obs.EvPhaseClose, Phase: phaseIdx, Response: ph.Response,
		})
	}
	return ph, newLive, nil
}

// spillVector returns the extra work of spilling and re-reading the
// given bytes: a page write plus a page read on disk and their CPU cost.
func (s Scheduler) spillVector(bytes float64) vector.Vector {
	p := s.Model.Params
	pages := bytes / float64(p.PageTuples*p.TupleBytes)
	w := vector.New(resource.Dims)
	w[resource.Disk] = 2 * pages * p.DiskPageTime
	w[resource.CPU] = pages * (p.WritePageInstr + p.ReadPageInstr) / (p.MIPS * 1e6)
	return w
}
