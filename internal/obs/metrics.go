package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every histogram: bucket 0
// catches samples below histFloor, bucket i covers
// [histFloor·2^(i-1), histFloor·2^i), and the last bucket is unbounded
// above. 64 power-of-two buckets starting at 1e-9 span from nanoseconds
// to ~5.8·10^9 seconds, so any duration or byte count the repository
// produces lands inside the fixed range — the histogram's memory is
// bounded no matter how many samples it absorbs.
const (
	histBuckets = 64
	histFloor   = 1e-9
)

// histogram is one bounded distribution: exact count/sum/min/max plus
// the fixed geometric buckets quantiles are estimated from. Every field
// is updated with lock-free atomics so concurrent Observe calls on the
// serve hot path never serialize on a mutex: count and the buckets are
// plain atomic adds, and sum/min/max are CAS loops over the float's
// IEEE-754 bits. A snapshot taken mid-update may therefore be slightly
// torn across fields (count ahead of sum by an in-flight sample); at
// quiescence every field is exact, which is when tests and reports
// read them.
type histogram struct {
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
	min     atomic.Uint64 // float64 bits, +Inf until the first sample
	max     atomic.Uint64 // float64 bits, -Inf until the first sample
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *histogram {
	h := &histogram{}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v float64) int {
	if v < histFloor || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		// int(+Inf) is implementation-defined; pin it to the top bucket.
		return histBuckets - 1
	}
	i := int(math.Floor(math.Log2(v/histFloor))) + 1
	if i < 1 {
		i = 1
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the upper bound of bucket i (the value quantile
// estimates report for samples landing in it).
func bucketUpper(i int) float64 {
	if i <= 0 {
		return histFloor
	}
	return histFloor * math.Pow(2, float64(i))
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// lowerFloat atomically lowers the float64 stored in bits to v if v is
// smaller (NaN comparisons are false, so a NaN sample leaves min/max
// untouched — matching the previous mutex implementation only when NaN
// is not the first sample; quantile clamping keeps NaN out of reports
// either way).
func lowerFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if !(v < math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// raiseFloat atomically raises the float64 stored in bits to v if v is
// larger.
func raiseFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if !(v > math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (h *histogram) observe(v float64) {
	lowerFloat(&h.min, v)
	raiseFloat(&h.max, v)
	h.count.Add(1)
	addFloat(&h.sum, v)
	h.buckets[bucketOf(v)].Add(1)
}

// snapshot copies the histogram's atomics into the plain struct the
// quantile math runs over.
type histSnapshot struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func (h *histogram) snapshot() histSnapshot {
	s := histSnapshot{
		count: h.count.Load(),
		sum:   math.Float64frombits(h.sum.Load()),
		min:   math.Float64frombits(h.min.Load()),
		max:   math.Float64frombits(h.max.Load()),
	}
	for i := range s.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// quantile estimates the q-quantile (q in [0,1]) from the buckets,
// clamped to the exact observed [min, max] range.
func (h histSnapshot) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// HistogramStats is the JSON-ready summary of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a point-in-time copy of a Metrics recorder, suitable for
// JSON encoding (mdrs-bench -metrics) and expvar publication.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Metrics aggregates counters and bounded histograms in memory. The
// zero value is NOT usable; construct with NewMetrics. All methods are
// safe for concurrent use and tolerate a nil receiver (no-op), so a
// typed-nil *Metrics behind the Recorder interface stays harmless.
//
// Count and Observe are contention-free on the steady-state path: each
// counter is one atomic.Int64 and each histogram is a block of atomics,
// both reached through a sync.Map that degenerates to a lock-free read
// once the name has been seen — concurrent recorders on different (or
// the same) names never serialize on a shared mutex, so a Metrics
// recorder can sit under the serve layer's hot path without becoming
// the bottleneck the scheduler just lost.
type Metrics struct {
	counts sync.Map // string -> *atomic.Int64
	hists  sync.Map // string -> *histogram
}

// NewMetrics returns an empty aggregate recorder.
func NewMetrics() *Metrics {
	return &Metrics{}
}

// Count implements Recorder.
func (m *Metrics) Count(name string, delta int64) {
	if m == nil {
		return
	}
	c, ok := m.counts.Load(name)
	if !ok {
		c, _ = m.counts.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(delta)
}

// Observe implements Recorder.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	h, ok := m.hists.Load(name)
	if !ok {
		h, _ = m.hists.LoadOrStore(name, newHistogram())
	}
	h.(*histogram).observe(v)
}

// Event implements Recorder: metrics reduce the decision trace to one
// counter per event type.
func (m *Metrics) Event(e Event) {
	if m == nil {
		return
	}
	m.Count("trace."+e.Type, 1)
}

// Snapshot returns a deep copy of the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramStats{},
	}
	if m == nil {
		return s
	}
	m.counts.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	m.hists.Range(func(k, v any) bool {
		h := v.(*histogram).snapshot()
		if h.count == 0 {
			// Raced a first Observe between map insert and sample; skip
			// rather than report ±Inf min/max.
			return true
		}
		s.Histograms[k.(string)] = HistogramStats{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			Mean: h.sum / float64(h.count),
			P50:  h.quantile(0.50), P90: h.quantile(0.90),
			P99: h.quantile(0.99), P999: h.quantile(0.999),
		}
		return true
	})
	return s
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys, so the output is stable for diffing).
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// CounterNames returns the sorted counter names, for deterministic
// iteration in tests and renderers.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
