package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// histBuckets is the fixed bucket count of every histogram: bucket 0
// catches samples below histFloor, bucket i covers
// [histFloor·2^(i-1), histFloor·2^i), and the last bucket is unbounded
// above. 64 power-of-two buckets starting at 1e-9 span from nanoseconds
// to ~5.8·10^9 seconds, so any duration or byte count the repository
// produces lands inside the fixed range — the histogram's memory is
// bounded no matter how many samples it absorbs.
const (
	histBuckets = 64
	histFloor   = 1e-9
)

// histogram is one bounded distribution: exact count/sum/min/max plus
// the fixed geometric buckets quantiles are estimated from.
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v float64) int {
	if v < histFloor || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		// int(+Inf) is implementation-defined; pin it to the top bucket.
		return histBuckets - 1
	}
	i := int(math.Floor(math.Log2(v/histFloor))) + 1
	if i < 1 {
		i = 1
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the upper bound of bucket i (the value quantile
// estimates report for samples landing in it).
func bucketUpper(i int) float64 {
	if i <= 0 {
		return histFloor
	}
	return histFloor * math.Pow(2, float64(i))
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// quantile estimates the q-quantile (q in [0,1]) from the buckets,
// clamped to the exact observed [min, max] range.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// HistogramStats is the JSON-ready summary of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of a Metrics recorder, suitable for
// JSON encoding (mdrs-bench -metrics) and expvar publication.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Metrics aggregates counters and bounded histograms in memory. The
// zero value is NOT usable; construct with NewMetrics. All methods are
// safe for concurrent use and tolerate a nil receiver (no-op), so a
// typed-nil *Metrics behind the Recorder interface stays harmless.
type Metrics struct {
	mu     sync.Mutex
	counts map[string]int64
	hists  map[string]*histogram
}

// NewMetrics returns an empty aggregate recorder.
func NewMetrics() *Metrics {
	return &Metrics{
		counts: make(map[string]int64),
		hists:  make(map[string]*histogram),
	}
}

// Count implements Recorder.
func (m *Metrics) Count(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counts[name] += delta
	m.mu.Unlock()
}

// Observe implements Recorder.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histogram{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Event implements Recorder: metrics reduce the decision trace to one
// counter per event type.
func (m *Metrics) Event(e Event) {
	if m == nil {
		return
	}
	m.Count("trace."+e.Type, 1)
}

// Snapshot returns a deep copy of the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramStats{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counts {
		s.Counters[k] = v
	}
	for k, h := range m.hists {
		mean := 0.0
		if h.count > 0 {
			mean = h.sum / float64(h.count)
		}
		s.Histograms[k] = HistogramStats{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Mean: mean,
			P50: h.quantile(0.50), P90: h.quantile(0.90), P99: h.quantile(0.99),
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys, so the output is stable for diffing).
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// CounterNames returns the sorted counter names, for deterministic
// iteration in tests and renderers.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
