package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Tracer streams every Event as one JSON line to an io.Writer — the
// decision-trace format behind `mdrs-sched -trace`. Counters and
// histogram samples are not part of the trace and are dropped; pair the
// Tracer with a Metrics recorder via Multi when both are wanted.
// Methods are safe for concurrent use and tolerate a nil receiver.
type Tracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
}

// NewTracer returns a Tracer writing JSONL to w. Call Flush before the
// underlying writer is closed.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Count implements Recorder (dropped; not part of the trace).
func (t *Tracer) Count(string, int64) {}

// Observe implements Recorder (dropped; not part of the trace).
func (t *Tracer) Observe(string, float64) {}

// Event implements Recorder: one JSON line per event, with Seq assigned
// in emission order. The first write error sticks and is reported by
// Flush/Err; later events are dropped.
func (t *Tracer) Event(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	e.Seq = t.seq
	t.err = t.enc.Encode(e)
}

// Flush drains the buffer and returns the first error seen, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the first write error seen, without flushing.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Capture buffers events in memory, for tests and for pretty-printing a
// trace after the run. The zero value is ready to use. Methods are safe
// for concurrent use and tolerate a nil receiver.
type Capture struct {
	mu     sync.Mutex
	events []Event
}

// NewCapture returns an empty in-memory event buffer.
func NewCapture() *Capture { return &Capture{} }

// Count implements Recorder (dropped).
func (c *Capture) Count(string, int64) {}

// Observe implements Recorder (dropped).
func (c *Capture) Observe(string, float64) {}

// Event implements Recorder.
func (c *Capture) Event(e Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.seqLocked(&c.events[len(c.events)-1])
	c.mu.Unlock()
}

// seqLocked assigns the next sequence number (emission order, 1-based).
func (c *Capture) seqLocked(e *Event) { e.Seq = int64(len(c.events)) }

// Events returns a copy of the captured events in emission order.
func (c *Capture) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// ReadTrace parses a JSONL decision trace (the Tracer output format).
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", len(events)+1, err)
		}
		events = append(events, e)
	}
}

// PlaceKey identifies one clone placement within a traced schedule.
type PlaceKey struct {
	Phase, Op, Clone int
}

// TraceAssignments replays the place events of a decision trace into
// the clone->site assignment they encode. The result maps every placed
// (phase, op, clone) to its site; replaying a trace and comparing the
// result against the schedule's placements is the contract the sched
// tests pin down.
func TraceAssignments(events []Event) map[PlaceKey]int {
	sites := make(map[PlaceKey]int)
	for _, e := range events {
		if e.Type == EvPlace {
			sites[PlaceKey{Phase: e.Phase, Op: e.Op, Clone: e.Clone}] = e.Site
		}
	}
	return sites
}

// WriteTraceText pretty-prints a decision trace for humans — the
// renderer behind `mdrs-sched -trace-text` and `make trace-demo`.
func WriteTraceText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		var err error
		switch e.Type {
		case EvPhaseOpen:
			_, err = fmt.Fprintf(bw, "phase %d open: %d operators, %d clones\n",
				e.Phase, e.Ops, e.Clones)
		case EvPhaseClose:
			_, err = fmt.Fprintf(bw, "phase %d close: response %.6f s\n",
				e.Phase, e.Response)
		case EvPlace:
			tag := "float "
			if e.Rooted {
				tag = "rooted"
			}
			name := e.Name
			if name == "" {
				name = fmt.Sprintf("op %d", e.Op)
			}
			_, err = fmt.Fprintf(bw,
				"  place %-16s clone %-3d -> site %-3d %s  key (l=%.6f, sum=%.6f)\n",
				name, e.Clone, e.Site, tag, e.L, e.Sum)
		case EvBanHit:
			_, err = fmt.Fprintf(bw,
				"  ban-set hit: op %d clone %d skipped %d better site(s)\n",
				e.Op, e.Clone, e.Banned)
		case EvMemSplit:
			_, err = fmt.Fprintf(bw,
				"  memory split: op %d clone %d at site %d: table %.0f B, free %.0f B, spilled %.0f B (σ=%.3f)\n",
				e.Op, e.Clone, e.Site, e.Bytes, e.Free, e.Spilled, e.Sigma)
		case EvReshape:
			_, err = fmt.Fprintf(bw,
				"  reshape: op %d degree %d -> %d (h=%.6f)\n", e.Op, e.From, e.Degree, e.H)
		case EvSelect:
			_, err = fmt.Fprintf(bw, "  select: parallelization with LB %.6f s\n", e.LB)
		case EvExecPhase:
			_, err = fmt.Fprintf(bw, "phase %d executed: measured %.6f s\n",
				e.Phase, e.Response)
		default:
			_, err = fmt.Fprintf(bw, "  %s: %+v\n", e.Type, e)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
