package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafeHelpers(t *testing.T) {
	// A nil Recorder must absorb every helper without panicking.
	Count(nil, "c", 1)
	Observe(nil, "h", 1.5)
	Emit(nil, Event{Type: EvPlace})
	StartTimer(nil, "t")()
}

func TestTypedNilRecordersAreNoOps(t *testing.T) {
	// A typed-nil concrete recorder behind the interface must degrade to
	// a no-op, not a panic (the classic typed-nil interface trap).
	for _, r := range []Recorder{(*Metrics)(nil), (*Tracer)(nil), (*Capture)(nil)} {
		r.Count("c", 1)
		r.Observe("h", 2)
		r.Event(Event{Type: EvPlace})
	}
	if (*Metrics)(nil).Snapshot().Counters == nil {
		t.Error("nil Metrics snapshot has nil counters map")
	}
	if (*Capture)(nil).Events() != nil {
		t.Error("nil Capture returned events")
	}
	if err := (*Tracer)(nil).Flush(); err != nil {
		t.Errorf("nil Tracer flush: %v", err)
	}
}

func TestMetricsCountersAggregate(t *testing.T) {
	m := NewMetrics()
	m.Count("a", 2)
	m.Count("a", 3)
	m.Count("b", 1)
	m.Event(Event{Type: EvPlace})
	m.Event(Event{Type: EvPlace})
	s := m.Snapshot()
	if s.Counters["a"] != 5 || s.Counters["b"] != 1 {
		t.Fatalf("counters: %v", s.Counters)
	}
	if s.Counters["trace."+EvPlace] != 2 {
		t.Fatalf("event counter: %v", s.Counters)
	}
	if got := s.CounterNames(); len(got) != 3 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sorted names: %v", got)
	}
}

func TestMetricsHistogramStats(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Observe("v", float64(i))
	}
	h := m.Snapshot().Histograms["v"]
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Fatalf("min/max = %g/%g", h.Min, h.Max)
	}
	if math.Abs(h.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %g", h.Mean)
	}
	// Quantiles are bucket estimates (power-of-two upper bounds), so only
	// sanity-band them: monotone and within the observed range.
	if h.P50 < h.Min || h.P99 > h.Max || h.P50 > h.P90 || h.P90 > h.P99 {
		t.Fatalf("quantiles out of order: p50=%g p90=%g p99=%g", h.P50, h.P90, h.P99)
	}
}

func TestHistogramIsBounded(t *testing.T) {
	// Extreme samples — zero, subnormal, astronomic, NaN — must neither
	// panic nor grow memory: every value lands in one of the fixed
	// buckets.
	m := NewMetrics()
	for _, v := range []float64{0, -5, 1e-300, 1e300, math.Inf(1), math.NaN(), 1} {
		m.Observe("edge", v)
	}
	h := m.Snapshot().Histograms["edge"]
	if h.Count != 7 {
		t.Fatalf("count = %d", h.Count)
	}
	for i := 0; i < histBuckets; i++ {
		if b := bucketOf(bucketUpper(i) * 0.99); b < 0 || b >= histBuckets {
			t.Fatalf("bucket %d out of range", b)
		}
	}
}

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event(Event{Type: EvPhaseOpen, Phase: 0, Ops: 3, Clones: 7})
	tr.Event(Event{Type: EvPlace, Phase: 0, Op: 2, Clone: 1, Site: 4, L: 1.5, Sum: 2.25})
	tr.Count("dropped", 1)   // not part of the trace
	tr.Observe("dropped", 1) // not part of the trace
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if e.Seq != int64(i+1) {
			t.Fatalf("line %d seq = %d", i, e.Seq)
		}
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Site != 4 || events[1].L != 1.5 {
		t.Fatalf("round trip: %+v", events)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(&failWriter{n: 1})
	for i := 0; i < 100; i++ {
		tr.Event(Event{Type: EvPlace, Site: i})
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("write error was swallowed")
	}
	if tr.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"type\":\"place\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestCaptureOrdersEvents(t *testing.T) {
	c := NewCapture()
	c.Event(Event{Type: EvPhaseOpen})
	c.Event(Event{Type: EvPlace, Site: 3})
	got := c.Events()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 || got[1].Site != 3 {
		t.Fatalf("captured: %+v", got)
	}
	// The returned slice is a copy: mutating it must not corrupt the buffer.
	got[0].Type = "mutated"
	if c.Events()[0].Type != EvPhaseOpen {
		t.Fatal("Events() exposed internal storage")
	}
}

func TestTraceAssignments(t *testing.T) {
	events := []Event{
		{Type: EvPhaseOpen, Phase: 0},
		{Type: EvPlace, Phase: 0, Op: 1, Clone: 0, Site: 2},
		{Type: EvPlace, Phase: 0, Op: 1, Clone: 1, Site: 5},
		{Type: EvPlace, Phase: 1, Op: 1, Clone: 0, Site: 7},
		{Type: EvBanHit, Phase: 1, Op: 1, Clone: 0, Banned: 2},
	}
	sites := TraceAssignments(events)
	if len(sites) != 3 {
		t.Fatalf("assignments: %v", sites)
	}
	if sites[PlaceKey{0, 1, 1}] != 5 || sites[PlaceKey{1, 1, 0}] != 7 {
		t.Fatalf("assignments: %v", sites)
	}
}

func TestMultiTeesAndDropsNils(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi is not nil")
	}
	m := NewMetrics()
	if Multi(nil, m) != Recorder(m) {
		t.Fatal("single survivor not unwrapped")
	}
	c := NewCapture()
	r := Multi(m, c)
	r.Count("x", 1)
	r.Event(Event{Type: EvPlace})
	if m.Snapshot().Counters["x"] != 1 || len(c.Events()) != 1 {
		t.Fatal("tee lost an observation")
	}
}

func TestStartTimerRecords(t *testing.T) {
	m := NewMetrics()
	stop := StartTimer(m, "t")
	time.Sleep(time.Millisecond)
	stop()
	h := m.Snapshot().Histograms["t"]
	if h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("timer sample: %+v", h)
	}
}

func TestWriteTraceTextRendersEveryKind(t *testing.T) {
	events := []Event{
		{Type: EvPhaseOpen, Phase: 0, Ops: 2, Clones: 4},
		{Type: EvPlace, Phase: 0, Op: 1, Name: "scan(R1)", Clone: 0, Site: 3, L: 0.5, Sum: 0.9},
		{Type: EvPlace, Phase: 0, Op: 2, Clone: 1, Site: 0, Rooted: true},
		{Type: EvBanHit, Phase: 0, Op: 2, Clone: 1, Banned: 1},
		{Type: EvMemSplit, Phase: 0, Op: 2, Clone: 0, Site: 1, Bytes: 100, Free: 60, Spilled: 40, Sigma: 0.4},
		{Type: EvReshape, Op: 3, From: 1, Degree: 2, H: 1.25},
		{Type: EvSelect, LB: 0.75},
		{Type: EvPhaseClose, Phase: 0, Response: 2.5},
		{Type: EvExecPhase, Phase: 0, Response: 2.6},
		{Type: "future_kind"},
	}
	var sb strings.Builder
	if err := WriteTraceText(&sb, events); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"phase 0 open: 2 operators, 4 clones",
		"scan(R1)", "rooted", "ban-set hit", "memory split",
		"reshape: op 3 degree 1 -> 2", "select: parallelization",
		"phase 0 close", "executed", "future_kind",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace text missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Metrics, Tracer, and Capture sit under the engine's parallel clone
	// execution; hammer one of each from many goroutines (meaningful
	// under `go test -race`, which `make check` runs).
	r := Multi(NewMetrics(), NewTracer(io.Discard), NewCapture())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Count("n", 1)
				r.Observe("v", float64(i))
				r.Event(Event{Type: EvPlace, Op: g, Clone: i})
			}
		}(g)
	}
	wg.Wait()
}

func TestServeDebugExposesPprofAndExpvar(t *testing.T) {
	m := NewMetrics()
	m.Count("hits", 42)
	PublishExpvar("mdrs_test_metrics", m)
	PublishExpvar("mdrs_test_metrics", m) // second publish must not panic

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "mdrs_test_metrics") {
			t.Fatalf("expvar output missing published metrics:\n%s", body)
		}
	}
	if _, err := ServeDebug(addr); err == nil {
		t.Fatal("double listen on same address succeeded")
	}
}
