// Package obs is the repository's stdlib-only observability layer:
// cheap counters, wall-clock timers, and bounded histograms behind a
// nil-safe Recorder interface, plus a structured JSON decision trace of
// every scheduler step.
//
// The design goal is that a disabled recorder costs (almost) nothing.
// All instrumentation goes through either the package-level nil-safe
// helpers (Count, Observe, Emit, StartTimer) or an explicit `rec != nil`
// guard at the call site, so the hot paths of the schedulers pay one
// predictable branch when observability is off. The golden-corpus tests
// in internal/sched additionally pin that an attached recorder never
// changes a scheduling decision: recorders observe, they do not steer.
//
// Three Recorder implementations cover the intended uses:
//
//   - Metrics aggregates counters and bounded histograms in memory and
//     renders them as a stable JSON snapshot (mdrs-bench -metrics);
//   - Tracer streams every decision-trace Event as one JSON line to an
//     io.Writer (mdrs-sched -trace);
//   - Capture buffers events in memory, for tests and pretty-printing.
//
// Multi tees to several recorders at once. All implementations are safe
// for concurrent use, so they can sit under the engine's parallel clone
// execution and the experiments worker pool.
package obs

import "time"

// Recorder receives observations. Implementations must be safe for
// concurrent use and must tolerate nil receivers where the concrete
// type is a pointer, so that a typed-nil recorder behind the interface
// degrades to a no-op instead of a panic.
type Recorder interface {
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Observe records one sample of the named distribution (histogram).
	Observe(name string, v float64)
	// Event appends one structured decision-trace event.
	Event(e Event)
}

// Event is one structured decision-trace record. A single flat struct
// (rather than one type per event kind) keeps the JSONL schema trivial
// to parse: consumers switch on Type and read the fields that kind
// populates; absent fields decode to their zero values.
type Event struct {
	// Seq is a monotonically increasing sequence number, assigned by the
	// emitting recorder (Tracer/Capture), 1-based.
	Seq int64 `json:"seq,omitempty"`
	// Type discriminates the event kind; see the Ev* constants.
	Type string `json:"type"`
	// Phase is the synchronized-phase index the event belongs to.
	Phase int `json:"phase"`
	// Op is the operator ID within the scheduling call.
	Op int `json:"op,omitempty"`
	// Name is the operator's human-readable label, when known.
	Name string `json:"name,omitempty"`
	// Clone is the clone index (0 = coordinator).
	Clone int `json:"clone,omitempty"`
	// Site is the chosen site of a placement.
	Site int `json:"site,omitempty"`
	// Rooted marks placements fixed by constraint (B) rather than chosen
	// by the list rule.
	Rooted bool `json:"rooted,omitempty"`
	// L and Sum are the chosen site's (l(work), Σwork) placement key at
	// pick time, before the clone's vector is assigned.
	L   float64 `json:"l,omitempty"`
	Sum float64 `json:"sum,omitempty"`
	// Banned is the number of better-keyed sites the pick skipped
	// because they already held a clone of the operator (ban-set hits).
	Banned int `json:"banned,omitempty"`
	// Ops and Clones size a phase on EvPhaseOpen.
	Ops    int `json:"ops,omitempty"`
	Clones int `json:"clones,omitempty"`
	// Bytes, Free, Spilled, Sigma describe a memsched memory split: the
	// requested table bytes, the site's free bytes, the bytes spilled,
	// and the spill fraction σ.
	Bytes   float64 `json:"bytes,omitempty"`
	Free    float64 `json:"free,omitempty"`
	Spilled float64 `json:"spilled,omitempty"`
	Sigma   float64 `json:"sigma,omitempty"`
	// Degree and From record a malleable reshape step: the operator's
	// degree moved From -> Degree.
	Degree int `json:"degree,omitempty"`
	From   int `json:"from,omitempty"`
	// H is the h(N) value that drove a reshape step.
	H float64 `json:"h,omitempty"`
	// LB is the selected parallelization's lower bound on EvSelect.
	LB float64 `json:"lb,omitempty"`
	// Response is a phase or execution response time in seconds.
	Response float64 `json:"response,omitempty"`
}

// Decision-trace event types.
const (
	// EvPhaseOpen opens one synchronized phase (Phase, Ops, Clones).
	EvPhaseOpen = "phase_open"
	// EvPhaseClose closes a phase with its analytic response (Response).
	EvPhaseClose = "phase_close"
	// EvPlace records one clone->site assignment (Op, Clone, Site, L,
	// Sum, Rooted).
	EvPlace = "place"
	// EvBanHit records that a pick skipped Banned better-keyed sites
	// already holding a clone of the operator (Op, Clone, Banned).
	EvBanHit = "ban_hit"
	// EvMemSplit records a memsched spill decision (Op, Clone, Site,
	// Bytes, Free, Spilled, Sigma).
	EvMemSplit = "mem_split"
	// EvReshape records one malleable GF step: the slowest operator's
	// degree grows From -> Degree because h(N) = H (Op, From, Degree, H).
	EvReshape = "reshape"
	// EvSelect records the malleable candidate selection (LB).
	EvSelect = "select"
	// EvExecPhase records one executed phase's measured response in the
	// engine (Phase, Response).
	EvExecPhase = "exec_phase"
)

// Count is the nil-safe form of r.Count.
func Count(r Recorder, name string, delta int64) {
	if r != nil {
		r.Count(name, delta)
	}
}

// Observe is the nil-safe form of r.Observe.
func Observe(r Recorder, name string, v float64) {
	if r != nil {
		r.Observe(name, v)
	}
}

// Emit is the nil-safe form of r.Event. Callers on hot paths should
// guard with `rec != nil` themselves so the Event struct is not even
// built when observability is off.
func Emit(r Recorder, e Event) {
	if r != nil {
		r.Event(e)
	}
}

// nopStop is the shared no-op returned by StartTimer for nil recorders.
var nopStop = func() {}

// StartTimer starts a wall-clock timer; the returned stop function
// records the elapsed seconds as one Observe sample under name.
func StartTimer(r Recorder, name string) (stop func()) {
	if r == nil {
		return nopStop
	}
	start := time.Now()
	return func() { r.Observe(name, time.Since(start).Seconds()) }
}

// multi tees every observation to each of its recorders.
type multi []Recorder

func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

func (m multi) Observe(name string, v float64) {
	for _, r := range m {
		r.Observe(name, v)
	}
}

func (m multi) Event(e Event) {
	for _, r := range m {
		r.Event(e)
	}
}

// Multi combines recorders into one that broadcasts every observation.
// Nil entries are dropped; if nothing remains, Multi returns nil (still
// a valid, disabled recorder under the package's nil-safe helpers), and
// a single survivor is returned unwrapped.
func Multi(rs ...Recorder) Recorder {
	var kept multi
	for _, r := range rs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}
