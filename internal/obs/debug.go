package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts an HTTP server on addr exposing the stdlib
// diagnostics endpoints — /debug/pprof/* (net/http/pprof) and
// /debug/vars (expvar) — and returns the bound address (useful with a
// ":0" listener). The server runs on its own goroutine for the life of
// the process; commands gate it behind a -debug-addr flag, so nothing
// listens unless explicitly requested. A dedicated mux is used instead
// of http.DefaultServeMux so importing this package never mutates
// global handler state.
func ServeDebug(addr string) (string, error) {
	bound, _, err := StartDebug(addr)
	return bound, err
}

// StartDebug is ServeDebug with a shutdown handle: the returned stop
// function gracefully drains the debug server (long-running servers
// call it on SIGTERM so the diagnostics listener does not outlive the
// service it observes). The debug surface is read-only diagnostics, so
// its ReadHeaderTimeout guards against idle connection exhaustion
// without limiting a long pprof profile stream.
func StartDebug(addr string) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln) //nolint:errcheck // best-effort debug endpoint
	return ln.Addr().String(), srv.Shutdown, nil
}

// PublishExpvar exposes the Metrics snapshot as an expvar variable, so
// a -debug-addr server serves live aggregates at /debug/vars. Expvar
// names are process-global and re-publishing panics, so a second call
// with the same name is ignored.
func PublishExpvar(name string, m *Metrics) {
	if m == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
