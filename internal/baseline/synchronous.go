// Package baseline implements SYNCHRONOUS, the one-dimensional adversary
// of the paper's experiments (Section 6.1): the synchronous-execution-
// time processor allocation of Hsiao et al. [HCY94] combined with the
// two-phase minimax processor distribution of Lo et al. [LCRY93],
// extended with shared-nothing data-redistribution costs.
//
// SYNCHRONOUS sees only a scalar "work" metric (the processing area
// W_p(op)) and never deliberately shares a site between concurrent
// operators:
//
//   - the sites allotted to a parent task (join pipeline) are
//     recursively partitioned among its child subtrees proportionally to
//     their total scalar work, so the subtrees complete at approximately
//     the same time — the synchronous execution time principle. The
//     parent task itself reuses its full allocation once every child has
//     completed;
//   - when a task has more child subtrees than allotted sites, further
//     partitioning is impossible and the children are serialized: each
//     runs on the parent's full allocation, one after another (the
//     fallback Hsiao et al. prescribe for deep plans);
//   - within a task, the allotted sites are distributed across the
//     pipeline's stages by an integer minimax rule — repeatedly granting
//     the next site to the stage with the largest per-site work — which
//     is the optimal processor distribution of Lo et al. (their "two
//     phases", the build phase and the probe phase of a hash-join
//     pipeline, map to the producing and consuming tasks here);
//   - a probe executes at the home of its build (the hash table sites,
//     inside the completed child's allocation), and the redistribution
//     of its inputs is charged through the same α/β communication model
//     as for TreeSchedule.
//
// The produced placement is evaluated under the true multi-dimensional
// model of Equation 2/3 — the comparison in the paper measures exactly
// the response-time cost of ignoring resource sharing and
// multi-dimensionality, not a change of cost model.
package baseline

import (
	"fmt"
	"sort"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// Synchronous configures the baseline scheduler.
type Synchronous struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// P is the number of system sites.
	P int
}

// Validate reports the first nonsensical configuration field.
func (b Synchronous) Validate() error {
	if err := b.Model.Params.Validate(); err != nil {
		return err
	}
	if b.P <= 0 {
		return fmt.Errorf("baseline: non-positive site count %d", b.P)
	}
	return nil
}

// Result is the outcome of a SYNCHRONOUS run: the end-to-end response
// time and the flat list of operator placements (one per plan operator).
type Result struct {
	// Response is the completion time of the root task.
	Response float64
	// Placements lists every operator's allocation.
	Placements []*sched.OpPlacement
}

// Placement returns the placement of the given operator, or nil.
func (r *Result) Placement(op *plan.Operator) *sched.OpPlacement {
	for _, pl := range r.Placements {
		if pl.Op == op {
			return pl
		}
	}
	return nil
}

// scheduler carries the mutable state of one run.
type scheduler struct {
	b     Synchronous
	homes map[*plan.Operator][]int
	out   *Result
}

// Schedule runs the baseline over a task tree and returns the placement
// and its multi-dimensionally evaluated response time.
func (b Synchronous) Schedule(tt *plan.TaskTree) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := tt.Validate(); err != nil {
		return nil, err
	}
	pool := make([]int, b.P)
	for i := range pool {
		pool[i] = i
	}
	s := &scheduler{b: b, homes: make(map[*plan.Operator][]int), out: &Result{}}
	resp, err := s.completion(tt.Root, pool)
	if err != nil {
		return nil, err
	}
	s.out.Response = resp
	return s.out, nil
}

// subtreeWork returns the total scalar work (processing area) of all
// operators in the task subtree — the 1-D metric the baseline optimizes.
func (s *scheduler) subtreeWork(tk *plan.Task) float64 {
	w := 0.0
	for _, op := range tk.Ops {
		w += s.b.Model.Cost(op.Spec).ProcessingArea()
	}
	for _, c := range tk.Children {
		w += s.subtreeWork(c)
	}
	return w
}

// completion schedules the task subtree onto the pool and returns its
// completion time: children first (in parallel on proportional disjoint
// sub-pools, or serialized when the pool is too narrow), then the task's
// own pipeline on the full pool.
func (s *scheduler) completion(tk *plan.Task, pool []int) (float64, error) {
	childDone := 0.0
	switch {
	case len(tk.Children) == 0:
		// Leaf task: no dependencies.
	case len(tk.Children) <= len(pool):
		// Synchronous execution time: split the pool proportionally to
		// subtree work so children finish at about the same time.
		weights := make([]float64, len(tk.Children))
		for i, c := range tk.Children {
			weights[i] = s.subtreeWork(c)
		}
		pools := allocateProportional(len(pool), weights)
		for i, c := range tk.Children {
			sub := make([]int, 0, len(pools[i]))
			for _, idx := range pools[i] {
				sub = append(sub, pool[idx])
			}
			t, err := s.completion(c, sub)
			if err != nil {
				return 0, err
			}
			if t > childDone {
				childDone = t
			}
		}
	default:
		// Deep/wide plans on a narrow pool: serialize the children on
		// the full allocation.
		for _, c := range tk.Children {
			t, err := s.completion(c, pool)
			if err != nil {
				return 0, err
			}
			childDone += t
		}
	}

	t, err := s.taskTime(tk, pool)
	if err != nil {
		return 0, err
	}
	return childDone + t, nil
}

// stage is one operator of a task with its scheduling state.
type stage struct {
	op    *plan.Operator
	cost  costmodel.OpCost
	work  float64
	home  []int // fixed sites (rooted probes), nil when floating
	sites []int
}

// taskTime schedules the task's pipeline stages (rooted probes at their
// build homes, floating stages minimax over the pool) and evaluates the
// pipeline's response under Equation 3.
func (s *scheduler) taskTime(tk *plan.Task, pool []int) (float64, error) {
	var stages []*stage
	var floating []*stage
	rooted := map[int]bool{}
	for _, op := range tk.Ops {
		st := &stage{op: op, cost: s.b.Model.Cost(op.Spec)}
		st.work = st.cost.ProcessingArea()
		if op.BuildOp != nil {
			h, ok := s.homes[op.BuildOp]
			if !ok {
				return 0, fmt.Errorf("baseline: probe %q scheduled before its build", op.Name)
			}
			st.home = h
			st.sites = h
			for _, site := range h {
				rooted[site] = true
			}
		} else {
			floating = append(floating, st)
		}
		stages = append(stages, st)
	}
	// Floating stages avoid the rooted probes' sites — the baseline
	// never deliberately shares a site between concurrent stages. If the
	// probes own the whole pool, sharing is forced.
	free := pool[:0:0]
	for _, site := range pool {
		if !rooted[site] {
			free = append(free, site)
		}
	}
	if len(free) == 0 {
		free = pool
	}
	s.distributeWithinTask(floating, free)

	sys := resource.NewSystem(s.b.P, resource.Dims, s.b.Overlap)
	for _, st := range stages {
		if len(st.sites) == 0 {
			return 0, fmt.Errorf("baseline: stage %q received no sites", st.op.Name)
		}
		n := len(st.sites)
		clones := s.b.Model.Clones(st.cost, n)
		for k, site := range st.sites {
			sys.Site(site).Assign(clones[k])
		}
		s.homes[st.op] = st.sites
		s.out.Placements = append(s.out.Placements, &sched.OpPlacement{
			Op:     st.op,
			Degree: n,
			Sites:  st.sites,
			Clones: clones,
			Rooted: st.home != nil,
			TPar:   s.b.Model.TPar(st.cost, n, s.b.Overlap),
		})
	}
	return sys.MaxTSite(), nil
}

// distributeWithinTask assigns the pool to the floating stages via the
// integer minimax rule of Lo et al.: every stage first receives one site
// (stages are stacked LPT-style when they outnumber the pool), then each
// remaining site goes to the stage with the maximum current per-site
// work, capped at the stage's N_opt so assumption A4 holds for the
// baseline too.
func (s *scheduler) distributeWithinTask(stages []*stage, pool []int) {
	if len(stages) == 0 || len(pool) == 0 {
		return
	}
	ord := make([]*stage, len(stages))
	copy(ord, stages)
	sort.SliceStable(ord, func(i, j int) bool { return ord[i].work > ord[j].work })

	if len(pool) < len(ord) {
		// Serialization: stack stages onto sites by LPT; each runs with
		// degree 1.
		load := make([]float64, len(pool))
		for _, st := range ord {
			best := 0
			for j := 1; j < len(pool); j++ {
				if load[j] < load[best] {
					best = j
				}
			}
			st.sites = []int{pool[best]}
			load[best] += st.work
		}
		return
	}

	counts := make([]int, len(ord))
	caps := make([]int, len(ord))
	for i, st := range ord {
		counts[i] = 1
		caps[i] = s.b.Model.NOpt(st.cost, len(pool), s.b.Overlap)
		if caps[i] < 1 {
			caps[i] = 1
		}
	}
	remaining := len(pool) - len(ord)
	for remaining > 0 {
		best, bestKey := -1, 0.0
		for i, st := range ord {
			if counts[i] >= caps[i] {
				continue
			}
			key := st.work / float64(counts[i])
			if best < 0 || key > bestKey {
				best, bestKey = i, key
			}
		}
		if best < 0 {
			break // every stage at its cap; leave the rest idle
		}
		counts[best]++
		remaining--
	}
	next := 0
	for i, st := range ord {
		st.sites = pool[next : next+counts[i]]
		next += counts[i]
	}
}

// allocateProportional divides the site indices [0, count) among tasks
// with the given scalar weights so the shares are proportional to the
// weights (largest-remainder rounding) and every task gets at least one
// index while indices last. When tasks outnumber indices, the leftover
// tasks — processed in decreasing weight order — round-robin over the
// indices, sharing pools with earlier tasks.
func allocateProportional(count int, weights []float64) [][]int {
	pools := make([][]int, len(weights))
	if len(weights) == 0 || count == 0 {
		return pools
	}
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}

	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})

	if len(weights) >= count {
		for rank, i := range order {
			pools[i] = []int{rank % count}
		}
		return pools
	}

	shares := make([]int, len(weights))
	remainders := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		var ideal float64
		if totalW > 0 {
			ideal = float64(count) * w / totalW
		} else {
			ideal = float64(count) / float64(len(weights))
		}
		shares[i] = int(ideal)
		if shares[i] < 1 {
			shares[i] = 1
		}
		remainders[i] = ideal - float64(shares[i])
		assigned += shares[i]
	}
	for assigned < count {
		best := -1
		for _, i := range order {
			if best < 0 || remainders[i] > remainders[best] {
				best = i
			}
		}
		shares[best]++
		remainders[best]--
		assigned++
	}
	for assigned > count {
		worst := -1
		for _, i := range order {
			if shares[i] <= 1 {
				continue
			}
			if worst < 0 || remainders[i] < remainders[worst] {
				worst = i
			}
		}
		if worst < 0 {
			break
		}
		shares[worst]--
		remainders[worst]++
		assigned--
	}

	next := 0
	for _, i := range order {
		n := shares[i]
		if next+n > count {
			n = count - next
		}
		for k := 0; k < n; k++ {
			pools[i] = append(pools[i], next+k)
		}
		next += n
	}
	return pools
}
