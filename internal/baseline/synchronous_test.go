package baseline

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func testBaseline(p int, eps float64) Synchronous {
	return Synchronous{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(eps),
		P:       p,
	}
}

func leaf(name string, tuples int) *query.PlanNode {
	return &query.PlanNode{
		Relation: &query.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

func join(outer, inner *query.PlanNode) *query.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &query.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func taskTree(t *testing.T, p *query.PlanNode) *plan.TaskTree {
	t.Helper()
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

func TestValidate(t *testing.T) {
	if err := testBaseline(10, 0.5).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Synchronous{Model: costmodel.Default(), P: 0}).Validate(); err == nil {
		t.Error("P = 0 accepted")
	}
	if err := (Synchronous{P: 4}).Validate(); err == nil {
		t.Error("zero model accepted")
	}
}

func TestScheduleSingleScan(t *testing.T) {
	b := testBaseline(8, 0.5)
	res, err := b.Schedule(taskTree(t, leaf("R", 20000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 1 {
		t.Fatalf("placements = %d, want 1", len(res.Placements))
	}
	pl := res.Placements[0]
	if pl.Degree < 1 || pl.Degree > 8 {
		t.Fatalf("degree = %d", pl.Degree)
	}
	if res.Response <= 0 {
		t.Fatalf("response = %g", res.Response)
	}
}

func TestNoStageSharingWithinTask(t *testing.T) {
	// With a wide pool, the stages of one task occupy disjoint sites —
	// the defining no-sharing behavior of the 1-D baseline. Check the
	// root pipeline of a two-join plan on a large system: its floating
	// scan must not overlap its rooted probes' sites, and the two builds
	// (sibling subtrees) must occupy disjoint pools.
	p := join(join(leaf("A", 30000), leaf("B", 50000)), leaf("C", 40000))
	tt := taskTree(t, p)
	b := testBaseline(60, 0.5)
	res, err := b.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	// Builds belong to different (sibling-ish) tasks: disjoint pools.
	var buildSites [][]int
	for _, pl := range res.Placements {
		if pl.Op.Kind == costmodel.Build {
			buildSites = append(buildSites, pl.Sites)
		}
	}
	if len(buildSites) != 2 {
		t.Fatalf("builds = %d", len(buildSites))
	}
	seen := map[int]bool{}
	for _, sites := range buildSites {
		for _, s := range sites {
			if seen[s] {
				t.Fatalf("sibling builds share site %d", s)
			}
			seen[s] = true
		}
	}
	// Within the root task: scan(A) and the probes occupy their own
	// sites; stages of one task never deliberately overlap.
	rootOps := map[string][]int{}
	for _, pl := range res.Placements {
		switch pl.Op.Name {
		case "scan(A)", "probe(J0)", "probe(J1)":
			rootOps[pl.Op.Name] = pl.Sites
		}
	}
	used := map[int]string{}
	for name, sites := range rootOps {
		for _, s := range sites {
			if prev, ok := used[s]; ok {
				t.Fatalf("root task stages %s and %s share site %d", prev, name, s)
			}
			used[s] = name
		}
	}
}

func TestProbesInheritBuildHomes(t *testing.T) {
	p := join(join(leaf("A", 10000), leaf("B", 20000)), leaf("C", 15000))
	tt := taskTree(t, p)
	b := testBaseline(24, 0.5)
	res, err := b.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	for _, pl := range res.Placements {
		if pl.Op.BuildOp == nil {
			continue
		}
		probes++
		buildPl := res.Placement(pl.Op.BuildOp)
		if buildPl == nil {
			t.Fatalf("build of %s missing", pl.Op.Name)
		}
		if !reflect.DeepEqual(pl.Sites, buildPl.Sites) {
			t.Fatalf("%s at %v, build at %v", pl.Op.Name, pl.Sites, buildPl.Sites)
		}
		if !pl.Rooted {
			t.Fatalf("%s not marked rooted", pl.Op.Name)
		}
	}
	if probes != 2 {
		t.Fatalf("saw %d probes, want 2", probes)
	}
}

func TestEveryOperatorPlaced(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		pl := query.MustRandom(r, query.DefaultGenConfig(5+r.Intn(30)))
		ot := plan.MustExpand(pl)
		tt := plan.MustNewTaskTree(ot)
		p := 4 + r.Intn(60)
		res, err := testBaseline(p, 0.5).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Placements) != len(ot.Ops) {
			t.Fatalf("placed %d of %d operators", len(res.Placements), len(ot.Ops))
		}
		for _, opl := range res.Placements {
			if len(opl.Sites) != opl.Degree || opl.Degree < 1 {
				t.Fatalf("%s: degree %d, sites %v", opl.Op.Name, opl.Degree, opl.Sites)
			}
			for _, site := range opl.Sites {
				if site < 0 || site >= p {
					t.Fatalf("%s placed at site %d (P=%d)", opl.Op.Name, site, p)
				}
			}
		}
	}
}

func TestSerializationWhenChildrenExceedSites(t *testing.T) {
	// A 20-join random plan on 3 sites: tasks can have more children
	// than sites; the baseline must serialize, not fail.
	r := rand.New(rand.NewSource(11))
	pl := query.MustRandom(r, query.DefaultGenConfig(20))
	res, err := testBaseline(3, 0.5).Schedule(plan.MustNewTaskTree(plan.MustExpand(pl)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Response <= 0 {
		t.Fatalf("response = %g", res.Response)
	}
}

func TestSynchronousSlowerThanTreeScheduleOnAverage(t *testing.T) {
	// The paper's headline claim: multi-dimensional scheduling with
	// resource sharing beats the one-dimensional baseline on average.
	r := rand.New(rand.NewSource(19))
	m := costmodel.Default()
	ov := resource.MustOverlap(0.3)
	sumSync, sumTree := 0.0, 0.0
	for trial := 0; trial < 10; trial++ {
		pl := query.MustRandom(r, query.DefaultGenConfig(20))
		tt := plan.MustNewTaskTree(plan.MustExpand(pl))
		sSync, err := Synchronous{Model: m, Overlap: ov, P: 20}.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		sTree, err := sched.TreeScheduler{Model: m, Overlap: ov, P: 20, F: 0.7}.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		sumSync += sSync.Response
		sumTree += sTree.Response
	}
	if sumTree >= sumSync {
		t.Fatalf("TreeSchedule total %g not better than Synchronous total %g",
			sumTree, sumSync)
	}
}

func TestResponseAtLeastEveryTaskTime(t *testing.T) {
	// The completion recursion can never report less than the most
	// expensive single operator's isolated time.
	r := rand.New(rand.NewSource(23))
	pl := query.MustRandom(r, query.DefaultGenConfig(12))
	res, err := testBaseline(16, 0.5).Schedule(plan.MustNewTaskTree(plan.MustExpand(pl)))
	if err != nil {
		t.Fatal(err)
	}
	for _, opl := range res.Placements {
		if res.Response < opl.TPar-1e-9 {
			t.Fatalf("response %g below %s's T^par %g", res.Response, opl.Op.Name, opl.TPar)
		}
	}
}

func TestFragmentationHurtsDeepPlansOnSmallSystems(t *testing.T) {
	// The recursive partitioning fragments small systems on large
	// queries: per-join response (response/joins) must grow with query
	// size at fixed P — the degradation TreeSchedule avoids.
	r := rand.New(rand.NewSource(29))
	avg := func(joins int) float64 {
		sum := 0.0
		for trial := 0; trial < 6; trial++ {
			pl := query.MustRandom(r, query.DefaultGenConfig(joins))
			res, err := testBaseline(20, 0.5).Schedule(plan.MustNewTaskTree(plan.MustExpand(pl)))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Response
		}
		return sum / 6
	}
	small, big := avg(10), avg(50)
	if big <= small*2 {
		t.Fatalf("no fragmentation visible: 10J avg %g, 50J avg %g", small, big)
	}
}

func TestAllocateProportionalShares(t *testing.T) {
	pools := allocateProportional(10, []float64{6, 3, 1})
	sizes := []int{len(pools[0]), len(pools[1]), len(pools[2])}
	if sizes[0] != 6 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("sizes = %v, want [6 3 1]", sizes)
	}
	var all []int
	for _, p := range pools {
		all = append(all, p...)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("indices = %v", all)
		}
	}
}

func TestAllocateProportionalFloorOfOne(t *testing.T) {
	pools := allocateProportional(5, []float64{1000, 1, 1, 1})
	for i, p := range pools {
		if len(p) < 1 {
			t.Fatalf("task %d got no sites: %v", i, pools)
		}
	}
	total := 0
	for _, p := range pools {
		total += len(p)
	}
	if total != 5 {
		t.Fatalf("allocated %d of 5 sites", total)
	}
	if len(pools[0]) <= len(pools[1]) {
		t.Fatalf("heavy task got %d sites, light got %d", len(pools[0]), len(pools[1]))
	}
}

func TestAllocateProportionalSerialization(t *testing.T) {
	pools := allocateProportional(2, []float64{5, 4, 3, 2, 1})
	for i, p := range pools {
		if len(p) != 1 || p[0] < 0 || p[0] >= 2 {
			t.Fatalf("task %d pool = %v", i, p)
		}
	}
}

func TestAllocateProportionalEdgeCases(t *testing.T) {
	if got := allocateProportional(0, []float64{1}); len(got[0]) != 0 {
		t.Fatalf("count=0: %v", got)
	}
	if got := allocateProportional(4, nil); len(got) != 0 {
		t.Fatalf("no tasks: %v", got)
	}
	pools := allocateProportional(4, []float64{0, 0})
	if len(pools[0])+len(pools[1]) != 4 {
		t.Fatalf("zero-weight allocation: %v", pools)
	}
}

func TestDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	pl := query.MustRandom(r, query.DefaultGenConfig(15))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	b := testBaseline(20, 0.4)
	s1, err := b.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Response != s2.Response {
		t.Fatalf("non-deterministic: %g vs %g", s1.Response, s2.Response)
	}
}

func BenchmarkSynchronous40Joins80Sites(b *testing.B) {
	pl := query.MustRandom(rand.New(rand.NewSource(1)), query.DefaultGenConfig(40))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	bl := testBaseline(80, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bl.Schedule(tt); err != nil {
			b.Fatal(err)
		}
	}
}
