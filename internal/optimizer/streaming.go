package optimizer

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mdrs/internal/costmodel"
	"mdrs/internal/opt"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/sched"
)

// streamFrontierCap bounds how many unscheduled candidates the
// streaming systematic search holds at once. When the frontier is full,
// the candidate with the smallest (bound, index) key is flushed —
// scheduled or re-pruned against the by-then-better incumbent — so peak
// residency is O(frontier), never O(T(n)). The cap comfortably exceeds
// the sampled pool sizes, so sampled streaming never hits it.
const streamFrontierCap = 64

// streamItem is one frontier entry: a surviving full plan waiting to be
// scheduled, keyed best-first by (bound, original enumeration index).
type streamItem struct {
	plan  *query.PlanNode
	index int64
	bound float64
}

// streamFrontier is a min-heap over (bound, index).
type streamFrontier []streamItem

func (h streamFrontier) Len() int { return len(h) }
func (h streamFrontier) Less(a, b int) bool {
	if h[a].bound != h[b].bound {
		return h[a].bound < h[b].bound
	}
	return h[a].index < h[b].index
}
func (h streamFrontier) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *streamFrontier) Push(x interface{}) { *h = append(*h, x.(streamItem)) }
func (h *streamFrontier) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// streamState carries the incumbent and ledgers shared by both
// streaming modes. Everything is single-goroutine: candidates are
// scheduled one at a time (each TreeSchedule may parallelize
// internally; per PR 5 its output is Workers-invariant).
type streamState struct {
	s     Search
	cache *costmodel.Cache
	ctx   context.Context

	// Incumbent under the exact lexicographic (response, index) key.
	// incIdx is the candidate's original enumeration index; -1 = none.
	incResp float64
	incIdx  int64
	best    Candidate

	// priced collects every candidate that was actually priced
	// (scheduled or warm-served), in processing order.
	priced    []Candidate
	scheduled int
	warmHits  int
}

// prunable is the exact PR 8 rule: a candidate whose bound strictly
// exceeds the incumbent response — or ties it at a larger index —
// cannot win the lexicographic (response, index) key, because its
// response is at least its bound.
func (st *streamState) prunable(bound float64, idx int64) bool {
	return st.incIdx >= 0 && (bound > st.incResp || (bound == st.incResp && idx > st.incIdx))
}

// process fully prices one surviving candidate: warm hook first, then
// TreeSchedule, then the incumbent update. The candidate is recorded
// with its bound and original index.
func (st *streamState) process(p *query.PlanNode, idx int64, bound float64) error {
	if err := st.ctx.Err(); err != nil {
		return err
	}
	tt, err := plan.NewTaskTree(plan.MustExpand(p))
	if err != nil {
		return err
	}
	cand := Candidate{Index: int(idx), Plan: p, Shape: query.RandomBushy, Bound: bound}
	var sc *sched.Schedule
	if st.s.Warm != nil {
		if warm, ok := st.s.Warm(tt); ok && warm != nil {
			sc = warm
			st.warmHits++
		}
	}
	if sc == nil {
		ts := sched.TreeScheduler{
			Model: st.s.Model, Overlap: st.s.Overlap, P: st.s.P, F: st.s.F,
			MaxDegree: st.s.MaxDegree, Cache: st.cache, Workers: st.s.Workers,
		}
		sc, err = ts.ScheduleCtx(st.ctx, tt)
		if err != nil {
			return err
		}
		st.scheduled++
	}
	cand.Schedule = sc
	st.priced = append(st.priced, cand)
	if st.incIdx < 0 || sc.Response < st.incResp ||
		(sc.Response == st.incResp && idx < st.incIdx) {
		st.incResp, st.incIdx, st.best = sc.Response, idx, cand
	}
	return nil
}

// bestStreaming is BestCtx's streaming mode: systematic pools stream
// through the bound-pruned subset DP, larger joins keep the sampled
// pool but walk it best-first with an after-every-schedule incumbent.
func (s Search) bestStreaming(ctx context.Context, r *rand.Rand, rels []*query.Relation) (*Result, error) {
	cache := s.Cache
	if cache == nil {
		cache = costmodel.NewCache(s.Model)
	}
	st := &streamState{s: s, cache: cache, ctx: ctx, incIdx: -1, incResp: math.Inf(1)}
	joins := len(rels) - 1
	var out *Result
	var err error
	if max := s.exhaustiveJoins(); joins <= max && max > 0 {
		out, err = s.streamSystematic(st, rels)
	} else {
		out, err = s.streamSampled(st, r, rels)
	}
	if err != nil {
		return nil, err
	}
	s.record(out)
	return out, nil
}

// streamSampled runs the streaming search over the same sampled pool —
// same RNG consumption, same candidates, same BoundCached prices — as
// the pool search, but schedules serially in ascending-bound order so
// every schedule immediately sharpens the incumbent for the next
// prune decision. The scheduled set is therefore always a subset of the
// pool search's, and the winner is identical.
func (s Search) streamSampled(st *streamState, r *rand.Rand, rels []*query.Relation) (*Result, error) {
	cands, _, err := s.enumerate(r, rels)
	if err != nil {
		return nil, err
	}
	trees, err := s.boundCandidates(st.cache, cands)
	if err != nil {
		return nil, err
	}
	// The two-phase strawman seeds the incumbent, exactly as in the
	// pool search's first flush.
	if err := st.processPriced(&cands[0], trees[0]); err != nil {
		return nil, err
	}
	order := make([]int, 0, len(cands)-1)
	for i := 1; i < len(cands); i++ {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.Bound != cb.Bound {
			return ca.Bound < cb.Bound
		}
		return ca.Index < cb.Index
	})
	pruned := 0
	for _, i := range order {
		if st.prunable(cands[i].Bound, int64(i)) {
			pruned++
			continue
		}
		if err := st.processPriced(&cands[i], trees[i]); err != nil {
			return nil, err
		}
	}
	sort.Slice(st.priced, func(a, b int) bool { return st.priced[a].Index < st.priced[b].Index })
	return &Result{
		Best:         st.best,
		Candidates:   st.priced,
		Systematic:   false,
		Streaming:    true,
		Pruned:       pruned,
		Scheduled:    st.scheduled,
		WarmHits:     st.warmHits,
		Enumerated:   int64(len(cands)),
		PeakResident: len(cands),
	}, nil
}

// processPriced is process for candidates whose bound and task tree are
// already computed (the sampled pool).
func (st *streamState) processPriced(c *Candidate, tt *plan.TaskTree) error {
	if err := st.ctx.Err(); err != nil {
		return err
	}
	var sc *sched.Schedule
	if st.s.Warm != nil {
		if warm, ok := st.s.Warm(tt); ok && warm != nil {
			sc = warm
			st.warmHits++
		}
	}
	if sc == nil {
		ts := sched.TreeScheduler{
			Model: st.s.Model, Overlap: st.s.Overlap, P: st.s.P, F: st.s.F,
			MaxDegree: st.s.MaxDegree, Cache: st.cache, Workers: st.s.Workers,
		}
		var err error
		sc, err = ts.ScheduleCtx(st.ctx, tt)
		if err != nil {
			return err
		}
		st.scheduled++
	}
	c.Schedule = sc
	st.priced = append(st.priced, *c)
	idx := int64(c.Index)
	if st.incIdx < 0 || sc.Response < st.incResp ||
		(sc.Response == st.incResp && idx < st.incIdx) {
		st.incResp, st.incIdx, st.best = sc.Response, idx, *c
	}
	return nil
}

// streamSystematic is the bound-interleaved systematic search. The
// incumbent is seeded from candidate 0 (built directly via FirstBushy,
// or served by the Warm hook), then the subset DP streams with two
// prune points: proper subtrees are discarded when their composed
// OPTBOUND strictly exceeds the incumbent response (strict — an equal
// bound could still tie into an index win), and surviving full plans
// are dropped at arrival under the exact (response, index) rule. What
// remains flows through a bounded best-first frontier to TreeSchedule.
//
// Exactness: a subtree's composed bound lower-bounds every containing
// plan's response (opt.SubtreeBounds monotonicity), and the incumbent
// only improves, so nothing capable of winning is ever discarded — the
// winner is byte-identical to the unpruned pool search's.
func (s Search) streamSystematic(st *streamState, rels []*query.Relation) (*Result, error) {
	bounder, err := opt.NewSubtreeBounds(st.cache, s.Overlap, s.P, s.F)
	if err != nil {
		return nil, err
	}
	first, err := query.FirstBushy(rels)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEnumerate, err)
	}
	if err := st.process(first, 0, bounder.Bound(first)); err != nil {
		return nil, err
	}

	var subtreePruned int64
	prune := func(n *query.PlanNode) bool {
		if bounder.Bound(n) > st.incResp {
			subtreePruned++
			return true
		}
		return false
	}

	frontier := &streamFrontier{}
	peak := 1 // candidate 0 was resident before this loop
	flush := func(it streamItem) error {
		// Re-check at pop time: the incumbent may have improved since
		// the item arrived.
		if st.prunable(it.bound, it.index) {
			return nil
		}
		return st.process(it.plan, it.index, it.bound)
	}
	var yields int64
	var yieldErr error
	yield := func(p *query.PlanNode, idx int64) error {
		yields++
		if yields&1023 == 0 {
			if err := st.ctx.Err(); err != nil {
				yieldErr = err
				return err
			}
		}
		if idx == 0 {
			return nil // the strawman: already priced as the seed
		}
		b := bounder.BoundOnce(p)
		if st.prunable(b, idx) {
			return nil
		}
		heap.Push(frontier, streamItem{plan: p, index: idx, bound: b})
		if frontier.Len() > peak {
			peak = frontier.Len()
		}
		if frontier.Len() > streamFrontierCap {
			if err := flush(heap.Pop(frontier).(streamItem)); err != nil {
				yieldErr = err
				return err
			}
		}
		return nil
	}
	if err := query.EnumerateBushyFunc(rels, prune, yield); err != nil {
		if yieldErr != nil {
			return nil, yieldErr // a schedule/ctx error, not an enumeration error
		}
		return nil, fmt.Errorf("%w: %w", ErrEnumerate, err)
	}
	for frontier.Len() > 0 {
		if err := flush(heap.Pop(frontier).(streamItem)); err != nil {
			return nil, err
		}
	}

	sort.Slice(st.priced, func(a, b int) bool { return st.priced[a].Index < st.priced[b].Index })
	total := query.CountBushy(len(rels))
	return &Result{
		Best:          st.best,
		Candidates:    st.priced,
		Systematic:    true,
		Streaming:     true,
		Pruned:        int(total) - st.scheduled - st.warmHits,
		Scheduled:     st.scheduled,
		WarmHits:      st.warmHits,
		Enumerated:    total,
		SubtreePruned: subtreePruned,
		PeakResident:  peak,
	}, nil
}
