package optimizer

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/sched"
)

// streamCorpus extends the identity corpus with joins = 9 (10
// relations — past the materializing enumeration ceiling, sampled by
// both searches).
func streamCorpus() []corpusCase {
	cs := corpus()
	for _, p := range []int{10, 100} {
		cs = append(cs, corpusCase{joins: 9, p: p, seed: int64(1000*9 + p)})
	}
	return cs
}

// The streaming tentpole contract: the streaming bound-interleaved
// search returns the identical winning plan, with a byte-identical
// schedule, as the unpruned pool oracle — for every corpus entry and
// every Workers width — while never scheduling more candidates than
// the PR 8 pruned pool search.
func TestStreamingSearchIdentityAcrossCorpus(t *testing.T) {
	streamedFewerSomewhere := false
	for _, c := range streamCorpus() {
		rels := c.relations(t)

		oracle := c.search(8)
		oracle.NoPrune = true
		oracle.Workers = 1
		want, err := oracle.Best(rand.New(rand.NewSource(c.seed+1)), rels)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := encodeSchedule(t, want.Best.Schedule)

		pool := c.search(8)
		pool.Workers = 1
		pruned, err := pool.Best(rand.New(rand.NewSource(c.seed+1)), rels)
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 4} {
			s := c.search(8)
			s.Streaming = true
			s.Workers = workers
			got, err := s.Best(rand.New(rand.NewSource(c.seed+1)), rels)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Streaming {
				t.Fatalf("joins=%d P=%d: result not marked streaming", c.joins, c.p)
			}
			if got.Best.Index != want.Best.Index {
				t.Fatalf("joins=%d P=%d workers=%d: streaming winner %d, oracle winner %d",
					c.joins, c.p, workers, got.Best.Index, want.Best.Index)
			}
			if !bytes.Equal(encodeSchedule(t, got.Best.Schedule), wantBytes) {
				t.Fatalf("joins=%d P=%d workers=%d: streaming winner schedule differs from oracle",
					c.joins, c.p, workers)
			}
			if int64(got.Pruned)+int64(got.Scheduled)+int64(got.WarmHits) != got.Enumerated {
				t.Fatalf("joins=%d P=%d: ledger %d+%d+%d != enumerated %d",
					c.joins, c.p, got.Pruned, got.Scheduled, got.WarmHits, got.Enumerated)
			}
			// The sampled pools are identical, so streaming's
			// after-every-schedule incumbent can only prune more than the
			// pool's chunked one. (Systematic streaming covers the same
			// candidate space through the subset DP; the frontier keeps
			// its scheduled set comparable but not provably nested, so
			// the inequality is asserted on sampled cases only.)
			if !got.Systematic && got.Scheduled > pruned.Scheduled {
				t.Fatalf("joins=%d P=%d workers=%d: streaming scheduled %d > pool pruned %d",
					c.joins, c.p, workers, got.Scheduled, pruned.Scheduled)
			}
			if got.Scheduled < pruned.Scheduled {
				streamedFewerSomewhere = true
			}
			// Every priced candidate's achieved response respects its
			// recorded lower bound (tolerance: composed-bound summation
			// order may differ in the last ulps).
			for _, cand := range got.Candidates {
				if cand.Schedule == nil {
					t.Fatalf("joins=%d P=%d: retained candidate %d has no schedule", c.joins, c.p, cand.Index)
				}
				if cand.Schedule.Response < cand.Bound*(1-1e-9) {
					t.Fatalf("joins=%d P=%d: candidate %d response %.15g below bound %.15g",
						c.joins, c.p, cand.Index, cand.Schedule.Response, cand.Bound)
				}
			}
		}
	}
	if !streamedFewerSomewhere {
		t.Error("streaming search never scheduled fewer candidates than the pool search anywhere in the corpus")
	}
}

// Systematic streaming past the default threshold: 4 joins = 1680
// candidates, streamed through the subset DP with a bounded frontier.
// The winner must match the unpruned pool oracle byte for byte, and
// peak residency must be the frontier cap, not the candidate count.
func TestStreamingSystematicFourJoins(t *testing.T) {
	c := corpusCase{joins: 4, p: 16, seed: 4016}
	rels := c.relations(t)

	oracle := c.search(8)
	oracle.NoPrune = true
	oracle.Workers = 1
	oracle.ExhaustiveJoins = 4
	want, err := oracle.Best(rand.New(rand.NewSource(1)), rels)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Systematic || len(want.Candidates) != 1680 {
		t.Fatalf("oracle pool: systematic=%v candidates=%d, want 1680 systematic", want.Systematic, len(want.Candidates))
	}

	s := c.search(8)
	s.Streaming = true
	s.ExhaustiveJoins = 4
	got, err := s.Best(rand.New(rand.NewSource(1)), rels)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Systematic || got.Enumerated != 1680 {
		t.Fatalf("streaming: systematic=%v enumerated=%d, want 1680 systematic", got.Systematic, got.Enumerated)
	}
	if got.Best.Index != want.Best.Index {
		t.Fatalf("streaming winner %d, oracle winner %d", got.Best.Index, want.Best.Index)
	}
	if !bytes.Equal(encodeSchedule(t, got.Best.Schedule), encodeSchedule(t, want.Best.Schedule)) {
		t.Fatal("streaming winner schedule differs from oracle")
	}
	if got.PeakResident > streamFrontierCap+1 {
		t.Fatalf("peak residency %d exceeds the frontier cap %d", got.PeakResident, streamFrontierCap)
	}
	if got.Scheduled+got.WarmHits >= 1680 {
		t.Fatalf("streaming scheduled %d of 1680: no pruning happened", got.Scheduled)
	}
	if int64(got.Pruned)+int64(got.Scheduled) != got.Enumerated {
		t.Fatalf("ledger %d+%d != %d", got.Pruned, got.Scheduled, got.Enumerated)
	}
	if len(got.Candidates) == 0 || got.Candidates[0].Index != 0 {
		t.Fatal("streaming result lost the two-phase strawman (candidate 0)")
	}
}

// The streaming ledger and winner must be invariant to Workers: the
// search is serial over candidates; Workers only parallelizes inside
// each TreeSchedule, whose output is Workers-invariant per PR 5.
func TestStreamingWorkerWidthInvisible(t *testing.T) {
	c := corpusCase{joins: 3, p: 32, seed: 3032}
	rels := c.relations(t)
	base := c.search(8)
	base.Streaming = true
	base.Workers = 1
	want, err := base.Best(rand.New(rand.NewSource(2)), rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		s := c.search(8)
		s.Streaming = true
		s.Workers = workers
		got, err := s.Best(rand.New(rand.NewSource(2)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if got.Scheduled != want.Scheduled || got.Pruned != want.Pruned ||
			got.SubtreePruned != want.SubtreePruned || got.PeakResident != want.PeakResident ||
			got.Best.Index != want.Best.Index {
			t.Fatalf("workers=%d: ledger (%d,%d,%d,%d,win %d) != workers=1 (%d,%d,%d,%d,win %d)",
				workers, got.Scheduled, got.Pruned, got.SubtreePruned, got.PeakResident, got.Best.Index,
				want.Scheduled, want.Pruned, want.SubtreePruned, want.PeakResident, want.Best.Index)
		}
		if !bytes.Equal(encodeSchedule(t, got.Best.Schedule), encodeSchedule(t, want.Best.Schedule)) {
			t.Fatalf("workers=%d: winner schedule differs", workers)
		}
	}
}

// A Warm hook honoring the fingerprint exactness contract must not
// change the winner — only convert TreeSchedule invocations into warm
// hits.
func TestStreamingWarmHookExactness(t *testing.T) {
	for _, joins := range []int{3, 8} {
		c := corpusCase{joins: joins, p: 16, seed: int64(7000 + joins)}
		rels := c.relations(t)

		cold := c.search(8)
		cold.Streaming = true
		first, err := cold.Best(rand.New(rand.NewSource(3)), rels)
		if err != nil {
			t.Fatal(err)
		}

		// Warm store keyed by the scheduler fingerprint, filled from the
		// cold run's priced candidates — exactly the serve cache's
		// contract (equal fingerprint ⇒ byte-identical schedule).
		ts := sched.TreeScheduler{
			Model: cold.Model, Overlap: cold.Overlap, P: cold.P, F: cold.F,
		}
		store := make(map[sched.Fingerprint]*sched.Schedule)
		for _, cand := range first.Candidates {
			tt, err := plan.NewTaskTree(plan.MustExpand(cand.Plan))
			if err != nil {
				t.Fatal(err)
			}
			store[ts.Fingerprint(tt)] = cand.Schedule
		}

		warm := c.search(8)
		warm.Streaming = true
		warm.Warm = func(tt *plan.TaskTree) (*sched.Schedule, bool) {
			s, ok := store[ts.Fingerprint(tt)]
			return s, ok
		}
		second, err := warm.Best(rand.New(rand.NewSource(3)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if second.WarmHits == 0 {
			t.Fatalf("joins=%d: warm run hit the store 0 times", joins)
		}
		if second.Best.Index != first.Best.Index {
			t.Fatalf("joins=%d: warm winner %d, cold winner %d", joins, second.Best.Index, first.Best.Index)
		}
		if !bytes.Equal(encodeSchedule(t, second.Best.Schedule), encodeSchedule(t, first.Best.Schedule)) {
			t.Fatalf("joins=%d: warm winner schedule differs from cold", joins)
		}
		if second.Scheduled >= first.Scheduled && second.WarmHits > 0 && first.Scheduled > 0 {
			// Every candidate the cold run priced is in the store, so the
			// warm run must schedule strictly less (it still prunes at
			// least as hard).
			t.Fatalf("joins=%d: warm run scheduled %d, cold %d — warm start saved nothing",
				joins, second.Scheduled, first.Scheduled)
		}
	}
}

// The enumeration error path: ErrEnumerate wraps the query layer's
// validation errors in both pool modes, and the streaming path's
// strawman construction.
func TestBestErrEnumerate(t *testing.T) {
	valid := func(n int) []*query.Relation {
		rels := make([]*query.Relation, n)
		for i := range rels {
			rels[i] = &query.Relation{Name: "R", Tuples: 1000 + i}
		}
		return rels
	}
	badRel := []*query.Relation{{Name: "A", Tuples: 1000}, {Name: "B", Tuples: 0}, {Name: "C", Tuples: 3000}}

	cases := []struct {
		name string
		s    func() Search
		rels []*query.Relation
	}{
		{
			// ExhaustiveJoins = 8 is a legal config now, but the
			// materializing pool still tops out at 8 relations: 9
			// relations is a runtime enumeration failure.
			name: "pool systematic beyond MaxEnumerateRelations",
			s: func() Search {
				s := testSearch(8, 4)
				s.ExhaustiveJoins = 8
				return s
			},
			rels: valid(query.MaxEnumerateRelations + 1),
		},
		{
			name: "pool systematic invalid relation",
			s:    func() Search { return testSearch(8, 4) },
			rels: badRel,
		},
		{
			name: "pool sampled invalid relation",
			s: func() Search {
				s := testSearch(8, 4)
				s.ExhaustiveJoins = -1
				return s
			},
			rels: badRel,
		},
		{
			name: "streaming systematic invalid relation",
			s: func() Search {
				s := testSearch(8, 4)
				s.Streaming = true
				return s
			},
			rels: badRel,
		},
		{
			name: "streaming sampled invalid relation",
			s: func() Search {
				s := testSearch(8, 4)
				s.Streaming = true
				s.ExhaustiveJoins = -1
				return s
			},
			rels: badRel,
		},
	}
	for _, tc := range cases {
		_, err := tc.s().Best(rand.New(rand.NewSource(1)), tc.rels)
		if !errors.Is(err, ErrEnumerate) {
			t.Errorf("%s: err = %v, want ErrEnumerate", tc.name, err)
		}
	}

	// Sanity: the wrapped error keeps the query layer's message.
	s := testSearch(8, 4)
	s.ExhaustiveJoins = 8
	_, err := s.Best(rand.New(rand.NewSource(1)), valid(9))
	if err == nil || !errors.Is(err, ErrEnumerate) {
		t.Fatalf("err = %v", err)
	}
}

// A pre-cancelled context fails fast in both streaming modes.
func TestStreamingPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, joins := range []int{3, 8} {
		c := corpusCase{joins: joins, p: 8, seed: int64(8800 + joins)}
		s := c.search(8)
		s.Streaming = true
		_, err := s.BestCtx(ctx, rand.New(rand.NewSource(1)), c.relations(t))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("joins=%d: err = %v, want context.Canceled", joins, err)
		}
	}
}

// Streaming searches share a cache across calls exactly like pool
// searches: a shared memo changes nothing but speed.
func TestStreamingSharedCacheIdentity(t *testing.T) {
	c := corpusCase{joins: 3, p: 16, seed: 3316}
	rels := c.relations(t)
	cache := costmodel.NewCache(costmodel.Default())

	private := c.search(8)
	private.Streaming = true
	want, err := private.Best(rand.New(rand.NewSource(5)), rels)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		shared := c.search(8)
		shared.Streaming = true
		shared.Cache = cache
		got, err := shared.Best(rand.New(rand.NewSource(5)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if got.Best.Index != want.Best.Index || got.Scheduled != want.Scheduled {
			t.Fatalf("trial %d: shared-cache result (win %d, sched %d) != private (win %d, sched %d)",
				trial, got.Best.Index, got.Scheduled, want.Best.Index, want.Scheduled)
		}
		if !bytes.Equal(encodeSchedule(t, got.Best.Schedule), encodeSchedule(t, want.Best.Schedule)) {
			t.Fatalf("trial %d: shared-cache schedule differs", trial)
		}
	}
}
