package optimizer

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdrs/internal/costmodel"
	"mdrs/internal/opt"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// corpusCase is one seeded search instance of the identity corpus:
// small join counts exercise the systematic-enumeration path, larger
// ones the shape-cycled sampling path.
type corpusCase struct {
	joins, p int
	seed     int64
}

func corpus() []corpusCase {
	var cs []corpusCase
	for _, joins := range []int{2, 3, 5, 8} {
		for _, p := range []int{10, 100} {
			cs = append(cs, corpusCase{joins: joins, p: p, seed: int64(1000*joins + p)})
		}
	}
	return cs
}

func (c corpusCase) relations(t *testing.T) []*query.Relation {
	t.Helper()
	rels, err := RandomRelations(rand.New(rand.NewSource(c.seed)), c.joins+1, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	return rels
}

func (c corpusCase) search(k int) Search {
	return Search{
		Model:      costmodel.Default(),
		Overlap:    resource.MustOverlap(0.5),
		P:          c.p,
		F:          0.7,
		Candidates: k,
	}
}

func encodeSchedule(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	data, err := sched.EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The tentpole contract: the bound-pruned search returns the identical
// winning plan and a byte-identical schedule to the unpruned search
// that fully schedules every candidate — for every corpus entry and
// every worker-pool width — while scheduling strictly fewer candidates
// somewhere in the corpus (the whole point of pruning).
func TestPrunedSearchIdentityAcrossCorpus(t *testing.T) {
	totalPruned := 0
	for _, c := range corpus() {
		rels := c.relations(t)

		oracle := c.search(8)
		oracle.NoPrune = true
		oracle.Workers = 1
		want, err := oracle.Best(rand.New(rand.NewSource(c.seed+1)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if want.Pruned != 0 || want.Scheduled != len(want.Candidates) {
			t.Fatalf("joins=%d P=%d: unpruned oracle pruned %d of %d",
				c.joins, c.p, want.Pruned, len(want.Candidates))
		}
		wantBytes := encodeSchedule(t, want.Best.Schedule)

		for _, workers := range []int{1, 4} {
			s := c.search(8)
			s.Workers = workers
			got, err := s.Best(rand.New(rand.NewSource(c.seed+1)), rels)
			if err != nil {
				t.Fatal(err)
			}
			if got.Best.Index != want.Best.Index {
				t.Fatalf("joins=%d P=%d workers=%d: pruned winner index %d, unpruned %d",
					c.joins, c.p, workers, got.Best.Index, want.Best.Index)
			}
			if !bytes.Equal(encodeSchedule(t, got.Best.Schedule), wantBytes) {
				t.Fatalf("joins=%d P=%d workers=%d: winning schedule bytes differ from unpruned oracle",
					c.joins, c.p, workers)
			}
			if got.Scheduled > want.Scheduled {
				t.Fatalf("joins=%d P=%d workers=%d: pruned search scheduled %d > unpruned %d",
					c.joins, c.p, workers, got.Scheduled, want.Scheduled)
			}
			if workers == 1 {
				totalPruned += got.Pruned
			}
		}
	}
	if totalPruned == 0 {
		t.Fatal("bound pruning never fired across the corpus")
	}
}

// Pool width must be invisible in full: not just the winner, but the
// pruned/scheduled ledger and every candidate's fate.
func TestPrunedSearchPoolWidthInvisible(t *testing.T) {
	for _, c := range corpus() {
		rels := c.relations(t)
		s1 := c.search(8)
		s1.Workers = 1
		ref, err := s1.Best(rand.New(rand.NewSource(c.seed+2)), rels)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			sw := c.search(8)
			sw.Workers = workers
			got, err := sw.Best(rand.New(rand.NewSource(c.seed+2)), rels)
			if err != nil {
				t.Fatal(err)
			}
			if got.Pruned != ref.Pruned || got.Scheduled != ref.Scheduled {
				t.Fatalf("joins=%d P=%d workers=%d: ledger (%d,%d) != Workers=1 (%d,%d)",
					c.joins, c.p, workers, got.Pruned, got.Scheduled, ref.Pruned, ref.Scheduled)
			}
			for i := range got.Candidates {
				if got.Candidates[i].Pruned != ref.Candidates[i].Pruned {
					t.Fatalf("joins=%d P=%d workers=%d: candidate %d fate differs",
						c.joins, c.p, workers, i)
				}
			}
		}
	}
}

// The soundness invariant pruning depends on: OPTBOUND never exceeds
// the TreeSchedule response, for every candidate of every corpus entry
// (including under a MaxDegree cap, which only shrinks the degree range
// T^par is minimized over).
func TestBoundNeverExceedsScheduledResponse(t *testing.T) {
	for _, c := range corpus() {
		for _, maxDegree := range []int{0, 2} {
			rels := c.relations(t)
			s := c.search(8)
			s.NoPrune = true
			s.MaxDegree = maxDegree
			res, err := s.Best(rand.New(rand.NewSource(c.seed+3)), rels)
			if err != nil {
				t.Fatal(err)
			}
			for _, cand := range res.Candidates {
				if cand.Schedule.Response < cand.Bound*(1-1e-9) {
					t.Fatalf("joins=%d P=%d cap=%d candidate %d: response %g below bound %g",
						c.joins, c.p, maxDegree, cand.Index,
						cand.Schedule.Response, cand.Bound)
				}
			}
		}
	}
}

// The per-candidate bound the search stores must be opt.BoundCached
// verbatim (the shared memo in between must not perturb it).
func TestCandidateBoundMatchesOptBound(t *testing.T) {
	c := corpusCase{joins: 5, p: 40, seed: 77}
	rels := c.relations(t)
	s := c.search(6)
	res, err := s.Best(rand.New(rand.NewSource(c.seed)), rels)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	for _, cand := range res.Candidates {
		tt, err := plan.NewTaskTree(plan.MustExpand(cand.Plan))
		if err != nil {
			t.Fatal(err)
		}
		want, err := opt.Bound(tt, m, ov, c.p, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if cand.Bound != want {
			t.Fatalf("candidate %d: stored bound %g != opt.Bound %g", cand.Index, cand.Bound, want)
		}
	}
}

// A shared cost cache across searches (the serve-layer usage) must not
// change any result: byte-identical winners with and without it.
func TestSharedCacheIdentity(t *testing.T) {
	cache := costmodel.NewCache(costmodel.Default())
	for _, c := range corpus() {
		rels := c.relations(t)
		plain := c.search(8)
		want, err := plain.Best(rand.New(rand.NewSource(c.seed+4)), rels)
		if err != nil {
			t.Fatal(err)
		}
		shared := c.search(8)
		shared.Cache = cache
		got, err := shared.Best(rand.New(rand.NewSource(c.seed+4)), rels)
		if err != nil {
			t.Fatal(err)
		}
		if got.Best.Index != want.Best.Index ||
			!bytes.Equal(encodeSchedule(t, got.Best.Schedule), encodeSchedule(t, want.Best.Schedule)) {
			t.Fatalf("joins=%d P=%d: shared-cache winner differs", c.joins, c.p)
		}
	}
}

// Concurrent searches over one shared cache, racing a mid-search
// cancellation: every call must return either a valid result or a
// context error, with no data races (the Makefile opt-race gate runs
// this under -race).
func TestConcurrentSearchHammerWithCancellation(t *testing.T) {
	cache := costmodel.NewCache(costmodel.Default())
	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for trial := 0; trial < 6; trial++ {
				seed := int64(100*g + trial)
				r := rand.New(rand.NewSource(seed))
				rels, err := RandomRelations(r, 7+g%4, 1000, 100000)
				if err != nil {
					t.Error(err)
					return
				}
				s := Search{
					Model:      costmodel.Default(),
					Overlap:    resource.MustOverlap(0.5),
					P:          64,
					F:          0.7,
					Candidates: 8,
					Cache:      cache,
					Workers:    2,
				}
				ctx := context.Background()
				cancelled := trial%2 == 1
				if cancelled {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					timer := time.AfterFunc(time.Duration(trial)*200*time.Microsecond, cancel)
					defer timer.Stop()
					defer cancel()
				}
				res, err := s.BestCtx(ctx, r, rels)
				switch {
				case err == nil:
					if res.Best.Schedule == nil {
						t.Error("nil winning schedule on success")
						return
					}
				case errors.Is(err, context.Canceled):
					// Expected outcome of the cancellation race.
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// A context cancelled before the search starts must surface promptly as
// ctx.Err without scheduling anything.
func TestBestCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rand.New(rand.NewSource(5))
	rels, err := RandomRelations(r, 6, 1000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testSearch(16, 4).BestCtx(ctx, r, rels); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
