package optimizer

import (
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

func testSearch(p, k int) Search {
	return Search{
		Model:      costmodel.Default(),
		Overlap:    resource.MustOverlap(0.5),
		P:          p,
		F:          0.7,
		Candidates: k,
	}
}

func TestValidate(t *testing.T) {
	if err := testSearch(8, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Search{
		{Model: costmodel.Default(), P: 0, F: 0.7},
		{Model: costmodel.Default(), P: 4, F: -1},
		{Model: costmodel.Default(), P: 4, F: 0.7, Candidates: -1},
		{P: 4, F: 0.7},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRandomRelations(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rels, err := RandomRelations(r, 11, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 11 {
		t.Fatalf("count = %d", len(rels))
	}
	for _, rel := range rels {
		if rel.Tuples < 1000 || rel.Tuples > 100000 {
			t.Fatalf("%s size %d out of range", rel.Name, rel.Tuples)
		}
	}
	if _, err := RandomRelations(r, 0, 1, 2); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := RandomRelations(r, 2, 5, 4); err == nil {
		t.Error("bad range accepted")
	}
}

func TestBestNeverWorseThanFirstCandidate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		rels, err := RandomRelations(r, 13, 1000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := testSearch(16, 8).Best(r, rels)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Candidates) != 8 {
			t.Fatalf("candidates = %d", len(res.Candidates))
		}
		for _, c := range res.Candidates {
			if res.Best.Schedule.Response > c.Schedule.Response {
				t.Fatalf("best %g beaten by candidate %g",
					res.Best.Schedule.Response, c.Schedule.Response)
			}
		}
		if res.Improvement() < 1 {
			t.Fatalf("improvement %g < 1", res.Improvement())
		}
	}
}

func TestSearchCoversShapes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rels, err := RandomRelations(r, 9, 1000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testSearch(8, 8).Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[query.Shape]bool{}
	for _, c := range res.Candidates {
		seen[c.Shape] = true
		if got := c.Plan.Joins(); got != 8 {
			t.Fatalf("candidate has %d joins, want 8", got)
		}
		if err := c.Plan.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []query.Shape{query.RandomBushy, query.LeftDeep, query.RightDeep, query.Balanced} {
		if !seen[s] {
			t.Fatalf("shape %v never sampled", s)
		}
	}
}

func TestShapeRestriction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rels, err := RandomRelations(r, 7, 1000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	s := testSearch(8, 5)
	s.Shapes = []query.Shape{query.RightDeep}
	res, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Shape != query.RightDeep {
			t.Fatalf("shape %v sampled despite restriction", c.Shape)
		}
	}
}

func TestDefaultCandidateCount(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rels, err := RandomRelations(r, 5, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testSearch(4, 0).Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 8 {
		t.Fatalf("default candidates = %d, want 8", len(res.Candidates))
	}
}

func TestDeepShapesBehaveAsExpected(t *testing.T) {
	// Right-deep plans serialize phases: on a wide system they should
	// schedule no better than the best-of shapes; the search must
	// therefore rarely pick RightDeep as best with many sites. Rather
	// than assert a stochastic claim, check the structural effect: a
	// right-deep plan's schedule has J+1 phases, a left-deep plan's 2.
	r := rand.New(rand.NewSource(17))
	rels, err := RandomRelations(r, 7, 1000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	s := testSearch(16, 2)

	s.Shapes = []query.Shape{query.RightDeep}
	deep, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(deep.Best.Schedule.Phases); got != 7 {
		t.Fatalf("right-deep phases = %d, want 7 (J+1 for J=6... the chain has J tasks plus the root)", got)
	}

	s.Shapes = []query.Shape{query.LeftDeep}
	flat, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(flat.Best.Schedule.Phases); got != 2 {
		t.Fatalf("left-deep phases = %d, want 2", got)
	}
}

func BenchmarkBestOf8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rels, err := RandomRelations(r, 11, 1000, 100000)
	if err != nil {
		b.Fatal(err)
	}
	s := testSearch(16, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Best(r, rels); err != nil {
			b.Fatal(err)
		}
	}
}
