package optimizer

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func testSearch(p, k int) Search {
	return Search{
		Model:      costmodel.Default(),
		Overlap:    resource.MustOverlap(0.5),
		P:          p,
		F:          0.7,
		Candidates: k,
	}
}

func TestValidate(t *testing.T) {
	if err := testSearch(8, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Search{
		{Model: costmodel.Default(), P: 0, F: 0.7},
		{Model: costmodel.Default(), P: 4, F: -1},
		{Model: costmodel.Default(), P: 4, F: 0.7, Candidates: -1},
		{Model: costmodel.Default(), P: 4, F: 0.7, MaxDegree: -1},
		{Model: costmodel.Default(), P: 4, F: 0.7, ExhaustiveJoins: query.MaxStreamRelations},
		{P: 4, F: 0.7},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// A cache wrapping a different model is a configuration error: its
	// memoized answers would disagree with Search.Model's.
	other := costmodel.MustNew(func() costmodel.Params {
		p := costmodel.DefaultParams()
		p.Alpha *= 2
		return p
	}())
	s := testSearch(8, 4)
	s.Cache = costmodel.NewCache(other)
	if err := s.Validate(); err == nil {
		t.Error("mismatched cache model accepted")
	}
	s.Cache = costmodel.NewCache(s.Model)
	if err := s.Validate(); err != nil {
		t.Errorf("matching cache rejected: %v", err)
	}
}

// Best must fail fast, with typed optimizer:-prefixed errors, on a nil
// random source or fewer than two relations — previously both surfaced
// as confusing downstream panics or generation errors.
func TestBestInputValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rels, err := RandomRelations(r, 5, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testSearch(8, 4).Best(nil, rels); !errors.Is(err, ErrNilRand) {
		t.Fatalf("nil rand: err = %v, want ErrNilRand", err)
	}
	for _, rels := range [][]*query.Relation{nil, {}, rels[:1]} {
		if _, err := testSearch(8, 4).Best(r, rels); !errors.Is(err, ErrTooFewRelations) {
			t.Fatalf("%d relations: err = %v, want ErrTooFewRelations", len(rels), err)
		}
	}
	// Config errors still win over input errors, matching Validate-first
	// ordering.
	if _, err := testSearch(0, 4).Best(nil, rels); errors.Is(err, ErrNilRand) {
		t.Fatal("config error masked by input error")
	}
}

func TestRandomRelations(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rels, err := RandomRelations(r, 11, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 11 {
		t.Fatalf("count = %d", len(rels))
	}
	for _, rel := range rels {
		if rel.Tuples < 1000 || rel.Tuples > 100000 {
			t.Fatalf("%s size %d out of range", rel.Name, rel.Tuples)
		}
	}
	if _, err := RandomRelations(r, 0, 1, 2); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := RandomRelations(r, 2, 5, 4); err == nil {
		t.Error("bad range accepted")
	}
}

func TestBestNeverWorseThanAnyScheduledCandidate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		rels, err := RandomRelations(r, 13, 1000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := testSearch(16, 8).Best(r, rels)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Candidates) != 8 {
			t.Fatalf("candidates = %d", len(res.Candidates))
		}
		if res.Pruned+res.Scheduled != len(res.Candidates) {
			t.Fatalf("pruned %d + scheduled %d != %d candidates",
				res.Pruned, res.Scheduled, len(res.Candidates))
		}
		for _, c := range res.Candidates {
			if c.Pruned != (c.Schedule == nil) {
				t.Fatalf("candidate %d: Pruned=%v but Schedule nil=%v",
					c.Index, c.Pruned, c.Schedule == nil)
			}
			if c.Pruned {
				// A pruned candidate's bound certifies it could not win.
				if c.Bound < res.Best.Schedule.Response {
					t.Fatalf("candidate %d pruned with bound %g below best response %g",
						c.Index, c.Bound, res.Best.Schedule.Response)
				}
				continue
			}
			if res.Best.Schedule.Response > c.Schedule.Response {
				t.Fatalf("best %g beaten by candidate %g",
					res.Best.Schedule.Response, c.Schedule.Response)
			}
		}
		if res.Improvement() < 1 {
			t.Fatalf("improvement %g < 1", res.Improvement())
		}
	}
}

// The two-phase strawman must always carry a schedule: it seeds the
// incumbent and anchors Improvement, pruned search or not.
func TestFirstCandidateAlwaysScheduled(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	rels, err := RandomRelations(r, 10, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testSearch(32, 12).Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates[0].Schedule == nil || res.Candidates[0].Pruned {
		t.Fatal("first candidate was pruned")
	}
}

func TestSearchCoversShapes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rels, err := RandomRelations(r, 9, 1000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testSearch(8, 8).Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Systematic {
		t.Fatal("8-join query enumerated systematically")
	}
	seen := map[query.Shape]bool{}
	for _, c := range res.Candidates {
		seen[c.Shape] = true
		if got := c.Plan.Joins(); got != 8 {
			t.Fatalf("candidate has %d joins, want 8", got)
		}
		if err := c.Plan.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []query.Shape{query.RandomBushy, query.LeftDeep, query.RightDeep, query.Balanced} {
		if !seen[s] {
			t.Fatalf("shape %v never sampled", s)
		}
	}
}

func TestShapeRestriction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rels, err := RandomRelations(r, 7, 1000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	s := testSearch(8, 5)
	s.Shapes = []query.Shape{query.RightDeep}
	res, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Shape != query.RightDeep {
			t.Fatalf("shape %v sampled despite restriction", c.Shape)
		}
	}
}

func TestDefaultCandidateCount(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rels, err := RandomRelations(r, 6, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testSearch(4, 0).Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Systematic {
		t.Fatal("5-join query enumerated systematically at the default threshold")
	}
	if len(res.Candidates) != 8 {
		t.Fatalf("default candidates = %d, want 8", len(res.Candidates))
	}
}

// At or below the ExhaustiveJoins threshold the pool is the full bushy
// enumeration: 3 joins = 4 relations = 120 distinct plans.
func TestSystematicEnumerationBelowThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	rels, err := RandomRelations(r, 4, 1000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := testSearch(16, 8).Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Systematic {
		t.Fatal("3-join query not enumerated systematically")
	}
	if len(res.Candidates) != 120 {
		t.Fatalf("systematic pool = %d plans, want 120", len(res.Candidates))
	}
	if res.Pruned == 0 {
		t.Fatal("bound pruned nothing across 120 systematic candidates")
	}

	// A negative threshold forces sampling even on tiny queries.
	s := testSearch(16, 8)
	s.ExhaustiveJoins = -1
	sampled, err := s.Best(rand.New(rand.NewSource(19)), rels)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Systematic || len(sampled.Candidates) != 8 {
		t.Fatalf("ExhaustiveJoins=-1: systematic=%v candidates=%d, want sampled 8",
			sampled.Systematic, len(sampled.Candidates))
	}
}

func TestDeepShapesBehaveAsExpected(t *testing.T) {
	// Right-deep plans serialize phases: on a wide system they should
	// schedule no better than the best-of shapes; the search must
	// therefore rarely pick RightDeep as best with many sites. Rather
	// than assert a stochastic claim, check the structural effect: a
	// right-deep plan's schedule has J+1 phases, a left-deep plan's 2.
	r := rand.New(rand.NewSource(17))
	rels, err := RandomRelations(r, 7, 1000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	s := testSearch(16, 2)

	s.Shapes = []query.Shape{query.RightDeep}
	deep, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(deep.Best.Schedule.Phases); got != 7 {
		t.Fatalf("right-deep phases = %d, want 7 (J+1 for J=6... the chain has J tasks plus the root)", got)
	}

	s.Shapes = []query.Shape{query.LeftDeep}
	flat, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(flat.Best.Schedule.Phases); got != 2 {
		t.Fatalf("left-deep phases = %d, want 2", got)
	}
}

// Improvement's zero-response semantics, defined explicitly by the
// bugfix: 0/0 is 1 (no improvement to speak of), positive/0 is +Inf
// (an infinite improvement — previously silently reported as 1).
func TestImprovementZeroSemantics(t *testing.T) {
	mk := func(resp float64) *sched.Schedule { return &sched.Schedule{Response: resp} }
	cases := []struct {
		name        string
		first, best float64
		want        float64
	}{
		{"both zero", 0, 0, 1},
		{"zero denominator", 5, 0, math.Inf(1)},
		{"zero numerator impossible but defined", 0, 0, 1},
		{"ordinary", 6, 3, 2},
		{"no improvement", 3, 3, 1},
	}
	for _, c := range cases {
		first := Candidate{Index: 0, Schedule: mk(c.first)}
		best := Candidate{Index: 1, Schedule: mk(c.best)}
		r := &Result{Best: best, Candidates: []Candidate{first, best}}
		if got := r.Improvement(); got != c.want {
			t.Errorf("%s: Improvement() = %g, want %g", c.name, got, c.want)
		}
	}
	// Degenerate results stay at 1 rather than dereferencing nil.
	empty := &Result{}
	if got := empty.Improvement(); got != 1 {
		t.Errorf("empty result: Improvement() = %g, want 1", got)
	}
	prunedFirst := &Result{
		Best:       Candidate{Index: 1, Schedule: mk(2)},
		Candidates: []Candidate{{Index: 0, Pruned: true}, {Index: 1, Schedule: mk(2)}},
	}
	if got := prunedFirst.Improvement(); got != 1 {
		t.Errorf("nil first schedule: Improvement() = %g, want 1", got)
	}
}

// The search counters must balance: candidates = pruned + scheduled.
func TestSearchCounters(t *testing.T) {
	met := obs.NewMetrics()
	s := testSearch(64, 12)
	s.Rec = met
	r := rand.New(rand.NewSource(31))
	rels, err := RandomRelations(r, 12, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Best(r, rels)
	if err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	if got := snap.Counters["optimizer.candidates"]; got != int64(len(res.Candidates)) {
		t.Fatalf("optimizer.candidates = %d, want %d", got, len(res.Candidates))
	}
	if got, want := snap.Counters["optimizer.pruned"], int64(res.Pruned); got != want {
		t.Fatalf("optimizer.pruned = %d, want %d", got, want)
	}
	if got, want := snap.Counters["optimizer.scheduled"], int64(res.Scheduled); got != want {
		t.Fatalf("optimizer.scheduled = %d, want %d", got, want)
	}
	if snap.Counters["optimizer.candidates"] !=
		snap.Counters["optimizer.pruned"]+snap.Counters["optimizer.scheduled"] {
		t.Fatal("counter arithmetic violated")
	}
}

func BenchmarkBestOf8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rels, err := RandomRelations(r, 11, 1000, 100000)
	if err != nil {
		b.Fatal(err)
	}
	s := testSearch(16, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Best(r, rels); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestOf8Unpruned(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rels, err := RandomRelations(r, 11, 1000, 100000)
	if err != nil {
		b.Fatal(err)
	}
	s := testSearch(16, 8)
	s.NoPrune = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Best(r, rels); err != nil {
			b.Fatal(err)
		}
	}
}
