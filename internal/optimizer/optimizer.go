// Package optimizer closes the loop the paper's introduction opens:
// parallelization is "usually the result of an earlier phase of
// conventional centralized query optimization", i.e. two-phase
// optimization, where the plan is fixed before the scheduler sees it.
// This package implements the natural scheduler-in-the-loop refinement:
// sample several join orders (plans) over the same database, schedule
// each with TreeSchedule, and keep the plan whose *scheduled parallel
// response time* — not a centralized cost estimate — is smallest.
//
// The measured gap between "schedule the first random plan" and
// "best-of-K" quantifies how much response time two-phase optimization
// leaves on the table for the multi-dimensional scheduler to recover.
package optimizer

import (
	"fmt"
	"math/rand"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// Search configures a best-of-K plan search.
type Search struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// P is the number of system sites.
	P int
	// F is the coarse-granularity parameter.
	F float64
	// Candidates is the number of random plans sampled (K). Defaults to
	// 8 when zero.
	Candidates int
	// Shapes restricts the sampled plan shapes; nil means all four.
	Shapes []query.Shape
}

// Validate reports the first nonsensical configuration field.
func (s Search) Validate() error {
	if err := s.Model.Params.Validate(); err != nil {
		return err
	}
	if s.P <= 0 {
		return fmt.Errorf("optimizer: non-positive site count %d", s.P)
	}
	if s.F < 0 {
		return fmt.Errorf("optimizer: negative granularity parameter %g", s.F)
	}
	if s.Candidates < 0 {
		return fmt.Errorf("optimizer: negative candidate count %d", s.Candidates)
	}
	return nil
}

func (s Search) candidates() int {
	if s.Candidates == 0 {
		return 8
	}
	return s.Candidates
}

func (s Search) shapes() []query.Shape {
	if len(s.Shapes) > 0 {
		return s.Shapes
	}
	return []query.Shape{query.RandomBushy, query.LeftDeep, query.RightDeep, query.Balanced}
}

// Candidate is one sampled and scheduled plan.
type Candidate struct {
	Plan     *query.PlanNode
	Shape    query.Shape
	Schedule *sched.Schedule
}

// Result of a search: the winner plus every candidate, in sampling
// order (Candidates[0] is the "two-phase" strawman: the first plan
// drawn).
type Result struct {
	Best       Candidate
	Candidates []Candidate
}

// Improvement returns first-candidate response / best response: how
// much the scheduler-in-the-loop search won over scheduling the first
// random plan.
func (r *Result) Improvement() float64 {
	if len(r.Candidates) == 0 || r.Best.Schedule.Response == 0 {
		return 1
	}
	return r.Candidates[0].Schedule.Response / r.Best.Schedule.Response
}

// Best samples plans over the given relations and returns the one whose
// TreeSchedule response is smallest.
func (s Search) Best(r *rand.Rand, rels []*query.Relation) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ts := sched.TreeScheduler{Model: s.Model, Overlap: s.Overlap, P: s.P, F: s.F}
	shapes := s.shapes()
	out := &Result{}
	for k := 0; k < s.candidates(); k++ {
		shape := shapes[k%len(shapes)]
		p, err := query.PlanOver(r, rels, shape)
		if err != nil {
			return nil, err
		}
		tt, err := plan.NewTaskTree(plan.MustExpand(p))
		if err != nil {
			return nil, err
		}
		sc, err := ts.Schedule(tt)
		if err != nil {
			return nil, err
		}
		cand := Candidate{Plan: p, Shape: shape, Schedule: sc}
		out.Candidates = append(out.Candidates, cand)
		if out.Best.Schedule == nil || sc.Response < out.Best.Schedule.Response {
			out.Best = cand
		}
	}
	return out, nil
}

// RandomRelations draws a relation set in the paper's cardinality range.
func RandomRelations(r *rand.Rand, count, minTuples, maxTuples int) ([]*query.Relation, error) {
	if count <= 0 {
		return nil, fmt.Errorf("optimizer: non-positive relation count %d", count)
	}
	if minTuples <= 0 || maxTuples < minTuples {
		return nil, fmt.Errorf("optimizer: bad cardinality range [%d, %d]", minTuples, maxTuples)
	}
	rels := make([]*query.Relation, count)
	for i := range rels {
		rels[i] = &query.Relation{
			Name:   fmt.Sprintf("R%d", i),
			Tuples: minTuples + r.Intn(maxTuples-minTuples+1),
		}
	}
	return rels, nil
}
