// Package optimizer closes the loop the paper's introduction opens:
// parallelization is "usually the result of an earlier phase of
// conventional centralized query optimization", i.e. two-phase
// optimization, where the plan is fixed before the scheduler sees it.
// The follow-up work (Garofalakis & Ioannidis, "Multi-Resource Parallel
// Query Scheduling and Optimization") argues the best plan is the one
// with the best *scheduled* response time — and that integrating the
// scheduler into the optimizer is affordable only if most candidates
// are discarded by a cheap lower bound before the full scheduler runs.
//
// This package implements that bound-pruned integrated search. A
// candidate pool is enumerated per query — every distinct bushy plan
// when the join count is small enough (ExhaustiveJoins), a shape-cycled
// random sample above it — and each candidate is priced with the
// OPTBOUND lower bound of internal/opt, which needs no placement loop.
// Candidates are then scheduled in ascending-bound order against a
// running incumbent; a candidate whose bound already meets the
// incumbent's *scheduled* response cannot win and is pruned without
// ever entering TreeSchedule. The pruned search provably returns the
// same winner, with a byte-identical schedule, as scheduling every
// candidate (the identity tests pin this): OPTBOUND never exceeds the
// TreeSchedule response, and ties resolve by the exact lexicographic
// (response, candidate index) key, so a pruned candidate can never have
// beaten the incumbent that pruned it.
//
// The search reuses the machinery built for exactly this workload: one
// costmodel.Cache prices every structurally repeated operator spec once
// across all candidates (bounds and schedules share the memo), and the
// surviving candidates are scheduled over a bounded internal/par pool
// in fixed-size speculative chunks — chunk membership depends only on
// bounds and the incumbent, never on goroutine timing, so the
// pruned/scheduled counts and the winner are identical for every pool
// width, per the PR 5 determinism contract.
package optimizer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/opt"
	"mdrs/internal/par"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// Typed search errors, for errors.Is dispatch.
var (
	// ErrNilRand reports a Best call with a nil random source. The
	// sampling path draws plans from it; the requirement is uniform so a
	// caller cannot work by accident below the enumeration threshold and
	// fail above it.
	ErrNilRand = errors.New("optimizer: nil random source")
	// ErrTooFewRelations reports a Best call with fewer than two
	// relations: with no join to order there is nothing to search.
	ErrTooFewRelations = errors.New("optimizer: fewer than 2 relations")
	// ErrEnumerate reports a failure building the candidate pool — the
	// relation set broke the enumerator's validation (a relation count
	// beyond the materializing or streaming ceiling, a nil relation, a
	// non-positive cardinality) or the shape sampler rejected it. The
	// underlying query-layer error is wrapped and inspectable via
	// errors.Is/As.
	ErrEnumerate = errors.New("optimizer: candidate enumeration failed")
)

// defaultExhaustiveJoins is the systematic-enumeration threshold when
// Search.ExhaustiveJoins is zero: 3 joins = 4 relations = 120 distinct
// bushy plans, small enough to bound and prune in bulk.
const defaultExhaustiveJoins = 3

// speculativeChunk is how many unpruned candidates are scheduled
// together between incumbent updates. It is a fixed constant — never
// derived from Workers — so which candidates get fully scheduled (and
// therefore the pruned/scheduled counts) is invisible to pool width.
// The first chunk is always the two-phase strawman alone, seeding the
// incumbent before any speculation.
const speculativeChunk = 8

// Search configures a bound-pruned, scheduler-integrated plan search.
type Search struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// P is the number of system sites.
	P int
	// F is the coarse-granularity parameter.
	F float64
	// Candidates is the number of random plans sampled (K) when the
	// query is above the enumeration threshold. Defaults to 8 when zero.
	Candidates int
	// Shapes restricts the sampled plan shapes; nil means all four.
	Shapes []query.Shape
	// ExhaustiveJoins is the largest join count for which the candidate
	// pool is the full systematic enumeration of distinct bushy plans
	// instead of a Candidates-sized sample. Zero means the default of 3
	// (120 plans); negative disables systematic enumeration entirely.
	// Values of 9 and above are rejected outright (the streaming
	// enumerator tops out at 10 relations); values of 7 and 8 are only
	// reachable by the streaming search — the materializing pool returns
	// ErrEnumerate past query.MaxEnumerateRelations. The pool size is
	// super-exponential (4 joins → 1680, 5 → 30240 plans), so even
	// streamed systematic search past 5 joins is a deliberate choice.
	ExhaustiveJoins int
	// NoPrune disables bound pruning: every candidate is fully
	// scheduled. The winner is identical either way (pinned by tests);
	// the flag exists for the integration-cost ablation and as the
	// oracle the identity tests compare against.
	NoPrune bool
	// MaxDegree, when positive, caps every floating operator's degree of
	// partitioned parallelism, exactly as TreeScheduler.MaxDegree. The
	// bound stays valid under a cap — capping can only shrink the degree
	// range T^par is minimized over — so pruning remains exact.
	MaxDegree int
	// Cache, when non-nil, memoizes the cost model's derivations across
	// every candidate's bound and schedule; it must wrap Model. Nil
	// means a private cache per Best call — candidates of one query
	// still share it, but nothing carries across calls.
	Cache *costmodel.Cache
	// Streaming switches BestCtx to the streaming bound-interleaved
	// search: candidates are enumerated through query.EnumerateBushyFunc
	// with per-subtree OPTBOUND pruning inside the subset DP (systematic
	// pools), ordered best-first through a bounded frontier, and
	// scheduled serially against an incumbent that updates after every
	// schedule. The winner and its schedule bytes are identical to the
	// pool-then-prune search (the identity corpus pins this); only the
	// amount of work — TreeSchedule invocations, peak candidate
	// residency — changes. NoPrune is ignored when Streaming is set: the
	// unpruned pool search is the oracle the streaming search is
	// verified against.
	Streaming bool
	// Warm, when non-nil, is consulted before each surviving candidate
	// is scheduled; returning a schedule counts the candidate as a warm
	// hit instead of a TreeSchedule invocation. The hook must implement
	// an exactness contract: a returned schedule must be byte-identical
	// to what TreeSchedule would produce for that task tree under this
	// search's parameters (the serve layer satisfies it by keying its
	// schedule cache on TreeScheduler.Fingerprint). Only the streaming
	// search consults Warm; the pool path stays the PR 8 oracle.
	Warm func(*plan.TaskTree) (*sched.Schedule, bool)
	// Workers bounds the pool that fans candidate scheduling (0 or
	// negative = GOMAXPROCS, 1 = fully serial). The winner, the
	// schedule bytes, and the pruned/scheduled counts are identical for
	// every value; only wall-clock time changes. Each candidate's own
	// TreeSchedule runs serially (Workers=1): candidates are the
	// parallel grain here.
	Workers int
	// Rec, when non-nil, receives the search counters
	// (optimizer.candidates, optimizer.pruned, optimizer.scheduled,
	// optimizer.searches). It is never attached to the per-candidate
	// schedulers — concurrent candidates would interleave their decision
	// traces on colliding (phase, op, clone) keys — and never influences
	// the search.
	Rec obs.Recorder
}

// Validate reports the first nonsensical configuration field.
func (s Search) Validate() error {
	if err := s.Model.Params.Validate(); err != nil {
		return err
	}
	if s.P <= 0 {
		return fmt.Errorf("optimizer: non-positive site count %d", s.P)
	}
	if s.F < 0 {
		return fmt.Errorf("optimizer: negative granularity parameter %g", s.F)
	}
	if s.Candidates < 0 {
		return fmt.Errorf("optimizer: negative candidate count %d", s.Candidates)
	}
	if s.MaxDegree < 0 {
		return fmt.Errorf("optimizer: negative parallelism cap MaxDegree = %d", s.MaxDegree)
	}
	if s.ExhaustiveJoins >= query.MaxStreamRelations {
		return fmt.Errorf("optimizer: ExhaustiveJoins = %d exceeds the enumerable range (max %d)",
			s.ExhaustiveJoins, query.MaxStreamRelations-1)
	}
	if s.Cache != nil && s.Cache.Model() != s.Model {
		return errors.New("optimizer: Cache wraps a different cost model than Search.Model")
	}
	return nil
}

func (s Search) candidates() int {
	if s.Candidates == 0 {
		return 8
	}
	return s.Candidates
}

func (s Search) exhaustiveJoins() int {
	if s.ExhaustiveJoins == 0 {
		return defaultExhaustiveJoins
	}
	return s.ExhaustiveJoins
}

func (s Search) shapes() []query.Shape {
	if len(s.Shapes) > 0 {
		return s.Shapes
	}
	return []query.Shape{query.RandomBushy, query.LeftDeep, query.RightDeep, query.Balanced}
}

// Candidate is one enumerated candidate plan: its cheap lower bound,
// and — when the candidate survived pruning — its full schedule.
type Candidate struct {
	// Index is the candidate's position in enumeration order; it is the
	// tie-break key that makes the winner deterministic.
	Index int
	Plan  *query.PlanNode
	// Shape is the generator that produced a sampled candidate;
	// systematically enumerated candidates report RandomBushy (they are
	// bushy by construction, not drawn from a shape generator).
	Shape query.Shape
	// Bound is the OPTBOUND lower bound on any CG_f execution of the
	// plan: Schedule.Response can never be below it.
	Bound float64
	// Schedule is the full TreeSchedule result; nil when Pruned.
	Schedule *sched.Schedule
	// Pruned marks candidates discarded by the bound without scheduling.
	Pruned bool
}

// Result of a search: the winner plus the retained candidates in
// enumeration order (Candidates[0] is the "two-phase" strawman: the
// first plan enumerated, always fully priced), and the pruning ledger.
//
// Pool searches retain every candidate, pruned ones included, and
// Pruned + Scheduled == len(Candidates). Streaming systematic searches
// never materialize the pool: Candidates holds only the candidates that
// were actually priced (scheduled or warm-served), still in enumeration
// order, and Pruned counts everything else out of Enumerated — whether
// it was discarded at arrival by its own bound or never even built
// because a shared subtree was discarded first (SubtreePruned tallies
// the subtree discards). In every mode
// Pruned + Scheduled + WarmHits == Enumerated.
type Result struct {
	Best       Candidate
	Candidates []Candidate
	// Systematic reports whether the pool was the full bushy
	// enumeration rather than a random sample.
	Systematic bool
	// Streaming reports whether the streaming bound-interleaved search
	// produced this result.
	Streaming bool
	// Pruned counts candidates discarded by a bound without being
	// scheduled; Scheduled counts full TreeSchedule invocations.
	Pruned, Scheduled int
	// Enumerated is the total size of the candidate space the search
	// covered: len(Candidates) for pool searches, the full T(n) count
	// for streaming systematic searches (int64: T(10) ≈ 1.76e10).
	Enumerated int64
	// SubtreePruned counts proper subtrees the streaming subset DP
	// discarded against the incumbent (not candidates — one discarded
	// subtree removes many candidates, all accounted in Pruned).
	SubtreePruned int64
	// WarmHits counts candidates served by the Warm hook instead of
	// TreeSchedule.
	WarmHits int
	// PeakResident is the largest number of unscheduled candidate plans
	// the search held at once: the pool size for pool searches, the
	// bounded frontier high-water mark for streaming systematic ones.
	PeakResident int
}

// Improvement returns first-candidate response / best response: how
// much the scheduler-in-the-loop search won over scheduling the first
// plan. Zero responses are defined explicitly rather than collapsed:
// 0/0 (both plans free) is 1, a positive first response over a
// zero-response winner is +Inf — an infinite improvement, previously
// misreported as "none". A result with no candidates, or whose first
// candidate was never scheduled, reports 1.
func (r *Result) Improvement() float64 {
	if len(r.Candidates) == 0 || r.Candidates[0].Schedule == nil || r.Best.Schedule == nil {
		return 1
	}
	first := r.Candidates[0].Schedule.Response
	best := r.Best.Schedule.Response
	if best == 0 {
		if first == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return first / best
}

// Best runs the bound-pruned search over the given relations and
// returns the plan whose TreeSchedule response is smallest.
func (s Search) Best(r *rand.Rand, rels []*query.Relation) (*Result, error) {
	return s.BestCtx(context.Background(), r, rels)
}

// BestCtx is Best with a cancellation context: the search checks ctx at
// every chunk boundary and threads it into each candidate's
// TreeSchedule, so a cancelled search returns ctx.Err() promptly. The
// context never influences a search decision — a run that completes is
// bit-identical to Best.
func (s Search) BestCtx(ctx context.Context, r *rand.Rand, rels []*query.Relation) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, ErrNilRand
	}
	if len(rels) < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFewRelations, len(rels))
	}
	if s.Streaming {
		return s.bestStreaming(ctx, r, rels)
	}

	cands, systematic, err := s.enumerate(r, rels)
	if err != nil {
		return nil, err
	}
	cache := s.Cache
	if cache == nil {
		cache = costmodel.NewCache(s.Model)
	}
	w := par.Workers(s.Workers)

	trees, err := s.boundCandidates(cache, cands)
	if err != nil {
		return nil, err
	}

	// Schedule in ascending-bound order against the incumbent. The
	// two-phase strawman (candidate 0) goes first and alone: it is the
	// ablation's baseline, it can never be pruned (no incumbent exists
	// yet), and flushing before any speculation gives every later
	// candidate a real incumbent to be pruned against.
	order := make([]int, 0, len(cands))
	for i := 1; i < len(cands); i++ {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.Bound != cb.Bound {
			return ca.Bound < cb.Bound
		}
		return ca.Index < cb.Index
	})

	inc := -1 // incumbent candidate index; -1 = none yet
	// prunable reports whether the candidate at index i cannot beat the
	// incumbent under the exact lexicographic (response, index) key:
	// its response is at least its bound, so a strictly larger bound —
	// or an equal bound at a larger index — loses every tie-break.
	prunable := func(i int) bool {
		if s.NoPrune || inc < 0 {
			return false
		}
		incResp := cands[inc].Schedule.Response
		return cands[i].Bound > incResp || (cands[i].Bound == incResp && i > inc)
	}
	scheduled := 0
	flush := func(chunk []int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		cerrs := make([]error, len(chunk))
		par.For(w, len(chunk), func(j int) {
			i := chunk[j]
			ts := sched.TreeScheduler{
				Model: s.Model, Overlap: s.Overlap, P: s.P, F: s.F,
				MaxDegree: s.MaxDegree, Cache: cache, Workers: 1,
			}
			sc, err := ts.ScheduleCtx(ctx, trees[i])
			if err != nil {
				cerrs[j] = err
				return
			}
			cands[i].Schedule = sc
		})
		// Reduce in chunk order: the surfaced error and the incumbent
		// update are both independent of goroutine interleavings.
		for j, i := range chunk {
			if cerrs[j] != nil {
				return cerrs[j]
			}
			scheduled++
			if inc < 0 {
				inc = i
				continue
			}
			resp, incResp := cands[i].Schedule.Response, cands[inc].Schedule.Response
			if resp < incResp || (resp == incResp && i < inc) {
				inc = i
			}
		}
		return nil
	}

	if err := flush([]int{0}); err != nil {
		return nil, err
	}
	chunk := make([]int, 0, speculativeChunk)
	for _, i := range order {
		if prunable(i) {
			cands[i].Pruned = true
			continue
		}
		chunk = append(chunk, i)
		if len(chunk) == speculativeChunk {
			if err := flush(chunk); err != nil {
				return nil, err
			}
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		if err := flush(chunk); err != nil {
			return nil, err
		}
	}

	out := &Result{
		Best:         cands[inc],
		Candidates:   cands,
		Systematic:   systematic,
		Pruned:       len(cands) - scheduled,
		Scheduled:    scheduled,
		Enumerated:   int64(len(cands)),
		PeakResident: len(cands),
	}
	s.record(out)
	return out, nil
}

// record emits the search counters for one completed result.
func (s Search) record(out *Result) {
	if s.Rec == nil {
		return
	}
	s.Rec.Count("optimizer.searches", 1)
	s.Rec.Count("optimizer.candidates", out.Enumerated)
	s.Rec.Count("optimizer.pruned", int64(out.Pruned))
	s.Rec.Count("optimizer.scheduled", int64(out.Scheduled))
	if out.Streaming {
		s.Rec.Count("optimizer.warm_hits", int64(out.WarmHits))
		s.Rec.Count("optimizer.subtree_pruned", out.SubtreePruned)
	}
}

// boundCandidates prices every candidate with the cheap OPTBOUND,
// fanned positionally across the pool: no placement loop runs here,
// only per-operator cost derivations, all landing in the shared memo.
// It fills each Candidate.Bound and returns the expanded task trees.
func (s Search) boundCandidates(cache *costmodel.Cache, cands []Candidate) ([]*plan.TaskTree, error) {
	w := par.Workers(s.Workers)
	trees := make([]*plan.TaskTree, len(cands))
	errs := make([]error, len(cands))
	par.For(w, len(cands), func(i int) {
		tt, err := plan.NewTaskTree(plan.MustExpand(cands[i].Plan))
		if err != nil {
			errs[i] = err
			return
		}
		b, err := opt.BoundCached(tt, cache, s.Overlap, s.P, s.F)
		if err != nil {
			errs[i] = err
			return
		}
		trees[i], cands[i].Bound = tt, b
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trees, nil
}

// enumerate builds the candidate pool: the full systematic bushy
// enumeration at or below the ExhaustiveJoins threshold, a
// shape-cycled random sample above it. Plan generation consumes r
// serially in candidate order, so a seeded search enumerates the same
// pool regardless of pruning mode or pool width.
func (s Search) enumerate(r *rand.Rand, rels []*query.Relation) ([]Candidate, bool, error) {
	joins := len(rels) - 1
	if max := s.exhaustiveJoins(); joins <= max && max > 0 {
		plans, err := query.EnumerateBushy(rels)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %w", ErrEnumerate, err)
		}
		cands := make([]Candidate, len(plans))
		for i, p := range plans {
			cands[i] = Candidate{Index: i, Plan: p, Shape: query.RandomBushy}
		}
		return cands, true, nil
	}
	shapes := s.shapes()
	cands := make([]Candidate, s.candidates())
	for k := range cands {
		shape := shapes[k%len(shapes)]
		p, err := query.PlanOver(r, rels, shape)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %w", ErrEnumerate, err)
		}
		cands[k] = Candidate{Index: k, Plan: p, Shape: shape}
	}
	return cands, false, nil
}

// RandomRelations draws a relation set in the paper's cardinality range.
func RandomRelations(r *rand.Rand, count, minTuples, maxTuples int) ([]*query.Relation, error) {
	if count <= 0 {
		return nil, fmt.Errorf("optimizer: non-positive relation count %d", count)
	}
	if minTuples <= 0 || maxTuples < minTuples {
		return nil, fmt.Errorf("optimizer: bad cardinality range [%d, %d]", minTuples, maxTuples)
	}
	rels := make([]*query.Relation, count)
	for i := range rels {
		rels[i] = &query.Relation{
			Name:   fmt.Sprintf("R%d", i),
			Tuples: minTuples + r.Intn(maxTuples-minTuples+1),
		}
	}
	return rels, nil
}
