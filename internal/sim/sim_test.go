package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

func TestSimulateSiteEmpty(t *testing.T) {
	got, err := SimulateSite(resource.MustOverlap(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty site makespan = %g", got)
	}
}

func TestSimulateSiteSingleClone(t *testing.T) {
	ov := resource.MustOverlap(0.3)
	w := vector.Of(10, 15)
	got, err := SimulateSite(ov, []vector.Vector{w})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ov.TSeq(w)) > 1e-9 {
		t.Fatalf("single clone makespan %g != TSeq %g", got, ov.TSeq(w))
	}
}

func TestSimulateSiteZeroWorkClone(t *testing.T) {
	ov := resource.MustOverlap(1)
	got, err := SimulateSite(ov, []vector.Vector{vector.Of(0, 0), vector.Of(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("makespan = %g, want 4", got)
	}
}

func TestSimulateSiteRejectsBadInput(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	if _, err := SimulateSite(ov, []vector.Vector{vector.Of(-1, 0)}); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := SimulateSite(ov, []vector.Vector{vector.Of(1, 2), vector.Of(1, 2, 3)}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSimulateSiteIdenticalClonesMatchAnalytic(t *testing.T) {
	// n identical clones: equal-stretch is optimal, so the simulated
	// makespan equals Equation 2 exactly.
	ov := resource.MustOverlap(1)
	w := vector.Of(3, 1)
	for n := 1; n <= 6; n++ {
		clones := make([]vector.Vector, n)
		for i := range clones {
			clones[i] = w
		}
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticTSite(ov, clones) // max(3, 3n)
		if math.Abs(simT-want) > 1e-9 {
			t.Fatalf("n=%d: sim %g != analytic %g", n, simT, want)
		}
	}
}

func TestSimulatePaperExample(t *testing.T) {
	// Section 5.2.2 with ε = 0.3: clones [10 15] (T=22) and [10 5] (T=10)
	// fit in 22 analytically; the congested pair [10 15] + [5 10] costs 25.
	ov := resource.MustOverlap(0.3)
	sim1, err := SimulateSite(ov, []vector.Vector{vector.Of(10, 15), vector.Of(10, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if sim1 < 22-1e-9 {
		t.Fatalf("sim %g below analytic 22", sim1)
	}
	sim2, err := SimulateSite(ov, []vector.Vector{vector.Of(10, 15), vector.Of(5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if sim2 < 25-1e-9 {
		t.Fatalf("sim %g below analytic 25", sim2)
	}
}

func TestAnalyticTSiteMatchesResourceSite(t *testing.T) {
	ov := resource.MustOverlap(0.4)
	clones := []vector.Vector{vector.Of(1, 5, 2), vector.Of(4, 1, 1), vector.Of(2, 2, 2)}
	s := resource.NewSite(0, 3, ov)
	for _, w := range clones {
		s.Assign(w)
	}
	if math.Abs(AnalyticTSite(ov, clones)-s.TSite()) > 1e-12 {
		t.Fatalf("AnalyticTSite %g != Site.TSite %g", AnalyticTSite(ov, clones), s.TSite())
	}
}

// Property: the fluid makespan is always in [analytic, Σ T_c]: feasible
// sharing can't beat Equation 2, and equal-stretch can't be worse than
// full serialization.
func TestQuickSimulatedWithinEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ov := resource.MustOverlap(r.Float64())
		d := 1 + r.Intn(4)
		n := 1 + r.Intn(8)
		clones := make([]vector.Vector, n)
		sumT := 0.0
		for i := range clones {
			w := vector.New(d)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			clones[i] = w
			sumT += ov.TSeq(w)
		}
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			return false
		}
		return simT >= AnalyticTSite(ov, clones)-1e-9 && simT <= sumT+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with d = 1, equal-stretch sharing of a single resource is
// work-conserving, so the simulated makespan equals the analytic one
// exactly: max(max T_c, Σ W_c).
func TestQuickOneDimensionalExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ov := resource.MustOverlap(r.Float64())
		n := 1 + r.Intn(8)
		clones := make([]vector.Vector, n)
		for i := range clones {
			clones[i] = vector.Of(r.Float64() * 10)
		}
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			return false
		}
		return math.Abs(simT-AnalyticTSite(ov, clones)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateSystem(t *testing.T) {
	ov := resource.MustOverlap(1)
	siteClones := [][]vector.Vector{
		{vector.Of(4, 0), vector.Of(0, 4)},
		{vector.Of(2, 2)},
		nil,
	}
	per, overall, err := SimulateSystem(ov, siteClones)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 {
		t.Fatalf("per-site count = %d", len(per))
	}
	if per[2].Analytic != 0 || per[2].Simulated != 0 {
		t.Fatalf("empty site nonzero: %+v", per[2])
	}
	if overall.Analytic != 4 {
		t.Fatalf("overall analytic = %g, want 4", overall.Analytic)
	}
	if overall.Simulated < overall.Analytic-1e-9 {
		t.Fatalf("overall sim %g below analytic %g", overall.Simulated, overall.Analytic)
	}
}

func TestRatio(t *testing.T) {
	if r := (SiteComparison{Analytic: 2, Simulated: 3}).Ratio(); math.Abs(r-1.5) > 1e-12 {
		t.Fatalf("Ratio = %g", r)
	}
	if r := (SiteComparison{}).Ratio(); r != 1 {
		t.Fatalf("zero Ratio = %g", r)
	}
	if r := (SiteComparison{Simulated: 1}).Ratio(); !math.IsInf(r, 1) {
		t.Fatalf("Ratio with zero analytic = %g", r)
	}
}

func TestSimulateScheduleTracksAnalyticModel(t *testing.T) {
	// Replay a real TreeSchedule through the simulator: the simulated
	// response must be >= the analytic one but within a modest factor
	// (the equal-stretch policy wastes little on balanced packings).
	r := rand.New(rand.NewSource(77))
	pl := query.MustRandom(r, query.DefaultGenConfig(15))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	ov := resource.MustOverlap(0.5)
	s, err := sched.TreeScheduler{
		Model: costmodel.Default(), Overlap: ov, P: 16, F: 0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := SimulateSchedule(ov, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.Analytic-s.Response) > 1e-6 {
		t.Fatalf("analytic replay %g != schedule response %g", cmp.Analytic, s.Response)
	}
	if cmp.Simulated < cmp.Analytic-1e-9 {
		t.Fatalf("simulated %g below analytic %g", cmp.Simulated, cmp.Analytic)
	}
	if cmp.Simulated > cmp.Analytic*2 {
		t.Fatalf("simulated %g more than 2x analytic %g — model badly violated",
			cmp.Simulated, cmp.Analytic)
	}
}

func BenchmarkSimulateSite(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ov := resource.MustOverlap(0.5)
	clones := make([]vector.Vector, 32)
	for i := range clones {
		w := vector.New(3)
		for j := range w {
			w[j] = r.Float64() * 10
		}
		clones[i] = w
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateSite(ov, clones); err != nil {
			b.Fatal(err)
		}
	}
}
