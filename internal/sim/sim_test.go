package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

func TestSimulateSiteEmpty(t *testing.T) {
	got, err := SimulateSite(resource.MustOverlap(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty site makespan = %g", got)
	}
}

func TestSimulateSiteSingleClone(t *testing.T) {
	ov := resource.MustOverlap(0.3)
	w := vector.Of(10, 15)
	got, err := SimulateSite(ov, []vector.Vector{w})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ov.TSeq(w)) > 1e-9 {
		t.Fatalf("single clone makespan %g != TSeq %g", got, ov.TSeq(w))
	}
}

func TestSimulateSiteZeroWorkClone(t *testing.T) {
	ov := resource.MustOverlap(1)
	got, err := SimulateSite(ov, []vector.Vector{vector.Of(0, 0), vector.Of(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("makespan = %g, want 4", got)
	}
}

func TestSimulateSiteRejectsBadInput(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	if _, err := SimulateSite(ov, []vector.Vector{vector.Of(-1, 0)}); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := SimulateSite(ov, []vector.Vector{vector.Of(1, 2), vector.Of(1, 2, 3)}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSimulateSiteIdenticalClonesMatchAnalytic(t *testing.T) {
	// n identical clones: equal-stretch is optimal, so the simulated
	// makespan equals Equation 2 exactly.
	ov := resource.MustOverlap(1)
	w := vector.Of(3, 1)
	for n := 1; n <= 6; n++ {
		clones := make([]vector.Vector, n)
		for i := range clones {
			clones[i] = w
		}
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticTSite(ov, clones) // max(3, 3n)
		if math.Abs(simT-want) > 1e-9 {
			t.Fatalf("n=%d: sim %g != analytic %g", n, simT, want)
		}
	}
}

func TestSimulatePaperExample(t *testing.T) {
	// Section 5.2.2 with ε = 0.3: clones [10 15] (T=22) and [10 5] (T=10)
	// fit in 22 analytically; the congested pair [10 15] + [5 10] costs 25.
	ov := resource.MustOverlap(0.3)
	sim1, err := SimulateSite(ov, []vector.Vector{vector.Of(10, 15), vector.Of(10, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if sim1 < 22-1e-9 {
		t.Fatalf("sim %g below analytic 22", sim1)
	}
	sim2, err := SimulateSite(ov, []vector.Vector{vector.Of(10, 15), vector.Of(5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if sim2 < 25-1e-9 {
		t.Fatalf("sim %g below analytic 25", sim2)
	}
}

func TestAnalyticTSiteMatchesResourceSite(t *testing.T) {
	ov := resource.MustOverlap(0.4)
	clones := []vector.Vector{vector.Of(1, 5, 2), vector.Of(4, 1, 1), vector.Of(2, 2, 2)}
	s := resource.NewSite(0, 3, ov)
	for _, w := range clones {
		s.Assign(w)
	}
	if math.Abs(AnalyticTSite(ov, clones)-s.TSite()) > 1e-12 {
		t.Fatalf("AnalyticTSite %g != Site.TSite %g", AnalyticTSite(ov, clones), s.TSite())
	}
}

// Property: the fluid makespan is always in [analytic, Σ T_c]: feasible
// sharing can't beat Equation 2, and equal-stretch can't be worse than
// full serialization.
func TestQuickSimulatedWithinEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ov := resource.MustOverlap(r.Float64())
		d := 1 + r.Intn(4)
		n := 1 + r.Intn(8)
		clones := make([]vector.Vector, n)
		sumT := 0.0
		for i := range clones {
			w := vector.New(d)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			clones[i] = w
			sumT += ov.TSeq(w)
		}
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			return false
		}
		return simT >= AnalyticTSite(ov, clones)-1e-9 && simT <= sumT+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with d = 1, equal-stretch sharing of a single resource is
// work-conserving, so the simulated makespan equals the analytic one
// exactly: max(max T_c, Σ W_c).
func TestQuickOneDimensionalExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ov := resource.MustOverlap(r.Float64())
		n := 1 + r.Intn(8)
		clones := make([]vector.Vector, n)
		for i := range clones {
			clones[i] = vector.Of(r.Float64() * 10)
		}
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			return false
		}
		return math.Abs(simT-AnalyticTSite(ov, clones)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// simulateSiteQuadratic is the pre-optimization O(n²·d) event loop,
// kept verbatim as the oracle for the incremental-demand rewrite: each
// event rebuilds the aggregate demand and rescans all survivors for the
// next completion.
func simulateSiteQuadratic(ov resource.Overlap, clones []vector.Vector) (float64, error) {
	type state struct {
		rate      vector.Vector
		remaining float64
	}
	var active []*state
	d := -1
	for i, w := range clones {
		if err := w.Validate(); err != nil {
			return 0, fmt.Errorf("sim: clone %d: %w", i, err)
		}
		if d < 0 {
			d = w.Dim()
		} else if w.Dim() != d {
			return 0, fmt.Errorf("sim: clone %d dimension %d != %d", i, w.Dim(), d)
		}
		t := ov.TSeq(w)
		if t <= 0 {
			continue
		}
		active = append(active, &state{rate: w.Scale(1 / t), remaining: t})
	}
	now := 0.0
	for len(active) > 0 {
		demand := vector.New(d)
		for _, s := range active {
			demand.AddInPlace(s.rate)
		}
		lambda := 1.0
		if m := demand.Length(); m > 1 {
			lambda = 1 / m
		}
		minRem := math.Inf(1)
		for _, s := range active {
			if s.remaining < minRem {
				minRem = s.remaining
			}
		}
		now += minRem / lambda
		next := active[:0]
		for _, s := range active {
			s.remaining -= minRem
			if s.remaining > 1e-12 {
				next = append(next, s)
			}
		}
		active = next
	}
	return now, nil
}

// Property: the incremental event loop agrees with the quadratic
// reference to floating-point tolerance on random clone sets (the two
// accumulate the demand vector and the clock in different orders, so
// exact bit equality is not expected — equality of the fluid model is).
func TestQuickSimulateSiteMatchesQuadraticReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ov := resource.MustOverlap(r.Float64())
		d := 1 + r.Intn(4)
		n := 1 + r.Intn(40)
		clones := make([]vector.Vector, n)
		for i := range clones {
			w := vector.New(d)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			// Sprinkle in zero-work and duplicate-time clones: the retire
			// loop's tie handling is where the two loops could diverge.
			if r.Intn(7) == 0 {
				for j := range w {
					w[j] = 0
				}
			}
			if i > 0 && r.Intn(5) == 0 {
				copy(w, clones[i-1])
			}
			clones[i] = w
		}
		got, err1 := SimulateSite(ov, clones)
		want, err2 := simulateSiteQuadratic(ov, clones)
		if err1 != nil || err2 != nil {
			return false
		}
		tol := 1e-9 * math.Max(1, want)
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateSystem(t *testing.T) {
	ov := resource.MustOverlap(1)
	siteClones := [][]vector.Vector{
		{vector.Of(4, 0), vector.Of(0, 4)},
		{vector.Of(2, 2)},
		nil,
	}
	per, overall, err := SimulateSystem(ov, siteClones)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 {
		t.Fatalf("per-site count = %d", len(per))
	}
	if per[2].Analytic != 0 || per[2].Simulated != 0 {
		t.Fatalf("empty site nonzero: %+v", per[2])
	}
	if overall.Analytic != 4 {
		t.Fatalf("overall analytic = %g, want 4", overall.Analytic)
	}
	if overall.Simulated < overall.Analytic-1e-9 {
		t.Fatalf("overall sim %g below analytic %g", overall.Simulated, overall.Analytic)
	}
}

// The system fan-out must be invisible: every pool width yields exactly
// the same per-site comparisons and overall maxima.
func TestSimulateSystemWorkersDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ov := resource.MustOverlap(0.5)
	siteClones := make([][]vector.Vector, 64)
	for j := range siteClones {
		for c := 0; c < r.Intn(6); c++ {
			w := vector.New(3)
			for k := range w {
				w[k] = r.Float64() * 10
			}
			siteClones[j] = append(siteClones[j], w)
		}
	}
	refPer, refAll, err := SimulateSystemWorkers(ov, siteClones, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		per, all, err := SimulateSystemWorkers(ov, siteClones, w)
		if err != nil {
			t.Fatal(err)
		}
		if all != refAll {
			t.Fatalf("workers=%d: overall %+v != %+v", w, all, refAll)
		}
		for j := range per {
			if per[j] != refPer[j] {
				t.Fatalf("workers=%d: site %d %+v != %+v", w, j, per[j], refPer[j])
			}
		}
	}
}

// With several failing sites the lowest-indexed failure must win for
// every pool width — the serial index-order reduction, not goroutine
// scheduling, selects the reported error.
func TestSimulateSystemWorkersDeterministicError(t *testing.T) {
	siteClones := [][]vector.Vector{
		{vector.Of(1, 2)},
		{vector.Of(-1, 0)},                    // invalid: negative work
		{vector.Of(1, 2, 3), vector.Of(1, 2)}, // invalid: dimension mismatch
	}
	ov := resource.MustOverlap(0.5)
	for _, w := range []int{1, 2, 8} {
		_, _, err := SimulateSystemWorkers(ov, siteClones, w)
		if err == nil {
			t.Fatalf("workers=%d: invalid input accepted", w)
		}
		if got := err.Error(); !strings.Contains(got, "site 1") {
			t.Fatalf("workers=%d: error %q does not name the lowest failing site", w, got)
		}
	}
}

func TestRatio(t *testing.T) {
	if r := (SiteComparison{Analytic: 2, Simulated: 3}).Ratio(); math.Abs(r-1.5) > 1e-12 {
		t.Fatalf("Ratio = %g", r)
	}
	if r := (SiteComparison{}).Ratio(); r != 1 {
		t.Fatalf("zero Ratio = %g", r)
	}
	if r := (SiteComparison{Simulated: 1}).Ratio(); !math.IsInf(r, 1) {
		t.Fatalf("Ratio with zero analytic = %g", r)
	}
}

func TestSimulateScheduleTracksAnalyticModel(t *testing.T) {
	// Replay a real TreeSchedule through the simulator: the simulated
	// response must be >= the analytic one but within a modest factor
	// (the equal-stretch policy wastes little on balanced packings).
	r := rand.New(rand.NewSource(77))
	pl := query.MustRandom(r, query.DefaultGenConfig(15))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	ov := resource.MustOverlap(0.5)
	s, err := sched.TreeScheduler{
		Model: costmodel.Default(), Overlap: ov, P: 16, F: 0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := SimulateSchedule(ov, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.Analytic-s.Response) > 1e-6 {
		t.Fatalf("analytic replay %g != schedule response %g", cmp.Analytic, s.Response)
	}
	if cmp.Simulated < cmp.Analytic-1e-9 {
		t.Fatalf("simulated %g below analytic %g", cmp.Simulated, cmp.Analytic)
	}
	if cmp.Simulated > cmp.Analytic*2 {
		t.Fatalf("simulated %g more than 2x analytic %g — model badly violated",
			cmp.Simulated, cmp.Analytic)
	}
}

func BenchmarkSimulateSite(b *testing.B) {
	ov := resource.MustOverlap(0.5)
	for _, n := range []int{10, 32, 100, 1000} {
		r := rand.New(rand.NewSource(1))
		clones := make([]vector.Vector, n)
		for i := range clones {
			w := vector.New(3)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			clones[i] = w
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateSite(ov, clones); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateSiteQuadratic is the retired O(n²·d) loop at the
// same sizes, so `go test -bench SimulateSite` shows the asymptotic win
// side by side (at n=1000 the gap is two orders of magnitude).
func BenchmarkSimulateSiteQuadratic(b *testing.B) {
	ov := resource.MustOverlap(0.5)
	for _, n := range []int{10, 100, 1000} {
		r := rand.New(rand.NewSource(1))
		clones := make([]vector.Vector, n)
		for i := range clones {
			w := vector.New(3)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			clones[i] = w
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := simulateSiteQuadratic(ov, clones); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
