// Package sim is a fluid (processor-sharing) simulator of preemptable
// multi-dimensional resource sites. It exists to validate the paper's
// analytic site model — Equation 2,
//
//	T^site(s) = max{ max_{W∈work(s)} T^seq(W), l(work(s)) } —
//
// against an executable model of time-sharing that honors assumptions
// A2 (no time-sharing overhead) and A3 (uniform resource usage).
//
// Each clone at a site demands work vector W and, alone, runs for
// T^seq(W) consuming resource i at constant rate W[i]/T^seq(W). When
// clones share the site, the simulator slows every active clone by a
// common factor λ(t) chosen as large as possible without oversubscribing
// any resource:
//
//	λ(t) = min{ 1, 1 / max_i Σ_{active c} W_c[i]/T_c }.
//
// This "equal-stretch" policy is feasible but not always optimal, so the
// simulated makespan is an upper bound on the optimal preemptive
// makespan and never falls below the analytic T^site. The gap between
// the two quantifies the model error the paper accepts by assuming
// Equation 2 is attained (it is attained exactly for a single clone, for
// identical clones, and whenever one resource saturates throughout).
package sim

import (
	"fmt"
	"math"

	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// SimulateSite runs the fluid simulation for one site holding the given
// clone work vectors and returns the simulated makespan. Zero-work
// clones complete instantly. It returns an error on invalid vectors or
// mismatched dimensions.
func SimulateSite(ov resource.Overlap, clones []vector.Vector) (float64, error) {
	type state struct {
		rate      vector.Vector // resource consumption rates when unslowed
		remaining float64       // remaining standalone-equivalent time
	}
	var active []*state
	d := -1
	for i, w := range clones {
		if err := w.Validate(); err != nil {
			return 0, fmt.Errorf("sim: clone %d: %w", i, err)
		}
		if d < 0 {
			d = w.Dim()
		} else if w.Dim() != d {
			return 0, fmt.Errorf("sim: clone %d dimension %d != %d", i, w.Dim(), d)
		}
		t := ov.TSeq(w)
		if t <= 0 {
			continue // no work
		}
		active = append(active, &state{rate: w.Scale(1 / t), remaining: t})
	}

	now := 0.0
	for len(active) > 0 {
		// Common slowdown factor for the current active set.
		demand := vector.New(d)
		for _, s := range active {
			demand.AddInPlace(s.rate)
		}
		lambda := 1.0
		if m := demand.Length(); m > 1 {
			lambda = 1 / m
		}
		// Next completion: the active clone with least remaining time
		// (all progress at the same speed λ).
		minRem := math.Inf(1)
		for _, s := range active {
			if s.remaining < minRem {
				minRem = s.remaining
			}
		}
		dt := minRem / lambda
		now += dt
		next := active[:0]
		for _, s := range active {
			s.remaining -= minRem
			if s.remaining > 1e-12 {
				next = append(next, s)
			}
		}
		active = next
	}
	return now, nil
}

// AnalyticTSite returns Equation 2's T^site for the same clone set, the
// value the scheduler optimizes.
func AnalyticTSite(ov resource.Overlap, clones []vector.Vector) float64 {
	maxSeq := 0.0
	for _, w := range clones {
		if t := ov.TSeq(w); t > maxSeq {
			maxSeq = t
		}
	}
	return math.Max(maxSeq, vector.SetLength(clones))
}

// SiteComparison pairs the analytic and simulated response of one site.
type SiteComparison struct {
	Analytic  float64
	Simulated float64
}

// Ratio returns Simulated/Analytic (1 when both are zero).
func (c SiteComparison) Ratio() float64 {
	if c.Analytic == 0 {
		if c.Simulated == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return c.Simulated / c.Analytic
}

// SimulateSystem simulates every site of an assignment (siteClones[j]
// holds the work vectors at site j) and returns the per-site
// comparisons plus the overall makespans.
func SimulateSystem(ov resource.Overlap, siteClones [][]vector.Vector) ([]SiteComparison, SiteComparison, error) {
	per := make([]SiteComparison, len(siteClones))
	var overall SiteComparison
	for j, clones := range siteClones {
		simT, err := SimulateSite(ov, clones)
		if err != nil {
			return nil, SiteComparison{}, fmt.Errorf("sim: site %d: %w", j, err)
		}
		per[j] = SiteComparison{Analytic: AnalyticTSite(ov, clones), Simulated: simT}
		if per[j].Analytic > overall.Analytic {
			overall.Analytic = per[j].Analytic
		}
		if per[j].Simulated > overall.Simulated {
			overall.Simulated = per[j].Simulated
		}
	}
	return per, overall, nil
}

// SimulateSchedule replays a full TreeSchedule/Synchronous schedule
// through the fluid simulator, phase by phase, and returns the analytic
// and simulated end-to-end response times (each the sum of its phases).
func SimulateSchedule(ov resource.Overlap, s *sched.Schedule) (SiteComparison, error) {
	var total SiteComparison
	for _, ph := range s.Phases {
		siteClones := make([][]vector.Vector, s.P)
		for _, pl := range ph.Placements {
			for k, site := range pl.Sites {
				siteClones[site] = append(siteClones[site], pl.Clones[k])
			}
		}
		_, overall, err := SimulateSystem(ov, siteClones)
		if err != nil {
			return SiteComparison{}, err
		}
		total.Analytic += overall.Analytic
		total.Simulated += overall.Simulated
	}
	return total, nil
}
