// Package sim is a fluid (processor-sharing) simulator of preemptable
// multi-dimensional resource sites. It exists to validate the paper's
// analytic site model — Equation 2,
//
//	T^site(s) = max{ max_{W∈work(s)} T^seq(W), l(work(s)) } —
//
// against an executable model of time-sharing that honors assumptions
// A2 (no time-sharing overhead) and A3 (uniform resource usage).
//
// Each clone at a site demands work vector W and, alone, runs for
// T^seq(W) consuming resource i at constant rate W[i]/T^seq(W). When
// clones share the site, the simulator slows every active clone by a
// common factor λ(t) chosen as large as possible without oversubscribing
// any resource:
//
//	λ(t) = min{ 1, 1 / max_i Σ_{active c} W_c[i]/T_c }.
//
// This "equal-stretch" policy is feasible but not always optimal, so the
// simulated makespan is an upper bound on the optimal preemptive
// makespan and never falls below the analytic T^site. The gap between
// the two quantifies the model error the paper accepts by assuming
// Equation 2 is attained (it is attained exactly for a single clone, for
// identical clones, and whenever one resource saturates throughout).
package sim

import (
	"fmt"
	"math"
	"slices"

	"mdrs/internal/par"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// SimulateSite runs the fluid simulation for one site holding the given
// clone work vectors and returns the simulated makespan. Zero-work
// clones complete instantly. It returns an error on invalid vectors or
// mismatched dimensions.
//
// Because every active clone progresses at the common speed λ(t), a
// clone's standalone-equivalent ("virtual") clock advances identically
// for all of them, and clones complete in ascending T^seq order no
// matter how λ evolves. The event queue a general fluid simulator would
// keep in a min-heap therefore degenerates to a list sorted once up
// front, and the aggregate demand updates incrementally — subtract the
// completing clone's rate vector instead of rebuilding the sum over all
// survivors. Each completion event costs O(d) instead of O(n·d), for
// O(n·(d + log n)) total where the previous implementation paid O(n²·d).
func SimulateSite(ov resource.Overlap, clones []vector.Vector) (float64, error) {
	d := -1
	rates := make([]vector.Vector, 0, len(clones)) // unslowed consumption rates
	times := make([]float64, 0, len(clones))       // standalone times T^seq
	for i, w := range clones {
		if err := w.Validate(); err != nil {
			return 0, fmt.Errorf("sim: clone %d: %w", i, err)
		}
		if d < 0 {
			d = w.Dim()
		} else if w.Dim() != d {
			return 0, fmt.Errorf("sim: clone %d dimension %d != %d", i, w.Dim(), d)
		}
		t := ov.TSeq(w)
		if t <= 0 {
			continue // no work
		}
		rates = append(rates, w.Scale(1/t))
		times = append(times, t)
	}
	if len(times) == 0 {
		return 0, nil
	}

	// Completion order: ascending virtual time, index as the tie-break
	// (equal times retire at the same event, so the tie-break is only
	// about keeping the sort deterministic).
	order := make([]int, len(times))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if times[a] != times[b] {
			if times[a] < times[b] {
				return -1
			}
			return 1
		}
		return a - b
	})

	demand := vector.New(d)
	for _, r := range rates {
		demand.AddInPlace(r)
	}
	now := 0.0  // wall-clock time
	done := 0.0 // virtual time all active clones have accumulated
	for i := 0; i < len(order); {
		// Common slowdown factor for the current active set.
		lambda := 1.0
		if m := demand.Length(); m > 1 {
			lambda = 1 / m
		}
		// Advance to the next completion. Setting done to the completing
		// clone's exact T^seq (rather than accumulating differences)
		// guarantees the front clone retires below: no floating-point
		// drift can strand a clone with an un-retirable sliver.
		t := times[order[i]]
		now += (t - done) / lambda
		done = t
		// Retire every clone reaching its virtual completion at this
		// event; SubInPlace clamps at zero, absorbing rate-sum drift.
		for i < len(order) && times[order[i]]-done <= 1e-12 {
			demand.SubInPlace(rates[order[i]])
			i++
		}
	}
	return now, nil
}

// AnalyticTSite returns Equation 2's T^site for the same clone set, the
// value the scheduler optimizes.
func AnalyticTSite(ov resource.Overlap, clones []vector.Vector) float64 {
	maxSeq := 0.0
	for _, w := range clones {
		if t := ov.TSeq(w); t > maxSeq {
			maxSeq = t
		}
	}
	return math.Max(maxSeq, vector.SetLength(clones))
}

// SiteComparison pairs the analytic and simulated response of one site.
type SiteComparison struct {
	Analytic  float64
	Simulated float64
}

// Ratio returns Simulated/Analytic (1 when both are zero).
func (c SiteComparison) Ratio() float64 {
	if c.Analytic == 0 {
		if c.Simulated == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return c.Simulated / c.Analytic
}

// SimulateSystem simulates every site of an assignment (siteClones[j]
// holds the work vectors at site j) and returns the per-site
// comparisons plus the overall makespans. Sites are independent, so
// they fan across a pool of runtime.GOMAXPROCS(0) workers; see
// SimulateSystemWorkers for the explicit knob.
func SimulateSystem(ov resource.Overlap, siteClones [][]vector.Vector) ([]SiteComparison, SiteComparison, error) {
	return SimulateSystemWorkers(ov, siteClones, 0)
}

// SimulateSystemWorkers is SimulateSystem over a bounded pool of at most
// workers goroutines (non-positive means runtime.GOMAXPROCS(0)). Every
// site's result is written to its own index and the reduction — maxima
// and error selection — runs serially in site order afterwards, so the
// output, including which site's error is reported when several fail,
// is identical for every pool width.
func SimulateSystemWorkers(ov resource.Overlap, siteClones [][]vector.Vector, workers int) ([]SiteComparison, SiteComparison, error) {
	per := make([]SiteComparison, len(siteClones))
	errs := make([]error, len(siteClones))
	par.For(par.Workers(workers), len(siteClones), func(j int) {
		simT, err := SimulateSite(ov, siteClones[j])
		if err != nil {
			errs[j] = err
			return
		}
		per[j] = SiteComparison{Analytic: AnalyticTSite(ov, siteClones[j]), Simulated: simT}
	})
	var overall SiteComparison
	for j := range per {
		if errs[j] != nil {
			return nil, SiteComparison{}, fmt.Errorf("sim: site %d: %w", j, errs[j])
		}
		if per[j].Analytic > overall.Analytic {
			overall.Analytic = per[j].Analytic
		}
		if per[j].Simulated > overall.Simulated {
			overall.Simulated = per[j].Simulated
		}
	}
	return per, overall, nil
}

// SimulateSchedule replays a full TreeSchedule/Synchronous schedule
// through the fluid simulator, phase by phase, and returns the analytic
// and simulated end-to-end response times (each the sum of its phases).
func SimulateSchedule(ov resource.Overlap, s *sched.Schedule) (SiteComparison, error) {
	var total SiteComparison
	for _, ph := range s.Phases {
		siteClones := make([][]vector.Vector, s.P)
		for _, pl := range ph.Placements {
			for k, site := range pl.Sites {
				siteClones[site] = append(siteClones[site], pl.Clones[k])
			}
		}
		_, overall, err := SimulateSystem(ov, siteClones)
		if err != nil {
			return SiteComparison{}, err
		}
		total.Analytic += overall.Analytic
		total.Simulated += overall.Simulated
	}
	return total, nil
}
