package opt

import (
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/malleable"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

func leaf(name string, tuples int) *query.PlanNode {
	return &query.PlanNode{
		Relation: &query.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

func join(outer, inner *query.PlanNode) *query.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &query.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func taskTree(t *testing.T, p *query.PlanNode) *plan.TaskTree {
	t.Helper()
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

func TestBoundArgumentValidation(t *testing.T) {
	tt := taskTree(t, leaf("R", 1000))
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	if _, err := Bound(tt, m, ov, 0, 0.7); err == nil {
		t.Error("P = 0 accepted")
	}
	if _, err := Bound(tt, m, ov, 4, -1); err == nil {
		t.Error("f < 0 accepted")
	}
}

func TestBoundSingleScan(t *testing.T) {
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	tt := taskTree(t, leaf("R", 10000))
	b, err := Bound(tt, m, ov, 8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// One operator: the bound is max of congestion and its best T^par.
	c := m.Cost(costmodel.OpSpec{Kind: costmodel.Scan, InTuples: 10000, NetOut: true})
	n := m.Degree(c, 0.7, 8, ov)
	want := math.Max(c.Processing.Length()/8, m.TPar(c, n, ov))
	if math.Abs(b-want) > 1e-9 {
		t.Fatalf("bound = %g, want %g", b, want)
	}
}

func TestBoundIsLowerBoundOnTreeSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	for trial := 0; trial < 15; trial++ {
		joins := 5 + r.Intn(20)
		p := 5 + r.Intn(60)
		plan40 := query.MustRandom(r, query.DefaultGenConfig(joins))
		tt := taskTree(t, plan40)
		lb, err := Bound(tt, m, ov, p, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.TreeScheduler{Model: m, Overlap: ov, P: p, F: 0.7}.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		if s.Response < lb-1e-9 {
			t.Fatalf("TreeSchedule response %g below OPTBOUND %g (joins=%d P=%d)",
				s.Response, lb, joins, p)
		}
	}
}

func TestBoundCriticalPathDominatesOnDeepPlans(t *testing.T) {
	// A right-deep chain serializes all tasks: with many sites the
	// critical path term must dominate the congestion term.
	p := leaf("R0", 50000)
	for i := 1; i <= 6; i++ {
		p = join(leaf("x", 50000), p) // inner = deeper chain
	}
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	tt := taskTree(t, p)
	bBig, err := Bound(tt, m, ov, 1000, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Congestion with P=1000 is negligible; the bound must stay well
	// above it because of the serial chain.
	total := vector.New(resource.Dims)
	for _, tk := range tt.Tasks {
		for _, op := range tk.Ops {
			total.AddInPlace(m.Cost(op.Spec).Processing)
		}
	}
	if bBig <= total.Length()/1000*1.5 {
		t.Fatalf("critical path not reflected: bound %g, congestion %g",
			bBig, total.Length()/1000)
	}
}

func TestBoundMonotoneInP(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pl := query.MustRandom(r, query.DefaultGenConfig(15))
	tt := taskTree(t, pl)
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	prev := math.Inf(1)
	for _, p := range []int{10, 20, 40, 80, 140} {
		b, err := Bound(tt, m, ov, p, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if b > prev+1e-9 {
			t.Fatalf("OPTBOUND increased with P: %g -> %g at P=%d", prev, b, p)
		}
		prev = b
	}
}

func TestExhaustiveMatchesHandOptimum(t *testing.T) {
	ov := resource.MustOverlap(1)
	// Two CPU-bound and two disk-bound unit ops on two sites: optimum
	// pairs complements, response 10.
	ops := []*sched.Op{
		{ID: 0, Clones: []vector.Vector{vector.Of(10, 0)}},
		{ID: 1, Clones: []vector.Vector{vector.Of(10, 0)}},
		{ID: 2, Clones: []vector.Vector{vector.Of(0, 10)}},
		{ID: 3, Clones: []vector.Vector{vector.Of(0, 10)}},
	}
	got, err := Exhaustive(2, 2, ov, ops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("exhaustive = %g, want 10", got)
	}
}

func TestExhaustiveRespectsRootedOps(t *testing.T) {
	ov := resource.MustOverlap(1)
	// A rooted hog on site 0 forces the floating op to site 1.
	ops := []*sched.Op{
		{ID: 0, Clones: []vector.Vector{vector.Of(100, 0)}, Home: []int{0}},
		{ID: 1, Clones: []vector.Vector{vector.Of(5, 5)}},
	}
	got, err := Exhaustive(2, 2, ov, ops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("exhaustive = %g, want 100", got)
	}
}

func TestExhaustiveNeverAboveHeuristic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ov := resource.MustOverlap(0.4)
	for trial := 0; trial < 25; trial++ {
		p := 2 + r.Intn(2)
		d := 1 + r.Intn(3)
		var ops []*sched.Op
		totalClones := 0
		for i := 0; totalClones < 6 && i < 5; i++ {
			n := 1 + r.Intn(2)
			if n > p {
				n = p
			}
			clones := make([]vector.Vector, n)
			for k := range clones {
				w := vector.New(d)
				for j := range w {
					w[j] = r.Float64() * 10
				}
				clones[k] = w
			}
			ops = append(ops, &sched.Op{ID: i, Clones: clones})
			totalClones += n
		}
		heur, err := sched.OperatorSchedule(p, d, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		optVal, err := Exhaustive(p, d, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		if optVal > heur.Response+1e-9 {
			t.Fatalf("exhaustive %g above heuristic %g", optVal, heur.Response)
		}
		// Theorem 5.1(a): heuristic within (2d+1) of optimum.
		if heur.Response > sched.PerformanceRatioBound(d)*optVal+1e-9 {
			t.Fatalf("heuristic %g violates (2d+1)·OPT = %g",
				heur.Response, sched.PerformanceRatioBound(d)*optVal)
		}
	}
}

func TestExhaustiveMalleableTheorem71(t *testing.T) {
	// Theorem 7.1: the malleable list schedule is within (2d+1) of the
	// optimum over ALL parallelizations. Verify on tiny instances.
	r := rand.New(rand.NewSource(29))
	m := costmodel.Default()
	for trial := 0; trial < 5; trial++ {
		p := 2 + r.Intn(2)
		ov := resource.MustOverlap(r.Float64())
		var ops []malleable.Operator
		for i := 0; i < 2; i++ {
			ops = append(ops, malleable.Operator{
				ID: i,
				Cost: m.Cost(costmodel.OpSpec{
					Kind:     costmodel.Scan,
					InTuples: 1000 + r.Intn(50000),
					NetOut:   true,
				}),
			})
		}
		s := malleable.Scheduler{Model: m, Overlap: ov, P: p}
		res, err := s.Schedule(ops)
		if err != nil {
			t.Fatal(err)
		}
		optVal, err := ExhaustiveMalleable(p, ov, m, ops)
		if err != nil {
			t.Fatal(err)
		}
		bound := sched.PerformanceRatioBound(resource.Dims) * optVal
		if res.Schedule.Response > bound+1e-9 {
			t.Fatalf("malleable response %g > (2d+1)·OPT = %g (OPT = %g)",
				res.Schedule.Response, bound, optVal)
		}
		if optVal > res.Schedule.Response+1e-9 {
			t.Fatalf("optimum %g above heuristic %g", optVal, res.Schedule.Response)
		}
	}
}

func TestExhaustiveMalleableValidation(t *testing.T) {
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	if _, err := ExhaustiveMalleable(2, ov, m, nil); err == nil {
		t.Error("empty operator set accepted")
	}
	ops := []malleable.Operator{{ID: 0, Cost: m.Cost(costmodel.OpSpec{Kind: costmodel.Scan, InTuples: 100})}}
	if _, err := ExhaustiveMalleable(0, ov, m, ops); err == nil {
		t.Error("P = 0 accepted")
	}
}

// TestLowerBoundIsSoundAgainstExhaustive: LB(N) from Section 7 must
// never exceed the true optimal makespan found by brute force.
func TestLowerBoundIsSoundAgainstExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		p := 2 + r.Intn(2)
		d := 1 + r.Intn(3)
		ov := resource.MustOverlap(r.Float64())
		var ops []*sched.Op
		total := 0
		for i := 0; total < 6 && i < 4; i++ {
			n := 1 + r.Intn(2)
			if n > p {
				n = p
			}
			clones := make([]vector.Vector, n)
			for k := range clones {
				w := vector.New(d)
				for j := range w {
					w[j] = r.Float64() * 10
				}
				clones[k] = w
			}
			ops = append(ops, &sched.Op{ID: i, Clones: clones})
			total += n
		}
		lb := sched.LowerBound(p, ov, ops)
		optVal, err := Exhaustive(p, d, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		if lb > optVal+1e-9 {
			t.Fatalf("trial %d: LB %g above true optimum %g — bound unsound", trial, lb, optVal)
		}
	}
}

func BenchmarkBound40Joins(b *testing.B) {
	pl := query.MustRandom(rand.New(rand.NewSource(1)), query.DefaultGenConfig(40))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bound(tt, m, ov, 80, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// BoundCached must be bit-identical to Bound: the cache contract says
// every memoized derivation equals the uncached model's, and the
// optimizer's pruning correctness leans on the two bounds agreeing.
func TestBoundCachedMatchesBound(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	m := costmodel.Default()
	ov := resource.MustOverlap(0.5)
	cache := costmodel.NewCache(m)
	for trial := 0; trial < 10; trial++ {
		joins := 2 + r.Intn(18)
		p := 4 + r.Intn(100)
		pl := query.MustRandom(r, query.DefaultGenConfig(joins))
		tt := taskTree(t, pl)
		plain, err := Bound(tt, m, ov, p, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := BoundCached(tt, cache, ov, p, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if plain != cached {
			t.Fatalf("BoundCached = %g != Bound = %g (joins=%d P=%d)", cached, plain, joins, p)
		}
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Fatal("cache never hit across structurally repeated specs")
	}
	// Validation errors surface identically through the cached path.
	if _, err := BoundCached(taskTree(t, leaf("R", 1000)), cache, ov, 0, 0.7); err == nil {
		t.Fatal("P = 0 accepted")
	}
}
