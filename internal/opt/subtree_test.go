package opt

import (
	"math"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

func subtreeRels(n int) []*query.Relation {
	rels := make([]*query.Relation, n)
	for i := range rels {
		rels[i] = &query.Relation{Name: string(rune('A' + i)), Tuples: 1000 * (i*i + 1)}
	}
	return rels
}

// The composed root bound must agree with the full task-tree OPTBOUND
// on every enumerated plan — the only admissible difference is the
// floating-point summation order of the congestion term.
func TestSubtreeBoundMatchesFullBound(t *testing.T) {
	cache := costmodel.NewCache(costmodel.Default())
	ov := resource.MustOverlap(0.5)
	const p, f = 16, 0.7
	for _, n := range []int{2, 3, 4, 5} {
		rels := subtreeRels(n)
		plans, err := query.EnumerateBushy(rels)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSubtreeBounds(cache, ov, p, f)
		if err != nil {
			t.Fatal(err)
		}
		for i, pl := range plans {
			want, err := BoundCached(taskTree(t, pl), cache, ov, p, f)
			if err != nil {
				t.Fatal(err)
			}
			got := sb.BoundOnce(pl)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("n=%d plan %d: composed bound %.15g, task-tree bound %.15g", n, i, got, want)
			}
		}
	}
}

// Monotonicity: a subtree's bound never exceeds the bound of any plan
// containing it — the exactness contract of streaming subtree pruning.
func TestSubtreeBoundMonotoneUnderComposition(t *testing.T) {
	cache := costmodel.NewCache(costmodel.Default())
	ov := resource.MustOverlap(0.5)
	sb, err := NewSubtreeBounds(cache, ov, 8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := query.EnumerateBushy(subtreeRels(5))
	if err != nil {
		t.Fatal(err)
	}
	// Allow summation-order slack: the containing bound is composed too,
	// so the comparison is exact in real arithmetic and ulp-tight here.
	const slack = 1e-12
	var walk func(root, n *query.PlanNode, rootBound float64)
	walk = func(root, n *query.PlanNode, rootBound float64) {
		if b := sb.Bound(n); b > rootBound*(1+slack) {
			t.Fatalf("subtree bound %.15g exceeds containing plan's bound %.15g", b, rootBound)
		}
		if n.IsLeaf() {
			return
		}
		walk(root, n.Outer, rootBound)
		walk(root, n.Inner, rootBound)
	}
	for _, pl := range plans {
		walk(pl, pl, sb.Bound(pl))
	}
}

// The memo must price shared DP subtrees once: pricing every plan of
// the n=4 enumeration touches far fewer distinct specs than pricing
// each plan in isolation.
func TestSubtreeBoundMemoSharesStructure(t *testing.T) {
	cache := costmodel.NewCache(costmodel.Default())
	ov := resource.MustOverlap(0.5)
	sb, err := NewSubtreeBounds(cache, ov, 16, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := query.EnumerateBushy(subtreeRels(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plans {
		sb.BoundOnce(pl)
	}
	// 120 plans × 7 operators = 840 evaluations unshared. Shared: the DP
	// holds every proper subtree once (4 leaves + 2-rel and 3-rel
	// subtrees) plus 2 evaluations per root.
	unshared := int64(len(plans) * 7)
	if got := sb.Terms(); got >= unshared/2 {
		t.Fatalf("composer evaluated %d operator terms; want structural sharing well under %d", got, unshared)
	}
	// Memoized re-pricing of a full plan is free.
	before := sb.Terms()
	sb.Bound(plans[0])
	after0 := sb.Terms()
	sb.Bound(plans[0])
	if sb.Terms() != after0 {
		t.Fatal("memoized Bound re-evaluated operator terms")
	}
	if after0 < before {
		t.Fatal("term counter went backwards")
	}
}

func TestNewSubtreeBoundsValidation(t *testing.T) {
	cache := costmodel.NewCache(costmodel.Default())
	ov := resource.MustOverlap(0.5)
	if _, err := NewSubtreeBounds(nil, ov, 8, 0.7); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewSubtreeBounds(cache, ov, 0, 0.7); err == nil {
		t.Error("P = 0 accepted")
	}
	if _, err := NewSubtreeBounds(cache, ov, 8, -1); err == nil {
		t.Error("negative f accepted")
	}
}
