package opt

import (
	"fmt"
	"math"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// SubtreeBounds computes OPTBOUND lower bounds for plan subtrees
// incrementally, without expanding them into operator trees: each
// subtree's annotation is composed from its children's in O(1) operator
// evaluations and memoized by node identity, so the streaming
// enumeration's subset DP — where one surviving subtree appears in many
// candidates — prices every subtree exactly once.
//
// The composition mirrors plan.Expand + Bound term by term. A plan node
// expands to operators whose specs depend only on the node (see
// plan.ScanSpec/BuildSpec/ProbeSpec) and to a task tree in which every
// join contributes one blocking build task below its probe. The
// annotation therefore carries:
//
//   - work: the sum of all zero-communication processing vectors in the
//     subtree (the congestion numerator l(S));
//   - rootTaskMax: the worst T^par inside the subtree's root task — the
//     root probe and the probe spine it pipelines with;
//   - belowCP: the critical path, in task time, strictly below the root
//     task.
//
// A join (outer O, inner I) then composes exactly as the expansion
// tasks do: the new probe joins O's root task; the new build forms a
// task with I's root; so
//
//	rootTaskMax' = max(T^par(probe), rootTaskMax(O))
//	belowCP'     = max(belowCP(O), max(T^par(build), rootTaskMax(I)) + belowCP(I))
//	bound        = max(l(work)/P, rootTaskMax' + belowCP')
//
// Both OPTBOUND terms are monotone under this composition — work only
// accumulates and the critical path only extends — so a subtree's bound
// is a valid lower bound on the bound (and hence the scheduled
// response) of every plan containing it. That monotonicity is what
// makes discarding a subtree against an incumbent response exact.
//
// At a full plan's root the composed value equals Bound up to
// floating-point summation order: the congestion sum here accumulates
// in subtree order rather than task order, so the two can differ in the
// last ulps. Exactness-critical callers treat composed bounds as prune
// references only (strict comparisons against achieved responses) and
// keep reported bounds from BoundCached where bit-identity matters.
//
// SubtreeBounds is not safe for concurrent use; the streaming search
// walks the enumeration serially.
type SubtreeBounds struct {
	cache *costmodel.Cache
	ov    resource.Overlap
	p     int
	f     float64
	memo  map[*query.PlanNode]subtreeAnnot

	// terms counts operator-spec evaluations (memo misses compose one
	// join = 2 evaluations, a leaf = 1), for tests and ledgers.
	terms int64
}

// subtreeAnnot is the composable OPTBOUND state of one plan subtree.
type subtreeAnnot struct {
	work        vector.Vector
	rootTaskMax float64
	belowCP     float64
	bound       float64
}

// NewSubtreeBounds validates the system parameters and returns an empty
// composer over the shared cost memo.
func NewSubtreeBounds(c *costmodel.Cache, ov resource.Overlap, p int, f float64) (*SubtreeBounds, error) {
	if c == nil {
		return nil, fmt.Errorf("opt: nil cost cache")
	}
	if p <= 0 {
		return nil, fmt.Errorf("opt: non-positive site count %d", p)
	}
	if f < 0 {
		return nil, fmt.Errorf("opt: negative granularity parameter %g", f)
	}
	return &SubtreeBounds{
		cache: c,
		ov:    ov,
		p:     p,
		f:     f,
		memo:  make(map[*query.PlanNode]subtreeAnnot),
	}, nil
}

// Bound returns the subtree's OPTBOUND lower bound, memoizing the
// annotation by node identity. Use it for DP subtrees that recur across
// candidates.
func (b *SubtreeBounds) Bound(n *query.PlanNode) float64 {
	return b.annot(n).bound
}

// BoundOnce prices n without memoizing n itself (children still hit the
// memo). Streaming searches use it for full-plan roots, which are seen
// exactly once — memoizing them would grow the table by T(n).
func (b *SubtreeBounds) BoundOnce(n *query.PlanNode) float64 {
	if a, ok := b.memo[n]; ok {
		return a.bound
	}
	return b.compose(n).bound
}

// Terms reports how many operator-spec evaluations the composer has
// performed (a proxy for distinct subtrees priced).
func (b *SubtreeBounds) Terms() int64 { return b.terms }

func (b *SubtreeBounds) annot(n *query.PlanNode) subtreeAnnot {
	if a, ok := b.memo[n]; ok {
		return a
	}
	a := b.compose(n)
	b.memo[n] = a
	return a
}

// compose builds n's annotation from its children's memoized ones.
func (b *SubtreeBounds) compose(n *query.PlanNode) subtreeAnnot {
	if n.IsLeaf() {
		proc, t := b.cache.BoundTerm(plan.ScanSpec(n), b.f, b.p, b.ov)
		b.terms++
		return subtreeAnnot{
			work:        proc.Clone(),
			rootTaskMax: t,
			bound:       math.Max(proc.Length()/float64(b.p), t),
		}
	}
	o := b.annot(n.Outer)
	i := b.annot(n.Inner)
	bProc, bT := b.cache.BoundTerm(plan.BuildSpec(n), b.f, b.p, b.ov)
	pProc, pT := b.cache.BoundTerm(plan.ProbeSpec(n), b.f, b.p, b.ov)
	b.terms += 2

	work := o.work.Clone()
	work.AddInPlace(i.work)
	work.AddInPlace(bProc)
	work.AddInPlace(pProc)

	rootMax := math.Max(pT, o.rootTaskMax)
	buildTask := math.Max(bT, i.rootTaskMax) + i.belowCP
	below := math.Max(o.belowCP, buildTask)

	return subtreeAnnot{
		work:        work,
		rootTaskMax: rootMax,
		belowCP:     below,
		bound:       math.Max(work.Length()/float64(b.p), rootMax+below),
	}
}
