// Package opt provides the optimality references used in the paper's
// evaluation and in this repository's test suite:
//
//   - Bound computes OPTBOUND (Section 6.2), the lower bound on the
//     response time of the optimal CG_f execution that Figure 6(b)
//     compares TREESCHEDULE against; and
//   - Exhaustive and ExhaustiveMalleable compute true optima for tiny
//     instances by brute force, used to validate the Theorem 5.1 and
//     Theorem 7.1 performance-ratio guarantees empirically.
package opt

import (
	"fmt"
	"math"

	"mdrs/internal/costmodel"
	"mdrs/internal/malleable"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Bound computes
//
//	OPTBOUND = max{ l(S)/P, T(CP) }
//
// where S is the set of zero-communication work vectors of all plan
// operators (so l(S)/P is the perfectly balanced congestion bound) and
// T(CP) is the response time of the critical path: the most expensive
// root-to-leaf chain of blocking-dependent tasks, each task costed at
// the maximum allowable degree of coarse-grain parallelism for its
// operators. By assumption A4 this is a valid lower bound on the length
// of any CG_f execution.
func Bound(tt *plan.TaskTree, m costmodel.Model, ov resource.Overlap, p int, f float64) (float64, error) {
	return bound(tt, p, f, func(spec costmodel.OpSpec) (vector.Vector, float64) {
		c := m.Cost(spec)
		n := m.Degree(c, f, p, ov)
		return c.Processing, m.TPar(c, n, ov)
	})
}

// BoundCached is Bound evaluated through a cost-model memo: every
// per-operator derivation (cost vector, CG_f degree, T^par) goes through
// the cache, so a caller that bounds many structurally similar plans —
// the optimizer's bound-pruned search bounds every candidate before
// scheduling any — prices each distinct operator spec once, and the
// same memo entries later serve TreeSchedule on the survivors. Every
// cached answer is bit-identical to the uncached model's, so
// BoundCached(tt, costmodel.NewCache(m), …) == Bound(tt, m, …) exactly.
func BoundCached(tt *plan.TaskTree, c *costmodel.Cache, ov resource.Overlap, p int, f float64) (float64, error) {
	return bound(tt, p, f, func(spec costmodel.OpSpec) (vector.Vector, float64) {
		return c.BoundTerm(spec, f, p, ov)
	})
}

// bound is the shared OPTBOUND body: eval returns one operator's
// zero-communication processing vector and its T^par at the best CG_f
// degree. Unlike sched.LowerBound, which takes caller-supplied clone
// vectors of arbitrary shape, every vector here comes from
// Model.Cost/Cache.Cost, which always allocate resource.Dims components
// — so the AddInPlace below cannot see a dimension mismatch (audited
// alongside the LowerBound mixed-dimension fix).
func bound(tt *plan.TaskTree, p int, f float64, eval func(costmodel.OpSpec) (vector.Vector, float64)) (float64, error) {
	if err := tt.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("opt: non-positive site count %d", p)
	}
	if f < 0 {
		return 0, fmt.Errorf("opt: negative granularity parameter %g", f)
	}

	// Congestion bound: total zero-communication work per resource,
	// spread perfectly over P sites.
	total := vector.New(resource.Dims)
	// Per-task cost: the slowest operator at its best CG_f degree.
	taskTime := make(map[*plan.Task]float64, len(tt.Tasks))
	for _, tk := range tt.Tasks {
		worst := 0.0
		for _, op := range tk.Ops {
			proc, t := eval(op.Spec)
			total.AddInPlace(proc)
			if t > worst {
				worst = t
			}
		}
		taskTime[tk] = worst
	}
	congestion := total.Length() / float64(p)

	// Critical path over the task tree: children must complete before
	// their parent starts, so path times add.
	var critical func(tk *plan.Task) float64
	critical = func(tk *plan.Task) float64 {
		deepest := 0.0
		for _, c := range tk.Children {
			if t := critical(c); t > deepest {
				deepest = t
			}
		}
		return taskTime[tk] + deepest
	}
	cp := critical(tt.Root)

	return math.Max(congestion, cp), nil
}

// Exhaustive finds the response time of the optimal assignment of the
// given operators (with their fixed clone vectors) to p d-dimensional
// sites, subject to Definition 5.1's constraints, by exhaustive
// branch-and-bound. Rooted operators are honored. The search is
// exponential in the total clone count; callers must keep instances
// tiny (≲ 10 clones).
func Exhaustive(p, d int, ov resource.Overlap, ops []*sched.Op) (float64, error) {
	// Validate via a throwaway heuristic run, which also gives an upper
	// bound that seeds the branch-and-bound.
	heur, err := sched.OperatorSchedule(p, d, ov, ops)
	if err != nil {
		return 0, err
	}
	best := heur.Response

	type cloneRef struct {
		op *sched.Op
		k  int
	}
	var clones []cloneRef
	sys := resource.NewSystem(p, d, ov)
	usedBy := make(map[*sched.Op]map[int]bool, len(ops))
	for _, op := range ops {
		usedBy[op] = map[int]bool{}
		if op.Rooted() {
			for k, s := range op.Home {
				sys.Site(s).Assign(op.Clones[k])
				usedBy[op][s] = true
			}
			continue
		}
		for k := range op.Clones {
			clones = append(clones, cloneRef{op: op, k: k})
		}
	}

	var rec func(i int, cur float64)
	rec = func(i int, cur float64) {
		if cur >= best-1e-15 {
			return // prune: partial makespan already no better
		}
		if i == len(clones) {
			best = cur
			return
		}
		c := clones[i]
		for j := 0; j < p; j++ {
			if usedBy[c.op][j] {
				continue
			}
			site := sys.Site(j)
			// Snapshot-free trial: recompute the site's T^site after
			// adding, recursing with an updated running makespan.
			prevClones := site.NumClones()
			site.Assign(c.op.Clones[c.k])
			usedBy[c.op][j] = true
			next := cur
			if t := site.TSite(); t > next {
				next = t
			}
			rec(i+1, next)
			usedBy[c.op][j] = false
			// Rebuild the site without the last clone (Site has no
			// remove; reconstruct from the retained slice).
			old := append([]vector.Vector(nil), site.Clones()[:prevClones]...)
			site.Reset()
			for _, w := range old {
				site.Assign(w)
			}
		}
	}
	rec(0, sys.MaxTSite())
	return best, nil
}

// ExhaustiveMalleable finds the optimal response time over all
// parallelizations and all assignments for a set of malleable floating
// operators: the unconstrained optimum of Section 7. Complexity is
// O(P^M) parallelizations times an exhaustive packing each; instances
// must be tiny.
func ExhaustiveMalleable(p int, ov resource.Overlap, m costmodel.Model, ops []malleable.Operator) (float64, error) {
	if len(ops) == 0 {
		return 0, fmt.Errorf("opt: no operators")
	}
	if p <= 0 {
		return 0, fmt.Errorf("opt: non-positive site count %d", p)
	}
	degrees := make([]int, len(ops))
	for i := range degrees {
		degrees[i] = 1
	}
	best := math.Inf(1)
	for {
		schedOps := make([]*sched.Op, len(ops))
		for i, op := range ops {
			schedOps[i] = &sched.Op{ID: op.ID, Clones: m.Clones(op.Cost, degrees[i])}
		}
		opt, err := Exhaustive(p, resource.Dims, ov, schedOps)
		if err != nil {
			return 0, err
		}
		if opt < best {
			best = opt
		}
		// Next parallelization in mixed-radix order.
		i := 0
		for ; i < len(degrees); i++ {
			if degrees[i] < p {
				degrees[i]++
				break
			}
			degrees[i] = 1
		}
		if i == len(degrees) {
			return best, nil
		}
	}
}
