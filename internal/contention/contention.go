// Package contention extends the paper's model with its second open
// problem: resources with different degrees of "preemptability".
// Assumption A2 says time-slicing a preemptable resource costs nothing;
// the conclusions note that disks, in particular, do not time-share as
// gracefully as CPUs — slicing a disk among many tasks reduces its
// effective bandwidth (seeks between interleaved streams).
//
// The extension charges a per-resource sharing penalty γ_i: when k
// clones use resource i at one site, the resource's effective demand
// inflates to
//
//	load_i · (1 + γ_i·(k − 1)),
//
// so γ = 0 recovers Equation 2 exactly and γ_disk ≈ 0.05–0.2 models
// seek overhead growing with the number of interleaved streams. The
// package provides both a penalized evaluator for existing schedules
// (how much does A2's idealization cost?) and a penalty-aware variant
// of the OperatorSchedule list rule whose greedy key is the penalized
// site load (how much of that cost can the scheduler win back?).
package contention

import (
	"fmt"
	"sort"

	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Penalty holds one sharing-penalty coefficient γ_i >= 0 per resource.
// A nil Penalty means γ = 0 everywhere (the paper's assumption A2).
type Penalty []float64

// Validate reports dimension or sign problems.
func (g Penalty) Validate(d int) error {
	if g == nil {
		return nil
	}
	if len(g) != d {
		return fmt.Errorf("contention: penalty has %d coefficients for %d resources", len(g), d)
	}
	for i, x := range g {
		if x < 0 {
			return fmt.Errorf("contention: negative penalty γ_%d = %g", i, x)
		}
	}
	return nil
}

// DiskOnly returns a d-dimensional penalty charging γ on the disk
// resource only — the paper's motivating case.
func DiskOnly(d int, gamma float64) Penalty {
	g := make(Penalty, d)
	if resource.Disk < d {
		g[resource.Disk] = gamma
	}
	return g
}

// TSite returns the penalized site response time: Equation 2 with each
// resource's aggregate load inflated by its sharing penalty.
func TSite(ov resource.Overlap, g Penalty, clones []vector.Vector) float64 {
	if len(clones) == 0 {
		return 0
	}
	d := clones[0].Dim()
	load := vector.New(d)
	users := make([]int, d)
	maxSeq := 0.0
	for _, w := range clones {
		load.AddInPlace(w)
		for i, x := range w {
			if x > 0 {
				users[i]++
			}
		}
		if t := ov.TSeq(w); t > maxSeq {
			maxSeq = t
		}
	}
	worst := 0.0
	for i := range load {
		l := load[i]
		if g != nil && users[i] > 1 {
			l *= 1 + g[i]*float64(users[i]-1)
		}
		if l > worst {
			worst = l
		}
	}
	if maxSeq > worst {
		return maxSeq
	}
	return worst
}

// EvalSchedule replays a phased schedule under the penalized model and
// returns its end-to-end response time (sum over phases of the worst
// penalized site). With g = nil it reproduces the schedule's own
// Response.
func EvalSchedule(ov resource.Overlap, g Penalty, s *sched.Schedule) (float64, error) {
	if err := g.Validate(resource.Dims); err != nil {
		return 0, err
	}
	total := 0.0
	for _, ph := range s.Phases {
		siteClones := make([][]vector.Vector, s.P)
		for _, pl := range ph.Placements {
			for k, site := range pl.Sites {
				siteClones[site] = append(siteClones[site], pl.Clones[k])
			}
		}
		worst := 0.0
		for _, clones := range siteClones {
			if t := TSite(ov, g, clones); t > worst {
				worst = t
			}
		}
		total += worst
	}
	return total, nil
}

// OperatorSchedule is the penalty-aware variant of the paper's list
// scheduling rule: identical list order and constraints, but the greedy
// key and the reported response use the penalized site time, so clones
// that would interleave on a poorly-sharing resource repel each other.
func OperatorSchedule(p, d int, ov resource.Overlap, g Penalty, ops []*sched.Op) (*sched.Result, error) {
	if err := g.Validate(d); err != nil {
		return nil, err
	}
	// Delegate argument validation to the base scheduler on a dry run
	// with the same inputs; its Result also seeds the Sites map shape.
	if _, err := sched.OperatorSchedule(p, d, ov, ops); err != nil {
		return nil, err
	}

	siteClones := make([][]vector.Vector, p)
	res := &sched.Result{Sites: make(map[int][]int, len(ops))}

	// Rooted clones first.
	used := make(map[int]map[int]bool, len(ops))
	for _, op := range ops {
		used[op.ID] = map[int]bool{}
		if !op.Rooted() {
			res.Sites[op.ID] = make([]int, len(op.Clones))
			continue
		}
		sites := make([]int, len(op.Clones))
		for k, w := range op.Clones {
			siteClones[op.Home[k]] = append(siteClones[op.Home[k]], w)
			sites[k] = op.Home[k]
			used[op.ID][op.Home[k]] = true
		}
		res.Sites[op.ID] = sites
	}

	type item struct {
		op    *sched.Op
		clone int
	}
	var list []item
	for _, op := range ops {
		if op.Rooted() {
			continue
		}
		for k := range op.Clones {
			list = append(list, item{op: op, clone: k})
		}
	}
	sort.SliceStable(list, func(i, j int) bool {
		a, b := list[i], list[j]
		la, lb := a.op.Clones[a.clone].Length(), b.op.Clones[b.clone].Length()
		if la != lb {
			return la > lb
		}
		if a.op.ID != b.op.ID {
			return a.op.ID < b.op.ID
		}
		return a.clone < b.clone
	})

	for _, it := range list {
		w := it.op.Clones[it.clone]
		best, bestKey := -1, 0.0
		for j := 0; j < p; j++ {
			if used[it.op.ID][j] {
				continue
			}
			// Greedy key: the penalized site time if the clone lands here.
			key := TSite(ov, g, append(siteClones[j], w))
			if best < 0 || key < bestKey-1e-12 {
				best, bestKey = j, key
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("contention: no allowable site for op %d clone %d",
				it.op.ID, it.clone)
		}
		siteClones[best] = append(siteClones[best], w)
		used[it.op.ID][best] = true
		res.Sites[it.op.ID][it.clone] = best
	}

	worst := 0.0
	for _, clones := range siteClones {
		if t := TSite(ov, g, clones); t > worst {
			worst = t
		}
	}
	res.Response = worst
	return res, nil
}
