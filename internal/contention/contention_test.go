package contention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

func TestPenaltyValidate(t *testing.T) {
	if err := Penalty(nil).Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := (Penalty{0, 0.1, 0}).Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := (Penalty{0.1}).Validate(3); err == nil {
		t.Error("wrong dimension accepted")
	}
	if err := (Penalty{0, -0.1, 0}).Validate(3); err == nil {
		t.Error("negative coefficient accepted")
	}
}

func TestDiskOnly(t *testing.T) {
	g := DiskOnly(3, 0.2)
	if g[resource.CPU] != 0 || g[resource.Net] != 0 || g[resource.Disk] != 0.2 {
		t.Fatalf("DiskOnly = %v", g)
	}
}

func TestTSiteZeroPenaltyMatchesEquation2(t *testing.T) {
	ov := resource.MustOverlap(0.3)
	clones := []vector.Vector{vector.Of(10, 15), vector.Of(10, 5)}
	s := resource.NewSite(0, 2, ov)
	for _, w := range clones {
		s.Assign(w)
	}
	if got := TSite(ov, nil, clones); math.Abs(got-s.TSite()) > 1e-12 {
		t.Fatalf("TSite(γ=0) = %g, Equation 2 = %g", got, s.TSite())
	}
	if got := TSite(ov, Penalty{0, 0}, clones); math.Abs(got-s.TSite()) > 1e-12 {
		t.Fatalf("explicit zero penalty differs: %g vs %g", got, s.TSite())
	}
}

func TestTSitePenaltyInflatesSharedResource(t *testing.T) {
	ov := resource.MustOverlap(1)
	// Two clones sharing the disk (dimension 1): load 10 each -> 20.
	clones := []vector.Vector{vector.Of(0, 10), vector.Of(0, 10)}
	g := Penalty{0, 0.5}
	// Penalized disk load: 20 · (1 + 0.5·(2−1)) = 30.
	if got := TSite(ov, g, clones); math.Abs(got-30) > 1e-12 {
		t.Fatalf("penalized TSite = %g, want 30", got)
	}
	// A single user pays no penalty.
	if got := TSite(ov, g, clones[:1]); math.Abs(got-10) > 1e-12 {
		t.Fatalf("single-user TSite = %g, want 10", got)
	}
	// Clones not touching the disk are not counted as users.
	mixed := []vector.Vector{vector.Of(5, 10), vector.Of(5, 0)}
	if got := TSite(ov, g, mixed); math.Abs(got-10) > 1e-12 {
		t.Fatalf("mixed TSite = %g, want 10 (one disk user)", got)
	}
}

func TestTSiteEmpty(t *testing.T) {
	if got := TSite(resource.MustOverlap(0.5), nil, nil); got != 0 {
		t.Fatalf("empty TSite = %g", got)
	}
}

// Property: the penalized site time is monotone in γ and never below
// the unpenalized Equation 2 value.
func TestQuickTSiteMonotoneInPenalty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ov := resource.MustOverlap(r.Float64())
		d := 1 + r.Intn(4)
		n := 1 + r.Intn(6)
		clones := make([]vector.Vector, n)
		for i := range clones {
			w := vector.New(d)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			clones[i] = w
		}
		g1, g2 := make(Penalty, d), make(Penalty, d)
		for i := range g1 {
			g1[i] = r.Float64() * 0.3
			g2[i] = g1[i] + r.Float64()*0.3
		}
		base := TSite(ov, nil, clones)
		t1, t2 := TSite(ov, g1, clones), TSite(ov, g2, clones)
		return t1 >= base-1e-9 && t2 >= t1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func treeSchedule(t *testing.T, joins, p int) *sched.Schedule {
	t.Helper()
	r := rand.New(rand.NewSource(int64(joins)))
	pl := query.MustRandom(r, query.DefaultGenConfig(joins))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       p, F: 0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvalScheduleZeroPenaltyMatchesResponse(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	s := treeSchedule(t, 10, 12)
	got, err := EvalSchedule(ov, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-s.Response) > 1e-9 {
		t.Fatalf("γ=0 evaluation %g != schedule response %g", got, s.Response)
	}
}

func TestEvalScheduleDiskPenaltyCosts(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	s := treeSchedule(t, 15, 12)
	base, err := EvalSchedule(ov, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	pen, err := EvalSchedule(ov, DiskOnly(resource.Dims, 1.0), s)
	if err != nil {
		t.Fatal(err)
	}
	if pen <= base {
		t.Fatalf("disk penalty did not cost: %g vs %g", pen, base)
	}
}

func TestEvalScheduleRejectsBadPenalty(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	s := treeSchedule(t, 5, 6)
	if _, err := EvalSchedule(ov, Penalty{1}, s); err == nil {
		t.Fatal("wrong-dimension penalty accepted")
	}
}

func randomOps(r *rand.Rand, m, p, d int) []*sched.Op {
	ops := make([]*sched.Op, m)
	for i := range ops {
		n := 1 + r.Intn(p)
		clones := make([]vector.Vector, n)
		for k := range clones {
			w := vector.New(d)
			for j := range w {
				// Skewed toward disk-heavy vectors so sharing matters.
				w[j] = r.Float64() * 5
			}
			w[d-1] += r.Float64() * 10
			clones[k] = w
		}
		ops[i] = &sched.Op{ID: i, Clones: clones}
	}
	return ops
}

func TestPenaltyAwareSchedulingNeverWorseOnAverage(t *testing.T) {
	// The penalty-aware greedy should beat (or match) evaluating the
	// penalty-blind schedule under the penalized model, on average.
	r := rand.New(rand.NewSource(17))
	ov := resource.MustOverlap(0.5)
	d := 3
	g := DiskOnly(d, 0.3)
	var sumAware, sumBlind float64
	for trial := 0; trial < 20; trial++ {
		p := 3 + r.Intn(8)
		ops := randomOps(r, 2+r.Intn(8), p, d)
		blind, err := sched.OperatorSchedule(p, d, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate the blind schedule under the penalized model.
		siteClones := make([][]vector.Vector, p)
		for _, op := range ops {
			for k, site := range blind.Sites[op.ID] {
				siteClones[site] = append(siteClones[site], op.Clones[k])
			}
		}
		blindPen := 0.0
		for _, clones := range siteClones {
			if tt := TSite(ov, g, clones); tt > blindPen {
				blindPen = tt
			}
		}
		aware, err := OperatorSchedule(p, d, ov, g, ops)
		if err != nil {
			t.Fatal(err)
		}
		sumAware += aware.Response
		sumBlind += blindPen
	}
	if sumAware > sumBlind*1.001 {
		t.Fatalf("penalty-aware total %g worse than penalty-blind total %g",
			sumAware, sumBlind)
	}
}

func TestPenaltyAwareRespectsConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ov := resource.MustOverlap(0.4)
	g := DiskOnly(3, 0.2)
	ops := randomOps(r, 6, 5, 3)
	// Root one operator.
	ops[0].Home = []int{2}
	ops[0].Clones = ops[0].Clones[:1]
	res, err := OperatorSchedule(5, 3, ov, g, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites[0][0] != 2 {
		t.Fatalf("rooted op moved to %d", res.Sites[0][0])
	}
	for _, op := range ops {
		seen := map[int]bool{}
		for _, s := range res.Sites[op.ID] {
			if seen[s] {
				t.Fatalf("op %d has two clones at site %d", op.ID, s)
			}
			seen[s] = true
		}
	}
}

func TestPenaltyAwareInvalidArgs(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	ops := []*sched.Op{{ID: 0, Clones: []vector.Vector{vector.Of(1, 1, 1)}}}
	if _, err := OperatorSchedule(2, 3, ov, Penalty{1}, ops); err == nil {
		t.Error("wrong-dimension penalty accepted")
	}
	if _, err := OperatorSchedule(0, 3, ov, nil, ops); err == nil {
		t.Error("P = 0 accepted")
	}
}

func BenchmarkPenaltyAwareSchedule(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ov := resource.MustOverlap(0.5)
	g := DiskOnly(3, 0.2)
	ops := randomOps(r, 30, 16, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OperatorSchedule(16, 3, ov, g, ops); err != nil {
			b.Fatal(err)
		}
	}
}
