package costmodel

import (
	"sync"
	"sync/atomic"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// cacheMapLimit bounds each memo map of a Cache. Real workloads carry a
// small set of distinct OpSpec values (cardinalities repeat across
// queries drawn from one catalog), so the limit exists only as a
// backstop against adversarial spec streams: when a map reaches the
// limit it is reset wholesale — the next lookups repopulate it — rather
// than growing without bound. A reset changes nothing observable except
// timing; every answer is recomputed from the same pure functions.
const cacheMapLimit = 1 << 14

// Cache memoizes a Model's cost derivations under canonical struct
// keys: Cost by the OpSpec value itself, Degree by (spec, f, P, ε), and
// Clones by (spec, N). All three underlying computations are pure
// functions of their keys, so a cached answer is bit-identical to a
// fresh one — the scheduler identity tests pin this — and the cache can
// be shared freely across phases, trees, batch entries, and concurrent
// scheduling calls (all methods are safe for concurrent use).
//
// Clone slices are shared between callers: the returned []vector.Vector
// and the vectors inside it must be treated as read-only, matching the
// convention resource.Site.Assign already requires.
type Cache struct {
	model Model

	mu      sync.RWMutex
	costs   map[OpSpec]OpCost
	degrees map[degreeKey]int
	clones  map[clonesKey][]vector.Vector
	bounds  map[degreeKey]boundTerm

	hits   atomic.Int64
	misses atomic.Int64
}

// degreeKey identifies one Degree computation: the spec (which pins the
// cost vector) plus every parameter DegreeCapped reads, including the
// absolute parallelism cap (0 = uncapped) — two callers with different
// caps must never share a memoized answer.
type degreeKey struct {
	spec OpSpec
	f    float64
	p    int
	ov   resource.Overlap
	cap  int
}

// clonesKey identifies one Clones computation.
type clonesKey struct {
	spec OpSpec
	n    int
}

// boundTerm is the memoized per-operator OPTBOUND contribution: the
// zero-communication processing vector (the operator's addend to the
// total-work term l(S)/P) and T^par at the best uncapped CG_f degree
// (its addend to the critical-path term).
type boundTerm struct {
	proc vector.Vector
	tpar float64
}

// NewCache returns an empty memo over the given model.
func NewCache(m Model) *Cache {
	return &Cache{
		model:   m,
		costs:   make(map[OpSpec]OpCost),
		degrees: make(map[degreeKey]int),
		clones:  make(map[clonesKey][]vector.Vector),
		bounds:  make(map[degreeKey]boundTerm),
	}
}

// Cached returns a fresh memo wrapper over the model.
func (m Model) Cached() *Cache { return NewCache(m) }

// Model returns the underlying (uncached) model.
func (c *Cache) Model() Model { return c.model }

// Stats reports the cumulative hit and miss counts across all three
// memo maps, for tests and capacity tuning.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Cost is Model.Cost memoized by the spec value.
func (c *Cache) Cost(spec OpSpec) OpCost {
	c.mu.RLock()
	cost, ok := c.costs[spec]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return cost
	}
	c.misses.Add(1)
	cost = c.model.Cost(spec)
	c.mu.Lock()
	if len(c.costs) >= cacheMapLimit {
		clear(c.costs)
	}
	c.costs[spec] = cost
	c.mu.Unlock()
	return cost
}

// Degree is Model.Degree memoized by (spec, f, P, ε). It takes the spec
// rather than an OpCost because the cost is itself a pure function of
// the spec; the memo covers the NOpt scan inside Degree, which is the
// expensive part of preparing an operator.
func (c *Cache) Degree(spec OpSpec, f float64, p int, ov resource.Overlap) int {
	return c.DegreeCapped(spec, f, p, ov, 0)
}

// DegreeCapped is Model.DegreeCapped memoized by (spec, f, P, ε, cap).
// The cap participates in the key, so answers computed under different
// parallelism caps never alias.
func (c *Cache) DegreeCapped(spec OpSpec, f float64, p int, ov resource.Overlap, cap int) int {
	if cap < 0 {
		cap = 0
	}
	k := degreeKey{spec: spec, f: f, p: p, ov: ov, cap: cap}
	c.mu.RLock()
	n, ok := c.degrees[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return n
	}
	c.misses.Add(1)
	n = c.model.DegreeCapped(c.Cost(spec), f, p, ov, cap)
	c.mu.Lock()
	if len(c.degrees) >= cacheMapLimit {
		clear(c.degrees)
	}
	c.degrees[k] = n
	c.mu.Unlock()
	return n
}

// Clones is Model.Clones memoized by (spec, N). The returned slice and
// its vectors are shared across callers and must not be mutated.
func (c *Cache) Clones(spec OpSpec, n int) []vector.Vector {
	k := clonesKey{spec: spec, n: n}
	c.mu.RLock()
	out, ok := c.clones[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return out
	}
	c.misses.Add(1)
	out = c.model.Clones(c.Cost(spec), n)
	c.mu.Lock()
	if len(c.clones) >= cacheMapLimit {
		clear(c.clones)
	}
	c.clones[k] = out
	c.mu.Unlock()
	return out
}

// BoundTerm returns the operator's two OPTBOUND ingredients — the
// zero-communication processing vector and T^par at the best uncapped
// CG_f degree — memoized by (spec, f, P, ε). Both values come from the
// same cached Cost/Degree/TPar evaluations the unmemoized bound uses,
// so a memoized term is bit-identical to a fresh one. The returned
// vector is shared across callers and must be treated as read-only.
func (c *Cache) BoundTerm(spec OpSpec, f float64, p int, ov resource.Overlap) (vector.Vector, float64) {
	k := degreeKey{spec: spec, f: f, p: p, ov: ov}
	c.mu.RLock()
	bt, ok := c.bounds[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return bt.proc, bt.tpar
	}
	c.misses.Add(1)
	n := c.Degree(spec, f, p, ov)
	bt = boundTerm{proc: c.Cost(spec).Processing, tpar: c.TPar(spec, n, ov)}
	c.mu.Lock()
	if len(c.bounds) >= cacheMapLimit {
		clear(c.bounds)
	}
	c.bounds[k] = bt
	c.mu.Unlock()
	return bt.proc, bt.tpar
}

// TPar evaluates Model.TPar over the cached cost of the spec. The
// closed-form evaluation is a handful of flops — cheaper than a memo
// probe — so only the cost lookup is cached.
func (c *Cache) TPar(spec OpSpec, n int, ov resource.Overlap) float64 {
	return c.model.TPar(c.Cost(spec), n, ov)
}
