package costmodel

import (
	"testing"

	"mdrs/internal/resource"
)

// DegreeCapped with cap 0 (and negative caps, which normalize to 0) is
// exactly Degree; a positive cap clamps the result without ever pushing
// it below 1 or changing an already-smaller answer.
func TestDegreeCappedClampsDegree(t *testing.T) {
	m := Model{Params: DefaultParams()}
	ov := resource.MustOverlap(0.5)
	spec := OpSpec{Kind: Probe, InTuples: 200000, ResultTuples: 50000}
	c := m.Cost(spec)
	const f, p = 0.3, 16

	base := m.Degree(c, f, p, ov)
	if base < 1 {
		t.Fatalf("uncapped degree %d < 1", base)
	}
	if got := m.DegreeCapped(c, f, p, ov, 0); got != base {
		t.Fatalf("cap 0: got %d, want uncapped %d", got, base)
	}
	for cap := 1; cap <= p; cap++ {
		got := m.DegreeCapped(c, f, p, ov, cap)
		if got > cap {
			t.Fatalf("cap %d: degree %d exceeds the cap", cap, got)
		}
		if got < 1 {
			t.Fatalf("cap %d: degree %d < 1", cap, got)
		}
		if cap >= base && got != base {
			t.Fatalf("cap %d above uncapped %d changed the degree to %d", cap, base, got)
		}
	}
	// A cap above P is inert: min{N_max, N_opt, P} already bounds it.
	if got := m.DegreeCapped(c, f, p, ov, p+100); got != base {
		t.Fatalf("cap beyond P changed the degree: %d != %d", got, base)
	}
}

// The capped degree re-minimizes NOpt under the clamped range: the
// answer under cap k must equal Degree computed as if the system had
// min(P, cap-adjusted NMax) sites of headroom, i.e. it is always the
// cheapest degree not exceeding the cap — never just min(cap, Degree),
// which could miss a lower NOpt inside the clamped range.
func TestDegreeCappedMonotoneInCap(t *testing.T) {
	m := Model{Params: DefaultParams()}
	ov := resource.MustOverlap(0.5)
	spec := OpSpec{Kind: Build, InTuples: 500000}
	c := m.Cost(spec)
	const f, p = 0.3, 32

	prev := 0
	for cap := 1; cap <= p; cap++ {
		got := m.DegreeCapped(c, f, p, ov, cap)
		if got < prev {
			t.Fatalf("degree not monotone in cap: cap %d gives %d < %d", cap, got, prev)
		}
		prev = got
	}
}

// The memo keys include the cap: answers computed under different caps
// never alias, and every cached answer is bit-identical to a fresh
// model computation.
func TestCacheDegreeCappedKeyedByCap(t *testing.T) {
	m := Model{Params: DefaultParams()}
	ov := resource.MustOverlap(0.5)
	cache := NewCache(m)
	spec := OpSpec{Kind: Probe, InTuples: 300000, ResultTuples: 80000}
	const f, p = 0.3, 16

	for _, cap := range []int{0, 1, 2, 4, 8, 0, 1, 2, 4, 8} {
		want := m.DegreeCapped(m.Cost(spec), f, p, ov, cap)
		if got := cache.DegreeCapped(spec, f, p, ov, cap); got != want {
			t.Fatalf("cap %d: cached %d != fresh %d", cap, got, want)
		}
	}
	// Negative caps normalize to 0 and share the uncapped memo entry.
	if got, want := cache.DegreeCapped(spec, f, p, ov, -3), cache.Degree(spec, f, p, ov); got != want {
		t.Fatalf("negative cap: %d != uncapped %d", got, want)
	}
	hits, _ := cache.Stats()
	if hits == 0 {
		t.Fatal("repeated capped lookups never hit the memo")
	}
}
