package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := DefaultParams()
	if p.MIPS != 1 {
		t.Errorf("MIPS = %g, want 1", p.MIPS)
	}
	if p.DiskPageTime != 0.020 {
		t.Errorf("DiskPageTime = %g, want 0.020", p.DiskPageTime)
	}
	if p.Alpha != 0.015 {
		t.Errorf("Alpha = %g, want 0.015", p.Alpha)
	}
	if p.Beta != 0.6e-6 {
		t.Errorf("Beta = %g, want 0.6e-6", p.Beta)
	}
	if p.TupleBytes != 128 || p.PageTuples != 40 {
		t.Errorf("tuple/page = %d/%d, want 128/40", p.TupleBytes, p.PageTuples)
	}
	if p.ReadPageInstr != 5000 || p.WritePageInstr != 5000 ||
		p.ExtractInstr != 300 || p.HashInstr != 100 || p.ProbeInstr != 200 {
		t.Errorf("instruction counts differ from Table 2: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Table 2 defaults invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.MIPS = 0 },
		func(p *Params) { p.DiskPageTime = -1 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Beta = -1 },
		func(p *Params) { p.TupleBytes = 0 },
		func(p *Params) { p.PageTuples = -3 },
		func(p *Params) { p.HashInstr = -1 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
		if _, err := New(p); err == nil {
			t.Errorf("case %d: New accepted bad params", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with MIPS=0 did not panic")
		}
	}()
	p := DefaultParams()
	p.MIPS = 0
	MustNew(p)
}

func TestPagesAndBytes(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		tuples, pages int
	}{
		{0, 0}, {1, 1}, {39, 1}, {40, 1}, {41, 2}, {1000, 25}, {-5, 0},
	}
	for _, tt := range tests {
		if got := p.Pages(tt.tuples); got != tt.pages {
			t.Errorf("Pages(%d) = %d, want %d", tt.tuples, got, tt.pages)
		}
	}
	if got := p.Bytes(1000); got != 128000 {
		t.Errorf("Bytes(1000) = %g, want 128000", got)
	}
	if got := p.Bytes(-1); got != 0 {
		t.Errorf("Bytes(-1) = %g, want 0", got)
	}
}

func TestScanCost(t *testing.T) {
	m := Default()
	// 1000 tuples = 25 pages. CPU = 25*5000 + 1000*300 = 425000 instr =
	// 0.425 s at 1 MIPS. Disk = 25 * 0.020 = 0.5 s.
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 1000, NetOut: true})
	if got := c.Processing[resource.CPU]; math.Abs(got-0.425) > 1e-12 {
		t.Errorf("scan CPU = %g, want 0.425", got)
	}
	if got := c.Processing[resource.Disk]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("scan disk = %g, want 0.5", got)
	}
	if got := c.Processing[resource.Net]; got != 0 {
		t.Errorf("scan processing net = %g, want 0 (net is communication area)", got)
	}
	if got := c.D; got != 128000 {
		t.Errorf("scan D = %g, want 128000 (output repartitioned)", got)
	}
	// Without NetOut there is no interconnect traffic.
	if got := m.Cost(OpSpec{Kind: Scan, InTuples: 1000}).D; got != 0 {
		t.Errorf("local scan D = %g, want 0", got)
	}
}

func TestBuildCost(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Build, InTuples: 2000, NetIn: true})
	// 2000 * (300 extract + 100 hash) instr = 0.8 s.
	if got := c.Processing[resource.CPU]; math.Abs(got-0.8) > 1e-12 {
		t.Errorf("build CPU = %g, want 0.8", got)
	}
	if c.Processing[resource.Disk] != 0 {
		t.Errorf("build disk = %g, want 0 (A1: table memory-resident)", c.Processing[resource.Disk])
	}
	if got := c.D; got != 256000 {
		t.Errorf("build D = %g, want 256000", got)
	}
}

func TestProbeCost(t *testing.T) {
	m := Default()
	// probe 3000 tuples producing 5000: CPU = 3000*200 + 5000*300 = 2.1e6
	// instr = 2.1 s.
	c := m.Cost(OpSpec{Kind: Probe, InTuples: 3000, ResultTuples: 5000, NetIn: true, NetOut: true})
	if got := c.Processing[resource.CPU]; math.Abs(got-2.1) > 1e-12 {
		t.Errorf("probe CPU = %g, want 2.1", got)
	}
	if got := c.D; got != float64((3000+5000)*128) {
		t.Errorf("probe D = %g, want %g", got, float64((3000+5000)*128))
	}
}

func TestStoreCost(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Store, InTuples: 400, NetIn: true})
	// 10 pages: CPU = 50000 instr = 0.05 s, disk = 0.2 s.
	if math.Abs(c.Processing[resource.CPU]-0.05) > 1e-12 ||
		math.Abs(c.Processing[resource.Disk]-0.2) > 1e-12 {
		t.Errorf("store cost = %v", c.Processing)
	}
	if c.D != 51200 {
		t.Errorf("store D = %g, want 51200", c.D)
	}
}

func TestCostUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	Default().Cost(OpSpec{Kind: OpKind(99), InTuples: 10})
}

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{Scan: "scan", Build: "build", Probe: "probe", Store: "store"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if OpKind(42).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestCommAreaAndCoarseGrain(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 10000, NetOut: true})
	// W_c(op, N) = 0.015 N + 0.6e-6 * 1.28e6 = 0.015 N + 0.768.
	if got := m.CommArea(c, 10); math.Abs(got-(0.15+0.768)) > 1e-9 {
		t.Errorf("CommArea(10) = %g", got)
	}
	// Definition 4.1 must agree with NMax: N = NMax is coarse grain,
	// N = NMax+1 is not.
	f := 0.5
	nmax := m.NMax(c, f)
	if nmax > 1 && !m.IsCoarseGrain(c, nmax, f) {
		t.Errorf("N_max = %d not coarse grain", nmax)
	}
	if m.IsCoarseGrain(c, nmax+1, f) {
		t.Errorf("N_max+1 = %d still coarse grain", nmax+1)
	}
}

func TestNMaxFormula(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 10000, NetOut: true})
	// W_p = CPU + disk = (250*5000 + 10000*300)/1e6 + 250*0.02
	//     = 4.25 + 5 = 9.25 s. βD = 0.768 s.
	wp := c.ProcessingArea()
	if math.Abs(wp-9.25) > 1e-9 {
		t.Fatalf("W_p = %g, want 9.25", wp)
	}
	f := 0.7
	want := int(math.Floor((f*9.25 - 0.768) / 0.015))
	if got := m.NMax(c, f); got != want {
		t.Errorf("NMax = %d, want %d", got, want)
	}
	// A heavily communicating, tiny operator must still be allowed a
	// sequential execution.
	tiny := OpCost{Processing: vector.Of(1e-6, 0, 0), D: 1e9}
	if got := m.NMax(tiny, 0.3); got != 1 {
		t.Errorf("NMax(tiny) = %d, want 1", got)
	}
}

func TestNMaxNegativeFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NMax(f<0) did not panic")
		}
	}()
	Default().NMax(OpCost{Processing: vector.New(3)}, -0.1)
}

func TestClonesStructure(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 4000, NetOut: true})
	n := 5
	clones := m.Clones(c, n)
	if len(clones) != n {
		t.Fatalf("len(clones) = %d, want %d", len(clones), n)
	}
	// Total over clones = W_p + W_c componentwise sum property
	// (Section 5.1): Σ_k W_op[k] = W_p + W_c(op, N).
	total := vector.SumSet(clones)
	if math.Abs(total.Sum()-(c.ProcessingArea()+m.CommArea(c, n))) > 1e-9 {
		t.Errorf("clone total %g != W_p + W_c = %g",
			total.Sum(), c.ProcessingArea()+m.CommArea(c, n))
	}
	// TotalWork agrees with the clone sum.
	if !total.ApproxEqual(m.TotalWork(c, n), 1e-9) {
		t.Errorf("TotalWork = %v, clone sum = %v", m.TotalWork(c, n), total)
	}
	// Coordinator dominates every other clone componentwise.
	for k := 1; k < n; k++ {
		if !clones[k].LE(clones[0]) {
			t.Errorf("clone %d = %v not dominated by coordinator %v", k, clones[k], clones[0])
		}
	}
	// Non-coordinator clones are identical and carry exactly 1/N of the
	// processing and network work.
	nf := float64(n)
	wantBase := vector.Of(
		c.Processing[resource.CPU]/nf,
		c.Processing[resource.Disk]/nf,
		m.Params.Beta*c.D/nf,
	)
	for k := 1; k < n; k++ {
		if !clones[k].ApproxEqual(wantBase, 1e-12) {
			t.Errorf("clone %d = %v, want %v", k, clones[k], wantBase)
		}
	}
	// Coordinator = base + αN/2 on CPU and Net.
	s := m.Params.Alpha * nf / 2
	wantCoord := wantBase.Add(vector.Of(s, 0, s))
	if !clones[0].ApproxEqual(wantCoord, 1e-12) {
		t.Errorf("coordinator = %v, want %v", clones[0], wantCoord)
	}
}

func TestClonesInvalidNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clones(0) did not panic")
		}
	}()
	Default().Clones(OpCost{Processing: vector.New(3)}, 0)
}

func TestTParSequentialEqualsTSeqPlusStartup(t *testing.T) {
	m := Default()
	ov := resource.MustOverlap(0.5)
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 1000})
	// N = 1: a single clone carrying W_p plus α startup.
	got := m.TPar(c, 1, ov)
	w := c.Processing.Clone()
	w[resource.CPU] += m.Params.Alpha / 2
	w[resource.Net] += m.Params.Alpha / 2
	if math.Abs(got-ov.TSeq(w)) > 1e-12 {
		t.Errorf("TPar(1) = %g, want %g", got, ov.TSeq(w))
	}
}

func TestTParSpeedupThenSlowdown(t *testing.T) {
	m := Default()
	ov := resource.MustOverlap(0.5)
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 50000, NetOut: true})
	t2, t8 := m.TPar(c, 2, ov), m.TPar(c, 8, ov)
	if t8 >= t2 {
		t.Errorf("no speedup: TPar(2) = %g, TPar(8) = %g", t2, t8)
	}
	// With enormous parallelism, startup dominates and causes
	// a slow-down relative to the optimum (assumption A4's limit).
	nopt := m.NOpt(c, 10000, ov)
	if m.TPar(c, nopt, ov) > m.TPar(c, nopt+50, ov) {
		t.Errorf("NOpt = %d is not a minimum", nopt)
	}
}

func TestNOptIsArgmin(t *testing.T) {
	m := Default()
	ov := resource.MustOverlap(0.3)
	c := m.Cost(OpSpec{Kind: Probe, InTuples: 30000, ResultTuples: 60000, NetIn: true, NetOut: true})
	maxN := 200
	nopt := m.NOpt(c, maxN, ov)
	best := m.TPar(c, nopt, ov)
	for n := 1; n <= maxN; n++ {
		if m.TPar(c, n, ov) < best-1e-12 {
			t.Fatalf("NOpt = %d (T = %g) beaten by N = %d (T = %g)",
				nopt, best, n, m.TPar(c, n, ov))
		}
	}
}

func TestNOptInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NOpt(maxN=0) did not panic")
		}
	}()
	Default().NOpt(OpCost{Processing: vector.New(3)}, 0, resource.MustOverlap(0.5))
}

func TestDegreeRespectsAllCaps(t *testing.T) {
	m := Default()
	ov := resource.MustOverlap(0.5)
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 20000, NetOut: true})
	for _, f := range []float64{0.3, 0.5, 0.7, 0.9} {
		for _, p := range []int{1, 5, 20, 140} {
			n := m.Degree(c, f, p, ov)
			if n < 1 || n > p {
				t.Fatalf("Degree(f=%g, P=%d) = %d outside [1, P]", f, p, n)
			}
			if n > m.NMax(c, f) {
				t.Fatalf("Degree(f=%g, P=%d) = %d > NMax = %d", f, p, n, m.NMax(c, f))
			}
			// A4: T^par non-increasing up to the chosen degree.
			prev := math.Inf(1)
			for k := 1; k <= n; k++ {
				cur := m.TPar(c, k, ov)
				if cur > prev+1e-12 {
					t.Fatalf("T^par increases before Degree: N=%d", k)
				}
				prev = cur
			}
		}
	}
}

func TestDegreeGrowsWithF(t *testing.T) {
	m := Default()
	ov := resource.MustOverlap(0.5)
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 100000, NetOut: true})
	p := 140
	prev := 0
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		n := m.Degree(c, f, p, ov)
		if n < prev {
			t.Fatalf("Degree not monotone in f: f=%g gives %d < %d", f, n, prev)
		}
		prev = n
	}
}

// Property: the clone decomposition conserves work exactly — for any
// operator and degree, the componentwise sum of clones equals TotalWork,
// and every clone's components are non-negative.
func TestQuickClonesConserveWork(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := OpSpec{
			Kind:         OpKind(r.Intn(4)),
			InTuples:     1 + r.Intn(100000),
			ResultTuples: 1 + r.Intn(100000),
			NetIn:        r.Intn(2) == 0,
			NetOut:       r.Intn(2) == 0,
		}
		c := m.Cost(spec)
		n := 1 + r.Intn(140)
		clones := m.Clones(c, n)
		for _, w := range clones {
			if err := w.Validate(); err != nil {
				return false
			}
		}
		return vector.SumSet(clones).ApproxEqual(m.TotalWork(c, n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: N_max is non-decreasing in f and the CG_f condition holds at
// N_max whenever N_max > 1.
func TestQuickNMaxMonotoneInF(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := m.Cost(OpSpec{
			Kind:     Scan,
			InTuples: 1 + r.Intn(100000),
			NetOut:   r.Intn(2) == 0,
		})
		f1 := r.Float64()
		f2 := f1 + r.Float64()
		n1, n2 := m.NMax(c, f1), m.NMax(c, f2)
		if n1 > n2 {
			return false
		}
		if n1 > 1 && !m.IsCoarseGrain(c, n1, f1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the closed-form TPar equals the explicit max over clone
// TSeq values (the coordinator-dominance shortcut is exact).
func TestQuickTParMatchesCloneMax(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := m.Cost(OpSpec{
			Kind:         OpKind(r.Intn(4)),
			InTuples:     1 + r.Intn(100000),
			ResultTuples: 1 + r.Intn(100000),
			NetIn:        r.Intn(2) == 0,
			NetOut:       r.Intn(2) == 0,
		})
		ov := resource.MustOverlap(r.Float64())
		n := 1 + r.Intn(140)
		want := 0.0
		for _, w := range m.Clones(c, n) {
			if s := ov.TSeq(w); s > want {
				want = s
			}
		}
		return math.Abs(m.TPar(c, n, ov)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCostScan(b *testing.B) {
	m := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Cost(OpSpec{Kind: Scan, InTuples: 100000, NetOut: true})
	}
}

func BenchmarkNOpt(b *testing.B) {
	m := Default()
	ov := resource.MustOverlap(0.5)
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 100000, NetOut: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.NOpt(c, 140, ov)
	}
}
