package costmodel

import (
	"math"
	"testing"

	"mdrs/internal/resource"
)

func TestZeroTupleOperators(t *testing.T) {
	m := Default()
	for _, kind := range []OpKind{Scan, Build, Probe, Store} {
		c := m.Cost(OpSpec{Kind: kind, InTuples: 0, NetIn: true, NetOut: true})
		if c.ProcessingArea() != 0 {
			t.Errorf("%v with no input has processing area %g", kind, c.ProcessingArea())
		}
		if c.D != 0 {
			t.Errorf("%v with no input moves %g bytes", kind, c.D)
		}
		// Even an empty operator is schedulable sequentially.
		if n := m.NMax(c, 0.7); n != 1 {
			t.Errorf("%v: NMax = %d, want 1", kind, n)
		}
		if tp := m.TPar(c, 1, resource.MustOverlap(0.5)); tp <= 0 {
			t.Errorf("%v: startup missing from empty op: %g", kind, tp)
		}
	}
}

func TestDegreeWithSingleSite(t *testing.T) {
	m := Default()
	ov := resource.MustOverlap(0.5)
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 100000, NetOut: true})
	if n := m.Degree(c, 0.9, 1, ov); n != 1 {
		t.Fatalf("Degree with P=1 = %d", n)
	}
}

func TestScanResultDefaultsToInput(t *testing.T) {
	m := Default()
	// ResultTuples left zero: a scan streams everything it reads.
	withDefault := m.Cost(OpSpec{Kind: Scan, InTuples: 5000, NetOut: true})
	explicit := m.Cost(OpSpec{Kind: Scan, InTuples: 5000, ResultTuples: 5000, NetOut: true})
	if withDefault.D != explicit.D {
		t.Fatalf("default result cardinality differs: D %g vs %g", withDefault.D, explicit.D)
	}
}

func TestProbeOutputOnlyCharged(t *testing.T) {
	m := Default()
	// A probe with local input (NetIn=false) pays network only for its
	// output.
	c := m.Cost(OpSpec{Kind: Probe, InTuples: 1000, ResultTuples: 2000, NetOut: true})
	if c.D != m.Params.Bytes(2000) {
		t.Fatalf("D = %g, want %g", c.D, m.Params.Bytes(2000))
	}
}

func TestCommAreaGrowsLinearlyInN(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 10000, NetOut: true})
	d1 := m.CommArea(c, 2) - m.CommArea(c, 1)
	d2 := m.CommArea(c, 50) - m.CommArea(c, 49)
	if math.Abs(d1-m.Params.Alpha) > 1e-12 || math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("startup increments %g, %g; want α = %g", d1, d2, m.Params.Alpha)
	}
}

func TestTotalWorkMatchesAreaIdentity(t *testing.T) {
	// Section 5.1: Σ_k W_op[k] = W_p(op) + W_c(op, N) for every N.
	m := Default()
	c := m.Cost(OpSpec{Kind: Probe, InTuples: 30000, ResultTuples: 60000, NetIn: true, NetOut: true})
	for _, n := range []int{1, 2, 7, 63, 140} {
		got := m.TotalWork(c, n).Sum()
		want := c.ProcessingArea() + m.CommArea(c, n)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("N=%d: Σ W = %g, W_p + W_c = %g", n, got, want)
		}
	}
}

func TestNOptShrinksOnSlowNetwork(t *testing.T) {
	// A 100x more expensive startup pushes the optimal degree down.
	ov := resource.MustOverlap(0.5)
	cheap := Default()
	expensive := DefaultParams()
	expensive.Alpha *= 100
	exp := MustNew(expensive)

	spec := OpSpec{Kind: Scan, InTuples: 50000, NetOut: true}
	nCheap := cheap.NOpt(cheap.Cost(spec), 140, ov)
	nExp := exp.NOpt(exp.Cost(spec), 140, ov)
	if nExp >= nCheap {
		t.Fatalf("expensive startup did not reduce NOpt: %d vs %d", nExp, nCheap)
	}
}

func TestIsCoarseGrainBoundaryExact(t *testing.T) {
	m := Default()
	c := m.Cost(OpSpec{Kind: Scan, InTuples: 20000, NetOut: true})
	f := 0.5
	n := m.NMax(c, f)
	// Definition 4.1 holds at N_max with the exact α/β arithmetic.
	if !m.IsCoarseGrain(c, n, f) {
		t.Fatalf("N_max = %d violates its own definition", n)
	}
}
