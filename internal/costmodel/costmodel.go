// Package costmodel derives multi-dimensional work vectors for physical
// query operators, following Sections 4 and 6.1 of Garofalakis &
// Ioannidis (SIGMOD'96).
//
// The experiments assume 3-dimensional sites (CPU, disk, network
// interface). For each operator the model produces
//
//   - its processing area W_p: the CPU and disk work performed when all
//     operands are locally resident (zero communication cost), built
//     from the Table 2 catalog constants; and
//   - D, the bytes the operator moves over the interconnect (its
//     repartitioned input and/or pipelined output, assumption A5),
//
// from which the communication area of an N-site parallel execution is
//
//	W_c(op, N) = α·N + β·D      (Section 4.3)
//
// and the maximum coarse-grain degree of parallelism is
//
//	N_max(op, f) = max{ ⌊(f·W_p(op) − β·D)/α⌋, 1 }   (Proposition 4.1).
//
// Partitioning follows the experimental assumption EA1 (no execution
// skew): the work vector splits perfectly across the N clones, and the
// startup cost α·N is charged to a single designated coordinator clone,
// divided equally between its CPU and network components.
package costmodel

import (
	"fmt"
	"math"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// Params holds the experiment parameter settings of Table 2.
// All times are in seconds, sizes in bytes or tuples.
type Params struct {
	MIPS         float64 // CPU speed in millions of instructions per second
	DiskPageTime float64 // effective disk service time per page (seconds)
	Alpha        float64 // startup cost per participating site (seconds)
	Beta         float64 // network time per byte transferred (seconds)
	TupleBytes   int     // size of a tuple in bytes
	PageTuples   int     // tuples per page

	// CPU cost parameters (number of instructions).
	ReadPageInstr  float64 // read a page from disk
	WritePageInstr float64 // write a page to disk
	ExtractInstr   float64 // extract (copy/compose) a tuple
	HashInstr      float64 // hash a tuple
	ProbeInstr     float64 // probe a hash table
}

// DefaultParams returns Table 2 of the paper verbatim: a relatively
// balanced system (1 MIPS CPU, 20 ms/page disk) with 15 ms startup per
// site and 0.6 µs/byte network transfer cost.
func DefaultParams() Params {
	return Params{
		MIPS:           1,
		DiskPageTime:   0.020,
		Alpha:          0.015,
		Beta:           0.6e-6,
		TupleBytes:     128,
		PageTuples:     40,
		ReadPageInstr:  5000,
		WritePageInstr: 5000,
		ExtractInstr:   300,
		HashInstr:      100,
		ProbeInstr:     200,
	}
}

// Validate reports the first nonsensical parameter, if any.
func (p Params) Validate() error {
	switch {
	case p.MIPS <= 0:
		return fmt.Errorf("costmodel: MIPS = %g, must be positive", p.MIPS)
	case p.DiskPageTime < 0:
		return fmt.Errorf("costmodel: DiskPageTime = %g, must be non-negative", p.DiskPageTime)
	case p.Alpha <= 0:
		return fmt.Errorf("costmodel: Alpha = %g, must be positive (startup is inherently serial)", p.Alpha)
	case p.Beta < 0:
		return fmt.Errorf("costmodel: Beta = %g, must be non-negative", p.Beta)
	case p.TupleBytes <= 0:
		return fmt.Errorf("costmodel: TupleBytes = %d, must be positive", p.TupleBytes)
	case p.PageTuples <= 0:
		return fmt.Errorf("costmodel: PageTuples = %d, must be positive", p.PageTuples)
	case p.ReadPageInstr < 0 || p.WritePageInstr < 0 || p.ExtractInstr < 0 ||
		p.HashInstr < 0 || p.ProbeInstr < 0:
		return fmt.Errorf("costmodel: negative instruction count")
	}
	return nil
}

// Pages returns the number of pages occupied by the given tuple count.
func (p Params) Pages(tuples int) int {
	if tuples <= 0 {
		return 0
	}
	return (tuples + p.PageTuples - 1) / p.PageTuples
}

// Bytes returns the byte size of the given tuple count.
func (p Params) Bytes(tuples int) float64 {
	if tuples <= 0 {
		return 0
	}
	return float64(tuples) * float64(p.TupleBytes)
}

// cpuSeconds converts an instruction count to seconds at the catalog
// MIPS rate.
func (p Params) cpuSeconds(instr float64) float64 {
	return instr / (p.MIPS * 1e6)
}

// OpKind identifies a physical operator of the hash-join macro-expansion
// (Figure 1(b)), plus Store for explicit materialization.
type OpKind int

const (
	// Scan reads a base or materialized relation from local disk and
	// extracts its tuples.
	Scan OpKind = iota
	// Build hashes its input stream into an in-memory hash table
	// (assumption A1: the table is always memory-resident).
	Build
	// Probe streams its input against a previously built hash table and
	// composes result tuples.
	Probe
	// Store writes its input stream to local disk (materialization).
	Store
)

// String returns the lower-case operator name.
func (k OpKind) String() string {
	switch k {
	case Scan:
		return "scan"
	case Build:
		return "build"
	case Probe:
		return "probe"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// OpSpec describes one operator instance for costing purposes.
type OpSpec struct {
	Kind OpKind
	// InTuples is the cardinality of the operator's (streamed) input:
	// the relation size for Scan, the build input for Build, the outer
	// input for Probe, the stored stream for Store.
	InTuples int
	// ResultTuples is the operator's output cardinality. For Scan and
	// Store it defaults to InTuples when left zero; for Probe it is the
	// join result size.
	ResultTuples int
	// NetIn marks the input as arriving over the interconnect
	// (repartitioned, assumption A5).
	NetIn bool
	// NetOut marks the output as being repartitioned over the
	// interconnect to the consumer.
	NetOut bool
}

// OpCost is the costed form of an operator: its zero-communication work
// vector and the interconnect traffic that parallel execution will incur.
type OpCost struct {
	// Processing is the d = 3 work vector [CPU, Disk, 0] of the operator
	// with all operands local: its components sum to the processing area
	// W_p(op), which is invariant across parallelizations (Section 4.2).
	Processing vector.Vector
	// D is the total bytes the operator transfers over the interconnect.
	D float64
}

// ProcessingArea returns W_p(op) = Σ components of the zero-communication
// work vector.
func (c OpCost) ProcessingArea() float64 { return c.Processing.Sum() }

// Model couples the catalog parameters with costing and parallelization
// logic.
type Model struct {
	Params Params
}

// New returns a Model after validating the parameters.
func New(p Params) (Model, error) {
	if err := p.Validate(); err != nil {
		return Model{}, err
	}
	return Model{Params: p}, nil
}

// MustNew is New that panics on invalid parameters.
func MustNew(p Params) Model {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Default returns a Model over DefaultParams().
func Default() Model { return Model{Params: DefaultParams()} }

// Cost derives the OpCost of a single operator.
func (m Model) Cost(spec OpSpec) OpCost {
	p := m.Params
	in := spec.InTuples
	out := spec.ResultTuples
	if out == 0 && (spec.Kind == Scan || spec.Kind == Store) {
		out = in
	}

	var cpuInstr, disk float64
	switch spec.Kind {
	case Scan:
		pages := p.Pages(in)
		cpuInstr = float64(pages)*p.ReadPageInstr + float64(in)*p.ExtractInstr
		disk = float64(pages) * p.DiskPageTime
	case Build:
		// Receiving a repartitioned tuple costs an extract (copying it
		// into the table's memory) plus the hash computation; without the
		// extract term a build's processing area would be smaller than
		// its communication area and Proposition 4.1 would force every
		// build sequential for all experimental f values.
		cpuInstr = float64(in) * (p.ExtractInstr + p.HashInstr)
	case Probe:
		cpuInstr = float64(in)*p.ProbeInstr + float64(out)*p.ExtractInstr
	case Store:
		pages := p.Pages(in)
		cpuInstr = float64(pages) * p.WritePageInstr
		disk = float64(pages) * p.DiskPageTime
	default:
		panic(fmt.Sprintf("costmodel: unknown operator kind %d", int(spec.Kind)))
	}

	var d float64
	if spec.NetIn {
		d += p.Bytes(in)
	}
	if spec.NetOut {
		d += p.Bytes(out)
	}

	w := vector.New(resource.Dims)
	w[resource.CPU] = p.cpuSeconds(cpuInstr)
	w[resource.Disk] = disk
	return OpCost{Processing: w, D: d}
}

// CommArea returns W_c(op, N) = α·N + β·D, the communication area of an
// N-site execution (Section 4.3).
func (m Model) CommArea(c OpCost, n int) float64 {
	return m.Params.Alpha*float64(n) + m.Params.Beta*c.D
}

// IsCoarseGrain reports whether an N-site execution satisfies
// Definition 4.1: W_c(op, N) <= f·W_p(op).
func (m Model) IsCoarseGrain(c OpCost, n int, f float64) bool {
	return m.CommArea(c, n) <= f*c.ProcessingArea()
}

// NMax returns N_max(op, f), the maximum allowable degree of partitioned
// parallelism for a CG_f execution (Proposition 4.1). The result is
// always at least 1: a sequential execution is allowed even when the
// operator's network traffic alone exceeds the granularity budget.
func (m Model) NMax(c OpCost, f float64) int {
	if f < 0 {
		panic(fmt.Sprintf("costmodel: negative granularity parameter f = %g", f))
	}
	n := math.Floor((f*c.ProcessingArea() - m.Params.Beta*c.D) / m.Params.Alpha)
	if n < 1 {
		return 1
	}
	return int(n)
}

// Clones returns the per-clone work vectors of an N-site execution
// under EA1: each clone receives W_p/N on CPU and disk and β·D/N on the
// network interface; clone 0 (the coordinator) additionally carries the
// full startup α·N, split equally between CPU and network.
func (m Model) Clones(c OpCost, n int) []vector.Vector {
	if n < 1 {
		panic(fmt.Sprintf("costmodel: non-positive degree of parallelism %d", n))
	}
	p := m.Params
	base := vector.New(resource.Dims)
	nf := float64(n)
	base[resource.CPU] = c.Processing[resource.CPU] / nf
	base[resource.Disk] = c.Processing[resource.Disk] / nf
	base[resource.Net] = p.Beta * c.D / nf

	out := make([]vector.Vector, n)
	coord := base.Clone()
	startup := p.Alpha * nf / 2
	coord[resource.CPU] += startup
	coord[resource.Net] += startup
	out[0] = coord
	for k := 1; k < n; k++ {
		out[k] = base.Clone()
	}
	return out
}

// TotalWork returns the total work vector W̄_op for an N-site execution:
// the componentwise sum over all clones, so that
// Σ_k W_op[k] = W_p(op) + W_c(op, N) as required by Section 5.1.
func (m Model) TotalWork(c OpCost, n int) vector.Vector {
	w := c.Processing.Clone()
	w[resource.Net] += m.Params.Beta * c.D
	w[resource.CPU] += m.Params.Alpha * float64(n) / 2
	w[resource.Net] += m.Params.Alpha * float64(n) / 2
	return w
}

// TPar returns T^par(op, N): the response time of an isolated N-site
// execution, i.e. the maximum clone T^seq (Equation 1). Under EA1 the
// coordinator clone dominates every other clone componentwise and TSeq
// is monotone, so only the coordinator needs to be evaluated.
func (m Model) TPar(c OpCost, n int, ov resource.Overlap) float64 {
	if n < 1 {
		panic(fmt.Sprintf("costmodel: non-positive degree of parallelism %d", n))
	}
	nf := float64(n)
	startup := m.Params.Alpha * nf / 2
	cpu := c.Processing[resource.CPU]/nf + startup
	disk := c.Processing[resource.Disk] / nf
	net := m.Params.Beta*c.D/nf + startup

	sum := cpu + disk + net
	max := cpu
	if disk > max {
		max = disk
	}
	if net > max {
		max = net
	}
	return ov.Epsilon*max + (1-ov.Epsilon)*sum
}

// NOpt returns the degree of parallelism in [1, maxN] that minimizes
// T^par(op, ·). Beyond it, startup at the coordinator causes a
// speed-down; the experiments never exceed it, enforcing assumption A4
// (Section 6.1). Ties resolve to the smaller degree.
func (m Model) NOpt(c OpCost, maxN int, ov resource.Overlap) int {
	if maxN < 1 {
		panic(fmt.Sprintf("costmodel: non-positive maxN %d", maxN))
	}
	best, bestT := 1, math.Inf(1)
	for n := 1; n <= maxN; n++ {
		if t := m.TPar(c, n, ov); t < bestT-1e-15 {
			best, bestT = n, t
		}
	}
	return best
}

// Degree returns the degree of partitioned parallelism the scheduler
// uses for a floating operator: min{N_max(op, f), N_opt(op), P}.
func (m Model) Degree(c OpCost, f float64, p int, ov resource.Overlap) int {
	return m.DegreeCapped(c, f, p, ov, 0)
}

// DegreeCapped is Degree with an absolute per-operator parallelism cap:
// min{N_max(op, f), N_opt(op), P, cap}. cap <= 0 means uncapped (plain
// Degree). The cap clamps the search range before the NOpt scan, so it
// bounds both the chosen degree and the scan's cost — the serve layer's
// adaptive controller uses it to shrink per-query parallelism under
// concurrency (trading isolated response time for system throughput).
func (m Model) DegreeCapped(c OpCost, f float64, p int, ov resource.Overlap, cap int) int {
	n := m.NMax(c, f)
	if n > p {
		n = p
	}
	if cap > 0 && n > cap {
		n = cap
	}
	if nOpt := m.NOpt(c, n, ov); nOpt < n {
		n = nOpt
	}
	return n
}
