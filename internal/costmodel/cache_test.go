package costmodel

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mdrs/internal/resource"
)

// randomSpec draws an OpSpec from the same shape space the plan
// expansion produces.
func randomSpec(r *rand.Rand) OpSpec {
	return OpSpec{
		Kind:         OpKind(r.Intn(4)),
		InTuples:     1 + r.Intn(100000),
		ResultTuples: r.Intn(100000),
		NetIn:        r.Intn(2) == 0,
		NetOut:       r.Intn(2) == 0,
	}
}

// Every cached answer must be bit-identical to the uncached model's,
// across repeated lookups of a shared spec pool.
func TestCacheMatchesModelExactly(t *testing.T) {
	m := Default()
	c := m.Cached()
	ov := resource.MustOverlap(0.5)
	r := rand.New(rand.NewSource(42))
	specs := make([]OpSpec, 30)
	for i := range specs {
		specs[i] = randomSpec(r)
	}
	for round := 0; round < 3; round++ {
		for _, spec := range specs {
			want := m.Cost(spec)
			got := c.Cost(spec)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Cost(%+v): cached %+v != model %+v", spec, got, want)
			}
			f := 0.1 + r.Float64()
			p := 1 + r.Intn(64)
			if got, want := c.Degree(spec, f, p, ov), m.Degree(want, f, p, ov); got != want {
				t.Fatalf("Degree(%+v, f=%g, p=%d): cached %d != model %d", spec, f, p, got, want)
			}
			n := 1 + r.Intn(8)
			if got, want := c.Clones(spec, n), m.Clones(m.Cost(spec), n); !reflect.DeepEqual(got, want) {
				t.Fatalf("Clones(%+v, %d): cached %v != model %v", spec, n, got, want)
			}
			if got, want := c.TPar(spec, n, ov), m.TPar(m.Cost(spec), n, ov); got != want {
				t.Fatalf("TPar(%+v, %d): cached %g != model %g", spec, n, got, want)
			}
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats: hits %d, misses %d — repeated lookups should produce both", hits, misses)
	}
}

// A second lookup of the same key must be a hit, and the clone slice
// must be the shared memoized one (no per-call reallocation).
func TestCacheMemoizesAndShares(t *testing.T) {
	c := Default().Cached()
	spec := OpSpec{Kind: Scan, InTuples: 1000}
	ov := resource.MustOverlap(0.5)

	c.Cost(spec)
	_, misses := c.Stats()
	c.Cost(spec)
	c.Degree(spec, 0.7, 32, ov)
	c.Degree(spec, 0.7, 32, ov)
	if _, m2 := c.Stats(); m2 != misses+1 {
		t.Fatalf("misses %d -> %d: only the first Degree should miss", misses, m2)
	}

	a := c.Clones(spec, 4)
	b := c.Clones(spec, 4)
	if &a[0] != &b[0] {
		t.Fatal("repeated Clones lookups returned distinct slices; the memo must share")
	}
	// Distinct keys stay distinct.
	if d := c.Clones(spec, 5); len(d) != 5 {
		t.Fatalf("Clones(spec, 5) has %d vectors", len(d))
	}
	if got, want := c.Degree(spec, 0.7, 16, ov), c.Model().Degree(c.Model().Cost(spec), 0.7, 16, ov); got != want {
		t.Fatalf("Degree with p=16: %d != %d", got, want)
	}
}

// The memo maps reset (not grow) past the limit, and answers stay
// correct afterwards.
func TestCacheBounded(t *testing.T) {
	c := Default().Cached()
	for i := 0; i < cacheMapLimit+10; i++ {
		c.Cost(OpSpec{Kind: Scan, InTuples: i + 1})
	}
	c.mu.RLock()
	n := len(c.costs)
	c.mu.RUnlock()
	if n > cacheMapLimit {
		t.Fatalf("cost map grew to %d entries, limit %d", n, cacheMapLimit)
	}
	spec := OpSpec{Kind: Scan, InTuples: 77}
	if got, want := c.Cost(spec), Default().Cost(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reset Cost mismatch: %+v != %+v", got, want)
	}
}

// Concurrent lookups over a shared cache must agree with the model;
// run under -race by the cache-race make target.
func TestCacheConcurrent(t *testing.T) {
	m := Default()
	c := m.Cached()
	ov := resource.MustOverlap(0.5)
	specs := []OpSpec{
		{Kind: Scan, InTuples: 5000},
		{Kind: Build, InTuples: 5000, NetIn: true},
		{Kind: Probe, InTuples: 5000, ResultTuples: 9000, NetIn: true, NetOut: true},
		{Kind: Store, InTuples: 9000, NetIn: true},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				spec := specs[(g+i)%len(specs)]
				if got, want := c.Cost(spec), m.Cost(spec); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Cost mismatch: %+v != %+v", got, want)
					return
				}
				n := 1 + (g+i)%6
				if got, want := c.Degree(spec, 0.7, 32, ov), m.Degree(m.Cost(spec), 0.7, 32, ov); got != want {
					t.Errorf("concurrent Degree mismatch: %d != %d", got, want)
					return
				}
				if got, want := c.Clones(spec, n), m.Clones(m.Cost(spec), n); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Clones mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
