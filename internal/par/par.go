// Package par is the bounded worker pool shared by the deterministic
// parallel paths of the repository: the scheduler's concurrent cost
// preparation, the fluid simulator's per-site fan-out, and any future
// index-addressed map over independent work items.
//
// The contract that keeps every caller byte-identical across pool widths
// is positional: For(w, n, fn) promises only that fn runs once for every
// index in [0, n) and that all calls have returned when For does. Callers
// communicate results exclusively through slices indexed by i, and reduce
// them serially in index order afterwards — so the aggregate (including
// which of several errors is reported) cannot depend on scheduling
// interleavings or on w. This is the same discipline the experiments
// harness's trial pool established; par factors it out so the scheduler
// and simulator do not each grow a private copy.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Workers knob to an effective pool width: positive
// values are taken as-is, everything else means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(0), fn(1), …, fn(n-1) across at most w goroutines and
// returns once every call has. With w <= 1 (or n <= 1) it degenerates to
// the plain serial loop on the calling goroutine — no goroutine is ever
// spawned — so a Workers=1 configuration is exactly the pre-parallel
// code path. Indices are handed out by an atomic counter, so the pool
// self-balances when items have uneven costs.
//
// fn must write any result it produces into caller-owned storage at
// index i; For establishes the happens-before edge (via WaitGroup.Wait)
// that makes those writes visible to the caller afterwards.
func For(w, n int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
