package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{0, 1, 2, 7, 64} {
		const n = 137
		var hits [n]atomic.Int64
		For(w, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("w=%d: index %d ran %d times", w, i, got)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran with n=0")
	}
}

// Positional results must be independent of the pool width: same inputs,
// same output slice, any w.
func TestForPositionalDeterminism(t *testing.T) {
	const n = 500
	ref := make([]int, n)
	For(1, n, func(i int) { ref[i] = i * i })
	for _, w := range []int{2, 3, 8} {
		got := make([]int, n)
		For(w, n, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("w=%d: index %d = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}
