package resource

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdrs/internal/vector"
)

func TestNewOverlapValidation(t *testing.T) {
	for _, eps := range []float64{0, 0.5, 1} {
		if _, err := NewOverlap(eps); err != nil {
			t.Errorf("NewOverlap(%g) rejected: %v", eps, err)
		}
	}
	for _, eps := range []float64{-0.1, 1.1, 2} {
		if _, err := NewOverlap(eps); err == nil {
			t.Errorf("NewOverlap(%g) accepted", eps)
		}
	}
}

func TestMustOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustOverlap(2) did not panic")
		}
	}()
	MustOverlap(2)
}

func TestTSeqExtremes(t *testing.T) {
	w := vector.Of(10, 15)
	// ε = 1: perfect overlap, T = max.
	if got := MustOverlap(1).TSeq(w); got != 15 {
		t.Fatalf("TSeq ε=1 = %g, want 15", got)
	}
	// ε = 0: zero overlap, T = sum.
	if got := MustOverlap(0).TSeq(w); got != 25 {
		t.Fatalf("TSeq ε=0 = %g, want 25", got)
	}
	// ε = 0.5: midpoint.
	if got := MustOverlap(0.5).TSeq(w); math.Abs(got-20) > 1e-12 {
		t.Fatalf("TSeq ε=0.5 = %g, want 20", got)
	}
}

// Section 4.1's constraint: max <= T^seq <= sum for every ε in [0,1].
func TestQuickTSeqWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		w := vector.New(d)
		for i := range w {
			w[i] = r.Float64() * 50
		}
		eps := r.Float64()
		ts := MustOverlap(eps).TSeq(w)
		return ts >= w.Length()-1e-9 && ts <= w.Sum()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TSeq is monotone in the work vector: w <= w' componentwise implies
// TSeq(w) <= TSeq(w').
func TestQuickTSeqMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		w := vector.New(d)
		extra := vector.New(d)
		for i := range w {
			w[i] = r.Float64() * 20
			extra[i] = r.Float64() * 20
		}
		ov := MustOverlap(r.Float64())
		return ov.TSeq(w) <= ov.TSeq(w.Add(extra))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// The paper's worked example (Section 5.2.2) with ε chosen so that
// T1^seq = 22 for W1 = [10 15]: ε(15) + (1-ε)(25) = 22 → ε = 0.3.
// Clone pairs (22,[10 15]) and (10,[10 5]) share a site: the joint load
// [20 20] squeezes into T1 = 22. With (10,[5 10]) instead, resource 2
// congests: T^site = 25.
func TestTSitePaperExample(t *testing.T) {
	ov := MustOverlap(0.3)
	w1 := vector.Of(10, 15)
	if ts := ov.TSeq(w1); math.Abs(ts-22) > 1e-9 {
		t.Fatalf("T1^seq = %g, want 22 (check ε derivation)", ts)
	}

	s := NewSite(0, 2, ov)
	s.Assign(w1)
	s.Assign(vector.Of(10, 5))
	if got := s.TSite(); math.Abs(got-22) > 1e-9 {
		t.Fatalf("case 1: T^site = %g, want 22", got)
	}

	s2 := NewSite(1, 2, ov)
	s2.Assign(w1)
	s2.Assign(vector.Of(5, 10))
	if got := s2.TSite(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("case 2: T^site = %g, want 25 (congested resource)", got)
	}
}

func TestSiteAccounting(t *testing.T) {
	s := NewSite(3, 2, MustOverlap(0.5))
	if s.NumClones() != 0 || s.LoadLength() != 0 || s.TSite() != 0 {
		t.Fatal("fresh site not empty")
	}
	s.Assign(vector.Of(1, 2))
	s.Assign(vector.Of(3, 1))
	if s.NumClones() != 2 {
		t.Fatalf("NumClones = %d", s.NumClones())
	}
	if !s.Load().ApproxEqual(vector.Of(4, 3), 1e-12) {
		t.Fatalf("Load = %v", s.Load())
	}
	if got := s.LoadLength(); got != 4 {
		t.Fatalf("LoadLength = %g", got)
	}
	s.Reset()
	if s.NumClones() != 0 || s.LoadLength() != 0 || s.MaxTSeq() != 0 {
		t.Fatal("Reset did not clear the site")
	}
}

func TestSiteLoadIsCopy(t *testing.T) {
	s := NewSite(0, 2, MustOverlap(1))
	s.Assign(vector.Of(1, 1))
	l := s.Load()
	l[0] = 99
	if s.LoadLength() != 1 {
		t.Fatal("Load() leaked internal storage")
	}
}

func TestSystemBasics(t *testing.T) {
	sys := NewSystem(4, 3, MustOverlap(0.5))
	if sys.P() != 4 || sys.Dim() != 3 {
		t.Fatalf("P = %d, Dim = %d", sys.P(), sys.Dim())
	}
	for j := 0; j < 4; j++ {
		if sys.Site(j).ID != j {
			t.Fatalf("site %d has ID %d", j, sys.Site(j).ID)
		}
	}
	sys.Site(2).Assign(vector.Of(5, 1, 1))
	if got := sys.MaxLoadLength(); got != 5 {
		t.Fatalf("MaxLoadLength = %g", got)
	}
	if got := sys.MaxTSite(); math.Abs(got-6) > 1e-12 { // 0.5*5 + 0.5*7
		t.Fatalf("MaxTSite = %g, want 6", got)
	}
	sys.Reset()
	if sys.MaxTSite() != 0 {
		t.Fatal("Reset did not clear system")
	}
}

func TestNewSystemPanics(t *testing.T) {
	for _, c := range []struct{ p, d int }{{0, 3}, {-1, 3}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSystem(%d,%d) did not panic", c.p, c.d)
				}
			}()
			NewSystem(c.p, c.d, MustOverlap(0.5))
		}()
	}
}

// Property: T^site(s) is exactly max(maxTSeq, loadLength) and is
// monotone under Assign.
func TestQuickTSiteMonotoneUnderAssign(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		ov := MustOverlap(r.Float64())
		s := NewSite(0, d, ov)
		prev := 0.0
		for k := 0; k < 1+r.Intn(10); k++ {
			w := vector.New(d)
			for i := range w {
				w[i] = r.Float64() * 10
			}
			s.Assign(w)
			cur := s.TSite()
			if cur < prev-1e-9 {
				return false
			}
			want := math.Max(s.MaxTSeq(), s.LoadLength())
			if math.Abs(cur-want) > 1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the incremental maxSeq/load bookkeeping in Site matches a
// from-scratch recomputation over Clones().
func TestQuickSiteBookkeeping(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		ov := MustOverlap(r.Float64())
		s := NewSite(0, d, ov)
		for k := 0; k < r.Intn(12); k++ {
			w := vector.New(d)
			for i := range w {
				w[i] = r.Float64() * 10
			}
			s.Assign(w)
		}
		maxSeq, load := 0.0, vector.New(d)
		for _, w := range s.Clones() {
			if ts := ov.TSeq(w); ts > maxSeq {
				maxSeq = ts
			}
			load.AddInPlace(w)
		}
		return math.Abs(maxSeq-s.MaxTSeq()) < 1e-9 &&
			load.ApproxEqual(s.Load(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSiteAssign(b *testing.B) {
	ov := MustOverlap(0.5)
	w := vector.Of(1, 2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSite(0, 3, ov)
		for k := 0; k < 16; k++ {
			s.Assign(w)
		}
		_ = s.TSite()
	}
}
