// Package resource implements the multi-dimensional resource-usage model
// of Garofalakis & Ioannidis (SIGMOD'96), Sections 4.1 and 5.2.
//
// A shared-nothing system consists of P identical sites; each site is a
// collection of d preemptable (time-sliceable) resources — e.g. CPU,
// disk, network interface. The usage of a site by an isolated operator
// is the pair (T^seq, W̄): W̄ is the d-dimensional work vector and T^seq
// the operator's sequential execution time, which always satisfies
//
//	max_i W[i]  <=  T^seq(W̄)  <=  Σ_i W[i].
//
// The experiments' assumption EA2 pins T^seq down with a single
// system-wide overlap parameter ε ∈ [0,1]:
//
//	T^seq(W̄) = ε·max_i W[i] + (1−ε)·Σ_i W[i]
//
// ε = 1 is perfect overlap (processing on different resources proceeds
// fully in parallel), ε = 0 is zero overlap (strictly sequential).
//
// The package also implements Equation 2, the execution time of all
// operator clones time-sharing one site:
//
//	T^site(s) = max{ max_{W∈work(s)} T^seq(W), l(work(s)) },
//
// i.e. either the slowest single clone or the most congested resource
// determines when the site drains.
package resource

import (
	"fmt"

	"mdrs/internal/vector"
)

// Conventional resource indices used by the experiments (d = 3). The
// model itself works for any d; these constants only fix the meaning of
// vector components produced by the cost model.
const (
	CPU  = 0 // instructions, expressed in seconds at the catalog MIPS rate
	Disk = 1 // page service time
	Net  = 2 // network-interface time (αN startup share + β per byte)

	// Dims is the site dimensionality used throughout the experiments:
	// one CPU, one disk unit, one network interface per site (Section 6.1).
	Dims = 3
)

// Overlap is the resource-overlap model of assumption EA2: a convex
// combination of the max and the sum of a work vector's components,
// weighted by the overlap parameter ε.
type Overlap struct {
	// Epsilon is the system-wide overlap parameter ε ∈ [0,1].
	Epsilon float64
}

// NewOverlap returns an Overlap model, validating ε.
func NewOverlap(eps float64) (Overlap, error) {
	if eps < 0 || eps > 1 {
		return Overlap{}, fmt.Errorf("resource: overlap ε = %g outside [0,1]", eps)
	}
	return Overlap{Epsilon: eps}, nil
}

// MustOverlap is NewOverlap that panics on invalid ε; for tests and
// literals.
func MustOverlap(eps float64) Overlap {
	o, err := NewOverlap(eps)
	if err != nil {
		panic(err)
	}
	return o
}

// TSeq returns T^seq(W̄) = ε·max + (1−ε)·sum, the sequential execution
// time of an operator (clone) with demands w running alone on a site.
func (o Overlap) TSeq(w vector.Vector) float64 {
	return o.Epsilon*w.Length() + (1-o.Epsilon)*w.Sum()
}

// Site is one shared-nothing site: an identifier plus the multiset of
// work vectors (operator clones) currently assigned to it, work(s_j) in
// the paper's notation.
type Site struct {
	// ID is the site index in [0, P).
	ID int

	clones  []vector.Vector // work vectors mapped to this site
	load    vector.Vector   // running componentwise sum of clones
	loadLen float64         // cached load.Length(), kept current by Assign/Reset
	loadSum float64         // cached load.Sum(), kept current by Assign/Reset
	maxSeq  float64         // max T^seq among clones, under the bound model
	ov      Overlap
}

// NewSite returns an empty d-dimensional site evaluated under the given
// overlap model.
func NewSite(id, d int, ov Overlap) *Site {
	return &Site{ID: id, load: vector.New(d), ov: ov}
}

// Dim returns the site's resource dimensionality.
func (s *Site) Dim() int { return s.load.Dim() }

// Assign places one operator clone (its work vector) on the site.
// The vector is not copied; callers must not mutate it afterwards.
func (s *Site) Assign(w vector.Vector) {
	s.clones = append(s.clones, w)
	s.load.AddInPlace(w)
	// Refresh the cached aggregates from the accumulated load so they are
	// bit-identical to a from-scratch recomputation (the schedulers'
	// tie-breaks compare these floats exactly). O(d) per Assign keeps the
	// schedulers' inner placement loops O(1) per site probe.
	s.loadLen = s.load.Length()
	s.loadSum = s.load.Sum()
	if t := s.ov.TSeq(w); t > s.maxSeq {
		s.maxSeq = t
	}
}

// Clones returns the work vectors assigned to the site. The slice is
// shared; callers must treat it as read-only.
func (s *Site) Clones() []vector.Vector { return s.clones }

// NumClones returns |work(s)|.
func (s *Site) NumClones() int { return len(s.clones) }

// Load returns a copy of the componentwise sum of all assigned vectors.
func (s *Site) Load() vector.Vector { return s.load.Clone() }

// LoadLength returns l(work(s)), the most congested resource's total
// demand at this site. This is the list-scheduling key of
// OperatorSchedule ("least filled bin"). The value is cached by Assign,
// so calling it in a placement scan costs a field read, not an O(d)
// reduction.
func (s *Site) LoadLength() float64 { return s.loadLen }

// LoadSum returns the total work assigned to the site across all
// resources, Σ_k Σ_{W∈work(s)} W[k]. Cached by Assign, like LoadLength.
func (s *Site) LoadSum() float64 { return s.loadSum }

// MaxTSeq returns max_{W ∈ work(s)} T^seq(W).
func (s *Site) MaxTSeq() float64 { return s.maxSeq }

// TSite returns T^site(s) per Equation 2: the time for the site to
// complete all assigned clones under preemptable time-sharing.
func (s *Site) TSite() float64 {
	if s.loadLen > s.maxSeq {
		return s.loadLen
	}
	return s.maxSeq
}

// Reset removes all clones, returning the site to empty.
func (s *Site) Reset() {
	s.clones = s.clones[:0]
	for i := range s.load {
		s.load[i] = 0
	}
	s.loadLen = 0
	s.loadSum = 0
	s.maxSeq = 0
}

// System is a fixed-size collection of identical sites.
type System struct {
	sites []*Site
	ov    Overlap
	d     int
}

// NewSystem creates P empty d-dimensional sites sharing one overlap
// model. It panics if P <= 0 or d <= 0.
func NewSystem(p, d int, ov Overlap) *System {
	if p <= 0 {
		panic(fmt.Sprintf("resource: non-positive site count %d", p))
	}
	if d <= 0 {
		panic(fmt.Sprintf("resource: non-positive dimensionality %d", d))
	}
	sys := &System{ov: ov, d: d, sites: make([]*Site, p)}
	for i := range sys.sites {
		sys.sites[i] = NewSite(i, d, ov)
	}
	return sys
}

// P returns the number of sites.
func (sys *System) P() int { return len(sys.sites) }

// Dim returns the per-site resource dimensionality d.
func (sys *System) Dim() int { return sys.d }

// Overlap returns the system's overlap model.
func (sys *System) Overlap() Overlap { return sys.ov }

// Site returns site j. It panics on an out-of-range index.
func (sys *System) Site(j int) *Site { return sys.sites[j] }

// Sites returns the underlying site slice (read-mostly; callers may
// Assign through the sites but must not reorder the slice).
func (sys *System) Sites() []*Site { return sys.sites }

// MaxTSite returns max_j T^site(s_j), the response time of the current
// assignment per Equation 3's right-hand form.
func (sys *System) MaxTSite() float64 {
	m := 0.0
	for _, s := range sys.sites {
		if t := s.TSite(); t > m {
			m = t
		}
	}
	return m
}

// MaxLoadLength returns max_j l(work(s_j)), the system's most congested
// resource demand.
func (sys *System) MaxLoadLength() float64 {
	m := 0.0
	for _, s := range sys.sites {
		if t := s.LoadLength(); t > m {
			m = t
		}
	}
	return m
}

// Reset empties every site.
func (sys *System) Reset() {
	for _, s := range sys.sites {
		s.Reset()
	}
}
