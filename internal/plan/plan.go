// Package plan performs the structural transformations of Section 3.1:
// it macro-expands a bushy hash-join execution plan into an operator
// tree of scan/build/probe nodes with pipelining and blocking edges,
// groups the operators into query tasks (maximal pipelined subgraphs),
// builds the query task tree, and splits it into the synchronized
// execution phases of Section 5.4 (the MinShelf policy of Tan & Lu:
// each task runs in the phase closest to the root that respects the
// blocking constraints, and phases execute bottom-up).
//
// For a plan with J joins the expansion yields J+1 scans, J builds and
// J probes (3J+1 operators), matching the paper's observation that the
// operator count is a small constant times the join count.
package plan

import (
	"fmt"
	"strings"

	"mdrs/internal/costmodel"
	"mdrs/internal/query"
)

// EdgeKind distinguishes the two timing constraints an operator-tree
// edge can carry (Figure 1(b)).
type EdgeKind int

const (
	// Pipeline edges stream tuples; producer and consumer run
	// concurrently within one query task.
	Pipeline EdgeKind = iota
	// Blocking edges require the producer to finish before the consumer
	// starts (e.g. a hash table must be complete before probing).
	Blocking
)

// String names the edge kind.
func (k EdgeKind) String() string {
	if k == Pipeline {
		return "pipeline"
	}
	return "blocking"
}

// Operator is a node of the operator tree.
type Operator struct {
	// ID indexes the operator within its tree, dense from 0.
	ID int
	// Kind is the physical operator type.
	Kind costmodel.OpKind
	// Spec carries the cardinalities and interconnect flags used for
	// costing.
	Spec costmodel.OpSpec
	// Name is a human-readable label such as "scan(R3)" or "probe(J5)".
	Name string
	// JoinID identifies the join a build/probe belongs to; -1 for scans.
	JoinID int

	// Consumer is the operator this one's output flows to (nil for the
	// root) and ConsumerEdge the kind of that edge.
	Consumer     *Operator
	ConsumerEdge EdgeKind

	// BuildOp links a probe to the build of the same join; the probe is
	// rooted at the build's home (Section 5.5). Nil for non-probes.
	BuildOp *Operator

	// Source is the plan node the operator was expanded from: the leaf
	// for a scan, the join node for a build or probe.
	Source *query.PlanNode

	// Task is the query task containing the operator, set by NewTaskTree.
	Task *Task
}

// OperatorTree is the macro-expanded form of an execution plan.
type OperatorTree struct {
	// Ops lists all operators, indexed by ID.
	Ops []*Operator
	// Root is the operator producing the query result.
	Root *Operator
	// Joins is the number of joins in the source plan.
	Joins int

	nextJoin int // next join ID to assign during expansion
}

// Expand macro-expands a validated execution plan into its operator
// tree. Every pipelined transfer is repartitioned (assumption A5), so
// scans and probes send their output over the interconnect and builds
// and probes receive their input over it; the root streams its result
// to the client over the network.
func Expand(p *query.PlanNode) (*OperatorTree, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: expanding invalid plan: %w", err)
	}
	t := &OperatorTree{Joins: p.Joins()}
	root := t.expand(p)
	t.Root = root
	return t, nil
}

// MustExpand is Expand that panics on an invalid plan.
func MustExpand(p *query.PlanNode) *OperatorTree {
	t, err := Expand(p)
	if err != nil {
		panic(err)
	}
	return t
}

// ExpandMaterialized is Expand with an explicit Store operator appended
// at the root: the query result is repartitioned to the store's sites
// and written to disk instead of streamed to the client. The store
// joins the root pipeline (a pipelining edge), so it schedules in the
// final phase alongside the producers feeding it.
func ExpandMaterialized(p *query.PlanNode) (*OperatorTree, error) {
	t, err := Expand(p)
	if err != nil {
		return nil, err
	}
	producer := t.Root
	// The producer now feeds the store over the interconnect instead of
	// streaming to the client; its NetOut flag already reflects that.
	store := t.newOp(costmodel.Store, "store(result)", -1, p, costmodel.OpSpec{
		Kind:         costmodel.Store,
		InTuples:     p.Tuples,
		ResultTuples: p.Tuples,
		NetIn:        true,
	})
	producer.Consumer, producer.ConsumerEdge = store, Pipeline
	t.Root = store
	return t, nil
}

func (t *OperatorTree) newOp(kind costmodel.OpKind, name string, joinID int, src *query.PlanNode, spec costmodel.OpSpec) *Operator {
	op := &Operator{
		ID:     len(t.Ops),
		Kind:   kind,
		Spec:   spec,
		Name:   name,
		JoinID: joinID,
		Source: src,
	}
	t.Ops = append(t.Ops, op)
	return op
}

// ScanSpec is the costing spec of the scan operator a leaf plan node
// expands to. The spec depends only on the node itself — not on any
// enclosing plan — which is what makes per-subtree OPTBOUND terms
// (opt.SubtreeBounds) reusable across every candidate containing the
// subtree. Expand builds its operators from these same constructors, so
// the bound layer and the expansion can never disagree.
func ScanSpec(n *query.PlanNode) costmodel.OpSpec {
	return costmodel.OpSpec{
		Kind:     costmodel.Scan,
		InTuples: n.Relation.Tuples,
		NetOut:   true, // A5: pipelined output repartitioned
	}
}

// BuildSpec is the costing spec of the build operator a join plan node
// expands to. Context-independent like ScanSpec.
func BuildSpec(n *query.PlanNode) costmodel.OpSpec {
	return costmodel.OpSpec{
		Kind:     costmodel.Build,
		InTuples: n.Inner.Tuples,
		NetIn:    true,
	}
}

// ProbeSpec is the costing spec of the probe operator a join plan node
// expands to. Context-independent like ScanSpec.
func ProbeSpec(n *query.PlanNode) costmodel.OpSpec {
	return costmodel.OpSpec{
		Kind:         costmodel.Probe,
		InTuples:     n.Outer.Tuples,
		ResultTuples: n.Tuples,
		NetIn:        true,
		NetOut:       true,
	}
}

// expand returns the producer operator of the subtree's output stream.
func (t *OperatorTree) expand(n *query.PlanNode) *Operator {
	if n.IsLeaf() {
		return t.newOp(costmodel.Scan, fmt.Sprintf("scan(%s)", n.Relation.Name), -1, n, ScanSpec(n))
	}

	inner := t.expand(n.Inner)
	outer := t.expand(n.Outer)

	jid := t.nextJoin
	t.nextJoin++
	build := t.newOp(costmodel.Build, fmt.Sprintf("build(J%d)", jid), jid, n, BuildSpec(n))
	probe := t.newOp(costmodel.Probe, fmt.Sprintf("probe(J%d)", jid), jid, n, ProbeSpec(n))
	probe.BuildOp = build

	inner.Consumer, inner.ConsumerEdge = build, Pipeline
	outer.Consumer, outer.ConsumerEdge = probe, Pipeline
	build.Consumer, build.ConsumerEdge = probe, Blocking
	return probe
}

// Validate checks the structural invariants of the expansion: operator
// counts, edge kinds, probe/build pairing, and ID density.
func (t *OperatorTree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("plan: operator tree has no root")
	}
	scans, builds, probes, stores := 0, 0, 0, 0
	for i, op := range t.Ops {
		if op.ID != i {
			return fmt.Errorf("plan: operator %q has ID %d at index %d", op.Name, op.ID, i)
		}
		switch op.Kind {
		case costmodel.Store:
			stores++
			if op != t.Root {
				return fmt.Errorf("plan: store %q is not the root", op.Name)
			}
		case costmodel.Scan:
			scans++
			if op.Consumer == nil && t.Joins > 0 {
				return fmt.Errorf("plan: scan %q has no consumer", op.Name)
			}
		case costmodel.Build:
			builds++
			if op.Consumer == nil || op.Consumer.Kind != costmodel.Probe {
				return fmt.Errorf("plan: build %q does not feed a probe", op.Name)
			}
			if op.ConsumerEdge != Blocking {
				return fmt.Errorf("plan: build %q edge is %v, want blocking", op.Name, op.ConsumerEdge)
			}
		case costmodel.Probe:
			probes++
			if op.BuildOp == nil || op.BuildOp.JoinID != op.JoinID {
				return fmt.Errorf("plan: probe %q not paired with its build", op.Name)
			}
		default:
			return fmt.Errorf("plan: unexpected operator kind %v", op.Kind)
		}
	}
	if scans != t.Joins+1 && !(t.Joins == 0 && scans == 1) {
		return fmt.Errorf("plan: %d scans for %d joins", scans, t.Joins)
	}
	if builds != t.Joins || probes != t.Joins {
		return fmt.Errorf("plan: %d builds / %d probes for %d joins", builds, probes, t.Joins)
	}
	if stores > 1 {
		return fmt.Errorf("plan: %d store operators", stores)
	}
	if t.Root.Consumer != nil {
		return fmt.Errorf("plan: root %q has a consumer", t.Root.Name)
	}
	return nil
}

// Task is a query task: a maximal subgraph of the operator tree
// connected by pipelining edges, executed as one unit of concurrency.
type Task struct {
	// ID indexes the task within its tree, dense from 0.
	ID int
	// Ops are the task's operators, in operator-ID order.
	Ops []*Operator
	// Parent is the task that consumes this task's (blocking) output;
	// nil for the root task.
	Parent *Task
	// Children are the tasks that must complete before this one starts.
	Children []*Task
	// Level is the blocking distance from the root task (root = 0).
	// MinShelf schedules a task in phase Level, as close to the root as
	// the precedence constraints allow.
	Level int
}

// Name renders a compact label listing the task's operators.
func (tk *Task) Name() string {
	names := make([]string, len(tk.Ops))
	for i, op := range tk.Ops {
		names[i] = op.Name
	}
	return "{" + strings.Join(names, " ") + "}"
}

// TaskTree is the query task tree of Figure 1(c).
type TaskTree struct {
	// Tasks lists all tasks, indexed by ID.
	Tasks []*Task
	// Root is the task producing the query result.
	Root *Task
	// Height is the maximum task level.
	Height int
}

// NewTaskTree groups an operator tree's nodes into query tasks and
// derives the blocking structure. It also back-fills each operator's
// Task pointer.
func NewTaskTree(ot *OperatorTree) (*TaskTree, error) {
	if err := ot.Validate(); err != nil {
		return nil, err
	}
	// Union operators across pipeline edges.
	parent := make([]int, len(ot.Ops))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, op := range ot.Ops {
		if op.Consumer != nil && op.ConsumerEdge == Pipeline {
			union(op.ID, op.Consumer.ID)
		}
	}

	tt := &TaskTree{}
	byRoot := map[int]*Task{}
	taskOf := func(op *Operator) *Task {
		r := find(op.ID)
		tk, ok := byRoot[r]
		if !ok {
			tk = &Task{ID: len(tt.Tasks)}
			tt.Tasks = append(tt.Tasks, tk)
			byRoot[r] = tk
		}
		return tk
	}
	for _, op := range ot.Ops {
		tk := taskOf(op)
		tk.Ops = append(tk.Ops, op)
		op.Task = tk
	}

	// Blocking edges between tasks.
	for _, op := range ot.Ops {
		if op.Consumer != nil && op.ConsumerEdge == Blocking {
			child, par := op.Task, op.Consumer.Task
			if child == par {
				return nil, fmt.Errorf("plan: blocking edge %q -> %q inside one task",
					op.Name, op.Consumer.Name)
			}
			child.Parent = par
			par.Children = append(par.Children, child)
		}
	}

	tt.Root = ot.Root.Task
	if tt.Root.Parent != nil {
		return nil, fmt.Errorf("plan: root task has a parent")
	}

	// Levels by BFS from the root (MinShelf: level = parent level + 1).
	tt.assignLevels()
	return tt, nil
}

// MustNewTaskTree is NewTaskTree that panics on error.
func MustNewTaskTree(ot *OperatorTree) *TaskTree {
	tt, err := NewTaskTree(ot)
	if err != nil {
		panic(err)
	}
	return tt
}

func (tt *TaskTree) assignLevels() {
	tt.Height = 0
	queue := []*Task{tt.Root}
	tt.Root.Level = 0
	for len(queue) > 0 {
		tk := queue[0]
		queue = queue[1:]
		if tk.Level > tt.Height {
			tt.Height = tk.Level
		}
		for _, c := range tk.Children {
			c.Level = tk.Level + 1
			queue = append(queue, c)
		}
	}
}

// PhasePolicy selects how tasks are packed into synchronized phases.
type PhasePolicy int

const (
	// MinShelf is the paper's policy (Tan & Lu): each task runs in the
	// phase closest to the root that respects the blocking constraints —
	// as LATE as possible. Shallow subtrees finish just before their
	// consumers, keeping early phases lean.
	MinShelf PhasePolicy = iota
	// EarliestShelf runs each task as EARLY as possible: all leaf tasks
	// in phase 0, each parent right after its slowest child chain. Early
	// phases are crowded, late phases sparse — the natural ablation
	// against MinShelf.
	EarliestShelf
)

// String names the policy.
func (p PhasePolicy) String() string {
	if p == EarliestShelf {
		return "earliest-shelf"
	}
	return "min-shelf"
}

// Phases returns the synchronized execution phases under the MinShelf
// policy, in execution order: Phases()[0] runs first and contains the
// deepest tasks (level == Height); the last phase contains only the
// root task. Within a phase all tasks are independent (no blocking path
// connects them), matching Section 5.4's requirement.
func (tt *TaskTree) Phases() [][]*Task {
	return tt.PhasesBy(MinShelf)
}

// PhasesBy returns the synchronized phases under the given policy. Both
// policies produce Height+1 phases with the root task alone in the last
// one; they differ in where tasks from shallow subtrees land.
func (tt *TaskTree) PhasesBy(policy PhasePolicy) [][]*Task {
	phases := make([][]*Task, tt.Height+1)
	switch policy {
	case EarliestShelf:
		asap := make(map[*Task]int, len(tt.Tasks))
		var level func(tk *Task) int
		level = func(tk *Task) int {
			if l, ok := asap[tk]; ok {
				return l
			}
			l := 0
			for _, c := range tk.Children {
				if cl := level(c) + 1; cl > l {
					l = cl
				}
			}
			asap[tk] = l
			return l
		}
		for _, tk := range tt.Tasks {
			phases[level(tk)] = append(phases[level(tk)], tk)
		}
	default: // MinShelf
		for _, tk := range tt.Tasks {
			idx := tt.Height - tk.Level
			phases[idx] = append(phases[idx], tk)
		}
	}
	return phases
}

// Validate checks the task-tree invariants: every operator in exactly
// one task, levels consistent with parents, and no blocking edge inside
// a phase.
func (tt *TaskTree) Validate() error {
	if tt.Root == nil {
		return fmt.Errorf("plan: task tree has no root")
	}
	seen := map[int]bool{}
	for i, tk := range tt.Tasks {
		if tk.ID != i {
			return fmt.Errorf("plan: task %d has ID %d", i, tk.ID)
		}
		if len(tk.Ops) == 0 {
			return fmt.Errorf("plan: task %d is empty", i)
		}
		for _, op := range tk.Ops {
			if seen[op.ID] {
				return fmt.Errorf("plan: operator %q in two tasks", op.Name)
			}
			seen[op.ID] = true
			if op.Task != tk {
				return fmt.Errorf("plan: operator %q Task pointer mismatch", op.Name)
			}
		}
		if tk.Parent != nil && tk.Level != tk.Parent.Level+1 {
			return fmt.Errorf("plan: task %d level %d, parent level %d",
				tk.ID, tk.Level, tk.Parent.Level)
		}
		if tk.Parent == nil && tk != tt.Root {
			return fmt.Errorf("plan: task %d is an orphan", tk.ID)
		}
	}
	for _, phase := range tt.Phases() {
		inPhase := map[*Task]bool{}
		for _, tk := range phase {
			inPhase[tk] = true
		}
		for _, tk := range phase {
			if inPhase[tk.Parent] {
				return fmt.Errorf("plan: task %d and its parent share a phase", tk.ID)
			}
		}
	}
	return nil
}
