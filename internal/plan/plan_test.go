package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdrs/internal/costmodel"
	"mdrs/internal/query"
)

func leaf(name string, tuples int) *query.PlanNode {
	return &query.PlanNode{
		Relation: &query.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

func join(outer, inner *query.PlanNode) *query.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &query.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

// twoJoinPlan builds (A ⋈ B) ⋈ C with A outer of J0, C outer of J1:
// J1( outer=C ... wait — constructed as join(join(A,B), C): J0 = A⋈B
// (A outer, B inner), J1 = J0 ⋈ C (J0 outer, C inner).
func twoJoinPlan() *query.PlanNode {
	return join(join(leaf("A", 1000), leaf("B", 3000)), leaf("C", 2000))
}

func TestExpandCounts(t *testing.T) {
	ot := MustExpand(twoJoinPlan())
	if err := ot.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3J+1 operators: 3 scans, 2 builds, 2 probes.
	if got := len(ot.Ops); got != 7 {
		t.Fatalf("operator count = %d, want 7", got)
	}
	kinds := map[costmodel.OpKind]int{}
	for _, op := range ot.Ops {
		kinds[op.Kind]++
	}
	if kinds[costmodel.Scan] != 3 || kinds[costmodel.Build] != 2 || kinds[costmodel.Probe] != 2 {
		t.Fatalf("kind counts = %v", kinds)
	}
	if ot.Root.Kind != costmodel.Probe {
		t.Fatalf("root kind = %v, want probe", ot.Root.Kind)
	}
}

func TestExpandCardinalities(t *testing.T) {
	ot := MustExpand(twoJoinPlan())
	byName := map[string]*Operator{}
	for _, op := range ot.Ops {
		byName[op.Name] = op
	}
	// J0 = A ⋈ B: build over B (3000), probe over A (1000) producing 3000.
	if b := byName["build(J0)"]; b.Spec.InTuples != 3000 {
		t.Errorf("build(J0) input = %d, want 3000", b.Spec.InTuples)
	}
	p0 := byName["probe(J0)"]
	if p0.Spec.InTuples != 1000 || p0.Spec.ResultTuples != 3000 {
		t.Errorf("probe(J0) = %d -> %d, want 1000 -> 3000",
			p0.Spec.InTuples, p0.Spec.ResultTuples)
	}
	// J1 = J0 ⋈ C: build over C (2000), probe over J0's output (3000)
	// producing max(3000, 2000) = 3000.
	if b := byName["build(J1)"]; b.Spec.InTuples != 2000 {
		t.Errorf("build(J1) input = %d, want 2000", b.Spec.InTuples)
	}
	p1 := byName["probe(J1)"]
	if p1.Spec.InTuples != 3000 || p1.Spec.ResultTuples != 3000 {
		t.Errorf("probe(J1) = %d -> %d, want 3000 -> 3000",
			p1.Spec.InTuples, p1.Spec.ResultTuples)
	}
}

func TestExpandEdgeKinds(t *testing.T) {
	ot := MustExpand(twoJoinPlan())
	for _, op := range ot.Ops {
		switch op.Kind {
		case costmodel.Scan:
			if op.ConsumerEdge != Pipeline {
				t.Errorf("%s consumer edge = %v, want pipeline", op.Name, op.ConsumerEdge)
			}
			if !op.Spec.NetOut || op.Spec.NetIn {
				t.Errorf("%s net flags = in:%v out:%v", op.Name, op.Spec.NetIn, op.Spec.NetOut)
			}
		case costmodel.Build:
			if op.ConsumerEdge != Blocking {
				t.Errorf("%s consumer edge = %v, want blocking", op.Name, op.ConsumerEdge)
			}
			if !op.Spec.NetIn || op.Spec.NetOut {
				t.Errorf("%s net flags = in:%v out:%v", op.Name, op.Spec.NetIn, op.Spec.NetOut)
			}
		case costmodel.Probe:
			if op.BuildOp == nil || op.BuildOp.Kind != costmodel.Build {
				t.Errorf("%s missing build pairing", op.Name)
			}
			if !op.Spec.NetIn || !op.Spec.NetOut {
				t.Errorf("%s net flags = in:%v out:%v", op.Name, op.Spec.NetIn, op.Spec.NetOut)
			}
		}
	}
}

func TestExpandRejectsInvalidPlan(t *testing.T) {
	if _, err := Expand(leaf("R", -1)); err == nil {
		t.Fatal("invalid plan expanded")
	}
}

func TestExpandSingleRelation(t *testing.T) {
	ot := MustExpand(leaf("R", 500))
	if err := ot.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ot.Ops) != 1 || ot.Root.Kind != costmodel.Scan {
		t.Fatalf("single-relation expansion: %d ops, root %v", len(ot.Ops), ot.Root.Kind)
	}
	tt := MustNewTaskTree(ot)
	if len(tt.Tasks) != 1 || tt.Height != 0 {
		t.Fatalf("tasks = %d, height = %d", len(tt.Tasks), tt.Height)
	}
}

func TestTaskGrouping(t *testing.T) {
	// Figure 1 intuition for (A ⋈ B) ⋈ C:
	//   T_a = {scan(B) build(J0)}          (inner pipeline of J0)
	//   T_b = {scan(C) build(J1)}          (inner pipeline of J1)
	//   T_c = {scan(A) probe(J0) probe(J1)} (outer pipeline to the root)
	ot := MustExpand(twoJoinPlan())
	tt := MustNewTaskTree(ot)
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tt.Tasks); got != 3 {
		t.Fatalf("task count = %d, want 3", got)
	}
	sizes := map[int]int{}
	for _, tk := range tt.Tasks {
		sizes[len(tk.Ops)]++
	}
	if sizes[2] != 2 || sizes[3] != 1 {
		t.Fatalf("task sizes = %v, want two 2-op tasks and one 3-op task", sizes)
	}
	// The root task holds both probes and scan(A).
	rootOps := map[string]bool{}
	for _, op := range tt.Root.Ops {
		rootOps[op.Name] = true
	}
	for _, want := range []string{"scan(A)", "probe(J0)", "probe(J1)"} {
		if !rootOps[want] {
			t.Errorf("root task missing %s: has %v", want, tt.Root.Name())
		}
	}
}

func TestTaskLevelsAndPhases(t *testing.T) {
	ot := MustExpand(twoJoinPlan())
	tt := MustNewTaskTree(ot)
	if tt.Height != 1 {
		t.Fatalf("height = %d, want 1", tt.Height)
	}
	phases := tt.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	// First phase: the two build pipelines; second: the root task.
	if len(phases[0]) != 2 || len(phases[1]) != 1 {
		t.Fatalf("phase sizes = %d/%d, want 2/1", len(phases[0]), len(phases[1]))
	}
	if phases[1][0] != tt.Root {
		t.Fatal("last phase is not the root task")
	}
}

// A right-deep chain of joins puts all builds in one phase... actually a
// right-deep tree (J_k inner = deeper join) chains builds through
// blocking edges: build(J1) feeds probe(J1) which pipelines into
// build(J0)... Verify the level structure on a concrete 3-join
// right-deep plan: ((A ⋈ (B ⋈ (C ⋈ D)))) with inner = deeper subtree.
func TestRightDeepLevels(t *testing.T) {
	d := leaf("D", 400)
	c := leaf("C", 300)
	b := leaf("B", 200)
	a := leaf("A", 100)
	p := join(a, join(b, join(c, d)))
	ot := MustExpand(p)
	tt := MustNewTaskTree(ot)
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tasks: {scan(D) build(J0)}, {scan(C) probe(J0) build(J1)},
	// {scan(B) probe(J1) build(J2)}, {scan(A) probe(J2)}.
	if len(tt.Tasks) != 4 {
		t.Fatalf("task count = %d, want 4", len(tt.Tasks))
	}
	if tt.Height != 3 {
		t.Fatalf("height = %d, want 3 (serialized right-deep chain)", tt.Height)
	}
	for _, phase := range tt.Phases() {
		if len(phase) != 1 {
			t.Fatalf("right-deep phase has %d tasks, want 1", len(phase))
		}
	}
}

// A left-deep chain pipelines all probes into one task: the task tree
// is flat (every build pipeline is a direct child of the root task) —
// maximal independent parallelism.
func TestLeftDeepLevels(t *testing.T) {
	p := leaf("R0", 100)
	for i := 1; i <= 5; i++ {
		p = join(p, leaf("x", 100+i)) // inner = fresh relation
	}
	ot := MustExpand(p)
	tt := MustNewTaskTree(ot)
	if tt.Height != 1 {
		t.Fatalf("height = %d, want 1 (flat left-deep task tree)", tt.Height)
	}
	phases := tt.Phases()
	if len(phases[0]) != 5 || len(phases[1]) != 1 {
		t.Fatalf("phase sizes = %d/%d, want 5/1", len(phases[0]), len(phases[1]))
	}
	if got := len(tt.Root.Ops); got != 6 { // scan(R0) + 5 probes
		t.Fatalf("root task size = %d, want 6", got)
	}
}

func TestBlockingEdgesCrossPhases(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		p := query.MustRandom(r, query.DefaultGenConfig(15))
		tt := MustNewTaskTree(MustExpand(p))
		phaseOf := map[*Task]int{}
		for i, phase := range tt.Phases() {
			for _, tk := range phase {
				phaseOf[tk] = i
			}
		}
		for _, tk := range tt.Tasks {
			if tk.Parent != nil && phaseOf[tk] >= phaseOf[tk.Parent] {
				t.Fatalf("child task phase %d >= parent phase %d",
					phaseOf[tk], phaseOf[tk.Parent])
			}
		}
	}
}

func TestProbeRootedAtBuildJoin(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	p := query.MustRandom(r, query.DefaultGenConfig(12))
	ot := MustExpand(p)
	for _, op := range ot.Ops {
		if op.Kind != costmodel.Probe {
			continue
		}
		if op.BuildOp.JoinID != op.JoinID {
			t.Fatalf("probe J%d paired with build J%d", op.JoinID, op.BuildOp.JoinID)
		}
		// The build's blocking consumer is exactly this probe.
		if op.BuildOp.Consumer != op {
			t.Fatalf("build(J%d) consumer mismatch", op.JoinID)
		}
	}
}

func TestPhasesByPolicies(t *testing.T) {
	// Plan with an unbalanced shape: a deep right chain plus one shallow
	// leaf at the root: join(A, join(B, join(C, D))).
	p := join(leaf("A", 100), join(leaf("B", 200), join(leaf("C", 300), leaf("D", 400))))
	tt := MustNewTaskTree(MustExpand(p))
	if tt.Height != 3 {
		t.Fatalf("height = %d", tt.Height)
	}
	min := tt.PhasesBy(MinShelf)
	early := tt.PhasesBy(EarliestShelf)
	if len(min) != len(early) || len(min) != 4 {
		t.Fatalf("phase counts: min %d, early %d", len(min), len(early))
	}
	// Both policies: root task alone in the final phase.
	if len(min[3]) != 1 || len(early[3]) != 1 {
		t.Fatalf("final phases: min %d, early %d tasks", len(min[3]), len(early[3]))
	}
	// Each task appears exactly once under either policy.
	for _, phases := range [][][]*Task{min, early} {
		total := 0
		for _, ph := range phases {
			total += len(ph)
		}
		if total != len(tt.Tasks) {
			t.Fatalf("policy lost tasks: %d of %d", total, len(tt.Tasks))
		}
	}
	// Blocking order respected under EarliestShelf.
	phaseOf := map[*Task]int{}
	for i, ph := range early {
		for _, tk := range ph {
			phaseOf[tk] = i
		}
	}
	for _, tk := range tt.Tasks {
		if tk.Parent != nil && phaseOf[tk] >= phaseOf[tk.Parent] {
			t.Fatalf("EarliestShelf: child phase %d >= parent phase %d",
				phaseOf[tk], phaseOf[tk.Parent])
		}
	}
}

func TestPhasePolicyString(t *testing.T) {
	if MinShelf.String() != "min-shelf" || EarliestShelf.String() != "earliest-shelf" {
		t.Fatal("policy names wrong")
	}
}

func TestPoliciesDifferOnUnbalancedTrees(t *testing.T) {
	// In join(A, join(B, join(C, D))), the build pipeline of the root's
	// inner side is a 3-deep chain while scan(A) pipelines into the root
	// task itself; the INNER chain's leaf task {scan(D) build(J0)} runs
	// in phase 0 under both policies. Construct instead a bushy plan
	// where a shallow subtree's build task can float: the task
	// {scan(C) build(J1)} of join(join(A,B), C)'s root... use a tree with
	// two subtrees of different depths.
	deep := join(leaf("B", 200), join(leaf("C", 300), leaf("D", 400)))
	p := join(deep, leaf("E", 150)) // E's build task blocks only the root
	tt := MustNewTaskTree(MustExpand(p))
	min := tt.PhasesBy(MinShelf)
	early := tt.PhasesBy(EarliestShelf)
	// The task {scan(E) build(J_root)} has no children: EarliestShelf
	// puts it in phase 0, MinShelf right before the root.
	sizes := func(phases [][]*Task) []int {
		out := make([]int, len(phases))
		for i, ph := range phases {
			out[i] = len(ph)
		}
		return out
	}
	sMin, sEarly := sizes(min), sizes(early)
	if sMin[0] >= sEarly[0] {
		t.Fatalf("expected EarliestShelf to crowd phase 0: min %v, early %v", sMin, sEarly)
	}
}

func TestExpandMaterialized(t *testing.T) {
	p := join(leaf("A", 1000), leaf("B", 3000))
	ot, err := ExpandMaterialized(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ot.Validate(); err != nil {
		t.Fatal(err)
	}
	if ot.Root.Kind != costmodel.Store {
		t.Fatalf("root kind = %v, want store", ot.Root.Kind)
	}
	if ot.Root.Spec.InTuples != 3000 || ot.Root.Spec.ResultTuples != 3000 {
		t.Fatalf("store cardinalities: %+v", ot.Root.Spec)
	}
	// The store joins the root pipeline: same task as the probe.
	tt := MustNewTaskTree(ot)
	probeTask := ot.Root.Task
	found := false
	for _, op := range probeTask.Ops {
		if op.Kind == costmodel.Probe {
			found = true
		}
	}
	if !found {
		t.Fatal("store not pipelined with the root probe")
	}
	_ = tt
}

func TestExpandMaterializedSingleRelation(t *testing.T) {
	ot, err := ExpandMaterialized(leaf("R", 500))
	if err != nil {
		t.Fatal(err)
	}
	if err := ot.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ot.Ops) != 2 || ot.Root.Kind != costmodel.Store {
		t.Fatalf("ops = %d, root = %v", len(ot.Ops), ot.Root.Kind)
	}
}

func TestValidateRejectsMisplacedStore(t *testing.T) {
	p := join(leaf("A", 100), leaf("B", 200))
	ot, err := ExpandMaterialized(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend the probe is the root again: the store is now misplaced.
	ot.Root = ot.Ops[len(ot.Ops)-2]
	if err := ot.Validate(); err == nil {
		t.Fatal("misplaced store accepted")
	}
}

func TestTaskName(t *testing.T) {
	ot := MustExpand(leaf("R", 100))
	tt := MustNewTaskTree(ot)
	if got := tt.Tasks[0].Name(); got != "{scan(R)}" {
		t.Fatalf("Name = %q", got)
	}
}

func TestEdgeKindString(t *testing.T) {
	if Pipeline.String() != "pipeline" || Blocking.String() != "blocking" {
		t.Fatal("EdgeKind strings wrong")
	}
}

// Property: for any random plan, expansion and task grouping satisfy all
// structural invariants, the operator count is 3J+1, the task count is
// J+1, and every phase contains only independent tasks.
func TestQuickStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		joins := r.Intn(40)
		p := query.MustRandom(r, query.DefaultGenConfig(joins))
		ot, err := Expand(p)
		if err != nil || ot.Validate() != nil {
			return false
		}
		if len(ot.Ops) != 3*joins+1 {
			return false
		}
		tt, err := NewTaskTree(ot)
		if err != nil || tt.Validate() != nil {
			return false
		}
		// One task per join's build pipeline plus the root pipeline.
		if len(tt.Tasks) != joins+1 {
			return false
		}
		total := 0
		for _, phase := range tt.Phases() {
			total += len(phase)
		}
		return total == len(tt.Tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExpandAndGroup40Joins(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := query.MustRandom(r, query.DefaultGenConfig(40))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt := MustNewTaskTree(MustExpand(p))
		if tt.Root == nil {
			b.Fatal("no root")
		}
	}
}
