package plan

import (
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/query"
)

// freshTrees builds a pristine operator tree + task tree for mutation.
func freshTrees(t *testing.T) (*OperatorTree, *TaskTree) {
	t.Helper()
	r := rand.New(rand.NewSource(47))
	p := query.MustRandom(r, query.DefaultGenConfig(5))
	ot := MustExpand(p)
	tt := MustNewTaskTree(ot)
	return ot, tt
}

func TestOperatorTreeValidateDetectsCorruptions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(ot *OperatorTree)
	}{
		{"no root", func(ot *OperatorTree) { ot.Root = nil }},
		{"non-dense IDs", func(ot *OperatorTree) { ot.Ops[3].ID = 99 }},
		{"build feeding a scan", func(ot *OperatorTree) {
			for _, op := range ot.Ops {
				if op.Kind == costmodel.Build {
					op.Consumer = ot.Ops[0] // a scan
					return
				}
			}
		}},
		{"build edge downgraded to pipeline", func(ot *OperatorTree) {
			for _, op := range ot.Ops {
				if op.Kind == costmodel.Build {
					op.ConsumerEdge = Pipeline
					return
				}
			}
		}},
		{"probe unpaired", func(ot *OperatorTree) {
			for _, op := range ot.Ops {
				if op.Kind == costmodel.Probe {
					op.BuildOp = nil
					return
				}
			}
		}},
		{"probe paired with the wrong join", func(ot *OperatorTree) {
			var probes []*Operator
			for _, op := range ot.Ops {
				if op.Kind == costmodel.Probe {
					probes = append(probes, op)
				}
			}
			probes[0].BuildOp = probes[1].BuildOp
		}},
		{"root with a consumer", func(ot *OperatorTree) {
			ot.Root.Consumer = ot.Ops[0]
		}},
		{"join count drift", func(ot *OperatorTree) { ot.Joins++ }},
	}
	for _, c := range cases {
		ot, _ := freshTrees(t)
		if err := ot.Validate(); err != nil {
			t.Fatalf("%s: pristine tree rejected: %v", c.name, err)
		}
		c.mutate(ot)
		if err := ot.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}

func TestTaskTreeValidateDetectsCorruptions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(tt *TaskTree)
	}{
		{"no root", func(tt *TaskTree) { tt.Root = nil }},
		{"non-dense task IDs", func(tt *TaskTree) { tt.Tasks[1].ID = 42 }},
		{"empty task", func(tt *TaskTree) { tt.Tasks[1].Ops = nil }},
		{"level drift", func(tt *TaskTree) {
			for _, tk := range tt.Tasks {
				if tk.Parent != nil {
					tk.Level = tk.Parent.Level + 2
					return
				}
			}
		}},
		{"orphan task", func(tt *TaskTree) {
			for _, tk := range tt.Tasks {
				if tk.Parent != nil {
					tk.Parent = nil
					return
				}
			}
		}},
		{"operator stolen by another task", func(tt *TaskTree) {
			a, b := tt.Tasks[0], tt.Tasks[1]
			b.Ops = append(b.Ops, a.Ops[0])
		}},
		{"task pointer mismatch", func(tt *TaskTree) {
			tt.Tasks[0].Ops[0].Task = tt.Tasks[len(tt.Tasks)-1]
		}},
	}
	for _, c := range cases {
		_, tt := freshTrees(t)
		if err := tt.Validate(); err != nil {
			t.Fatalf("%s: pristine task tree rejected: %v", c.name, err)
		}
		c.mutate(tt)
		if err := tt.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}

func TestNewTaskTreeRejectsInvalidOperatorTree(t *testing.T) {
	ot, _ := freshTrees(t)
	ot.Root = nil
	if _, err := NewTaskTree(ot); err == nil {
		t.Fatal("invalid operator tree accepted")
	}
}

func TestExpandSourceLinks(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	p := query.MustRandom(r, query.DefaultGenConfig(6))
	ot := MustExpand(p)
	for _, op := range ot.Ops {
		if op.Source == nil {
			t.Fatalf("%s has no Source link", op.Name)
		}
		switch op.Kind {
		case costmodel.Scan:
			if !op.Source.IsLeaf() {
				t.Fatalf("scan %s sourced from a join node", op.Name)
			}
			if op.Spec.InTuples != op.Source.Relation.Tuples {
				t.Fatalf("scan %s cardinality mismatch", op.Name)
			}
		case costmodel.Build, costmodel.Probe:
			if op.Source.IsLeaf() {
				t.Fatalf("%s sourced from a leaf", op.Name)
			}
		}
	}
	// Build and probe of one join share the same source node.
	for _, op := range ot.Ops {
		if op.Kind == costmodel.Probe && op.Source != op.BuildOp.Source {
			t.Fatalf("probe %s and its build disagree on Source", op.Name)
		}
	}
}
