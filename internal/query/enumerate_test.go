package query

import (
	"fmt"
	"testing"
)

func enumRels(n int) []*Relation {
	rels := make([]*Relation, n)
	for i := range rels {
		rels[i] = &Relation{Name: fmt.Sprintf("R%d", i), Tuples: 1000 * (i + 1)}
	}
	return rels
}

// T(n) = Σ_{k=1}^{n-1} C(n,k)·T(k)·T(n−k): every root split chooses an
// outer subset, and sidedness distinguishes mirror trees.
func TestEnumerateBushyCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 12, 4: 120, 5: 1680}
	for n, count := range want {
		plans, err := EnumerateBushy(enumRels(n))
		if err != nil {
			t.Fatal(err)
		}
		if len(plans) != count {
			t.Fatalf("n=%d: %d plans, want %d", n, len(plans), count)
		}
	}
}

func TestEnumerateBushyPlansValidAndDistinct(t *testing.T) {
	plans, err := EnumerateBushy(enumRels(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(plans))
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := p.Joins(); got != 3 {
			t.Fatalf("plan has %d joins, want 3", got)
		}
		data, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if seen[string(data)] {
			t.Fatalf("duplicate plan enumerated:\n%s", data)
		}
		seen[string(data)] = true
	}
}

// The order must be deterministic: the optimizer's identity tests pin
// candidate indices across pruned and unpruned searches.
func TestEnumerateBushyDeterministicOrder(t *testing.T) {
	a, err := EnumerateBushy(enumRels(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EnumerateBushy(enumRels(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		da, _ := a[i].Encode()
		db, _ := b[i].Encode()
		if string(da) != string(db) {
			t.Fatalf("plan %d differs between runs", i)
		}
	}
}

func TestEnumerateBushyValidation(t *testing.T) {
	if _, err := EnumerateBushy(nil); err == nil {
		t.Error("empty relation list accepted")
	}
	if _, err := EnumerateBushy(enumRels(MaxEnumerateRelations + 1)); err == nil {
		t.Error("oversized relation list accepted")
	}
	if _, err := EnumerateBushy([]*Relation{{Name: "R", Tuples: 0}}); err == nil {
		t.Error("non-positive cardinality accepted")
	}
	if _, err := EnumerateBushy([]*Relation{nil}); err == nil {
		t.Error("nil relation accepted")
	}
}
