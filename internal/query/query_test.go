package query

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func leaf(name string, tuples int) *PlanNode {
	return &PlanNode{Relation: &Relation{Name: name, Tuples: tuples}, Tuples: tuples}
}

func join(outer, inner *PlanNode) *PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func TestLeafProperties(t *testing.T) {
	l := leaf("R0", 5000)
	if !l.IsLeaf() || l.Joins() != 0 || l.Depth() != 0 {
		t.Fatalf("leaf properties wrong: %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinProperties(t *testing.T) {
	p := join(join(leaf("A", 100), leaf("B", 300)), leaf("C", 200))
	if p.IsLeaf() {
		t.Fatal("join reported as leaf")
	}
	if got := p.Joins(); got != 2 {
		t.Fatalf("Joins = %d, want 2", got)
	}
	if got := p.Depth(); got != 2 {
		t.Fatalf("Depth = %d, want 2", got)
	}
	if got := p.Tuples; got != 300 {
		t.Fatalf("root cardinality = %d, want 300 (max rule)", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, r := range p.Leaves() {
		names = append(names, r.Name)
	}
	if len(names) != 3 || names[0] != "A" || names[1] != "B" || names[2] != "C" {
		t.Fatalf("Leaves = %v", names)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    *PlanNode
	}{
		{"nil", nil},
		{"zero-cardinality relation", leaf("R", 0)},
		{"leaf/relation mismatch", &PlanNode{Relation: &Relation{Name: "R", Tuples: 5}, Tuples: 6}},
		{"join missing child", &PlanNode{Outer: leaf("A", 1), Tuples: 1}},
		{"wrong join cardinality", &PlanNode{Outer: leaf("A", 10), Inner: leaf("B", 20), Tuples: 10}},
		{"leaf with children", &PlanNode{
			Relation: &Relation{Name: "R", Tuples: 5}, Tuples: 5, Outer: leaf("A", 1),
		}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGenConfigValidate(t *testing.T) {
	if err := DefaultGenConfig(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GenConfig{
		{Joins: -1, MinTuples: 1, MaxTuples: 2},
		{Joins: 1, MinTuples: 0, MaxTuples: 2},
		{Joins: 1, MinTuples: 5, MaxTuples: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := Random(rand.New(rand.NewSource(1)), c); err == nil {
			t.Errorf("case %d: Random accepted", i)
		}
	}
}

func TestDefaultGenConfigMatchesPaper(t *testing.T) {
	c := DefaultGenConfig(40)
	if c.Joins != 40 || c.MinTuples != 1000 || c.MaxTuples != 100000 {
		t.Fatalf("DefaultGenConfig = %+v", c)
	}
}

func TestRandomShape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, joins := range []int{0, 1, 5, 10, 40, 50} {
		p := MustRandom(r, DefaultGenConfig(joins))
		if got := p.Joins(); got != joins {
			t.Fatalf("Joins = %d, want %d", got, joins)
		}
		if got := len(p.Leaves()); got != joins+1 {
			t.Fatalf("leaves = %d, want %d", got, joins+1)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated plan invalid: %v", err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	p1 := MustRandom(rand.New(rand.NewSource(99)), DefaultGenConfig(20))
	p2 := MustRandom(rand.New(rand.NewSource(99)), DefaultGenConfig(20))
	b1, err := p1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different plans")
	}
}

func TestRandomRelationSizesInRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := GenConfig{Joins: 30, MinTuples: 500, MaxTuples: 600}
	p := MustRandom(r, cfg)
	for _, rel := range p.Leaves() {
		if rel.Tuples < 500 || rel.Tuples > 600 {
			t.Fatalf("relation %s size %d outside [500, 600]", rel.Name, rel.Tuples)
		}
	}
}

func TestRandomUniqueRelationNames(t *testing.T) {
	p := MustRandom(rand.New(rand.NewSource(5)), DefaultGenConfig(25))
	seen := map[string]bool{}
	for _, rel := range p.Leaves() {
		if seen[rel.Name] {
			t.Fatalf("duplicate relation name %s", rel.Name)
		}
		seen[rel.Name] = true
	}
}

func TestRandomProducesBushyShapes(t *testing.T) {
	// Over many draws of 10-join plans we must see at least one plan that
	// is neither left-deep nor right-deep (i.e. truly bushy) and a spread
	// of depths.
	r := rand.New(rand.NewSource(11))
	bushy := false
	depths := map[int]bool{}
	for i := 0; i < 50; i++ {
		p := MustRandom(r, DefaultGenConfig(10))
		depths[p.Depth()] = true
		if !p.Outer.IsLeaf() && !p.Inner.IsLeaf() {
			bushy = true
		}
	}
	if !bushy {
		t.Fatal("no bushy plan in 50 draws")
	}
	if len(depths) < 2 {
		t.Fatalf("no shape variety: depths %v", depths)
	}
}

func TestWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ps, err := Workload(r, DefaultGenConfig(10), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 20 {
		t.Fatalf("len = %d", len(ps))
	}
	if _, err := Workload(r, DefaultGenConfig(10), 0); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Workload(r, GenConfig{Joins: 1}, 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestShapeString(t *testing.T) {
	want := map[Shape]string{
		RandomBushy: "random-bushy",
		LeftDeep:    "left-deep",
		RightDeep:   "right-deep",
		Balanced:    "balanced",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
}

func TestRandomShapedStructure(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	cfg := DefaultGenConfig(6)

	ld, err := RandomShaped(r, cfg, LeftDeep)
	if err != nil {
		t.Fatal(err)
	}
	// Left-deep: every inner child is a leaf; depth = number of joins.
	for n := ld; !n.IsLeaf(); n = n.Outer {
		if !n.Inner.IsLeaf() {
			t.Fatal("left-deep plan has a non-leaf inner child")
		}
	}
	if ld.Depth() != 6 {
		t.Fatalf("left-deep depth = %d, want 6", ld.Depth())
	}

	rd, err := RandomShaped(r, cfg, RightDeep)
	if err != nil {
		t.Fatal(err)
	}
	for n := rd; !n.IsLeaf(); n = n.Inner {
		if !n.Outer.IsLeaf() {
			t.Fatal("right-deep plan has a non-leaf outer child")
		}
	}

	bal, err := RandomShaped(r, cfg, Balanced)
	if err != nil {
		t.Fatal(err)
	}
	if got := bal.Depth(); got != 3 {
		t.Fatalf("balanced depth = %d, want 3 (7 leaves)", got)
	}

	for _, p := range []*PlanNode{ld, rd, bal} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.Joins() != 6 {
			t.Fatalf("joins = %d", p.Joins())
		}
	}
}

func TestRandomShapedRejectsBadConfig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := RandomShaped(r, GenConfig{Joins: 2}, LeftDeep); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPlanOverValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := PlanOver(r, nil, LeftDeep); err == nil {
		t.Error("empty relation set accepted")
	}
	if _, err := PlanOver(r, []*Relation{{Name: "R", Tuples: 0}}, LeftDeep); err == nil {
		t.Error("zero-cardinality relation accepted")
	}
	if _, err := PlanOver(r, []*Relation{nil}, Balanced); err == nil {
		t.Error("nil relation accepted")
	}
}

func TestPlanOverSingleRelation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, shape := range []Shape{RandomBushy, LeftDeep, RightDeep, Balanced} {
		p, err := PlanOver(r, []*Relation{{Name: "R", Tuples: 42}}, shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if !p.IsLeaf() || p.Tuples != 42 {
			t.Fatalf("%v: got %+v", shape, p)
		}
	}
}

func TestPlanOverPreservesRelationSet(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	rels := []*Relation{
		{Name: "A", Tuples: 10}, {Name: "B", Tuples: 20},
		{Name: "C", Tuples: 30}, {Name: "D", Tuples: 40},
	}
	for _, shape := range []Shape{RandomBushy, LeftDeep, RightDeep, Balanced} {
		p, err := PlanOver(r, rels, shape)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, rel := range p.Leaves() {
			got[rel.Name] = true
		}
		if len(got) != 4 {
			t.Fatalf("%v: leaves = %v", shape, got)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := MustRandom(rand.New(rand.NewSource(2)), DefaultGenConfig(15))
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Joins() != p.Joins() || q.Tuples != p.Tuples {
		t.Fatalf("round trip changed plan: %d/%d joins, %d/%d tuples",
			q.Joins(), p.Joins(), q.Tuples, p.Tuples)
	}
	d2, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(d2) != string(data) {
		t.Fatal("round trip not idempotent")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := Decode([]byte(`{"tuples": 5}`)); err == nil {
		t.Fatal("structurally invalid plan accepted")
	}
}

func TestEncodeRejectsInvalidPlan(t *testing.T) {
	if _, err := leaf("R", -1).Encode(); err == nil {
		t.Fatal("invalid plan encoded")
	}
}

// Property: for any seed and join count, generation yields a valid plan
// with the right number of joins and cardinalities obeying the max rule
// everywhere.
func TestQuickRandomAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		joins := r.Intn(50)
		p := MustRandom(r, DefaultGenConfig(joins))
		return p.Validate() == nil && p.Joins() == joins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandom40Joins(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cfg := DefaultGenConfig(40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MustRandom(r, cfg)
	}
}
