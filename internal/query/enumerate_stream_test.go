package query

import (
	"errors"
	"testing"
)

// The T(n) recurrence values the enumerators are tested against.
var bushyWant = map[int]int64{
	1: 1, 2: 2, 3: 12, 4: 120, 5: 1680, 6: 30240, 7: 665280,
	8: 17297280, 9: 518918400, 10: 17643225600,
}

func TestCountBushy(t *testing.T) {
	for n, want := range bushyWant {
		if got := CountBushy(n); got != want {
			t.Errorf("CountBushy(%d) = %d, want %d", n, got, want)
		}
	}
	if got := CountBushy(0); got != 0 {
		t.Errorf("CountBushy(0) = %d, want 0", got)
	}
	if got := CountBushy(MaxStreamRelations + 1); got != 0 {
		t.Errorf("CountBushy(%d) = %d, want 0", MaxStreamRelations+1, got)
	}
}

// Streaming enumeration must yield exactly the materialized sequence:
// same plans, same order, ordinals equal to slice indices.
func TestEnumerateStreamMatchesMaterialized(t *testing.T) {
	for n := 1; n <= 5; n++ {
		rels := enumRels(n)
		plans, err := EnumerateBushy(rels)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		err = EnumerateBushyFunc(rels, nil, func(p *PlanNode, ord int64) error {
			if ord != got {
				t.Fatalf("n=%d: yield %d carries ordinal %d", n, got, ord)
			}
			if got >= int64(len(plans)) {
				t.Fatalf("n=%d: more streamed plans than materialized (%d)", n, len(plans))
			}
			want, _ := plans[got].Encode()
			have, _ := p.Encode()
			if string(want) != string(have) {
				t.Fatalf("n=%d: plan %d differs:\nstream %s\nslice  %s", n, got, have, want)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(len(plans)) {
			t.Fatalf("n=%d: streamed %d plans, want %d", n, got, len(plans))
		}
	}
}

// The n = 6 and n = 7 boundary counts, streamed (materializing n = 7
// would allocate 665280 roots for nothing).
func TestEnumerateStreamCountsLarge(t *testing.T) {
	for _, n := range []int{6, 7} {
		var got int64
		err := EnumerateBushyFunc(enumRels(n), nil, func(_ *PlanNode, _ int64) error {
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != bushyWant[n] {
			t.Fatalf("n=%d: streamed %d plans, want %d", n, got, bushyWant[n])
		}
	}
}

// n = 8 crosses the materializing ceiling: 17.3M yields is seconds of
// plain CPU but minutes under the race detector, so the race pass keeps
// the n ≤ 7 assertions only.
func TestEnumerateStreamCountAtEight(t *testing.T) {
	if raceDetectorEnabled || testing.Short() {
		t.Skip("17.3M yields: skipped under -race and -short")
	}
	var got int64
	var last int64 = -1
	err := EnumerateBushyFunc(enumRels(8), nil, func(_ *PlanNode, ord int64) error {
		if ord != last+1 {
			t.Fatalf("ordinal %d follows %d", ord, last)
		}
		last = ord
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != bushyWant[8] {
		t.Fatalf("streamed %d plans, want %d", got, bushyWant[8])
	}
}

// A pruning hook must remove exactly the plans containing a discarded
// subtree, with the survivors keeping their unpruned ordinals.
func TestEnumerateStreamPruneKeepsOrdinals(t *testing.T) {
	rels := enumRels(5)
	plans, err := EnumerateBushy(rels)
	if err != nil {
		t.Fatal(err)
	}
	encoded := make([]string, len(plans))
	for i, p := range plans {
		data, _ := p.Encode()
		encoded[i] = string(data)
	}
	// Discard every proper subtree whose build side is not a base
	// relation: only left-deep-spined compositions survive.
	prune := func(n *PlanNode) bool { return !n.Inner.IsLeaf() }
	var yielded int64
	var lastOrd int64 = -1
	err = EnumerateBushyFunc(rels, prune, func(p *PlanNode, ord int64) error {
		if ord <= lastOrd {
			t.Fatalf("ordinal %d after %d: order not preserved", ord, lastOrd)
		}
		lastOrd = ord
		have, _ := p.Encode()
		if string(have) != encoded[ord] {
			t.Fatalf("pruned stream ordinal %d does not match materialized plan", ord)
		}
		yielded++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if yielded == 0 || yielded >= int64(len(plans)) {
		t.Fatalf("pruned stream yielded %d of %d plans; want a proper non-empty subset", yielded, len(plans))
	}
}

// Ten relations — beyond the materializing ceiling — must stream fine
// when the prune hook keeps the DP tables small. Keeping exactly one
// chain per relation subset leaves 2^10 subtrees and one yield per
// proper root split.
func TestEnumerateStreamTenRelationsPruned(t *testing.T) {
	rels := enumRels(10)
	minLeaf := func(n *PlanNode) *Relation {
		leaves := n.Leaves()
		min := leaves[0]
		for _, l := range leaves[1:] {
			if l.Tuples < min.Tuples {
				min = l
			}
		}
		return min
	}
	// Survive only when the build side is the subtree's smallest base
	// relation: each subset keeps exactly one chain.
	prune := func(n *PlanNode) bool {
		return !n.Inner.IsLeaf() || n.Inner.Relation != minLeaf(n)
	}
	var yields int64
	var lastOrd int64 = -1
	err := EnumerateBushyFunc(rels, prune, func(_ *PlanNode, ord int64) error {
		if ord <= lastOrd {
			t.Fatalf("ordinal %d after %d", ord, lastOrd)
		}
		if ord < 0 || ord >= bushyWant[10] {
			t.Fatalf("ordinal %d outside [0, T(10))", ord)
		}
		lastOrd = ord
		yields++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1<<10 - 2); yields != want {
		t.Fatalf("yielded %d plans, want one per proper root split = %d", yields, want)
	}
}

func TestEnumerateStreamYieldErrorAborts(t *testing.T) {
	sentinel := errors.New("stop")
	var yields int
	err := EnumerateBushyFunc(enumRels(5), nil, func(_ *PlanNode, _ int64) error {
		yields++
		if yields == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("yield error not returned verbatim: %v", err)
	}
	if yields != 10 {
		t.Fatalf("enumeration continued after the yield error: %d yields", yields)
	}
}

func TestEnumerateStreamValidation(t *testing.T) {
	yield := func(_ *PlanNode, _ int64) error { return nil }
	if err := EnumerateBushyFunc(nil, nil, yield); err == nil {
		t.Error("empty relation list accepted")
	}
	if err := EnumerateBushyFunc(enumRels(MaxStreamRelations+1), nil, yield); err == nil {
		t.Error("oversized relation list accepted")
	}
	if err := EnumerateBushyFunc([]*Relation{{Name: "R", Tuples: 0}}, nil, yield); err == nil {
		t.Error("non-positive cardinality accepted")
	}
	if err := EnumerateBushyFunc(enumRels(3), nil, nil); err == nil {
		t.Error("nil yield accepted")
	}
}

// FirstBushy must agree with the enumeration's candidate 0 — streaming
// searches seed their incumbent from it.
func TestFirstBushyMatchesEnumerationHead(t *testing.T) {
	for n := 1; n <= 6; n++ {
		rels := enumRels(n)
		first, err := FirstBushy(rels)
		if err != nil {
			t.Fatal(err)
		}
		if err := first.Validate(); err != nil {
			t.Fatal(err)
		}
		var head *PlanNode
		err = EnumerateBushyFunc(rels, nil, func(p *PlanNode, ord int64) error {
			if ord == 0 {
				head = p
				return errors.New("done")
			}
			return nil
		})
		if head == nil {
			t.Fatalf("n=%d: no candidate 0 (%v)", n, err)
		}
		want, _ := head.Encode()
		have, _ := first.Encode()
		if string(want) != string(have) {
			t.Fatalf("n=%d: FirstBushy differs from enumeration head:\n%s\n%s", n, have, want)
		}
	}
	if _, err := FirstBushy(nil); err == nil {
		t.Error("empty relation list accepted")
	}
	if _, err := FirstBushy([]*Relation{{Name: "R", Tuples: -1}}); err == nil {
		t.Error("invalid relation accepted")
	}
}
