//go:build race

package query

// raceDetectorEnabled gates enumeration tests whose yield counts are
// fine under plain CPU but minutes under the race detector's shadow
// instrumentation.
const raceDetectorEnabled = true
