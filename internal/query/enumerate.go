package query

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxEnumerateRelations bounds EnumerateBushy: the number of distinct
// bushy plans over n relations is n-th in the sequence 1, 2, 12, 120,
// 1680, 30240, … (T(n) = Σ C(n,k)·T(k)·T(n−k) over proper splits), so
// past eight relations a full enumeration is no longer a candidate pool
// but a memory bomb. Callers wanting larger joins sample instead.
const MaxEnumerateRelations = 8

// EnumerateBushy returns every distinct bushy hash-join plan over the
// given relations: all ways to split the relation set into an outer
// (probe-side) and inner (build-side) subtree, recursively. Build/probe
// sidedness counts — R0⋈R1 with R0 as build differs from R1 as build —
// so two relations yield two plans, three yield twelve, four yield 120.
//
// The order is deterministic: subsets are enumerated as ascending
// bitmasks over the relation list, outer-subset splits in descending
// submask order, and subtree combinations outer-major. Plans share
// PlanNode subtrees structurally (the expansion and scheduling layers
// only read plans); callers must not mutate the returned trees.
//
// Errors mirror PlanOver's validation plus the MaxEnumerateRelations
// guard.
func EnumerateBushy(rels []*Relation) ([]*PlanNode, error) {
	if len(rels) == 0 {
		return nil, errors.New("query: no relations")
	}
	if len(rels) > MaxEnumerateRelations {
		return nil, fmt.Errorf("query: %d relations exceed the %d-relation enumeration bound",
			len(rels), MaxEnumerateRelations)
	}
	for _, rel := range rels {
		if rel == nil || rel.Tuples <= 0 {
			return nil, errors.New("query: invalid relation")
		}
	}
	n := len(rels)
	full := (1 << n) - 1
	// trees[mask] holds every distinct bushy subtree over the relation
	// subset mask selects, built bottom-up by popcount.
	trees := make([][]*PlanNode, full+1)
	for i, rel := range rels {
		trees[1<<i] = []*PlanNode{{Relation: rel, Tuples: rel.Tuples}}
	}
	for mask := 1; mask <= full; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		var out []*PlanNode
		// Each subtree's root split into (outer, inner) is unique, so
		// iterating every proper submask as the outer side generates
		// every tree exactly once.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			inner := mask &^ sub
			for _, o := range trees[sub] {
				for _, in := range trees[inner] {
					t := o.Tuples
					if in.Tuples > t {
						t = in.Tuples
					}
					out = append(out, &PlanNode{Outer: o, Inner: in, Tuples: t})
				}
			}
		}
		trees[mask] = out
	}
	return trees[full], nil
}
