package query

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxEnumerateRelations bounds EnumerateBushy: the number of distinct
// bushy plans over n relations is n-th in the sequence 1, 2, 12, 120,
// 1680, 30240, … (T(n) = Σ C(n,k)·T(k)·T(n−k) over proper splits), so
// past eight relations a full materialized enumeration is no longer a
// candidate pool but a memory bomb. Callers wanting larger joins sample
// instead, or stream with EnumerateBushyFunc, whose pruned subset DP
// holds only surviving subtrees and is bounded by MaxStreamRelations.
const MaxEnumerateRelations = 8

// MaxStreamRelations bounds EnumerateBushyFunc. Streaming never
// materializes the T(n) roots — each is yielded and released — but the
// subset DP still stores every *surviving* proper subtree, so the
// practical ceiling depends on how aggressively the caller's prune hook
// cuts. Ten relations keeps the unpruned enumeration ordinals well
// inside int64 (T(10) ≈ 1.76e10) and matches the optimizer's streaming
// search target.
const MaxStreamRelations = 10

// validateEnumerate shares the relation checks between the materializing
// and streaming enumerators. max is the relation-count ceiling to
// enforce.
func validateEnumerate(rels []*Relation, max int) error {
	if len(rels) == 0 {
		return errors.New("query: no relations")
	}
	if len(rels) > max {
		return fmt.Errorf("query: %d relations exceed the %d-relation enumeration bound",
			len(rels), max)
	}
	for _, rel := range rels {
		if rel == nil || rel.Tuples <= 0 {
			return errors.New("query: invalid relation")
		}
	}
	return nil
}

// CountBushy returns T(n), the number of distinct bushy hash-join plans
// over n relations, computed from the recurrence
// T(n) = Σ_{k=1}^{n-1} C(n,k)·T(k)·T(n−k) with T(1) = 1. It returns 0
// for n outside [1, MaxStreamRelations]; T(10) = 17 643 225 600 still
// fits int64 comfortably, but the recurrence overflows quickly beyond
// the enumerable range and no caller needs it there.
func CountBushy(n int) int64 {
	if n < 1 || n > MaxStreamRelations {
		return 0
	}
	return bushyCounts(n)[n]
}

// bushyCounts returns T(0..n) (T(0) unused, left 0) via the recurrence.
func bushyCounts(n int) []int64 {
	t := make([]int64, n+1)
	if n >= 1 {
		t[1] = 1
	}
	for m := 2; m <= n; m++ {
		// C(m,k) built incrementally: C(m,0)=1, C(m,k) = C(m,k-1)·(m-k+1)/k.
		binom := int64(1)
		var sum int64
		for k := 1; k < m; k++ {
			binom = binom * int64(m-k+1) / int64(k)
			sum += binom * t[k] * t[m-k]
		}
		t[m] = sum
	}
	return t
}

// EnumerateBushy returns every distinct bushy hash-join plan over the
// given relations: all ways to split the relation set into an outer
// (probe-side) and inner (build-side) subtree, recursively. Build/probe
// sidedness counts — R0⋈R1 with R0 as build differs from R1 as build —
// so two relations yield two plans, three yield twelve, four yield 120.
//
// The order is deterministic: subsets are enumerated as ascending
// bitmasks over the relation list, outer-subset splits in descending
// submask order, and subtree combinations outer-major. Plans share
// PlanNode subtrees structurally (the expansion and scheduling layers
// only read plans); callers must not mutate the returned trees.
//
// Errors mirror PlanOver's validation plus the MaxEnumerateRelations
// guard.
func EnumerateBushy(rels []*Relation) ([]*PlanNode, error) {
	if err := validateEnumerate(rels, MaxEnumerateRelations); err != nil {
		return nil, err
	}
	n := len(rels)
	full := (1 << n) - 1
	// Per-mask result sizes are known exactly from the T(k) recurrence,
	// so every slice is allocated once at its final length.
	counts := bushyCounts(n)
	// trees[mask] holds every distinct bushy subtree over the relation
	// subset mask selects, built bottom-up by popcount.
	trees := make([][]*PlanNode, full+1)
	for i, rel := range rels {
		trees[1<<i] = []*PlanNode{{Relation: rel, Tuples: rel.Tuples}}
	}
	for mask := 1; mask <= full; mask++ {
		k := bits.OnesCount(uint(mask))
		if k < 2 {
			continue
		}
		out := make([]*PlanNode, 0, counts[k])
		// Each subtree's root split into (outer, inner) is unique, so
		// iterating every proper submask as the outer side generates
		// every tree exactly once.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			inner := mask &^ sub
			for _, o := range trees[sub] {
				for _, in := range trees[inner] {
					t := o.Tuples
					if in.Tuples > t {
						t = in.Tuples
					}
					out = append(out, &PlanNode{Outer: o, Inner: in, Tuples: t})
				}
			}
		}
		trees[mask] = out
	}
	return trees[full], nil
}

// streamNode pairs a surviving subtree with its ordinal in the unpruned
// enumeration of its subset mask, so full plans keep their original
// EnumerateBushy indices even when pruning has thinned the DP tables.
type streamNode struct {
	node *PlanNode
	ord  int64
}

// EnumerateBushyFunc streams the exact EnumerateBushy sequence through
// yield instead of materializing it: yield receives each full plan
// together with its ordinal in the unpruned enumeration (the index the
// same plan has in EnumerateBushy's result), in the same deterministic
// order. Root plans are released as soon as yield returns, so peak
// memory is the caller's frontier plus the subset DP's surviving proper
// subtrees — not the T(n) roots.
//
// prune, when non-nil, is consulted once per freshly built proper
// subtree (full plans are never offered to it); returning true discards
// the subtree, and with it every plan that would have contained that
// exact subtree. Pruning is the caller's exactness contract: a hook
// that only discards subtrees provably unable to appear in any
// acceptable plan keeps the yielded stream's ordinals and order
// identical to a subsequence of the materialized enumeration. A nil
// prune yields exactly the EnumerateBushy sequence.
//
// A non-nil error from yield aborts the enumeration immediately and is
// returned verbatim. Validation errors mirror EnumerateBushy's with the
// larger MaxStreamRelations ceiling.
func EnumerateBushyFunc(rels []*Relation, prune func(*PlanNode) bool, yield func(*PlanNode, int64) error) error {
	if yield == nil {
		return errors.New("query: nil yield func")
	}
	if err := validateEnumerate(rels, MaxStreamRelations); err != nil {
		return err
	}
	n := len(rels)
	full := (1 << n) - 1
	counts := bushyCounts(n)
	trees := make([][]streamNode, full+1)
	for i, rel := range rels {
		trees[1<<i] = []streamNode{{node: &PlanNode{Relation: rel, Tuples: rel.Tuples}}}
	}
	if n == 1 {
		return yield(trees[1][0].node, 0)
	}
	for mask := 1; mask <= full; mask++ {
		k := bits.OnesCount(uint(mask))
		if k < 2 {
			continue
		}
		isFull := mask == full
		var out []streamNode
		if !isFull && prune == nil {
			out = make([]streamNode, 0, counts[k])
		}
		// base tracks how many unpruned trees precede the current
		// (sub, inner) block in the materialized order, so each kept
		// subtree's ordinal is exact regardless of pruning.
		var base int64
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			inner := mask &^ sub
			cntInner := counts[bits.OnesCount(uint(inner))]
			for _, o := range trees[sub] {
				rowBase := base + o.ord*cntInner
				for _, in := range trees[inner] {
					t := o.node.Tuples
					if in.node.Tuples > t {
						t = in.node.Tuples
					}
					node := &PlanNode{Outer: o.node, Inner: in.node, Tuples: t}
					ord := rowBase + in.ord
					if isFull {
						if err := yield(node, ord); err != nil {
							return err
						}
						continue
					}
					if prune != nil && prune(node) {
						continue
					}
					out = append(out, streamNode{node: node, ord: ord})
				}
			}
			base += counts[bits.OnesCount(uint(sub))] * cntInner
		}
		if !isFull {
			trees[mask] = out
		}
	}
	return nil
}

// FirstBushy builds the first plan EnumerateBushy and EnumerateBushyFunc
// would emit, directly in O(n): the left-deep chain whose probe spine
// descends through the relations in reverse list order, with each
// remaining relation joined in as the build side (the enumeration's
// first outer submask always excludes the lowest set bit). It gives
// streaming searches a well-defined candidate 0 — an incumbent seed —
// without enumerating anything. FirstBushy accepts any relation count
// ≥ 1; only full enumeration is ceiling-bounded.
func FirstBushy(rels []*Relation) (*PlanNode, error) {
	if len(rels) == 0 {
		return nil, errors.New("query: no relations")
	}
	for _, rel := range rels {
		if rel == nil || rel.Tuples <= 0 {
			return nil, errors.New("query: invalid relation")
		}
	}
	n := len(rels)
	node := &PlanNode{Relation: rels[n-1], Tuples: rels[n-1].Tuples}
	for i := n - 2; i >= 0; i-- {
		in := &PlanNode{Relation: rels[i], Tuples: rels[i].Tuples}
		t := node.Tuples
		if in.Tuples > t {
			t = in.Tuples
		}
		node = &PlanNode{Outer: node, Inner: in, Tuples: t}
	}
	return node, nil
}
