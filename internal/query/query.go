// Package query models join queries and their bushy execution plans,
// and generates the random workloads of the paper's experimental
// evaluation (Section 6.1).
//
// The experiments use tree queries of 10–50 joins over base relations
// of 10³–10⁵ tuples, with simple key joins whose result size always
// equals the size of the larger operand. For each query size the paper
// draws twenty random query trees and, for each, a random bushy
// execution plan; Random reproduces that by sampling a uniformly shaped
// random bushy binary join tree with randomized build/probe sides.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
)

// Relation is a base relation of the catalog.
type Relation struct {
	Name   string `json:"name"`
	Tuples int    `json:"tuples"`
}

// PlanNode is a node of a bushy hash-join execution plan. A node is
// either a leaf over a base relation or a join whose Inner (build side)
// and Outer (probe side) children produce its operands.
type PlanNode struct {
	// Relation is non-nil exactly for leaves.
	Relation *Relation `json:"relation,omitempty"`
	// Outer is the probe-side child; Inner is the build-side child.
	// Both are nil exactly for leaves.
	Outer *PlanNode `json:"outer,omitempty"`
	Inner *PlanNode `json:"inner,omitempty"`
	// Tuples is the node's output cardinality: the relation size for a
	// leaf, and max(|Outer|, |Inner|) for a simple key join.
	Tuples int `json:"tuples"`
}

// IsLeaf reports whether the node is a base-relation leaf.
func (n *PlanNode) IsLeaf() bool { return n.Relation != nil }

// Joins returns the number of join (internal) nodes in the subtree.
func (n *PlanNode) Joins() int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return 1 + n.Outer.Joins() + n.Inner.Joins()
}

// Leaves returns the base relations of the subtree in left-to-right
// (outer-first) order.
func (n *PlanNode) Leaves() []*Relation {
	if n == nil {
		return nil
	}
	if n.IsLeaf() {
		return []*Relation{n.Relation}
	}
	return append(n.Outer.Leaves(), n.Inner.Leaves()...)
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (n *PlanNode) Depth() int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	o, i := n.Outer.Depth(), n.Inner.Depth()
	if i > o {
		o = i
	}
	return 1 + o
}

// Validate checks structural well-formedness: every node is either a
// leaf with a positive-cardinality relation or a join with two children,
// and join cardinalities obey the simple-key-join rule
// |J| = max(|Outer|, |Inner|).
func (n *PlanNode) Validate() error {
	if n == nil {
		return errors.New("query: nil plan node")
	}
	if n.IsLeaf() {
		if n.Outer != nil || n.Inner != nil {
			return fmt.Errorf("query: leaf %q has children", n.Relation.Name)
		}
		if n.Relation.Tuples <= 0 {
			return fmt.Errorf("query: relation %q has non-positive cardinality %d",
				n.Relation.Name, n.Relation.Tuples)
		}
		if n.Tuples != n.Relation.Tuples {
			return fmt.Errorf("query: leaf %q cardinality %d != relation cardinality %d",
				n.Relation.Name, n.Tuples, n.Relation.Tuples)
		}
		return nil
	}
	if n.Outer == nil || n.Inner == nil {
		return errors.New("query: join node missing a child")
	}
	if err := n.Outer.Validate(); err != nil {
		return err
	}
	if err := n.Inner.Validate(); err != nil {
		return err
	}
	want := n.Outer.Tuples
	if n.Inner.Tuples > want {
		want = n.Inner.Tuples
	}
	if n.Tuples != want {
		return fmt.Errorf("query: join cardinality %d != max(%d, %d)",
			n.Tuples, n.Outer.Tuples, n.Inner.Tuples)
	}
	return nil
}

// GenConfig configures random plan generation.
type GenConfig struct {
	// Joins is the number of join nodes; the plan has Joins+1 leaves.
	Joins int
	// MinTuples and MaxTuples bound the base-relation cardinalities
	// (inclusive). The paper uses 10³–10⁵.
	MinTuples, MaxTuples int
}

// DefaultGenConfig returns the paper's workload settings for the given
// number of joins.
func DefaultGenConfig(joins int) GenConfig {
	return GenConfig{Joins: joins, MinTuples: 1_000, MaxTuples: 100_000}
}

// Validate reports the first nonsensical generation setting.
func (c GenConfig) Validate() error {
	switch {
	case c.Joins < 0:
		return fmt.Errorf("query: negative join count %d", c.Joins)
	case c.MinTuples <= 0:
		return fmt.Errorf("query: MinTuples = %d, must be positive", c.MinTuples)
	case c.MaxTuples < c.MinTuples:
		return fmt.Errorf("query: MaxTuples = %d < MinTuples = %d", c.MaxTuples, c.MinTuples)
	}
	return nil
}

// Random generates a random bushy plan: a uniformly split binary tree
// shape over Joins+1 leaves, uniform relation sizes in
// [MinTuples, MaxTuples], and join cardinalities per the simple key-join
// rule. The generator is fully deterministic given r's state.
func Random(r *rand.Rand, cfg GenConfig) (*PlanNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	next := 0
	n := build(r, cfg, cfg.Joins+1, &next)
	return n, nil
}

// MustRandom is Random that panics on a bad configuration.
func MustRandom(r *rand.Rand, cfg GenConfig) *PlanNode {
	n, err := Random(r, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

func build(r *rand.Rand, cfg GenConfig, leaves int, next *int) *PlanNode {
	if leaves == 1 {
		size := cfg.MinTuples + r.Intn(cfg.MaxTuples-cfg.MinTuples+1)
		rel := &Relation{Name: fmt.Sprintf("R%d", *next), Tuples: size}
		*next++
		return &PlanNode{Relation: rel, Tuples: size}
	}
	// Uniform split of the leaf budget; each side gets at least one.
	left := 1 + r.Intn(leaves-1)
	a := build(r, cfg, left, next)
	b := build(r, cfg, leaves-left, next)
	// Randomize which operand is the build (inner) side.
	if r.Intn(2) == 0 {
		a, b = b, a
	}
	t := a.Tuples
	if b.Tuples > t {
		t = b.Tuples
	}
	return &PlanNode{Outer: a, Inner: b, Tuples: t}
}

// Shape selects the execution-plan tree shape to generate. The paper's
// evaluation uses random bushy plans; the deep shapes reproduce the
// alternatives its related-work section discusses (right-deep trees of
// Schneider, left-deep trees of classical optimizers).
type Shape int

const (
	// RandomBushy draws a uniformly split random binary tree.
	RandomBushy Shape = iota
	// LeftDeep chains joins along the outer (probe) side: every inner
	// operand is a base relation, so all build pipelines are independent
	// and the task tree is flat (maximal independent parallelism).
	LeftDeep
	// RightDeep chains joins along the inner (build) side: every probe
	// feeds the next join's build, so tasks serialize into a chain of
	// phases (maximal pipelining, no independent parallelism).
	RightDeep
	// Balanced splits the leaf budget evenly at every join.
	Balanced
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case LeftDeep:
		return "left-deep"
	case RightDeep:
		return "right-deep"
	case Balanced:
		return "balanced"
	default:
		return "random-bushy"
	}
}

// RandomShaped generates a plan of the given shape with random relation
// sizes in the configured range.
func RandomShaped(r *rand.Rand, cfg GenConfig, shape Shape) (*PlanNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rels := make([]*Relation, cfg.Joins+1)
	for i := range rels {
		size := cfg.MinTuples + r.Intn(cfg.MaxTuples-cfg.MinTuples+1)
		rels[i] = &Relation{Name: fmt.Sprintf("R%d", i), Tuples: size}
	}
	return PlanOver(r, rels, shape)
}

// PlanOver builds a plan of the given shape over the provided relations
// (in order for the deep shapes; randomly split for the bushy ones).
// Use it to compare different plan shapes or join orders over one
// database, as internal/optimizer does.
func PlanOver(r *rand.Rand, rels []*Relation, shape Shape) (*PlanNode, error) {
	if len(rels) == 0 {
		return nil, errors.New("query: no relations")
	}
	for _, rel := range rels {
		if rel == nil || rel.Tuples <= 0 {
			return nil, errors.New("query: invalid relation")
		}
	}
	leafNode := func(rel *Relation) *PlanNode {
		return &PlanNode{Relation: rel, Tuples: rel.Tuples}
	}
	joinNode := func(outer, inner *PlanNode) *PlanNode {
		t := outer.Tuples
		if inner.Tuples > t {
			t = inner.Tuples
		}
		return &PlanNode{Outer: outer, Inner: inner, Tuples: t}
	}
	switch shape {
	case LeftDeep:
		n := leafNode(rels[0])
		for _, rel := range rels[1:] {
			n = joinNode(n, leafNode(rel))
		}
		return n, nil
	case RightDeep:
		n := leafNode(rels[len(rels)-1])
		for i := len(rels) - 2; i >= 0; i-- {
			n = joinNode(leafNode(rels[i]), n)
		}
		return n, nil
	case Balanced:
		var build func(rs []*Relation) *PlanNode
		build = func(rs []*Relation) *PlanNode {
			if len(rs) == 1 {
				return leafNode(rs[0])
			}
			mid := len(rs) / 2
			return joinNode(build(rs[:mid]), build(rs[mid:]))
		}
		return build(rels), nil
	default: // RandomBushy over the given relations, shuffled
		shuffled := append([]*Relation(nil), rels...)
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		var build func(rs []*Relation) *PlanNode
		build = func(rs []*Relation) *PlanNode {
			if len(rs) == 1 {
				return leafNode(rs[0])
			}
			split := 1 + r.Intn(len(rs)-1)
			a, b := build(rs[:split]), build(rs[split:])
			if r.Intn(2) == 0 {
				a, b = b, a
			}
			return joinNode(a, b)
		}
		return build(shuffled), nil
	}
}

// Workload generates count independent random plans of the same size,
// the unit of averaging in the paper's experiments (20 plans per query
// size).
func Workload(r *rand.Rand, cfg GenConfig, count int) ([]*PlanNode, error) {
	if count <= 0 {
		return nil, fmt.Errorf("query: non-positive workload count %d", count)
	}
	plans := make([]*PlanNode, count)
	for i := range plans {
		p, err := Random(r, cfg)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	return plans, nil
}

// Encode renders the plan as indented JSON.
func (n *PlanNode) Encode() ([]byte, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(n, "", "  ")
}

// Decode parses a JSON plan and validates it.
func Decode(data []byte) (*PlanNode, error) {
	var n PlanNode
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("query: decoding plan: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}
