// Plan fingerprinting for the serve-layer schedule cache. Two task
// trees with the same fingerprint under the same TreeScheduler
// configuration produce byte-identical schedules, because the
// fingerprint covers every input TreeSchedule reads: the cost-model
// parameters, the system size and overlap, the granularity parameter,
// the phase policy, the parallelism cap MaxDegree, the rooting
// constraints, and the full tree structure down to each operator's
// spec, name, and wiring. Fields
// that never influence a scheduling decision (Rec, Cache, Workers) are
// deliberately excluded — attaching a recorder or a cost cache, or
// changing the pool width, must not change a plan's identity: the
// parallel identity tests pin that every Workers value produces the
// same bytes.
package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"mdrs/internal/plan"
)

// Fingerprint is a collision-resistant digest of (scheduler
// configuration, task tree). Comparable, so it keys maps directly.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fpWriter adds typed, length-prefixed appends on top of a hash so
// adjacent variable-length fields cannot alias each other's encodings.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) i(v int)       { w.u64(uint64(int64(v))) }
func (w *fpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *fpWriter) b(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *fpWriter) str(s string) {
	w.i(len(s))
	w.h.Write([]byte(s))
}

// Fingerprint digests the scheduler configuration together with one
// task tree. It is pure: no scheduling happens, and the tree is only
// read. Equal fingerprints imply byte-identical Schedule output (and
// therefore byte-identical EncodeJSON renderings, which also read
// operator names).
func (ts TreeScheduler) Fingerprint(tt *plan.TaskTree) Fingerprint {
	w := &fpWriter{h: sha256.New()}

	// Scheduler configuration.
	pr := ts.Model.Params
	w.f64(pr.MIPS)
	w.f64(pr.DiskPageTime)
	w.f64(pr.Alpha)
	w.f64(pr.Beta)
	w.i(pr.TupleBytes)
	w.i(pr.PageTuples)
	w.f64(pr.ReadPageInstr)
	w.f64(pr.WritePageInstr)
	w.f64(pr.ExtractInstr)
	w.f64(pr.HashInstr)
	w.f64(pr.ProbeInstr)
	w.f64(ts.Overlap.Epsilon)
	w.i(ts.P)
	w.f64(ts.F)
	w.i(int(ts.Policy))
	// MaxDegree changes the schedule (it clamps every floating
	// operator's degree), so unlike Workers it must participate: a
	// schedule cached under one cap can never answer a request under
	// another.
	w.i(ts.MaxDegree)

	// Rooting constraints, in sorted operator-ID order so map iteration
	// order cannot leak into the digest.
	ids := make([]int, 0, len(ts.Homes))
	for id := range ts.Homes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.i(len(ids))
	for _, id := range ids {
		sites := ts.Homes[id]
		w.i(id)
		w.i(len(sites))
		for _, s := range sites {
			w.i(s)
		}
	}

	// Tree structure. Tasks and operators are identified by their dense
	// IDs, so pointer links encode as IDs (-1 for nil).
	w.i(tt.Height)
	w.i(len(tt.Tasks))
	for _, tk := range tt.Tasks {
		w.i(tk.ID)
		w.i(tk.Level)
		w.i(taskID(tk.Parent))
		w.i(len(tk.Ops))
		for _, op := range tk.Ops {
			w.i(op.ID)
			w.i(int(op.Kind))
			w.i(int(op.Spec.Kind))
			w.i(op.Spec.InTuples)
			w.i(op.Spec.ResultTuples)
			w.b(op.Spec.NetIn)
			w.b(op.Spec.NetOut)
			w.str(op.Name)
			w.i(op.JoinID)
			w.i(opID(op.Consumer))
			w.i(int(op.ConsumerEdge))
			w.i(opID(op.BuildOp))
		}
	}

	var f Fingerprint
	w.h.Sum(f[:0])
	return f
}

func taskID(tk *plan.Task) int {
	if tk == nil {
		return -1
	}
	return tk.ID
}

func opID(op *plan.Operator) int {
	if op == nil {
		return -1
	}
	return op.ID
}
