// Package sched implements the paper's primary contribution: the
// OperatorSchedule multi-dimensional list-scheduling heuristic for
// independent concurrent operators (Figure 3) and the TreeSchedule
// algorithm for bushy query plans executed in synchronized phases
// (Figure 4).
//
// Scheduling a set of concurrent operator clones onto P d-dimensional
// sites is an instance of the d-dimensional bin-design problem: pack the
// clone work vectors into P bins so that (A) no two clones of one
// operator share a bin, (B) rooted clones stay at their fixed sites, and
// (C) the maximum resource usage over all bins — and hence the response
// time of Equation 3 — is minimized. OperatorSchedule is the paper's
// list-scheduling rule: consider floating clone vectors in non-increasing
// order of their maximum component and place each on the least-filled
// allowable site. Its makespan is provably within (2d+1) of optimal for
// the given degrees of parallelism and within (2d(fd+1)+1) of the
// optimal coarse-grain (CG_f) schedule (Theorem 5.1).
package sched

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"mdrs/internal/obs"
	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// Op is one operator instance presented to OperatorSchedule: its clone
// work vectors (coordinator first, by the EA1 convention) and, for
// rooted operators, the fixed home sites of its clones.
type Op struct {
	// ID is a caller-assigned identifier, unique within one call.
	ID int
	// Clones holds one work vector per clone; len(Clones) is the degree
	// of partitioned parallelism N_i.
	Clones []vector.Vector
	// Home, when non-nil, fixes clone k at site Home[k] (a rooted
	// operator, constraint (B)). Home must have exactly len(Clones)
	// pairwise-distinct entries in [0, P).
	Home []int
}

// Rooted reports whether the operator's placement is fixed by data
// placement constraints.
func (o *Op) Rooted() bool { return o.Home != nil }

// Degree returns N_i, the operator's degree of partitioned parallelism.
func (o *Op) Degree() int { return len(o.Clones) }

// validate checks an operator against the system width p and
// dimensionality d. Each clone is walked exactly once (vector validity
// and dimension together), and home distinctness uses the scratch's
// generation-marked site slice instead of a per-operator map.
func (o *Op) validate(p, d int, sc *scratch) error {
	if len(o.Clones) == 0 {
		return fmt.Errorf("sched: op %d has no clones", o.ID)
	}
	if len(o.Clones) > p {
		return fmt.Errorf("sched: op %d has %d clones but only %d sites exist (Definition 5.1)",
			o.ID, len(o.Clones), p)
	}
	for k, w := range o.Clones {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("sched: op %d clone %d: %w", o.ID, k, err)
		}
		if w.Dim() != d {
			return fmt.Errorf("sched: op %d clone dimension %d != system dimension %d",
				o.ID, w.Dim(), d)
		}
	}
	if o.Home != nil {
		if len(o.Home) != len(o.Clones) {
			return fmt.Errorf("sched: op %d has %d home sites for %d clones",
				o.ID, len(o.Home), len(o.Clones))
		}
		gen := sc.nextGen(p)
		for _, s := range o.Home {
			if s < 0 || s >= p {
				return fmt.Errorf("sched: op %d home site %d outside [0, %d)", o.ID, s, p)
			}
			if sc.homeSeen[s] == gen {
				return fmt.Errorf("sched: op %d has two clones homed at site %d", o.ID, s)
			}
			sc.homeSeen[s] = gen
		}
	}
	return nil
}

// Result is the outcome of one OperatorSchedule run.
type Result struct {
	// Sites maps each operator ID to its per-clone site assignment:
	// Sites[id][k] is the site of clone k.
	Sites map[int][]int
	// Response is the parallel execution time of the schedule per
	// Equation 3: max_j T^site(s_j).
	Response float64
	// System is the loaded site state after placement, for inspection.
	System *resource.System
}

// OperatorSchedule packs the operators' clones onto p d-dimensional
// sites using the paper's list-scheduling rule (Figure 3). The caller
// determines each floating operator's degree of parallelism beforehand
// (e.g. min{N_max(op, f), P} via the cost model); rooted operators carry
// their fixed homes.
func OperatorSchedule(p, d int, ov resource.Overlap, ops []*Op) (*Result, error) {
	return operatorSchedule(context.Background(), p, d, ov, ops, true, nil, 0, nil, 1)
}

// OperatorScheduleCtx is OperatorSchedule with a cancellation context:
// the placement loop checks ctx periodically and returns ctx.Err() as
// soon as the context is cancelled or its deadline passes, so a caller
// serving many concurrent requests never burns scheduler time on a
// query nobody is waiting for. The context never influences the
// packing: a run that completes returns exactly the OperatorSchedule
// result.
func OperatorScheduleCtx(ctx context.Context, p, d int, ov resource.Overlap, ops []*Op) (*Result, error) {
	return operatorSchedule(ctx, p, d, ov, ops, true, nil, 0, nil, 1)
}

// OperatorScheduleObserved is OperatorSchedule with a recorder attached:
// every placement decision is emitted as a decision-trace event tagged
// with the given phase index, alongside aggregate counters. A nil
// recorder makes it identical to OperatorSchedule; the recorder never
// influences a placement.
func OperatorScheduleObserved(p, d int, ov resource.Overlap, ops []*Op,
	rec obs.Recorder, phase int) (*Result, error) {
	return operatorSchedule(context.Background(), p, d, ov, ops, true, rec, phase, nil, 1)
}

// OperatorScheduleUnordered applies the same packing rule but feeds the
// clones in raw arrival order instead of non-increasing l(w̄). It exists
// for the list-order ablation; the Theorem 5.1 bound is proved for the
// sorted order only.
func OperatorScheduleUnordered(p, d int, ov resource.Overlap, ops []*Op) (*Result, error) {
	return operatorSchedule(context.Background(), p, d, ov, ops, false, nil, 0, nil, 1)
}

// ctxCheckStride bounds how many clone placements run between two
// context checks in the step-3 loop: frequent enough that cancellation
// lands within a few microseconds of work, rare enough that the check
// is invisible next to a placement's prefix walk.
const ctxCheckStride = 64

func operatorSchedule(ctx context.Context, p, d int, ov resource.Overlap, ops []*Op, sorted bool,
	rec obs.Recorder, phase int, sc *scratch, workers int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("sched: non-positive site count %d", p)
	}
	if d <= 0 {
		return nil, fmt.Errorf("sched: non-positive dimensionality %d", d)
	}
	if sc == nil {
		sc = new(scratch)
	}
	sc.resetIDs(len(ops))
	for _, op := range ops {
		if sc.ids[op.ID] {
			return nil, fmt.Errorf("sched: duplicate operator ID %d", op.ID)
		}
		sc.ids[op.ID] = true
		if err := op.validate(p, d, sc); err != nil {
			return nil, err
		}
	}

	sys := resource.NewSystem(p, d, ov)
	res := &Result{Sites: make(map[int][]int, len(ops)), System: sys}

	// Step 1 (Figure 3): place the work vectors of all rooted operators
	// at their respective sites.
	for _, op := range ops {
		if !op.Rooted() {
			continue
		}
		sites := make([]int, len(op.Clones))
		for k, w := range op.Clones {
			s := sys.Site(op.Home[k])
			if rec != nil {
				rec.Event(obs.Event{
					Type: obs.EvPlace, Phase: phase, Op: op.ID, Clone: k,
					Site: op.Home[k], Rooted: true,
					L: s.LoadLength(), Sum: s.LoadSum(),
				})
			}
			s.Assign(w)
			sites[k] = op.Home[k]
		}
		res.Sites[op.ID] = sites
	}

	// Step 2: the list L of all floating clone vectors in non-increasing
	// order of l(w̄). Ties break on operator ID then clone index so the
	// schedule is deterministic. The list and the per-operator ban rows
	// (sites already holding one of the operator's clones) come from the
	// scratch: one flattened []bool matrix and one []item slice instead
	// of a map of maps and an append-grown list. Rooted operators need
	// no ban row — they contribute no floating clones.
	floating, total := 0, 0
	for _, op := range ops {
		if !op.Rooted() {
			floating++
			total += len(op.Clones)
		}
	}
	bans := sc.banRows(floating, p)
	list := sc.cloneList(total)
	row := 0
	for _, op := range ops {
		if op.Rooted() {
			continue
		}
		res.Sites[op.ID] = make([]int, len(op.Clones))
		opBans := bans[row*p : (row+1)*p]
		row++
		for k, w := range op.Clones {
			list = append(list, item{op: op, clone: k, len: w.Length(), bans: opBans})
		}
	}
	sc.list = list
	if sorted {
		// The (len desc, op ID, clone) key is a strict total order —
		// (op, clone) pairs are unique — so any correct sort produces
		// the same permutation; SortFunc just does it without the
		// reflection overhead of sort.Slice.
		slices.SortFunc(list, func(a, b item) int {
			switch {
			case a.len != b.len:
				if a.len > b.len {
					return -1
				}
				return 1
			case a.op.ID != b.op.ID:
				return cmp.Compare(a.op.ID, b.op.ID)
			default:
				return cmp.Compare(a.clone, b.clone)
			}
		})
	}

	// Step 3: place each vector on the least-filled site (by l(work(s)))
	// holding no other clone of the same operator.
	//
	// The least-filled site by l(work(s)), as in Figure 3. Among sites
	// tied on l (common early on, when several resources are empty),
	// prefer the smaller total load: any argmin of l satisfies the
	// Theorem 5.1 proof, and the sum tie-break steers complementary
	// resource demands together (the paper's Section 5.2.2 example).
	// Remaining ties break on the site index. The siteIndex keeps the
	// sites ordered by exactly that (l, sum, id) key, so one placement is
	// a short prefix walk plus an ordered re-insertion instead of a full
	// O(P·d) rescan per clone.
	//
	// For large systems the argmin itself is the cost, so with workers > 1
	// and P past the shardMinSites gate the loop hands each pick to the
	// sharded picker instead: identical (l, sum, id) argmin, computed by
	// shard-local scans plus a keyLess reduction (see parallel.go). Both
	// paths are exact, so which one runs is invisible in the output.
	var (
		ix *siteIndex
		sp *shardedPicker
	)
	if w := shardWorkers(workers, p); w > 1 && p >= shardMinSites && len(list) > 0 {
		sp = newShardedPicker(sys, w, sc)
		defer sp.close()
		if rec != nil {
			rec.Count("sched.par.picks_sharded", int64(len(list)))
		}
	} else {
		ix = sc.ix.reset(sys)
		if rec != nil && len(list) > 0 {
			rec.Count("sched.par.picks_serial", int64(len(list)))
		}
	}
	for i, it := range list {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		var best, skipped int
		switch {
		case sp != nil && rec == nil:
			best = sp.pick(it.bans)
		case sp != nil:
			best = sp.pick(it.bans)
			skipped = sp.countSkips(it.bans, best)
		case rec == nil:
			best = ix.pick(it.bans)
		default:
			best, skipped = ix.pickSkips(it.bans)
		}
		if rec != nil && skipped > 0 {
			rec.Count("sched.ban_hits", int64(skipped))
			rec.Event(obs.Event{
				Type: obs.EvBanHit, Phase: phase, Op: it.op.ID,
				Clone: it.clone, Banned: skipped,
			})
		}
		if best < 0 {
			// Unreachable given validate(): degree <= P and distinct homes.
			return nil, fmt.Errorf("sched: no allowable site for op %d clone %d", it.op.ID, it.clone)
		}
		if rec != nil {
			s := sys.Site(best)
			rec.Event(obs.Event{
				Type: obs.EvPlace, Phase: phase, Op: it.op.ID, Clone: it.clone,
				Site: best, L: s.LoadLength(), Sum: s.LoadSum(),
			})
		}
		sys.Site(best).Assign(it.op.Clones[it.clone])
		if sp != nil {
			sp.update(sys, best)
		} else {
			ix.update(sys, best)
		}
		it.bans[best] = true
		res.Sites[it.op.ID][it.clone] = best
	}

	res.Response = sys.MaxTSite()
	if rec != nil {
		total := 0
		for _, op := range ops {
			total += len(op.Clones)
		}
		rec.Count("sched.ops", int64(len(ops)))
		rec.Count("sched.clones_floating", int64(len(list)))
		rec.Count("sched.clones_rooted", int64(total-len(list)))
		rec.Observe("sched.phase_response", res.Response)
	}
	return res, nil
}

// LowerBound returns LB(N) = max{ l(S(N))/P, h(N) } (Section 7): the
// larger of the perfectly balanced congestion bound and the slowest
// operator's isolated parallel execution time. Every schedule of the
// given parallelization, on any assignment, takes at least this long,
// and the list-scheduling rule is guaranteed within (2d+1)·LB.
// Malformed inputs that OperatorSchedule would reject — no operators, a
// non-positive site count, operators with no clones, or clone vectors
// whose dimensionality disagrees with the rest of the input — contribute
// a bound of 0 instead of panicking; callers that validate first never
// see the difference. The reference dimensionality is the first clone
// vector with a positive dimension; every mismatched vector is skipped
// in both the congestion and the h(N) term.
func LowerBound(p int, ov resource.Overlap, ops []*Op) float64 {
	if p <= 0 {
		return 0
	}
	d := 0
	for _, op := range ops {
		for _, w := range op.Clones {
			if w.Dim() > 0 {
				d = w.Dim()
				break
			}
		}
		if d > 0 {
			break
		}
	}
	if d == 0 {
		return 0
	}
	total := vector.New(d)
	h := 0.0
	for _, op := range ops {
		tpar := 0.0
		for _, w := range op.Clones {
			if w.Dim() != d {
				continue
			}
			total.AddInPlace(w)
			if t := ov.TSeq(w); t > tpar {
				tpar = t
			}
		}
		if tpar > h {
			h = tpar
		}
	}
	lb := total.Length() / float64(p)
	if h > lb {
		lb = h
	}
	return lb
}

// PerformanceRatioBound returns the Theorem 5.1(a) guarantee, 2d+1: the
// worst-case ratio of OperatorSchedule's makespan to the optimal
// schedule with the same degrees of parallelism.
func PerformanceRatioBound(d int) float64 { return float64(2*d + 1) }

// CoarseGrainRatioBound returns the Theorem 5.1(b) guarantee,
// 2d(fd+1)+1: the worst-case ratio against the optimal CG_f schedule.
func CoarseGrainRatioBound(d int, f float64) float64 {
	return 2*float64(d)*(f*float64(d)+1) + 1
}
