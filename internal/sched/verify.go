package sched

import (
	"fmt"
	"math"

	"mdrs/internal/plan"
	"mdrs/internal/resource"
)

// Verify checks every structural invariant a well-formed schedule must
// satisfy and returns the first violation:
//
//  1. every placement has a positive degree with matching Sites/Clones
//     lengths and valid site indices;
//  2. no two clones of one operator share a site (Definition 5.1);
//  3. a probe occupies exactly its build's home, clone by clone
//     (Section 5.5), and runs in a strictly later phase;
//  4. every phase's recorded response equals the Equation 3 evaluation
//     of its placements, and the schedule's response is the phase sum.
//
// It is exported so downstream tooling (and this repository's tests)
// can assert schedule integrity without re-deriving the model.
func Verify(s *Schedule, ov resource.Overlap) error {
	if s == nil {
		return fmt.Errorf("sched: nil schedule")
	}
	if s.P <= 0 {
		return fmt.Errorf("sched: non-positive site count %d", s.P)
	}
	// Keyed by operator pointer: IDs are only unique per query, and
	// batch schedules interleave several queries.
	phaseOf := map[*plan.Operator]int{}
	sites := map[*plan.Operator][]int{}
	sum := 0.0
	for pi, ph := range s.Phases {
		sys := resource.NewSystem(s.P, resource.Dims, ov)
		for _, pl := range ph.Placements {
			if pl.Op == nil {
				return fmt.Errorf("sched: phase %d has a placement without an operator", pi)
			}
			if pl.Degree <= 0 || len(pl.Sites) != pl.Degree || len(pl.Clones) != pl.Degree {
				return fmt.Errorf("sched: %q degree %d with %d sites / %d clones",
					pl.Op.Name, pl.Degree, len(pl.Sites), len(pl.Clones))
			}
			if _, dup := phaseOf[pl.Op]; dup {
				return fmt.Errorf("sched: operator %q placed twice", pl.Op.Name)
			}
			phaseOf[pl.Op] = pi
			sites[pl.Op] = pl.Sites
			seen := make(map[int]bool, pl.Degree)
			for k, site := range pl.Sites {
				if site < 0 || site >= s.P {
					return fmt.Errorf("sched: %q clone %d at site %d outside [0, %d)",
						pl.Op.Name, k, site, s.P)
				}
				if seen[site] {
					return fmt.Errorf("sched: %q has two clones at site %d (Definition 5.1)",
						pl.Op.Name, site)
				}
				seen[site] = true
				if err := pl.Clones[k].Validate(); err != nil {
					return fmt.Errorf("sched: %q clone %d: %w", pl.Op.Name, k, err)
				}
				sys.Site(site).Assign(pl.Clones[k])
			}
		}
		if got := sys.MaxTSite(); math.Abs(got-ph.Response) > 1e-6*(1+got) {
			return fmt.Errorf("sched: phase %d response %g, Equation 3 gives %g",
				pi, ph.Response, got)
		}
		sum += ph.Response
	}
	if math.Abs(sum-s.Response) > 1e-6*(1+sum) {
		return fmt.Errorf("sched: response %g != phase sum %g", s.Response, sum)
	}

	// Build → probe constraints.
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			build := pl.Op.BuildOp
			if build == nil {
				continue
			}
			bPhase, ok := phaseOf[build]
			if !ok {
				return fmt.Errorf("sched: probe %q scheduled but its build is not", pl.Op.Name)
			}
			if bPhase >= phaseOf[pl.Op] {
				return fmt.Errorf("sched: probe %q in phase %d, build in phase %d",
					pl.Op.Name, phaseOf[pl.Op], bPhase)
			}
			home := sites[build]
			if len(home) != len(pl.Sites) {
				return fmt.Errorf("sched: probe %q degree %d != build degree %d",
					pl.Op.Name, len(pl.Sites), len(home))
			}
			for k := range home {
				if home[k] != pl.Sites[k] {
					return fmt.Errorf("sched: probe %q clone %d at site %d, hash table at %d",
						pl.Op.Name, k, pl.Sites[k], home[k])
				}
			}
		}
	}
	return nil
}
