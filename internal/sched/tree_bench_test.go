package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

// BenchmarkTreeSchedule measures full TreeSchedule runs over a pool of
// seeded plans, cold (every call re-derives all costs) versus warm (a
// shared cost-model memo): the cached variant's allocs/op drop is the
// cost-memoization win, on top of the scratch reuse both variants get.
func BenchmarkTreeSchedule(b *testing.B) {
	for _, joins := range []int{6, 12} {
		r := rand.New(rand.NewSource(int64(joins)))
		trees := make([]*plan.TaskTree, 8)
		for i := range trees {
			p := query.MustRandom(r, query.DefaultGenConfig(joins))
			trees[i] = plan.MustNewTaskTree(plan.MustExpand(p))
		}
		ts := TreeScheduler{
			Model:   costmodel.Default(),
			Overlap: resource.MustOverlap(0.5),
			P:       32,
			F:       0.7,
		}
		run := func(b *testing.B, ts TreeScheduler) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ts.Schedule(trees[i%len(trees)]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(fmt.Sprintf("joins=%d/cold", joins), func(b *testing.B) {
			run(b, ts)
		})
		b.Run(fmt.Sprintf("joins=%d/warm", joins), func(b *testing.B) {
			warm := ts
			warm.Cache = costmodel.NewCache(ts.Model)
			run(b, warm)
		})
	}
}
