package sched

import (
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

func fpScheduler() TreeScheduler {
	return TreeScheduler{
		Model:   costmodel.Model{Params: costmodel.DefaultParams()},
		Overlap: resource.MustOverlap(0.5),
		P:       16,
		F:       0.3,
	}
}

func fpTree(seed int64, joins int) *plan.TaskTree {
	r := rand.New(rand.NewSource(seed))
	p := query.MustRandom(r, query.DefaultGenConfig(joins))
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

// Structurally identical plans fingerprint equal, even across distinct
// tree instances; any differing input — tree shape, spec, P, F, ε,
// policy, homes, model parameters — must change the digest.
func TestFingerprintDistinguishesInputs(t *testing.T) {
	ts := fpScheduler()
	base := ts.Fingerprint(fpTree(7, 6))

	if got := ts.Fingerprint(fpTree(7, 6)); got != base {
		t.Fatal("identical plan builds fingerprint differently")
	}
	if got := ts.Fingerprint(fpTree(8, 6)); got == base {
		t.Fatal("different plan shares the fingerprint")
	}

	mut := ts
	mut.P = 17
	if mut.Fingerprint(fpTree(7, 6)) == base {
		t.Fatal("changed P shares the fingerprint")
	}
	mut = ts
	mut.F = 0.31
	if mut.Fingerprint(fpTree(7, 6)) == base {
		t.Fatal("changed F shares the fingerprint")
	}
	mut = ts
	mut.Overlap = resource.MustOverlap(0.51)
	if mut.Fingerprint(fpTree(7, 6)) == base {
		t.Fatal("changed overlap shares the fingerprint")
	}
	mut = ts
	mut.Policy = plan.EarliestShelf
	if mut.Fingerprint(fpTree(7, 6)) == base {
		t.Fatal("changed policy shares the fingerprint")
	}
	mut = ts
	mut.Homes = map[int][]int{0: {1, 2}}
	if mut.Fingerprint(fpTree(7, 6)) == base {
		t.Fatal("added homes share the fingerprint")
	}
	mut = ts
	mut.Model.Params.Alpha *= 2
	if mut.Fingerprint(fpTree(7, 6)) == base {
		t.Fatal("changed model parameters share the fingerprint")
	}

	tt := fpTree(7, 6)
	tt.Tasks[0].Ops[0].Spec.InTuples++
	if ts.Fingerprint(tt) == base {
		t.Fatal("changed operator spec shares the fingerprint")
	}
}

// Fields that never influence the schedule — the recorder and the cost
// cache — must not influence the fingerprint either, and the homes
// digest must not depend on map iteration order.
func TestFingerprintIgnoresNonSemanticFields(t *testing.T) {
	ts := fpScheduler()
	tt := fpTree(3, 5)
	base := ts.Fingerprint(tt)

	mut := ts
	mut.Rec = obs.NewMetrics()
	mut.Cache = costmodel.NewCache(ts.Model)
	if mut.Fingerprint(tt) != base {
		t.Fatal("recorder/cache changed the fingerprint")
	}

	homes := map[int][]int{0: {0, 1}, 1: {2}, 2: {3, 4}}
	a, b := ts, ts
	a.Homes = homes
	b.Homes = map[int][]int{2: {3, 4}, 0: {0, 1}, 1: {2}}
	if a.Fingerprint(tt) != b.Fingerprint(tt) {
		t.Fatal("homes digest depends on map iteration order")
	}
}

// The cache contract end to end: equal fingerprints imply byte-identical
// schedules. Schedule the same plan twice (once cached, once not) and
// compare the rendered JSON byte for byte.
func TestFingerprintImpliesIdenticalSchedule(t *testing.T) {
	ts := fpScheduler()
	for seed := int64(0); seed < 8; seed++ {
		tt := fpTree(seed, 4+int(seed%5))
		tt2 := fpTree(seed, 4+int(seed%5))
		if ts.Fingerprint(tt) != ts.Fingerprint(tt2) {
			t.Fatalf("seed %d: rebuild changed fingerprint", seed)
		}
		cached := ts
		cached.Cache = costmodel.NewCache(ts.Model)
		s1, err := ts.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := cached.Schedule(tt2)
		if err != nil {
			t.Fatal(err)
		}
		j1, err := EncodeJSON(s1)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := EncodeJSON(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(j1) != string(j2) {
			t.Fatalf("seed %d: cached schedule differs from uncached", seed)
		}
	}
}

// The same identity must hold for multi-query batches: attaching the
// cost cache to ScheduleBatch changes no byte of the combined schedule.
func TestBatchCachedIdenticalToUncached(t *testing.T) {
	ts := fpScheduler()
	cached := ts
	cached.Cache = costmodel.NewCache(ts.Model)
	for seed := int64(0); seed < 4; seed++ {
		trees := []*plan.TaskTree{
			fpTree(seed, 4), fpTree(seed+100, 7), fpTree(seed, 4),
		}
		s1, err := ts.ScheduleBatch(trees)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := cached.ScheduleBatch(trees)
		if err != nil {
			t.Fatal(err)
		}
		j1, err := EncodeJSON(s1)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := EncodeJSON(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(j1) != string(j2) {
			t.Fatalf("seed %d: cached batch schedule differs from uncached", seed)
		}
	}
}
