package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

func ov(eps float64) resource.Overlap { return resource.MustOverlap(eps) }

func singleClone(id int, w ...float64) *Op {
	return &Op{ID: id, Clones: []vector.Vector{vector.Of(w...)}}
}

func TestOperatorScheduleArgumentValidation(t *testing.T) {
	good := []*Op{singleClone(0, 1, 1)}
	if _, err := OperatorSchedule(0, 2, ov(0.5), good); err == nil {
		t.Error("P = 0 accepted")
	}
	if _, err := OperatorSchedule(2, 0, ov(0.5), good); err == nil {
		t.Error("d = 0 accepted")
	}
	cases := []struct {
		name string
		ops  []*Op
	}{
		{"duplicate IDs", []*Op{singleClone(1, 1, 1), singleClone(1, 2, 2)}},
		{"no clones", []*Op{{ID: 0}}},
		{"degree > P", []*Op{{ID: 0, Clones: []vector.Vector{
			vector.Of(1, 1), vector.Of(1, 1), vector.Of(1, 1)}}}},
		{"negative clone component", []*Op{singleClone(0, -1, 1)}},
		{"dim mismatch", []*Op{singleClone(0, 1, 1, 1)}},
		{"home wrong length", []*Op{{ID: 0,
			Clones: []vector.Vector{vector.Of(1, 1)}, Home: []int{0, 1}}}},
		{"home out of range", []*Op{{ID: 0,
			Clones: []vector.Vector{vector.Of(1, 1)}, Home: []int{5}}}},
		{"home negative", []*Op{{ID: 0,
			Clones: []vector.Vector{vector.Of(1, 1)}, Home: []int{-1}}}},
		{"home duplicate site", []*Op{{ID: 0,
			Clones: []vector.Vector{vector.Of(1, 1), vector.Of(1, 1)}, Home: []int{1, 1}}}},
	}
	for _, c := range cases {
		if _, err := OperatorSchedule(2, 2, ov(0.5), c.ops); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOperatorScheduleEmpty(t *testing.T) {
	res, err := OperatorSchedule(3, 2, ov(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response != 0 || len(res.Sites) != 0 {
		t.Fatalf("empty schedule: response %g, sites %v", res.Response, res.Sites)
	}
}

func TestOperatorScheduleSpreadsLoad(t *testing.T) {
	// Four equal single-clone operators on four sites: one each.
	var ops []*Op
	for i := 0; i < 4; i++ {
		ops = append(ops, singleClone(i, 2, 1))
	}
	res, err := OperatorSchedule(4, 2, ov(1), ops)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for id := 0; id < 4; id++ {
		s := res.Sites[id][0]
		if seen[s] {
			t.Fatalf("two operators packed on site %d with empty sites available", s)
		}
		seen[s] = true
	}
	if math.Abs(res.Response-2) > 1e-12 {
		t.Fatalf("response = %g, want 2", res.Response)
	}
}

func TestOperatorScheduleResourceComplementarity(t *testing.T) {
	// The heart of multi-dimensional scheduling: a CPU-bound and an
	// IO-bound operator share one site perfectly (paper Section 5.2.2).
	// Two CPU-heavy [10 0] and two disk-heavy [0 10] single-clone ops on
	// two sites under perfect overlap must co-locate complementary pairs
	// for a response of 10.
	ops := []*Op{
		singleClone(0, 10, 0),
		singleClone(1, 10, 0),
		singleClone(2, 0, 10),
		singleClone(3, 0, 10),
	}
	res, err := OperatorSchedule(2, 2, ov(1), ops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Response-10) > 1e-12 {
		t.Fatalf("response = %g, want 10 (complementary packing)", res.Response)
	}
	if res.Sites[0][0] == res.Sites[1][0] {
		t.Fatal("both CPU-bound operators share a site")
	}
}

func TestOperatorScheduleNoTwoClonesShareSite(t *testing.T) {
	op := &Op{ID: 7, Clones: []vector.Vector{
		vector.Of(1, 1), vector.Of(1, 1), vector.Of(1, 1),
	}}
	res, err := OperatorSchedule(3, 2, ov(0.5), []*Op{op})
	if err != nil {
		t.Fatal(err)
	}
	sites := res.Sites[7]
	if sites[0] == sites[1] || sites[0] == sites[2] || sites[1] == sites[2] {
		t.Fatalf("clones share sites: %v", sites)
	}
}

func TestOperatorScheduleRootedStayHome(t *testing.T) {
	rooted := &Op{
		ID:     0,
		Clones: []vector.Vector{vector.Of(5, 5), vector.Of(5, 5)},
		Home:   []int{2, 0},
	}
	floating := singleClone(1, 1, 1)
	res, err := OperatorSchedule(3, 2, ov(0.5), []*Op{rooted, floating})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sites[0], []int{2, 0}) {
		t.Fatalf("rooted op moved: %v", res.Sites[0])
	}
	// The floating op must land on the empty site 1.
	if res.Sites[1][0] != 1 {
		t.Fatalf("floating op at site %d, want the least-loaded site 1", res.Sites[1][0])
	}
}

func TestOperatorScheduleAvoidsRootedHotspot(t *testing.T) {
	// Site 0 is pre-loaded by a rooted operator; floating clones must
	// prefer the other sites first.
	rooted := &Op{ID: 0, Clones: []vector.Vector{vector.Of(100, 100)}, Home: []int{0}}
	f1 := singleClone(1, 1, 2)
	f2 := singleClone(2, 2, 1)
	res, err := OperatorSchedule(3, 2, ov(0.5), []*Op{rooted, f1, f2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites[1][0] == 0 || res.Sites[2][0] == 0 {
		t.Fatal("floating clone placed on the hotspot site")
	}
}

func TestOperatorScheduleLPTOrder(t *testing.T) {
	// One big vector and two small ones on two sites: the big one is
	// placed first (non-increasing l(w̄)), so the two small ones pair on
	// the other site. Greedy in arrival order would split the small ones.
	ops := []*Op{
		singleClone(0, 1, 0),
		singleClone(1, 1, 0),
		singleClone(2, 3, 0),
	}
	res, err := OperatorSchedule(2, 2, ov(1), ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites[0][0] != res.Sites[1][0] {
		t.Fatal("small operators not paired — list order ignored")
	}
	if res.Sites[2][0] == res.Sites[0][0] {
		t.Fatal("big operator shares site with small ones")
	}
	if math.Abs(res.Response-3) > 1e-12 {
		t.Fatalf("response = %g, want 3", res.Response)
	}
}

func TestOperatorScheduleDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ops := randomOps(r, 8, 5, 3)
	r1, err := OperatorSchedule(5, 3, ov(0.4), ops)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OperatorSchedule(5, 3, ov(0.4), ops)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Sites, r2.Sites) || r1.Response != r2.Response {
		t.Fatal("OperatorSchedule is not deterministic")
	}
}

func TestResponseMatchesManualRecomputation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ops := randomOps(r, 6, 4, 2)
	o := ov(0.3)
	res, err := OperatorSchedule(4, 2, o, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute Equation 3 from scratch.
	siteClones := map[int][]vector.Vector{}
	for _, op := range ops {
		for k, s := range res.Sites[op.ID] {
			siteClones[s] = append(siteClones[s], op.Clones[k])
		}
	}
	want := 0.0
	for _, clones := range siteClones {
		maxSeq := 0.0
		for _, w := range clones {
			if ts := o.TSeq(w); ts > maxSeq {
				maxSeq = ts
			}
		}
		tSite := math.Max(maxSeq, vector.SetLength(clones))
		if tSite > want {
			want = tSite
		}
	}
	if math.Abs(res.Response-want) > 1e-9 {
		t.Fatalf("response %g != manual %g", res.Response, want)
	}
}

func TestLowerBoundHandExample(t *testing.T) {
	// Two 1-clone ops [4 0] and [0 4] on 2 sites, ε = 1:
	// l(S) = 4, l(S)/P = 2; h = max TSeq = 4 → LB = 4.
	ops := []*Op{singleClone(0, 4, 0), singleClone(1, 0, 4)}
	if got := LowerBound(2, ov(1), ops); math.Abs(got-4) > 1e-12 {
		t.Fatalf("LB = %g, want 4", got)
	}
	// With ε = 0, TSeq = sum = 4 still; congestion bound unchanged.
	// Four copies of [4 0]: l(S) = 16, /2 = 8 > h = 4 → LB = 8.
	ops4 := []*Op{singleClone(0, 4, 0), singleClone(1, 4, 0),
		singleClone(2, 4, 0), singleClone(3, 4, 0)}
	if got := LowerBound(2, ov(1), ops4); math.Abs(got-8) > 1e-12 {
		t.Fatalf("LB = %g, want 8", got)
	}
	if got := LowerBound(2, ov(1), nil); got != 0 {
		t.Fatalf("LB(empty) = %g, want 0", got)
	}
}

func TestRatioBoundFormulas(t *testing.T) {
	if PerformanceRatioBound(3) != 7 {
		t.Errorf("2d+1 for d=3 = %g, want 7", PerformanceRatioBound(3))
	}
	if got := CoarseGrainRatioBound(3, 0.7); math.Abs(got-(2*3*(0.7*3+1)+1)) > 1e-12 {
		t.Errorf("CG bound = %g", got)
	}
}

// randomOps builds m floating operators with random degrees up to p and
// random d-dimensional clone vectors.
func randomOps(r *rand.Rand, m, p, d int) []*Op {
	ops := make([]*Op, m)
	for i := range ops {
		n := 1 + r.Intn(p)
		clones := make([]vector.Vector, n)
		for k := range clones {
			w := vector.New(d)
			for j := range w {
				w[j] = r.Float64() * 10
			}
			clones[k] = w
		}
		ops[i] = &Op{ID: i, Clones: clones}
	}
	return ops
}

// Property: the schedule always satisfies Definition 5.1 (no two clones
// of one operator on a site), places every clone, and its makespan lies
// in [LB, (2d+1)·LB] — the inequality underlying Theorem 5.1(a).
func TestQuickScheduleInvariantsAndBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(12)
		d := 1 + r.Intn(4)
		m := 1 + r.Intn(10)
		o := ov(r.Float64())
		ops := randomOps(r, m, p, d)

		res, err := OperatorSchedule(p, d, o, ops)
		if err != nil {
			return false
		}
		for _, op := range ops {
			sites := res.Sites[op.ID]
			if len(sites) != len(op.Clones) {
				return false
			}
			seen := map[int]bool{}
			for _, s := range sites {
				if s < 0 || s >= p || seen[s] {
					return false
				}
				seen[s] = true
			}
		}
		lb := LowerBound(p, o, ops)
		bound := PerformanceRatioBound(d) * lb
		return res.Response >= lb-1e-9 && res.Response <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: with rooted operators mixed in, rooted clones never move and
// all invariants still hold. (The LB of Section 7 covers floating
// parallelization; with rooted hotspots the schedule may exceed
// (2d+1)·LB, so only feasibility is asserted here.)
func TestQuickRootedFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 2 + r.Intn(10)
		d := 1 + r.Intn(3)
		o := ov(r.Float64())
		ops := randomOps(r, 1+r.Intn(8), p, d)
		// Root every third operator at random distinct sites.
		for i, op := range ops {
			if i%3 != 0 {
				continue
			}
			perm := r.Perm(p)
			op.Home = append([]int(nil), perm[:len(op.Clones)]...)
		}
		res, err := OperatorSchedule(p, d, o, ops)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if op.Rooted() && !reflect.DeepEqual(res.Sites[op.ID], op.Home) {
				return false
			}
		}
		return res.Response >= LowerBound(p, o, ops)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a site never increases the makespan produced by the
// heuristic... list scheduling anomalies can violate that in general
// (Graham), so assert the weaker, always-true property that the
// response never beats the P-independent part of the lower bound h(N).
func TestQuickResponseAtLeastSlowestOperator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(10)
		d := 1 + r.Intn(3)
		o := ov(r.Float64())
		ops := randomOps(r, 1+r.Intn(6), p, d)
		res, err := OperatorSchedule(p, d, o, ops)
		if err != nil {
			return false
		}
		h := 0.0
		for _, op := range ops {
			for _, w := range op.Clones {
				if ts := o.TSeq(w); ts > h {
					h = ts
				}
			}
		}
		return res.Response >= h-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOperatorSchedule(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ops := randomOps(r, 100, 64, 3)
	o := ov(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OperatorSchedule(64, 3, o, ops); err != nil {
			b.Fatal(err)
		}
	}
}
