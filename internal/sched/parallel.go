// Deterministic intra-schedule parallelism for the Figure 3/Figure 4
// schedulers. Two costs dominate a TreeSchedule run, and both decompose
// into independent work without touching the greedy placement order the
// Theorem 5.1 proof depends on:
//
//   - Cost preparation. Every operator's work-vector construction
//     (Cost, CG_f Degree, Clones, T^par) is a pure function of its spec
//     and the already-fixed homes of previous phases, so the per-phase
//     prepare pass fans across a bounded pool (par.For) with results
//     written by operator index. In ScheduleBatch the pass spans all
//     trees of a global phase at once. With a costmodel.Cache attached
//     the workers share it; concurrent misses for one spec may compute
//     the derivation twice, but both results are bit-identical, so
//     whichever insert wins is indistinguishable.
//
//   - Site selection. The placement inner loop's argmin over the P
//     sites is sharded: each worker scans a contiguous slice of the
//     site array for its local best (l, Σ, id) key, and the coordinator
//     reduces the shard winners lexicographically. keyLess is a strict
//     total order (site ids are distinct) and the reduction is
//     associative, so the winner is the exact argmin the serial sorted
//     index returns — the schedule is byte-identical for every worker
//     count, pinned by the parallel identity tests.
//
// The pool never reorders anything observable: list order, tie-breaks,
// trace events, and error selection are all fixed by index before any
// goroutine runs.

package sched

import (
	"mdrs/internal/obs"
	"mdrs/internal/par"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
)

// shardMinSites gates the sharded argmin. Below this system size the
// serial sorted index's prefix walk (usually O(ban set) per pick) beats
// the per-pick synchronization of handing shards to workers, so small
// systems always take the serial path regardless of Workers.
const shardMinSites = 256

// shardMinPerWorker bounds how thin a shard may be sliced: a worker
// scanning fewer sites than this costs more in channel hand-off than it
// saves, so the effective picker width is clamped to P/shardMinPerWorker.
const shardMinPerWorker = 32

// shardWorkers clamps the configured worker count to the widest pool
// worth running for a P-site placement problem.
func shardWorkers(workers, p int) int {
	if w := p / shardMinPerWorker; workers > w {
		workers = w
	}
	return workers
}

// prepJob is one operator awaiting cost preparation: the plan operator,
// the homes map of its tree (fixed for the duration of the phase — the
// workers only read it), and the batch entry it belongs to.
type prepJob struct {
	p     *plan.Operator
	homes map[*plan.Operator][]int
	tree  int
}

// prepOut is the result of preparing one job, index-aligned with the
// job list.
type prepOut struct {
	op  *Op
	pl  *OpPlacement
	err error
}

// prepareAll runs ts.prepare over every job across at most w workers and
// returns the results in job order. Each worker writes only its own
// index, and callers consume the slice serially, so the outcome —
// including which job's error is reported first — is identical for every
// pool width. The output slice comes from the scratch and is only valid
// until the next prepareAll call on the same scratch.
func (ts TreeScheduler) prepareAll(jobs []prepJob, w int, sc *scratch) []prepOut {
	out := sc.prepOuts(len(jobs))
	par.For(w, len(jobs), func(i int) {
		out[i].op, out[i].pl, out[i].err = ts.prepare(jobs[i].p, jobs[i].homes)
	})
	if ts.Rec != nil {
		name := "sched.par.prepare_ops_serial"
		if w > 1 && len(jobs) > 1 {
			name = "sched.par.prepare_ops_parallel"
		}
		ts.Rec.Count(name, int64(len(jobs)))
	}
	return out
}

// shardedPicker parallelizes the placement argmin. It keeps one flat
// key per site (no global order to maintain, so an update after a
// placement is O(1)); at each pick every worker scans its contiguous
// shard for the local minimum and the coordinator reduces the shard
// winners with the same keyLess every serial pick uses.
//
// Synchronization is a strict request/response cycle per pick: the
// coordinator owns keys and the ban rows between picks (its writes
// happen-before the workers' reads via the request channel send, and
// the workers' result writes happen-before the coordinator's reads via
// the done channel), so the picker is race-free without a single lock
// on the hot state.
type shardedPicker struct {
	keys []siteKey // keys[id]; coordinator-owned between picks
	lo   []int     // shard bounds: worker g scans [lo[g], hi[g])
	hi   []int
	req  []chan []bool // per-worker pick request carrying the ban row
	out  []int         // out[g]: worker g's local best id, -1 if none
	done chan struct{} // one token per worker per pick
}

// newShardedPicker snapshots the post-rooted site loads and starts w
// shard workers. Callers must close() the picker to reap them.
func newShardedPicker(sys *resource.System, w int, sc *scratch) *shardedPicker {
	p := sys.P()
	sp := &shardedPicker{
		keys: sc.shardKeys(p),
		lo:   make([]int, w),
		hi:   make([]int, w),
		req:  make([]chan []bool, w),
		out:  make([]int, w),
		done: make(chan struct{}, w),
	}
	for id := 0; id < p; id++ {
		s := sys.Site(id)
		sp.keys[id] = siteKey{l: s.LoadLength(), sum: s.LoadSum(), id: id}
	}
	// Contiguous shards, the remainder spread over the leading workers.
	size, rem := p/w, p%w
	start := 0
	for g := 0; g < w; g++ {
		n := size
		if g < rem {
			n++
		}
		sp.lo[g], sp.hi[g] = start, start+n
		start += n
		sp.req[g] = make(chan []bool, 1)
		go sp.worker(g)
	}
	return sp
}

// worker serves pick requests for shard g until its request channel is
// closed.
func (sp *shardedPicker) worker(g int) {
	lo, hi := sp.lo[g], sp.hi[g]
	for bans := range sp.req[g] {
		best := -1
		for id := lo; id < hi; id++ {
			if bans[id] {
				continue
			}
			if best < 0 || keyLess(sp.keys[id], sp.keys[best]) {
				best = id
			}
		}
		sp.out[g] = best
		sp.done <- struct{}{}
	}
}

// pick returns the least-key unbanned site, or -1 if the ban set covers
// every site. The result is the exact global argmin — each shard
// reports its local argmin and keyLess reduces them; with distinct site
// ids the order is strict and total, so the reduction is associative
// and the winner is the one the serial sorted-index walk returns.
func (sp *shardedPicker) pick(bans []bool) int {
	for _, c := range sp.req {
		c <- bans
	}
	for range sp.req {
		<-sp.done
	}
	best := -1
	for _, id := range sp.out {
		if id < 0 {
			continue
		}
		if best < 0 || keyLess(sp.keys[id], sp.keys[best]) {
			best = id
		}
	}
	return best
}

// countSkips reports how many banned sites hold keys strictly smaller
// than the chosen site's — exactly the count the serial pickSkips walk
// produces (in sorted order, every entry before the first unbanned site
// is banned with a smaller key). Only the traced path pays this O(P)
// pass; untraced picks skip it entirely.
func (sp *shardedPicker) countSkips(bans []bool, best int) int {
	if best < 0 {
		// Every site banned: the serial walk skips all of them.
		n := 0
		for _, b := range bans {
			if b {
				n++
			}
		}
		return n
	}
	skipped := 0
	bk := sp.keys[best]
	for id := range sp.keys {
		if bans[id] && keyLess(sp.keys[id], bk) {
			skipped++
		}
	}
	return skipped
}

// update re-keys site id after new work was assigned to it. With no
// global order to maintain this is a single store; the next pick's
// request send publishes it to the workers.
func (sp *shardedPicker) update(sys *resource.System, id int) {
	s := sys.Site(id)
	sp.keys[id] = siteKey{l: s.LoadLength(), sum: s.LoadSum(), id: id}
}

// close retires the shard workers. The picker must not be used after.
func (sp *shardedPicker) close() {
	for _, c := range sp.req {
		close(c)
	}
}

// Re-export the knob resolution so the tree/batch schedulers and the
// facade agree on what Workers=0 means.
func (ts TreeScheduler) workers() int { return par.Workers(ts.Workers) }

// observeWorkers records the effective pool width of one scheduling
// call, for capacity planning via /metricz.
func (ts TreeScheduler) observeWorkers(w int) {
	obs.Observe(ts.Rec, "sched.par.workers", float64(w))
}
