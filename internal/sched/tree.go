package sched

import (
	"context"
	"fmt"
	"sync"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// TreeScheduler configures TreeSchedule (Figure 4): a system of P
// d-dimensional sites with overlap model Overlap, a cost model, and the
// granularity parameter f that bounds partitioned parallelism through
// Proposition 4.1.
type TreeScheduler struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// P is the number of system sites.
	P int
	// F is the coarse-granularity parameter f of Definition 4.1.
	F float64
	// Homes optionally roots operators (by operator ID) at fixed sites,
	// expressing data placement constraints such as pre-declustered base
	// relations. Probes are always rooted at their build's home
	// regardless of this map.
	Homes map[int][]int
	// MaxDegree, when positive, caps every floating operator's degree of
	// partitioned parallelism at min{N_max, N_opt, P, MaxDegree} —
	// the per-query intra-operator parallelism lever the serve layer's
	// adaptive controller turns under concurrency. Zero means uncapped
	// (the paper's pure CG_f degree). Unlike Workers, MaxDegree changes
	// the schedule itself, so it participates in Fingerprint: two caps
	// never share a cached schedule. Rooted operators (Homes, and probes
	// pinned to their build's sites) keep their fixed homes regardless.
	MaxDegree int
	// Policy selects the phase-packing policy; the zero value is the
	// paper's MinShelf.
	Policy plan.PhasePolicy
	// Rec, when non-nil, receives the decision trace (every placement,
	// phase boundary, and ban-set hit) plus aggregate counters and
	// timers. It never influences a scheduling decision; nil disables
	// all recording at near-zero cost.
	Rec obs.Recorder
	// Cache, when non-nil, memoizes the cost model's derivations (cost
	// vectors, CG_f degrees, clone vectors) across operators, phases,
	// trees, and batch entries, so structurally repeated specs are
	// costed once. It must wrap the same Model (Cache.Model() ==
	// Model); every cached answer is bit-identical to an uncached one,
	// pinned by the identity tests. Safe to share across concurrent
	// scheduling calls.
	Cache *costmodel.Cache
	// Workers bounds the intra-schedule parallelism of one scheduling
	// call: the per-phase cost-preparation fan-out and, for systems past
	// the shardMinSites gate, the sharded placement argmin (parallel.go).
	// Zero or negative means runtime.GOMAXPROCS(0); 1 forces the fully
	// serial pre-parallel code path with no goroutines at all. The
	// schedule is byte-identical for every value — Workers only changes
	// wall-clock time — which is why Fingerprint excludes it, like Rec
	// and Cache. Each concurrent Schedule/ScheduleBatch call may run up
	// to Workers goroutines of its own (the serve layer's documented
	// bound is MaxInFlight × Workers).
	Workers int
}

// Validate reports the first nonsensical configuration field.
func (ts TreeScheduler) Validate() error {
	if err := ts.Model.Params.Validate(); err != nil {
		return err
	}
	if ts.P <= 0 {
		return fmt.Errorf("sched: non-positive site count %d", ts.P)
	}
	if ts.F < 0 {
		return fmt.Errorf("sched: negative granularity parameter f = %g", ts.F)
	}
	if ts.MaxDegree < 0 {
		return fmt.Errorf("sched: negative parallelism cap MaxDegree = %d", ts.MaxDegree)
	}
	return nil
}

// OpPlacement records the scheduling decision for one plan operator.
type OpPlacement struct {
	// Op is the scheduled plan operator.
	Op *plan.Operator
	// Degree is the degree of partitioned parallelism N_i.
	Degree int
	// Sites holds the site of each clone; Sites[0] is the coordinator.
	Sites []int
	// Clones holds the clone work vectors, aligned with Sites.
	Clones []vector.Vector
	// Rooted marks operators whose home was fixed before list scheduling.
	Rooted bool
	// TPar is T^par(op, N): the operator's isolated parallel execution
	// time (Equation 1).
	TPar float64
}

// PhaseSchedule is the schedule of one synchronized phase.
type PhaseSchedule struct {
	// Index is the phase's execution position, starting at 0.
	Index int
	// Tasks lists the independent tasks executed in the phase.
	Tasks []*plan.Task
	// Placements lists one entry per operator, in operator-ID order.
	Placements []*OpPlacement
	// Response is the phase's parallel execution time per Equation 3.
	Response float64
}

// Schedule is a complete parallel schedule for a bushy plan: the
// synchronized phases and the end-to-end response time (the sum of the
// phase responses, since phases execute back to back).
//
// A completed Schedule is immutable by convention: the engine, the
// simulators, the renderers, and the serving layer only read it, which
// is what lets the serve-layer schedule cache hand one *Schedule to
// many concurrent requests. Callers must not modify a schedule they
// did not build themselves.
type Schedule struct {
	// Phases in execution order.
	Phases []*PhaseSchedule
	// Response is the total plan response time.
	Response float64
	// P is the system size the schedule was produced for.
	P int

	// placeOnce lazily builds placeIdx the first time Placement is
	// called; a schedule that is only encoded or executed phase by
	// phase never pays for the index.
	placeOnce sync.Once
	placeIdx  map[*plan.Operator]*OpPlacement
}

// Placement returns the placement of the given operator, or nil. The
// first call builds a per-operator index (previously every lookup
// linearly scanned all phases); the index is built under a sync.Once,
// so Placement is safe for concurrent use on a shared schedule.
func (s *Schedule) Placement(op *plan.Operator) *OpPlacement {
	s.placeOnce.Do(func() {
		n := 0
		for _, ph := range s.Phases {
			n += len(ph.Placements)
		}
		s.placeIdx = make(map[*plan.Operator]*OpPlacement, n)
		for _, ph := range s.Phases {
			for _, pl := range ph.Placements {
				if _, ok := s.placeIdx[pl.Op]; !ok {
					s.placeIdx[pl.Op] = pl
				}
			}
		}
	})
	return s.placeIdx[op]
}

// Schedule runs TreeSchedule on a task tree: split the plan into
// synchronized phases (already encoded in the tree, Section 5.4), then
// schedule each phase's operators with OperatorSchedule, carrying the
// build→probe home constraint across phases (Section 5.5).
func (ts TreeScheduler) Schedule(tt *plan.TaskTree) (*Schedule, error) {
	return ts.ScheduleCtx(context.Background(), tt)
}

// ScheduleCtx is Schedule with a cancellation context: the phase loop
// and the placement loop inside OperatorSchedule check ctx and return
// ctx.Err() promptly once the context is cancelled or past its
// deadline, instead of finishing a schedule nobody is waiting for. The
// context never influences a scheduling decision — a run that completes
// is bit-identical to Schedule.
func (ts TreeScheduler) ScheduleCtx(ctx context.Context, tt *plan.TaskTree) (*Schedule, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := tt.Validate(); err != nil {
		return nil, err
	}

	out := &Schedule{P: ts.P}
	// Home of each already-scheduled operator, for rooting probes.
	homes := make(map[*plan.Operator][]int)
	// One scratch serves every phase: the placement loop's ban sets,
	// clone list, and site index are reused instead of reallocated.
	sc := new(scratch)
	w := ts.workers()
	ts.observeWorkers(w)

	for phaseIdx, tasks := range tt.PhasesBy(ts.Policy) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fan the phase's cost preparation across the pool: the job list
		// is built serially in operator order, results land by index, and
		// the error check below walks them in that same order, so the
		// phase — including which prepare error surfaces — is identical
		// for every pool width.
		n := 0
		for _, tk := range tasks {
			n += len(tk.Ops)
		}
		jobs := sc.prepJobs(n)
		for _, tk := range tasks {
			for _, p := range tk.Ops {
				jobs = append(jobs, prepJob{p: p, homes: homes})
			}
		}
		sc.jobs = jobs
		preps := ts.prepareAll(jobs, w, sc)
		ops := make([]*Op, 0, len(jobs))
		placements := make(map[int]*OpPlacement, len(jobs))
		for _, pr := range preps {
			if pr.err != nil {
				return nil, fmt.Errorf("sched: phase %d: %w", phaseIdx, pr.err)
			}
			ops = append(ops, pr.op)
			placements[pr.op.ID] = pr.pl
		}

		if ts.Rec != nil {
			clones := 0
			for _, op := range ops {
				clones += len(op.Clones)
			}
			ts.Rec.Event(obs.Event{
				Type: obs.EvPhaseOpen, Phase: phaseIdx,
				Ops: len(ops), Clones: clones,
			})
		}
		stop := obs.StartTimer(ts.Rec, "sched.phase_seconds")
		res, err := operatorSchedule(ctx, ts.P, resource.Dims, ts.Overlap, ops, true, ts.Rec, phaseIdx, sc, w)
		stop()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("sched: phase %d: %w", phaseIdx, err)
		}
		if ts.Rec != nil {
			ts.Rec.Count("sched.phases", 1)
			ts.Rec.Event(obs.Event{
				Type: obs.EvPhaseClose, Phase: phaseIdx, Response: res.Response,
			})
		}

		ph := &PhaseSchedule{Index: phaseIdx, Tasks: tasks, Response: res.Response}
		for _, op := range ops {
			pl := placements[op.ID]
			pl.Sites = res.Sites[op.ID]
			homes[pl.Op] = pl.Sites
			ph.Placements = append(ph.Placements, pl)
		}
		out.Phases = append(out.Phases, ph)
		out.Response += ph.Response
	}
	return out, nil
}

// prepare determines an operator's degree of parallelism and clone
// vectors, and whether it is rooted. With a Cache attached, every
// derivation is memoized by the operator's spec, so structurally
// repeated scans/builds/probes across phases, trees, and batch entries
// are costed once.
func (ts TreeScheduler) prepare(p *plan.Operator, homes map[*plan.Operator][]int) (*Op, *OpPlacement, error) {
	var home []int
	switch {
	case p.BuildOp != nil:
		// A probe executes at the sites holding the hash table: the home
		// of its build, with the same clone layout (coordinator aligned).
		h, ok := homes[p.BuildOp]
		if !ok {
			return nil, nil, fmt.Errorf("operator %q scheduled before its build %q",
				p.Name, p.BuildOp.Name)
		}
		home = h
	case ts.Homes[p.ID] != nil:
		home = ts.Homes[p.ID]
	}

	var n int
	if home != nil {
		n = len(home)
	} else {
		n = ts.degree(p.Spec)
		if p.Kind == costmodel.Build && p.Consumer != nil {
			// The probe of this join is forced to run at the build's
			// home (Section 5.5), so the join's degree must be coarse
			// grain for the probe as well: cap the build's parallelism
			// by the probe's own CG_f degree. Otherwise the granularity
			// condition could never constrain probes at all.
			if pn := ts.degree(p.Consumer.Spec); pn < n {
				n = pn
			}
		}
	}

	var clones []vector.Vector
	var tpar float64
	if ts.Cache != nil {
		clones = ts.Cache.Clones(p.Spec, n)
		tpar = ts.Cache.TPar(p.Spec, n, ts.Overlap)
	} else {
		cost := ts.Model.Cost(p.Spec)
		clones = ts.Model.Clones(cost, n)
		tpar = ts.Model.TPar(cost, n, ts.Overlap)
	}

	op := &Op{ID: p.ID, Clones: clones, Home: home}
	pl := &OpPlacement{
		Op:     p,
		Degree: n,
		Clones: clones,
		Rooted: home != nil,
		TPar:   tpar,
	}
	return op, pl, nil
}

// degree resolves a floating operator's degree of parallelism through
// the cache when one is attached, clamped by MaxDegree when set.
func (ts TreeScheduler) degree(spec costmodel.OpSpec) int {
	if ts.Cache != nil {
		return ts.Cache.DegreeCapped(spec, ts.F, ts.P, ts.Overlap, ts.MaxDegree)
	}
	return ts.Model.DegreeCapped(ts.Model.Cost(spec), ts.F, ts.P, ts.Overlap, ts.MaxDegree)
}
