package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// Stats summarizes a schedule's resource economics.
type Stats struct {
	// TotalWork is the summed work vector over every placed clone
	// (including communication and startup), in seconds per resource.
	TotalWork vector.Vector
	// Utilization is TotalWork[i] / (P · Response): the fraction of the
	// system's capacity on resource i that the schedule keeps busy.
	Utilization vector.Vector
	// PhaseUtilization is the same ratio per phase.
	PhaseUtilization []vector.Vector
	// Clones is the total number of placed operator clones.
	Clones int
}

// Stats computes resource statistics for the schedule. The site
// dimensionality is taken from the first clone.
func (s *Schedule) Stats() Stats {
	d := resource.Dims
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if len(pl.Clones) > 0 {
				d = pl.Clones[0].Dim()
				break
			}
		}
	}
	st := Stats{TotalWork: vector.New(d), Utilization: vector.New(d)}
	for _, ph := range s.Phases {
		phaseWork := vector.New(d)
		for _, pl := range ph.Placements {
			for _, w := range pl.Clones {
				phaseWork.AddInPlace(w)
				st.Clones++
			}
		}
		st.TotalWork.AddInPlace(phaseWork)
		u := vector.New(d)
		if ph.Response > 0 {
			u = phaseWork.Scale(1 / (float64(s.P) * ph.Response))
		}
		st.PhaseUtilization = append(st.PhaseUtilization, u)
	}
	if s.Response > 0 {
		st.Utilization = st.TotalWork.Scale(1 / (float64(s.P) * s.Response))
	}
	return st
}

// WriteText renders the schedule as a per-phase site-load chart: one
// bar per site showing its most congested resource's load relative to
// the phase response, plus a placement table.
func WriteText(w io.Writer, s *Schedule) error {
	st := s.Stats()
	if _, err := fmt.Fprintf(w, "schedule: %.3f s on %d sites, %d phases, %d clones\n",
		s.Response, s.P, len(s.Phases), st.Clones); err != nil {
		return err
	}
	names := []string{"cpu", "disk", "net"}
	fmt.Fprintf(w, "utilization:")
	for i, u := range st.Utilization {
		n := fmt.Sprintf("r%d", i)
		if i < len(names) {
			n = names[i]
		}
		fmt.Fprintf(w, " %s %.1f%%", n, 100*u)
	}
	fmt.Fprintln(w)

	for _, ph := range s.Phases {
		fmt.Fprintf(w, "\nphase %d: %.3f s, %d operators\n",
			ph.Index, ph.Response, len(ph.Placements))
		loads := make([]vector.Vector, s.P)
		for j := range loads {
			loads[j] = vector.New(dimOf(ph))
		}
		for _, pl := range ph.Placements {
			for k, site := range pl.Sites {
				loads[site].AddInPlace(pl.Clones[k])
			}
		}
		for j, l := range loads {
			frac := 0.0
			if ph.Response > 0 {
				frac = l.Length() / ph.Response
			}
			bar := strings.Repeat("#", int(frac*40+0.5))
			fmt.Fprintf(w, "  site %3d |%-40s| %5.1f%%\n", j, bar, frac*100)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func dimOf(ph *PhaseSchedule) int {
	for _, pl := range ph.Placements {
		if len(pl.Clones) > 0 {
			return pl.Clones[0].Dim()
		}
	}
	return resource.Dims
}

// scheduleJSON is the stable serialized form of a Schedule.
type scheduleJSON struct {
	Response float64     `json:"response_seconds"`
	Sites    int         `json:"sites"`
	Phases   []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Index      int             `json:"index"`
	Response   float64         `json:"response_seconds"`
	Placements []placementJSON `json:"placements"`
}

type placementJSON struct {
	Operator string      `json:"operator"`
	OpID     int         `json:"op_id"`
	Kind     string      `json:"kind"`
	Degree   int         `json:"degree"`
	Rooted   bool        `json:"rooted"`
	TPar     float64     `json:"t_par_seconds"`
	Sites    []int       `json:"sites"`
	Clones   [][]float64 `json:"clone_work_vectors"`
}

// EncodeJSON renders the schedule as indented, stable JSON for
// downstream tooling.
func EncodeJSON(s *Schedule) ([]byte, error) {
	out := scheduleJSON{Response: s.Response, Sites: s.P}
	for _, ph := range s.Phases {
		pj := phaseJSON{Index: ph.Index, Response: ph.Response}
		for _, pl := range ph.Placements {
			clones := make([][]float64, len(pl.Clones))
			for k, w := range pl.Clones {
				clones[k] = append([]float64(nil), w...)
			}
			pj.Placements = append(pj.Placements, placementJSON{
				Operator: pl.Op.Name,
				OpID:     pl.Op.ID,
				Kind:     pl.Op.Kind.String(),
				Degree:   pl.Degree,
				Rooted:   pl.Rooted,
				TPar:     pl.TPar,
				Sites:    pl.Sites,
				Clones:   clones,
			})
		}
		out.Phases = append(out.Phases, pj)
	}
	return json.MarshalIndent(out, "", "  ")
}
