package sched

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

// traceScheduler returns a TreeScheduler over the default model.
func traceScheduler(p int, eps, f float64, rec obs.Recorder) TreeScheduler {
	return TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(eps),
		P:       p,
		F:       f,
		Rec:     rec,
	}
}

func seededTree(t *testing.T, seed int64, joins int) *plan.TaskTree {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := query.MustRandom(r, query.DefaultGenConfig(joins))
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

// TestTraceReplayReconstructsAssignment is the acceptance contract of
// the decision trace: replaying the emitted JSONL place events must
// reconstruct the exact clone->site assignment of the schedule, for a
// seeded corpus spanning plan sizes and system widths.
func TestTraceReplayReconstructsAssignment(t *testing.T) {
	cases := []struct {
		seed  int64
		joins int
		p     int
		eps   float64
		f     float64
	}{
		{1, 3, 4, 0.5, 0.7},
		{2, 6, 8, 0.0, 0.7},
		{3, 10, 16, 1.0, 0.3},
		{4, 8, 32, 0.5, 0.0},
		{5, 12, 12, 0.25, 1.0},
	}
	for _, tc := range cases {
		tt := seededTree(t, tc.seed, tc.joins)

		// Emit the trace through the real JSONL encoder and read it back,
		// so the test covers the wire format, not just the in-memory path.
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf)
		s, err := traceScheduler(tc.p, tc.eps, tc.f, tr).Schedule(tt)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if err := tr.Flush(); err != nil {
			t.Fatalf("seed %d: flush: %v", tc.seed, err)
		}
		events, err := obs.ReadTrace(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		replayed := obs.TraceAssignments(events)

		want := 0
		for _, ph := range s.Phases {
			for _, pl := range ph.Placements {
				for k, site := range pl.Sites {
					want++
					got, ok := replayed[obs.PlaceKey{Phase: ph.Index, Op: pl.Op.ID, Clone: k}]
					if !ok {
						t.Fatalf("seed %d: no place event for phase %d op %d clone %d",
							tc.seed, ph.Index, pl.Op.ID, k)
					}
					if got != site {
						t.Fatalf("seed %d: phase %d op %d clone %d: trace says site %d, schedule says %d",
							tc.seed, ph.Index, pl.Op.ID, k, got, site)
					}
				}
			}
		}
		if len(replayed) != want {
			t.Fatalf("seed %d: trace has %d placements, schedule has %d",
				tc.seed, len(replayed), want)
		}
	}
}

// TestRecorderDoesNotChangeSchedule pins that attaching a recorder is
// purely observational: site maps and responses are identical to the
// untraced run, bit for bit.
func TestRecorderDoesNotChangeSchedule(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tt := seededTree(t, seed, 5+int(seed)%5)
		plain, err := traceScheduler(10, 0.5, 0.7, nil).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		// Note the task tree is re-built: Schedule mutates placements into
		// per-run structs, but operators are shared, so rebuild for a clean
		// second run.
		tt2 := seededTree(t, seed, 5+int(seed)%5)
		traced, err := traceScheduler(10, 0.5, 0.7, obs.NewCapture()).Schedule(tt2)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Response != traced.Response {
			t.Fatalf("seed %d: responses differ: %g vs %g", seed, plain.Response, traced.Response)
		}
		if len(plain.Phases) != len(traced.Phases) {
			t.Fatalf("seed %d: phase counts differ", seed)
		}
		for i := range plain.Phases {
			a, b := plain.Phases[i], traced.Phases[i]
			if len(a.Placements) != len(b.Placements) {
				t.Fatalf("seed %d phase %d: placement counts differ", seed, i)
			}
			for j := range a.Placements {
				if !reflect.DeepEqual(a.Placements[j].Sites, b.Placements[j].Sites) {
					t.Fatalf("seed %d phase %d op %d: sites %v vs %v", seed, i,
						a.Placements[j].Op.ID, a.Placements[j].Sites, b.Placements[j].Sites)
				}
			}
		}
	}
}

// TestBanHitEventsEmitted forces ban-set hits: with two floating
// operators of degree P on P sites, later clones of each operator must
// skip sites already holding a sibling clone.
func TestBanHitEventsEmitted(t *testing.T) {
	const p = 4
	ops := placementOps(7, 2, p)
	for _, op := range ops { // force degree exactly P
		for len(op.Clones) < p {
			op.Clones = append(op.Clones, op.Clones[0].Clone())
		}
	}
	cap := obs.NewCapture()
	met := obs.NewMetrics()
	if _, err := OperatorScheduleObserved(p, 3, resource.MustOverlap(0.5), ops,
		obs.Multi(cap, met), 0); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range cap.Events() {
		if e.Type == obs.EvBanHit {
			hits++
			if e.Banned <= 0 {
				t.Fatalf("ban_hit with non-positive count: %+v", e)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no ban_hit events for two degree-P operators")
	}
	if met.Snapshot().Counters["sched.ban_hits"] == 0 {
		t.Fatal("ban-hit counter not incremented")
	}
}

// TestPhaseEventsBracketPlacements checks the phase_open/phase_close
// envelope and the aggregate counters of a TreeSchedule trace.
func TestPhaseEventsBracketPlacements(t *testing.T) {
	tt := seededTree(t, 11, 7)
	cap := obs.NewCapture()
	met := obs.NewMetrics()
	s, err := traceScheduler(8, 0.5, 0.7, obs.Multi(cap, met)).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	events := cap.Events()
	opens, closes := 0, 0
	depth := 0
	for _, e := range events {
		switch e.Type {
		case obs.EvPhaseOpen:
			opens++
			depth++
			if depth != 1 {
				t.Fatal("nested phase_open")
			}
		case obs.EvPhaseClose:
			closes++
			depth--
			if e.Response != s.Phases[e.Phase].Response {
				t.Fatalf("phase %d close response %g != schedule %g",
					e.Phase, e.Response, s.Phases[e.Phase].Response)
			}
		case obs.EvPlace:
			if depth != 1 {
				t.Fatal("place event outside a phase envelope")
			}
		}
	}
	if opens != len(s.Phases) || closes != len(s.Phases) {
		t.Fatalf("opens=%d closes=%d phases=%d", opens, closes, len(s.Phases))
	}
	snap := met.Snapshot()
	if snap.Counters["sched.phases"] != int64(len(s.Phases)) {
		t.Fatalf("phase counter %d != %d", snap.Counters["sched.phases"], len(s.Phases))
	}
	placed := snap.Counters["sched.clones_floating"] + snap.Counters["sched.clones_rooted"]
	want := int64(0)
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			want += int64(len(pl.Sites))
		}
	}
	if placed != want {
		t.Fatalf("clone counters %d != schedule clones %d", placed, want)
	}
	if snap.Histograms["sched.phase_seconds"].Count != int64(len(s.Phases)) {
		t.Fatalf("phase timer samples: %+v", snap.Histograms["sched.phase_seconds"])
	}
}

// TestBatchScheduleEmitsTrace covers the inter-query batch path.
func TestBatchScheduleEmitsTrace(t *testing.T) {
	tt1 := seededTree(t, 21, 4)
	tt2 := seededTree(t, 22, 6)
	cap := obs.NewCapture()
	ts := traceScheduler(12, 0.5, 0.7, cap)
	s, err := ts.ScheduleBatch([]*plan.TaskTree{tt1, tt2})
	if err != nil {
		t.Fatal(err)
	}
	replayed := obs.TraceAssignments(cap.Events())
	want := 0
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			want += len(pl.Sites)
		}
	}
	if len(replayed) != want {
		t.Fatalf("batch trace has %d placements, schedule has %d", len(replayed), want)
	}
}
