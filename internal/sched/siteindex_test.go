package sched

import (
	"math/rand"
	"testing"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// The index must agree with the reference linear scan after every
// mutation, for arbitrary load states and ban sets: pick == pickScan is
// the exact "least-filled allowable site" contract of Figure 3.
func TestSiteIndexMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		p := 1 + r.Intn(40)
		sys := resource.NewSystem(p, 3, resource.MustOverlap(0.5))
		// Random pre-load (rooted placements happen before the index is
		// built).
		for j := 0; j < p; j++ {
			for n := r.Intn(3); n > 0; n-- {
				sys.Site(j).Assign(vector.Of(r.Float64(), r.Float64(), r.Float64()))
			}
		}
		ix := newSiteIndex(sys)
		for step := 0; step < 60; step++ {
			bans := make([]bool, p)
			for n := r.Intn(p); n > 0; n-- {
				bans[r.Intn(p)] = true
			}
			got, want := ix.pick(bans), pickScan(sys, bans)
			if got != want {
				t.Fatalf("trial %d step %d: pick = %d, scan = %d (bans %v)",
					trial, step, got, want, bans)
			}
			if got < 0 {
				continue // every site banned
			}
			sys.Site(got).Assign(vector.Of(r.Float64()*5, r.Float64()*5, r.Float64()*5))
			ix.update(sys, got)
			// The pos table must stay the inverse of the order slice.
			for i, k := range ix.order {
				if ix.pos[k.id] != i {
					t.Fatalf("trial %d step %d: pos[%d] = %d, want %d",
						trial, step, k.id, ix.pos[k.id], i)
				}
			}
		}
	}
}

// With every site banned, both the index and the scan report failure.
func TestSiteIndexAllBanned(t *testing.T) {
	sys := resource.NewSystem(3, 2, resource.MustOverlap(1))
	ix := newSiteIndex(sys)
	bans := []bool{true, true, true}
	if got := ix.pick(bans); got != -1 {
		t.Fatalf("pick over full ban set = %d, want -1", got)
	}
	if got := pickScan(sys, bans); got != -1 {
		t.Fatalf("scan over full ban set = %d, want -1", got)
	}
}

// Exactly-tied loads must break deterministically on (l, sum, site):
// identical single-clone operators fill sites in index order, and once
// every site carries the same load the cycle restarts at site 0. This is
// the regression test for the old ±tieEps comparison, whose asymmetric
// window could let a near-tie chain pick a site up to tieEps above the
// true minimum and had no explicit site-index tie-break.
func TestPlacementExactTieBreaksOnSiteIndex(t *testing.T) {
	var ops []*Op
	for i := 0; i < 7; i++ {
		ops = append(ops, &Op{ID: i, Clones: []vector.Vector{vector.Of(1, 1)}})
	}
	res, err := OperatorSchedule(3, 2, resource.MustOverlap(0.5), ops)
	if err != nil {
		t.Fatal(err)
	}
	// l(w̄) is equal for all clones, so list order is operator ID order.
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := res.Sites[i][0]; got != w {
			t.Fatalf("op %d placed at site %d, want %d (exact-tie rotation)", i, got, w)
		}
	}
	// Ties on l alone defer to the smaller total load: a site already
	// holding complementary work (same l, larger sum) loses to a lighter
	// site with an equal maximum component.
	tieOps := []*Op{
		{ID: 0, Clones: []vector.Vector{vector.Of(2, 0)}, Home: []int{0}},
		{ID: 1, Clones: []vector.Vector{vector.Of(2, 2)}, Home: []int{1}},
		{ID: 2, Clones: []vector.Vector{vector.Of(1, 1)}},
	}
	res, err = OperatorSchedule(2, 2, resource.MustOverlap(0.5), tieOps)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sites[2][0]; got != 0 {
		t.Fatalf("op 2 placed at site %d, want 0 (l tie 2=2, sum 2 < 4)", got)
	}
}

// LowerBound must tolerate input that OperatorSchedule's validation
// rejects rather than dereferencing Clones[0] blindly.
func TestLowerBoundMalformedInput(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	if got := LowerBound(4, ov, []*Op{{ID: 0}}); got != 0 {
		t.Fatalf("LB(op with no clones) = %g, want 0", got)
	}
	if got := LowerBound(4, ov, []*Op{{ID: 0}, {ID: 1}}); got != 0 {
		t.Fatalf("LB(only empty ops) = %g, want 0", got)
	}
	if got := LowerBound(0, ov, []*Op{singleClone(0, 1, 1)}); got != 0 {
		t.Fatalf("LB(P = 0) = %g, want 0", got)
	}
	// A zero-clone operator among real ones is skipped, not fatal, and
	// does not perturb the bound.
	ops := []*Op{singleClone(0, 4, 0), {ID: 1}, singleClone(2, 0, 4)}
	clean := []*Op{singleClone(0, 4, 0), singleClone(2, 0, 4)}
	if got, want := LowerBound(2, ov, ops), LowerBound(2, ov, clean); got != want {
		t.Fatalf("LB with empty op mixed in = %g, want %g", got, want)
	}
}

// Mixed-dimension clone vectors used to reach vector.AddInPlace, whose
// mustMatch panics — violating LowerBound's documented "contribute a
// bound of 0 instead of panicking" contract. Mismatched vectors must be
// skipped in both the congestion term and h(N).
func TestLowerBoundMixedDimensionClones(t *testing.T) {
	ov := resource.MustOverlap(0.5)

	// A 2-dimensional clone among 3-dimensional ones: skipped entirely.
	mixed := []*Op{
		{ID: 0, Clones: []vector.Vector{{4, 0, 0}}},
		{ID: 1, Clones: []vector.Vector{{1, 2}}}, // wrong dimension
		{ID: 2, Clones: []vector.Vector{{0, 0, 4}}},
	}
	clean := []*Op{
		{ID: 0, Clones: []vector.Vector{{4, 0, 0}}},
		{ID: 2, Clones: []vector.Vector{{0, 0, 4}}},
	}
	got := LowerBound(2, ov, mixed)
	if want := LowerBound(2, ov, clean); got != want {
		t.Fatalf("LB with mismatched clone mixed in = %g, want %g", got, want)
	}

	// A mismatch inside one operator's own clone list: the bad clone is
	// skipped, the matching clones still count.
	intra := []*Op{
		{ID: 0, Clones: []vector.Vector{{4, 0, 0}, {9, 9}, {0, 0, 4}}},
	}
	intraClean := []*Op{
		{ID: 0, Clones: []vector.Vector{{4, 0, 0}, {0, 0, 4}}},
	}
	if got, want := LowerBound(2, ov, intra), LowerBound(2, ov, intraClean); got != want {
		t.Fatalf("LB with intra-op mismatch = %g, want %g", got, want)
	}

	// A leading zero-dimension vector must not poison the reference
	// dimensionality: the first positive-dimension clone sets d.
	leadingEmpty := []*Op{
		{ID: 0, Clones: []vector.Vector{{}}},
		{ID: 1, Clones: []vector.Vector{{4, 0, 0}}},
	}
	if got, want := LowerBound(2, ov, leadingEmpty),
		LowerBound(2, ov, []*Op{{ID: 1, Clones: []vector.Vector{{4, 0, 0}}}}); got != want {
		t.Fatalf("LB with leading empty vector = %g, want %g", got, want)
	}

	// All-mismatched input degrades to 0, never a panic.
	if got := LowerBound(2, ov, []*Op{{ID: 0, Clones: []vector.Vector{{}}}}); got != 0 {
		t.Fatalf("LB(zero-dimension clones) = %g, want 0", got)
	}
}
