package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// placementOps builds m floating operators with degrees 1..maxDeg and
// random 3-dimensional work vectors — the shape of a heavy concurrent
// phase at production system sizes.
func placementOps(seed int64, m, maxDeg int) []*Op {
	r := rand.New(rand.NewSource(seed))
	ops := make([]*Op, m)
	for i := range ops {
		n := 1 + r.Intn(maxDeg)
		clones := make([]vector.Vector, n)
		for k := range clones {
			clones[k] = vector.Of(r.Float64()*10, r.Float64()*10, r.Float64()*10)
		}
		ops[i] = &Op{ID: i, Clones: clones}
	}
	return ops
}

// BenchmarkOperatorSchedulePlacement isolates the Figure 3 placement
// loop (step 3) cost across system sizes. The P >= 100 cases are the
// ones the incremental site index must speed up; BENCH_sched.json at the
// repo root records the before/after numbers for this benchmark.
func BenchmarkOperatorSchedulePlacement(b *testing.B) {
	o := resource.MustOverlap(0.5)
	for _, pc := range []struct{ p, m, deg int }{
		{16, 64, 4},
		{100, 200, 8},
		{100, 400, 8},
		{256, 512, 8},
		{512, 1024, 8},
	} {
		ops := placementOps(7, pc.m, pc.deg)
		b.Run(fmt.Sprintf("P=%d/M=%d", pc.p, pc.m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := OperatorSchedule(pc.p, 3, o, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
