package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

func testScheduler(p int, eps, f float64) TreeScheduler {
	return TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(eps),
		P:       p,
		F:       f,
	}
}

func leaf(name string, tuples int) *query.PlanNode {
	return &query.PlanNode{
		Relation: &query.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

func join(outer, inner *query.PlanNode) *query.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &query.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func taskTree(t *testing.T, p *query.PlanNode) *plan.TaskTree {
	t.Helper()
	tt, err := plan.NewTaskTree(plan.MustExpand(p))
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestTreeSchedulerValidate(t *testing.T) {
	if err := testScheduler(10, 0.5, 0.7).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TreeScheduler{
		{Model: costmodel.Default(), P: 0, F: 0.7},
		{Model: costmodel.Default(), P: 10, F: -1},
		{Model: costmodel.Model{}, P: 10, F: 0.7}, // zero params invalid
	}
	for i, ts := range bad {
		if err := ts.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTreeScheduleSingleScan(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.7)
	s, err := ts.Schedule(taskTree(t, leaf("R", 10000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(s.Phases))
	}
	if len(s.Phases[0].Placements) != 1 {
		t.Fatalf("placements = %d, want 1", len(s.Phases[0].Placements))
	}
	pl := s.Phases[0].Placements[0]
	if pl.Degree < 1 || pl.Degree > 8 {
		t.Fatalf("degree = %d", pl.Degree)
	}
	if s.Response <= 0 || s.Response != s.Phases[0].Response {
		t.Fatalf("response = %g, phase = %g", s.Response, s.Phases[0].Response)
	}
}

func TestTreeScheduleProbeRootedAtBuildHome(t *testing.T) {
	p := join(join(leaf("A", 5000), leaf("B", 20000)), leaf("C", 9000))
	tt := taskTree(t, p)
	ts := testScheduler(12, 0.5, 0.7)
	s, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Op.BuildOp == nil {
				continue
			}
			checked++
			buildPl := s.Placement(pl.Op.BuildOp)
			if buildPl == nil {
				t.Fatalf("build of %s not scheduled", pl.Op.Name)
			}
			if !pl.Rooted {
				t.Errorf("probe %s not marked rooted", pl.Op.Name)
			}
			if !reflect.DeepEqual(pl.Sites, buildPl.Sites) {
				t.Errorf("probe %s sites %v != build sites %v",
					pl.Op.Name, pl.Sites, buildPl.Sites)
			}
			if pl.Degree != buildPl.Degree {
				t.Errorf("probe %s degree %d != build degree %d",
					pl.Op.Name, pl.Degree, buildPl.Degree)
			}
		}
	}
	if checked != 2 {
		t.Fatalf("checked %d probes, want 2", checked)
	}
}

func TestTreeScheduleResponseIsSumOfPhases(t *testing.T) {
	p := query.MustRandom(rand.New(rand.NewSource(17)), query.DefaultGenConfig(10))
	s, err := testScheduler(20, 0.3, 0.7).Schedule(taskTree(t, p))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, ph := range s.Phases {
		if ph.Response < 0 {
			t.Fatalf("negative phase response %g", ph.Response)
		}
		sum += ph.Response
	}
	if math.Abs(sum-s.Response) > 1e-9 {
		t.Fatalf("response %g != phase sum %g", s.Response, sum)
	}
}

func TestTreeSchedulePhaseCountIsHeightPlusOne(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		p := query.MustRandom(r, query.DefaultGenConfig(8+trial))
		tt := taskTree(t, p)
		s, err := testScheduler(16, 0.5, 0.7).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Phases) != tt.Height+1 {
			t.Fatalf("phases = %d, height+1 = %d", len(s.Phases), tt.Height+1)
		}
	}
}

func TestTreeScheduleDegreesRespectCaps(t *testing.T) {
	m := costmodel.Default()
	o := resource.MustOverlap(0.5)
	f := 0.5
	p := query.MustRandom(rand.New(rand.NewSource(8)), query.DefaultGenConfig(12))
	tt := taskTree(t, p)
	s, err := TreeScheduler{Model: m, Overlap: o, P: 10, F: f}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Degree < 1 || pl.Degree > 10 {
				t.Fatalf("%s degree %d outside [1, P]", pl.Op.Name, pl.Degree)
			}
			if pl.Rooted {
				continue // degree inherited from the build's home
			}
			cost := m.Cost(pl.Op.Spec)
			if pl.Degree > m.NMax(cost, f) {
				t.Fatalf("%s degree %d > N_max %d", pl.Op.Name, pl.Degree, m.NMax(cost, f))
			}
		}
	}
}

func TestTreeScheduleHomesRootScans(t *testing.T) {
	p := leaf("R", 50000)
	ot := plan.MustExpand(p)
	tt := plan.MustNewTaskTree(ot)
	ts := testScheduler(6, 0.5, 0.9)
	ts.Homes = map[int][]int{ot.Root.ID: {3, 1}}
	s, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	pl := s.Phases[0].Placements[0]
	if !pl.Rooted || !reflect.DeepEqual(pl.Sites, []int{3, 1}) {
		t.Fatalf("rooted scan placement: rooted=%v sites=%v", pl.Rooted, pl.Sites)
	}
	if pl.Degree != 2 {
		t.Fatalf("rooted degree = %d, want 2", pl.Degree)
	}
}

func TestTreeScheduleInvalidHomeRejected(t *testing.T) {
	p := leaf("R", 50000)
	ot := plan.MustExpand(p)
	tt := plan.MustNewTaskTree(ot)
	ts := testScheduler(4, 0.5, 0.9)
	ts.Homes = map[int][]int{ot.Root.ID: {99}}
	if _, err := ts.Schedule(tt); err == nil {
		t.Fatal("out-of-range home accepted")
	}
}

func TestTreeScheduleMoreSitesNeverMuchWorse(t *testing.T) {
	// Monotone improvement is not guaranteed for list scheduling, but on
	// an average workload a 4x larger system should never be slower.
	r := rand.New(rand.NewSource(23))
	p := query.MustRandom(r, query.DefaultGenConfig(20))
	tt := taskTree(t, p)
	small, err := testScheduler(10, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	big, err := testScheduler(40, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if big.Response > small.Response*1.001 {
		t.Fatalf("P=40 response %g worse than P=10 response %g",
			big.Response, small.Response)
	}
}

func TestTreeScheduleLargerFNotSlower(t *testing.T) {
	// Averaged over several plans, growing f (more allowed parallelism)
	// must not hurt: the degree caps only widen.
	r := rand.New(rand.NewSource(31))
	sum03, sum09 := 0.0, 0.0
	for trial := 0; trial < 5; trial++ {
		p := query.MustRandom(r, query.DefaultGenConfig(15))
		tt := taskTree(t, p)
		s03, err := testScheduler(30, 0.3, 0.3).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		s09, err := testScheduler(30, 0.3, 0.9).Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		sum03 += s03.Response
		sum09 += s09.Response
	}
	if sum09 > sum03*1.01 {
		t.Fatalf("f=0.9 total %g worse than f=0.3 total %g", sum09, sum03)
	}
}

func TestTreeScheduleEveryOperatorPlacedOnce(t *testing.T) {
	p := query.MustRandom(rand.New(rand.NewSource(41)), query.DefaultGenConfig(14))
	ot := plan.MustExpand(p)
	tt := plan.MustNewTaskTree(ot)
	s, err := testScheduler(25, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	placed := map[int]int{}
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			placed[pl.Op.ID]++
		}
	}
	if len(placed) != len(ot.Ops) {
		t.Fatalf("placed %d operators, plan has %d", len(placed), len(ot.Ops))
	}
	for id, n := range placed {
		if n != 1 {
			t.Fatalf("operator %d placed %d times", id, n)
		}
	}
}

func TestScheduleResponseScalesDownWithSites(t *testing.T) {
	// Sanity on magnitudes: a 40-join query on 80 sites should be much
	// faster than on a single site... with P=1 every operator is serial.
	p := query.MustRandom(rand.New(rand.NewSource(55)), query.DefaultGenConfig(40))
	tt := taskTree(t, p)
	s1, err := testScheduler(1, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	s80, err := testScheduler(80, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	if s80.Response >= s1.Response/4 {
		t.Fatalf("no meaningful speedup: P=1 %g, P=80 %g", s1.Response, s80.Response)
	}
}

func BenchmarkTreeSchedule40Joins80Sites(b *testing.B) {
	p := query.MustRandom(rand.New(rand.NewSource(1)), query.DefaultGenConfig(40))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	ts := testScheduler(80, 0.5, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.Schedule(tt); err != nil {
			b.Fatal(err)
		}
	}
}
