package sched

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mdrs/internal/plan"
	"mdrs/internal/query"
)

func renderSchedule(t *testing.T) *Schedule {
	t.Helper()
	r := rand.New(rand.NewSource(61))
	p := query.MustRandom(r, query.DefaultGenConfig(8))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	s, err := testScheduler(10, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStatsAccounting(t *testing.T) {
	s := renderSchedule(t)
	st := s.Stats()
	if st.Clones == 0 {
		t.Fatal("no clones counted")
	}
	if len(st.PhaseUtilization) != len(s.Phases) {
		t.Fatalf("phase utilization count %d != %d", len(st.PhaseUtilization), len(s.Phases))
	}
	// Utilization on each resource lies in (0, 1]: no resource can be
	// busier than the full system for the whole response time.
	for i, u := range st.Utilization {
		if u <= 0 || u > 1+1e-9 {
			t.Fatalf("utilization[%d] = %g", i, u)
		}
	}
	// TotalWork must equal the sum over phases of per-phase work.
	sum := 0.0
	for pi, u := range st.PhaseUtilization {
		for i := range u {
			sum += u[i] * float64(s.P) * s.Phases[pi].Response
		}
	}
	if math.Abs(sum-st.TotalWork.Sum()) > 1e-6 {
		t.Fatalf("phase work %g != total %g", sum, st.TotalWork.Sum())
	}
}

func TestStatsEmptySchedule(t *testing.T) {
	st := (&Schedule{P: 4}).Stats()
	if st.Clones != 0 || st.TotalWork.Sum() != 0 {
		t.Fatalf("empty schedule stats: %+v", st)
	}
}

func TestWriteTextRendering(t *testing.T) {
	s := renderSchedule(t)
	var sb strings.Builder
	if err := WriteText(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"schedule:", "utilization:", "phase 0", "site"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out[:200])
		}
	}
	// One bar row per site per phase.
	if got := strings.Count(out, "site "); got != s.P*len(s.Phases) {
		t.Fatalf("bar rows = %d, want %d", got, s.P*len(s.Phases))
	}
}

func TestEncodeJSONRoundTrip(t *testing.T) {
	s := renderSchedule(t)
	data, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Response float64 `json:"response_seconds"`
		Sites    int     `json:"sites"`
		Phases   []struct {
			Placements []struct {
				Operator string      `json:"operator"`
				Degree   int         `json:"degree"`
				Sites    []int       `json:"sites"`
				Clones   [][]float64 `json:"clone_work_vectors"`
			} `json:"placements"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if math.Abs(decoded.Response-s.Response) > 1e-12 || decoded.Sites != s.P {
		t.Fatalf("header mismatch: %+v", decoded)
	}
	if len(decoded.Phases) != len(s.Phases) {
		t.Fatalf("phases %d != %d", len(decoded.Phases), len(s.Phases))
	}
	for pi, ph := range decoded.Phases {
		for qi, pl := range ph.Placements {
			orig := s.Phases[pi].Placements[qi]
			if pl.Operator != orig.Op.Name || pl.Degree != orig.Degree {
				t.Fatalf("placement mismatch at %d/%d", pi, qi)
			}
			if len(pl.Sites) != pl.Degree || len(pl.Clones) != pl.Degree {
				t.Fatalf("degree inconsistency at %d/%d", pi, qi)
			}
		}
	}
}
