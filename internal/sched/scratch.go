package sched

// scratch holds the placement loop's reusable working memory. One
// TreeSchedule (or ScheduleBatch) run allocates a single scratch and
// threads it through every phase's operatorSchedule call, so the
// per-phase cost of the ban sets, the clone list, and the site index is
// a handful of slice clears instead of fresh heap allocations — the
// schedulers' outputs (Result.Sites, placements, the loaded System)
// still get their own memory, because they escape to the caller.
//
// A scratch is single-threaded state: each scheduling call owns its
// own. The zero value is ready to use.
type scratch struct {
	// list is the step-2 clone list L, reused between phases.
	list []item
	// bans is the flattened ban matrix: floating operator i's row is
	// bans[i*p : (i+1)*p], true marking a site already holding one of
	// the operator's clones. Rows are cleared on reuse.
	bans []bool
	// ix is the incremental site-load index rebuilt each call from the
	// post-rooted system state; its order/pos slices are reused.
	ix siteIndex
	// ids detects duplicate operator IDs during validation.
	ids map[int]bool
	// homeSeen detects duplicate home sites in Op.validate: entry s
	// equals gen when site s was seen for the operator currently being
	// validated. The generation trick makes per-operator reset O(1).
	homeSeen []int
	gen      int
	// jobs/prep carry one phase's cost-preparation fan-out (parallel.go):
	// the job list built serially in operator order and the index-aligned
	// results the pool writes. Reused between phases.
	jobs []prepJob
	prep []prepOut
	// keys is the sharded picker's flat per-site key array, reused when
	// consecutive phases of one run take the sharded path.
	keys []siteKey
}

// item is one floating clone vector on the step-2 list.
type item struct {
	op    *Op
	clone int
	len   float64
	// bans is the operator's ban row, shared by all the operator's
	// items; carrying it here keeps step 3 free of per-pick lookups.
	bans []bool
}

// resetIDs prepares the duplicate-ID set for a validation pass.
func (sc *scratch) resetIDs(n int) {
	if sc.ids == nil {
		sc.ids = make(map[int]bool, n)
		return
	}
	clear(sc.ids)
}

// nextGen starts a fresh home-distinctness generation over p sites.
func (sc *scratch) nextGen(p int) int {
	if len(sc.homeSeen) < p {
		sc.homeSeen = make([]int, p)
		sc.gen = 0
	}
	sc.gen++
	return sc.gen
}

// banRows returns the cleared flattened ban matrix for rows operators
// over p sites.
func (sc *scratch) banRows(rows, p int) []bool {
	n := rows * p
	if cap(sc.bans) < n {
		sc.bans = make([]bool, n)
		return sc.bans
	}
	sc.bans = sc.bans[:n]
	for i := range sc.bans {
		sc.bans[i] = false
	}
	return sc.bans
}

// cloneList returns the empty step-2 list with capacity for n items.
func (sc *scratch) cloneList(n int) []item {
	if cap(sc.list) < n {
		sc.list = make([]item, 0, n)
	}
	return sc.list[:0]
}

// prepJobs returns the empty cost-preparation job list with capacity
// for n jobs.
func (sc *scratch) prepJobs(n int) []prepJob {
	if cap(sc.jobs) < n {
		sc.jobs = make([]prepJob, 0, n)
	}
	return sc.jobs[:0]
}

// prepOuts returns a zeroed result slice for n preparation jobs. The
// zeroing matters: stale pointers from a previous phase must not leak
// into a phase whose pool writes fail or race-free-but-partial tests
// inspect the slice.
func (sc *scratch) prepOuts(n int) []prepOut {
	if cap(sc.prep) < n {
		sc.prep = make([]prepOut, n)
		return sc.prep
	}
	sc.prep = sc.prep[:n]
	for i := range sc.prep {
		sc.prep[i] = prepOut{}
	}
	return sc.prep
}

// shardKeys returns the sharded picker's key array for p sites. Every
// entry is overwritten by newShardedPicker, so no clearing is needed.
func (sc *scratch) shardKeys(p int) []siteKey {
	if cap(sc.keys) < p {
		sc.keys = make([]siteKey, p)
	}
	return sc.keys[:p]
}
