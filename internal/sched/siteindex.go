// The incremental site-load index behind OperatorSchedule's placement
// step. The Figure 3 rule places every floating clone on the allowable
// site minimizing (l(work(s)), Σ work(s), site id) lexicographically;
// the naive form rescans all P sites per clone, O(n·P) probes with an
// O(d) load reduction each. The index keeps the sites in a slice sorted
// by exactly that key, so one placement is a prefix walk that skips the
// operator's banned sites (usually O(ban set) work) followed by an
// ordered re-insertion of the single site whose key grew. The walk
// degrades to the full scan only when the operator's ban set covers the
// entire index prefix — the same worst case the scan always paid.
package sched

import (
	"slices"

	"mdrs/internal/resource"
)

// siteKey is the placement ordering key of one site. Keys only grow
// while a schedule is being built (Assign adds non-negative work).
type siteKey struct {
	l   float64 // l(work(s)): max-component of the accumulated load
	sum float64 // Σ work(s): total accumulated load over all resources
	id  int     // site index, the final deterministic tie-break
}

// keyLess is the single lexicographic (l, sum, id) comparison used by
// every placement decision. Comparing exactly (no epsilon band) keeps
// the rule a strict weak ordering: the chosen site is always the true
// argmin, and equal keys cannot chain into a drifting "tie" the way the
// old ±tieEps window could.
func keyLess(a, b siteKey) bool {
	if a.l != b.l {
		return a.l < b.l
	}
	if a.sum != b.sum {
		return a.sum < b.sum
	}
	return a.id < b.id
}

// siteIndex maintains all P sites in ascending (l, sum, id) order.
type siteIndex struct {
	order []siteKey // sites sorted ascending by keyLess
	pos   []int     // pos[id] = current index of site id in order
}

// newSiteIndex snapshots the system's current loads (rooted operators
// are already placed when the floating pass starts).
func newSiteIndex(sys *resource.System) *siteIndex {
	ix := &siteIndex{}
	return ix.reset(sys)
}

// reset rebuilds the index over the system's current loads, reusing the
// receiver's slices when they are large enough (the scratch path).
func (ix *siteIndex) reset(sys *resource.System) *siteIndex {
	p := sys.P()
	if cap(ix.order) < p {
		ix.order = make([]siteKey, p)
		ix.pos = make([]int, p)
	}
	ix.order = ix.order[:p]
	ix.pos = ix.pos[:p]
	for j := 0; j < p; j++ {
		s := sys.Site(j)
		ix.order[j] = siteKey{l: s.LoadLength(), sum: s.LoadSum(), id: j}
	}
	// Strict total order (ids are distinct), so any correct sort yields
	// the same permutation.
	slices.SortFunc(ix.order, func(a, b siteKey) int {
		if keyLess(a, b) {
			return -1
		}
		return 1
	})
	for i, k := range ix.order {
		ix.pos[k.id] = i
	}
	return ix
}

// pick returns the least-key site whose id is not banned, or -1 if the
// ban set covers every site. The ban set is a site-indexed []bool row
// of the scratch's flattened matrix.
func (ix *siteIndex) pick(bans []bool) int {
	for _, k := range ix.order {
		if !bans[k.id] {
			return k.id
		}
	}
	return -1
}

// pickSkips is pick plus the number of better-keyed sites the walk
// skipped because the ban set held them — the "ban-set hit" count of
// the decision trace. Kept separate from pick so the untraced hot path
// does not carry the extra counter.
func (ix *siteIndex) pickSkips(bans []bool) (site, skipped int) {
	for _, k := range ix.order {
		if bans[k.id] {
			skipped++
			continue
		}
		return k.id, skipped
	}
	return -1, skipped
}

// update re-keys site id after new work was assigned to it. The key can
// only have grown, so the site bubbles toward the back of the order; the
// shift distance is the number of sites it overtakes.
func (ix *siteIndex) update(sys *resource.System, id int) {
	s := sys.Site(id)
	k := siteKey{l: s.LoadLength(), sum: s.LoadSum(), id: id}
	i := ix.pos[id]
	for i+1 < len(ix.order) && keyLess(ix.order[i+1], k) {
		ix.order[i] = ix.order[i+1]
		ix.pos[ix.order[i].id] = i
		i++
	}
	ix.order[i] = k
	ix.pos[id] = i
}

// pickScan is the reference linear scan over all sites with the same
// (l, sum, id) ordering. operatorSchedule uses the index; this is kept
// as the oracle the equivalence tests check the index against.
func pickScan(sys *resource.System, bans []bool) int {
	best := -1
	var bestKey siteKey
	for j := 0; j < sys.P(); j++ {
		if bans[j] {
			continue
		}
		s := sys.Site(j)
		k := siteKey{l: s.LoadLength(), sum: s.LoadSum(), id: j}
		if best < 0 || keyLess(k, bestKey) {
			best, bestKey = j, k
		}
	}
	return best
}
