package sched

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
)

// parWorkersGrid is the pool widths every identity test sweeps: the
// forced-serial path, small pools, and pools wider than the host.
var parWorkersGrid = []int{1, 2, 4, 8}

func parTree(t testing.TB, seed int64, joins int) *plan.TaskTree {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := query.MustRandom(r, query.DefaultGenConfig(joins))
	return plan.MustNewTaskTree(plan.MustExpand(p))
}

func TestShardWorkersClamp(t *testing.T) {
	cases := []struct{ workers, p, want int }{
		{8, 512, 8},    // wide system: no clamp
		{8, 256, 8},    // exactly 32 sites per shard
		{8, 128, 4},    // thin shards: halve the pool
		{8, 40, 1},     // 40/32 = 1: forced serial
		{1, 100000, 1}, // explicit serial stays serial
		{16, 300, 9},   // clamp to P/shardMinPerWorker
	}
	for _, c := range cases {
		if got := shardWorkers(c.workers, c.p); got != c.want {
			t.Errorf("shardWorkers(%d, %d) = %d, want %d", c.workers, c.p, got, c.want)
		}
	}
}

// The tentpole invariant: TreeSchedule output is byte-identical for
// every Workers value, with and without a cost cache, at system sizes
// on both sides of the sharded-argmin gate.
func TestTreeScheduleWorkersInvariance(t *testing.T) {
	for _, p := range []int{16, 300, 512} {
		for _, joins := range []int{6, 12, 18} {
			tt := parTree(t, int64(100*p+joins), joins)
			for _, cached := range []bool{false, true} {
				ts := TreeScheduler{Model: costmodel.Default(), Overlap: resource.MustOverlap(0.5), P: p, F: 0.7}
				if cached {
					ts.Cache = costmodel.NewCache(ts.Model)
				}
				ts.Workers = 1
				ref, err := ts.Schedule(tt)
				if err != nil {
					t.Fatalf("P=%d joins=%d: %v", p, joins, err)
				}
				refJSON, err := EncodeJSON(ref)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range append([]int{0}, parWorkersGrid[1:]...) {
					ts.Workers = w
					s, err := ts.Schedule(tt)
					if err != nil {
						t.Fatalf("P=%d joins=%d workers=%d: %v", p, joins, w, err)
					}
					got, err := EncodeJSON(s)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, refJSON) {
						t.Fatalf("P=%d joins=%d cached=%v: workers=%d schedule differs from workers=1",
							p, joins, cached, w)
					}
				}
			}
		}
	}
}

// Same invariant for ScheduleBatch, whose preparation fan-out spans all
// batch entries of a global phase (including a repeated tree, the PR 3
// aliasing case).
func TestScheduleBatchWorkersInvariance(t *testing.T) {
	shared := parTree(t, 7, 10)
	trees := []*plan.TaskTree{
		parTree(t, 3, 8),
		shared,
		parTree(t, 5, 14),
		shared,
	}
	for _, p := range []int{24, 300} {
		ts := TreeScheduler{Model: costmodel.Default(), Overlap: resource.MustOverlap(0.4), P: p, F: 0.7, Workers: 1}
		ref, err := ts.ScheduleBatch(trees)
		if err != nil {
			t.Fatal(err)
		}
		refJSON, err := EncodeJSON(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range parWorkersGrid[1:] {
			ts.Workers = w
			s, err := ts.ScheduleBatch(trees)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EncodeJSON(s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refJSON) {
				t.Fatalf("P=%d workers=%d: batch schedule differs from workers=1", p, w)
			}
		}
	}
}

// Direct sharded-vs-serial check on operatorSchedule, past the gate and
// with rooted operators in the mix: identical site assignments and
// response for every pool width.
func TestOperatorScheduleShardedMatchesSerial(t *testing.T) {
	for _, p := range []int{256, 384, 512} {
		r := rand.New(rand.NewSource(int64(p)))
		ops := randomOps(r, 40, 64, 3)
		// Root a few operators at random distinct sites.
		for i := 0; i < 5; i++ {
			op := ops[i*7]
			perm := r.Perm(p)
			op.Home = append([]int(nil), perm[:len(op.Clones)]...)
		}
		ref, err := operatorSchedule(context.Background(), p, 3, ov(0.5), ops, true, nil, 0, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range parWorkersGrid[1:] {
			got, err := operatorSchedule(context.Background(), p, 3, ov(0.5), ops, true, nil, 0, nil, w)
			if err != nil {
				t.Fatal(err)
			}
			if got.Response != ref.Response {
				t.Fatalf("P=%d workers=%d: response %g != %g", p, w, got.Response, ref.Response)
			}
			if !reflect.DeepEqual(got.Sites, ref.Sites) {
				t.Fatalf("P=%d workers=%d: site assignment differs", p, w)
			}
		}
	}
}

// The decision trace must be byte-identical too: the sharded path's
// skip counting and event emission reproduce the serial walk exactly,
// down to sequence numbers.
func TestShardedTraceIdenticalToSerial(t *testing.T) {
	tt := parTree(t, 11, 14)
	traces := make([][]obs.Event, 2)
	for i, w := range []int{1, 8} {
		cap := obs.NewCapture()
		ts := TreeScheduler{
			Model: costmodel.Default(), Overlap: resource.MustOverlap(0.5),
			P: 300, F: 0.7, Rec: cap, Workers: w,
		}
		if _, err := ts.Schedule(tt); err != nil {
			t.Fatal(err)
		}
		traces[i] = cap.Events()
	}
	if len(traces[0]) == 0 {
		t.Fatal("no events captured")
	}
	if !reflect.DeepEqual(traces[0], traces[1]) {
		if len(traces[0]) != len(traces[1]) {
			t.Fatalf("event counts differ: %d vs %d", len(traces[0]), len(traces[1]))
		}
		for i := range traces[0] {
			if traces[0][i] != traces[1][i] {
				t.Fatalf("event %d differs:\nserial:  %+v\nsharded: %+v", i, traces[0][i], traces[1][i])
			}
		}
	}
}

// The pool must actually engage: with Workers > 1 on a P ≥ shardMinSites
// system both the parallel prepare counter and the sharded pick counter
// appear in the metrics.
func TestParallelCountersRecorded(t *testing.T) {
	tt := parTree(t, 21, 12)
	met := obs.NewMetrics()
	ts := TreeScheduler{
		Model: costmodel.Default(), Overlap: resource.MustOverlap(0.5),
		P: 300, F: 0.7, Rec: met, Workers: 4,
	}
	if _, err := ts.Schedule(tt); err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	if snap.Counters["sched.par.prepare_ops_parallel"] == 0 {
		t.Errorf("prepare_ops_parallel not counted: %v", snap.Counters)
	}
	if snap.Counters["sched.par.picks_sharded"] == 0 {
		t.Errorf("picks_sharded not counted: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["sched.par.workers"]; !ok {
		t.Error("sched.par.workers histogram missing")
	}

	// And on a small system the serial pick counter appears instead.
	met2 := obs.NewMetrics()
	ts.P, ts.Rec = 16, met2
	if _, err := ts.Schedule(tt); err != nil {
		t.Fatal(err)
	}
	snap2 := met2.Snapshot()
	if snap2.Counters["sched.par.picks_serial"] == 0 {
		t.Errorf("picks_serial not counted below the gate: %v", snap2.Counters)
	}
	if snap2.Counters["sched.par.picks_sharded"] != 0 {
		t.Errorf("picks_sharded counted below the gate: %v", snap2.Counters)
	}
}

// Race hammer (run under -race via the Makefile par-race gate): many
// concurrent ScheduleCtx calls with Workers=4 on a shared cache, a
// fraction cancelled mid-placement. Completed runs must be byte-equal
// to the reference; cancelled runs must return ctx.Err().
func TestScheduleCtxParallelHammer(t *testing.T) {
	tt := parTree(t, 31, 16)
	model := costmodel.Default()
	cache := costmodel.NewCache(model)
	mk := func() TreeScheduler {
		return TreeScheduler{
			Model: model, Overlap: resource.MustOverlap(0.5),
			P: 300, F: 0.7, Cache: cache, Workers: 4,
		}
	}
	ref, err := mk().Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := EncodeJSON(ref)
	if err != nil {
		t.Fatal(err)
	}

	const calls = 24
	var wg sync.WaitGroup
	errCh := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			cancelled := i%3 == 0
			if cancelled {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*50*time.Microsecond)
				defer cancel()
			}
			s, err := mk().ScheduleCtx(ctx, tt)
			switch {
			case err != nil:
				if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					errCh <- err
				}
			default:
				got, err := EncodeJSON(s)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, refJSON) {
					errCh <- errors.New("concurrent schedule differs from reference")
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
