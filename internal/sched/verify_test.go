package sched

import (
	"math/rand"
	"strings"
	"testing"

	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

func verifiableSchedule(t *testing.T, seed int64, joins, p int) (*Schedule, resource.Overlap) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pl := query.MustRandom(r, query.DefaultGenConfig(joins))
	tt := plan.MustNewTaskTree(plan.MustExpand(pl))
	ov := resource.MustOverlap(0.5)
	s, err := testScheduler(p, 0.5, 0.7).Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	return s, ov
}

func TestVerifyAcceptsTreeSchedules(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s, ov := verifiableSchedule(t, seed, 6+int(seed), 4+int(seed)*2)
		if err := Verify(s, ov); err != nil {
			t.Fatalf("seed %d: valid schedule rejected: %v", seed, err)
		}
	}
}

func TestVerifyAcceptsBatchSchedules(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.7)
	var trees []*plan.TaskTree
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		pl := query.MustRandom(r, query.DefaultGenConfig(6))
		trees = append(trees, plan.MustNewTaskTree(plan.MustExpand(pl)))
	}
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(batch, resource.MustOverlap(0.5)); err != nil {
		t.Fatalf("batch schedule rejected: %v", err)
	}
}

func TestVerifyRejectsNilAndEmpty(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	if err := Verify(nil, ov); err == nil {
		t.Error("nil schedule accepted")
	}
	if err := Verify(&Schedule{P: 0}, ov); err == nil {
		t.Error("P = 0 accepted")
	}
}

func TestVerifyDetectsCorruptions(t *testing.T) {
	ov := resource.MustOverlap(0.5)
	corruptions := []struct {
		name    string
		mutate  func(s *Schedule)
		keyword string
	}{
		{
			"response tampered",
			func(s *Schedule) { s.Response *= 2 },
			"phase sum",
		},
		{
			"phase response tampered",
			func(s *Schedule) { s.Phases[0].Response += 1 },
			"Equation 3",
		},
		{
			"clone moved off its home",
			func(s *Schedule) {
				// Move a probe clone away from the build's site.
				for _, ph := range s.Phases {
					for _, pl := range ph.Placements {
						if pl.Op.BuildOp != nil {
							pl.Sites[0] = (pl.Sites[0] + 1) % s.P
							return
						}
					}
				}
			},
			"", // any error is acceptable (hash table or Equation 3 drift)
		},
		{
			"two clones on one site",
			func(s *Schedule) {
				for _, ph := range s.Phases {
					for _, pl := range ph.Placements {
						if pl.Degree >= 2 && pl.Op.BuildOp == nil {
							pl.Sites[1] = pl.Sites[0]
							return
						}
					}
				}
			},
			"",
		},
		{
			"negative clone work",
			func(s *Schedule) { s.Phases[0].Placements[0].Clones[0][0] = -1 },
			"",
		},
		{
			"site out of range",
			func(s *Schedule) { s.Phases[0].Placements[0].Sites[0] = 999 },
			"outside",
		},
		{
			"operator duplicated across phases",
			func(s *Schedule) {
				s.Phases[1].Placements = append(s.Phases[1].Placements,
					s.Phases[0].Placements[0])
			},
			"twice",
		},
	}
	for _, c := range corruptions {
		s, _ := verifiableSchedule(t, 99, 8, 8)
		if err := Verify(s, ov); err != nil {
			t.Fatalf("%s: pristine schedule rejected: %v", c.name, err)
		}
		c.mutate(s)
		err := Verify(s, ov)
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
			continue
		}
		if c.keyword != "" && !strings.Contains(err.Error(), c.keyword) {
			t.Errorf("%s: error %q missing keyword %q", c.name, err, c.keyword)
		}
	}
}

// Property: for any random plan and configuration, TreeSchedule's
// output passes full verification — the strongest end-to-end invariant
// in the suite.
func TestQuickTreeScheduleAlwaysVerifies(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		joins := 1 + r.Intn(20)
		p := 1 + r.Intn(40)
		eps := r.Float64()
		f := r.Float64() * 1.2
		pl := query.MustRandom(r, query.DefaultGenConfig(joins))
		tt := plan.MustNewTaskTree(plan.MustExpand(pl))
		ts := testScheduler(p, eps, f)
		if r.Intn(2) == 0 {
			ts.Policy = plan.EarliestShelf
		}
		s, err := ts.Schedule(tt)
		if err != nil {
			t.Fatalf("seed %d (J=%d P=%d ε=%.2f f=%.2f): %v", seed, joins, p, eps, f, err)
		}
		if err := Verify(s, resource.MustOverlap(eps)); err != nil {
			t.Fatalf("seed %d (J=%d P=%d ε=%.2f f=%.2f): %v", seed, joins, p, eps, f, err)
		}
	}
}

// Property: random batches verify too.
func TestQuickBatchAlwaysVerifies(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed + 100))
		p := 2 + r.Intn(20)
		eps := r.Float64()
		ts := testScheduler(p, eps, 0.7)
		var trees []*plan.TaskTree
		for q := 0; q < 1+r.Intn(4); q++ {
			pl := query.MustRandom(r, query.DefaultGenConfig(1+r.Intn(10)))
			trees = append(trees, plan.MustNewTaskTree(plan.MustExpand(pl)))
		}
		s, err := ts.ScheduleBatch(trees)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Verify(s, resource.MustOverlap(eps)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestVerifyAcceptsSynchronousShapedSchedules(t *testing.T) {
	// Verify is model-based, not scheduler-based: any placement obeying
	// the invariants passes, including hand-built ones.
	ov := resource.MustOverlap(1)
	s := &Schedule{P: 2}
	ph := &PhaseSchedule{Index: 0}
	op := &plan.Operator{ID: 0, Name: "scan(X)"}
	ph.Placements = append(ph.Placements, &OpPlacement{
		Op:     op,
		Degree: 2,
		Sites:  []int{0, 1},
		Clones: []vector.Vector{vector.Of(1, 0, 0), vector.Of(1, 0, 0)},
	})
	ph.Response = 1
	s.Phases = []*PhaseSchedule{ph}
	s.Response = 1
	if err := Verify(s, ov); err != nil {
		t.Fatalf("hand-built schedule rejected: %v", err)
	}
}
