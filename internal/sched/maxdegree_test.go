package sched

import (
	"bytes"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
)

// MaxDegree is a semantic input — it clamps every floating operator's
// degree — so it must participate in the fingerprint, unlike Workers:
// a schedule cached under one cap must never answer a request under
// another.
func TestFingerprintIncludesMaxDegree(t *testing.T) {
	ts := fpScheduler()
	tt := fpTree(7, 6)
	base := ts.Fingerprint(tt)

	capped := ts
	capped.MaxDegree = 2
	if capped.Fingerprint(tt) == base {
		t.Fatal("MaxDegree 2 shares the uncapped fingerprint")
	}
	other := ts
	other.MaxDegree = 3
	if other.Fingerprint(tt) == capped.Fingerprint(tt) {
		t.Fatal("different caps share a fingerprint")
	}
	// Workers stays excluded even alongside a cap: pool width changes
	// wall-clock time, never bytes.
	wide := capped
	wide.Workers = 7
	if wide.Fingerprint(tt) != capped.Fingerprint(tt) {
		t.Fatal("Workers changed a capped fingerprint")
	}
}

func TestValidateRejectsNegativeMaxDegree(t *testing.T) {
	ts := fpScheduler()
	ts.MaxDegree = -1
	if err := ts.Validate(); err == nil {
		t.Fatal("negative MaxDegree validated")
	}
}

// Capped schedules are deterministic per cap (byte-identical across
// repeated runs, including parallel ones), respect the cap on every
// floating operator, and leave rooted operators' fixed homes alone.
// A cap at or above P is inert: byte-identical to the uncapped run.
func TestMaxDegreeClampsDeterministically(t *testing.T) {
	ts := fpScheduler()
	ts.Cache = costmodel.NewCache(ts.Model)
	tt := fpTree(11, 8)

	encode := func(s *Schedule) []byte {
		t.Helper()
		data, err := EncodeJSON(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	schedule := func(cap, workers int) []byte {
		t.Helper()
		c := ts
		c.MaxDegree = cap
		c.Workers = workers
		s, err := c.Schedule(fpTree(11, 8))
		if err != nil {
			t.Fatal(err)
		}
		for _, ph := range s.Phases {
			for _, pl := range ph.Placements {
				if cap > 0 && !pl.Rooted && pl.Degree > cap {
					t.Fatalf("cap %d: floating operator %d scheduled at degree %d",
						cap, pl.Op.ID, pl.Degree)
				}
			}
		}
		return encode(s)
	}

	uncapped := schedule(0, 1)
	if got := schedule(ts.P, 1); !bytes.Equal(got, uncapped) {
		t.Fatal("cap = P changed the schedule bytes")
	}
	for _, cap := range []int{1, 2, 3, 5} {
		first := schedule(cap, 1)
		if bytes.Equal(first, uncapped) && maxFloatingDegree(t, ts, tt) > cap {
			t.Fatalf("cap %d left the schedule identical to uncapped", cap)
		}
		if again := schedule(cap, 1); !bytes.Equal(again, first) {
			t.Fatalf("cap %d: repeated schedule differs", cap)
		}
		if par := schedule(cap, 4); !bytes.Equal(par, first) {
			t.Fatalf("cap %d: parallel schedule differs from serial", cap)
		}
	}
}

// maxFloatingDegree reports the largest floating-operator degree of the
// uncapped schedule, so the clamp test only demands a byte difference
// when the cap actually bites.
func maxFloatingDegree(t *testing.T, ts TreeScheduler, tt *plan.TaskTree) int {
	t.Helper()
	s, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if !pl.Rooted && pl.Degree > max {
				max = pl.Degree
			}
		}
	}
	return max
}
