package sched

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// The golden corpus pins OperatorSchedule's exact output — every site
// assignment and the Response float, bit for bit — across a spread of
// random instances. It exists so that performance work on the placement
// loop (cached site loads, the ordered site index) can be proven
// behavior-preserving: regenerating the file on an implementation that
// places even one clone differently fails this test.
//
// Regenerate intentionally with:
//
//	go test ./internal/sched -run TestOperatorScheduleGolden -update-golden
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_schedules.json from the current implementation")

const goldenPath = "testdata/golden_schedules.json"

// goldenCase is one recorded schedule. Site maps use string keys because
// JSON objects require them.
type goldenCase struct {
	Seed     int64            `json:"seed"`
	P        int              `json:"p"`
	D        int              `json:"d"`
	Eps      float64          `json:"eps"`
	Sorted   bool             `json:"sorted"`
	Sites    map[string][]int `json:"sites"`
	Response float64          `json:"response"`
}

// goldenOps deterministically rebuilds the operator set for one corpus
// seed: random degrees and work vectors, every third operator rooted on
// odd seeds (mirroring the quick-check test generators).
func goldenOps(seed int64) (p, d int, eps float64, ops []*Op) {
	r := rand.New(rand.NewSource(seed))
	p = 1 + r.Intn(12)
	d = 1 + r.Intn(4)
	m := 1 + r.Intn(10)
	eps = r.Float64()
	ops = randomOps(r, m, p, d)
	if seed%2 == 1 {
		for i, op := range ops {
			if i%3 != 0 {
				continue
			}
			perm := r.Perm(p)
			op.Home = append([]int(nil), perm[:len(op.Clones)]...)
		}
	}
	return p, d, eps, ops
}

// computeGolden runs the current implementation over the whole corpus:
// 60 small mixed instances plus two production-sized ones (P = 100 and
// P = 150), each in sorted and arrival order.
func computeGolden(t *testing.T) []goldenCase {
	t.Helper()
	var cases []goldenCase
	run := func(seed int64, p, d int, eps float64, ops []*Op, sorted bool) {
		var (
			res *Result
			err error
		)
		if sorted {
			res, err = OperatorSchedule(p, d, resource.MustOverlap(eps), ops)
		} else {
			res, err = OperatorScheduleUnordered(p, d, resource.MustOverlap(eps), ops)
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sites := make(map[string][]int, len(res.Sites))
		for id, s := range res.Sites {
			sites[strconv.Itoa(id)] = s
		}
		cases = append(cases, goldenCase{
			Seed: seed, P: p, D: d, Eps: eps, Sorted: sorted,
			Sites: sites, Response: res.Response,
		})
	}
	for seed := int64(0); seed < 60; seed++ {
		p, d, eps, ops := goldenOps(seed)
		run(seed, p, d, eps, ops, true)
		run(seed, p, d, eps, ops, false)
	}
	for _, big := range []struct {
		seed int64
		p, m int
	}{{1000, 100, 200}, {1001, 150, 400}} {
		r := rand.New(rand.NewSource(big.seed))
		ops := make([]*Op, big.m)
		for i := range ops {
			n := 1 + r.Intn(8)
			clones := make([]vector.Vector, n)
			for k := range clones {
				clones[k] = vector.Of(r.Float64()*10, r.Float64()*10, r.Float64()*10)
			}
			ops[i] = &Op{ID: i, Clones: clones}
		}
		run(big.seed, big.p, 3, 0.5, ops, true)
	}
	return cases
}

func TestOperatorScheduleGolden(t *testing.T) {
	got := computeGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden corpus (run with -update-golden to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("corpus size changed: %d cases, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Response != want[i].Response {
			t.Errorf("case %d (seed %d, sorted %v): response %v != golden %v",
				i, want[i].Seed, want[i].Sorted, got[i].Response, want[i].Response)
		}
		if !reflect.DeepEqual(got[i].Sites, want[i].Sites) {
			t.Errorf("case %d (seed %d, sorted %v): site maps diverge\n got %v\nwant %v",
				i, want[i].Seed, want[i].Sorted, got[i].Sites, want[i].Sites)
		}
	}
}
