package sched

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
)

func batchTrees(t *testing.T, seeds ...int64) []*plan.TaskTree {
	t.Helper()
	trees := make([]*plan.TaskTree, len(seeds))
	for i, seed := range seeds {
		r := rand.New(rand.NewSource(seed))
		p := query.MustRandom(r, query.DefaultGenConfig(8))
		trees[i] = plan.MustNewTaskTree(plan.MustExpand(p))
	}
	return trees
}

func TestScheduleBatchValidation(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.7)
	if _, err := ts.ScheduleBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	bad := ts
	bad.P = 0
	if _, err := bad.ScheduleBatch(batchTrees(t, 1)); err == nil {
		t.Error("invalid scheduler accepted")
	}
}

func TestScheduleBatchSingleMatchesSchedule(t *testing.T) {
	ts := testScheduler(12, 0.5, 0.7)
	trees := batchTrees(t, 5)
	single, err := ts.Schedule(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.Response-batch.Response) > 1e-9 {
		t.Fatalf("batch of one %g != single %g", batch.Response, single.Response)
	}
}

func TestScheduleBatchSharesResources(t *testing.T) {
	// The whole point: scheduling Q queries together must beat running
	// them back to back, because phases share sites across queries.
	ts := testScheduler(24, 0.5, 0.7)
	trees := batchTrees(t, 1, 2, 3, 4)
	serial := 0.0
	for _, tt := range trees {
		s, err := ts.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		serial += s.Response
	}
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Response >= serial {
		t.Fatalf("batch %g not better than serial %g", batch.Response, serial)
	}
}

func TestScheduleBatchPlacesEveryOperatorOnce(t *testing.T) {
	ts := testScheduler(10, 0.4, 0.7)
	trees := batchTrees(t, 7, 8, 9)
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tt := range trees {
		for _, tk := range tt.Tasks {
			want += len(tk.Ops)
		}
	}
	seen := map[*plan.Operator]bool{}
	for _, ph := range batch.Phases {
		for _, pl := range ph.Placements {
			if seen[pl.Op] {
				t.Fatalf("operator %s placed twice", pl.Op.Name)
			}
			seen[pl.Op] = true
		}
	}
	if len(seen) != want {
		t.Fatalf("placed %d of %d operators", len(seen), want)
	}
}

func TestScheduleBatchPreservesBlockingPerQuery(t *testing.T) {
	ts := testScheduler(10, 0.5, 0.7)
	trees := batchTrees(t, 11, 12)
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	phaseOf := map[*plan.Operator]int{}
	for i, ph := range batch.Phases {
		for _, pl := range ph.Placements {
			phaseOf[pl.Op] = i
		}
	}
	for op, phase := range phaseOf {
		if op.BuildOp == nil {
			continue
		}
		if phaseOf[op.BuildOp] >= phase {
			t.Fatalf("probe %s in phase %d, its build in phase %d",
				op.Name, phase, phaseOf[op.BuildOp])
		}
	}
}

func TestScheduleBatchPhaseCountIsMax(t *testing.T) {
	ts := testScheduler(10, 0.5, 0.7)
	trees := batchTrees(t, 13, 14, 15)
	maxPhases := 0
	for _, tt := range trees {
		if tt.Height+1 > maxPhases {
			maxPhases = tt.Height + 1
		}
	}
	batch, err := ts.ScheduleBatch(trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Phases) != maxPhases {
		t.Fatalf("batch phases = %d, want %d", len(batch.Phases), maxPhases)
	}
}

func TestRandomDeclusteringProducesValidHomes(t *testing.T) {
	ts := testScheduler(12, 0.5, 0.7)
	r := rand.New(rand.NewSource(21))
	p := query.MustRandom(r, query.DefaultGenConfig(10))
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	homes, err := ts.RandomDeclustering(r, tt)
	if err != nil {
		t.Fatal(err)
	}
	scans := 0
	for _, tk := range tt.Tasks {
		for _, op := range tk.Ops {
			if op.Kind == costmodel.Scan {
				scans++
				home := homes[op.ID]
				if len(home) == 0 {
					t.Fatalf("scan %s has no home", op.Name)
				}
				seen := map[int]bool{}
				for _, s := range home {
					if s < 0 || s >= ts.P || seen[s] {
						t.Fatalf("scan %s home %v invalid", op.Name, home)
					}
					seen[s] = true
				}
			} else if homes[op.ID] != nil {
				t.Fatalf("non-scan %s was declustered", op.Name)
			}
		}
	}
	if scans != 11 {
		t.Fatalf("declustered %d scans, want 11", scans)
	}

	// The homes must be usable end to end.
	ts.Homes = homes
	s, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Op.Kind != costmodel.Scan {
				continue
			}
			for k, site := range pl.Sites {
				if homes[pl.Op.ID][k] != site {
					t.Fatalf("declustered scan %s moved", pl.Op.Name)
				}
			}
		}
	}
}

func TestDeclusteredScansCostSomething(t *testing.T) {
	// Fixing scan placement takes freedom away from the scheduler; over
	// several plans the rooted configuration must not beat the floating
	// one.
	base := testScheduler(16, 0.5, 0.7)
	r := rand.New(rand.NewSource(33))
	var sumFloat, sumRooted float64
	for trial := 0; trial < 6; trial++ {
		p := query.MustRandom(r, query.DefaultGenConfig(10))
		tt := plan.MustNewTaskTree(plan.MustExpand(p))
		sFloat, err := base.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		rooted := base
		homes, err := base.RandomDeclustering(r, tt)
		if err != nil {
			t.Fatal(err)
		}
		rooted.Homes = homes
		sRooted, err := rooted.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		sumFloat += sFloat.Response
		sumRooted += sRooted.Response
	}
	if sumRooted < sumFloat*0.999 {
		t.Fatalf("rooted scans %g beat floating %g — freedom should not hurt",
			sumRooted, sumFloat)
	}
}

func BenchmarkScheduleBatch4Queries(b *testing.B) {
	ts := testScheduler(32, 0.5, 0.7)
	var trees []*plan.TaskTree
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := query.MustRandom(r, query.DefaultGenConfig(15))
		trees = append(trees, plan.MustNewTaskTree(plan.MustExpand(p)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.ScheduleBatch(trees); err != nil {
			b.Fatal(err)
		}
	}
}

// TestScheduleBatchAliasedTrees is the regression test for the shared
// homes map: the same *plan.TaskTree submitted at two batch positions
// used to cross-contaminate build→probe home placements (entry 1's
// build overwrote entry 0's home under the same *plan.Operator key),
// silently rooting entry 0's probes at entry 1's hash-table sites. The
// aliased batch must be byte-identical to the same workload built from
// two structurally-equal but distinct trees.
func TestScheduleBatchAliasedTrees(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.7)
	aliased := batchTrees(t, 19)
	aliasedBatch, err := ts.ScheduleBatch([]*plan.TaskTree{aliased[0], aliased[0]})
	if err != nil {
		t.Fatal(err)
	}
	distinct := batchTrees(t, 19, 19)
	distinctBatch, err := ts.ScheduleBatch(distinct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeJSON(aliasedBatch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeJSON(distinctBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("aliased batch differs from the same workload with distinct trees")
	}
}

func TestScheduleBatchRejectsNilAndEmptyTrees(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.7)
	trees := batchTrees(t, 23)
	if _, err := ts.ScheduleBatch([]*plan.TaskTree{trees[0], nil}); err == nil ||
		!strings.Contains(err.Error(), "query 1") {
		t.Errorf("nil tree in batch: err = %v, want a query-1 error", err)
	}
	if _, err := ts.ScheduleBatch([]*plan.TaskTree{trees[0], {}}); err == nil ||
		!strings.Contains(err.Error(), "query 1") {
		t.Errorf("zero-task tree in batch: err = %v, want a query-1 error", err)
	}
}

func TestScheduleBatchHeterogeneousPhaseCounts(t *testing.T) {
	ts := testScheduler(16, 0.5, 0.7)
	short := batchTrees(t, 25)[0] // 8 joins
	r := rand.New(rand.NewSource(26))
	tall := plan.MustNewTaskTree(plan.MustExpand(query.MustRandom(r, query.DefaultGenConfig(14))))
	if short.Height >= tall.Height {
		t.Fatalf("want heterogeneous heights, got %d and %d", short.Height, tall.Height)
	}
	batch, err := ts.ScheduleBatch([]*plan.TaskTree{short, tall})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Phases) != tall.Height+1 {
		t.Fatalf("batch phases = %d, want the taller tree's %d", len(batch.Phases), tall.Height+1)
	}
	// The shorter query stops contributing once its own phases run out:
	// the final phases hold only the taller tree's operators.
	shortOps := map[*plan.Operator]bool{}
	for _, tk := range short.Tasks {
		for _, op := range tk.Ops {
			shortOps[op] = true
		}
	}
	last := batch.Phases[len(batch.Phases)-1]
	if len(last.Placements) == 0 {
		t.Fatal("final phase is empty")
	}
	for _, pl := range last.Placements {
		if shortOps[pl.Op] {
			t.Fatalf("short query's %s leaked into phase %d past its height %d",
				pl.Op.Name, last.Index, short.Height)
		}
	}
}

func TestScheduleBatchCtxCancelled(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.7)
	trees := batchTrees(t, 27, 28)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ts.ScheduleBatchCtx(ctx, trees); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestScheduleCtxCancelled(t *testing.T) {
	ts := testScheduler(8, 0.5, 0.7)
	tree := batchTrees(t, 29)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ts.ScheduleCtx(ctx, tree); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// A context that stays live never changes the outcome.
	plain, err := ts.Schedule(tree)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := ts.ScheduleCtx(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := EncodeJSON(withCtx)
	want, _ := EncodeJSON(plain)
	if !bytes.Equal(got, want) {
		t.Fatal("a live context changed the schedule")
	}
}
