package sched

import (
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/resource"
	"mdrs/internal/vector"
)

// TestSortedOrderBeatsArrivalOrder pins a hand-traceable LPT case:
// jobs 4,3,3,2,2 on two one-dimensional sites. The sorted (LPT) order
// packs to makespan 8 ({4,2,2} vs {3,3}); ascending arrival order
// 2,2,3,3,4 greedily ends at 9.
func TestSortedOrderBeatsArrivalOrder(t *testing.T) {
	ov := resource.MustOverlap(1)
	mk := func(ids []float64) []*Op {
		ops := make([]*Op, len(ids))
		for i, w := range ids {
			ops[i] = &Op{ID: i, Clones: []vector.Vector{vector.Of(w)}}
		}
		return ops
	}
	arrival := mk([]float64{2, 2, 3, 3, 4})

	sorted, err := OperatorSchedule(2, 1, ov, arrival)
	if err != nil {
		t.Fatal(err)
	}
	unsorted, err := OperatorScheduleUnordered(2, 1, ov, arrival)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sorted.Response-8) > 1e-12 {
		t.Fatalf("sorted makespan = %g, want 8", sorted.Response)
	}
	if math.Abs(unsorted.Response-9) > 1e-12 {
		t.Fatalf("arrival-order makespan = %g, want 9", unsorted.Response)
	}
}

// TestUnorderedStillRespectsConstraints: the ablation variant keeps
// every constraint, only the list order changes.
func TestUnorderedStillRespectsConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	ov := resource.MustOverlap(0.5)
	ops := randomOps(r, 8, 5, 3)
	n := len(ops[2].Clones)
	if n > 3 {
		ops[2].Clones = ops[2].Clones[:3]
		n = 3
	}
	ops[2].Home = []int{4, 1, 0}[:n]
	res, err := OperatorScheduleUnordered(5, 3, ov, ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		seen := map[int]bool{}
		for k, s := range res.Sites[op.ID] {
			if seen[s] {
				t.Fatalf("op %d clones share site %d", op.ID, s)
			}
			seen[s] = true
			if op.Rooted() && op.Home[k] != s {
				t.Fatalf("rooted op %d moved", op.ID)
			}
		}
	}
}

// TestSortedNeverWorseOnRandomInstances: over many random instances the
// sorted order's makespan is never worse than arrival order by more
// than floating noise — and is strictly better somewhere.
func TestSortedNeverWorseOnAverage(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	ov := resource.MustOverlap(0.5)
	var sumSorted, sumUnsorted float64
	strictly := false
	for trial := 0; trial < 50; trial++ {
		p := 2 + r.Intn(6)
		ops := randomOps(r, 2+r.Intn(8), p, 2)
		s, err := OperatorSchedule(p, 2, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		u, err := OperatorScheduleUnordered(p, 2, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		sumSorted += s.Response
		sumUnsorted += u.Response
		if s.Response < u.Response-1e-9 {
			strictly = true
		}
	}
	if sumSorted > sumUnsorted*1.001 {
		t.Fatalf("sorted total %g worse than arrival total %g", sumSorted, sumUnsorted)
	}
	if !strictly {
		t.Fatal("sorted order never strictly better in 50 trials — ablation toothless")
	}
}

// TestOpAccessors covers the small Op API.
func TestOpAccessors(t *testing.T) {
	op := &Op{ID: 3, Clones: []vector.Vector{vector.Of(1), vector.Of(2)}}
	if op.Rooted() || op.Degree() != 2 {
		t.Fatalf("accessors: rooted=%v degree=%d", op.Rooted(), op.Degree())
	}
	op.Home = []int{0, 1}
	if !op.Rooted() {
		t.Fatal("homed op not rooted")
	}
}

// TestWorstObservedRatioStaysUnderBound hunts for bad instances with a
// randomized search and records the worst makespan/LB ratio seen; it
// must stay under the proven 2d+1.
func TestWorstObservedRatioStaysUnderBound(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	worst := 0.0
	for trial := 0; trial < 300; trial++ {
		p := 2 + r.Intn(4)
		d := 1 + r.Intn(3)
		ov := resource.MustOverlap(r.Float64())
		m := 1 + r.Intn(6)
		ops := make([]*Op, m)
		for i := range ops {
			n := 1 + r.Intn(p)
			clones := make([]vector.Vector, n)
			for k := range clones {
				w := vector.New(d)
				// Spiky vectors: one dominant dimension each, the
				// adversarial pattern for scalar-load greedy rules.
				w[r.Intn(d)] = 1 + r.Float64()*9
				clones[k] = w
			}
			ops[i] = &Op{ID: i, Clones: clones}
		}
		res, err := OperatorSchedule(p, d, ov, ops)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(p, ov, ops)
		if lb > 0 {
			if ratio := res.Response / lb; ratio > worst {
				worst = ratio
			}
		}
		if res.Response > PerformanceRatioBound(d)*lb+1e-9 {
			t.Fatalf("trial %d: ratio %g exceeds bound %g",
				trial, res.Response/lb, PerformanceRatioBound(d))
		}
	}
	// Empirically the spiky adversary reaches ~1.5–2.0; if this ever
	// approaches the bound something structural has broken.
	if worst > 3 {
		t.Fatalf("worst observed ratio %g suspiciously close to the bound", worst)
	}
}
