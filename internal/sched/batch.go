package sched

import (
	"context"
	"fmt"
	"math/rand"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
)

// ScheduleBatch schedules several independent queries as one workload:
// phase i of every query executes in global phase i, so operators of
// different queries time-share sites exactly like operators of
// independent tasks within one query. This extends the paper's
// resource-sharing argument across query boundaries — the batch
// makespan is typically well below the sum of the queries' individual
// response times, because one query's idle resources absorb another's
// load.
//
// Blocking constraints are preserved per query (each query's own phase
// order is kept); queries with fewer phases simply stop contributing to
// later global phases.
func (ts TreeScheduler) ScheduleBatch(trees []*plan.TaskTree) (*Schedule, error) {
	return ts.ScheduleBatchCtx(context.Background(), trees)
}

// ScheduleBatchCtx is ScheduleBatch with a cancellation context: the
// phase loop and the placement loop inside OperatorSchedule check ctx
// and return ctx.Err() promptly once the context is cancelled or past
// its deadline. The context never influences a scheduling decision — a
// run that completes is bit-identical to ScheduleBatch.
func (ts TreeScheduler) ScheduleBatchCtx(ctx context.Context, trees []*plan.TaskTree) (*Schedule, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("sched: empty batch")
	}
	perTree := make([][][]*plan.Task, len(trees))
	maxPhases := 0
	for i, tt := range trees {
		if tt == nil {
			return nil, fmt.Errorf("sched: batch query %d: nil task tree", i)
		}
		if err := tt.Validate(); err != nil {
			return nil, fmt.Errorf("sched: batch query %d: %w", i, err)
		}
		perTree[i] = tt.PhasesBy(ts.Policy)
		if len(perTree[i]) > maxPhases {
			maxPhases = len(perTree[i])
		}
	}

	// Operator IDs are dense per tree; offset them so they stay unique
	// within one OperatorSchedule call.
	offsets := make([]int, len(trees))
	next := 0
	for i, tt := range trees {
		offsets[i] = next
		for _, tk := range tt.Tasks {
			next += len(tk.Ops)
		}
	}

	out := &Schedule{P: ts.P}
	// Build→probe homes are keyed per batch entry, not per *plan.Operator
	// alone: the same *plan.TaskTree (or one sharing operator pointers)
	// may legally appear at several batch positions, and a shared map
	// would let entry j's build overwrite entry i's home, silently rooting
	// entry i's probe at entry j's hash-table sites.
	homes := make([]map[*plan.Operator][]int, len(trees))
	for i := range homes {
		homes[i] = make(map[*plan.Operator][]int)
	}
	// One scratch serves every global phase (see ScheduleCtx).
	sc := new(scratch)
	w := ts.workers()
	ts.observeWorkers(w)
	for phaseIdx := 0; phaseIdx < maxPhases; phaseIdx++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// One preparation fan-out spans the global phase across every
		// tree of the batch — the widest parallel section available,
		// since each job carries its own entry's homes map. Jobs are
		// listed in (batch entry, task, operator) order and consumed in
		// that order, so the batch is byte-identical for every pool
		// width; the per-entry ID offset is applied after the pool joins.
		var tasks []*plan.Task
		jobs := sc.prepJobs(0)
		for i := range trees {
			if phaseIdx >= len(perTree[i]) {
				continue
			}
			for _, tk := range perTree[i][phaseIdx] {
				tasks = append(tasks, tk)
				for _, p := range tk.Ops {
					jobs = append(jobs, prepJob{p: p, homes: homes[i], tree: i})
				}
			}
		}
		sc.jobs = jobs
		preps := ts.prepareAll(jobs, w, sc)
		ops := make([]*Op, 0, len(jobs))
		placements := make(map[int]*OpPlacement, len(jobs))
		treeOf := make(map[int]int, len(jobs)) // offset operator ID -> batch entry
		for j, pr := range preps {
			if pr.err != nil {
				return nil, fmt.Errorf("sched: batch phase %d: %w", phaseIdx, pr.err)
			}
			op := pr.op
			op.ID += offsets[jobs[j].tree]
			ops = append(ops, op)
			placements[op.ID] = pr.pl
			treeOf[op.ID] = jobs[j].tree
		}
		if ts.Rec != nil {
			clones := 0
			for _, op := range ops {
				clones += len(op.Clones)
			}
			ts.Rec.Event(obs.Event{
				Type: obs.EvPhaseOpen, Phase: phaseIdx,
				Ops: len(ops), Clones: clones,
			})
		}
		res, err := operatorSchedule(ctx, ts.P, resource.Dims, ts.Overlap, ops, true, ts.Rec, phaseIdx, sc, w)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("sched: batch phase %d: %w", phaseIdx, err)
		}
		if ts.Rec != nil {
			ts.Rec.Event(obs.Event{
				Type: obs.EvPhaseClose, Phase: phaseIdx, Response: res.Response,
			})
		}
		ph := &PhaseSchedule{Index: phaseIdx, Tasks: tasks, Response: res.Response}
		for _, op := range ops {
			pl := placements[op.ID]
			pl.Sites = res.Sites[op.ID]
			homes[treeOf[op.ID]][pl.Op] = pl.Sites
			ph.Placements = append(ph.Placements, pl)
		}
		out.Phases = append(out.Phases, ph)
		out.Response += ph.Response
	}
	return out, nil
}

// RandomDeclustering fixes every base-relation scan of a task tree at a
// random home — the shared-nothing situation where relations are
// pre-partitioned across sites and the scheduler has no say in scan
// placement (rooted operators, constraint (B) of Section 5.3). The home
// size is the scan's CG_f degree, its sites a random subset.
//
// The returned map plugs into TreeScheduler.Homes.
func (ts TreeScheduler) RandomDeclustering(r *rand.Rand, tt *plan.TaskTree) (map[int][]int, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if err := tt.Validate(); err != nil {
		return nil, err
	}
	homes := make(map[int][]int)
	for _, tk := range tt.Tasks {
		for _, op := range tk.Ops {
			if op.Kind != costmodel.Scan {
				continue
			}
			cost := ts.Model.Cost(op.Spec)
			n := ts.Model.Degree(cost, ts.F, ts.P, ts.Overlap)
			perm := r.Perm(ts.P)
			homes[op.ID] = append([]int(nil), perm[:n]...)
		}
	}
	return homes, nil
}
