package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// allFigures names every figure generator the harness parallelizes.
var allFigures = map[string]func(Config) (*Figure, error){
	"5a":         Fig5a,
	"5b":         Fig5b,
	"6a":         Fig6a,
	"6b":         Fig6b,
	"malleable":  Malleable,
	"order":      OrderAblation,
	"shelf":      ShelfAblation,
	"contention": ContentionAblation,
	"memory":     MemoryAblation,
	"shape":      ShapeAblation,
	"plansearch": PlanSearchAblation,
	"pipeline":   PipelineAblation,
	"batch":      BatchAblation,
	"decluster":  DeclusterAblation,
}

func figureCSV(t *testing.T, fn func(Config) (*Figure, error), c Config) string {
	t.Helper()
	fig, err := fn(c)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, fig); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// Every figure must render byte-identical CSV with a single worker and
// with a full GOMAXPROCS pool: per-trial work is independent and the
// reductions run in query order. Running this test under -race also
// exercises the worker pool for data races across every figure's trial
// closure (the Makefile `check` target does exactly that).
func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	for name, fn := range allFigures {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := Quick()
			serial.Workers = 1
			pooled := Quick()
			pooled.Workers = runtime.GOMAXPROCS(0)
			got := figureCSV(t, fn, pooled)
			want := figureCSV(t, fn, serial)
			if got != want {
				t.Fatalf("Workers=%d CSV differs from Workers=1:\n--- parallel ---\n%s--- serial ---\n%s",
					pooled.Workers, got, want)
			}
		})
	}
}

// Workers <= 0 must mean "use GOMAXPROCS", not "serial only" and not an
// error, so hand-built Configs from before the field existed keep
// working and keep their output.
func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	c := Quick()
	c.Workers = 0
	if got := c.workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	c.Workers = 3
	if got := c.workers(); got != 3 {
		t.Fatalf("workers() = %d, want 3", got)
	}
	c.Workers = 1
	c.Sites = []int{10}
	one := figureCSV(t, Fig5a, c)
	c.Workers = 0
	auto := figureCSV(t, Fig5a, c)
	if one != auto {
		t.Fatal("Workers=0 output differs from Workers=1")
	}
}

// forEach must visit every index exactly once at any pool width and
// return the lowest-index error, matching what the serial loop would
// have reported.
func TestForEachCoverageAndErrorOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		c := Quick()
		c.Workers = workers
		const n = 100
		var visits [n]int32
		if err := c.forEach(n, func(i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
		err := c.forEach(n, func(i int) error {
			if i%30 == 17 {
				return fmt.Errorf("trial %d failed", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "trial 17") {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure (trial 17)", workers, err)
		}
	}
	// n = 0 is a no-op, and an error type survives the pool.
	c := Quick()
	sentinel := errors.New("boom")
	if err := c.forEach(0, func(int) error { return sentinel }); err != nil {
		t.Fatalf("forEach(0) = %v", err)
	}
	if err := c.forEach(5, func(int) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("forEach error = %v, want sentinel", err)
	}
}
