// Package experiments regenerates every figure of the paper's
// experimental evaluation (Section 6) plus the ablations listed in
// DESIGN.md. Each figure function sweeps the paper's parameters over a
// fixed, seeded workload of random bushy plans and reports average
// response times, exactly as the paper does: twenty random queries per
// size, 3-dimensional sites (CPU, disk, network interface), and the
// Table 2 cost parameters.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"mdrs/internal/baseline"
	"mdrs/internal/contention"
	"mdrs/internal/costmodel"
	"mdrs/internal/malleable"
	"mdrs/internal/memsched"
	"mdrs/internal/obs"
	"mdrs/internal/opt"
	"mdrs/internal/optimizer"
	"mdrs/internal/pipesim"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// Config controls workload scale; the zero value is unusable — use
// Default or Quick.
type Config struct {
	Model costmodel.Model
	// Queries is the number of random plans averaged per data point
	// (the paper uses 20).
	Queries int
	// Seed makes the workloads reproducible.
	Seed int64
	// Sites is the system-size sweep for figures with P on the x-axis.
	Sites []int
	// Workers bounds the goroutine pool that fans out the per-query
	// trials of each data point. Values <= 0 mean GOMAXPROCS. Every
	// figure is byte-identical across worker counts: trials are
	// independent (randomized trials derive a private per-query seed) and
	// per-point aggregation always reduces in query order.
	Workers int
	// Rec, when non-nil, receives counters and timing histograms for the
	// regeneration run (figures regenerated, schedules computed, per-point
	// and per-figure wall clock). It is strictly observational: figures
	// and their CSV renderings are byte-identical with or without it.
	Rec obs.Recorder
}

// Default reproduces the paper's experimental scale: 20 queries per
// point and system sizes 10–140.
func Default() Config {
	return Config{
		Model:   costmodel.Default(),
		Queries: 20,
		Seed:    1996, // SIGMOD '96
		Sites:   []int{10, 20, 40, 60, 80, 100, 120, 140},
		Workers: runtime.GOMAXPROCS(0),
	}
}

// Quick is a scaled-down configuration for smoke tests and benchmarks.
func Quick() Config {
	return Config{
		Model:   costmodel.Default(),
		Queries: 4,
		Seed:    1996,
		Sites:   []int{10, 40, 80, 140},
		Workers: runtime.GOMAXPROCS(0),
	}
}

// Validate reports the first nonsensical configuration field.
func (c Config) Validate() error {
	if err := c.Model.Params.Validate(); err != nil {
		return err
	}
	if c.Queries <= 0 {
		return fmt.Errorf("experiments: non-positive query count %d", c.Queries)
	}
	if len(c.Sites) == 0 {
		return fmt.Errorf("experiments: empty site sweep")
	}
	for _, p := range c.Sites {
		if p <= 0 {
			return fmt.Errorf("experiments: non-positive site count %d", p)
		}
	}
	return nil
}

// workers returns the effective trial-pool width.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// seedStride separates the derived per-query seed streams from the
// per-point `c.Seed + joins` / `c.Seed + p` workload seeds, so no two
// trials (and no trial and workload) ever share a generator state.
const seedStride = 1_000_003

// trialSeed derives the private seed of trial q within the stream
// identified by base (a figure-specific function of the data point).
func (c Config) trialSeed(base, q int64) int64 {
	return c.Seed + base + (q+1)*seedStride
}

// forEach runs fn(0..n-1) across the worker pool and returns the
// lowest-index error. With one worker (or n <= 1) it degenerates to the
// plain serial loop. Callers communicate results positionally through
// slices indexed by i, so the aggregate — and therefore every figure —
// is identical for any pool width.
func (c Config) forEach(n int, fn func(i int) error) error {
	w := c.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// observe brackets one figure regeneration: it counts the run and
// returns a stop func recording the figure's wall-clock seconds. With
// no recorder it returns a no-op, keeping figure code branch-free.
func (c Config) observe(id string) func() {
	if c.Rec == nil {
		return func() {}
	}
	c.Rec.Count("experiments.figures", 1)
	c.Rec.Count("experiments.fig."+id, 1)
	return obs.StartTimer(c.Rec, "experiments.figure_seconds")
}

// counted reports n completed schedules to the recorder.
func (c Config) counted(n int) {
	if c.Rec != nil {
		c.Rec.Count("experiments.schedules", int64(n))
	}
}

// mean reduces per-trial responses in query order; fixing the float
// summation order is what keeps parallel figures bit-equal to serial
// ones.
func mean(ys []float64) float64 {
	sum := 0.0
	for _, y := range ys {
		sum += y
	}
	return sum / float64(len(ys))
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a regenerated table/figure: named series over a shared
// x-axis meaning.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// workload returns the fixed plan set for a query size. All figures
// share plans for a given (seed, joins), so curves are comparable.
func (c Config) workload(joins int) ([]*plan.TaskTree, error) {
	r := rand.New(rand.NewSource(c.Seed + int64(joins)))
	plans, err := query.Workload(r, query.DefaultGenConfig(joins), c.Queries)
	if err != nil {
		return nil, err
	}
	// Plan generation above stays serial (one shared generator keeps the
	// plan set identical to the paper runs); the deterministic expansion
	// of each plan into a task tree fans out across the pool.
	trees := make([]*plan.TaskTree, len(plans))
	err = c.forEach(len(plans), func(i int) error {
		ot, err := plan.Expand(plans[i])
		if err != nil {
			return err
		}
		trees[i], err = plan.NewTaskTree(ot)
		return err
	})
	if err != nil {
		return nil, err
	}
	return trees, nil
}

// avgTree returns the mean TreeSchedule response over the workload.
func (c Config) avgTree(trees []*plan.TaskTree, p int, eps, f float64) (float64, error) {
	ts := sched.TreeScheduler{
		Model: c.Model, Overlap: resource.MustOverlap(eps), P: p, F: f,
	}
	ys := make([]float64, len(trees))
	err := c.forEach(len(trees), func(i int) error {
		s, err := ts.Schedule(trees[i])
		if err != nil {
			return err
		}
		ys[i] = s.Response
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.counted(len(trees))
	return mean(ys), nil
}

// avgSync returns the mean SYNCHRONOUS response over the workload.
func (c Config) avgSync(trees []*plan.TaskTree, p int, eps float64) (float64, error) {
	b := baseline.Synchronous{Model: c.Model, Overlap: resource.MustOverlap(eps), P: p}
	ys := make([]float64, len(trees))
	err := c.forEach(len(trees), func(i int) error {
		s, err := b.Schedule(trees[i])
		if err != nil {
			return err
		}
		ys[i] = s.Response
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.counted(len(trees))
	return mean(ys), nil
}

// avgBound returns the mean OPTBOUND over the workload.
func (c Config) avgBound(trees []*plan.TaskTree, p int, eps, f float64) (float64, error) {
	ov := resource.MustOverlap(eps)
	ys := make([]float64, len(trees))
	err := c.forEach(len(trees), func(i int) error {
		b, err := opt.Bound(trees[i], c.Model, ov, p, f)
		if err != nil {
			return err
		}
		ys[i] = b
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.counted(len(trees))
	return mean(ys), nil
}

// Fig5a regenerates Figure 5(a): the effect of the granularity
// parameter f on TREESCHEDULE for 40-join queries at 30% resource
// overlap, against SYNCHRONOUS (which f does not affect).
func Fig5a(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("5a")()
	const joins, eps = 40, 0.3
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "5a",
		Title:  fmt.Sprintf("Effect of granularity parameter f (%d joins, ε = %.1f)", joins, eps),
		XLabel: "sites",
		YLabel: "avg response time (s)",
	}
	for _, f := range []float64{0.3, 0.5, 0.7, 0.9} {
		s := Series{Name: fmt.Sprintf("TreeSchedule f=%.1f", f)}
		for _, p := range c.Sites {
			y, err := c.avgTree(trees, p, eps, f)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, y)
		}
		fig.Series = append(fig.Series, s)
	}
	s := Series{Name: "Synchronous"}
	for _, p := range c.Sites {
		y, err := c.avgSync(trees, p, eps)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(p))
		s.Y = append(s.Y, y)
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig5b regenerates Figure 5(b): the effect of the resource overlap
// parameter ε on both algorithms, with f fixed at 0.7 (40-join queries).
func Fig5b(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("5b")()
	const joins, f = 40, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "5b",
		Title:  fmt.Sprintf("Effect of resource overlap ε (%d joins, f = %.1f)", joins, f),
		XLabel: "sites",
		YLabel: "avg response time (s)",
	}
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7} {
		st := Series{Name: fmt.Sprintf("TreeSchedule ε=%.1f", eps)}
		ss := Series{Name: fmt.Sprintf("Synchronous ε=%.1f", eps)}
		for _, p := range c.Sites {
			yt, err := c.avgTree(trees, p, eps, f)
			if err != nil {
				return nil, err
			}
			ys, err := c.avgSync(trees, p, eps)
			if err != nil {
				return nil, err
			}
			st.X = append(st.X, float64(p))
			st.Y = append(st.Y, yt)
			ss.X = append(ss.X, float64(p))
			ss.Y = append(ss.Y, ys)
		}
		fig.Series = append(fig.Series, st, ss)
	}
	return fig, nil
}

// Fig6a regenerates Figure 6(a): the effect of query size for two
// system sizes (20 and 80 sites) at ε = 0.5, f = 0.7.
func Fig6a(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("6a")()
	const eps, f = 0.5, 0.7
	joinsSweep := []int{10, 20, 30, 40, 50}
	fig := &Figure{
		ID:     "6a",
		Title:  "Effect of query size (ε = 0.5, f = 0.7)",
		XLabel: "joins",
		YLabel: "avg response time (s)",
	}
	for _, p := range []int{20, 80} {
		st := Series{Name: fmt.Sprintf("TreeSchedule P=%d", p)}
		ss := Series{Name: fmt.Sprintf("Synchronous P=%d", p)}
		for _, joins := range joinsSweep {
			trees, err := c.workload(joins)
			if err != nil {
				return nil, err
			}
			yt, err := c.avgTree(trees, p, eps, f)
			if err != nil {
				return nil, err
			}
			ys, err := c.avgSync(trees, p, eps)
			if err != nil {
				return nil, err
			}
			st.X = append(st.X, float64(joins))
			st.Y = append(st.Y, yt)
			ss.X = append(ss.X, float64(joins))
			ss.Y = append(ss.Y, ys)
		}
		fig.Series = append(fig.Series, st, ss)
	}
	return fig, nil
}

// Fig6b regenerates Figure 6(b): average TREESCHEDULE performance
// against the OPTBOUND lower bound on the optimal CG_f execution, for
// 20- and 40-join queries (f = 0.7, ε = 0.5). A ratio series per query
// size makes the near-optimality immediately readable.
func Fig6b(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("6b")()
	const eps, f = 0.5, 0.7
	fig := &Figure{
		ID:     "6b",
		Title:  "TreeSchedule vs optimal lower bound (f = 0.7, ε = 0.5)",
		XLabel: "sites",
		YLabel: "avg response time (s); ratio series unitless",
	}
	for _, joins := range []int{20, 40} {
		trees, err := c.workload(joins)
		if err != nil {
			return nil, err
		}
		st := Series{Name: fmt.Sprintf("TreeSchedule %dJ", joins)}
		sb := Series{Name: fmt.Sprintf("OptBound %dJ", joins)}
		sr := Series{Name: fmt.Sprintf("ratio %dJ", joins)}
		for _, p := range c.Sites {
			yt, err := c.avgTree(trees, p, eps, f)
			if err != nil {
				return nil, err
			}
			yb, err := c.avgBound(trees, p, eps, f)
			if err != nil {
				return nil, err
			}
			st.X = append(st.X, float64(p))
			st.Y = append(st.Y, yt)
			sb.X = append(sb.X, float64(p))
			sb.Y = append(sb.Y, yb)
			sr.X = append(sr.X, float64(p))
			sr.Y = append(sr.Y, yt/yb)
		}
		fig.Series = append(fig.Series, st, sb, sr)
	}
	return fig, nil
}

// Malleable regenerates ablation A1: the Section 7 malleable scheduler
// against the CG_f parallelization rule on sets of independent
// operators (one set per workload plan: the floating operators of its
// first phase).
func Malleable(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("malleable")()
	const joins, eps, f = 20, 0.5, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "malleable",
		Title:  fmt.Sprintf("Malleable (Section 7) vs CG_f parallelization (%d joins, ε = %.1f, f = %.1f)", joins, eps, f),
		XLabel: "sites",
		YLabel: "avg response time of first phase (s)",
	}
	sm := Series{Name: "Malleable GF"}
	sc := Series{Name: fmt.Sprintf("CoarseGrain f=%.1f", f)}
	sl := Series{Name: "LB of chosen N"}
	for _, p := range c.Sites {
		ms := malleable.Scheduler{Model: c.Model, Overlap: resource.MustOverlap(eps), P: p}
		ym := make([]float64, len(trees))
		yc := make([]float64, len(trees))
		yl := make([]float64, len(trees))
		err := c.forEach(len(trees), func(i int) error {
			ops := firstPhaseOperators(c.Model, trees[i])
			resM, err := ms.Schedule(ops)
			if err != nil {
				return err
			}
			resC, err := ms.ScheduleFixed(ops, ms.CoarseGrainParallelization(ops, f))
			if err != nil {
				return err
			}
			ym[i] = resM.Schedule.Response
			yc[i] = resC.Schedule.Response
			yl[i] = resM.LB
			return nil
		})
		if err != nil {
			return nil, err
		}
		sm.X = append(sm.X, float64(p))
		sm.Y = append(sm.Y, mean(ym))
		sc.X = append(sc.X, float64(p))
		sc.Y = append(sc.Y, mean(yc))
		sl.X = append(sl.X, float64(p))
		sl.Y = append(sl.Y, mean(yl))
	}
	fig.Series = append(fig.Series, sm, sc, sl)
	return fig, nil
}

// firstPhaseOperators extracts the first phase's operators of a task
// tree as independent malleable operators.
func firstPhaseOperators(m costmodel.Model, tt *plan.TaskTree) []malleable.Operator {
	var ops []malleable.Operator
	for _, tk := range tt.Phases()[0] {
		for _, op := range tk.Ops {
			ops = append(ops, malleable.Operator{ID: op.ID, Cost: m.Cost(op.Spec)})
		}
	}
	return ops
}

// OrderAblation regenerates ablation A5: the value of the
// non-increasing l(w̄) list order. It compares OperatorSchedule with the
// paper's LPT-style order against the same packing rule fed in raw
// operator order, on the first phase of each workload plan.
func OrderAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("order")()
	const joins, eps, f = 40, 0.5, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	ov := resource.MustOverlap(eps)
	fig := &Figure{
		ID:     "order",
		Title:  "List-order ablation: sorted vs arrival order (first phase)",
		XLabel: "sites",
		YLabel: "avg response time (s)",
	}
	sSorted := Series{Name: "sorted (paper)"}
	sRaw := Series{Name: "arrival order"}
	for _, p := range c.Sites {
		ysort := make([]float64, len(trees))
		yraw := make([]float64, len(trees))
		err := c.forEach(len(trees), func(i int) error {
			ops := firstPhaseSchedOps(c.Model, ov, trees[i], p, f)
			rs, err := sched.OperatorSchedule(p, resource.Dims, ov, ops)
			if err != nil {
				return err
			}
			rr, err := sched.OperatorScheduleUnordered(p, resource.Dims, ov, ops)
			if err != nil {
				return err
			}
			ysort[i] = rs.Response
			yraw[i] = rr.Response
			return nil
		})
		if err != nil {
			return nil, err
		}
		sSorted.X = append(sSorted.X, float64(p))
		sSorted.Y = append(sSorted.Y, mean(ysort))
		sRaw.X = append(sRaw.X, float64(p))
		sRaw.Y = append(sRaw.Y, mean(yraw))
	}
	fig.Series = append(fig.Series, sSorted, sRaw)
	return fig, nil
}

// firstPhaseSchedOps builds the sched.Op set of a tree's first phase
// with CG_f degrees.
func firstPhaseSchedOps(m costmodel.Model, ov resource.Overlap, tt *plan.TaskTree, p int, f float64) []*sched.Op {
	var ops []*sched.Op
	for _, tk := range tt.Phases()[0] {
		for _, op := range tk.Ops {
			c := m.Cost(op.Spec)
			n := m.Degree(c, f, p, ov)
			ops = append(ops, &sched.Op{ID: op.ID, Clones: m.Clones(c, n)})
		}
	}
	return ops
}

// ShelfAblation regenerates ablation A7: the MinShelf (paper) phase
// policy against the EarliestShelf alternative, under TreeSchedule.
func ShelfAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("shelf")()
	const joins, eps, f = 30, 0.5, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "shelf",
		Title:  fmt.Sprintf("Phase policy ablation: MinShelf vs EarliestShelf (%d joins, ε = %.1f, f = %.1f)", joins, eps, f),
		XLabel: "sites",
		YLabel: "avg response time (s)",
	}
	sMin := Series{Name: "MinShelf (paper)"}
	sEarly := Series{Name: "EarliestShelf"}
	for _, p := range c.Sites {
		ymin := make([]float64, len(trees))
		yearly := make([]float64, len(trees))
		err := c.forEach(len(trees), func(i int) error {
			base := sched.TreeScheduler{
				Model: c.Model, Overlap: resource.MustOverlap(eps), P: p, F: f,
			}
			sm, err := base.Schedule(trees[i])
			if err != nil {
				return err
			}
			base.Policy = plan.EarliestShelf
			se, err := base.Schedule(trees[i])
			if err != nil {
				return err
			}
			ymin[i] = sm.Response
			yearly[i] = se.Response
			return nil
		})
		if err != nil {
			return nil, err
		}
		sMin.X = append(sMin.X, float64(p))
		sMin.Y = append(sMin.Y, mean(ymin))
		sEarly.X = append(sEarly.X, float64(p))
		sEarly.Y = append(sEarly.Y, mean(yearly))
	}
	fig.Series = append(fig.Series, sMin, sEarly)
	return fig, nil
}

// ContentionAblation regenerates ablation A8: the cost of assumption
// A2's free time-sharing when disks share poorly (γ on the disk
// dimension), and how much a penalty-aware evaluation recovers.
func ContentionAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("contention")()
	const joins, eps, f = 20, 0.5, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	ov := resource.MustOverlap(eps)
	fig := &Figure{
		ID:     "contention",
		Title:  fmt.Sprintf("Disk time-sharing penalty (%d joins, ε = %.1f, f = %.1f)", joins, eps, f),
		XLabel: "sites",
		YLabel: "avg response time (s)",
	}
	gammas := []float64{0, 0.1, 0.3}
	series := make([]Series, len(gammas))
	for i, g := range gammas {
		series[i] = Series{Name: fmt.Sprintf("TreeSchedule @ γ_disk=%.1f", g)}
	}
	for _, p := range c.Sites {
		ys := make([][]float64, len(gammas))
		for i := range ys {
			ys[i] = make([]float64, len(trees))
		}
		err := c.forEach(len(trees), func(t int) error {
			s, err := sched.TreeScheduler{Model: c.Model, Overlap: ov, P: p, F: f}.Schedule(trees[t])
			if err != nil {
				return err
			}
			for i, g := range gammas {
				r, err := contention.EvalSchedule(ov, contention.DiskOnly(resource.Dims, g), s)
				if err != nil {
					return err
				}
				ys[i][t] = r
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range gammas {
			series[i].X = append(series[i].X, float64(p))
			series[i].Y = append(series[i].Y, mean(ys[i]))
		}
	}
	fig.Series = append(fig.Series, series...)
	return fig, nil
}

// MemoryAblation regenerates ablation A9: response time of the
// memory-aware TreeSchedule (internal/memsched) as per-site memory
// shrinks from infinite (assumption A1) to 1 MB.
func MemoryAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("memory")()
	const joins, eps, f, p = 20, 0.5, 0.7, 32
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "memory",
		Title:  fmt.Sprintf("Memory-aware scheduling (%d joins, P = %d, ε = %.1f, f = %.1f)", joins, p, eps, f),
		XLabel: "per-site memory (MB)",
		YLabel: "avg response time (s); spill series in MB",
	}
	caps := []float64{1, 2, 4, 8, 16, 64, math.Inf(1)}
	sResp := Series{Name: "response"}
	sSpill := Series{Name: "spilled (MB)"}
	for _, mb := range caps {
		s := memsched.Scheduler{
			Model: c.Model, Overlap: resource.MustOverlap(eps),
			P: p, F: f, MemoryBytes: mb * (1 << 20),
		}
		if math.IsInf(mb, 1) {
			s.MemoryBytes = math.Inf(1)
		}
		yresp := make([]float64, len(trees))
		yspill := make([]float64, len(trees))
		err := c.forEach(len(trees), func(i int) error {
			res, err := s.Schedule(trees[i])
			if err != nil {
				return err
			}
			yresp[i] = res.Response
			yspill[i] = res.TotalSpilledBytes
			return nil
		})
		if err != nil {
			return nil, err
		}
		x := mb
		if math.IsInf(mb, 1) {
			x = 1024 // plot the A1 point at the right edge
		}
		sResp.X = append(sResp.X, x)
		sResp.Y = append(sResp.Y, mean(yresp))
		sSpill.X = append(sSpill.X, x)
		sSpill.Y = append(sSpill.Y, mean(yspill)/(1<<20))
	}
	fig.Series = append(fig.Series, sResp, sSpill)
	return fig, nil
}

// ShapeAblation regenerates ablation A10: TreeSchedule and Synchronous
// across plan shapes (random bushy, left-deep, right-deep, balanced) at
// fixed query size — the bushy-vs-deep debate of the paper's related
// work, priced under the multi-dimensional model.
func ShapeAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("shape")()
	const joins, eps, f, p = 20, 0.5, 0.7, 40
	fig := &Figure{
		ID:     "shape",
		Title:  fmt.Sprintf("Plan shape ablation (%d joins, P = %d, ε = %.1f, f = %.1f)", joins, p, eps, f),
		XLabel: "shape (0=bushy 1=left-deep 2=right-deep 3=balanced)",
		YLabel: "avg response time (s)",
	}
	shapes := []query.Shape{query.RandomBushy, query.LeftDeep, query.RightDeep, query.Balanced}
	st := Series{Name: "TreeSchedule"}
	ss := Series{Name: "Synchronous"}
	for xi, shape := range shapes {
		yt := make([]float64, c.Queries)
		ys := make([]float64, c.Queries)
		// Each trial owns a derived seed, so plan generation is
		// independent of its neighbors and identical at any pool width.
		err := c.forEach(c.Queries, func(q int) error {
			r := rand.New(rand.NewSource(c.trialSeed(int64(joins)+int64(xi), int64(q))))
			pl, err := query.RandomShaped(r, query.DefaultGenConfig(joins), shape)
			if err != nil {
				return err
			}
			tt, err := plan.NewTaskTree(plan.MustExpand(pl))
			if err != nil {
				return err
			}
			sTree, err := sched.TreeScheduler{
				Model: c.Model, Overlap: resource.MustOverlap(eps), P: p, F: f,
			}.Schedule(tt)
			if err != nil {
				return err
			}
			sSync, err := baseline.Synchronous{
				Model: c.Model, Overlap: resource.MustOverlap(eps), P: p,
			}.Schedule(tt)
			if err != nil {
				return err
			}
			yt[q] = sTree.Response
			ys[q] = sSync.Response
			return nil
		})
		if err != nil {
			return nil, err
		}
		st.X = append(st.X, float64(xi))
		st.Y = append(st.Y, mean(yt))
		ss.X = append(ss.X, float64(xi))
		ss.Y = append(ss.Y, mean(ys))
	}
	fig.Series = append(fig.Series, st, ss)
	return fig, nil
}

// PlanSearchAblation regenerates ablation A11 with four arms: two-phase
// optimization (schedule the first random plan), the unpruned
// scheduler-in-the-loop best-of-K search, the bound-pruned pool search,
// and the streaming bound-interleaved search — plus the fraction of
// candidates the pool's bound prunes without a full TreeSchedule and
// the (smaller) fraction the streaming search still fully schedules.
// All search arms run over the identical candidate pool (re-seeded
// generators) and the trial fails if any of them disagrees with the
// unpruned winner, so the figure doubles as a continuous identity
// check.
func PlanSearchAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("plansearch")()
	const joins, eps, f, k = 15, 0.5, 0.7, 8
	fig := &Figure{
		ID:     "plansearch",
		Title:  fmt.Sprintf("Bound-pruned plan search, best of %d (%d joins, ε = %.1f, f = %.1f)", k, joins, eps, f),
		XLabel: "sites",
		YLabel: "avg response time (s); pruned-fraction series unitless",
	}
	sFirst := Series{Name: "first plan (two-phase)"}
	sBest := Series{Name: fmt.Sprintf("best of %d (unpruned)", k)}
	sPruned := Series{Name: fmt.Sprintf("best of %d (bound-pruned)", k)}
	sStream := Series{Name: fmt.Sprintf("best of %d (streaming)", k)}
	sFrac := Series{Name: "pruned fraction"}
	sSchedFrac := Series{Name: "streaming scheduled fraction"}
	for _, p := range c.Sites {
		unpruned := optimizer.Search{
			Model: c.Model, Overlap: resource.MustOverlap(eps),
			P: p, F: f, Candidates: k, NoPrune: true,
		}
		pruned := unpruned
		pruned.NoPrune = false
		streaming := pruned
		streaming.Streaming = true
		yfirst := make([]float64, c.Queries)
		ybest := make([]float64, c.Queries)
		ypruned := make([]float64, c.Queries)
		ystream := make([]float64, c.Queries)
		yfrac := make([]float64, c.Queries)
		yschedfrac := make([]float64, c.Queries)
		err := c.forEach(c.Queries, func(q int) error {
			// The trial's generator feeds both the relation catalog and
			// the plan search; re-seeding it per arm hands both searches
			// the identical candidate pool.
			seed := c.trialSeed(int64(p), int64(q))
			r := rand.New(rand.NewSource(seed))
			rels, err := optimizer.RandomRelations(r, joins+1, 1_000, 100_000)
			if err != nil {
				return err
			}
			full, err := unpruned.Best(r, rels)
			if err != nil {
				return err
			}
			r = rand.New(rand.NewSource(seed))
			if _, err := optimizer.RandomRelations(r, joins+1, 1_000, 100_000); err != nil {
				return err
			}
			fast, err := pruned.Best(r, rels)
			if err != nil {
				return err
			}
			if fast.Best.Index != full.Best.Index {
				return fmt.Errorf("experiments: pruned search winner %d != unpruned %d (P=%d q=%d)",
					fast.Best.Index, full.Best.Index, p, q)
			}
			r = rand.New(rand.NewSource(seed))
			if _, err := optimizer.RandomRelations(r, joins+1, 1_000, 100_000); err != nil {
				return err
			}
			stream, err := streaming.Best(r, rels)
			if err != nil {
				return err
			}
			if stream.Best.Index != full.Best.Index {
				return fmt.Errorf("experiments: streaming search winner %d != unpruned %d (P=%d q=%d)",
					stream.Best.Index, full.Best.Index, p, q)
			}
			yfirst[q] = full.Candidates[0].Schedule.Response
			ybest[q] = full.Best.Schedule.Response
			ypruned[q] = fast.Best.Schedule.Response
			ystream[q] = stream.Best.Schedule.Response
			yfrac[q] = float64(fast.Pruned) / float64(len(fast.Candidates))
			yschedfrac[q] = float64(stream.Scheduled) / float64(stream.Enumerated)
			return nil
		})
		if err != nil {
			return nil, err
		}
		sFirst.X = append(sFirst.X, float64(p))
		sFirst.Y = append(sFirst.Y, mean(yfirst))
		sBest.X = append(sBest.X, float64(p))
		sBest.Y = append(sBest.Y, mean(ybest))
		sPruned.X = append(sPruned.X, float64(p))
		sPruned.Y = append(sPruned.Y, mean(ypruned))
		sStream.X = append(sStream.X, float64(p))
		sStream.Y = append(sStream.Y, mean(ystream))
		sFrac.X = append(sFrac.X, float64(p))
		sFrac.Y = append(sFrac.Y, mean(yfrac))
		sSchedFrac.X = append(sSchedFrac.X, float64(p))
		sSchedFrac.Y = append(sSchedFrac.Y, mean(yschedfrac))
	}
	fig.Series = append(fig.Series, sFirst, sBest, sPruned, sStream, sFrac, sSchedFrac)
	return fig, nil
}

// PipelineAblation regenerates ablation A12: the error of the paper's
// "pipelines are just concurrency" abstraction, measured by replaying
// TreeSchedule schedules through the explicit dataflow simulator of
// internal/pipesim.
func PipelineAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("pipeline")()
	const joins, eps, f = 15, 0.5, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	ov := resource.MustOverlap(eps)
	fig := &Figure{
		ID:     "pipeline",
		Title:  fmt.Sprintf("Pipeline-abstraction error (%d joins, ε = %.1f, f = %.1f)", joins, eps, f),
		XLabel: "sites",
		YLabel: "avg response time (s); ratio series unitless",
	}
	sa := Series{Name: "analytic (Eq. 3)"}
	sp := Series{Name: "pipeline dataflow sim"}
	sr := Series{Name: "ratio"}
	for _, p := range c.Sites {
		ya := make([]float64, len(trees))
		yp := make([]float64, len(trees))
		err := c.forEach(len(trees), func(i int) error {
			s, err := sched.TreeScheduler{Model: c.Model, Overlap: ov, P: p, F: f}.Schedule(trees[i])
			if err != nil {
				return err
			}
			res, err := pipesim.Simulate(ov, s, pipesim.Config{Steps: 400})
			if err != nil {
				return err
			}
			ya[i] = res.Analytic
			yp[i] = res.Simulated
			return nil
		})
		if err != nil {
			return nil, err
		}
		sumA, sumP := 0.0, 0.0
		for i := range ya {
			sumA += ya[i]
			sumP += yp[i]
		}
		q := float64(len(trees))
		sa.X = append(sa.X, float64(p))
		sa.Y = append(sa.Y, sumA/q)
		sp.X = append(sp.X, float64(p))
		sp.Y = append(sp.Y, sumP/q)
		sr.X = append(sr.X, float64(p))
		sr.Y = append(sr.Y, sumP/sumA)
	}
	fig.Series = append(fig.Series, sa, sp, sr)
	return fig, nil
}

// BatchAblation regenerates ablation A13: scheduling a batch of Q
// independent queries together (inter-query resource sharing) against
// running them back to back.
func BatchAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("batch")()
	const joins, eps, f, batch = 10, 0.5, 0.7, 4
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "batch",
		Title:  fmt.Sprintf("Multi-query batches of %d (%d joins each, ε = %.1f, f = %.1f)", batch, joins, eps, f),
		XLabel: "sites",
		YLabel: "avg makespan of one batch (s)",
	}
	sSerial := Series{Name: "back-to-back"}
	sBatch := Series{Name: fmt.Sprintf("batched (%d queries)", batch)}
	for _, p := range c.Sites {
		ts := sched.TreeScheduler{
			Model: c.Model, Overlap: resource.MustOverlap(eps), P: p, F: f,
		}
		groups := len(trees) / batch
		if groups == 0 {
			return nil, fmt.Errorf("experiments: need at least %d queries for the batch ablation", batch)
		}
		yserial := make([]float64, groups)
		ybatch := make([]float64, groups)
		err := c.forEach(groups, func(g int) error {
			group := trees[g*batch : (g+1)*batch]
			serial := 0.0
			for _, tt := range group {
				s, err := ts.Schedule(tt)
				if err != nil {
					return err
				}
				serial += s.Response
			}
			b, err := ts.ScheduleBatch(group)
			if err != nil {
				return err
			}
			yserial[g] = serial
			ybatch[g] = b.Response
			return nil
		})
		if err != nil {
			return nil, err
		}
		sSerial.X = append(sSerial.X, float64(p))
		sSerial.Y = append(sSerial.Y, mean(yserial))
		sBatch.X = append(sBatch.X, float64(p))
		sBatch.Y = append(sBatch.Y, mean(ybatch))
	}
	fig.Series = append(fig.Series, sSerial, sBatch)
	return fig, nil
}

// DeclusterAblation regenerates ablation A14: the cost of data
// placement constraints — base relations pre-declustered at random
// homes (rooted scans) against scheduler-chosen scan placement.
func DeclusterAblation(c Config) (*Figure, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	defer c.observe("decluster")()
	const joins, eps, f = 20, 0.5, 0.7
	trees, err := c.workload(joins)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "decluster",
		Title:  fmt.Sprintf("Rooted (pre-declustered) vs floating scans (%d joins, ε = %.1f, f = %.1f)", joins, eps, f),
		XLabel: "sites",
		YLabel: "avg response time (s)",
	}
	sFloat := Series{Name: "floating scans"}
	sRooted := Series{Name: "declustered scans"}
	for _, p := range c.Sites {
		ts := sched.TreeScheduler{
			Model: c.Model, Overlap: resource.MustOverlap(eps), P: p, F: f,
		}
		yfloat := make([]float64, len(trees))
		yrooted := make([]float64, len(trees))
		err := c.forEach(len(trees), func(i int) error {
			sf, err := ts.Schedule(trees[i])
			if err != nil {
				return err
			}
			// Each tree draws its random declustering from a private
			// derived generator so trials stay order-independent.
			r := rand.New(rand.NewSource(c.trialSeed(int64(p), int64(i))))
			homes, err := ts.RandomDeclustering(r, trees[i])
			if err != nil {
				return err
			}
			rooted := ts
			rooted.Homes = homes
			sr, err := rooted.Schedule(trees[i])
			if err != nil {
				return err
			}
			yfloat[i] = sf.Response
			yrooted[i] = sr.Response
			return nil
		})
		if err != nil {
			return nil, err
		}
		sFloat.X = append(sFloat.X, float64(p))
		sFloat.Y = append(sFloat.Y, mean(yfloat))
		sRooted.X = append(sRooted.X, float64(p))
		sRooted.Y = append(sRooted.Y, mean(yrooted))
	}
	fig.Series = append(fig.Series, sFloat, sRooted)
	return fig, nil
}

// Table2 renders the experiment parameter settings, mirroring the
// paper's Table 2 from the live defaults.
func Table2(c Config) string {
	p := c.Model.Params
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Experiment Parameter Settings\n")
	fmt.Fprintf(&b, "  %-40s %v\n", "Number of Sites", c.Sites)
	fmt.Fprintf(&b, "  %-40s %g MIPS\n", "CPU Speed", p.MIPS)
	fmt.Fprintf(&b, "  %-40s %g msec\n", "Effective Disk Service Time per page", p.DiskPageTime*1e3)
	fmt.Fprintf(&b, "  %-40s %g msec\n", "Startup Cost per site (alpha)", p.Alpha*1e3)
	fmt.Fprintf(&b, "  %-40s %g usec\n", "Network Transfer Cost per byte (beta)", p.Beta*1e6)
	fmt.Fprintf(&b, "  %-40s %d bytes\n", "Tuple Size", p.TupleBytes)
	fmt.Fprintf(&b, "  %-40s %d tuples\n", "Page Size", p.PageTuples)
	fmt.Fprintf(&b, "  %-40s 10^3 - 10^5 tuples\n", "Relation Size")
	fmt.Fprintf(&b, "  %-40s %g\n", "Read Page from Disk (instr)", p.ReadPageInstr)
	fmt.Fprintf(&b, "  %-40s %g\n", "Write Page to Disk (instr)", p.WritePageInstr)
	fmt.Fprintf(&b, "  %-40s %g\n", "Extract Tuple (instr)", p.ExtractInstr)
	fmt.Fprintf(&b, "  %-40s %g\n", "Hash Tuple (instr)", p.HashInstr)
	fmt.Fprintf(&b, "  %-40s %g\n", "Probe Hash Table (instr)", p.ProbeInstr)
	return b.String()
}

// WriteCSV renders a figure as RFC-4180 CSV — one row per x-value, one
// column per series — for plotting tools.
func WriteCSV(w io.Writer, fig *Figure) error {
	cw := csv.NewWriter(w)
	header := []string{fig.XLabel}
	for _, s := range fig.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(fig.Series) > 0 {
		for i := range fig.Series[0].X {
			row := []string{strconv.FormatFloat(fig.Series[0].X[i], 'g', -1, 64)}
			for _, s := range fig.Series {
				if i < len(s.Y) {
					row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders a figure as an aligned text table: one row per
// x-value, one column per series.
func WriteText(w io.Writer, fig *Figure) error {
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintln(w, "  (no series)")
		return err
	}
	fmt.Fprintf(w, "%12s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(w, "  %22s", s.Name)
	}
	fmt.Fprintln(w)
	for i := range fig.Series[0].X {
		fmt.Fprintf(w, "%12g", fig.Series[0].X[i])
		for _, s := range fig.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "  %22.3f", s.Y[i])
			} else {
				fmt.Fprintf(w, "  %22s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}
