package experiments

import (
	"testing"

	"mdrs/internal/obs"
)

// TestRecorderDoesNotChangeFigures pins the acceptance contract: a
// figure rendered with a recorder attached is byte-identical to the
// untraced run, and the recorder sees the work it watched.
func TestRecorderDoesNotChangeFigures(t *testing.T) {
	c := Quick()
	c.Queries = 2
	c.Sites = []int{10, 40}

	plain := figureCSV(t, Fig5a, c)

	met := obs.NewMetrics()
	traced := c
	traced.Rec = met
	got := figureCSV(t, Fig5a, traced)
	if got != plain {
		t.Fatalf("recorder changed the figure:\nplain:\n%s\ntraced:\n%s", plain, got)
	}

	snap := met.Snapshot()
	if snap.Counters["experiments.figures"] != 1 || snap.Counters["experiments.fig.5a"] != 1 {
		t.Fatalf("figure counters wrong: %v", snap.Counters)
	}
	// Fig5a schedules the workload once per (f, P) point plus the
	// synchronous sweep: (4 f-values + 1) * 2 sites * 2 queries.
	if want := int64((4 + 1) * 2 * 2); snap.Counters["experiments.schedules"] != want {
		t.Fatalf("schedule counter %d != %d", snap.Counters["experiments.schedules"], want)
	}
	h := snap.Histograms["experiments.figure_seconds"]
	if h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("figure timer missing: %+v", h)
	}
}

// TestRecorderSafeUnderWorkerPool runs a figure with many workers and a
// shared recorder; meaningful under -race.
func TestRecorderSafeUnderWorkerPool(t *testing.T) {
	c := Quick()
	c.Queries = 4
	c.Sites = []int{10}
	c.Workers = 8
	c.Rec = obs.Multi(obs.NewMetrics(), obs.NewCapture())
	if _, err := Fig6b(c); err != nil {
		t.Fatal(err)
	}
}
