package experiments

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		func() Config { c := Quick(); c.Queries = 0; return c }(),
		func() Config { c := Quick(); c.Sites = nil; return c }(),
		func() Config { c := Quick(); c.Sites = []int{0}; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDefaultMatchesPaperScale(t *testing.T) {
	c := Default()
	if c.Queries != 20 {
		t.Errorf("Queries = %d, want 20", c.Queries)
	}
	if c.Sites[0] != 10 || c.Sites[len(c.Sites)-1] != 140 {
		t.Errorf("Sites = %v, want 10..140", c.Sites)
	}
}

// tiny returns an even smaller config so the full figure suite runs
// quickly in unit tests.
func tiny() Config {
	c := Quick()
	c.Queries = 2
	c.Sites = []int{10, 40}
	return c
}

func checkFigure(t *testing.T, fig *Figure, wantSeries int) {
	t.Helper()
	if len(fig.Series) != wantSeries {
		t.Fatalf("figure %s: %d series, want %d", fig.ID, len(fig.Series), wantSeries)
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("figure %s series %q: %d/%d points", fig.ID, s.Name, len(s.X), len(s.Y))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("figure %s series %q: non-positive y %g at x=%g",
					fig.ID, s.Name, y, s.X[i])
			}
		}
	}
	var sb strings.Builder
	if err := WriteText(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), fig.ID) {
		t.Fatalf("rendered figure missing ID: %q", sb.String()[:60])
	}
}

func seriesByName(t *testing.T, fig *Figure, name string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, name)
	return Series{}
}

func TestFig5aShape(t *testing.T) {
	fig, err := Fig5a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 5)
	// Paper: response drops substantially as f grows; with enough sites
	// TreeSchedule at high f beats Synchronous.
	f3 := seriesByName(t, fig, "TreeSchedule f=0.3")
	f9 := seriesByName(t, fig, "TreeSchedule f=0.9")
	sync := seriesByName(t, fig, "Synchronous")
	last := len(f9.Y) - 1
	if f9.Y[last] >= f3.Y[last] {
		t.Fatalf("f=0.9 (%g) not better than f=0.3 (%g) at max sites",
			f9.Y[last], f3.Y[last])
	}
	if f9.Y[last] >= sync.Y[last] {
		t.Fatalf("TreeSchedule f=0.9 (%g) not better than Synchronous (%g)",
			f9.Y[last], sync.Y[last])
	}
}

func TestFig5bShape(t *testing.T) {
	fig, err := Fig5b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 8)
	// TreeSchedule consistently beats Synchronous at every ε; the gap is
	// larger for smaller ε (less overlap leaves more idle time to share).
	for _, eps := range []string{"0.1", "0.3", "0.5", "0.7"} {
		ts := seriesByName(t, fig, "TreeSchedule ε="+eps)
		ss := seriesByName(t, fig, "Synchronous ε="+eps)
		for i := range ts.Y {
			if ts.Y[i] >= ss.Y[i] {
				t.Fatalf("ε=%s: TreeSchedule %g not better than Synchronous %g at P=%g",
					eps, ts.Y[i], ss.Y[i], ts.X[i])
			}
		}
	}
	gapLow := seriesByName(t, fig, "Synchronous ε=0.1").Y[0] / seriesByName(t, fig, "TreeSchedule ε=0.1").Y[0]
	gapHigh := seriesByName(t, fig, "Synchronous ε=0.7").Y[0] / seriesByName(t, fig, "TreeSchedule ε=0.7").Y[0]
	if gapLow <= gapHigh {
		t.Fatalf("sharing benefit not larger at low overlap: %.3f vs %.3f", gapLow, gapHigh)
	}
}

func TestFig6aShape(t *testing.T) {
	fig, err := Fig6a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 4)
	// TreeSchedule wins decisively at every query size and system size,
	// and the improvement does not collapse as queries grow (the paper
	// reports it growing; see EXPERIMENTS.md for the measured trend).
	for _, p := range []string{"20", "80"} {
		ts := seriesByName(t, fig, "TreeSchedule P="+p)
		ss := seriesByName(t, fig, "Synchronous P="+p)
		first := ss.Y[0] / ts.Y[0]
		lastIdx := len(ts.Y) - 1
		last := ss.Y[lastIdx] / ts.Y[lastIdx]
		for i := range ts.Y {
			if ss.Y[i]/ts.Y[i] < 1.5 {
				t.Fatalf("P=%s: improvement only %.3f at %g joins",
					p, ss.Y[i]/ts.Y[i], ts.X[i])
			}
		}
		if last <= first*0.7 {
			t.Fatalf("P=%s: improvement collapsed with query size: %.3f -> %.3f",
				p, first, last)
		}
	}
}

func TestFig6bShape(t *testing.T) {
	fig, err := Fig6b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 6)
	// Near-optimality: the ratio to OPTBOUND stays far below the
	// worst-case (2d+1) = 7, and TreeSchedule >= the bound everywhere.
	for _, joins := range []string{"20J", "40J"} {
		ratio := seriesByName(t, fig, "ratio "+joins)
		for i, y := range ratio.Y {
			if y < 1-1e-9 {
				t.Fatalf("%s: ratio %g < 1 at P=%g — not a lower bound", joins, y, ratio.X[i])
			}
			if y > 4 {
				t.Fatalf("%s: ratio %g implausibly far from optimal", joins, y)
			}
		}
	}
}

func TestMalleableFigure(t *testing.T) {
	fig, err := Malleable(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	gf := seriesByName(t, fig, "Malleable GF")
	lb := seriesByName(t, fig, "LB of chosen N")
	for i := range gf.Y {
		if gf.Y[i] < lb.Y[i]-1e-9 {
			t.Fatalf("GF response %g below its own LB %g", gf.Y[i], lb.Y[i])
		}
		if gf.Y[i] > 7*lb.Y[i]+1e-9 {
			t.Fatalf("GF response %g above (2d+1)·LB %g", gf.Y[i], 7*lb.Y[i])
		}
	}
}

func TestOrderAblationFigure(t *testing.T) {
	fig, err := OrderAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestShelfAblationFigure(t *testing.T) {
	fig, err := ShelfAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
}

func TestContentionAblationFigure(t *testing.T) {
	fig, err := ContentionAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	// γ = 0 is the cheapest evaluation; response grows with γ.
	g0 := seriesByName(t, fig, "TreeSchedule @ γ_disk=0.0")
	g3 := seriesByName(t, fig, "TreeSchedule @ γ_disk=0.3")
	for i := range g0.Y {
		if g3.Y[i] < g0.Y[i]-1e-9 {
			t.Fatalf("penalized response %g below base %g at P=%g",
				g3.Y[i], g0.Y[i], g0.X[i])
		}
	}
}

func TestMemoryAblationFigure(t *testing.T) {
	fig, err := MemoryAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	resp := seriesByName(t, fig, "response")
	spill := seriesByName(t, fig, "spilled (MB)")
	// Tightest memory must spill the most and respond slowest (compare
	// the 1 MB point against the A1 point).
	last := len(resp.Y) - 1
	if resp.Y[0] <= resp.Y[last] {
		t.Fatalf("1 MB response %g not worse than infinite %g", resp.Y[0], resp.Y[last])
	}
	if spill.Y[0] <= 0 || spill.Y[last] != 0 {
		t.Fatalf("spills: tight %g, infinite %g", spill.Y[0], spill.Y[last])
	}
}

func TestShapeAblationFigure(t *testing.T) {
	fig, err := ShapeAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	ts := seriesByName(t, fig, "TreeSchedule")
	ss := seriesByName(t, fig, "Synchronous")
	// Right-deep (x = 2) serializes everything: it must be the slowest
	// shape for TreeSchedule, and TreeSchedule wins on bushy shapes.
	if ts.Y[2] <= ts.Y[0] {
		t.Fatalf("right-deep %g not slower than bushy %g under TreeSchedule",
			ts.Y[2], ts.Y[0])
	}
	if ts.Y[0] >= ss.Y[0] {
		t.Fatalf("bushy: TreeSchedule %g not better than Synchronous %g", ts.Y[0], ss.Y[0])
	}
}

func TestPlanSearchAblationFigure(t *testing.T) {
	fig, err := PlanSearchAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 6)
	first := seriesByName(t, fig, "first plan (two-phase)")
	best := seriesByName(t, fig, "best of 8 (unpruned)")
	pruned := seriesByName(t, fig, "best of 8 (bound-pruned)")
	stream := seriesByName(t, fig, "best of 8 (streaming)")
	frac := seriesByName(t, fig, "pruned fraction")
	schedFrac := seriesByName(t, fig, "streaming scheduled fraction")
	for i := range best.Y {
		if best.Y[i] > first.Y[i]+1e-9 {
			t.Fatalf("best-of-K %g worse than first plan %g at P=%g",
				best.Y[i], first.Y[i], best.X[i])
		}
		// The bound-pruned and streaming arms must be the unpruned arm,
		// exactly: the figure runs all three over one candidate pool and
		// A11's claim is that pruning is outcome-invisible.
		if pruned.Y[i] != best.Y[i] {
			t.Fatalf("bound-pruned mean %g != unpruned %g at P=%g",
				pruned.Y[i], best.Y[i], pruned.X[i])
		}
		if stream.Y[i] != best.Y[i] {
			t.Fatalf("streaming mean %g != unpruned %g at P=%g",
				stream.Y[i], best.Y[i], stream.X[i])
		}
		if frac.Y[i] < 0 || frac.Y[i] > 1 {
			t.Fatalf("pruned fraction %g outside [0,1] at P=%g", frac.Y[i], frac.X[i])
		}
		// Streaming tightens the incumbent after every schedule, so it
		// never fully schedules more candidates than the pool leaves
		// unpruned.
		if schedFrac.Y[i] <= 0 || schedFrac.Y[i] > 1 {
			t.Fatalf("streaming scheduled fraction %g outside (0,1] at P=%g",
				schedFrac.Y[i], schedFrac.X[i])
		}
		if schedFrac.Y[i] > 1-frac.Y[i]+1e-9 {
			t.Fatalf("streaming scheduled fraction %g exceeds pool's unpruned fraction %g at P=%g",
				schedFrac.Y[i], 1-frac.Y[i], schedFrac.X[i])
		}
	}
}

func TestPipelineAblationFigure(t *testing.T) {
	fig, err := PipelineAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
	ratio := seriesByName(t, fig, "ratio")
	for i, y := range ratio.Y {
		if y < 1-1e-6 {
			t.Fatalf("pipeline sim %g below analytic at P=%g", y, ratio.X[i])
		}
		if y > 2 {
			t.Fatalf("pipeline abstraction error %g implausible at P=%g", y, ratio.X[i])
		}
	}
}

func TestBatchAblationFigure(t *testing.T) {
	c := tiny()
	c.Queries = 4 // the ablation groups queries in fours
	fig, err := BatchAblation(c)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	serial := seriesByName(t, fig, "back-to-back")
	batch := seriesByName(t, fig, "batched (4 queries)")
	for i := range batch.Y {
		if batch.Y[i] >= serial.Y[i] {
			t.Fatalf("batching did not pay at P=%g: %g vs %g",
				batch.X[i], batch.Y[i], serial.Y[i])
		}
	}
}

func TestBatchAblationNeedsEnoughQueries(t *testing.T) {
	c := tiny()
	c.Queries = 2
	if _, err := BatchAblation(c); err == nil {
		t.Fatal("2-query config accepted for 4-query batches")
	}
}

func TestDeclusterAblationFigure(t *testing.T) {
	fig, err := DeclusterAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	fl := seriesByName(t, fig, "floating scans")
	ro := seriesByName(t, fig, "declustered scans")
	for i := range fl.Y {
		if ro.Y[i] < fl.Y[i]*0.999 {
			t.Fatalf("rooted scans beat floating at P=%g: %g vs %g",
				fl.X[i], ro.Y[i], fl.Y[i])
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(Quick())
	for _, want := range []string{"1 MIPS", "20 msec", "15 msec", "0.6 usec", "128 bytes", "5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresRejectInvalidConfig(t *testing.T) {
	bad := Config{}
	for name, fn := range map[string]func(Config) (*Figure, error){
		"5a": Fig5a, "5b": Fig5b, "6a": Fig6a, "6b": Fig6b,
		"malleable": Malleable, "order": OrderAblation,
	} {
		if _, err := fn(bad); err == nil {
			t.Errorf("%s accepted invalid config", name)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID: "x", XLabel: "sites",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, fig); err != nil {
		t.Fatal(err)
	}
	want := "sites,a,b\n1,10,30\n2,20,40\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, &Figure{XLabel: "x"}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x\n" {
		t.Fatalf("empty CSV = %q", sb.String())
	}
}

func TestWriteTextEmptyFigure(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, &Figure{ID: "x", Title: "t"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no series") {
		t.Fatalf("empty figure rendering: %q", sb.String())
	}
}
