package malleable

import (
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
)

func TestCandidatesSingleSite(t *testing.T) {
	// P = 1: the family is exactly the all-ones parallelization.
	s := testScheduler(1, 0.5)
	ops := randomOperators(rand.New(rand.NewSource(1)), 4)
	family, err := s.Candidates(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(family) != 1 {
		t.Fatalf("family size = %d, want 1", len(family))
	}
	for _, n := range family[0] {
		if n != 1 {
			t.Fatalf("P=1 candidate = %v", family[0])
		}
	}
}

func TestCandidatesSingleOperator(t *testing.T) {
	// One operator: the family walks its degree from 1 to P.
	s := testScheduler(6, 0.5)
	ops := randomOperators(rand.New(rand.NewSource(2)), 1)
	family, err := s.Candidates(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(family) != 6 {
		t.Fatalf("family size = %d, want 6", len(family))
	}
	for k, cand := range family {
		if cand[0] != k+1 {
			t.Fatalf("candidate %d = %v", k, cand)
		}
	}
}

func TestParallelizationClone(t *testing.T) {
	n := Parallelization{1, 2, 3}
	c := n.Clone()
	c[0] = 99
	if n[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestLBEmptyOperators(t *testing.T) {
	s := testScheduler(4, 0.5)
	if got := s.LB(nil, nil); got != 0 {
		t.Fatalf("LB(empty) = %g", got)
	}
}

func TestHeterogeneousSizesGetHeterogeneousDegrees(t *testing.T) {
	// A huge and a tiny operator: the selected parallelization must give
	// the huge one strictly more sites.
	m := costmodel.Default()
	s := testScheduler(12, 0.5)
	ops := []Operator{
		{ID: 0, Cost: m.Cost(costmodel.OpSpec{Kind: costmodel.Scan, InTuples: 100000, NetOut: true})},
		{ID: 1, Cost: m.Cost(costmodel.OpSpec{Kind: costmodel.Scan, InTuples: 1000, NetOut: true})},
	}
	n, _, err := s.Select(ops)
	if err != nil {
		t.Fatal(err)
	}
	if n[0] <= n[1] {
		t.Fatalf("selected N = %v: big op not favored", n)
	}
}
