// Package malleable implements Section 7 of the paper: list scheduling
// of malleable independent operators, where the scheduler — not a
// coarse-granularity condition — chooses each floating operator's degree
// of partitioned parallelism to minimize response time over all
// possible parallel schedules.
//
// Following the GF method of Turek et al. [TWY92], a greedy selection
// builds a family of candidate parallelizations:
//
//  1. N¹ = (1, 1, …, 1), the minimum total work parallelization;
//  2. N^k is N^{k−1} with the degree of the operator whose execution
//     time equals h(N^{k−1}) (the slowest operator) increased by one;
//  3. stop when no more sites can be allotted to that operator.
//
// The candidate minimizing LB(N) = max{ l(S(N))/P, h(N) } is handed to
// the OperatorSchedule list-scheduling rule; by Lemma 7.2 the family
// contains a parallelization dominated by the optimal one, so the final
// schedule is within (2d+1) of the optimal schedule over all
// parallelizations (Theorem 7.1). The only model property required is
// that total work vectors are componentwise non-decreasing in the degree
// of parallelism, which holds here because the startup area α·N grows
// with N.
package malleable

import (
	"fmt"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Operator is one malleable floating operator.
type Operator struct {
	// ID is a caller-assigned identifier, unique within one call.
	ID int
	// Cost is the operator's costed form (processing vector plus
	// interconnect bytes), from which every parallelization's work
	// vectors derive.
	Cost costmodel.OpCost
}

// Parallelization holds one degree of partitioned parallelism per
// operator, aligned with the operator slice it was derived from.
type Parallelization []int

// Clone returns an independent copy.
func (n Parallelization) Clone() Parallelization {
	out := make(Parallelization, len(n))
	copy(out, n)
	return out
}

// Scheduler runs the Section 7 pipeline: candidate generation, lower
// bound selection, and list scheduling.
type Scheduler struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// P is the number of system sites.
	P int
	// Rec, when non-nil, receives the decision trace: one reshape event
	// per GF step (which operator's degree grew and the h(N) that drove
	// it), the final candidate selection, and the placement events of
	// the list-scheduling pass. Nil disables recording.
	Rec obs.Recorder
}

// Validate reports the first nonsensical configuration field.
func (s Scheduler) Validate() error {
	if err := s.Model.Params.Validate(); err != nil {
		return err
	}
	if s.P <= 0 {
		return fmt.Errorf("malleable: non-positive site count %d", s.P)
	}
	return nil
}

// h returns h(N) = max_i T^par(op_i, N_i) and the index of an operator
// achieving it (smallest index on ties, for determinism).
func (s Scheduler) h(ops []Operator, n Parallelization) (float64, int) {
	worst, at := -1.0, -1
	for i, op := range ops {
		if t := s.Model.TPar(op.Cost, n[i], s.Overlap); t > worst {
			worst, at = t, i
		}
	}
	return worst, at
}

// LB returns LB(N) = max{ l(S(N))/P, h(N) }, the lower bound on the
// optimal response time for the given parallelization.
func (s Scheduler) LB(ops []Operator, n Parallelization) float64 {
	if len(ops) == 0 {
		return 0
	}
	total := vector.New(resource.Dims)
	for i, op := range ops {
		total.AddInPlace(s.Model.TotalWork(op.Cost, n[i]))
	}
	lb := total.Length() / float64(s.P)
	if h, _ := s.h(ops, n); h > lb {
		lb = h
	}
	return lb
}

// Candidates generates the greedy GF family of parallelizations. The
// family size is bounded by 1 + M(P−1).
func (s Scheduler) Candidates(ops []Operator) ([]Parallelization, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("malleable: no operators")
	}
	seen := make(map[int]bool, len(ops))
	for _, op := range ops {
		if seen[op.ID] {
			return nil, fmt.Errorf("malleable: duplicate operator ID %d", op.ID)
		}
		seen[op.ID] = true
	}

	cur := make(Parallelization, len(ops))
	for i := range cur {
		cur[i] = 1
	}
	family := []Parallelization{cur.Clone()}
	for {
		h, slowest := s.h(ops, cur)
		if cur[slowest] >= s.P {
			// No more sites can be allotted to the largest operator.
			return family, nil
		}
		cur[slowest]++
		if s.Rec != nil {
			s.Rec.Count("malleable.reshapes", 1)
			s.Rec.Event(obs.Event{
				Type: obs.EvReshape, Op: ops[slowest].ID,
				From: cur[slowest] - 1, Degree: cur[slowest], H: h,
			})
		}
		family = append(family, cur.Clone())
	}
}

// Select returns the candidate with the minimum lower bound LB(N),
// breaking ties toward the earlier (less parallel) candidate.
func (s Scheduler) Select(ops []Operator) (Parallelization, float64, error) {
	family, err := s.Candidates(ops)
	if err != nil {
		return nil, 0, err
	}
	var best Parallelization
	bestLB := 0.0
	for _, n := range family {
		lb := s.LB(ops, n)
		if best == nil || lb < bestLB-1e-15 {
			best, bestLB = n, lb
		}
	}
	if s.Rec != nil {
		s.Rec.Event(obs.Event{Type: obs.EvSelect, LB: bestLB})
	}
	return best, bestLB, nil
}

// Result couples the final schedule with the chosen parallelization and
// its lower bound.
type Result struct {
	// Parallelization is the selected degree vector N.
	Parallelization Parallelization
	// LB is LB(N), a lower bound on the optimal response time over all
	// parallelizations (by Lemma 7.2 the family's minimum LB lower-bounds
	// the unconstrained optimum's LB).
	LB float64
	// Schedule is the OperatorSchedule outcome for N.
	Schedule *sched.Result
}

// Schedule runs the complete malleable pipeline and returns the
// schedule, which is within (2d+1) of the optimal parallel schedule
// length (Theorem 7.1).
func (s Scheduler) Schedule(ops []Operator) (*Result, error) {
	n, lb, err := s.Select(ops)
	if err != nil {
		return nil, err
	}
	schedOps := make([]*sched.Op, len(ops))
	for i, op := range ops {
		schedOps[i] = &sched.Op{ID: op.ID, Clones: s.Model.Clones(op.Cost, n[i])}
	}
	res, err := sched.OperatorScheduleObserved(s.P, resource.Dims, s.Overlap, schedOps, s.Rec, 0)
	if err != nil {
		return nil, err
	}
	return &Result{Parallelization: n, LB: lb, Schedule: res}, nil
}

// CoarseGrainParallelization returns the CG_f degrees min{N_max(op, f),
// N_opt, P} for the same operators, for comparing the Section 7
// scheduler against the coarse-granularity rule it generalizes.
func (s Scheduler) CoarseGrainParallelization(ops []Operator, f float64) Parallelization {
	n := make(Parallelization, len(ops))
	for i, op := range ops {
		n[i] = s.Model.Degree(op.Cost, f, s.P, s.Overlap)
	}
	return n
}

// ScheduleFixed list-schedules the operators under a caller-supplied
// parallelization (e.g. a CG_f one), for head-to-head comparisons.
func (s Scheduler) ScheduleFixed(ops []Operator, n Parallelization) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(n) != len(ops) {
		return nil, fmt.Errorf("malleable: parallelization has %d entries for %d operators",
			len(n), len(ops))
	}
	schedOps := make([]*sched.Op, len(ops))
	for i, op := range ops {
		if n[i] < 1 || n[i] > s.P {
			return nil, fmt.Errorf("malleable: degree %d for op %d outside [1, P]", n[i], op.ID)
		}
		schedOps[i] = &sched.Op{ID: op.ID, Clones: s.Model.Clones(op.Cost, n[i])}
	}
	res, err := sched.OperatorSchedule(s.P, resource.Dims, s.Overlap, schedOps)
	if err != nil {
		return nil, err
	}
	return &Result{Parallelization: n.Clone(), LB: s.LB(ops, n), Schedule: res}, nil
}

// FamilySizeBound returns 1 + M(P−1), the Section 7 bound on the number
// of generated parallelizations.
func FamilySizeBound(m, p int) int { return 1 + m*(p-1) }
