package malleable

import (
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/resource"
)

func tracedOps(seed int64, m int) []Operator {
	r := rand.New(rand.NewSource(seed))
	model := costmodel.Default()
	ops := make([]Operator, m)
	for i := range ops {
		spec := costmodel.OpSpec{
			InTuples:     1000 + r.Intn(50000),
			ResultTuples: 1000 + r.Intn(50000),
		}
		ops[i] = Operator{ID: i, Cost: model.Cost(spec)}
	}
	return ops
}

// TestReshapeTraceMatchesFamily pins the malleable trace contract: one
// reshape event per GF step beyond N¹, each growing a degree by exactly
// one, followed by one select event carrying the chosen lower bound.
func TestReshapeTraceMatchesFamily(t *testing.T) {
	ops := tracedOps(17, 4)
	cap := obs.NewCapture()
	met := obs.NewMetrics()
	s := Scheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       8,
		Rec:     obs.Multi(cap, met),
	}
	res, err := s.Schedule(ops)
	if err != nil {
		t.Fatal(err)
	}

	// An identical untraced scheduler must produce the same family, so
	// tracing is observational only.
	plain := s
	plain.Rec = nil
	family, err := plain.Candidates(ops)
	if err != nil {
		t.Fatal(err)
	}

	reshapes, selects := 0, 0
	for _, e := range cap.Events() {
		switch e.Type {
		case obs.EvReshape:
			reshapes++
			if e.Degree != e.From+1 {
				t.Fatalf("reshape grew degree %d -> %d", e.From, e.Degree)
			}
			if e.Op < 0 || e.Op >= len(ops) {
				t.Fatalf("reshape names unknown op %d", e.Op)
			}
		case obs.EvSelect:
			selects++
			if e.LB != res.LB {
				t.Fatalf("select LB %g != result LB %g", e.LB, res.LB)
			}
		}
	}
	if reshapes != len(family)-1 {
		t.Fatalf("%d reshape events for a family of %d", reshapes, len(family))
	}
	if selects != 1 {
		t.Fatalf("%d select events", selects)
	}
	if met.Snapshot().Counters["malleable.reshapes"] != int64(reshapes) {
		t.Fatal("reshape counter disagrees with events")
	}

	// The list-scheduling pass runs under the same recorder: its place
	// events must cover the final parallelization's clones.
	places := obs.TraceAssignments(cap.Events())
	want := 0
	for _, n := range res.Parallelization {
		want += n
	}
	if len(places) != want {
		t.Fatalf("trace has %d placements, parallelization has %d clones", len(places), want)
	}
}
