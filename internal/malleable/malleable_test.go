package malleable

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdrs/internal/costmodel"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func testScheduler(p int, eps float64) Scheduler {
	return Scheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(eps),
		P:       p,
	}
}

func randomOperators(r *rand.Rand, m int) []Operator {
	model := costmodel.Default()
	ops := make([]Operator, m)
	for i := range ops {
		kind := costmodel.Scan
		if r.Intn(2) == 0 {
			kind = costmodel.Probe
		}
		ops[i] = Operator{
			ID: i,
			Cost: model.Cost(costmodel.OpSpec{
				Kind:         kind,
				InTuples:     1000 + r.Intn(99000),
				ResultTuples: 1000 + r.Intn(99000),
				NetIn:        kind == costmodel.Probe,
				NetOut:       true,
			}),
		}
	}
	return ops
}

func TestValidate(t *testing.T) {
	if err := testScheduler(10, 0.5).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Scheduler{Model: costmodel.Default(), P: 0}).Validate(); err == nil {
		t.Fatal("P = 0 accepted")
	}
	if err := (Scheduler{P: 5}).Validate(); err == nil {
		t.Fatal("zero model accepted")
	}
}

func TestCandidatesRejections(t *testing.T) {
	s := testScheduler(4, 0.5)
	if _, err := s.Candidates(nil); err == nil {
		t.Fatal("empty operator set accepted")
	}
	ops := randomOperators(rand.New(rand.NewSource(1)), 2)
	ops[1].ID = ops[0].ID
	if _, err := s.Candidates(ops); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestCandidatesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := testScheduler(6, 0.5)
	ops := randomOperators(r, 4)
	family, err := s.Candidates(ops)
	if err != nil {
		t.Fatal(err)
	}
	// First candidate is all ones.
	for i, n := range family[0] {
		if n != 1 {
			t.Fatalf("N^1[%d] = %d, want 1", i, n)
		}
	}
	// Each successive candidate adds exactly one site to exactly one
	// operator, and never exceeds P.
	for k := 1; k < len(family); k++ {
		diff, grew := 0, -1
		for i := range family[k] {
			switch family[k][i] - family[k-1][i] {
			case 0:
			case 1:
				diff++
				grew = i
			default:
				t.Fatalf("candidate %d changed op %d by %d", k, i,
					family[k][i]-family[k-1][i])
			}
			if family[k][i] > s.P {
				t.Fatalf("candidate %d gives op %d degree %d > P", k, i, family[k][i])
			}
		}
		if diff != 1 {
			t.Fatalf("candidate %d grew %d operators, want 1", k, diff)
		}
		// The grown operator was the slowest in the previous candidate.
		_, slowest := s.h(ops, family[k-1])
		if grew != slowest {
			t.Fatalf("candidate %d grew op %d, slowest was %d", k, grew, slowest)
		}
	}
	// Termination: the slowest operator of the last candidate is at P.
	last := family[len(family)-1]
	_, slowest := s.h(ops, last)
	if last[slowest] != s.P {
		t.Fatalf("family ended with slowest op at degree %d != P", last[slowest])
	}
}

func TestFamilySizeBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m := 1 + r.Intn(6)
		p := 1 + r.Intn(12)
		s := testScheduler(p, r.Float64())
		ops := randomOperators(r, m)
		family, err := s.Candidates(ops)
		if err != nil {
			t.Fatal(err)
		}
		if len(family) > FamilySizeBound(m, p) {
			t.Fatalf("family size %d > bound %d (M=%d, P=%d)",
				len(family), FamilySizeBound(m, p), m, p)
		}
	}
}

func TestSelectPicksMinimumLB(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := testScheduler(8, 0.5)
	ops := randomOperators(r, 5)
	family, err := s.Candidates(ops)
	if err != nil {
		t.Fatal(err)
	}
	n, lb, err := s.Select(ops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-s.LB(ops, n)) > 1e-12 {
		t.Fatalf("returned LB %g != LB(N) %g", lb, s.LB(ops, n))
	}
	for _, cand := range family {
		if s.LB(ops, cand) < lb-1e-9 {
			t.Fatalf("candidate %v has LB %g < selected %g", cand, s.LB(ops, cand), lb)
		}
	}
}

func TestScheduleWithinTheoremBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		p := 2 + r.Intn(14)
		s := testScheduler(p, r.Float64())
		ops := randomOperators(r, 1+r.Intn(8))
		res, err := s.Schedule(ops)
		if err != nil {
			t.Fatal(err)
		}
		bound := sched.PerformanceRatioBound(resource.Dims) * res.LB
		if res.Schedule.Response > bound+1e-9 {
			t.Fatalf("response %g > (2d+1)·LB = %g", res.Schedule.Response, bound)
		}
		if res.Schedule.Response < res.LB-1e-9 {
			t.Fatalf("response %g < LB %g", res.Schedule.Response, res.LB)
		}
	}
}

func TestMalleableAtLeastAsGoodLBAsCoarseGrain(t *testing.T) {
	// The GF family contains every "grow the slowest op" prefix, so its
	// minimum LB can only beat or match the LB of the all-ones
	// parallelization; and the selected LB must also not exceed the CG_f
	// candidate's LB when that candidate happens to be in the family.
	// The universally true statement: selected LB <= LB(all ones).
	r := rand.New(rand.NewSource(6))
	s := testScheduler(10, 0.5)
	ops := randomOperators(r, 6)
	_, lb, err := s.Select(ops)
	if err != nil {
		t.Fatal(err)
	}
	ones := make(Parallelization, len(ops))
	for i := range ones {
		ones[i] = 1
	}
	if lb > s.LB(ops, ones)+1e-9 {
		t.Fatalf("selected LB %g > LB(1,…,1) = %g", lb, s.LB(ops, ones))
	}
}

func TestCoarseGrainParallelizationCaps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := testScheduler(12, 0.5)
	ops := randomOperators(r, 5)
	for _, f := range []float64{0.3, 0.7} {
		n := s.CoarseGrainParallelization(ops, f)
		for i, op := range ops {
			if n[i] < 1 || n[i] > s.P {
				t.Fatalf("degree %d outside [1, P]", n[i])
			}
			if n[i] > s.Model.NMax(op.Cost, f) {
				t.Fatalf("degree %d > N_max %d", n[i], s.Model.NMax(op.Cost, f))
			}
		}
	}
}

func TestScheduleFixed(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := testScheduler(6, 0.4)
	ops := randomOperators(r, 4)
	n := Parallelization{1, 2, 3, 1}
	res, err := s.ScheduleFixed(ops, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if len(res.Schedule.Sites[op.ID]) != n[i] {
			t.Fatalf("op %d scheduled with %d clones, want %d",
				op.ID, len(res.Schedule.Sites[op.ID]), n[i])
		}
	}
	// Error paths.
	if _, err := s.ScheduleFixed(ops, Parallelization{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := s.ScheduleFixed(ops, Parallelization{0, 1, 1, 1}); err == nil {
		t.Fatal("zero degree accepted")
	}
	if _, err := s.ScheduleFixed(ops, Parallelization{7, 1, 1, 1}); err == nil {
		t.Fatal("degree > P accepted")
	}
}

func TestMalleableBeatsOrMatchesCoarseGrainOnAverage(t *testing.T) {
	// The malleable scheduler optimizes over a family that includes
	// near-sequential parallelizations; averaged over instances its
	// response should not be worse than the f = 0.7 coarse-grain rule by
	// more than a small factor (they often coincide).
	r := rand.New(rand.NewSource(9))
	sumMal, sumCG := 0.0, 0.0
	s := testScheduler(16, 0.5)
	for trial := 0; trial < 20; trial++ {
		ops := randomOperators(r, 6)
		mal, err := s.Schedule(ops)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := s.ScheduleFixed(ops, s.CoarseGrainParallelization(ops, 0.7))
		if err != nil {
			t.Fatal(err)
		}
		sumMal += mal.Schedule.Response
		sumCG += cg.Schedule.Response
	}
	if sumMal > sumCG*1.25 {
		t.Fatalf("malleable total %g much worse than coarse-grain total %g", sumMal, sumCG)
	}
}

// Property: the work-vector monotonicity Theorem 7.1 relies on —
// n <= m implies TotalWork(n) <=_d TotalWork(m) — holds for the cost
// model, and LB is monotone under refinement of no operator... assert
// the first part plus LB >= h for every candidate.
func TestQuickMonotoneWorkAndLB(t *testing.T) {
	model := costmodel.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomOperators(r, 1+r.Intn(5))
		s := testScheduler(2+r.Intn(10), r.Float64())
		for _, op := range ops {
			n := 1 + r.Intn(s.P)
			m := n + r.Intn(s.P)
			if !model.TotalWork(op.Cost, n).LE(model.TotalWork(op.Cost, m)) {
				return false
			}
		}
		family, err := s.Candidates(ops)
		if err != nil {
			return false
		}
		for _, cand := range family {
			h, _ := s.h(ops, cand)
			if s.LB(ops, cand) < h-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMalleableSchedule(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := testScheduler(32, 0.5)
	ops := randomOperators(r, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(ops); err != nil {
			b.Fatal(err)
		}
	}
}
