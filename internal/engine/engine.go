package engine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/par"
	"mdrs/internal/plan"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Engine executes a scheduled plan over a generated Dataset, metering
// every clone's work against virtual resource clocks.
type Engine struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// Parallel runs each operator's clones on separate goroutines
	// (results are merged in clone order, so output is deterministic
	// either way). The goroutine count is clamped to GOMAXPROCS through
	// the internal/par pool — a degree-512 operator no longer spawns
	// 512 goroutines — while the lowest-index-error contract holds.
	Parallel bool
	// Reference selects the pre-vectorization executor: map-based hash
	// tables, append-per-tuple partitioning, per-tuple ds.Key lookups,
	// full-copy concats, and one goroutine per clone in Parallel mode.
	// Its Report is byte-identical to the flat path's — the identity
	// corpus and mdrs-bench -engine-bench enforce it live — so it
	// serves as the oracle and the "before" arm of BENCH_engine.json.
	Reference bool
	// Rec, when non-nil, receives execution counters (tuples, clone
	// runs, arena reuse/alloc tallies, flat-table layout tallies), the
	// run/phase timers, and exec_phase trace events. Recorders must be
	// safe for concurrent use when Parallel is set; all the
	// internal/obs implementations are. Nil disables recording.
	Rec obs.Recorder

	// failClone, when non-nil, is consulted before every clone body runs
	// and aborts the clone with the returned error. It exists so tests
	// can inject clone failures into otherwise-infallible arms (the
	// regression tests for the once-dropped Scan error path).
	failClone func(op *plan.Operator, clone int) error

	// ctx is the run's cancellation context, set by RunCtx on its local
	// receiver copy (Engine methods take value receivers, so it never
	// leaks between runs). Checked by the phase loop and before every
	// clone body.
	ctx context.Context
}

// OpReport breaks one executed operator out of a Report: what the
// scheduler predicted for it against what the meters actually measured.
type OpReport struct {
	// Name is the operator's label, e.g. "probe(J3)".
	Name string
	// Kind is the physical operator type.
	Kind costmodel.OpKind
	// Phase is the synchronized phase the operator executed in.
	Phase int
	// Degree is the degree of partitioned parallelism.
	Degree int
	// Rooted marks operators whose placement was fixed before list
	// scheduling.
	Rooted bool
	// Predicted is the scheduler's isolated parallel execution time
	// T^par(op, N) for the operator (Equation 1).
	Predicted float64
	// Measured is the slowest clone's T^seq over the actually metered
	// work vectors — the operator's isolated execution time as run.
	Measured float64
	// OutTuples is the operator's observed output cardinality (0 for
	// builds, whose hash table does not stream on).
	OutTuples int
}

// Report summarizes one execution.
type Report struct {
	// ResultTuples is the cardinality of the query result.
	ResultTuples int
	// JoinResults maps each join ID to its observed result cardinality.
	JoinResults map[int]int
	// PhaseMeasured holds, per phase, the response time computed from
	// the clones' actually metered work vectors via Equation 3.
	PhaseMeasured []float64
	// PhasePredicted holds the scheduler's analytic response per phase,
	// aligned with PhaseMeasured, so divergence can be localized to a
	// phase instead of eyeballing end-to-end totals.
	PhasePredicted []float64
	// Operators breaks the run down per operator, in execution order —
	// the metered-vs-predicted comparison at operator granularity.
	Operators []OpReport
	// Measured is the end-to-end measured response (sum of phases).
	Measured float64
	// Predicted is the scheduler's analytic response for comparison.
	Predicted float64
}

// cloneMeter accumulates one clone's actual resource usage.
type cloneMeter struct {
	work vector.Vector
}

func newMeter() *cloneMeter { return &cloneMeter{work: vector.New(resource.Dims)} }

func (c *cloneMeter) addCPU(instr float64, p costmodel.Params) {
	c.work[resource.CPU] += instr / (p.MIPS * 1e6)
}
func (c *cloneMeter) addDiskPages(pages int, p costmodel.Params) {
	c.work[resource.Disk] += float64(pages) * p.DiskPageTime
}
func (c *cloneMeter) addNetTuples(tuples int, p costmodel.Params) {
	c.work[resource.Net] += p.Beta * p.Bytes(tuples)
}

// runState is the per-run execution state: the dataflow outputs, the
// live build tables, and (on the flat path) the buffer arena plus the
// ownership set that lets consumed intermediates recycle.
type runState struct {
	outputs map[*plan.Operator][]Tuple
	// ar / owned / tables drive the flat data path. owned marks outputs
	// whose backing came from the arena (probe results and store
	// pass-throughs) — scan outputs alias the dataset's cached leaf
	// slices and must never be recycled.
	ar     *arena
	owned  map[*plan.Operator]bool
	tables map[int]*joinTables
	// refTables is the Reference path's join ID -> per-clone map tables.
	refTables map[int][]map[int32][]Tuple
	// flat-table layout tallies, flushed to the recorder after the run.
	nDirect, nCSR, nOA int64
}

func newRunState(reference bool, nOps int) *runState {
	st := &runState{outputs: make(map[*plan.Operator][]Tuple, nOps)}
	if reference {
		st.refTables = make(map[int][]map[int32][]Tuple)
	} else {
		st.ar = arenaPool.Get().(*arena)
		st.owned = make(map[*plan.Operator]bool)
		st.tables = make(map[int]*joinTables)
	}
	return st
}

// release recycles op's output buffer after its single pipeline
// consumer has finished reading it. Outputs that alias non-arena
// memory (leaf caches) are left alone.
func (st *runState) release(op *plan.Operator) {
	if op == nil || !st.owned[op] {
		return
	}
	st.ar.putTuples(st.outputs[op])
	delete(st.owned, op)
}

// Run executes the schedule over the dataset. The schedule must have
// been produced for the same plan (the same *query.PlanNode) the dataset
// was generated from.
func (e Engine) Run(ds *Dataset, s *sched.Schedule) (*Report, error) {
	return e.RunCtx(context.Background(), ds, s)
}

// RunCtx is Run with a cancellation context: the phase loop and every
// clone body check ctx, so a cancelled or deadline-expired execution
// stops promptly and returns ctx.Err() (possibly wrapped with the
// failing operator's name) instead of metering the rest of the plan. A
// run that completes is identical to Run.
func (e Engine) RunCtx(ctx context.Context, ds *Dataset, s *sched.Schedule) (*Report, error) {
	if err := e.Model.Params.Validate(); err != nil {
		return nil, err
	}
	e.ctx = ctx
	// The schedule carries the operator tree; locate the root (the one
	// operator with no consumer) and sanity-check coverage.
	var root *plan.Operator
	nOps := 0
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Op == nil {
				return nil, fmt.Errorf("engine: schedule has a placement without an operator")
			}
			nOps++
			if pl.Op.Consumer == nil {
				if root != nil {
					return nil, fmt.Errorf("engine: schedule has two root operators")
				}
				root = pl.Op
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("engine: schedule has no root operator")
	}

	rep := &Report{JoinResults: make(map[int]int), Predicted: s.Response}
	st := newRunState(e.Reference, nOps)
	start := time.Now()
	defer func() {
		if e.Rec != nil {
			e.Rec.Count("engine.runs", 1)
			e.Rec.Count("engine.run_ns", time.Since(start).Nanoseconds())
			e.Rec.Observe("engine.run_seconds", time.Since(start).Seconds())
			if st.ar != nil {
				e.Rec.Count("engine.arena_reuses", st.ar.reuses)
				e.Rec.Count("engine.arena_allocs", st.ar.allocs)
				e.Rec.Count("engine.tables_direct", st.nDirect)
				e.Rec.Count("engine.tables_csr", st.nCSR)
				e.Rec.Count("engine.tables_oa", st.nOA)
			}
		}
		if st.ar != nil {
			// Reclaim whatever owned outputs remain (normally just the
			// root's), then hand the arena to the next run.
			for op := range st.owned {
				st.ar.putTuples(st.outputs[op])
			}
			st.ar.resetStats()
			arenaPool.Put(st.ar)
			st.ar = nil
		}
	}()

	for phaseIdx, ph := range s.Phases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stop := obs.StartTimer(e.Rec, "engine.phase_seconds")
		sys := resource.NewSystem(s.P, resource.Dims, e.Overlap)
		// Producers have smaller IDs than consumers (post-order
		// expansion), so ID order is a valid pipeline topological order.
		placements := append([]*sched.OpPlacement(nil), ph.Placements...)
		for i := 0; i < len(placements); i++ {
			for j := i + 1; j < len(placements); j++ {
				if placements[j].Op.ID < placements[i].Op.ID {
					placements[i], placements[j] = placements[j], placements[i]
				}
			}
		}

		for _, pl := range placements {
			var meters []*cloneMeter
			var err error
			if e.Reference {
				meters, err = e.runOperatorRef(pl, ds, st.outputs, st.refTables, rep)
			} else {
				meters, err = e.runOperator(pl, ds, st, rep)
			}
			if err != nil {
				return nil, fmt.Errorf("engine: %s: %w", pl.Op.Name, err)
			}
			measured := 0.0
			for k, m := range meters {
				sys.Site(pl.Sites[k]).Assign(m.work)
				if t := e.Overlap.TSeq(m.work); t > measured {
					measured = t
				}
			}
			rep.Operators = append(rep.Operators, OpReport{
				Name:      pl.Op.Name,
				Kind:      pl.Op.Kind,
				Phase:     phaseIdx,
				Degree:    pl.Degree,
				Rooted:    pl.Rooted,
				Predicted: pl.TPar,
				Measured:  measured,
				OutTuples: len(st.outputs[pl.Op]),
			})
		}
		t := sys.MaxTSite()
		rep.PhaseMeasured = append(rep.PhaseMeasured, t)
		rep.PhasePredicted = append(rep.PhasePredicted, ph.Response)
		rep.Measured += t
		stop()
		if e.Rec != nil {
			e.Rec.Observe("engine.phase_measured", t)
			e.Rec.Event(obs.Event{Type: obs.EvExecPhase, Phase: phaseIdx, Response: t})
		}
	}

	rep.ResultTuples = len(st.outputs[root])
	want := root.Spec.ResultTuples
	if want == 0 && root.Kind == costmodel.Scan {
		want = root.Spec.InTuples
	}
	if rep.ResultTuples != want {
		return nil, fmt.Errorf("engine: result cardinality %d != expected %d",
			rep.ResultTuples, want)
	}
	return rep, nil
}

// checkPlacement rejects the two malformed-placement shapes that used
// to fail silently: a degree below one (divide-by-zero in partitionOf,
// empty splits) and a Sites/Degree mismatch (panic on the
// meter-to-site zip in Run).
func checkPlacement(pl *sched.OpPlacement) error {
	if pl.Degree < 1 {
		return fmt.Errorf("placement degree %d < 1", pl.Degree)
	}
	if len(pl.Sites) != pl.Degree {
		return fmt.Errorf("placement has %d sites for %d clones", len(pl.Sites), pl.Degree)
	}
	return nil
}

// newMeters builds one meter per clone and charges the coordinator's
// startup: clone 0 pays α·N, split evenly between CPU and network,
// exactly as the cost model plans it.
func newMeters(n int, p costmodel.Params) []*cloneMeter {
	meters := make([]*cloneMeter, n)
	for k := range meters {
		meters[k] = newMeter()
	}
	startup := p.Alpha * float64(n) / 2
	meters[0].work[resource.CPU] += startup
	meters[0].work[resource.Net] += startup
	return meters
}

// runOperator executes one placed operator through the flat data path
// and returns its per-clone meters (aligned with pl.Sites). Every
// meter value is identical to the reference path's: partition contents,
// match order, and result cardinalities are preserved exactly, so the
// two executors produce byte-identical Reports.
func (e Engine) runOperator(pl *sched.OpPlacement, ds *Dataset, st *runState,
	rep *Report) ([]*cloneMeter, error) {

	if err := checkPlacement(pl); err != nil {
		return nil, err
	}
	n := pl.Degree
	op := pl.Op
	p := e.Model.Params
	meters := newMeters(n, p)

	switch op.Kind {
	case costmodel.Scan:
		leafIdx, err := ds.LeafIndex(op.Source)
		if err != nil {
			return nil, err
		}
		all := ds.LeafTuples(leafIdx)
		parts := splitContiguous(all, n)
		err = e.eachClone(op, n, func(k int) error {
			rows := parts[k]
			pages := p.Pages(len(rows))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.ReadPageInstr+float64(len(rows))*p.ExtractInstr, p)
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(rows), p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// The contiguous parts tile the cached leaf slice in order, so
		// the scan's output IS that slice — no concat copy, no
		// ownership (the cache outlives the run).
		st.outputs[op] = all
		obs.Count(e.Rec, "engine.tuples_scanned", int64(len(all)))

	case costmodel.Build:
		in, prod, err := e.producerInput(op, st.outputs)
		if err != nil {
			return nil, err
		}
		rp, err := radixPartition(st.ar, ds, op.Source, in, n)
		if err != nil {
			return nil, err
		}
		jt := newJoinTables(st.ar, ds, op.Source, rp, n, OuterIsCarrier(op.Source))
		for k := range jt.clones {
			switch jt.clones[k].kind {
			case tableDirect:
				st.nDirect++
			case tableCSR:
				st.nCSR++
			default:
				st.nOA++
			}
		}
		err = e.eachClone(op, n, func(k int) error {
			if err := jt.clones[k].insert(rp.tuples[k], rp.keys[k]); err != nil {
				return err
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(rp.tuples[k]), p)
			}
			meters[k].addCPU(float64(len(rp.tuples[k]))*(p.ExtractInstr+p.HashInstr), p)
			return nil
		})
		if err != nil {
			jt.release(st.ar)
			rp.release(st.ar)
			return nil, err
		}
		st.tables[op.JoinID] = jt
		// The tables hold bare row numbers: the scattered tuples are no
		// longer needed, and neither is the producer's output.
		rp.release(st.ar)
		st.release(prod)
		st.outputs[op] = nil // the table is the output; nothing streams on
		obs.Count(e.Rec, "engine.tuples_built", int64(len(in)))

	case costmodel.Probe:
		jt, ok := st.tables[op.JoinID]
		if !ok {
			return nil, fmt.Errorf("probing join %d before its build", op.JoinID)
		}
		if len(jt.clones) != n {
			return nil, fmt.Errorf("probe degree %d != build degree %d", n, len(jt.clones))
		}
		in, prod, err := e.producerInput(op, st.outputs)
		if err != nil {
			return nil, err
		}
		rp, err := radixPartition(st.ar, ds, op.Source, in, n)
		if err != nil {
			return nil, err
		}
		outerCarrier := OuterIsCarrier(op.Source)
		out := make([][]Tuple, n)
		for k := 0; k < n; k++ {
			// Capacity hints: presence probes emit at most their input;
			// match probes emit (under the FK discipline) exactly the
			// build partition's size. Either way append can still grow.
			hint := len(rp.tuples[k])
			if !outerCarrier {
				hint = int(jt.clones[k].n)
			}
			out[k] = st.ar.getTuples(hint)[:0]
		}
		err = e.eachClone(op, n, func(k int) error {
			var res []Tuple
			var perr error
			if outerCarrier {
				res, perr = jt.clones[k].probePresence(rp.tuples[k], rp.keys[k], out[k])
			} else {
				res, perr = jt.clones[k].probeMatches(rp.keys[k], out[k])
			}
			if perr != nil {
				return perr
			}
			out[k] = res
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(rp.tuples[k]), p)
			}
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(res), p)
			}
			meters[k].addCPU(float64(len(rp.tuples[k]))*p.ProbeInstr+float64(len(res))*p.ExtractInstr, p)
			return nil
		})
		if err != nil {
			for k := range out {
				st.ar.putTuples(out[k])
			}
			rp.release(st.ar)
			return nil, err
		}
		total := 0
		for k := range out {
			total += len(out[k])
		}
		result := st.ar.getTuples(total)[:0]
		for k := range out {
			result = append(result, out[k]...)
			st.ar.putTuples(out[k])
		}
		rp.release(st.ar)
		st.release(prod)
		jt.release(st.ar)
		delete(st.tables, op.JoinID)
		rep.JoinResults[op.JoinID] = len(result)
		if len(result) != op.Spec.ResultTuples {
			return nil, fmt.Errorf("join %d produced %d tuples, expected %d",
				op.JoinID, len(result), op.Spec.ResultTuples)
		}
		st.outputs[op] = result
		st.owned[op] = true
		obs.Count(e.Rec, "engine.tuples_probed", int64(len(in)))
		obs.Count(e.Rec, "engine.tuples_joined", int64(len(result)))

	case costmodel.Store:
		in, prod, err := e.producerInput(op, st.outputs)
		if err != nil {
			return nil, err
		}
		parts := splitContiguous(in, n)
		err = e.eachClone(op, n, func(k int) error {
			pages := p.Pages(len(parts[k]))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.WritePageInstr, p)
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		st.outputs[op] = in // materialization preserves the stream
		// Ownership of the producer's buffer transfers to the store's
		// aliased output.
		if st.owned[prod] {
			delete(st.owned, prod)
			st.owned[op] = true
		}
		obs.Count(e.Rec, "engine.tuples_stored", int64(len(in)))

	default:
		return nil, fmt.Errorf("unsupported operator kind %v", op.Kind)
	}
	return meters, nil
}

// producerInput resolves op's pipeline producer and returns that
// producer's output stream along with the producer itself (so callers
// can release the buffer once consumed). A missing producer is an
// error: reading outputs[nil] instead would silently execute the
// operator over an empty input and misreport every downstream
// cardinality.
func (e Engine) producerInput(op *plan.Operator,
	outputs map[*plan.Operator][]Tuple) ([]Tuple, *plan.Operator, error) {
	prod := producerOf(op)
	if prod == nil {
		return nil, nil, fmt.Errorf("no pipeline producer feeds %s (task of %d operators)",
			op.Name, len(op.Task.Ops))
	}
	return outputs[prod], prod, nil
}

// producerOf returns the operator whose pipelined output feeds op, or
// nil when the task graph holds none (a malformed plan; callers must
// treat nil as an error, not as an empty input).
func producerOf(op *plan.Operator) *plan.Operator {
	// The expansion links producer -> consumer; find the pipeline
	// producer by scanning the task's operators.
	for _, cand := range op.Task.Ops {
		if cand.Consumer == op && cand.ConsumerEdge == plan.Pipeline {
			return cand
		}
	}
	return nil
}

// partitionOf maps a join key to a partition in [0, n) with a
// multiplicative mix so that structured key sets still spread evenly.
func partitionOf(key int32, n int) int {
	h := uint32(key) * hashMul // Knuth's multiplicative hash constant
	return int(h % uint32(n))
}

// splitContiguous divides tuples into n near-equal contiguous ranges,
// the no-skew declustering of assumption EA1.
func splitContiguous(all []Tuple, n int) [][]Tuple {
	parts := make([][]Tuple, n)
	base, extra := len(all)/n, len(all)%n
	pos := 0
	for k := 0; k < n; k++ {
		sz := base
		if k < extra {
			sz++
		}
		parts[k] = all[pos : pos+sz]
		pos += sz
	}
	return parts
}

// cloneFn wraps the clone body with the run's cross-cutting layers:
// the cancellation check, the test fault hook, and clone-run
// recording. The wrapping order is identical for the serial, bounded
// parallel, and reference paths, so all three fail on the same
// deterministic lowest clone index.
func (e Engine) cloneFn(op *plan.Operator, fn func(k int) error) func(k int) error {
	run := fn
	if ctx := e.ctx; ctx != nil {
		// Cancellation is checked before every clone body, so a run under
		// an expired context abandons the operator within one clone's
		// work. The check wraps the user fn (inside failClone/recording)
		// so serial and parallel runs fail on the same deterministic
		// lowest clone index.
		inner := run
		run = func(k int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return inner(k)
		}
	}
	if e.failClone != nil {
		inner := run
		run = func(k int) error {
			if err := e.failClone(op, k); err != nil {
				return err
			}
			return inner(k)
		}
	}
	if rec := e.Rec; rec != nil {
		inner := run
		run = func(k int) error {
			rec.Count("engine.clone_runs", 1)
			return inner(k)
		}
	}
	return run
}

// eachClone runs fn for every clone index of op, in parallel when
// configured. Parallel mode fans the clones over an internal/par
// bounded pool clamped to GOMAXPROCS — the engine used to spawn one
// goroutine per clone, unbounded at degree ≫ GOMAXPROCS. Errors are
// collected positionally and reduced in index order, so the lowest-
// index error wins and the reported failure is deterministic across
// serial and parallel runs and every pool width. Every arm of
// runOperator must check the returned error — the Scan arm once did
// not, and a failing clone there masqueraded as a clean run.
func (e Engine) eachClone(op *plan.Operator, n int, fn func(k int) error) error {
	run := e.cloneFn(op, fn)
	if !e.Parallel || n == 1 {
		for k := 0; k < n; k++ {
			if err := run(k); err != nil {
				return err
			}
		}
		return nil
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	par.For(w, n, func(k int) { errs[k] = run(k) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
