package engine

import (
	"context"
	"fmt"
	"sync"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Engine executes a scheduled plan over a generated Dataset, metering
// every clone's work against virtual resource clocks.
type Engine struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// Parallel runs each operator's clones on separate goroutines
	// (results are merged in clone order, so output is deterministic
	// either way).
	Parallel bool
	// Rec, when non-nil, receives execution counters (tuples, clone
	// runs), per-phase timers, and exec_phase trace events. Recorders
	// must be safe for concurrent use when Parallel is set; all the
	// internal/obs implementations are. Nil disables recording.
	Rec obs.Recorder

	// failClone, when non-nil, is consulted before every clone body runs
	// and aborts the clone with the returned error. It exists so tests
	// can inject clone failures into otherwise-infallible arms (the
	// regression tests for the once-dropped Scan error path).
	failClone func(op *plan.Operator, clone int) error

	// ctx is the run's cancellation context, set by RunCtx on its local
	// receiver copy (Engine methods take value receivers, so it never
	// leaks between runs). Checked by the phase loop and before every
	// clone body.
	ctx context.Context
}

// OpReport breaks one executed operator out of a Report: what the
// scheduler predicted for it against what the meters actually measured.
type OpReport struct {
	// Name is the operator's label, e.g. "probe(J3)".
	Name string
	// Kind is the physical operator type.
	Kind costmodel.OpKind
	// Phase is the synchronized phase the operator executed in.
	Phase int
	// Degree is the degree of partitioned parallelism.
	Degree int
	// Rooted marks operators whose placement was fixed before list
	// scheduling.
	Rooted bool
	// Predicted is the scheduler's isolated parallel execution time
	// T^par(op, N) for the operator (Equation 1).
	Predicted float64
	// Measured is the slowest clone's T^seq over the actually metered
	// work vectors — the operator's isolated execution time as run.
	Measured float64
	// OutTuples is the operator's observed output cardinality (0 for
	// builds, whose hash table does not stream on).
	OutTuples int
}

// Report summarizes one execution.
type Report struct {
	// ResultTuples is the cardinality of the query result.
	ResultTuples int
	// JoinResults maps each join ID to its observed result cardinality.
	JoinResults map[int]int
	// PhaseMeasured holds, per phase, the response time computed from
	// the clones' actually metered work vectors via Equation 3.
	PhaseMeasured []float64
	// PhasePredicted holds the scheduler's analytic response per phase,
	// aligned with PhaseMeasured, so divergence can be localized to a
	// phase instead of eyeballing end-to-end totals.
	PhasePredicted []float64
	// Operators breaks the run down per operator, in execution order —
	// the metered-vs-predicted comparison at operator granularity.
	Operators []OpReport
	// Measured is the end-to-end measured response (sum of phases).
	Measured float64
	// Predicted is the scheduler's analytic response for comparison.
	Predicted float64
}

// cloneMeter accumulates one clone's actual resource usage.
type cloneMeter struct {
	work vector.Vector
}

func newMeter() *cloneMeter { return &cloneMeter{work: vector.New(resource.Dims)} }

func (c *cloneMeter) addCPU(instr float64, p costmodel.Params) {
	c.work[resource.CPU] += instr / (p.MIPS * 1e6)
}
func (c *cloneMeter) addDiskPages(pages int, p costmodel.Params) {
	c.work[resource.Disk] += float64(pages) * p.DiskPageTime
}
func (c *cloneMeter) addNetTuples(tuples int, p costmodel.Params) {
	c.work[resource.Net] += p.Beta * p.Bytes(tuples)
}

// Run executes the schedule over the dataset. The schedule must have
// been produced for the same plan (the same *query.PlanNode) the dataset
// was generated from.
func (e Engine) Run(ds *Dataset, s *sched.Schedule) (*Report, error) {
	return e.RunCtx(context.Background(), ds, s)
}

// RunCtx is Run with a cancellation context: the phase loop and every
// clone body check ctx, so a cancelled or deadline-expired execution
// stops promptly and returns ctx.Err() (possibly wrapped with the
// failing operator's name) instead of metering the rest of the plan. A
// run that completes is identical to Run.
func (e Engine) RunCtx(ctx context.Context, ds *Dataset, s *sched.Schedule) (*Report, error) {
	if err := e.Model.Params.Validate(); err != nil {
		return nil, err
	}
	e.ctx = ctx
	// The schedule carries the operator tree; locate the root (the one
	// operator with no consumer) and sanity-check coverage.
	var root *plan.Operator
	nOps := 0
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Op == nil {
				return nil, fmt.Errorf("engine: schedule has a placement without an operator")
			}
			nOps++
			if pl.Op.Consumer == nil {
				if root != nil {
					return nil, fmt.Errorf("engine: schedule has two root operators")
				}
				root = pl.Op
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("engine: schedule has no root operator")
	}

	rep := &Report{JoinResults: make(map[int]int), Predicted: s.Response}
	outputs := make(map[*plan.Operator][]Tuple, nOps)
	// tables[joinID][clone] is a partial hash table: join key -> rows.
	tables := make(map[int][]map[int32][]Tuple)

	for phaseIdx, ph := range s.Phases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stop := obs.StartTimer(e.Rec, "engine.phase_seconds")
		sys := resource.NewSystem(s.P, resource.Dims, e.Overlap)
		// Producers have smaller IDs than consumers (post-order
		// expansion), so ID order is a valid pipeline topological order.
		placements := append([]*sched.OpPlacement(nil), ph.Placements...)
		for i := 0; i < len(placements); i++ {
			for j := i + 1; j < len(placements); j++ {
				if placements[j].Op.ID < placements[i].Op.ID {
					placements[i], placements[j] = placements[j], placements[i]
				}
			}
		}

		for _, pl := range placements {
			meters, err := e.runOperator(pl, ds, outputs, tables, rep)
			if err != nil {
				return nil, fmt.Errorf("engine: %s: %w", pl.Op.Name, err)
			}
			measured := 0.0
			for k, m := range meters {
				sys.Site(pl.Sites[k]).Assign(m.work)
				if t := e.Overlap.TSeq(m.work); t > measured {
					measured = t
				}
			}
			rep.Operators = append(rep.Operators, OpReport{
				Name:      pl.Op.Name,
				Kind:      pl.Op.Kind,
				Phase:     phaseIdx,
				Degree:    pl.Degree,
				Rooted:    pl.Rooted,
				Predicted: pl.TPar,
				Measured:  measured,
				OutTuples: len(outputs[pl.Op]),
			})
		}
		t := sys.MaxTSite()
		rep.PhaseMeasured = append(rep.PhaseMeasured, t)
		rep.PhasePredicted = append(rep.PhasePredicted, ph.Response)
		rep.Measured += t
		stop()
		if e.Rec != nil {
			e.Rec.Observe("engine.phase_measured", t)
			e.Rec.Event(obs.Event{Type: obs.EvExecPhase, Phase: phaseIdx, Response: t})
		}
	}

	rep.ResultTuples = len(outputs[root])
	want := root.Spec.ResultTuples
	if want == 0 && root.Kind == costmodel.Scan {
		want = root.Spec.InTuples
	}
	if rep.ResultTuples != want {
		return nil, fmt.Errorf("engine: result cardinality %d != expected %d",
			rep.ResultTuples, want)
	}
	return rep, nil
}

// runOperator executes one placed operator and returns its per-clone
// meters (aligned with pl.Sites).
func (e Engine) runOperator(pl *sched.OpPlacement, ds *Dataset,
	outputs map[*plan.Operator][]Tuple, tables map[int][]map[int32][]Tuple,
	rep *Report) ([]*cloneMeter, error) {

	n := pl.Degree
	op := pl.Op
	// A schedule can only reach the engine malformed (a hand-built or
	// corrupted one), but both failure shapes used to be silent: a
	// degree below one made partitionOf divide by zero later while
	// splitContiguous quietly produced no parts, and a Sites/Degree
	// mismatch panicked on the meter-to-site zip in Run. Reject both up
	// front with errors that name the operator's actual shape.
	if n < 1 {
		return nil, fmt.Errorf("placement degree %d < 1", n)
	}
	if len(pl.Sites) != n {
		return nil, fmt.Errorf("placement has %d sites for %d clones", len(pl.Sites), n)
	}
	meters := make([]*cloneMeter, n)
	for k := range meters {
		meters[k] = newMeter()
	}
	p := e.Model.Params

	// The coordinator (clone 0) pays the startup α·N, split evenly
	// between CPU and network, exactly as the cost model plans it.
	startup := p.Alpha * float64(n) / 2
	meters[0].work[resource.CPU] += startup
	meters[0].work[resource.Net] += startup

	switch op.Kind {
	case costmodel.Scan:
		leafIdx, err := ds.LeafIndex(op.Source)
		if err != nil {
			return nil, err
		}
		all := ds.LeafTuples(leafIdx)
		parts := splitContiguous(all, n)
		out := make([][]Tuple, n)
		err = e.eachClone(op, n, func(k int) error {
			rows := parts[k]
			pages := p.Pages(len(rows))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.ReadPageInstr+float64(len(rows))*p.ExtractInstr, p)
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(rows), p)
			}
			out[k] = rows
			return nil
		})
		if err != nil {
			return nil, err
		}
		outputs[op] = concat(out)
		obs.Count(e.Rec, "engine.tuples_scanned", int64(len(all)))

	case costmodel.Build:
		in, err := e.producerOutput(op, outputs)
		if err != nil {
			return nil, err
		}
		parts, err := e.partitionByKey(ds, in, op.Source, n)
		if err != nil {
			return nil, err
		}
		partials := make([]map[int32][]Tuple, n)
		err = e.eachClone(op, n, func(k int) error {
			table := make(map[int32][]Tuple, len(parts[k]))
			for _, t := range parts[k] {
				key, err := ds.Key(t, op.Source)
				if err != nil {
					return err
				}
				table[key] = append(table[key], t)
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			meters[k].addCPU(float64(len(parts[k]))*(p.ExtractInstr+p.HashInstr), p)
			partials[k] = table
			return nil
		})
		if err != nil {
			return nil, err
		}
		tables[op.JoinID] = partials
		outputs[op] = nil // the table is the output; nothing streams on
		obs.Count(e.Rec, "engine.tuples_built", int64(len(in)))

	case costmodel.Probe:
		partials, ok := tables[op.JoinID]
		if !ok {
			return nil, fmt.Errorf("probing join %d before its build", op.JoinID)
		}
		if len(partials) != n {
			return nil, fmt.Errorf("probe degree %d != build degree %d", n, len(partials))
		}
		in, err := e.producerOutput(op, outputs)
		if err != nil {
			return nil, err
		}
		parts, err := e.partitionByKey(ds, in, op.Source, n)
		if err != nil {
			return nil, err
		}
		outerCarrier := OuterIsCarrier(op.Source)
		out := make([][]Tuple, n)
		counts := make([]int, n)
		err = e.eachClone(op, n, func(k int) error {
			var res []Tuple
			for _, t := range parts[k] {
				key, err := ds.Key(t, op.Source)
				if err != nil {
					return err
				}
				matches := partials[k][key]
				if outerCarrier {
					// Inner keys are unique: at most one match survives,
					// and the outer tuple's identity carries on.
					if len(matches) > 0 {
						res = append(res, t)
					}
				} else {
					res = append(res, matches...)
				}
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(res), p)
			}
			meters[k].addCPU(float64(len(parts[k]))*p.ProbeInstr+float64(len(res))*p.ExtractInstr, p)
			out[k] = res
			counts[k] = len(res)
			return nil
		})
		if err != nil {
			return nil, err
		}
		result := concat(out)
		rep.JoinResults[op.JoinID] = len(result)
		if len(result) != op.Spec.ResultTuples {
			return nil, fmt.Errorf("join %d produced %d tuples, expected %d",
				op.JoinID, len(result), op.Spec.ResultTuples)
		}
		outputs[op] = result
		obs.Count(e.Rec, "engine.tuples_probed", int64(len(in)))
		obs.Count(e.Rec, "engine.tuples_joined", int64(len(result)))

	case costmodel.Store:
		in, err := e.producerOutput(op, outputs)
		if err != nil {
			return nil, err
		}
		parts := splitContiguous(in, n)
		err = e.eachClone(op, n, func(k int) error {
			pages := p.Pages(len(parts[k]))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.WritePageInstr, p)
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		outputs[op] = in // materialization preserves the stream
		obs.Count(e.Rec, "engine.tuples_stored", int64(len(in)))

	default:
		return nil, fmt.Errorf("unsupported operator kind %v", op.Kind)
	}
	return meters, nil
}

// producerOutput resolves op's pipeline producer and returns that
// producer's output stream. A missing producer is an error: reading
// outputs[nil] instead would silently execute the operator over an
// empty input and misreport every downstream cardinality.
func (e Engine) producerOutput(op *plan.Operator,
	outputs map[*plan.Operator][]Tuple) ([]Tuple, error) {
	prod := producerOf(op)
	if prod == nil {
		return nil, fmt.Errorf("no pipeline producer feeds %s (task of %d operators)",
			op.Name, len(op.Task.Ops))
	}
	return outputs[prod], nil
}

// producerOf returns the operator whose pipelined output feeds op, or
// nil when the task graph holds none (a malformed plan; callers must
// treat nil as an error, not as an empty input).
func producerOf(op *plan.Operator) *plan.Operator {
	// The expansion links producer -> consumer; find the pipeline
	// producer by scanning the task's operators.
	for _, cand := range op.Task.Ops {
		if cand.Consumer == op && cand.ConsumerEdge == plan.Pipeline {
			return cand
		}
	}
	return nil
}

// partitionByKey hash-partitions tuples on their key for the given join
// into n buckets — the exchange (repartitioning) operator of assumption
// A5. Build and probe use the same function, so matching keys always
// co-locate.
func (e Engine) partitionByKey(ds *Dataset, in []Tuple, join *query.PlanNode, n int) ([][]Tuple, error) {
	parts := make([][]Tuple, n)
	for _, t := range in {
		key, err := ds.Key(t, join)
		if err != nil {
			return nil, err
		}
		parts[partitionOf(key, n)] = append(parts[partitionOf(key, n)], t)
	}
	return parts, nil
}

// partitionOf maps a join key to a partition in [0, n) with a
// multiplicative mix so that structured key sets still spread evenly.
func partitionOf(key int32, n int) int {
	h := uint32(key) * 2654435761 // Knuth's multiplicative hash constant
	return int(h % uint32(n))
}

// splitContiguous divides tuples into n near-equal contiguous ranges,
// the no-skew declustering of assumption EA1.
func splitContiguous(all []Tuple, n int) [][]Tuple {
	parts := make([][]Tuple, n)
	base, extra := len(all)/n, len(all)%n
	pos := 0
	for k := 0; k < n; k++ {
		sz := base
		if k < extra {
			sz++
		}
		parts[k] = all[pos : pos+sz]
		pos += sz
	}
	return parts
}

func concat(parts [][]Tuple) []Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Tuple, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// eachClone runs fn for every clone index of op, in parallel when
// configured. The lowest-index error wins, so the reported failure is
// deterministic across serial and parallel runs. Every arm of
// runOperator must check the returned error — the Scan arm once did
// not, and a failing clone there masqueraded as a clean run.
func (e Engine) eachClone(op *plan.Operator, n int, fn func(k int) error) error {
	run := fn
	if ctx := e.ctx; ctx != nil {
		// Cancellation is checked before every clone body, so a run under
		// an expired context abandons the operator within one clone's
		// work. The check wraps the user fn (inside failClone/recording)
		// so serial and parallel runs fail on the same deterministic
		// lowest clone index.
		inner := run
		run = func(k int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return inner(k)
		}
	}
	if e.failClone != nil {
		inner := run
		run = func(k int) error {
			if err := e.failClone(op, k); err != nil {
				return err
			}
			return inner(k)
		}
	}
	if rec := e.Rec; rec != nil {
		inner := run
		run = func(k int) error {
			rec.Count("engine.clone_runs", 1)
			return inner(k)
		}
	}
	if !e.Parallel || n == 1 {
		for k := 0; k < n; k++ {
			if err := run(k); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = run(k)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
