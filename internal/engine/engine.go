package engine

import (
	"fmt"
	"sync"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

// Engine executes a scheduled plan over a generated Dataset, metering
// every clone's work against virtual resource clocks.
type Engine struct {
	Model   costmodel.Model
	Overlap resource.Overlap
	// Parallel runs each operator's clones on separate goroutines
	// (results are merged in clone order, so output is deterministic
	// either way).
	Parallel bool
}

// Report summarizes one execution.
type Report struct {
	// ResultTuples is the cardinality of the query result.
	ResultTuples int
	// JoinResults maps each join ID to its observed result cardinality.
	JoinResults map[int]int
	// PhaseMeasured holds, per phase, the response time computed from
	// the clones' actually metered work vectors via Equation 3.
	PhaseMeasured []float64
	// Measured is the end-to-end measured response (sum of phases).
	Measured float64
	// Predicted is the scheduler's analytic response for comparison.
	Predicted float64
}

// cloneMeter accumulates one clone's actual resource usage.
type cloneMeter struct {
	work vector.Vector
}

func newMeter() *cloneMeter { return &cloneMeter{work: vector.New(resource.Dims)} }

func (c *cloneMeter) addCPU(instr float64, p costmodel.Params) {
	c.work[resource.CPU] += instr / (p.MIPS * 1e6)
}
func (c *cloneMeter) addDiskPages(pages int, p costmodel.Params) {
	c.work[resource.Disk] += float64(pages) * p.DiskPageTime
}
func (c *cloneMeter) addNetTuples(tuples int, p costmodel.Params) {
	c.work[resource.Net] += p.Beta * p.Bytes(tuples)
}

// Run executes the schedule over the dataset. The schedule must have
// been produced for the same plan (the same *query.PlanNode) the dataset
// was generated from.
func (e Engine) Run(ds *Dataset, s *sched.Schedule) (*Report, error) {
	if err := e.Model.Params.Validate(); err != nil {
		return nil, err
	}
	// The schedule carries the operator tree; locate the root (the one
	// operator with no consumer) and sanity-check coverage.
	var root *plan.Operator
	nOps := 0
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Op == nil {
				return nil, fmt.Errorf("engine: schedule has a placement without an operator")
			}
			nOps++
			if pl.Op.Consumer == nil {
				if root != nil {
					return nil, fmt.Errorf("engine: schedule has two root operators")
				}
				root = pl.Op
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("engine: schedule has no root operator")
	}

	rep := &Report{JoinResults: make(map[int]int), Predicted: s.Response}
	outputs := make(map[*plan.Operator][]Tuple, nOps)
	// tables[joinID][clone] is a partial hash table: join key -> rows.
	tables := make(map[int][]map[int32][]Tuple)

	for _, ph := range s.Phases {
		sys := resource.NewSystem(s.P, resource.Dims, e.Overlap)
		// Producers have smaller IDs than consumers (post-order
		// expansion), so ID order is a valid pipeline topological order.
		placements := append([]*sched.OpPlacement(nil), ph.Placements...)
		for i := 0; i < len(placements); i++ {
			for j := i + 1; j < len(placements); j++ {
				if placements[j].Op.ID < placements[i].Op.ID {
					placements[i], placements[j] = placements[j], placements[i]
				}
			}
		}

		for _, pl := range placements {
			meters, err := e.runOperator(pl, ds, outputs, tables, rep)
			if err != nil {
				return nil, fmt.Errorf("engine: %s: %w", pl.Op.Name, err)
			}
			for k, m := range meters {
				sys.Site(pl.Sites[k]).Assign(m.work)
			}
		}
		t := sys.MaxTSite()
		rep.PhaseMeasured = append(rep.PhaseMeasured, t)
		rep.Measured += t
	}

	rep.ResultTuples = len(outputs[root])
	want := root.Spec.ResultTuples
	if want == 0 && root.Kind == costmodel.Scan {
		want = root.Spec.InTuples
	}
	if rep.ResultTuples != want {
		return nil, fmt.Errorf("engine: result cardinality %d != expected %d",
			rep.ResultTuples, want)
	}
	return rep, nil
}

// runOperator executes one placed operator and returns its per-clone
// meters (aligned with pl.Sites).
func (e Engine) runOperator(pl *sched.OpPlacement, ds *Dataset,
	outputs map[*plan.Operator][]Tuple, tables map[int][]map[int32][]Tuple,
	rep *Report) ([]*cloneMeter, error) {

	n := pl.Degree
	meters := make([]*cloneMeter, n)
	for k := range meters {
		meters[k] = newMeter()
	}
	p := e.Model.Params

	// The coordinator (clone 0) pays the startup α·N, split evenly
	// between CPU and network, exactly as the cost model plans it.
	startup := p.Alpha * float64(n) / 2
	meters[0].work[resource.CPU] += startup
	meters[0].work[resource.Net] += startup

	op := pl.Op
	switch op.Kind {
	case costmodel.Scan:
		leafIdx, err := ds.LeafIndex(op.Source)
		if err != nil {
			return nil, err
		}
		all := ds.LeafTuples(leafIdx)
		parts := splitContiguous(all, n)
		out := make([][]Tuple, n)
		e.eachClone(n, func(k int) error {
			rows := parts[k]
			pages := p.Pages(len(rows))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.ReadPageInstr+float64(len(rows))*p.ExtractInstr, p)
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(rows), p)
			}
			out[k] = rows
			return nil
		})
		outputs[op] = concat(out)

	case costmodel.Build:
		in := outputs[producerOf(op)]
		parts, err := e.partitionByKey(ds, in, op.Source, n)
		if err != nil {
			return nil, err
		}
		partials := make([]map[int32][]Tuple, n)
		err = e.eachClone(n, func(k int) error {
			table := make(map[int32][]Tuple, len(parts[k]))
			for _, t := range parts[k] {
				key, err := ds.Key(t, op.Source)
				if err != nil {
					return err
				}
				table[key] = append(table[key], t)
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			meters[k].addCPU(float64(len(parts[k]))*(p.ExtractInstr+p.HashInstr), p)
			partials[k] = table
			return nil
		})
		if err != nil {
			return nil, err
		}
		tables[op.JoinID] = partials
		outputs[op] = nil // the table is the output; nothing streams on

	case costmodel.Probe:
		partials, ok := tables[op.JoinID]
		if !ok {
			return nil, fmt.Errorf("probing join %d before its build", op.JoinID)
		}
		if len(partials) != n {
			return nil, fmt.Errorf("probe degree %d != build degree %d", n, len(partials))
		}
		in := outputs[producerOf(op)]
		parts, err := e.partitionByKey(ds, in, op.Source, n)
		if err != nil {
			return nil, err
		}
		outerCarrier := OuterIsCarrier(op.Source)
		out := make([][]Tuple, n)
		counts := make([]int, n)
		err = e.eachClone(n, func(k int) error {
			var res []Tuple
			for _, t := range parts[k] {
				key, err := ds.Key(t, op.Source)
				if err != nil {
					return err
				}
				matches := partials[k][key]
				if outerCarrier {
					// Inner keys are unique: at most one match survives,
					// and the outer tuple's identity carries on.
					if len(matches) > 0 {
						res = append(res, t)
					}
				} else {
					res = append(res, matches...)
				}
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(res), p)
			}
			meters[k].addCPU(float64(len(parts[k]))*p.ProbeInstr+float64(len(res))*p.ExtractInstr, p)
			out[k] = res
			counts[k] = len(res)
			return nil
		})
		if err != nil {
			return nil, err
		}
		result := concat(out)
		rep.JoinResults[op.JoinID] = len(result)
		if len(result) != op.Spec.ResultTuples {
			return nil, fmt.Errorf("join %d produced %d tuples, expected %d",
				op.JoinID, len(result), op.Spec.ResultTuples)
		}
		outputs[op] = result

	case costmodel.Store:
		in := outputs[producerOf(op)]
		parts := splitContiguous(in, n)
		err := e.eachClone(n, func(k int) error {
			pages := p.Pages(len(parts[k]))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.WritePageInstr, p)
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		outputs[op] = in // materialization preserves the stream

	default:
		return nil, fmt.Errorf("unsupported operator kind %v", op.Kind)
	}
	return meters, nil
}

// producerOf returns the operator whose pipelined output feeds op.
func producerOf(op *plan.Operator) *plan.Operator {
	// The expansion links producer -> consumer; find the pipeline
	// producer by scanning the task's operators.
	for _, cand := range op.Task.Ops {
		if cand.Consumer == op && cand.ConsumerEdge == plan.Pipeline {
			return cand
		}
	}
	return nil
}

// partitionByKey hash-partitions tuples on their key for the given join
// into n buckets — the exchange (repartitioning) operator of assumption
// A5. Build and probe use the same function, so matching keys always
// co-locate.
func (e Engine) partitionByKey(ds *Dataset, in []Tuple, join *query.PlanNode, n int) ([][]Tuple, error) {
	parts := make([][]Tuple, n)
	for _, t := range in {
		key, err := ds.Key(t, join)
		if err != nil {
			return nil, err
		}
		parts[partitionOf(key, n)] = append(parts[partitionOf(key, n)], t)
	}
	return parts, nil
}

// partitionOf maps a join key to a partition in [0, n) with a
// multiplicative mix so that structured key sets still spread evenly.
func partitionOf(key int32, n int) int {
	h := uint32(key) * 2654435761 // Knuth's multiplicative hash constant
	return int(h % uint32(n))
}

// splitContiguous divides tuples into n near-equal contiguous ranges,
// the no-skew declustering of assumption EA1.
func splitContiguous(all []Tuple, n int) [][]Tuple {
	parts := make([][]Tuple, n)
	base, extra := len(all)/n, len(all)%n
	pos := 0
	for k := 0; k < n; k++ {
		sz := base
		if k < extra {
			sz++
		}
		parts[k] = all[pos : pos+sz]
		pos += sz
	}
	return parts
}

func concat(parts [][]Tuple) []Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Tuple, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// eachClone runs fn for every clone index, in parallel when configured.
// The first error wins.
func (e Engine) eachClone(n int, fn func(k int) error) error {
	if !e.Parallel || n == 1 {
		for k := 0; k < n; k++ {
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = fn(k)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
