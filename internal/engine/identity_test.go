package engine

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

// chainPlan builds a left-deep chain over the given leaf sizes. Mixing
// ascending and descending sizes flips the carrier side join by join,
// so both the presence-probe (outer carrier) and match-probe (inner
// carrier) arms — and thus both the direct and CSR table layouts —
// execute.
func chainPlan(sizes []int) *query.PlanNode {
	p := leaf("L0", sizes[0])
	for i := 1; i < len(sizes); i++ {
		p = join(p, leaf(fmt.Sprintf("L%d", i), sizes[i]))
	}
	return p
}

// identityPlans is the golden corpus's plan shapes: chains of 3 and 8
// joins with alternating carrier sides, a bushy plan, and a right-deep
// plan whose top join carries the inner side.
func identityPlans() map[string]*query.PlanNode {
	return map[string]*query.PlanNode{
		"chain3": chainPlan([]int{4000, 1500, 6000, 2200}),
		"chain8": chainPlan([]int{5000, 2000, 7000, 1200, 6400, 2800, 9000, 3300, 7500}),
		"bushy": join(
			join(leaf("A", 4000), leaf("B", 1500)),
			join(leaf("C", 3500), leaf("D", 900)),
		),
		"rightdeep": join(leaf("A", 1000), join(leaf("B", 6000), leaf("C", 2000))),
	}
}

func scheduleForTree(t *testing.T, tt *plan.TaskTree, sites int) *sched.Schedule {
	t.Helper()
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       sites,
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReportByteIdentity is the golden-Report corpus: for every plan
// shape × system size × Parallel mode × skew setting, the flat data
// path's Report must be byte-identical to the reference executor's —
// same cardinalities, same per-operator measured times (the meters see
// identical float operations in identical order), same phase responses,
// and identical JSON encodings.
func TestReportByteIdentity(t *testing.T) {
	for name, p := range identityPlans() {
		for _, sites := range []int{4, 8} {
			for _, parallel := range []bool{false, true} {
				for _, skew := range []float64{0, 1.3} {
					t.Run(fmt.Sprintf("%s/P%d/par=%v/skew=%g", name, sites, parallel, skew), func(t *testing.T) {
						ds, err := GenerateOpts(p, GenOptions{Seed: 71, SkewS: skew})
						if err != nil {
							t.Fatal(err)
						}
						s := scheduleFor(t, p, sites)

						ref := testEngine(parallel)
						ref.Reference = true
						repRef, err := ref.Run(ds, s)
						if err != nil {
							t.Fatal(err)
						}
						repFlat, err := testEngine(parallel).Run(ds, s)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(repRef, repFlat) {
							t.Fatalf("reports diverge:\nref:  %+v\nflat: %+v", repRef, repFlat)
						}
						bRef, err := json.Marshal(repRef)
						if err != nil {
							t.Fatal(err)
						}
						bFlat, err := json.Marshal(repFlat)
						if err != nil {
							t.Fatal(err)
						}
						if string(bRef) != string(bFlat) {
							t.Fatalf("JSON encodings diverge:\nref:  %s\nflat: %s", bRef, bFlat)
						}
					})
				}
			}
		}
	}
}

// TestReportByteIdentityMaterialized covers the Store arm: a
// materialized chain must also produce byte-identical reports.
func TestReportByteIdentityMaterialized(t *testing.T) {
	p := chainPlan([]int{5000, 2000, 6000})
	ds := MustGenerate(p, 29)
	ot, err := plan.ExpandMaterialized(p)
	if err != nil {
		t.Fatal(err)
	}
	s := scheduleForTree(t, plan.MustNewTaskTree(ot), 6)
	for _, parallel := range []bool{false, true} {
		ref := testEngine(parallel)
		ref.Reference = true
		repRef, err := ref.Run(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		repFlat, err := testEngine(parallel).Run(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(repRef, repFlat) {
			t.Fatalf("materialized reports diverge (parallel=%v):\nref:  %+v\nflat: %+v",
				parallel, repRef, repFlat)
		}
	}
}

// TestFlatRunsAreRepeatable pins arena recycling correctness: back-to-
// back flat runs over the same dataset (reusing pooled arenas whose
// buffers hold stale bytes) must keep producing the same Report.
func TestFlatRunsAreRepeatable(t *testing.T) {
	p := chainPlan([]int{5000, 2000, 7000, 1200})
	ds := MustGenerate(p, 5)
	s := scheduleFor(t, p, 8)
	first, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rep, err := testEngine(i%2 == 1).Run(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, rep) {
			t.Fatalf("run %d diverged from the first:\nfirst: %+v\ngot:   %+v", i, first, rep)
		}
	}
}
