// Flat, cache-friendly operator state: two-pass radix partitioning
// into one contiguous backing array, and dense flat hash tables that
// exploit the generator's key discipline (smaller-side keys are
// distinct 0..s−1) instead of Go maps. The rewritten data path keeps
// every Report field byte-identical to the reference (pre-flat)
// executor: partition contents and intra-partition order match the
// old append-per-tuple map partitioning exactly, and every table
// layout yields probe matches in the same order the map tables did.
package engine

import (
	"fmt"

	"mdrs/internal/query"
)

// hashMul is Knuth's multiplicative constant, shared by partitionOf
// and the open-addressing table.
const hashMul = 2654435761

// radixParts is one radix partitioning: n contiguous runs of a single
// arena backing plus the co-scattered key of every tuple, so clone
// bodies index keys directly and never re-resolve the join's column
// slot or re-hash a tuple.
type radixParts struct {
	tuples  [][]Tuple
	keys    [][]int32
	backing []Tuple
	keyback []int32
}

// release returns the partitioning's arena buffers.
func (rp *radixParts) release(ar *arena) {
	ar.putTuples(rp.backing)
	ar.putInt32(rp.keyback)
	rp.backing, rp.keyback = nil, nil
	rp.tuples, rp.keys = nil, nil
}

// radixPartition hash-partitions tuples on their key for the given
// join into n buckets — the exchange (repartitioning) operator of
// assumption A5 — in two passes: count per partition, then scatter
// into one preallocated backing array. The join's key column is
// resolved once per leaf (an array index per tuple) instead of through
// the per-tuple ds.Key map lookup the reference path pays. Partition
// assignment (partitionOf) and intra-partition order (input order) are
// identical to the reference path's append-per-tuple map partitioning.
func radixPartition(ar *arena, ds *Dataset, join *query.PlanNode, in []Tuple, n int) (radixParts, error) {
	jc := ds.joins[join]
	if jc == nil {
		return radixParts{}, fmt.Errorf("dataset carries no key columns for the requested join")
	}
	m := len(in)
	keyIn := ar.getInt32(m)
	pids := ar.getInt32(m)
	counts := ar.getInt32(n)
	for k := range counts {
		counts[k] = 0
	}
	for i, t := range in {
		col := jc.cols[t.Leaf]
		if col == nil {
			ar.putInt32(keyIn)
			ar.putInt32(pids)
			ar.putInt32(counts)
			return radixParts{}, fmt.Errorf("leaf %s carries no key for the requested join",
				ds.leaves[t.Leaf].rel.Name)
		}
		key := col[t.Row]
		keyIn[i] = key
		p := int32(partitionOf(key, n))
		pids[i] = p
		counts[p]++
	}

	starts := ar.getInt32(n + 1)
	sum := int32(0)
	for k := 0; k < n; k++ {
		starts[k] = sum
		sum += counts[k]
		counts[k] = starts[k] // reuse as scatter cursors
	}
	starts[n] = sum

	rp := radixParts{
		backing: ar.getTuples(m),
		keyback: ar.getInt32(m),
		tuples:  make([][]Tuple, n),
		keys:    make([][]int32, n),
	}
	for i, t := range in {
		p := pids[i]
		pos := counts[p]
		counts[p] = pos + 1
		rp.backing[pos] = t
		rp.keyback[pos] = keyIn[i]
	}
	for k := 0; k < n; k++ {
		rp.tuples[k] = rp.backing[starts[k]:starts[k+1]]
		rp.keys[k] = rp.keyback[starts[k]:starts[k+1]]
	}
	ar.putInt32(keyIn)
	ar.putInt32(pids)
	ar.putInt32(counts)
	ar.putInt32(starts)
	return rp, nil
}

// tableKind selects one of the three build-table layouts.
type tableKind uint8

const (
	// tableDirect is a direct-indexed array over the key domain:
	// slot[key] holds the matching build row or -1 — the match slot and
	// the presence bitmap in one load. Used when the build side carries
	// distinct keys (the join's smaller side, i.e. the outer operand is
	// the carrier) and the domain is dense relative to the partition.
	tableDirect tableKind = iota
	// tableCSR is a dense group-by-key layout for duplicate build keys
	// (the build side is the join's larger operand): off[] offsets into
	// rows[], rows grouped by key in partition input order.
	tableCSR
	// tableOA is the open-addressing (key,row) multimap fallback when
	// the domain is too sparse for a dense layout: linear probing, no
	// deletions, equal keys collected in insertion order.
	tableOA
)

// buildTable is one clone's hash table in flat form. All build-side
// tuples of one partition share a carrier leaf, so the table stores
// bare row numbers and reconstitutes Tuples with the recorded leaf.
type buildTable struct {
	kind tableKind
	leaf int32
	n    int32 // entries (build partition size)

	// tableDirect
	slot []int32
	// tableCSR: after the cursor-advancing scatter, off[key] is the
	// END of key's row group and the start is off[key-1] (0 for key 0).
	off  []int32
	rows []int32
	// tableOA: key -1 marks an empty slot (generated keys are >= 0).
	keys []int32
	vals []int32
	mask uint32

	domain int
}

// denseOK reports whether a dense O(domain) layout is worth the
// footprint for a partition of m build tuples.
func denseOK(domain, m int) bool {
	return domain <= 8*m+1024
}

// joinTables is the per-clone flat tables of one join, alive from the
// build until its probe consumes (and releases) them.
type joinTables struct {
	clones []buildTable
}

// newJoinTables sizes one flat table per clone on the run's
// coordinating goroutine (clone bodies only fill their own arrays).
// outerCarrier selects the layout family: when the outer (probe-side)
// operand is the carrier, the build side is the join's smaller operand
// and carries distinct keys, so presence is all a probe needs
// (tableDirect); otherwise every build tuple must be emitted per match
// (tableCSR). Sparse domains fall back to open addressing either way.
func newJoinTables(ar *arena, ds *Dataset, join *query.PlanNode, rp radixParts, n int, outerCarrier bool) *joinTables {
	jc := ds.joins[join]
	leaf := int32(-1)
	for k := range rp.tuples {
		if len(rp.tuples[k]) > 0 {
			leaf = rp.tuples[k][0].Leaf
			break
		}
	}
	jt := &joinTables{clones: make([]buildTable, n)}
	for k := 0; k < n; k++ {
		m := len(rp.tuples[k])
		t := &jt.clones[k]
		t.leaf = leaf
		t.n = int32(m)
		t.domain = jc.domain
		if m == 0 {
			t.kind = tableDirect // nil slot; probes find nothing
			continue
		}
		switch {
		case outerCarrier && denseOK(jc.domain, m):
			t.kind = tableDirect
			t.slot = ar.getInt32(jc.domain)
		case !outerCarrier && denseOK(jc.domain, m):
			t.kind = tableCSR
			t.off = ar.getInt32(jc.domain + 1)
			t.rows = ar.getInt32(m)
		default:
			t.kind = tableOA
			size := roundUpPow2(2 * m)
			if size < 8 {
				size = 8
			}
			t.keys = ar.getInt32(size)
			t.vals = ar.getInt32(size)
			t.mask = uint32(size - 1)
		}
	}
	return jt
}

// release returns every clone's arrays to the arena.
func (jt *joinTables) release(ar *arena) {
	for k := range jt.clones {
		t := &jt.clones[k]
		if t.slot != nil {
			ar.putInt32(t.slot)
		}
		if t.off != nil {
			ar.putInt32(t.off)
		}
		if t.rows != nil {
			ar.putInt32(t.rows)
		}
		if t.keys != nil {
			ar.putInt32(t.keys)
		}
		if t.vals != nil {
			ar.putInt32(t.vals)
		}
		jt.clones[k] = buildTable{}
	}
}

// insert fills the table from one build partition (run inside the
// clone body; the arrays were carved on the coordinator). part and
// keys are the partition's co-scattered tuples and join keys.
func (t *buildTable) insert(part []Tuple, keys []int32) error {
	switch t.kind {
	case tableDirect:
		if t.slot == nil {
			return nil // empty partition
		}
		for i := range t.slot {
			t.slot[i] = -1
		}
		for i, key := range keys {
			if key < 0 || int(key) >= t.domain {
				return fmt.Errorf("build key %d outside domain [0, %d)", key, t.domain)
			}
			t.slot[key] = part[i].Row
		}
	case tableCSR:
		off := t.off
		for i := range off {
			off[i] = 0
		}
		for _, key := range keys {
			if key < 0 || int(key) >= t.domain {
				return fmt.Errorf("build key %d outside domain [0, %d)", key, t.domain)
			}
			off[key]++
		}
		sum := int32(0)
		for k := 0; k < t.domain; k++ {
			c := off[k]
			off[k] = sum
			sum += c
		}
		off[t.domain] = sum
		for i, key := range keys {
			pos := off[key]
			off[key] = pos + 1
			t.rows[pos] = part[i].Row
		}
		// off[key] is now the END of key's group; start is off[key-1].
	case tableOA:
		for i := range t.keys {
			t.keys[i] = -1
		}
		for i, key := range keys {
			j := (uint32(key) * hashMul) & t.mask
			for t.keys[j] != -1 {
				j = (j + 1) & t.mask
			}
			t.keys[j] = key
			t.vals[j] = part[i].Row
		}
	}
	return nil
}

// probePresence appends each probe tuple whose key has at least one
// build match — the outer-carrier arm, where inner keys are unique and
// the outer tuple's identity carries on. Matches the reference path's
// "len(matches) > 0" semantics exactly.
func (t *buildTable) probePresence(part []Tuple, keys []int32, res []Tuple) ([]Tuple, error) {
	if t.n == 0 {
		return res, nil
	}
	switch t.kind {
	case tableDirect:
		for i, key := range keys {
			if key < 0 || int(key) >= t.domain {
				return res, fmt.Errorf("probe key %d outside domain [0, %d)", key, t.domain)
			}
			if t.slot[key] >= 0 {
				res = append(res, part[i])
			}
		}
	case tableCSR:
		for i, key := range keys {
			if key < 0 || int(key) >= t.domain {
				return res, fmt.Errorf("probe key %d outside domain [0, %d)", key, t.domain)
			}
			lo := int32(0)
			if key > 0 {
				lo = t.off[key-1]
			}
			if t.off[key] > lo {
				res = append(res, part[i])
			}
		}
	case tableOA:
		for i, key := range keys {
			j := (uint32(key) * hashMul) & t.mask
			for t.keys[j] != -1 {
				if t.keys[j] == key {
					res = append(res, part[i])
					break
				}
				j = (j + 1) & t.mask
			}
		}
	}
	return res, nil
}

// probeMatches appends every matching build tuple per probe key — the
// inner-carrier arm. Match order per key is the build partition's
// input order, exactly as the reference path's map-append produced.
func (t *buildTable) probeMatches(keys []int32, res []Tuple) ([]Tuple, error) {
	if t.n == 0 {
		return res, nil
	}
	switch t.kind {
	case tableDirect:
		for _, key := range keys {
			if key < 0 || int(key) >= t.domain {
				return res, fmt.Errorf("probe key %d outside domain [0, %d)", key, t.domain)
			}
			if r := t.slot[key]; r >= 0 {
				res = append(res, Tuple{Leaf: t.leaf, Row: r})
			}
		}
	case tableCSR:
		for _, key := range keys {
			if key < 0 || int(key) >= t.domain {
				return res, fmt.Errorf("probe key %d outside domain [0, %d)", key, t.domain)
			}
			lo := int32(0)
			if key > 0 {
				lo = t.off[key-1]
			}
			for _, r := range t.rows[lo:t.off[key]] {
				res = append(res, Tuple{Leaf: t.leaf, Row: r})
			}
		}
	case tableOA:
		for _, key := range keys {
			j := (uint32(key) * hashMul) & t.mask
			for t.keys[j] != -1 {
				if t.keys[j] == key {
					res = append(res, Tuple{Leaf: t.leaf, Row: t.vals[j]})
				}
				j = (j + 1) & t.mask
			}
		}
	}
	return res, nil
}
