package engine

import (
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
	"mdrs/internal/vector"
)

func TestRunRejectsBadSchedules(t *testing.T) {
	p := join(leaf("A", 100), leaf("B", 50))
	ds := MustGenerate(p, 1)
	eng := testEngine(false)

	// Placement without an operator.
	s := &sched.Schedule{P: 2, Phases: []*sched.PhaseSchedule{
		{Placements: []*sched.OpPlacement{{Op: nil}}},
	}}
	if _, err := eng.Run(ds, s); err == nil {
		t.Error("nil-operator placement accepted")
	}

	// No root operator at all.
	op := &plan.Operator{ID: 0, Name: "x", Consumer: &plan.Operator{}}
	s = &sched.Schedule{P: 2, Phases: []*sched.PhaseSchedule{
		{Placements: []*sched.OpPlacement{{
			Op: op, Degree: 1, Sites: []int{0},
			Clones: []vector.Vector{vector.Of(1, 1, 1)},
		}}},
	}}
	if _, err := eng.Run(ds, s); err == nil {
		t.Error("rootless schedule accepted")
	}
}

func TestRunRejectsInvalidParams(t *testing.T) {
	p := join(leaf("A", 100), leaf("B", 50))
	ds := MustGenerate(p, 1)
	s := scheduleFor(t, p, 2)
	bad := Engine{Overlap: resource.MustOverlap(0.5)} // zero Model
	if _, err := bad.Run(ds, s); err == nil {
		t.Fatal("zero cost model accepted")
	}
}

func TestSingleRelationQueryExecutes(t *testing.T) {
	// The degenerate 0-join plan: one scan, streamed to the client.
	p := leaf("R", 1234)
	ds := MustGenerate(p, 5)
	s := scheduleFor(t, p, 4)
	rep, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != 1234 {
		t.Fatalf("result = %d, want 1234", rep.ResultTuples)
	}
	if len(rep.JoinResults) != 0 {
		t.Fatalf("join results on a joinless plan: %v", rep.JoinResults)
	}
}

func TestTinyRelations(t *testing.T) {
	// Single-tuple relations exercise all the ceil/partition boundaries.
	p := join(leaf("A", 1), leaf("B", 1))
	ds := MustGenerate(p, 2)
	s := scheduleFor(t, p, 3)
	rep, err := testEngine(true).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != 1 {
		t.Fatalf("result = %d, want 1", rep.ResultTuples)
	}
}

func TestMismatchedDatasetFails(t *testing.T) {
	// Scheduling one plan but executing another's dataset must error
	// (the key columns don't exist), not silently mis-join.
	pA := join(leaf("A", 500), leaf("B", 200))
	pB := join(leaf("C", 500), leaf("D", 200))
	dsB := MustGenerate(pB, 3)
	sA := scheduleFor(t, pA, 3)
	if _, err := testEngine(false).Run(dsB, sA); err == nil {
		t.Fatal("foreign dataset accepted")
	}
}

func TestDeepPipelineExecution(t *testing.T) {
	// A right-deep chain exercises probe-feeds-build pipelines across
	// many phases.
	p := leaf("R0", 800)
	for i := 1; i <= 5; i++ {
		p = &query.PlanNode{
			Outer:  leaf("x", 700+i),
			Inner:  p,
			Tuples: max(700+i, p.Tuples),
		}
	}
	ds := MustGenerate(p, 7)
	s := scheduleFor(t, p, 4)
	rep, err := testEngine(true).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != p.Tuples {
		t.Fatalf("result = %d, want %d", rep.ResultTuples, p.Tuples)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestMetersMatchCostModelOnUniformData(t *testing.T) {
	// With perfectly uniform keys and degree 1, the engine's metered
	// work must equal the cost model's prediction exactly.
	p := join(leaf("A", 4000), leaf("B", 2000))
	ds := MustGenerate(p, 9)
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       1, // sequential: no partitioning skew possible
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := rep.Measured / rep.Predicted; ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("sequential execution deviates: measured %g, predicted %g",
			rep.Measured, rep.Predicted)
	}
}

// TestResultContentIsExactlyTheCarrierRelation verifies join CONTENT,
// not just cardinality: under the FK discipline each larger-side tuple
// matches exactly one smaller-side tuple, so the join result must be
// exactly the carrier relation's rows, each appearing once.
func TestResultContentIsExactlyTheCarrierRelation(t *testing.T) {
	for _, sizes := range [][2]int{{1500, 600}, {600, 1500}} {
		p := join(leaf("A", sizes[0]), leaf("B", sizes[1]))
		ds := MustGenerate(p, 13)
		tt := plan.MustNewTaskTree(plan.MustExpand(p))
		s, err := sched.TreeScheduler{
			Model:   costmodel.Default(),
			Overlap: resource.MustOverlap(0.5),
			P:       5, F: 0.7,
		}.Schedule(tt)
		if err != nil {
			t.Fatal(err)
		}
		// Re-run the dataflow manually to inspect the root output.
		eng := testEngine(false)
		st := newRunState(false, 4)
		rep := &Report{JoinResults: map[int]int{}}
		for _, ph := range s.Phases {
			for _, pl := range ph.Placements {
				if _, err := eng.runOperator(pl, ds, st, rep); err != nil {
					t.Fatal(err)
				}
			}
		}
		outputs := st.outputs
		var root *plan.Operator
		for _, ph := range s.Phases {
			for _, pl := range ph.Placements {
				if pl.Op.Consumer == nil {
					root = pl.Op
				}
			}
		}
		result := outputs[root]
		carrier := p.Outer
		if p.Inner.Tuples > p.Outer.Tuples {
			carrier = p.Inner
		}
		carrierIdx, err := ds.LeafIndex(carrier)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int32]bool{}
		for _, tp := range result {
			if tp.Leaf != carrierIdx {
				t.Fatalf("result tuple from leaf %d, carrier is %d", tp.Leaf, carrierIdx)
			}
			if seen[tp.Row] {
				t.Fatalf("carrier row %d appears twice in the result", tp.Row)
			}
			seen[tp.Row] = true
		}
		if len(seen) != carrier.Tuples {
			t.Fatalf("result covers %d of %d carrier rows", len(seen), carrier.Tuples)
		}
	}
}

func TestMaterializedExecution(t *testing.T) {
	// A materialized plan executes through the Store operator; its
	// response exceeds the streaming plan's (extra disk writes).
	p := join(leaf("A", 5000), leaf("B", 2000))
	ds := MustGenerate(p, 17)

	ot, err := plan.ExpandMaterialized(p)
	if err != nil {
		t.Fatal(err)
	}
	tt := plan.MustNewTaskTree(ot)
	ts := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       6, F: 0.7,
	}
	sMat, err := ts.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := testEngine(true).Run(ds, sMat)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != 5000 {
		t.Fatalf("materialized result = %d, want 5000", rep.ResultTuples)
	}

	sStream := scheduleFor(t, p, 6)
	if sMat.Response <= sStream.Response {
		t.Fatalf("materialization free: %g vs streaming %g",
			sMat.Response, sStream.Response)
	}
}

func TestSkewedGenerationStillDeterministic(t *testing.T) {
	p := join(leaf("A", 1000), leaf("B", 400))
	d1, err := GenerateOpts(p, GenOptions{Seed: 4, SkewS: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateOpts(p, GenOptions{Seed: 4, SkewS: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tp := Tuple{Leaf: 0, Row: int32(i % 1000)}
		k1, err := d1.Key(tp, p)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := d2.Key(tp, p)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("row %d: %d vs %d", i, k1, k2)
		}
	}
}
