// The reference executor: the engine's pre-vectorization data path,
// preserved verbatim. It builds Go-map hash tables, partitions with
// append-per-tuple map partitioning, resolves every tuple's key through
// the per-tuple ds.Key map lookup, copies every concat, regenerates
// leaf tuple slices per scan, and spawns one goroutine per clone in
// Parallel mode. It exists for two reasons: it is the "before" arm of
// mdrs-bench -engine-bench (BENCH_engine.json's speedup and allocs
// ratios are measured against it, so it must keep paying the old
// allocation costs honestly), and it is the byte-identity oracle the
// golden-Report corpus and the in-bench verdict compare the flat path
// against. Selected with Engine.Reference.
package engine

import (
	"fmt"
	"sync"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/sched"
)

// runOperatorRef executes one placed operator through the reference
// data path and returns its per-clone meters (aligned with pl.Sites).
func (e Engine) runOperatorRef(pl *sched.OpPlacement, ds *Dataset,
	outputs map[*plan.Operator][]Tuple, tables map[int][]map[int32][]Tuple,
	rep *Report) ([]*cloneMeter, error) {

	if err := checkPlacement(pl); err != nil {
		return nil, err
	}
	n := pl.Degree
	op := pl.Op
	p := e.Model.Params
	meters := newMeters(n, p)

	switch op.Kind {
	case costmodel.Scan:
		leafIdx, err := ds.LeafIndex(op.Source)
		if err != nil {
			return nil, err
		}
		all := leafTuplesRef(ds, leafIdx)
		parts := splitContiguous(all, n)
		out := make([][]Tuple, n)
		err = e.eachCloneRef(op, n, func(k int) error {
			rows := parts[k]
			pages := p.Pages(len(rows))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.ReadPageInstr+float64(len(rows))*p.ExtractInstr, p)
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(rows), p)
			}
			out[k] = rows
			return nil
		})
		if err != nil {
			return nil, err
		}
		outputs[op] = concatRef(out)
		obs.Count(e.Rec, "engine.tuples_scanned", int64(len(all)))

	case costmodel.Build:
		in, _, err := e.producerInput(op, outputs)
		if err != nil {
			return nil, err
		}
		parts, err := partitionByKey(ds, in, op.Source, n)
		if err != nil {
			return nil, err
		}
		partials := make([]map[int32][]Tuple, n)
		err = e.eachCloneRef(op, n, func(k int) error {
			table := make(map[int32][]Tuple, len(parts[k]))
			for _, t := range parts[k] {
				key, err := ds.Key(t, op.Source)
				if err != nil {
					return err
				}
				table[key] = append(table[key], t)
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			meters[k].addCPU(float64(len(parts[k]))*(p.ExtractInstr+p.HashInstr), p)
			partials[k] = table
			return nil
		})
		if err != nil {
			return nil, err
		}
		tables[op.JoinID] = partials
		outputs[op] = nil // the table is the output; nothing streams on
		obs.Count(e.Rec, "engine.tuples_built", int64(len(in)))

	case costmodel.Probe:
		partials, ok := tables[op.JoinID]
		if !ok {
			return nil, fmt.Errorf("probing join %d before its build", op.JoinID)
		}
		if len(partials) != n {
			return nil, fmt.Errorf("probe degree %d != build degree %d", n, len(partials))
		}
		in, _, err := e.producerInput(op, outputs)
		if err != nil {
			return nil, err
		}
		parts, err := partitionByKey(ds, in, op.Source, n)
		if err != nil {
			return nil, err
		}
		outerCarrier := OuterIsCarrier(op.Source)
		out := make([][]Tuple, n)
		err = e.eachCloneRef(op, n, func(k int) error {
			var res []Tuple
			for _, t := range parts[k] {
				key, err := ds.Key(t, op.Source)
				if err != nil {
					return err
				}
				matches := partials[k][key]
				if outerCarrier {
					// Inner keys are unique: at most one match survives,
					// and the outer tuple's identity carries on.
					if len(matches) > 0 {
						res = append(res, t)
					}
				} else {
					res = append(res, matches...)
				}
			}
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			if op.Spec.NetOut {
				meters[k].addNetTuples(len(res), p)
			}
			meters[k].addCPU(float64(len(parts[k]))*p.ProbeInstr+float64(len(res))*p.ExtractInstr, p)
			out[k] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		result := concatRef(out)
		rep.JoinResults[op.JoinID] = len(result)
		if len(result) != op.Spec.ResultTuples {
			return nil, fmt.Errorf("join %d produced %d tuples, expected %d",
				op.JoinID, len(result), op.Spec.ResultTuples)
		}
		outputs[op] = result
		obs.Count(e.Rec, "engine.tuples_probed", int64(len(in)))
		obs.Count(e.Rec, "engine.tuples_joined", int64(len(result)))

	case costmodel.Store:
		in, _, err := e.producerInput(op, outputs)
		if err != nil {
			return nil, err
		}
		parts := splitContiguous(in, n)
		err = e.eachCloneRef(op, n, func(k int) error {
			pages := p.Pages(len(parts[k]))
			meters[k].addDiskPages(pages, p)
			meters[k].addCPU(float64(pages)*p.WritePageInstr, p)
			if op.Spec.NetIn {
				meters[k].addNetTuples(len(parts[k]), p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		outputs[op] = in // materialization preserves the stream
		obs.Count(e.Rec, "engine.tuples_stored", int64(len(in)))

	default:
		return nil, fmt.Errorf("unsupported operator kind %v", op.Kind)
	}
	return meters, nil
}

// leafTuplesRef regenerates leaf i's identity tuples per call — the
// pre-cache behavior, kept so the reference arm of the benchmark still
// pays the O(rows) allocation every scan used to.
func leafTuplesRef(ds *Dataset, i int32) []Tuple {
	ld := ds.leaves[i]
	out := make([]Tuple, ld.rel.Tuples)
	for r := range out {
		out[r] = Tuple{Leaf: i, Row: int32(r)}
	}
	return out
}

// partitionByKey hash-partitions tuples on their key for the given join
// into n buckets with the reference path's append-per-tuple loop and
// per-tuple ds.Key map lookup. Build and probe use the same function,
// so matching keys always co-locate. radixPartition reproduces its
// partition contents and order exactly.
func partitionByKey(ds *Dataset, in []Tuple, join *query.PlanNode, n int) ([][]Tuple, error) {
	parts := make([][]Tuple, n)
	for _, t := range in {
		key, err := ds.Key(t, join)
		if err != nil {
			return nil, err
		}
		parts[partitionOf(key, n)] = append(parts[partitionOf(key, n)], t)
	}
	return parts, nil
}

// concatRef copies parts into one freshly allocated slice — the
// reference path's full-copy merge.
func concatRef(parts [][]Tuple) []Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Tuple, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// eachCloneRef is the reference path's clone driver: one goroutine per
// clone in Parallel mode, unbounded at degree ≫ GOMAXPROCS. Shares the
// ctx/failClone/recording wrapper with the flat path, so both fail on
// the same deterministic lowest clone index.
func (e Engine) eachCloneRef(op *plan.Operator, n int, fn func(k int) error) error {
	run := e.cloneFn(op, fn)
	if !e.Parallel || n == 1 {
		for k := 0; k < n; k++ {
			if err := run(k); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = run(k)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
