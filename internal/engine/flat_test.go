package engine

import (
	"reflect"
	"testing"
)

// TestLeafTuplesCached pins the satellite fix: LeafTuples must return
// the slice built at Generate time, not a fresh allocation per call.
func TestLeafTuplesCached(t *testing.T) {
	p := join(leaf("A", 500), leaf("B", 200))
	ds := MustGenerate(p, 1)
	a := ds.LeafTuples(0)
	b := ds.LeafTuples(0)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("LeafTuples allocates per call instead of returning the cached slice")
	}
	for r, tp := range a {
		if tp.Leaf != 0 || tp.Row != int32(r) {
			t.Fatalf("cached tuple %d = %+v, want {0 %d}", r, tp, r)
		}
	}
}

// TestRadixPartitionMatchesReference checks the two-pass radix scatter
// against the reference append-per-tuple map partitioning: identical
// partition contents in identical order, for uniform and skewed keys
// and for both sides of a join.
func TestRadixPartitionMatchesReference(t *testing.T) {
	p := join(leaf("A", 5000), leaf("B", 1700))
	for _, skew := range []float64{0, 1.4} {
		ds, err := GenerateOpts(p, GenOptions{Seed: 9, SkewS: skew})
		if err != nil {
			t.Fatal(err)
		}
		for leafIdx := int32(0); leafIdx < 2; leafIdx++ {
			in := ds.LeafTuples(leafIdx)
			for _, n := range []int{1, 3, 8, 64} {
				want, err := partitionByKey(ds, in, p, n)
				if err != nil {
					t.Fatal(err)
				}
				ar := arenaPool.Get().(*arena)
				rp, err := radixPartition(ar, ds, p, in, n)
				if err != nil {
					t.Fatal(err)
				}
				for k := 0; k < n; k++ {
					got := rp.tuples[k]
					if len(got) == 0 && len(want[k]) == 0 {
						continue
					}
					if !reflect.DeepEqual([]Tuple(got), want[k]) {
						t.Fatalf("skew=%g leaf=%d n=%d partition %d diverges", skew, leafIdx, n, k)
					}
					for i, tp := range got {
						key, err := ds.Key(tp, p)
						if err != nil {
							t.Fatal(err)
						}
						if rp.keys[k][i] != key {
							t.Fatalf("co-scattered key %d of partition %d = %d, want %d",
								i, k, rp.keys[k][i], key)
						}
					}
				}
				rp.release(ar)
				arenaPool.Put(ar)
			}
		}
	}
}

// TestRadixPartitionRejectsForeignLeaf mirrors the reference path's
// per-tuple key error: a tuple whose carrier leaf holds no key column
// for the join must fail, naming the leaf.
func TestRadixPartitionRejectsForeignLeaf(t *testing.T) {
	// Two independent joins: leaf C carries no key for join (A ⋈ B).
	ab := join(leaf("A", 300), leaf("B", 100))
	p := join(ab, leaf("C", 900))
	ds := MustGenerate(p, 2)
	cIdx, err := ds.LeafIndex(p.Inner)
	if err != nil {
		t.Fatal(err)
	}
	ar := arenaPool.Get().(*arena)
	defer arenaPool.Put(ar)
	if _, err := radixPartition(ar, ds, ab, ds.LeafTuples(cIdx), 4); err == nil {
		t.Fatal("partitioning foreign-leaf tuples succeeded")
	}
}

// fillTable builds one buildTable of the given kind by hand, sized the
// way newJoinTables would size it.
func fillTable(t *testing.T, kind tableKind, domain int, part []Tuple, keys []int32) *buildTable {
	t.Helper()
	bt := &buildTable{kind: kind, leaf: 0, n: int32(len(part)), domain: domain}
	switch kind {
	case tableDirect:
		bt.slot = make([]int32, domain)
	case tableCSR:
		bt.off = make([]int32, domain+1)
		bt.rows = make([]int32, len(part))
	case tableOA:
		size := roundUpPow2(2 * len(part))
		if size < 8 {
			size = 8
		}
		bt.keys = make([]int32, size)
		bt.vals = make([]int32, size)
		bt.mask = uint32(size - 1)
	}
	if err := bt.insert(part, keys); err != nil {
		t.Fatal(err)
	}
	return bt
}

// TestBuildTableLayouts checks all three layouts against the same tiny
// build set: presence probes keep the probe tuple on any match, and
// match probes emit build tuples in build-input order per key.
func TestBuildTableLayouts(t *testing.T) {
	// Build rows 10,11,12,13 carrying keys 3,1,3,0 (key 3 duplicated —
	// only CSR and OA represent duplicates; direct is only used when
	// the generator guarantees distinct keys).
	part := []Tuple{{0, 10}, {0, 11}, {0, 12}, {0, 13}}
	keys := []int32{3, 1, 3, 0}
	probe := []Tuple{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	probeKeys := []int32{3, 2, 0, 3}

	for _, kind := range []tableKind{tableCSR, tableOA} {
		bt := fillTable(t, kind, 5, part, keys)
		pres, err := bt.probePresence(probe, probeKeys, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantPres := []Tuple{{1, 0}, {1, 2}, {1, 3}}
		if !reflect.DeepEqual(pres, wantPres) {
			t.Fatalf("kind %d presence = %v, want %v", kind, pres, wantPres)
		}
		matches, err := bt.probeMatches(probeKeys, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Key 3 matches rows 10 then 12 (build input order), twice.
		wantMatch := []Tuple{{0, 10}, {0, 12}, {0, 13}, {0, 10}, {0, 12}}
		if !reflect.DeepEqual(matches, wantMatch) {
			t.Fatalf("kind %d matches = %v, want %v", kind, matches, wantMatch)
		}
	}

	// Direct with distinct keys: rows 10,11,12,13 carry keys 3,1,2,0.
	bt := fillTable(t, tableDirect, 5, part, []int32{3, 1, 2, 0})
	pres, err := bt.probePresence(probe, []int32{3, 4, 0, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPres := []Tuple{{1, 0}, {1, 2}, {1, 3}}
	if !reflect.DeepEqual(pres, wantPres) {
		t.Fatalf("direct presence = %v, want %v", pres, wantPres)
	}
	matches, err := bt.probeMatches([]int32{3, 4, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantMatch := []Tuple{{0, 10}, {0, 13}}
	if !reflect.DeepEqual(matches, wantMatch) {
		t.Fatalf("direct matches = %v, want %v", matches, wantMatch)
	}

	// Out-of-domain keys are dataflow bugs, not silent drops.
	if _, err := bt.probePresence(probe[:1], []int32{9}, nil); err == nil {
		t.Fatal("out-of-domain probe key accepted")
	}
	if err := bt.insert(part[:1], []int32{-1}); err == nil {
		t.Fatal("negative build key accepted")
	}
}

// TestDenseOK pins the dense-layout threshold.
func TestDenseOK(t *testing.T) {
	if !denseOK(1024, 0) {
		t.Fatal("small domains should always be dense")
	}
	if !denseOK(8*1000+1024, 1000) {
		t.Fatal("boundary domain should be dense")
	}
	if denseOK(8*1000+1025, 1000) {
		t.Fatal("past-boundary domain should fall back to open addressing")
	}
}

// TestArenaReuse checks the free-list round trip: a returned buffer
// satisfies the next adequate request, capacities are rounded to powers
// of two, and the reuse/alloc tallies track both outcomes.
func TestArenaReuse(t *testing.T) {
	ar := &arena{}
	b := ar.getTuples(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("fresh buffer len %d cap %d, want 100/128", len(b), cap(b))
	}
	ar.putTuples(b)
	c := ar.getTuples(120)
	if len(c) != 120 || &c[:1][0] != &b[:1][0] {
		t.Fatal("adequate free buffer not reused")
	}
	if ar.allocs != 1 || ar.reuses != 1 {
		t.Fatalf("tallies allocs=%d reuses=%d, want 1/1", ar.allocs, ar.reuses)
	}

	// Best fit: the smallest adequate buffer wins.
	ar.putInt32(make([]int32, 0, 256))
	ar.putInt32(make([]int32, 0, 32))
	got := ar.getInt32(20)
	if cap(got) != 32 {
		t.Fatalf("best-fit picked cap %d, want 32", cap(got))
	}

	ar.resetStats()
	if ar.allocs != 0 || ar.reuses != 0 {
		t.Fatal("resetStats left tallies set")
	}
}

// TestWarmRunsStopAllocating is the arena's end-to-end payoff: after a
// cold run primes the pooled buffers, repeat runs of an 8-join plan
// allocate a small, plan-size-independent amount.
func TestWarmRunsStopAllocating(t *testing.T) {
	p := chainPlan([]int{5000, 2000, 7000, 1200, 6400, 2800, 9000, 3300, 7500})
	ds := MustGenerate(p, 71)
	s := scheduleFor(t, p, 8)
	eng := testEngine(false)
	for i := 0; i < 3; i++ { // prime the arena pool
		if _, err := eng.Run(ds, s); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(ds, s); err != nil {
			t.Fatal(err)
		}
	})
	// The reference path allocates O(tuples) per operator — hundreds of
	// thousands of allocations for this plan. Warm flat runs must be
	// orders of magnitude below that; the remaining allocations are the
	// Report itself and fixed per-operator bookkeeping.
	t.Logf("warm allocs/run = %.0f", allocs)
	if allocs > 2000 {
		t.Fatalf("warm run allocates %.0f times, want <= 2000", allocs)
	}
}
