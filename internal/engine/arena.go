package engine

import "sync"

// arena is a Run-scoped free list of tuple and int32 buffers: the
// partition backings, scattered key columns, flat-table arrays, and
// per-clone result buffers of one execution all come from (and return
// to) it, so a J-join plan stops allocating O(tuples) per operator and
// a warm run settles at a handful of allocations.
//
// The arena is single-owner: only the run's coordinating goroutine
// calls get/put (clone bodies receive pre-carved buffers and never
// touch the free lists), so no locking is needed. Arenas themselves
// are recycled across runs through arenaPool.
type arena struct {
	tupleFree [][]Tuple
	intFree   [][]int32

	// reuses/allocs count buffer requests served from the free lists
	// vs freshly allocated, reset at the end of every run after the
	// engine flushes them to its recorder.
	reuses int64
	allocs int64
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// roundUpPow2 rounds n up to a power of two so buffers recycle across
// operators with slightly different sizes instead of fragmenting the
// free lists into near-miss capacities.
func roundUpPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// getTuples returns a length-n tuple buffer, preferring the smallest
// adequate free buffer. Contents are unspecified (callers overwrite).
func (a *arena) getTuples(n int) []Tuple {
	best := -1
	for i, b := range a.tupleFree {
		if cap(b) >= n && (best < 0 || cap(b) < cap(a.tupleFree[best])) {
			best = i
		}
	}
	if best >= 0 {
		b := a.tupleFree[best]
		last := len(a.tupleFree) - 1
		a.tupleFree[best] = a.tupleFree[last]
		a.tupleFree[last] = nil
		a.tupleFree = a.tupleFree[:last]
		a.reuses++
		return b[:n]
	}
	a.allocs++
	return make([]Tuple, n, roundUpPow2(n))
}

// putTuples returns a buffer to the free list. Nil and zero-capacity
// buffers are dropped.
func (a *arena) putTuples(b []Tuple) {
	if cap(b) == 0 {
		return
	}
	a.tupleFree = append(a.tupleFree, b[:0])
}

// getInt32 is getTuples for int32 scratch (partition counts, scattered
// keys, flat-table arrays). Contents are unspecified.
func (a *arena) getInt32(n int) []int32 {
	best := -1
	for i, b := range a.intFree {
		if cap(b) >= n && (best < 0 || cap(b) < cap(a.intFree[best])) {
			best = i
		}
	}
	if best >= 0 {
		b := a.intFree[best]
		last := len(a.intFree) - 1
		a.intFree[best] = a.intFree[last]
		a.intFree[last] = nil
		a.intFree = a.intFree[:last]
		a.reuses++
		return b[:n]
	}
	a.allocs++
	return make([]int32, n, roundUpPow2(n))
}

// putInt32 returns an int32 buffer to the free list.
func (a *arena) putInt32(b []int32) {
	if cap(b) == 0 {
		return
	}
	a.intFree = append(a.intFree, b[:0])
}

// resetStats zeroes the reuse/alloc tallies before the arena goes back
// to the pool, so the next run's deltas start clean.
func (a *arena) resetStats() { a.reuses, a.allocs = 0, 0 }
