package engine

import (
	"runtime"
	"sync/atomic"
	"testing"

	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/sched"
)

// degreeSchedule hand-builds a one-phase schedule placing every
// operator of the expanded plan at the given degree — degrees far above
// what the tree scheduler would ever pick, to hammer the clone driver.
// Operators land in ID order (a valid pipeline topological order).
func degreeSchedule(t *testing.T, p *query.PlanNode, degree int) *sched.Schedule {
	t.Helper()
	ot := plan.MustExpand(p)
	plan.MustNewTaskTree(ot) // back-fills each operator's Task pointer
	sites := make([]int, degree)
	for i := range sites {
		sites[i] = i
	}
	ph := &sched.PhaseSchedule{}
	for _, op := range ot.Ops {
		ph.Placements = append(ph.Placements,
			&sched.OpPlacement{Op: op, Degree: degree, Sites: sites})
	}
	return &sched.Schedule{P: degree, Phases: []*sched.PhaseSchedule{ph}}
}

// TestParallelCloneGoroutinesAreBounded pins the eachClone fix: a
// degree-512 operator in Parallel mode must run its clones through the
// bounded internal/par pool (clamped to GOMAXPROCS) instead of the 512
// goroutines the engine used to spawn. The failClone hook samples the
// live goroutine count from inside the clone bodies. Run under -race
// by the engine-race gate.
func TestParallelCloneGoroutinesAreBounded(t *testing.T) {
	const degree = 512
	lp := leaf("R", 64000)
	ds := MustGenerate(lp, 3)
	s := degreeSchedule(t, lp, degree)

	var maxG int64
	base := runtime.NumGoroutine()
	eng := testEngine(true)
	eng.failClone = func(op *plan.Operator, clone int) error {
		g := int64(runtime.NumGoroutine())
		for {
			cur := atomic.LoadInt64(&maxG)
			if g <= cur || atomic.CompareAndSwapInt64(&maxG, cur, g) {
				break
			}
		}
		return nil
	}
	rep, err := eng.Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != 64000 {
		t.Fatalf("degree-%d scan produced %d tuples, want 64000", degree, rep.ResultTuples)
	}

	// The pool runs at most GOMAXPROCS workers; allow slack for the
	// runtime's own goroutines and whatever the test harness keeps
	// around, but nothing near the old one-per-clone blow-up.
	bound := int64(base + runtime.GOMAXPROCS(0) + 16)
	if got := atomic.LoadInt64(&maxG); got > bound {
		t.Fatalf("observed %d live goroutines at degree %d, want <= %d", got, degree, bound)
	}
}

// TestDegree512JoinMatchesReference runs a whole join at degree 512 —
// partitions far smaller than the key domain, forcing the
// open-addressing table fallback — and checks the flat path still
// mirrors the reference executor exactly.
func TestDegree512JoinMatchesReference(t *testing.T) {
	const degree = 512
	p := join(leaf("A", 30000), leaf("B", 8000))
	ds := MustGenerate(p, 11)
	s := degreeSchedule(t, p, degree)

	ref := testEngine(true)
	ref.Reference = true
	repRef, err := ref.Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	repFlat, err := testEngine(true).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if repRef.ResultTuples != 30000 || repFlat.ResultTuples != repRef.ResultTuples {
		t.Fatalf("cardinality mismatch: ref %d, flat %d", repRef.ResultTuples, repFlat.ResultTuples)
	}
	if repRef.Measured != repFlat.Measured {
		t.Fatalf("measured diverges at degree %d: ref %g, flat %g",
			degree, repRef.Measured, repFlat.Measured)
	}
}
