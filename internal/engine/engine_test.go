package engine

import (
	"math"
	"math/rand"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/plan"
	"mdrs/internal/query"
	"mdrs/internal/resource"
	"mdrs/internal/sched"
)

func leaf(name string, tuples int) *query.PlanNode {
	return &query.PlanNode{
		Relation: &query.Relation{Name: name, Tuples: tuples},
		Tuples:   tuples,
	}
}

func join(outer, inner *query.PlanNode) *query.PlanNode {
	t := outer.Tuples
	if inner.Tuples > t {
		t = inner.Tuples
	}
	return &query.PlanNode{Outer: outer, Inner: inner, Tuples: t}
}

func testEngine(parallel bool) Engine {
	return Engine{
		Model:    costmodel.Default(),
		Overlap:  resource.MustOverlap(0.5),
		Parallel: parallel,
	}
}

func scheduleFor(t *testing.T, p *query.PlanNode, sites int) *sched.Schedule {
	t.Helper()
	tt := plan.MustNewTaskTree(plan.MustExpand(p))
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       sites,
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateRejectsInvalidPlan(t *testing.T) {
	if _, err := Generate(leaf("R", 0), 1); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := join(leaf("A", 100), leaf("B", 50))
	d1 := MustGenerate(p, 42)
	d2 := MustGenerate(p, 42)
	for i := 0; i < 100; i++ {
		tp := Tuple{Leaf: 0, Row: int32(i)}
		k1, err := d1.Key(tp, p)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := d2.Key(tp, p)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("row %d: keys %d vs %d", i, k1, k2)
		}
	}
}

func TestGenerateSmallerSideHasUniqueKeys(t *testing.T) {
	p := join(leaf("A", 80), leaf("B", 30)) // inner B smaller, unique 0..29
	ds := MustGenerate(p, 7)
	bIdx, err := ds.LeafIndex(p.Inner)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, tp := range ds.LeafTuples(bIdx) {
		k, err := ds.Key(tp, p)
		if err != nil {
			t.Fatal(err)
		}
		if k < 0 || k >= 30 {
			t.Fatalf("inner key %d outside [0, 30)", k)
		}
		if seen[k] {
			t.Fatalf("duplicate inner key %d", k)
		}
		seen[k] = true
	}
	// Larger side's keys all fall in the smaller domain.
	aIdx, err := ds.LeafIndex(p.Outer)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range ds.LeafTuples(aIdx) {
		k, err := ds.Key(tp, p)
		if err != nil {
			t.Fatal(err)
		}
		if k < 0 || k >= 30 {
			t.Fatalf("outer key %d outside [0, 30)", k)
		}
	}
}

func TestKeyErrorsForForeignJoin(t *testing.T) {
	p := join(leaf("A", 10), leaf("B", 5))
	other := join(leaf("C", 10), leaf("D", 5))
	ds := MustGenerate(p, 1)
	if _, err := ds.Key(Tuple{Leaf: 0, Row: 0}, other); err == nil {
		t.Fatal("foreign join key lookup succeeded")
	}
}

func TestLeafIndexErrorsForNonLeaf(t *testing.T) {
	p := join(leaf("A", 10), leaf("B", 5))
	ds := MustGenerate(p, 1)
	if _, err := ds.LeafIndex(p); err == nil {
		t.Fatal("join node accepted as leaf")
	}
}

func TestRunSingleJoinCardinalities(t *testing.T) {
	for _, sizes := range [][2]int{{2000, 500}, {500, 2000}, {800, 800}} {
		p := join(leaf("A", sizes[0]), leaf("B", sizes[1]))
		ds := MustGenerate(p, 3)
		s := scheduleFor(t, p, 8)
		rep, err := testEngine(false).Run(ds, s)
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		want := sizes[0]
		if sizes[1] > want {
			want = sizes[1]
		}
		if rep.ResultTuples != want {
			t.Fatalf("sizes %v: result %d, want %d", sizes, rep.ResultTuples, want)
		}
	}
}

func TestRunBushyPlanCardinalities(t *testing.T) {
	p := join(
		join(leaf("A", 3000), leaf("B", 1200)),
		join(leaf("C", 900), leaf("D", 2500)),
	)
	ds := MustGenerate(p, 11)
	s := scheduleFor(t, p, 10)
	rep, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != 3000 {
		t.Fatalf("result = %d, want 3000", rep.ResultTuples)
	}
	if len(rep.JoinResults) != 3 {
		t.Fatalf("join results = %v", rep.JoinResults)
	}
}

func TestRunRandomPlansMatchOptimizerCardinalities(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		p := query.MustRandom(r, query.GenConfig{
			Joins: 4 + r.Intn(6), MinTuples: 200, MaxTuples: 3000,
		})
		ds := MustGenerate(p, int64(trial))
		s := scheduleFor(t, p, 6)
		rep, err := testEngine(false).Run(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ResultTuples != p.Tuples {
			t.Fatalf("trial %d: result %d, want %d", trial, rep.ResultTuples, p.Tuples)
		}
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	p := join(join(leaf("A", 4000), leaf("B", 2500)), leaf("C", 1500))
	ds := MustGenerate(p, 5)
	s := scheduleFor(t, p, 8)
	serial, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testEngine(true).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if serial.ResultTuples != par.ResultTuples {
		t.Fatalf("results differ: %d vs %d", serial.ResultTuples, par.ResultTuples)
	}
	if math.Abs(serial.Measured-par.Measured) > 1e-9 {
		t.Fatalf("measured responses differ: %g vs %g", serial.Measured, par.Measured)
	}
}

func TestMeasuredTracksPredicted(t *testing.T) {
	// The engine meters the same cost constants the scheduler plans
	// with; the only divergence is hash-partitioning skew vs EA1's
	// perfect split and page-rounding, so measured response should land
	// within a modest band around the prediction.
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 3; trial++ {
		p := query.MustRandom(r, query.GenConfig{
			Joins: 6, MinTuples: 5000, MaxTuples: 40000,
		})
		ds := MustGenerate(p, int64(trial))
		s := scheduleFor(t, p, 12)
		rep, err := testEngine(true).Run(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		ratio := rep.Measured / rep.Predicted
		if ratio < 0.7 || ratio > 1.5 {
			t.Fatalf("trial %d: measured %g vs predicted %g (ratio %.3f)",
				trial, rep.Measured, rep.Predicted, ratio)
		}
		if len(rep.PhaseMeasured) != len(s.Phases) {
			t.Fatalf("phase count mismatch: %d vs %d",
				len(rep.PhaseMeasured), len(s.Phases))
		}
		sum := 0.0
		for _, t := range rep.PhaseMeasured {
			sum += t
		}
		if math.Abs(sum-rep.Measured) > 1e-9 {
			t.Fatalf("phase sum %g != measured %g", sum, rep.Measured)
		}
	}
}

func TestRunSynchronousScheduleToo(t *testing.T) {
	// The engine is schedule-agnostic: a baseline schedule must execute
	// to the same result cardinality.
	p := join(join(leaf("A", 3000), leaf("B", 1000)), leaf("C", 2000))
	ds := MustGenerate(p, 23)
	ot := plan.MustExpand(p)
	tt := plan.MustNewTaskTree(ot)

	// Import cycle note: the baseline package is exercised against the
	// engine in the integration tests at the repository root; here a
	// TreeSchedule with a different configuration stands in for schedule
	// variety.
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.1),
		P:       3,
		F:       0.3,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Engine{Model: costmodel.Default(), Overlap: resource.MustOverlap(0.1)}.Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != 3000 {
		t.Fatalf("result = %d", rep.ResultTuples)
	}
}

func TestGenerateOptsRejectsBadSkew(t *testing.T) {
	p := join(leaf("A", 100), leaf("B", 50))
	for _, s := range []float64{0.5, 1.0, -2} {
		if _, err := GenerateOpts(p, GenOptions{SkewS: s}); err == nil {
			t.Errorf("Zipf exponent %g accepted", s)
		}
	}
}

func TestSkewPreservesCardinalities(t *testing.T) {
	// Skewed keys change partition balance, never join cardinalities:
	// every larger-side tuple still matches exactly one smaller tuple.
	r := rand.New(rand.NewSource(31))
	p := query.MustRandom(r, query.GenConfig{Joins: 5, MinTuples: 500, MaxTuples: 5000})
	ds, err := GenerateOpts(p, GenOptions{Seed: 9, SkewS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduleFor(t, p, 6)
	rep, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultTuples != p.Tuples {
		t.Fatalf("skewed result %d != %d", rep.ResultTuples, p.Tuples)
	}
}

func TestSkewIncreasesDeviationFromPrediction(t *testing.T) {
	// EA1 assumes no execution skew; Zipf keys concentrate probe work on
	// few partitions, so the measured response must drift further above
	// the scheduler's prediction than with uniform keys.
	r := rand.New(rand.NewSource(37))
	p := query.MustRandom(r, query.GenConfig{Joins: 4, MinTuples: 20000, MaxTuples: 60000})
	s := scheduleFor(t, p, 12)

	uniform, err := GenerateOpts(p, GenOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := GenerateOpts(p, GenOptions{Seed: 5, SkewS: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	repU, err := testEngine(false).Run(uniform, s)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := testEngine(false).Run(skewed, s)
	if err != nil {
		t.Fatal(err)
	}
	ratioU := repU.Measured / repU.Predicted
	ratioS := repS.Measured / repS.Predicted
	if ratioS <= ratioU {
		t.Fatalf("skew did not increase deviation: uniform %.4f, skewed %.4f",
			ratioU, ratioS)
	}
}

func TestPartitionOfRange(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for key := int32(0); key < 1000; key++ {
			got := partitionOf(key, n)
			if got < 0 || got >= n {
				t.Fatalf("partitionOf(%d, %d) = %d", key, n, got)
			}
		}
	}
}

func TestPartitionOfBalance(t *testing.T) {
	// Sequential keys must spread near-uniformly across partitions.
	n := 8
	counts := make([]int, n)
	for key := int32(0); key < 8000; key++ {
		counts[partitionOf(key, n)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("partition %d holds %d of 8000 keys", i, c)
		}
	}
}

func TestSplitContiguous(t *testing.T) {
	all := make([]Tuple, 10)
	parts := splitContiguous(all, 3)
	if len(parts) != 3 || len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Fatalf("split sizes: %d %d %d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	parts = splitContiguous(nil, 2)
	if len(parts[0])+len(parts[1]) != 0 {
		t.Fatal("splitting empty input produced tuples")
	}
}

func BenchmarkEngineRun(b *testing.B) {
	p := join(join(leaf("A", 20000), leaf("B", 10000)), leaf("C", 15000))
	ds := MustGenerate(p, 1)
	ot := plan.MustExpand(p)
	tt := plan.MustNewTaskTree(ot)
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: resource.MustOverlap(0.5),
		P:       8,
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		b.Fatal(err)
	}
	eng := testEngine(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ds, s); err != nil {
			b.Fatal(err)
		}
	}
}
