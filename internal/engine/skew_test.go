package engine

import (
	"testing"
)

// TestSkewedRunDriftsAbovePrediction pins the EA1-violation behavior
// DESIGN promises: a SkewS>1 dataset still joins to exactly the
// predicted cardinalities (every larger-side tuple matches exactly one
// smaller-side tuple regardless of key distribution), but its hash
// partitions are measurably imbalanced, so the slowest clone carries
// more work than the scheduler's uniform-partition model assumed and
// the measured response drifts above the prediction.
func TestSkewedRunDriftsAbovePrediction(t *testing.T) {
	const sites = 8
	p := join(leaf("A", 40000), leaf("B", 8000))
	ds, err := GenerateOpts(p, GenOptions{Seed: 23, SkewS: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduleFor(t, p, sites)

	// Partition the probe side (leaf A, the larger operand) by the
	// join key, exactly as the probe operator will, and record the
	// imbalance: max partition size over mean partition size.
	aIdx, err := ds.LeafIndex(p.Outer)
	if err != nil {
		t.Fatal(err)
	}
	ar := arenaPool.Get().(*arena)
	rp, err := radixPartition(ar, ds, p, ds.LeafTuples(aIdx), sites)
	if err != nil {
		t.Fatal(err)
	}
	maxSz, total := 0, 0
	for k := range rp.tuples {
		if len(rp.tuples[k]) > maxSz {
			maxSz = len(rp.tuples[k])
		}
		total += len(rp.tuples[k])
	}
	rp.release(ar)
	arenaPool.Put(ar)
	if total != 40000 {
		t.Fatalf("partitions cover %d of 40000 tuples", total)
	}
	mean := float64(total) / float64(sites)
	ratio := float64(maxSz) / mean
	t.Logf("skew=1.3 partition imbalance: max/mean = %.2f (max %d, mean %.0f)", ratio, maxSz, mean)
	if ratio < 1.2 {
		t.Fatalf("partitions suspiciously balanced under Zipf 1.3: max/mean = %.2f", ratio)
	}

	rep, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	// Cardinalities must still match exactly (the run itself enforces
	// per-join and root cardinality; spot-check the root here).
	if rep.ResultTuples != 40000 {
		t.Fatalf("skewed join produced %d tuples, want 40000", rep.ResultTuples)
	}
	if rep.Measured <= rep.Predicted {
		t.Fatalf("skewed run does not drift above prediction: measured %g <= predicted %g",
			rep.Measured, rep.Predicted)
	}

	// The same plan with uniform keys tracks the prediction much more
	// closely — the drift is attributable to the skew, not the engine.
	uni := MustGenerate(p, 23)
	repU, err := testEngine(false).Run(uni, s)
	if err != nil {
		t.Fatal(err)
	}
	skewGap := rep.Measured / rep.Predicted
	uniGap := repU.Measured / repU.Predicted
	t.Logf("measured/predicted: skew=%.4f uniform=%.4f", skewGap, uniGap)
	if skewGap <= uniGap {
		t.Fatalf("skewed drift %.4f not above uniform drift %.4f", skewGap, uniGap)
	}
}
