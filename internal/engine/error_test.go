package engine

import (
	"fmt"
	"strings"
	"testing"

	"mdrs/internal/costmodel"
	"mdrs/internal/obs"
	"mdrs/internal/plan"
	"mdrs/internal/sched"
)

// failCloneOn returns a fault that fails the given clone of every
// operator of the given kind.
func failCloneOn(kind costmodel.OpKind, clone int) func(*plan.Operator, int) error {
	return func(op *plan.Operator, k int) error {
		if op.Kind == kind && k == clone {
			return fmt.Errorf("injected fault in %s clone %d", op.Name, k)
		}
		return nil
	}
}

// TestScanCloneErrorSurfaces is the regression test for the dropped
// eachClone error: a failing Scan clone used to be silently ignored
// (the result cardinality check would then misfire or, worse, pass).
// It must surface as the run's error, under both execution modes.
func TestScanCloneErrorSurfaces(t *testing.T) {
	p := join(leaf("A", 2000), leaf("B", 500))
	ds := MustGenerate(p, 3)
	s := scheduleFor(t, p, 8)
	for _, parallel := range []bool{false, true} {
		e := testEngine(parallel)
		e.failClone = failCloneOn(costmodel.Scan, 0)
		_, err := e.Run(ds, s)
		if err == nil {
			t.Fatalf("parallel=%v: injected scan clone fault was swallowed", parallel)
		}
		if !strings.Contains(err.Error(), "injected fault") ||
			!strings.Contains(err.Error(), "scan(") {
			t.Fatalf("parallel=%v: error lost the clone context: %v", parallel, err)
		}
	}
}

// TestEveryArmSurfacesCloneErrors injects a failure into each operator
// kind in turn; no arm may swallow it.
func TestEveryArmSurfacesCloneErrors(t *testing.T) {
	p := join(join(leaf("A", 3000), leaf("B", 1200)), leaf("C", 900))
	ds := MustGenerate(p, 7)
	ot, err := plan.ExpandMaterialized(p)
	if err != nil {
		t.Fatal(err)
	}
	tt := plan.MustNewTaskTree(ot)
	s, err := sched.TreeScheduler{
		Model:   costmodel.Default(),
		Overlap: testEngine(false).Overlap,
		P:       8,
		F:       0.7,
	}.Schedule(tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []costmodel.OpKind{
		costmodel.Scan, costmodel.Build, costmodel.Probe, costmodel.Store,
	} {
		for _, parallel := range []bool{false, true} {
			e := testEngine(parallel)
			e.failClone = failCloneOn(kind, 0)
			if _, err := e.Run(ds, s); err == nil {
				t.Fatalf("kind=%v parallel=%v: clone fault swallowed", kind, parallel)
			}
		}
	}
}

// TestParallelCloneErrorIsDeterministic pins that the lowest-index
// failing clone wins regardless of goroutine interleaving.
func TestParallelCloneErrorIsDeterministic(t *testing.T) {
	p := join(leaf("A", 4000), leaf("B", 2000))
	ds := MustGenerate(p, 5)
	s := scheduleFor(t, p, 8)
	e := testEngine(true)
	e.failClone = func(op *plan.Operator, k int) error {
		if op.Kind == costmodel.Probe {
			return fmt.Errorf("fault@%d", k)
		}
		return nil
	}
	for trial := 0; trial < 10; trial++ {
		_, err := e.Run(ds, s)
		if err == nil || !strings.Contains(err.Error(), "fault@0") {
			t.Fatalf("trial %d: got %v, want the clone-0 fault", trial, err)
		}
	}
}

// TestNilProducerIsAnError corrupts a probe's task graph so it has no
// pipeline producer; the engine used to read outputs[nil] as an empty
// input and carry on with zero tuples.
func TestNilProducerIsAnError(t *testing.T) {
	p := join(leaf("A", 1000), leaf("B", 400))
	ds := MustGenerate(p, 9)
	s := scheduleFor(t, p, 4)

	// Find the probe and sever the edge that feeds it: its producer's
	// ConsumerEdge flips to Blocking, so producerOf finds nothing.
	var severed *plan.Operator
	for _, ph := range s.Phases {
		for _, pl := range ph.Placements {
			if pl.Op.Kind != costmodel.Probe {
				continue
			}
			for _, cand := range pl.Op.Task.Ops {
				if cand.Consumer == pl.Op && cand.ConsumerEdge == plan.Pipeline {
					severed = cand
					severed.ConsumerEdge = plan.Blocking
				}
			}
		}
	}
	if severed == nil {
		t.Fatal("no probe producer found to sever")
	}
	defer func() { severed.ConsumerEdge = plan.Pipeline }()

	_, err := testEngine(false).Run(ds, s)
	if err == nil {
		t.Fatal("nil producer executed as an empty input")
	}
	if !strings.Contains(err.Error(), "no pipeline producer") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestDegreeZeroIsRejected pins that a corrupt zero-degree placement
// fails with a clear error instead of a mod-by-zero panic inside
// partitionOf (or a silent empty split in splitContiguous).
func TestDegreeZeroIsRejected(t *testing.T) {
	p := join(leaf("A", 800), leaf("B", 300))
	ds := MustGenerate(p, 13)
	s := scheduleFor(t, p, 4)
	pl := s.Phases[0].Placements[0]
	saveDeg, saveSites := pl.Degree, pl.Sites
	defer func() { pl.Degree, pl.Sites = saveDeg, saveSites }()

	pl.Degree, pl.Sites = 0, nil
	_, err := testEngine(false).Run(ds, s)
	if err == nil {
		t.Fatal("degree-0 placement executed")
	}
	if !strings.Contains(err.Error(), "degree 0 < 1") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestSitesDegreeMismatchIsRejected covers the sibling corruption: a
// placement whose Sites slice disagrees with its Degree used to panic
// when Run zipped meters with sites.
func TestSitesDegreeMismatchIsRejected(t *testing.T) {
	p := join(leaf("A", 800), leaf("B", 300))
	ds := MustGenerate(p, 13)
	s := scheduleFor(t, p, 4)
	pl := s.Phases[0].Placements[0]
	saveSites := pl.Sites
	defer func() { pl.Sites = saveSites }()

	pl.Sites = pl.Sites[:len(pl.Sites)-1]
	if len(pl.Sites) == pl.Degree {
		t.Skip("degree-1 placement; mismatch not constructible by truncation")
	}
	_, err := testEngine(false).Run(ds, s)
	if err == nil {
		t.Fatal("sites/degree mismatch executed")
	}
	if !strings.Contains(err.Error(), "sites for") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestScheduleDatasetMismatchIsAnError runs a schedule against a
// dataset generated for a different plan.
func TestScheduleDatasetMismatchIsAnError(t *testing.T) {
	pa := join(leaf("A", 1000), leaf("B", 400))
	pb := join(leaf("C", 900), leaf("D", 600))
	ds := MustGenerate(pb, 1)
	s := scheduleFor(t, pa, 4)
	if _, err := testEngine(false).Run(ds, s); err == nil {
		t.Fatal("foreign dataset accepted")
	}
}

// TestProbeBeforeBuildIsAnError deletes a build placement from the
// schedule, so its probe finds no hash table.
func TestProbeBeforeBuildIsAnError(t *testing.T) {
	p := join(leaf("A", 1000), leaf("B", 400))
	ds := MustGenerate(p, 9)
	s := scheduleFor(t, p, 4)
	removed := false
	for _, ph := range s.Phases {
		for i, pl := range ph.Placements {
			if pl.Op.Kind == costmodel.Build {
				ph.Placements = append(ph.Placements[:i], ph.Placements[i+1:]...)
				removed = true
				break
			}
		}
		if removed {
			break
		}
	}
	if !removed {
		t.Fatal("no build placement found")
	}
	_, err := testEngine(false).Run(ds, s)
	if err == nil {
		t.Fatal("probe without its build executed")
	}
	if !strings.Contains(err.Error(), "before its build") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestParallelClonesRecordUnderRace exercises eachClone's goroutines
// with every recorder implementation attached — the data-race guard for
// the observability layer (meaningful under `go test -race`, which
// `make check` runs).
func TestParallelClonesRecordUnderRace(t *testing.T) {
	p := join(join(leaf("A", 5000), leaf("B", 2500)), leaf("C", 1500))
	ds := MustGenerate(p, 5)
	s := scheduleFor(t, p, 8)
	met := obs.NewMetrics()
	e := testEngine(true)
	e.Rec = obs.Multi(met, obs.NewCapture())
	rep, err := e.Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	if snap.Counters["engine.clone_runs"] == 0 {
		t.Fatal("no clone runs recorded")
	}
	if snap.Counters["engine.tuples_scanned"] == 0 ||
		snap.Counters["engine.tuples_joined"] == 0 {
		t.Fatalf("tuple counters missing: %v", snap.Counters)
	}
	if got := snap.Histograms["engine.phase_measured"].Count; got != int64(len(rep.PhaseMeasured)) {
		t.Fatalf("phase samples %d != phases %d", got, len(rep.PhaseMeasured))
	}
}

// TestReportBreakdownIsConsistent checks the new metered-vs-predicted
// breakdown: phase alignment, operator coverage, and that per-phase
// measured responses dominate every member operator's isolated time.
func TestReportBreakdownIsConsistent(t *testing.T) {
	p := join(
		join(leaf("A", 3000), leaf("B", 1200)),
		join(leaf("C", 900), leaf("D", 2500)),
	)
	ds := MustGenerate(p, 11)
	s := scheduleFor(t, p, 10)
	rep, err := testEngine(false).Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhasePredicted) != len(s.Phases) {
		t.Fatalf("predicted phases %d != %d", len(rep.PhasePredicted), len(s.Phases))
	}
	sumPred := 0.0
	for i, ph := range s.Phases {
		if rep.PhasePredicted[i] != ph.Response {
			t.Fatalf("phase %d predicted %g != schedule %g",
				i, rep.PhasePredicted[i], ph.Response)
		}
		sumPred += rep.PhasePredicted[i]
	}
	if sumPred != rep.Predicted {
		t.Fatalf("phase predictions sum %g != predicted %g", sumPred, rep.Predicted)
	}
	nOps := 0
	for _, ph := range s.Phases {
		nOps += len(ph.Placements)
	}
	if len(rep.Operators) != nOps {
		t.Fatalf("breakdown has %d operators, schedule has %d", len(rep.Operators), nOps)
	}
	for _, op := range rep.Operators {
		if op.Measured <= 0 || op.Predicted <= 0 {
			t.Fatalf("%s: non-positive times: %+v", op.Name, op)
		}
		if op.Phase < 0 || op.Phase >= len(rep.PhaseMeasured) {
			t.Fatalf("%s: phase %d out of range", op.Name, op.Phase)
		}
		// An operator alone can never take longer than the phase that
		// contains it plus its site's time-sharing: measured isolated time
		// is bounded by the phase's measured response.
		if op.Measured > rep.PhaseMeasured[op.Phase]+1e-9 {
			t.Fatalf("%s: isolated %g exceeds phase response %g",
				op.Name, op.Measured, rep.PhaseMeasured[op.Phase])
		}
	}
}
