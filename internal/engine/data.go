// Package engine is a small in-memory shared-nothing hash-join
// execution engine. It exists to validate schedules end-to-end: it
// actually executes a scheduled bushy plan — partitioned scans, hash
// builds, pipelined probes over synthetic data, with the work of every
// operator clone metered against per-site virtual resource clocks using
// the same Table 2 cost constants the scheduler plans with — and checks
// that (a) every join produces exactly the cardinality the optimizer's
// simple-key-join rule predicts and (b) the measured response time
// tracks the scheduler's analytic prediction.
//
// # Synthetic data
//
// The paper's workloads assume simple key joins where the result size
// equals the larger operand's size. The generator realizes that with a
// foreign-key discipline per join: the smaller operand carries distinct
// keys 0..s−1 and the larger operand carries keys drawn from [0, s), so
// every larger-side tuple matches exactly one smaller-side tuple and
// |result| = max(|L|, |R|).
//
// Tuples are represented as identities into their "carrier" leaf — the
// base relation whose rows survive, join after join, along the chain of
// larger operands. A join's result tuple keeps the identity of its
// larger operand's tuple, so the keys a tuple needs for future joins are
// exactly the key columns assigned to its carrier leaf at generation
// time.
package engine

import (
	"fmt"
	"math/rand"

	"mdrs/internal/query"
)

// Tuple identifies one row flowing through the engine: a row of the
// carrier leaf relation. The modeled width of every tuple is the
// catalog's TupleBytes regardless of this compact representation.
type Tuple struct {
	Leaf int32 // leaf relation index within the Dataset
	Row  int32 // row within the leaf
}

// keySlot records that a leaf carries a key column for one join.
type keySlot struct {
	joinNode *query.PlanNode
	smaller  bool // the leaf's subtree is the join's smaller operand
	domain   int  // s = min(|outer|, |inner|) of the join
}

// leafData is a generated base relation: one key column per join the
// leaf is the carrier for.
type leafData struct {
	rel   *query.Relation
	slots []keySlot
	keys  [][]int32 // keys[slot][row]
	index map[*query.PlanNode]int
	// tuples is the leaf's identity tuple slice, built once at Generate
	// time and shared by every LeafTuples caller — read-only.
	tuples []Tuple
}

// joinCols is the per-join key-column index built once at Generate
// time so the engine's operators resolve a join's column slot exactly
// once instead of paying a map lookup (ds.Key) per tuple: cols[leaf]
// is that leaf's key column for the join (nil when the leaf carries no
// key for it), domain is the key domain [0, domain), and distinct[leaf]
// reports whether the leaf's column holds distinct keys (the join's
// smaller-side permutation).
type joinCols struct {
	domain   int
	cols     [][]int32
	distinct []bool
}

// Dataset holds the generated base relations of one plan.
type Dataset struct {
	// Plan is the source execution plan.
	Plan *query.PlanNode

	leaves []*leafData
	byLeaf map[*query.PlanNode]int32 // leaf plan node -> leaf index
	joins  map[*query.PlanNode]*joinCols
	skewS  float64 // Zipf exponent for larger-side keys; 0 = uniform
}

// GenOptions tunes data generation.
type GenOptions struct {
	// Seed makes generation reproducible.
	Seed int64
	// SkewS, when > 1, draws the larger operands' join keys from a Zipf
	// distribution with exponent SkewS instead of uniformly. Every
	// larger-side tuple still matches exactly one smaller-side tuple
	// (cardinalities are unchanged), but hash partitions become uneven —
	// violating the no-execution-skew assumption EA1 on purpose, to
	// measure how far reality can drift from the scheduler's prediction.
	// Zero means uniform keys.
	SkewS float64
}

// Generate creates synthetic relations for a validated plan with
// uniform keys. The same seed always yields the same data.
func Generate(p *query.PlanNode, seed int64) (*Dataset, error) {
	return GenerateOpts(p, GenOptions{Seed: seed})
}

// GenerateOpts is Generate with explicit options.
func GenerateOpts(p *query.PlanNode, opts GenOptions) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("engine: generating data for invalid plan: %w", err)
	}
	if opts.SkewS != 0 && opts.SkewS <= 1 {
		return nil, fmt.Errorf("engine: Zipf exponent %g must exceed 1 (or be 0 for uniform)", opts.SkewS)
	}
	ds := &Dataset{Plan: p, byLeaf: make(map[*query.PlanNode]int32), skewS: opts.SkewS}
	r := rand.New(rand.NewSource(opts.Seed))
	ds.walk(r, p, nil)
	ds.buildIndexes()
	return ds, nil
}

// buildIndexes derives the read-only lookup structures the engine's
// hot paths index directly: the cached identity tuple slice of every
// leaf and the per-join column index (joinCols). Built once per
// Dataset, never mutated afterwards, so concurrent runs over a shared
// dataset need no locks.
func (ds *Dataset) buildIndexes() {
	ds.joins = make(map[*query.PlanNode]*joinCols)
	nl := len(ds.leaves)
	for li, ld := range ds.leaves {
		tuples := make([]Tuple, ld.rel.Tuples)
		for r := range tuples {
			tuples[r] = Tuple{Leaf: int32(li), Row: int32(r)}
		}
		ld.tuples = tuples
		for si, slot := range ld.slots {
			jc := ds.joins[slot.joinNode]
			if jc == nil {
				jc = &joinCols{
					domain:   slot.domain,
					cols:     make([][]int32, nl),
					distinct: make([]bool, nl),
				}
				ds.joins[slot.joinNode] = jc
			}
			jc.cols[li] = ld.keys[si]
			jc.distinct[li] = slot.smaller
		}
	}
}

// MustGenerate is Generate that panics on error.
func MustGenerate(p *query.PlanNode, seed int64) *Dataset {
	ds, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return ds
}

// walk descends the plan accumulating the pending key slots the current
// subtree's carrier leaf must provide.
func (ds *Dataset) walk(r *rand.Rand, n *query.PlanNode, pending []keySlot) {
	if n.IsLeaf() {
		ld := &leafData{
			rel:   n.Relation,
			slots: pending,
			keys:  make([][]int32, len(pending)),
			index: make(map[*query.PlanNode]int, len(pending)),
		}
		for si, slot := range pending {
			col := make([]int32, n.Relation.Tuples)
			if slot.smaller {
				// Distinct keys 0..s−1: the leaf has exactly s rows.
				perm := r.Perm(slot.domain)
				for i := range col {
					col[i] = int32(perm[i])
				}
			} else if ds.skewS > 1 {
				z := rand.NewZipf(r, ds.skewS, 1, uint64(slot.domain-1))
				for i := range col {
					col[i] = int32(z.Uint64())
				}
			} else {
				for i := range col {
					col[i] = int32(r.Intn(slot.domain))
				}
			}
			ld.keys[si] = col
			ld.index[slot.joinNode] = si
		}
		ds.byLeaf[n] = int32(len(ds.leaves))
		ds.leaves = append(ds.leaves, ld)
		return
	}

	s := n.Outer.Tuples
	if n.Inner.Tuples < s {
		s = n.Inner.Tuples
	}
	// The carrier (larger) child keeps the pending chain; the smaller
	// child's rows are dropped after this join, so it only needs this
	// join's key. Ties go to the outer child, matching OuterIsCarrier.
	outerSlot := keySlot{joinNode: n, smaller: n.Outer.Tuples < n.Inner.Tuples, domain: s}
	innerSlot := keySlot{joinNode: n, smaller: !outerSlot.smaller, domain: s}
	var outerPending, innerPending []keySlot
	if OuterIsCarrier(n) {
		outerPending = append([]keySlot{outerSlot}, pending...)
		innerPending = []keySlot{innerSlot}
	} else {
		outerPending = []keySlot{outerSlot}
		innerPending = append([]keySlot{innerSlot}, pending...)
	}
	ds.walk(r, n.Outer, outerPending)
	ds.walk(r, n.Inner, innerPending)
}

// OuterIsCarrier reports whether the join's result tuples inherit the
// identity of the outer (probe-side) operand: true when the outer
// operand is at least as large as the inner one.
func OuterIsCarrier(join *query.PlanNode) bool {
	return join.Outer.Tuples >= join.Inner.Tuples
}

// NumLeaves returns the number of generated base relations.
func (ds *Dataset) NumLeaves() int { return len(ds.leaves) }

// LeafIndex returns the dataset index of the given leaf plan node.
func (ds *Dataset) LeafIndex(leaf *query.PlanNode) (int32, error) {
	idx, ok := ds.byLeaf[leaf]
	if !ok {
		return 0, fmt.Errorf("engine: plan node is not a leaf of this dataset")
	}
	return idx, nil
}

// LeafTuples returns the identity tuples of leaf i, in row order. The
// slice is built once at Generate time and shared by every caller —
// it is read-only; callers must not modify it. (It used to be
// regenerated on every call, so scanning the same leaf in different
// plans of a batch paid an O(rows) allocation each time.)
func (ds *Dataset) LeafTuples(i int32) []Tuple {
	return ds.leaves[i].tuples
}

// Key returns tuple t's key for the given join node. It fails if the
// tuple's carrier leaf does not carry a column for that join, which
// indicates a dataflow bug.
func (ds *Dataset) Key(t Tuple, join *query.PlanNode) (int32, error) {
	ld := ds.leaves[t.Leaf]
	si, ok := ld.index[join]
	if !ok {
		return 0, fmt.Errorf("engine: leaf %s carries no key for the requested join",
			ld.rel.Name)
	}
	return ld.keys[si][t.Row], nil
}
