package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"mdrs/internal/plan"
)

func TestRunCtxPreCancelled(t *testing.T) {
	p := join(leaf("A", 2000), leaf("B", 500))
	ds := MustGenerate(p, 3)
	s := scheduleFor(t, p, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []bool{false, true} {
		if _, err := testEngine(parallel).RunCtx(ctx, ds, s); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: got %v, want context.Canceled", parallel, err)
		}
	}
}

// TestRunCtxMidRunCancellation cancels the context from inside a clone
// body (via the failClone hook, which runs just after the ctx check):
// the very next clone must observe the cancellation and abort the run.
func TestRunCtxMidRunCancellation(t *testing.T) {
	p := join(join(leaf("A", 3000), leaf("B", 1200)), leaf("C", 900))
	ds := MustGenerate(p, 7)
	s := scheduleFor(t, p, 8)
	for _, parallel := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		e := testEngine(parallel)
		var fired atomic.Bool
		e.failClone = func(op *plan.Operator, k int) error {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
			return nil
		}
		_, err := e.RunCtx(ctx, ds, s)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: got %v, want context.Canceled", parallel, err)
		}
		if !fired.Load() {
			t.Fatalf("parallel=%v: hook never ran", parallel)
		}
	}
}

func TestRunCtxCompletedMatchesRun(t *testing.T) {
	p := join(leaf("A", 2000), leaf("B", 500))
	ds := MustGenerate(p, 3)
	s := scheduleFor(t, p, 8)
	e := testEngine(false)
	plain, err := e.Run(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := e.RunCtx(context.Background(), ds, s)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ResultTuples != withCtx.ResultTuples || plain.Measured != withCtx.Measured {
		t.Fatalf("live context changed the run: %+v vs %+v", plain, withCtx)
	}
}
