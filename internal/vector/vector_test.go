package vector

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	v := New(3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	if !v.IsZero() {
		t.Fatalf("New(3) = %v, want zero vector", v)
	}
}

func TestNewPanicsOnNonPositiveDim(t *testing.T) {
	for _, d := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestOfCopies(t *testing.T) {
	src := []float64{1, 2}
	v := Of(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatalf("Of aliased its argument: %v", v)
	}
}

func TestLength(t *testing.T) {
	tests := []struct {
		v    Vector
		want float64
	}{
		{Of(10, 15), 15},
		{Of(10, 5), 10},
		{Of(0, 0, 0), 0},
		{Of(7), 7},
		{Of(1, 2, 3, 4, 2), 4},
	}
	for _, tt := range tests {
		if got := tt.v.Length(); got != tt.want {
			t.Errorf("Length(%v) = %g, want %g", tt.v, got, tt.want)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Of(10, 15).Sum(); got != 25 {
		t.Fatalf("Sum = %g, want 25", got)
	}
	if got := New(4).Sum(); got != 0 {
		t.Fatalf("Sum of zero vector = %g, want 0", got)
	}
}

func TestAdd(t *testing.T) {
	// The paper's running example, Section 5.2.2: W1+W2 = [20 20].
	w1, w2 := Of(10, 15), Of(10, 5)
	got := w1.Add(w2)
	if !got.ApproxEqual(Of(20, 20), 0) {
		t.Fatalf("Add = %v, want [20 20]", got)
	}
	// Operands untouched.
	if !w1.ApproxEqual(Of(10, 15), 0) || !w2.ApproxEqual(Of(10, 5), 0) {
		t.Fatalf("Add mutated an operand: %v %v", w1, w2)
	}
}

func TestAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Of(1, 2).Add(Of(1, 2, 3))
}

func TestAddInPlace(t *testing.T) {
	v := Of(1, 2, 3)
	v.AddInPlace(Of(4, 5, 6))
	if !v.ApproxEqual(Of(5, 7, 9), 0) {
		t.Fatalf("AddInPlace = %v", v)
	}
}

func TestSubInPlaceClampsAtZero(t *testing.T) {
	v := Of(1, 2)
	v.SubInPlace(Of(2, 1))
	if !v.ApproxEqual(Of(0, 1), 0) {
		t.Fatalf("SubInPlace = %v, want [0 1]", v)
	}
}

func TestScale(t *testing.T) {
	v := Of(2, 4).Scale(0.5)
	if !v.ApproxEqual(Of(1, 2), 1e-12) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(-1) did not panic")
		}
	}()
	Of(1).Scale(-1)
}

func TestLE(t *testing.T) {
	tests := []struct {
		a, b Vector
		want bool
	}{
		{Of(1, 2), Of(1, 2), true},
		{Of(1, 2), Of(2, 3), true},
		{Of(1, 4), Of(2, 3), false},
		{Of(0, 0), Of(0, 0), true},
	}
	for _, tt := range tests {
		if got := tt.a.LE(tt.b); got != tt.want {
			t.Errorf("%v LE %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Of(1, 2).Validate(); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	bad := []Vector{
		{},
		Of(-1),
		Of(math.NaN()),
		Of(math.Inf(1)),
		Of(1, -0.001),
	}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", v)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Of(1, 2)
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSetLength(t *testing.T) {
	// Section 5.2.2 examples: {[10 15],[10 5]} -> 20; {[10 15],[5 10]} -> 25.
	if got := SetLength([]Vector{Of(10, 15), Of(10, 5)}); got != 20 {
		t.Fatalf("SetLength = %g, want 20", got)
	}
	if got := SetLength([]Vector{Of(10, 15), Of(5, 10)}); got != 25 {
		t.Fatalf("SetLength = %g, want 25", got)
	}
	if got := SetLength(nil); got != 0 {
		t.Fatalf("SetLength(nil) = %g, want 0", got)
	}
}

func TestSumSet(t *testing.T) {
	got := SumSet([]Vector{Of(1, 2), Of(3, 4), Of(5, 6)})
	if !got.ApproxEqual(Of(9, 12), 1e-12) {
		t.Fatalf("SumSet = %v", got)
	}
}

func TestSumSetEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SumSet(nil) did not panic")
		}
	}()
	SumSet(nil)
}

func TestString(t *testing.T) {
	s := Of(1.5, 2).String()
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") || !strings.Contains(s, "1.5") {
		t.Fatalf("String = %q", s)
	}
}

func randVec(r *rand.Rand, d int) Vector {
	v := New(d)
	for i := range v {
		v[i] = r.Float64() * 100
	}
	return v
}

// Property: l(W) <= Sum(W) always, and l(v+w) <= l(v)+l(w)
// (subadditivity of the max norm).
func TestQuickLengthProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(6)
		v, w := randVec(rr, d), randVec(rr, d)
		if v.Length() > v.Sum()+1e-9 {
			return false
		}
		return v.Add(w).Length() <= v.Length()+w.Length()+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: SetLength of a set equals Length of SumSet, and is at least
// the length of any member.
func TestQuickSetLengthConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(5)
		n := 1 + rr.Intn(8)
		set := make([]Vector, n)
		for i := range set {
			set[i] = randVec(rr, d)
		}
		sl := SetLength(set)
		if math.Abs(sl-SumSet(set).Length()) > 1e-9 {
			return false
		}
		for _, v := range set {
			if v.Length() > sl+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale distributes over Length and Sum.
func TestQuickScaleLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := randVec(rr, 1+rr.Intn(5))
		c := rr.Float64() * 10
		s := v.Scale(c)
		return math.Abs(s.Length()-c*v.Length()) < 1e-6 &&
			math.Abs(s.Sum()-c*v.Sum()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: LE is a partial order — reflexive and transitive on random
// triples where it holds.
func TestQuickLEPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(4)
		a := randVec(rr, d)
		if !a.LE(a) {
			return false
		}
		b := a.Add(randVec(rr, d)) // a <= b by construction
		c := b.Add(randVec(rr, d)) // b <= c by construction
		return a.LE(b) && b.LE(c) && a.LE(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetLength(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	set := make([]Vector, 64)
	for i := range set {
		set[i] = randVec(r, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SetLength(set)
	}
}
