// Package vector implements the d-dimensional work vectors of
// Garofalakis & Ioannidis (SIGMOD'96), Section 5.1.
//
// A work vector W̄ describes the demands an operator (or operator clone)
// places on the d preemptable resources of a site; component W[i] is the
// effective busy time, in seconds, of resource i. The package provides
// the two "length" notions the scheduling algorithms are built on:
//
//	l(W̄) = max_k W[k]          (length of a vector)
//	l(S)  = max_k Σ_{W∈S} W[k]  (length of a set of vectors)
//
// Vectors are ordinary []float64 slices wrapped in a named type so that
// the scheduling code reads like the paper.
package vector

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Vector is a d-dimensional work vector. Components are non-negative
// resource demands in seconds of busy time.
type Vector []float64

// ErrDimensionMismatch is returned (or wrapped) by operations that
// combine vectors of different dimensionality.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// New returns a zero vector of dimension d. It panics if d <= 0, since a
// site without resources is meaningless in the model.
func New(d int) Vector {
	if d <= 0 {
		panic(fmt.Sprintf("vector: non-positive dimension %d", d))
	}
	return make(Vector, d)
}

// Of builds a vector from its components. The slice is copied.
func Of(components ...float64) Vector {
	v := make(Vector, len(components))
	copy(v, components)
	return v
}

// Dim returns the dimensionality d of the vector.
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Length returns l(W̄) = max_k W[k], the maximum component. The length of
// an empty vector is 0.
func (v Vector) Length() float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns Σ_k W[k], the total work across all resources. This is the
// processing area of an operator when v holds its zero-communication
// demands (Section 4.2).
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Add returns v + w componentwise. It panics on dimension mismatch,
// which always indicates a programming error (all vectors in one
// scheduling problem share the site dimensionality d).
func (v Vector) Add(w Vector) Vector {
	mustMatch(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// AddInPlace adds w into v without allocating.
func (v Vector) AddInPlace(w Vector) {
	mustMatch(v, w)
	for i := range w {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v without allocating. Components are
// clamped at zero to absorb floating-point drift; the model has no
// negative work.
func (v Vector) SubInPlace(w Vector) {
	mustMatch(v, w)
	for i := range w {
		v[i] -= w[i]
		if v[i] < 0 {
			v[i] = 0
		}
	}
}

// Scale returns c·v. It panics if c < 0.
func (v Vector) Scale(c float64) Vector {
	if c < 0 {
		panic(fmt.Sprintf("vector: negative scale factor %g", c))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * c
	}
	return out
}

// LE reports componentwise less-than-or-equal: v ≤_d w (Section 7,
// footnote 5). It panics on dimension mismatch.
func (v Vector) LE(w Vector) bool {
	mustMatch(v, w)
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and w agree componentwise within eps.
func (v Vector) ApproxEqual(w Vector, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// IsZero reports whether all components are exactly zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Validate returns an error if the vector has no components, or a
// component that is negative, NaN, or infinite.
func (v Vector) Validate() error {
	if len(v) == 0 {
		return errors.New("vector: empty (dimension 0)")
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("vector: component %d is %g", i, x)
		}
		if x < 0 {
			return fmt.Errorf("vector: component %d is negative (%g)", i, x)
		}
	}
	return nil
}

// String renders the vector as "[a b c]" with compact formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.6g", x)
	}
	b.WriteByte(']')
	return b.String()
}

// SetLength returns l(S) = max_k Σ_{W∈S} W[k] for a set of vectors that
// all share a dimension. An empty set has length 0. It panics on
// dimension mismatch between members.
func SetLength(set []Vector) float64 {
	if len(set) == 0 {
		return 0
	}
	return SumSet(set).Length()
}

// SumSet returns the componentwise vector sum of the set. It panics on
// dimension mismatch and on an empty set.
func SumSet(set []Vector) Vector {
	if len(set) == 0 {
		panic("vector: SumSet of empty set")
	}
	out := set[0].Clone()
	for _, w := range set[1:] {
		out.AddInPlace(w)
	}
	return out
}

func mustMatch(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("%v: %d vs %d", ErrDimensionMismatch, len(v), len(w)))
	}
}
